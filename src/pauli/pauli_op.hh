/**
 * @file
 * Single-qubit Pauli operators and their product algebra.
 */

#ifndef TETRIS_PAULI_PAULI_OP_HH
#define TETRIS_PAULI_PAULI_OP_HH

#include <cstdint>

#include "common/logging.hh"

namespace tetris
{

/** The four single-qubit Pauli operators. */
enum class PauliOp : uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/** Result of multiplying two Pauli operators: op and a power of i. */
struct PauliProduct
{
    PauliOp op;
    /** Phase as an exponent of i, in {0,1,2,3} (i^k). */
    uint8_t phaseExp;
};

/**
 * Multiply two single-qubit Paulis: a * b = i^phaseExp * op.
 *
 * XY = iZ, YZ = iX, ZX = iY and the reversed orders pick up -i.
 */
inline PauliProduct
mulPauli(PauliOp a, PauliOp b)
{
    if (a == PauliOp::I)
        return {b, 0};
    if (b == PauliOp::I)
        return {a, 0};
    if (a == b)
        return {PauliOp::I, 0};

    // Remaining cases are the six ordered pairs of distinct non-I ops.
    auto ia = static_cast<int>(a);
    auto ib = static_cast<int>(b);
    // The third operator: indices {1,2,3} sum to 6.
    auto ic = 6 - ia - ib;
    // Cyclic order X->Y->Z->X gives +i; anti-cyclic gives -i.
    bool cyclic = (ib - ia + 3) % 3 == 1;
    return {static_cast<PauliOp>(ic), static_cast<uint8_t>(cyclic ? 1 : 3)};
}

/** True if the two single-qubit operators commute. */
inline bool
commutes(PauliOp a, PauliOp b)
{
    return a == PauliOp::I || b == PauliOp::I || a == b;
}

/** One-letter name of a Pauli operator. */
inline char
pauliChar(PauliOp p)
{
    switch (p) {
      case PauliOp::I: return 'I';
      case PauliOp::X: return 'X';
      case PauliOp::Y: return 'Y';
      case PauliOp::Z: return 'Z';
    }
    panic("invalid PauliOp");
}

/** Parse a one-letter Pauli name; accepts upper and lower case. */
inline PauliOp
pauliFromChar(char c)
{
    switch (c) {
      case 'I': case 'i': return PauliOp::I;
      case 'X': case 'x': return PauliOp::X;
      case 'Y': case 'y': return PauliOp::Y;
      case 'Z': case 'z': return PauliOp::Z;
      default: fatal("invalid Pauli character '", c, "'");
    }
}

} // namespace tetris

#endif // TETRIS_PAULI_PAULI_OP_HH
