#include "pauli/pauli_ref.hh"

#include "common/logging.hh"

namespace tetris::pauli_ref
{

bool
commutes(const ByteString &a, const ByteString &b)
{
    TETRIS_ASSERT(a.size() == b.size());
    size_t anti = 0;
    for (size_t q = 0; q < a.size(); ++q) {
        if (!tetris::commutes(a[q], b[q]))
            ++anti;
    }
    return anti % 2 == 0;
}

size_t
weight(const ByteString &s)
{
    size_t w = 0;
    for (PauliOp p : s) {
        if (p != PauliOp::I)
            ++w;
    }
    return w;
}

Product
mul(const ByteString &a, const ByteString &b)
{
    TETRIS_ASSERT(a.size() == b.size());
    Product out;
    out.ops.resize(a.size());
    unsigned phase = 0;
    for (size_t q = 0; q < a.size(); ++q) {
        PauliProduct p = mulPauli(a[q], b[q]);
        out.ops[q] = p.op;
        phase += p.phaseExp;
    }
    out.phaseExp = static_cast<uint8_t>(phase % 4);
    return out;
}

uint8_t
mulInto(const ByteString &a, ByteString &acc)
{
    TETRIS_ASSERT(a.size() == acc.size());
    unsigned phase = 0;
    for (size_t q = 0; q < a.size(); ++q) {
        PauliProduct p = mulPauli(a[q], acc[q]);
        acc[q] = p.op;
        phase += p.phaseExp;
    }
    return static_cast<uint8_t>(phase % 4);
}

ByteFrame::ByteFrame(int num_qubits)
    : x(num_qubits), z(num_qubits), xSign(num_qubits, 1),
      zSign(num_qubits, 1)
{
    for (int q = 0; q < num_qubits; ++q) {
        x[q].assign(num_qubits, PauliOp::I);
        x[q][q] = PauliOp::X;
        z[q].assign(num_qubits, PauliOp::I);
        z[q][q] = PauliOp::Z;
    }
}

namespace
{

/** image_a * image_b with i^extra folded into the sign product. */
void
mulImages(ByteString &a, int &a_sign, const ByteString &b, int b_sign,
          int extra_phase_exp)
{
    Product prod = mul(a, b);
    int exp = (prod.phaseExp + extra_phase_exp) % 4;
    TETRIS_ASSERT(exp == 0 || exp == 2,
                  "non-Hermitian byte-frame image");
    a_sign = a_sign * b_sign * (exp == 2 ? -1 : 1);
    a = std::move(prod.ops);
}

} // namespace

void
ByteFrame::applyH(int q)
{
    std::swap(x[q], z[q]);
    std::swap(xSign[q], zSign[q]);
}

void
ByteFrame::applyS(int q)
{
    // S^dg X S = -Y = -i X Z.
    mulImages(x[q], xSign[q], z[q], zSign[q], /*i^*/ 3);
}

void
ByteFrame::applyCx(int c, int t)
{
    // CX X_c CX = X_c X_t;  CX Z_t CX = Z_c Z_t.
    mulImages(x[c], xSign[c], x[t], xSign[t], 0);
    Product prod = mul(z[c], z[t]);
    int exp = prod.phaseExp % 4;
    TETRIS_ASSERT(exp == 0 || exp == 2,
                  "non-Hermitian byte-frame image");
    zSign[t] = zSign[c] * zSign[t] * (exp == 2 ? -1 : 1);
    z[t] = std::move(prod.ops);
}

} // namespace tetris::pauli_ref
