/**
 * @file
 * Byte-per-qubit reference Pauli kernels.
 *
 * These are the seed-era scalar loops the packed bit-plane kernels
 * in PauliString replaced: one PauliOp byte per qubit, one branchy
 * iteration per qubit. They exist for two reasons and must stay
 * dumb:
 *
 *  - the randomized differential suite in tests/test_pauli.cc
 *    asserts the packed kernels agree with them bit-for-bit
 *    (operator content, commutation verdict, product phase);
 *  - bench/perf_microbench.cc and bench/micro_kernels.cc time them
 *    against the packed kernels, which is where the repacking's
 *    speedup claim is measured rather than asserted.
 */

#ifndef TETRIS_PAULI_PAULI_REF_HH
#define TETRIS_PAULI_PAULI_REF_HH

#include <cstdint>
#include <vector>

#include "pauli/pauli_op.hh"

namespace tetris::pauli_ref
{

/** One byte per qubit, index 0 = qubit 0. */
using ByteString = std::vector<PauliOp>;

/** Reference commutation check: count anticommuting qubits. */
bool commutes(const ByteString &a, const ByteString &b);

/** Reference weight: count non-identity bytes. */
size_t weight(const ByteString &s);

struct Product
{
    ByteString ops;
    uint8_t phaseExp;
};

/** Reference string product with per-qubit phase accumulation. */
Product mul(const ByteString &a, const ByteString &b);

/**
 * Allocation-free reference product: acc = a * acc, returning the
 * power-of-i phase exponent — the byte-wise mirror of
 * PauliString::mulLeft, so the kernel benchmarks compare loop
 * against loop rather than allocator against allocator.
 */
uint8_t mulInto(const ByteString &a, ByteString &acc);

/**
 * Reference stabilizer back-conjugation state: the signed X/Z
 * generator images a PauliFrame keeps, stored byte-wise. Only the
 * gate kinds the benchmarked conjugation loop uses are supported.
 */
struct ByteFrame
{
    explicit ByteFrame(int num_qubits);

    void applyH(int q);
    void applyS(int q);
    void applyCx(int c, int t);

    std::vector<ByteString> x, z;
    std::vector<int> xSign, zSign;
};

} // namespace tetris::pauli_ref

#endif // TETRIS_PAULI_PAULI_REF_HH
