#include "pauli/pauli_sum.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace tetris
{

namespace
{

/** i^k as a complex double. */
std::complex<double>
iPower(uint8_t k)
{
    switch (k % 4) {
      case 0: return {1.0, 0.0};
      case 1: return {0.0, 1.0};
      case 2: return {-1.0, 0.0};
      default: return {0.0, -1.0};
    }
}

} // namespace

PauliSum::PauliSum(std::complex<double> coeff, PauliString s)
    : numQubits_(s.numQubits())
{
    terms_.push_back({coeff, std::move(s)});
}

PauliSum
PauliSum::scaledIdentity(size_t n, std::complex<double> coeff)
{
    return PauliSum(coeff, PauliString(n));
}

void
PauliSum::addTerm(std::complex<double> coeff, PauliString s)
{
    TETRIS_ASSERT(s.numQubits() == numQubits_);
    terms_.push_back({coeff, std::move(s)});
}

PauliSum
PauliSum::operator+(const PauliSum &o) const
{
    TETRIS_ASSERT(numQubits_ == o.numQubits_);
    PauliSum r = *this;
    r.terms_.insert(r.terms_.end(), o.terms_.begin(), o.terms_.end());
    return r;
}

PauliSum &
PauliSum::operator+=(const PauliSum &o)
{
    TETRIS_ASSERT(numQubits_ == o.numQubits_);
    terms_.insert(terms_.end(), o.terms_.begin(), o.terms_.end());
    return *this;
}

PauliSum
PauliSum::operator-(const PauliSum &o) const
{
    return *this + o * std::complex<double>(-1.0, 0.0);
}

PauliSum
PauliSum::operator*(const PauliSum &o) const
{
    TETRIS_ASSERT(numQubits_ == o.numQubits_);
    PauliSum r(numQubits_);
    r.terms_.reserve(terms_.size() * o.terms_.size());
    for (const auto &a : terms_) {
        for (const auto &b : o.terms_) {
            PauliStringProduct p = mulStrings(a.string, b.string);
            r.terms_.push_back(
                {a.coeff * b.coeff * iPower(p.phaseExp),
                 std::move(p.string)});
        }
    }
    return r;
}

PauliSum
PauliSum::operator*(std::complex<double> scale) const
{
    PauliSum r = *this;
    for (auto &t : r.terms_)
        t.coeff *= scale;
    return r;
}

PauliSum
PauliSum::simplified(double eps) const
{
    std::unordered_map<PauliString, std::complex<double>, PauliStringHash>
        merged;
    for (const auto &t : terms_)
        merged[t.string] += t.coeff;

    PauliSum r(numQubits_);
    for (auto &kv : merged) {
        if (std::abs(kv.second) > eps)
            r.terms_.push_back({kv.second, kv.first});
    }
    std::sort(r.terms_.begin(), r.terms_.end(),
              [](const PauliTerm &a, const PauliTerm &b) {
                  return a.string < b.string;
              });
    return r;
}

bool
PauliSum::isAntiHermitian(double eps) const
{
    const PauliSum s = simplified(eps);
    for (const auto &t : s.terms()) {
        if (std::abs(t.coeff.real()) > eps)
            return false;
    }
    return true;
}

bool
PauliSum::isHermitian(double eps) const
{
    const PauliSum s = simplified(eps);
    for (const auto &t : s.terms()) {
        if (std::abs(t.coeff.imag()) > eps)
            return false;
    }
    return true;
}

PauliSum
PauliSum::adjoint() const
{
    PauliSum r = *this;
    for (auto &t : r.terms_)
        t.coeff = std::conj(t.coeff);
    return r;
}

} // namespace tetris
