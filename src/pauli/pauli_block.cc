#include "pauli/pauli_block.hh"

#include <algorithm>

#include "common/hash.hh"
#include "common/logging.hh"

namespace tetris
{

PauliBlock::PauliBlock(std::vector<PauliString> strings, double theta)
    : strings_(std::move(strings)), weights_(strings_.size(), 1.0),
      theta_(theta)
{
    TETRIS_ASSERT(!strings_.empty(), "empty PauliBlock");
}

PauliBlock::PauliBlock(std::vector<PauliString> strings,
                       std::vector<double> weights, double theta)
    : strings_(std::move(strings)), weights_(std::move(weights)),
      theta_(theta)
{
    TETRIS_ASSERT(!strings_.empty(), "empty PauliBlock");
    TETRIS_ASSERT(weights_.size() == strings_.size(),
                  "weight/string arity mismatch");
}

size_t
PauliBlock::numQubits() const
{
    return strings_.empty() ? 0 : strings_.front().numQubits();
}

std::vector<size_t>
PauliBlock::support() const
{
    std::vector<bool> active(numQubits(), false);
    for (const auto &s : strings_) {
        for (size_t q = 0; q < s.numQubits(); ++q) {
            if (s.op(q) != PauliOp::I)
                active[q] = true;
        }
    }
    std::vector<size_t> out;
    for (size_t q = 0; q < active.size(); ++q) {
        if (active[q])
            out.push_back(q);
    }
    return out;
}

std::vector<size_t>
PauliBlock::commonQubits() const
{
    std::vector<size_t> out;
    const PauliString &first = strings_.front();
    for (size_t q = 0; q < numQubits(); ++q) {
        PauliOp p = first.op(q);
        if (p == PauliOp::I)
            continue;
        bool common = true;
        for (size_t i = 1; i < strings_.size(); ++i) {
            if (strings_[i].op(q) != p) {
                common = false;
                break;
            }
        }
        if (common)
            out.push_back(q);
    }
    return out;
}

std::vector<size_t>
PauliBlock::rootQubits() const
{
    std::vector<size_t> sup = support();
    std::vector<size_t> common = commonQubits();
    std::vector<size_t> out;
    std::set_difference(sup.begin(), sup.end(), common.begin(), common.end(),
                        std::back_inserter(out));
    return out;
}

size_t
PauliBlock::commonOperatorCount(const PauliString &a, const PauliString &b)
{
    TETRIS_ASSERT(a.numQubits() == b.numQubits());
    size_t c = 0;
    for (size_t q = 0; q < a.numQubits(); ++q) {
        if (a.op(q) != PauliOp::I && a.op(q) == b.op(q))
            ++c;
    }
    return c;
}

uint64_t
PauliBlock::contentHash() const
{
    uint64_t h = fnvMix(kFnvOffset, strings_.size());
    for (const auto &s : strings_) {
        h = fnvMix(h, s.numQubits());
        for (size_t q = 0; q < s.numQubits(); ++q)
            h = fnvMix(h, static_cast<uint8_t>(s.op(q)));
    }
    for (double w : weights_)
        h = fnvMix(h, w);
    return fnvMix(h, theta_);
}

size_t
maxCancelCnotBound(const std::vector<PauliBlock> &blocks)
{
    size_t bound = 0;
    const PauliString *prev = nullptr;
    for (const auto &b : blocks) {
        for (const auto &s : b.strings()) {
            if (prev) {
                // A common section of c qubits in the leaf tree has
                // c-1 internal (cancellable) edges, bounded by the
                // tree size of either neighbor.
                size_t c = std::min({
                    PauliBlock::commonOperatorCount(*prev, s),
                    prev->weight(),
                    s.weight(),
                });
                if (c >= 2)
                    bound += 2 * (c - 1);
            }
            prev = &s;
        }
    }
    return bound;
}

} // namespace tetris
