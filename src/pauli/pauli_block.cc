#include "pauli/pauli_block.hh"

#include <algorithm>
#include <bit>

#include "common/hash.hh"
#include "common/logging.hh"

namespace tetris
{

namespace
{

/** Append the qubit indices of every set bit in `mask`, ascending. */
void
appendSetBits(const std::vector<uint64_t> &mask, std::vector<size_t> &out)
{
    for (size_t i = 0; i < mask.size(); ++i) {
        uint64_t w = mask[i];
        while (w != 0) {
            out.push_back(i * 64 +
                          static_cast<size_t>(std::countr_zero(w)));
            w &= w - 1;
        }
    }
}

} // namespace

PauliBlock::PauliBlock(std::vector<PauliString> strings, double theta)
    : strings_(std::move(strings)), weights_(strings_.size(), 1.0),
      theta_(theta)
{
    TETRIS_ASSERT(!strings_.empty(), "empty PauliBlock");
}

PauliBlock::PauliBlock(std::vector<PauliString> strings,
                       std::vector<double> weights, double theta)
    : strings_(std::move(strings)), weights_(std::move(weights)),
      theta_(theta)
{
    TETRIS_ASSERT(!strings_.empty(), "empty PauliBlock");
    TETRIS_ASSERT(weights_.size() == strings_.size(),
                  "weight/string arity mismatch");
}

size_t
PauliBlock::numQubits() const
{
    return strings_.empty() ? 0 : strings_.front().numQubits();
}

std::vector<size_t>
PauliBlock::support() const
{
    std::vector<size_t> out;
    if (strings_.empty())
        return out;
    // Union of supports: OR every string's occupancy plane.
    std::vector<uint64_t> active(strings_.front().numWords(), 0);
    for (const auto &s : strings_) {
        for (size_t i = 0; i < active.size(); ++i)
            active[i] |= s.xWords()[i] | s.zWords()[i];
    }
    appendSetBits(active, out);
    return out;
}

std::vector<size_t>
PauliBlock::commonQubits() const
{
    std::vector<size_t> out;
    const PauliString &first = strings_.front();
    // Start from the first string's non-identity qubits and knock
    // out every qubit where another string's (x, z) pair differs.
    std::vector<uint64_t> common(first.numWords());
    for (size_t i = 0; i < common.size(); ++i)
        common[i] = first.xWords()[i] | first.zWords()[i];
    for (size_t k = 1; k < strings_.size(); ++k) {
        const PauliString &s = strings_[k];
        for (size_t i = 0; i < common.size(); ++i) {
            common[i] &= ~(first.xWords()[i] ^ s.xWords()[i]) &
                         ~(first.zWords()[i] ^ s.zWords()[i]);
        }
    }
    appendSetBits(common, out);
    return out;
}

std::vector<size_t>
PauliBlock::rootQubits() const
{
    std::vector<size_t> sup = support();
    std::vector<size_t> common = commonQubits();
    std::vector<size_t> out;
    std::set_difference(sup.begin(), sup.end(), common.begin(), common.end(),
                        std::back_inserter(out));
    return out;
}

size_t
PauliBlock::commonOperatorCount(const PauliString &a, const PauliString &b)
{
    TETRIS_ASSERT(a.numQubits() == b.numQubits());
    // Count qubits that are non-identity in `a` and where both (x, z)
    // pairs agree; padding bits are zero in both planes, so the
    // occupancy mask already excludes them.
    size_t c = 0;
    for (size_t i = 0; i < a.numWords(); ++i) {
        const uint64_t same =
            ~(a.xWords()[i] ^ b.xWords()[i]) &
            ~(a.zWords()[i] ^ b.zWords()[i]);
        c += static_cast<size_t>(std::popcount(
            (a.xWords()[i] | a.zWords()[i]) & same));
    }
    return c;
}

uint64_t
PauliBlock::contentHash() const
{
    // Word-wide FNV-style mixing over the bit-planes; one multiply
    // per 64 qubits instead of one per qubit. Content-equal blocks
    // still hash equal: the planes are a pure function of the
    // per-qubit operators (padding is zeroed by invariant).
    uint64_t h = fnvMix(kFnvOffset, strings_.size());
    for (const auto &s : strings_) {
        h = fnvMix(h, s.numQubits());
        for (size_t i = 0; i < s.numWords(); ++i) {
            h = (h ^ s.xWords()[i]) * kFnvPrime;
            h = (h ^ s.zWords()[i]) * kFnvPrime;
        }
    }
    for (double w : weights_)
        h = fnvMix(h, w);
    return fnvMix(h, theta_);
}

size_t
maxCancelCnotBound(const std::vector<PauliBlock> &blocks)
{
    size_t bound = 0;
    const PauliString *prev = nullptr;
    for (const auto &b : blocks) {
        for (const auto &s : b.strings()) {
            if (prev) {
                // A common section of c qubits in the leaf tree has
                // c-1 internal (cancellable) edges, bounded by the
                // tree size of either neighbor.
                size_t c = std::min({
                    PauliBlock::commonOperatorCount(*prev, s),
                    prev->weight(),
                    s.weight(),
                });
                if (c >= 2)
                    bound += 2 * (c - 1);
            }
            prev = &s;
        }
    }
    return bound;
}

} // namespace tetris
