#include "pauli/pauli_string.hh"

#include "common/hash.hh"
#include "common/logging.hh"

namespace tetris
{

PauliString
PauliString::fromText(const std::string &text)
{
    std::vector<PauliOp> ops;
    ops.reserve(text.size());
    for (char c : text)
        ops.push_back(pauliFromChar(c));
    return PauliString(std::move(ops));
}

size_t
PauliString::weight() const
{
    size_t w = 0;
    for (PauliOp p : ops_) {
        if (p != PauliOp::I)
            ++w;
    }
    return w;
}

std::vector<size_t>
PauliString::support() const
{
    std::vector<size_t> s;
    for (size_t q = 0; q < ops_.size(); ++q) {
        if (ops_[q] != PauliOp::I)
            s.push_back(q);
    }
    return s;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    TETRIS_ASSERT(numQubits() == other.numQubits());
    // Strings commute iff they anticommute on an even number of qubits.
    size_t anti = 0;
    for (size_t q = 0; q < ops_.size(); ++q) {
        if (!commutes(ops_[q], other.ops_[q]))
            ++anti;
    }
    return anti % 2 == 0;
}

std::string
PauliString::toText() const
{
    std::string s;
    s.reserve(ops_.size());
    for (PauliOp p : ops_)
        s.push_back(pauliChar(p));
    return s;
}

size_t
PauliStringHash::operator()(const PauliString &s) const
{
    uint64_t h = kFnvOffset;
    for (PauliOp p : s.ops())
        h = fnvMix(h, static_cast<uint8_t>(p));
    return static_cast<size_t>(h);
}

PauliStringProduct
mulStrings(const PauliString &a, const PauliString &b)
{
    TETRIS_ASSERT(a.numQubits() == b.numQubits(),
                  "string length mismatch");
    std::vector<PauliOp> ops(a.numQubits());
    unsigned phase = 0;
    for (size_t q = 0; q < a.numQubits(); ++q) {
        PauliProduct p = mulPauli(a.op(q), b.op(q));
        ops[q] = p.op;
        phase += p.phaseExp;
    }
    return {PauliString(std::move(ops)),
            static_cast<uint8_t>(phase % 4)};
}

} // namespace tetris
