#include "pauli/pauli_string.hh"

#include <bit>

#include "common/hash.hh"
#include "common/logging.hh"

namespace tetris
{

PauliString
PauliString::fromText(const std::string &text)
{
    PauliString s(text.size());
    for (size_t q = 0; q < text.size(); ++q)
        s.setOp(q, pauliFromChar(text[q]));
    return s;
}

size_t
PauliString::weight() const
{
    size_t w = 0;
    for (size_t i = 0; i < x_.size(); ++i)
        w += static_cast<size_t>(std::popcount(x_[i] | z_[i]));
    return w;
}

bool
PauliString::isIdentity() const
{
    for (size_t i = 0; i < x_.size(); ++i) {
        if ((x_[i] | z_[i]) != 0)
            return false;
    }
    return true;
}

std::vector<size_t>
PauliString::support() const
{
    std::vector<size_t> s;
    for (size_t i = 0; i < x_.size(); ++i) {
        uint64_t w = x_[i] | z_[i];
        while (w != 0) {
            s.push_back(i * 64 +
                        static_cast<size_t>(std::countr_zero(w)));
            w &= w - 1;
        }
    }
    return s;
}

bool
PauliString::commutesWith(const PauliString &other) const
{
    TETRIS_ASSERT(numQubits() == other.numQubits());
    // Strings commute iff the symplectic inner product — the number
    // of qubits where exactly one side's X hits the other's Z — is
    // even. XOR-accumulating the per-word indicator planes preserves
    // the popcount parity, so one final popcount decides.
    uint64_t acc = 0;
    for (size_t i = 0; i < x_.size(); ++i)
        acc ^= (x_[i] & other.z_[i]) ^ (z_[i] & other.x_[i]);
    return (std::popcount(acc) & 1) == 0;
}

uint8_t
PauliString::mulLeft(const PauliString &other)
{
    TETRIS_ASSERT(numQubits() == other.numQubits(),
                  "string length mismatch");
    // With P(x,z) = i^{xz} X^x Z^z (so Y = iXZ), the per-qubit phase
    // of a*b is i^{x_a z_a + x_b z_b + 2 z_a x_b - x_c z_c} where
    // (x_c, z_c) = (x_a^x_b, z_a^z_b). Summed word-wise with four
    // popcounts; -1 is folded in as +3 mod 4.
    uint64_t phase = 0;
    for (size_t i = 0; i < x_.size(); ++i) {
        const uint64_t xa = other.x_[i], za = other.z_[i];
        const uint64_t xb = x_[i], zb = z_[i];
        const uint64_t xc = xa ^ xb, zc = za ^ zb;
        phase += static_cast<uint64_t>(std::popcount(xa & za)) +
                 static_cast<uint64_t>(std::popcount(xb & zb)) +
                 2u * static_cast<uint64_t>(std::popcount(za & xb)) +
                 3u * static_cast<uint64_t>(std::popcount(xc & zc));
        x_[i] = xc;
        z_[i] = zc;
    }
    return static_cast<uint8_t>(phase % 4);
}

uint8_t
PauliString::mulRight(const PauliString &other)
{
    TETRIS_ASSERT(numQubits() == other.numQubits(),
                  "string length mismatch");
    // Same phase bookkeeping as mulLeft with the operand roles
    // swapped: here a = *this, b = other.
    uint64_t phase = 0;
    for (size_t i = 0; i < x_.size(); ++i) {
        const uint64_t xa = x_[i], za = z_[i];
        const uint64_t xb = other.x_[i], zb = other.z_[i];
        const uint64_t xc = xa ^ xb, zc = za ^ zb;
        phase += static_cast<uint64_t>(std::popcount(xa & za)) +
                 static_cast<uint64_t>(std::popcount(xb & zb)) +
                 2u * static_cast<uint64_t>(std::popcount(za & xb)) +
                 3u * static_cast<uint64_t>(std::popcount(xc & zc));
        x_[i] = xc;
        z_[i] = zc;
    }
    return static_cast<uint8_t>(phase % 4);
}

std::string
PauliString::toText() const
{
    std::string s;
    s.reserve(n_);
    for (size_t q = 0; q < n_; ++q)
        s.push_back(pauliChar(op(q)));
    return s;
}

std::vector<PauliOp>
PauliString::ops() const
{
    std::vector<PauliOp> out;
    out.reserve(n_);
    for (size_t q = 0; q < n_; ++q)
        out.push_back(op(q));
    return out;
}

bool
PauliString::operator<(const PauliString &o) const
{
    // Byte-identical semantics to comparing the per-qubit operator
    // vectors: find the first differing qubit via the XOR of the
    // planes, compare there; equal prefixes order by length.
    const size_t common_words = std::min(x_.size(), o.x_.size());
    const size_t common_qubits = std::min(n_, o.n_);
    for (size_t w = 0; w < common_words; ++w) {
        const uint64_t diff = (x_[w] ^ o.x_[w]) | (z_[w] ^ o.z_[w]);
        if (diff != 0) {
            const size_t q =
                w * 64 + static_cast<size_t>(std::countr_zero(diff));
            if (q >= common_qubits)
                break; // shared prefix equal; length decides
            return op(q) < o.op(q);
        }
    }
    return n_ < o.n_;
}

size_t
PauliStringHash::operator()(const PauliString &s) const
{
    // FNV-style multiply-mix over whole 64-qubit words (not bytes):
    // one multiply per plane word, with a final avalanche so sparse
    // strings still spread across the low bits map buckets use.
    uint64_t h = kFnvOffset ^ (s.numQubits() * kFnvPrime);
    for (size_t i = 0; i < s.numWords(); ++i) {
        h = (h ^ s.xWords()[i]) * kFnvPrime;
        h = (h ^ s.zWords()[i]) * kFnvPrime;
    }
    h ^= h >> 33;
    return static_cast<size_t>(h);
}

PauliStringProduct
mulStrings(const PauliString &a, const PauliString &b)
{
    PauliStringProduct out{b, 0};
    out.phaseExp = out.string.mulLeft(a);
    return out;
}

} // namespace tetris
