/**
 * @file
 * Dense Pauli strings (tensor products of single-qubit Paulis).
 */

#ifndef TETRIS_PAULI_PAULI_STRING_HH
#define TETRIS_PAULI_PAULI_STRING_HH

#include <cstddef>
#include <string>
#include <vector>

#include "pauli/pauli_op.hh"

namespace tetris
{

/**
 * A Pauli string over a fixed number of qubits, e.g. "XXYZI".
 *
 * Index 0 of the string corresponds to qubit 0. Strings are value
 * types and hashable so they can key maps during term merging.
 */
class PauliString
{
  public:
    PauliString() = default;

    /** An all-identity string on n qubits. */
    explicit PauliString(size_t n) : ops_(n, PauliOp::I) {}

    /** Construct from explicit operators. */
    explicit PauliString(std::vector<PauliOp> ops) : ops_(std::move(ops)) {}

    /** Parse from text such as "XXYZI" (case-insensitive). */
    static PauliString fromText(const std::string &text);

    /** Number of qubits the string is defined over. */
    size_t numQubits() const { return ops_.size(); }

    /** Operator on one qubit. */
    PauliOp op(size_t q) const { return ops_[q]; }

    /** Set the operator on one qubit. */
    void setOp(size_t q, PauliOp p) { ops_[q] = p; }

    /** Number of non-identity operators (the paper's active length). */
    size_t weight() const;

    /** Qubits carrying a non-identity operator, ascending. */
    std::vector<size_t> support() const;

    /** True if no qubit carries a non-identity operator. */
    bool isIdentity() const { return weight() == 0; }

    /** True if this string commutes with the other (global phase). */
    bool commutesWith(const PauliString &other) const;

    /** Render as text, e.g. "XXYZI". */
    std::string toText() const;

    bool operator==(const PauliString &o) const { return ops_ == o.ops_; }
    bool operator!=(const PauliString &o) const { return !(*this == o); }

    /** Lexicographic order (for deterministic canonicalization). */
    bool operator<(const PauliString &o) const { return ops_ < o.ops_; }

    /** Access the raw operator vector. */
    const std::vector<PauliOp> &ops() const { return ops_; }

  private:
    std::vector<PauliOp> ops_;
};

/** FNV-style hash over the operator vector. */
struct PauliStringHash
{
    size_t operator()(const PauliString &s) const;
};

/**
 * Multiply two equal-length strings; result operator vector plus the
 * accumulated power-of-i phase.
 */
struct PauliStringProduct
{
    PauliString string;
    uint8_t phaseExp;
};

PauliStringProduct mulStrings(const PauliString &a, const PauliString &b);

} // namespace tetris

#endif // TETRIS_PAULI_PAULI_STRING_HH
