/**
 * @file
 * Dense Pauli strings (tensor products of single-qubit Paulis).
 *
 * Storage is data-oriented: instead of one byte per qubit, a string
 * keeps two bit-planes of 64-qubit words — the X plane and the Z
 * plane — with qubit q at bit (q mod 64) of word (q / 64):
 *
 *     op      X-bit  Z-bit
 *     I         0      0
 *     X         1      0
 *     Y         1      1        (Y = iXZ)
 *     Z         0      1
 *
 * Every bulk kernel then runs word-at-a-time: commutation is the
 * parity of popcount((x1&z2) ^ (z1&x2)) (the symplectic inner
 * product), weight is popcount(x|z), the string product is a plane
 * XOR plus a popcount-based phase count, and hashing mixes whole
 * words. Bits above numQubits() are kept zero as a class invariant,
 * so word-wise equality, hashing and ordering need no masking.
 */

#ifndef TETRIS_PAULI_PAULI_STRING_HH
#define TETRIS_PAULI_PAULI_STRING_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pauli/pauli_op.hh"

namespace tetris
{

/** X/Z bit pair of one Pauli operator (see the packing table). */
inline uint64_t
pauliXBit(PauliOp p)
{
    auto v = static_cast<uint64_t>(p);
    return (v ^ (v >> 1)) & 1u;
}

inline uint64_t
pauliZBit(PauliOp p)
{
    return (static_cast<uint64_t>(p) >> 1) & 1u;
}

/** Decode an (x, z) bit pair back to the operator. */
inline PauliOp
pauliFromBits(uint64_t x, uint64_t z)
{
    static constexpr PauliOp kDecode[4] = {PauliOp::I, PauliOp::X,
                                           PauliOp::Z, PauliOp::Y};
    return kDecode[(x & 1u) | ((z & 1u) << 1)];
}

/**
 * A Pauli string over a fixed number of qubits, e.g. "XXYZI".
 *
 * Index 0 of the string corresponds to qubit 0. Strings are value
 * types and hashable so they can key maps during term merging.
 */
class PauliString
{
  public:
    PauliString() = default;

    /** An all-identity string on n qubits. */
    explicit PauliString(size_t n)
        : n_(n), x_(wordsFor(n), 0), z_(wordsFor(n), 0)
    {
    }

    /** Construct from explicit operators. */
    explicit PauliString(const std::vector<PauliOp> &ops)
        : PauliString(ops.size())
    {
        for (size_t q = 0; q < ops.size(); ++q)
            setOp(q, ops[q]);
    }

    /** Parse from text such as "XXYZI" (case-insensitive). */
    static PauliString fromText(const std::string &text);

    /** Number of qubits the string is defined over. */
    size_t numQubits() const { return n_; }

    /** Operator on one qubit. */
    PauliOp op(size_t q) const
    {
        return pauliFromBits(x_[q >> 6] >> (q & 63),
                             z_[q >> 6] >> (q & 63));
    }

    /** Set the operator on one qubit. */
    void setOp(size_t q, PauliOp p)
    {
        const uint64_t bit = uint64_t{1} << (q & 63);
        x_[q >> 6] = (x_[q >> 6] & ~bit) | (bit * pauliXBit(p));
        z_[q >> 6] = (z_[q >> 6] & ~bit) | (bit * pauliZBit(p));
    }

    /** Number of non-identity operators (the paper's active length). */
    size_t weight() const;

    /** Qubits carrying a non-identity operator, ascending. */
    std::vector<size_t> support() const;

    /** True if no qubit carries a non-identity operator. */
    bool isIdentity() const;

    /** True if this string commutes with the other (global phase). */
    bool commutesWith(const PauliString &other) const;

    /**
     * In-place left product: *this = other * *this, returning the
     * accumulated power-of-i phase exponent. The allocation-free
     * kernel behind mulStrings and the verifier's tableau updates.
     */
    uint8_t mulLeft(const PauliString &other);

    /** In-place right product: *this = *this * other. */
    uint8_t mulRight(const PauliString &other);

    /** Render as text, e.g. "XXYZI". */
    std::string toText() const;

    bool operator==(const PauliString &o) const
    {
        return n_ == o.n_ && x_ == o.x_ && z_ == o.z_;
    }
    bool operator!=(const PauliString &o) const { return !(*this == o); }

    /**
     * Lexicographic order over per-qubit operator values, exactly as
     * the byte-per-qubit representation compared (deterministic
     * canonicalization must survive the repacking).
     */
    bool operator<(const PauliString &o) const;

    /** Materialize the per-qubit operator vector (diagnostics). */
    std::vector<PauliOp> ops() const;

    /** Number of 64-qubit words in each plane. */
    size_t numWords() const { return x_.size(); }

    /** Raw planes for word-wide kernels; bits >= numQubits() are 0. */
    const uint64_t *xWords() const { return x_.data(); }
    const uint64_t *zWords() const { return z_.data(); }

  private:
    static size_t wordsFor(size_t n) { return (n + 63) / 64; }

    size_t n_ = 0;
    std::vector<uint64_t> x_;
    std::vector<uint64_t> z_;
};

/** FNV-style hash over the bit-planes (content-stable). */
struct PauliStringHash
{
    size_t operator()(const PauliString &s) const;
};

/**
 * Multiply two equal-length strings; result operator vector plus the
 * accumulated power-of-i phase.
 */
struct PauliStringProduct
{
    PauliString string;
    uint8_t phaseExp;
};

PauliStringProduct mulStrings(const PauliString &a, const PauliString &b);

} // namespace tetris

#endif // TETRIS_PAULI_PAULI_STRING_HH
