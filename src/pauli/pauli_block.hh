/**
 * @file
 * Blocks of Pauli strings sharing a rotation-angle parameter.
 *
 * A block corresponds to one term group of the ansatz construction
 * (e.g. one excitation operator in UCCSD or one graph edge in QAOA).
 * Strings within a block share a common angle factor and typically
 * exhibit high pairwise similarity; this is the unit the Tetris
 * compiler schedules and synthesizes ("Tetris block" in the paper).
 */

#ifndef TETRIS_PAULI_PAULI_BLOCK_HH
#define TETRIS_PAULI_PAULI_BLOCK_HH

#include <cstdint>
#include <vector>

#include "pauli/pauli_string.hh"

namespace tetris
{

/**
 * A list of weighted Pauli strings that share one rotation angle.
 * Each string s contributes a sub-circuit exp(-i w_s theta / 2 * P_s).
 */
class PauliBlock
{
  public:
    PauliBlock() = default;

    /** Construct with uniform unit weights. */
    PauliBlock(std::vector<PauliString> strings, double theta);

    /** Construct with explicit per-string weights. */
    PauliBlock(std::vector<PauliString> strings, std::vector<double> weights,
               double theta);

    size_t numQubits() const;
    size_t size() const { return strings_.size(); }
    bool empty() const { return strings_.empty(); }

    const std::vector<PauliString> &strings() const { return strings_; }
    const PauliString &string(size_t i) const { return strings_[i]; }
    double weight(size_t i) const { return weights_[i]; }
    double theta() const { return theta_; }

    /** Union of string supports, ascending. */
    std::vector<size_t> support() const;

    /** Number of qubits in the union support (paper: active length). */
    size_t activeLength() const { return support().size(); }

    /**
     * The leaf-tree qubit set: the maximal set of qubits on which all
     * strings of the block carry the same non-identity operator.
     */
    std::vector<size_t> commonQubits() const;

    /** The root-tree qubit set: support() minus commonQubits(). */
    std::vector<size_t> rootQubits() const;

    /** Qubits where both strings carry the same non-I operator. */
    static size_t commonOperatorCount(const PauliString &a,
                                      const PauliString &b);

    /**
     * FNV-1a hash over strings, weights and theta. Two blocks with
     * equal content hash equal; used to key the compile cache.
     */
    uint64_t contentHash() const;

  private:
    std::vector<PauliString> strings_;
    std::vector<double> weights_;
    double theta_ = 0.0;
};

/**
 * Analytic upper bound on cancellable CNOTs for the string order
 * implied by the block list (the paper's Fig. 2 "max_cancel"): at
 * each boundary between consecutive strings, placing the shared
 * operators in the leaf tree section cancels up to 2*(|C|-1) CNOTs,
 * where C is the set of qubits carrying identical non-identity
 * operators in both strings.
 */
size_t maxCancelCnotBound(const std::vector<PauliBlock> &blocks);

} // namespace tetris

#endif // TETRIS_PAULI_PAULI_BLOCK_HH
