/**
 * @file
 * Linear combinations of Pauli strings with complex coefficients.
 *
 * PauliSum is the symbolic algebra engine behind the fermion-to-qubit
 * encoders: ladder operators are expressed as sums of Pauli strings
 * and excitation operators are obtained by multiplying and adding
 * those sums.
 */

#ifndef TETRIS_PAULI_PAULI_SUM_HH
#define TETRIS_PAULI_PAULI_SUM_HH

#include <complex>
#include <vector>

#include "pauli/pauli_string.hh"

namespace tetris
{

/** One weighted Pauli string inside a PauliSum. */
struct PauliTerm
{
    std::complex<double> coeff;
    PauliString string;
};

/**
 * A sum of weighted Pauli strings over a fixed qubit count, closed
 * under addition, scaling and multiplication.
 */
class PauliSum
{
  public:
    /** The zero operator on n qubits. */
    explicit PauliSum(size_t num_qubits) : numQubits_(num_qubits) {}

    /** A single-term operator. */
    PauliSum(std::complex<double> coeff, PauliString s);

    /** The identity operator scaled by coeff. */
    static PauliSum scaledIdentity(size_t n, std::complex<double> coeff);

    size_t numQubits() const { return numQubits_; }
    const std::vector<PauliTerm> &terms() const { return terms_; }
    bool empty() const { return terms_.empty(); }
    size_t size() const { return terms_.size(); }

    /** Append a term without simplification. */
    void addTerm(std::complex<double> coeff, PauliString s);

    PauliSum operator+(const PauliSum &o) const;
    PauliSum operator-(const PauliSum &o) const;
    PauliSum operator*(const PauliSum &o) const;
    PauliSum operator*(std::complex<double> scale) const;

    PauliSum &operator+=(const PauliSum &o);

    /**
     * Merge identical strings, drop terms with |coeff| below eps, and
     * sort terms lexicographically for deterministic output.
     */
    PauliSum simplified(double eps = 1e-12) const;

    /** A - A^dagger is anti-Hermitian: all coefficients imaginary. */
    bool isAntiHermitian(double eps = 1e-12) const;

    /** Hermitian check: all coefficients real after simplification. */
    bool isHermitian(double eps = 1e-12) const;

    /** Hermitian conjugate (conjugate coefficients; strings are self-adj). */
    PauliSum adjoint() const;

  private:
    size_t numQubits_;
    std::vector<PauliTerm> terms_;
};

} // namespace tetris

#endif // TETRIS_PAULI_PAULI_SUM_HH
