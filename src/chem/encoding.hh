/**
 * @file
 * Fermion-to-qubit encodings.
 *
 * An encoding defines the annihilation operator a_j of each fermionic
 * mode as a PauliSum; creation operators are adjoints. Excitation
 * operators are then obtained purely by Pauli algebra, so one
 * implementation serves both Jordan-Wigner and Bravyi-Kitaev.
 *
 * Correctness is established in tests by checking the canonical
 * anticommutation relations {a_p, a_q^dag} = delta_pq, {a_p, a_q} = 0
 * symbolically for every mode pair.
 */

#ifndef TETRIS_CHEM_ENCODING_HH
#define TETRIS_CHEM_ENCODING_HH

#include <memory>
#include <string>
#include <vector>

#include "pauli/pauli_sum.hh"

namespace tetris
{

/** Interface of a fermion-to-qubit encoding over n modes/qubits. */
class FermionEncoding
{
  public:
    explicit FermionEncoding(int num_modes) : numModes_(num_modes) {}
    virtual ~FermionEncoding() = default;

    int numModes() const { return numModes_; }

    /** The annihilation operator a_j as a Pauli sum. */
    virtual PauliSum annihilationOp(int mode) const = 0;

    /** The creation operator a_j^dagger. */
    PauliSum creationOp(int mode) const;

    /** Encoding name for reports ("jordan-wigner", "bravyi-kitaev"). */
    virtual std::string name() const = 0;

  protected:
    int numModes_;
};

/**
 * Jordan-Wigner: a_j = Z_0 ... Z_{j-1} (X_j + i Y_j)/2. Operator
 * locality grows linearly with the mode index (the Z padding the
 * paper's Observation 3 attributes the Pauli-string similarity to).
 */
class JordanWignerEncoding : public FermionEncoding
{
  public:
    explicit JordanWignerEncoding(int num_modes)
        : FermionEncoding(num_modes)
    {
    }

    PauliSum annihilationOp(int mode) const override;
    std::string name() const override { return "jordan-wigner"; }
};

/**
 * Bravyi-Kitaev via the Fenwick-tree construction of
 * Seeley-Richard-Love: qubit j stores the parity of a segment of
 * modes; a_j acts with X on the update set U(j), Z on the parity set
 * P(j) and remainder set R(j) = P(j) \ F(j) (F = flip set, the
 * children of j in the tree). Works for any mode count (no
 * power-of-two padding).
 */
class BravyiKitaevEncoding : public FermionEncoding
{
  public:
    explicit BravyiKitaevEncoding(int num_modes);

    PauliSum annihilationOp(int mode) const override;
    std::string name() const override { return "bravyi-kitaev"; }

    /** Ancestors of mode j in the Fenwick tree (update set). */
    const std::vector<int> &updateSet(int j) const { return update_[j]; }
    /** Qubits storing the parity of modes [0, j). */
    const std::vector<int> &paritySet(int j) const { return parity_[j]; }
    /** Children of j in the Fenwick tree (flip set). */
    const std::vector<int> &flipSet(int j) const { return flip_[j]; }
    /** paritySet minus flipSet. */
    const std::vector<int> &remainderSet(int j) const { return rem_[j]; }

  private:
    std::vector<int> parent_;
    std::vector<std::vector<int>> children_;
    std::vector<std::vector<int>> update_;
    std::vector<std::vector<int>> parity_;
    std::vector<std::vector<int>> flip_;
    std::vector<std::vector<int>> rem_;
};

/** Factory by name: "jw"/"jordan-wigner" or "bk"/"bravyi-kitaev". */
std::unique_ptr<FermionEncoding> makeEncoding(const std::string &name,
                                              int num_modes);

} // namespace tetris

#endif // TETRIS_CHEM_ENCODING_HH
