/**
 * @file
 * UCCSD ansatz construction (singles and doubles excitations).
 *
 * Builds the Pauli-block list the compilers consume. Block counts and
 * string counts reproduce the paper's Table I exactly for the six
 * molecule presets (see DESIGN.md: the (spin-orbital, electron)
 * pairs were recovered from the published Pauli counts).
 */

#ifndef TETRIS_CHEM_UCCSD_HH
#define TETRIS_CHEM_UCCSD_HH

#include <string>
#include <vector>

#include "chem/encoding.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** How spin orbitals map onto qubit/mode indices. */
enum class SpinOrdering
{
    /** All alpha spatial orbitals first, then all beta. */
    Blocked,
    /** Alternating alpha/beta (mode = 2*spatial + spin). */
    Interleaved,
};

/** Options controlling UCCSD generation. */
struct UccsdOptions
{
    SpinOrdering ordering = SpinOrdering::Blocked;
    /** Seed for the (structure-irrelevant) theta parameters. */
    uint64_t thetaSeed = 7;
};

/**
 * Anti-Hermitian single excitation T = a^dag_a a_i - a^dag_i a_a
 * rendered as a Pauli block: strings plus per-string weights such
 * that exp(theta T) = prod_k exp(-i w_k theta / 2 * P_k).
 */
PauliBlock makeSingleExcitation(const FermionEncoding &enc, int mode_i,
                                int mode_a, double theta);

/**
 * Anti-Hermitian double excitation
 * T = a^dag_r a^dag_s a_q a_p - h.c. as a Pauli block.
 */
PauliBlock makeDoubleExcitation(const FermionEncoding &enc, int mode_p,
                                int mode_q, int mode_r, int mode_s,
                                double theta);

/**
 * The full closed-shell UCCSD ansatz: all spin-preserving singles
 * and all spin-conserving doubles over (num_spin_orbitals,
 * num_electrons). One Pauli block per excitation operator.
 */
std::vector<PauliBlock> buildUccsd(const FermionEncoding &enc,
                                   int num_electrons,
                                   const UccsdOptions &opts
                                   = UccsdOptions());

/** A named molecule preset (sizes reproduce the paper's Table I). */
struct MoleculeSpec
{
    std::string name;
    int numSpinOrbitals;
    int numElectrons;
};

/** LiH, BeH2, CH4, MgH2, LiCl, CO2 in paper order. */
const std::vector<MoleculeSpec> &moleculeBenchmarks();

/** Find a preset by name (fatal if unknown). */
const MoleculeSpec &moleculeByName(const std::string &name);

/** Build UCCSD blocks for a preset under a named encoding. */
std::vector<PauliBlock> buildMolecule(const MoleculeSpec &spec,
                                      const std::string &encoding,
                                      const UccsdOptions &opts
                                      = UccsdOptions());

/**
 * The paper's synthetic UCC-n benchmark: n^2 random double
 * excitations over n qubits (8 JW strings each), seeded.
 */
std::vector<PauliBlock> buildSyntheticUcc(int num_qubits, uint64_t seed);

/** Naive per-string CNOT count: sum of 2 * (weight - 1). */
size_t naiveCnotCount(const std::vector<PauliBlock> &blocks);

/**
 * Naive basis-change single-qubit gate count: 2 per non-Z active
 * qubit per string (the Table I "#1Q" accounting; RZ excluded).
 */
size_t naiveOneQubitCount(const std::vector<PauliBlock> &blocks);

/** Total number of Pauli strings across blocks. */
size_t totalStrings(const std::vector<PauliBlock> &blocks);

} // namespace tetris

#endif // TETRIS_CHEM_UCCSD_HH
