#include "chem/encoding.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tetris
{

PauliSum
FermionEncoding::creationOp(int mode) const
{
    return annihilationOp(mode).adjoint();
}

PauliSum
JordanWignerEncoding::annihilationOp(int mode) const
{
    TETRIS_ASSERT(mode >= 0 && mode < numModes_);
    PauliString x_part(static_cast<size_t>(numModes_));
    PauliString y_part(static_cast<size_t>(numModes_));
    for (int q = 0; q < mode; ++q) {
        x_part.setOp(q, PauliOp::Z);
        y_part.setOp(q, PauliOp::Z);
    }
    x_part.setOp(mode, PauliOp::X);
    y_part.setOp(mode, PauliOp::Y);

    PauliSum a(numModes_);
    a.addTerm({0.5, 0.0}, std::move(x_part));
    a.addTerm({0.0, 0.5}, std::move(y_part));
    return a;
}

BravyiKitaevEncoding::BravyiKitaevEncoding(int num_modes)
    : FermionEncoding(num_modes), parent_(num_modes, -1),
      children_(num_modes), update_(num_modes), parity_(num_modes),
      flip_(num_modes), rem_(num_modes)
{
    // Recursive Fenwick construction (Seeley-Richard-Love): node R
    // stores the parity of modes [L, R]; its left half's top becomes
    // its child.
    auto build = [&](auto &&self, int lo, int hi) -> void {
        if (lo >= hi)
            return;
        int mid = (lo + hi) / 2;
        parent_[mid] = hi;
        children_[hi].push_back(mid);
        self(self, lo, mid);
        self(self, mid + 1, hi);
    };
    build(build, 0, num_modes - 1);

    for (int j = 0; j < num_modes; ++j) {
        // Update set: the ancestor chain above j.
        for (int a = parent_[j]; a != -1; a = parent_[a])
            update_[j].push_back(a);

        // Parity set: children of j or of any ancestor that lie
        // strictly below j; their segments tile [0, j).
        std::vector<int> chain{j};
        chain.insert(chain.end(), update_[j].begin(), update_[j].end());
        for (int x : chain) {
            for (int c : children_[x]) {
                if (c < j)
                    parity_[j].push_back(c);
            }
        }
        std::sort(parity_[j].begin(), parity_[j].end());

        flip_[j] = children_[j];
        std::sort(flip_[j].begin(), flip_[j].end());

        std::set_difference(parity_[j].begin(), parity_[j].end(),
                            flip_[j].begin(), flip_[j].end(),
                            std::back_inserter(rem_[j]));
    }
}

PauliSum
BravyiKitaevEncoding::annihilationOp(int mode) const
{
    TETRIS_ASSERT(mode >= 0 && mode < numModes_);

    // a_j = 1/2 (X_U X_j Z_P + i X_U Y_j Z_R)   [adjoint of a^dag_j]
    PauliString x_str(static_cast<size_t>(numModes_));
    PauliString y_str(static_cast<size_t>(numModes_));
    for (int u : update_[mode]) {
        x_str.setOp(u, PauliOp::X);
        y_str.setOp(u, PauliOp::X);
    }
    for (int p : parity_[mode])
        x_str.setOp(p, PauliOp::Z);
    for (int r : rem_[mode])
        y_str.setOp(r, PauliOp::Z);
    x_str.setOp(mode, PauliOp::X);
    y_str.setOp(mode, PauliOp::Y);

    PauliSum a(numModes_);
    a.addTerm({0.5, 0.0}, std::move(x_str));
    a.addTerm({0.0, 0.5}, std::move(y_str));
    return a;
}

std::unique_ptr<FermionEncoding>
makeEncoding(const std::string &name, int num_modes)
{
    if (name == "jw" || name == "jordan-wigner")
        return std::make_unique<JordanWignerEncoding>(num_modes);
    if (name == "bk" || name == "bravyi-kitaev")
        return std::make_unique<BravyiKitaevEncoding>(num_modes);
    fatal("unknown encoding '", name, "'");
}

} // namespace tetris
