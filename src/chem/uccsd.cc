#include "chem/uccsd.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tetris
{

namespace
{

/**
 * Convert an anti-Hermitian PauliSum T = sum_k (i c_k) P_k into a
 * PauliBlock with weights w_k = -2 c_k so that
 * exp(theta T) = prod_k exp(-i w_k theta / 2 * P_k).
 */
PauliBlock
blockFromAntiHermitian(const PauliSum &t, double theta)
{
    PauliSum s = t.simplified();
    TETRIS_ASSERT(s.isAntiHermitian(),
                  "excitation operator is not anti-Hermitian");
    TETRIS_ASSERT(!s.empty(), "excitation operator vanished");
    std::vector<PauliString> strings;
    std::vector<double> weights;
    strings.reserve(s.size());
    weights.reserve(s.size());
    for (const auto &term : s.terms()) {
        strings.push_back(term.string);
        weights.push_back(-2.0 * term.coeff.imag());
    }
    return PauliBlock(std::move(strings), std::move(weights), theta);
}

/** Map a spatial orbital and spin to a mode index. */
int
modeIndex(int spatial, int spin, int num_spatial, SpinOrdering ordering)
{
    if (ordering == SpinOrdering::Blocked)
        return spatial + spin * num_spatial;
    return 2 * spatial + spin;
}

} // namespace

PauliBlock
makeSingleExcitation(const FermionEncoding &enc, int mode_i, int mode_a,
                     double theta)
{
    PauliSum t = enc.creationOp(mode_a) * enc.annihilationOp(mode_i);
    t = t - t.adjoint();
    return blockFromAntiHermitian(t, theta);
}

PauliBlock
makeDoubleExcitation(const FermionEncoding &enc, int mode_p, int mode_q,
                     int mode_r, int mode_s, double theta)
{
    PauliSum t = enc.creationOp(mode_r) * enc.creationOp(mode_s) *
                 enc.annihilationOp(mode_q) * enc.annihilationOp(mode_p);
    t = t - t.adjoint();
    return blockFromAntiHermitian(t, theta);
}

std::vector<PauliBlock>
buildUccsd(const FermionEncoding &enc, int num_electrons,
           const UccsdOptions &opts)
{
    const int n = enc.numModes();
    TETRIS_ASSERT(n % 2 == 0, "odd spin-orbital count");
    TETRIS_ASSERT(num_electrons % 2 == 0 && num_electrons > 0 &&
                      num_electrons < n,
                  "unsupported electron count");
    const int num_spatial = n / 2;
    const int occ = num_electrons / 2; // occupied spatial orbitals

    Rng rng(opts.thetaSeed);
    auto next_theta = [&rng] { return rng.uniform(0.05, 1.0); };
    auto mode = [&](int spatial, int spin) {
        return modeIndex(spatial, spin, num_spatial, opts.ordering);
    };

    std::vector<PauliBlock> blocks;

    // Spin-preserving singles: occupied -> virtual, same spin.
    for (int spin = 0; spin < 2; ++spin) {
        for (int i = 0; i < occ; ++i) {
            for (int a = occ; a < num_spatial; ++a) {
                blocks.push_back(makeSingleExcitation(
                    enc, mode(i, spin), mode(a, spin), next_theta()));
            }
        }
    }

    // Spin-conserving doubles over spin-orbital pairs p<q -> r<s with
    // matching spin multisets.
    struct SpinOrb
    {
        int mode;
        int spin;
    };
    std::vector<SpinOrb> occ_so, virt_so;
    for (int spin = 0; spin < 2; ++spin) {
        for (int i = 0; i < occ; ++i)
            occ_so.push_back({mode(i, spin), spin});
        for (int a = occ; a < num_spatial; ++a)
            virt_so.push_back({mode(a, spin), spin});
    }

    for (size_t p = 0; p < occ_so.size(); ++p) {
        for (size_t q = p + 1; q < occ_so.size(); ++q) {
            int occ_alpha = (occ_so[p].spin == 0) + (occ_so[q].spin == 0);
            for (size_t r = 0; r < virt_so.size(); ++r) {
                for (size_t s = r + 1; s < virt_so.size(); ++s) {
                    int virt_alpha = (virt_so[r].spin == 0) +
                                     (virt_so[s].spin == 0);
                    if (occ_alpha != virt_alpha)
                        continue;
                    blocks.push_back(makeDoubleExcitation(
                        enc, occ_so[p].mode, occ_so[q].mode,
                        virt_so[r].mode, virt_so[s].mode, next_theta()));
                }
            }
        }
    }

    return blocks;
}

const std::vector<MoleculeSpec> &
moleculeBenchmarks()
{
    static const std::vector<MoleculeSpec> specs = {
        {"LiH", 12, 4},  {"BeH2", 14, 6}, {"CH4", 18, 8},
        {"MgH2", 22, 8}, {"LiCl", 28, 8}, {"CO2", 30, 8},
    };
    return specs;
}

const MoleculeSpec &
moleculeByName(const std::string &name)
{
    for (const auto &spec : moleculeBenchmarks()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown molecule '", name, "'");
}

std::vector<PauliBlock>
buildMolecule(const MoleculeSpec &spec, const std::string &encoding,
              const UccsdOptions &opts)
{
    auto enc = makeEncoding(encoding, spec.numSpinOrbitals);
    return buildUccsd(*enc, spec.numElectrons, opts);
}

std::vector<PauliBlock>
buildSyntheticUcc(int num_qubits, uint64_t seed)
{
    TETRIS_ASSERT(num_qubits >= 4);
    JordanWignerEncoding enc(num_qubits);
    Rng rng(seed);
    std::vector<PauliBlock> blocks;
    const int count = num_qubits * num_qubits;
    blocks.reserve(count);
    while (static_cast<int>(blocks.size()) < count) {
        // Four distinct modes; a^dag_r a^dag_s a_q a_p - h.c.
        auto picks = rng.sampleIndices(num_qubits, 4);
        int p = static_cast<int>(picks[0]);
        int q = static_cast<int>(picks[1]);
        int r = static_cast<int>(picks[2]);
        int s = static_cast<int>(picks[3]);
        if (p > q)
            std::swap(p, q);
        if (r > s)
            std::swap(r, s);
        blocks.push_back(makeDoubleExcitation(enc, p, q, r, s,
                                              rng.uniform(0.05, 1.0)));
    }
    return blocks;
}

size_t
naiveCnotCount(const std::vector<PauliBlock> &blocks)
{
    size_t n = 0;
    for (const auto &b : blocks) {
        for (const auto &s : b.strings()) {
            size_t w = s.weight();
            if (w >= 2)
                n += 2 * (w - 1);
        }
    }
    return n;
}

size_t
naiveOneQubitCount(const std::vector<PauliBlock> &blocks)
{
    size_t n = 0;
    for (const auto &b : blocks) {
        for (const auto &s : b.strings()) {
            for (size_t q = 0; q < s.numQubits(); ++q) {
                if (s.op(q) == PauliOp::X || s.op(q) == PauliOp::Y)
                    n += 2;
            }
        }
    }
    return n;
}

size_t
totalStrings(const std::vector<PauliBlock> &blocks)
{
    size_t n = 0;
    for (const auto &b : blocks)
        n += b.size();
    return n;
}

} // namespace tetris
