#include "hardware/topologies.hh"

#include <string>

#include "common/logging.hh"

namespace tetris
{

CouplingGraph
lineTopology(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return CouplingGraph(n, std::move(edges),
                         "line-" + std::to_string(n));
}

CouplingGraph
ringTopology(int n)
{
    TETRIS_ASSERT(n >= 3, "ring needs >= 3 nodes");
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        edges.emplace_back(i, (i + 1) % n);
    return CouplingGraph(n, std::move(edges),
                         "ring-" + std::to_string(n));
}

CouplingGraph
gridTopology(int rows, int cols)
{
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(id(r, c), id(r + 1, c));
        }
    }
    return CouplingGraph(rows * cols, std::move(edges),
                         "grid-" + std::to_string(rows) + "x" +
                             std::to_string(cols));
}

CouplingGraph
heavyHexTopology(int rows, int cols, int trim_last_bridges)
{
    TETRIS_ASSERT(rows >= 1 && cols >= 1);

    // Count bridges per gap first so node ids can be assigned in
    // reading order: row 0, gap-0 bridges, row 1, gap-1 bridges, ...
    auto bridge_cols = [cols](int gap) {
        std::vector<int> bc;
        for (int c = gap % 2 == 0 ? 0 : 2; c < cols; c += 4)
            bc.push_back(c);
        return bc;
    };

    int total_bridges = 0;
    for (int g = 0; g + 1 < rows; ++g)
        total_bridges += static_cast<int>(bridge_cols(g).size());
    TETRIS_ASSERT(trim_last_bridges >= 0 &&
                  trim_last_bridges <= total_bridges);
    int kept_bridges = total_bridges - trim_last_bridges;

    std::vector<std::pair<int, int>> edges;
    std::vector<int> row_base(rows);
    int next_id = 0;
    int bridges_emitted = 0;

    for (int r = 0; r < rows; ++r) {
        row_base[r] = next_id;
        next_id += cols;
        for (int c = 0; c + 1 < cols; ++c)
            edges.emplace_back(row_base[r] + c, row_base[r] + c + 1);
        if (r + 1 >= rows)
            continue;
        // Bridges in gap r sit between row r (already numbered) and
        // row r+1 (numbered next); we know row r+1's base in advance.
        int next_row_base = next_id + static_cast<int>(
            bridge_cols(r).size());
        // Account for bridges that will be trimmed in this gap.
        int usable = kept_bridges - bridges_emitted;
        const auto bc = bridge_cols(r);
        int in_gap = std::min<int>(usable, static_cast<int>(bc.size()));
        next_row_base = next_id + in_gap;
        for (int k = 0; k < in_gap; ++k) {
            int bridge = next_id++;
            ++bridges_emitted;
            edges.emplace_back(row_base[r] + bc[k], bridge);
            edges.emplace_back(bridge, next_row_base + bc[k]);
        }
    }

    return CouplingGraph(next_id, std::move(edges),
                         "heavy-hex-" + std::to_string(rows) + "x" +
                             std::to_string(cols));
}

CouplingGraph
ibmIthaca65()
{
    // 5 rows x 11 data qubits = 55, plus 12 bridges minus 2 trimmed
    // from the last gap = 65 qubits, degree <= 3.
    std::vector<std::pair<int, int>> edges =
        heavyHexTopology(5, 11, 2).edges();
    return CouplingGraph(65, std::move(edges), "ibm-ithaca-65");
}

CouplingGraph
sycamoreTopology(int rows, int cols)
{
    std::vector<std::pair<int, int>> edges;
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r + 1 < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            edges.emplace_back(id(r, c), id(r + 1, c));
            int diag = r % 2 == 0 ? c + 1 : c - 1;
            if (diag >= 0 && diag < cols)
                edges.emplace_back(id(r, c), id(r + 1, diag));
        }
    }
    return CouplingGraph(rows * cols, std::move(edges),
                         "sycamore-" + std::to_string(rows) + "x" +
                             std::to_string(cols));
}

CouplingGraph
googleSycamore64()
{
    std::vector<std::pair<int, int>> edges =
        sycamoreTopology(8, 8).edges();
    return CouplingGraph(64, std::move(edges), "google-sycamore-64");
}

} // namespace tetris
