/**
 * @file
 * Device topology generators.
 *
 * Provides the two evaluation backends of the paper -- an IBM
 * heavy-hex-like 65-qubit device ("ithaca") and a Google
 * Sycamore-like 64-qubit device -- plus simple line/ring/grid
 * topologies used in tests and examples.
 *
 * The heavy-hex generator follows the published lattice style: rows
 * of linearly connected data qubits joined by degree-2 bridge qubits
 * whose columns alternate between rows, keeping max degree 3. The
 * exact IBM edge list is not in the paper; see DESIGN.md
 * "Substitutions".
 */

#ifndef TETRIS_HARDWARE_TOPOLOGIES_HH
#define TETRIS_HARDWARE_TOPOLOGIES_HH

#include "hardware/coupling_graph.hh"

namespace tetris
{

/** A 1-D chain of n qubits. */
CouplingGraph lineTopology(int n);

/** A cycle of n qubits. */
CouplingGraph ringTopology(int n);

/** A rows x cols nearest-neighbor grid. */
CouplingGraph gridTopology(int rows, int cols);

/**
 * A heavy-hex lattice: `rows` rows of `cols` chained data qubits;
 * between consecutive rows, bridge qubits at columns 0,4,8,... (even
 * gaps) or 2,6,10,... (odd gaps). `trim_last_bridges` removes that
 * many of the highest-numbered bridge qubits (used to hit an exact
 * device size while preserving connectivity).
 */
CouplingGraph heavyHexTopology(int rows, int cols,
                               int trim_last_bridges = 0);

/** The 65-qubit heavy-hex evaluation backend (IBM-ithaca-like). */
CouplingGraph ibmIthaca65();

/**
 * A Sycamore-style diagonal lattice: each qubit couples to two
 * qubits in the row above and two in the row below (degree <= 4).
 */
CouplingGraph sycamoreTopology(int rows, int cols);

/** The 64-qubit Sycamore-like evaluation backend (8 per row). */
CouplingGraph googleSycamore64();

} // namespace tetris

#endif // TETRIS_HARDWARE_TOPOLOGIES_HH
