#include "hardware/layout.hh"

#include "common/logging.hh"

namespace tetris
{

Layout::Layout(int num_logical, int num_physical)
    : l2p_(num_logical), p2l_(num_physical, -1)
{
    TETRIS_ASSERT(num_logical <= num_physical,
                  "more logical than physical qubits");
    for (int i = 0; i < num_logical; ++i) {
        l2p_[i] = i;
        p2l_[i] = i;
    }
}

std::optional<Layout>
Layout::fromMapping(const std::vector<int> &l2p, int num_physical)
{
    if (num_physical < 0)
        return std::nullopt;
    Layout layout;
    layout.l2p_ = l2p;
    layout.p2l_.assign(num_physical, -1);
    for (size_t logical = 0; logical < l2p.size(); ++logical) {
        int phys = l2p[logical];
        if (phys < 0)
            continue; // unplaced
        if (phys >= num_physical || layout.p2l_[phys] >= 0)
            return std::nullopt; // out of range or two-on-one
        layout.p2l_[phys] = static_cast<int>(logical);
    }
    return layout;
}

void
Layout::applySwap(int phys_a, int phys_b)
{
    int la = p2l_[phys_a];
    int lb = p2l_[phys_b];
    p2l_[phys_a] = lb;
    p2l_[phys_b] = la;
    if (la >= 0)
        l2p_[la] = phys_b;
    if (lb >= 0)
        l2p_[lb] = phys_a;
}

void
Layout::move(int phys_from, int phys_to)
{
    TETRIS_ASSERT(isFree(phys_to), "destination not free");
    applySwap(phys_from, phys_to);
}

void
Layout::place(int logical, int phys)
{
    TETRIS_ASSERT(isFree(phys), "physical slot occupied");
    TETRIS_ASSERT(l2p_[logical] < 0, "logical qubit already placed");
    l2p_[logical] = phys;
    p2l_[phys] = logical;
}

void
Layout::evict(int logical)
{
    int phys = l2p_[logical];
    TETRIS_ASSERT(phys >= 0 && p2l_[phys] == logical);
    p2l_[phys] = -1;
    l2p_[logical] = -1;
}

} // namespace tetris
