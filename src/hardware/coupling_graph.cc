#include "hardware/coupling_graph.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/hash.hh"
#include "common/logging.hh"

namespace tetris
{

namespace
{
constexpr int kInf = std::numeric_limits<int>::max() / 4;
} // namespace

CouplingGraph::CouplingGraph(int num_qubits,
                             std::vector<std::pair<int, int>> edges,
                             std::string name)
    : numQubits_(num_qubits), name_(std::move(name)),
      edges_(std::move(edges)), adj_(num_qubits)
{
    for (auto &[a, b] : edges_) {
        TETRIS_ASSERT(a >= 0 && a < numQubits_ && b >= 0 && b < numQubits_,
                      "edge endpoint out of range");
        TETRIS_ASSERT(a != b, "self edge");
        adj_[a].push_back(b);
        adj_[b].push_back(a);
    }
    for (auto &nbrs : adj_)
        std::sort(nbrs.begin(), nbrs.end());

    // All-pairs BFS.
    dist_.assign(numQubits_, std::vector<int>(numQubits_, kInf));
    for (int s = 0; s < numQubits_; ++s) {
        dist_[s][s] = 0;
        std::deque<int> queue{s};
        while (!queue.empty()) {
            int u = queue.front();
            queue.pop_front();
            for (int v : adj_[u]) {
                if (dist_[s][v] == kInf) {
                    dist_[s][v] = dist_[s][u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
}

bool
CouplingGraph::connected(int a, int b) const
{
    return dist_[a][b] == 1;
}

bool
CouplingGraph::isConnected() const
{
    for (int q = 0; q < numQubits_; ++q) {
        if (dist_[0][q] >= kInf)
            return false;
    }
    return true;
}

std::vector<int>
CouplingGraph::shortestPath(int a, int b,
                            const std::vector<bool> *blocked) const
{
    if (a == b)
        return {a};

    std::vector<int> parent(numQubits_, -1);
    std::deque<int> queue{a};
    std::vector<bool> seen(numQubits_, false);
    seen[a] = true;
    while (!queue.empty()) {
        int u = queue.front();
        queue.pop_front();
        for (int v : adj_[u]) {
            if (seen[v])
                continue;
            if (blocked && (*blocked)[v] && v != b)
                continue;
            seen[v] = true;
            parent[v] = u;
            if (v == b) {
                std::vector<int> path{b};
                for (int x = u; x != -1; x = parent[x])
                    path.push_back(x);
                std::reverse(path.begin(), path.end());
                return path;
            }
            queue.push_back(v);
        }
    }
    return {};
}

int
CouplingGraph::findCenter(const std::vector<int> &terminals) const
{
    TETRIS_ASSERT(!terminals.empty(), "findCenter with no terminals");
    // Minimize eccentricity w.r.t. the terminals, breaking ties by
    // total distance, then by node index (deterministic).
    int best = -1;
    long best_ecc = std::numeric_limits<long>::max();
    long best_total = std::numeric_limits<long>::max();
    for (int c = 0; c < numQubits_; ++c) {
        long ecc = 0, total = 0;
        for (int t : terminals) {
            ecc = std::max<long>(ecc, dist_[c][t]);
            total += dist_[c][t];
        }
        if (ecc < best_ecc || (ecc == best_ecc && total < best_total)) {
            best_ecc = ecc;
            best_total = total;
            best = c;
        }
    }
    return best;
}

int
CouplingGraph::maxDegree() const
{
    size_t d = 0;
    for (const auto &nbrs : adj_)
        d = std::max(d, nbrs.size());
    return static_cast<int>(d);
}

uint64_t
CouplingGraph::contentHash() const
{
    // Canonicalize the edge list so construction order is irrelevant.
    std::vector<std::pair<int, int>> canon = edges_;
    for (auto &[a, b] : canon) {
        if (a > b)
            std::swap(a, b);
    }
    std::sort(canon.begin(), canon.end());
    uint64_t h = fnvMix(kFnvOffset, numQubits_);
    h = fnvMix(h, canon.size());
    for (const auto &[a, b] : canon) {
        h = fnvMix(h, a);
        h = fnvMix(h, b);
    }
    return h;
}

} // namespace tetris
