/**
 * @file
 * Logical-to-physical qubit layout.
 */

#ifndef TETRIS_HARDWARE_LAYOUT_HH
#define TETRIS_HARDWARE_LAYOUT_HH

#include <optional>
#include <vector>

namespace tetris
{

/**
 * A bijective partial mapping between logical program qubits and
 * physical device qubits. Physical qubits holding no logical qubit
 * are "free" (the bridging pass treats unused free qubits as |0>
 * ancillas).
 */
class Layout
{
  public:
    Layout() = default;

    /** Identity mapping: logical i on physical i. */
    Layout(int num_logical, int num_physical);

    /**
     * Rebuild a layout from its logical->physical vector (the
     * toPhysical() image), e.g. when deserializing. Entries of -1 are
     * unplaced logical qubits. Returns nullopt instead of asserting
     * when the mapping is not an injective map into
     * [0, num_physical) — the input may come from untrusted bytes.
     */
    static std::optional<Layout> fromMapping(const std::vector<int> &l2p,
                                             int num_physical);

    int numLogical() const { return static_cast<int>(l2p_.size()); }
    int numPhysical() const { return static_cast<int>(p2l_.size()); }

    /** Physical position of a logical qubit. */
    int physOf(int logical) const { return l2p_[logical]; }

    /** Logical occupant of a physical qubit, or -1 if free. */
    int logicalAt(int phys) const { return p2l_[phys]; }

    /** True if the physical qubit carries no logical qubit. */
    bool isFree(int phys) const { return p2l_[phys] < 0; }

    /** Exchange the occupants of two physical qubits. */
    void applySwap(int phys_a, int phys_b);

    /** Move the occupant of phys_from onto free phys_to. */
    void move(int phys_from, int phys_to);

    /** Assign logical qubit onto a free physical qubit. */
    void place(int logical, int phys);

    /** Remove a logical qubit from the layout (its slot becomes free). */
    void evict(int logical);

    /** The full logical->physical vector. */
    const std::vector<int> &toPhysical() const { return l2p_; }

    bool operator==(const Layout &o) const = default;

  private:
    std::vector<int> l2p_;
    std::vector<int> p2l_;
};

} // namespace tetris

#endif // TETRIS_HARDWARE_LAYOUT_HH
