/**
 * @file
 * Hardware coupling graph with distance and path queries.
 */

#ifndef TETRIS_HARDWARE_COUPLING_GRAPH_HH
#define TETRIS_HARDWARE_COUPLING_GRAPH_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tetris
{

/**
 * Undirected connectivity graph of a quantum device. Nodes are
 * physical qubits. All-pairs BFS distances are computed once at
 * construction (devices here are <= a few hundred qubits).
 */
class CouplingGraph
{
  public:
    /** Build from an explicit edge list over n nodes. */
    CouplingGraph(int num_qubits,
                  std::vector<std::pair<int, int>> edges,
                  std::string name = "custom");

    int numQubits() const { return numQubits_; }
    const std::string &name() const { return name_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }
    const std::vector<int> &neighbors(int q) const { return adj_[q]; }

    /** True if (a, b) is an edge. */
    bool connected(int a, int b) const;

    /** BFS hop distance between two physical qubits. */
    int distance(int a, int b) const { return dist_[a][b]; }

    /** True if the whole graph is one connected component. */
    bool isConnected() const;

    /**
     * One shortest path from a to b (inclusive of both endpoints).
     * If `blocked` is non-null, nodes marked true are not traversed
     * (endpoints are always allowed). Returns an empty vector if no
     * path exists under the blocking constraints.
     */
    std::vector<int> shortestPath(int a, int b,
                                  const std::vector<bool> *blocked
                                  = nullptr) const;

    /**
     * The physical node minimizing the total BFS distance to the
     * given terminals (ties broken by lower index).
     */
    int findCenter(const std::vector<int> &terminals) const;

    /** Maximum node degree (used by topology tests). */
    int maxDegree() const;

    /**
     * FNV-1a hash over node count and edge list (the name is
     * excluded: two graphs with the same connectivity compile
     * identically). Used to key the compile cache.
     */
    uint64_t contentHash() const;

  private:
    int numQubits_;
    std::string name_;
    std::vector<std::pair<int, int>> edges_;
    std::vector<std::vector<int>> adj_;
    std::vector<std::vector<int>> dist_;
};

} // namespace tetris

#endif // TETRIS_HARDWARE_COUPLING_GRAPH_HH
