#include "serialize/artifact.hh"

#include "common/hash.hh"

namespace tetris::serialize
{

namespace
{

/** "TCA1" read as a little-endian u32. */
constexpr uint32_t kMagic = 0x31414354u;

/**
 * Upper bound on element counts read from untrusted input. Each
 * element is >= 1 payload byte, so a count past the remaining bytes
 * is always bogus; this also caps allocation before that check.
 */
constexpr uint64_t kMaxCount = uint64_t{1} << 32;

bool
countOk(BinaryReader &r, uint64_t n)
{
    if (n > kMaxCount || n > r.remaining()) {
        r.fail();
        return false;
    }
    return true;
}

} // namespace

void
write(BinaryWriter &w, const Circuit &c)
{
    w.i32(c.numQubits());
    w.u64(c.size());
    for (const Gate &g : c.gates()) {
        w.u8(static_cast<uint8_t>(g.kind));
        w.i32(g.q0);
        w.i32(g.q1);
        w.f64(g.angle);
    }
}

bool
read(BinaryReader &r, Circuit &c)
{
    int nq = r.i32();
    uint64_t count = r.u64();
    if (!r.ok() || nq < 0 || !countOk(r, count))
        return false;
    c = Circuit(nq);
    for (uint64_t i = 0; i < count; ++i) {
        Gate g;
        uint8_t kind = r.u8();
        g.q0 = r.i32();
        g.q1 = r.i32();
        g.angle = r.f64();
        if (!r.ok() || kind > static_cast<uint8_t>(GateKind::RESET)) {
            r.fail();
            return false;
        }
        g.kind = static_cast<GateKind>(kind);
        // Circuit::add asserts qubit ranges; validate here instead so
        // corrupt bytes surface as a decode failure, not an abort.
        bool q0_ok = g.q0 >= 0 && g.q0 < nq;
        bool q1_ok = g.isTwoQubit() ? (g.q1 >= 0 && g.q1 < nq &&
                                       g.q1 != g.q0)
                                    : g.q1 < 0;
        if (!q0_ok || !q1_ok) {
            r.fail();
            return false;
        }
        c.add(g);
    }
    return true;
}

void
write(BinaryWriter &w, const CompileStats &s)
{
    w.u64(s.cnotCount);
    w.u64(s.oneQubitCount);
    w.u64(s.totalGateCount);
    w.u64(s.depth);
    w.f64(s.durationDt);
    w.u64(s.swapCount);
    w.u64(s.swapCnots);
    w.u64(s.logicalCnots);
    w.u64(s.originalCnots);
    w.f64(s.cancelRatio);
    w.f64(s.compileSeconds);
    w.f64(s.scheduleSeconds);
    w.f64(s.synthSeconds);
    w.f64(s.peepholeSeconds);
    w.u64(s.synthesis.insertedSwaps);
    w.u64(s.synthesis.emittedCx);
    w.u64(s.synthesis.bridgeNodes);
    w.u64(s.synthesis.blocksWithCancellation);
    w.u64(s.synthesis.blocksFallback);
}

bool
read(BinaryReader &r, CompileStats &s)
{
    s.cnotCount = r.u64();
    s.oneQubitCount = r.u64();
    s.totalGateCount = r.u64();
    s.depth = r.u64();
    s.durationDt = r.f64();
    s.swapCount = r.u64();
    s.swapCnots = r.u64();
    s.logicalCnots = r.u64();
    s.originalCnots = r.u64();
    s.cancelRatio = r.f64();
    s.compileSeconds = r.f64();
    s.scheduleSeconds = r.f64();
    s.synthSeconds = r.f64();
    s.peepholeSeconds = r.f64();
    s.synthesis.insertedSwaps = r.u64();
    s.synthesis.emittedCx = r.u64();
    s.synthesis.bridgeNodes = r.u64();
    s.synthesis.blocksWithCancellation = r.u64();
    s.synthesis.blocksFallback = r.u64();
    return r.ok();
}

void
write(BinaryWriter &w, const Layout &l)
{
    w.i32(l.numPhysical());
    w.u64(static_cast<uint64_t>(l.numLogical()));
    for (int logical = 0; logical < l.numLogical(); ++logical)
        w.i32(l.physOf(logical));
}

bool
read(BinaryReader &r, Layout &l)
{
    int num_physical = r.i32();
    uint64_t num_logical = r.u64();
    // fromMapping allocates num_physical slots up front, so bound it
    // before trusting it: a checksum-valid but crafted/foreign file
    // must not be able to trigger a multi-GB allocation (bad_alloc
    // would escape decodeArtifact's no-throw contract). 1<<24 is
    // orders of magnitude above any real device.
    if (!r.ok() || num_physical < 0 || num_physical > (1 << 24) ||
        !countOk(r, num_logical)) {
        return false;
    }
    std::vector<int> l2p(static_cast<size_t>(num_logical));
    for (auto &phys : l2p)
        phys = r.i32();
    if (!r.ok())
        return false;
    auto layout = Layout::fromMapping(l2p, num_physical);
    if (!layout) {
        r.fail();
        return false;
    }
    l = std::move(*layout);
    return true;
}

std::string
encodeArtifact(uint64_t job_key, const CompileResult &result)
{
    BinaryWriter payload;
    write(payload, result.circuit);
    write(payload, result.stats);
    write(payload, result.initialLayout);
    write(payload, result.finalLayout);
    payload.u64(result.blockOrder.size());
    for (size_t idx : result.blockOrder)
        payload.u64(idx);
    payload.u8(result.cancelled ? 1 : 0);

    BinaryWriter file;
    file.u32(kMagic);
    file.u32(kArtifactVersion);
    file.u64(job_key);
    file.u64(payload.size());
    file.bytes(payload.data().data(), payload.size());
    file.u64(fnvMixBytes(kFnvOffset, payload.data().data(),
                         payload.size()));
    return file.data();
}

bool
decodeArtifact(ByteSpan bytes, uint64_t expected_key,
               CompileResult &result)
{
    BinaryReader file(bytes);
    uint32_t magic = file.u32();
    uint32_t version = file.u32();
    uint64_t key = file.u64();
    uint64_t payload_size = file.u64();
    if (!file.ok() || magic != kMagic || version != kArtifactVersion ||
        key != expected_key) {
        return false;
    }
    std::string_view payload = file.view(payload_size);
    uint64_t checksum = file.u64();
    if (!file.ok() || !file.atEnd() ||
        checksum !=
            fnvMixBytes(kFnvOffset, payload.data(), payload.size())) {
        return false;
    }

    BinaryReader r(payload);
    CompileResult decoded;
    if (!read(r, decoded.circuit) || !read(r, decoded.stats) ||
        !read(r, decoded.initialLayout) ||
        !read(r, decoded.finalLayout)) {
        return false;
    }
    uint64_t order_count = r.u64();
    if (!r.ok() || !countOk(r, order_count))
        return false;
    decoded.blockOrder.resize(static_cast<size_t>(order_count));
    for (auto &idx : decoded.blockOrder)
        idx = static_cast<size_t>(r.u64());
    decoded.cancelled = r.u8() != 0;
    if (!r.ok() || !r.atEnd())
        return false;
    result = std::move(decoded);
    return true;
}

} // namespace tetris::serialize
