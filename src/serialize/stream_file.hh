/**
 * @file
 * Streamed multi-artifact container (.tcs files).
 *
 * A .tcs file is the output of one streamed compilation: the
 * sequence of per-chunk compile artifacts, appended in chunk order
 * as each window finishes, so the file is valid (up to its last
 * complete record) at every moment of a long run:
 *
 *   u32  magic        "TCS1"
 *   u32  version      kStreamVersion
 *   ...  records, each:
 *          u64  jobKey        Engine::jobKey of the chunk compile
 *          u64  chunkIndex    0-based, must equal the record ordinal
 *          u64  artifactSize
 *          ...  artifact      a complete .tca image (artifact.hh),
 *                             self-checksummed
 *
 * The writer appends and flushes record-at-a-time; the reader holds
 * one record in memory at a time, so both sides stay O(record) for
 * O(GB) files. Reading is total: a truncated tail, bit flip, or
 * foreign bytes surface as Status::Corrupt, never a crash. There is
 * deliberately no record count in the header — a crashed producer
 * leaves a readable prefix, and readers detect the end by EOF.
 */

#ifndef TETRIS_SERIALIZE_STREAM_FILE_HH
#define TETRIS_SERIALIZE_STREAM_FILE_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "core/compiler.hh"

namespace tetris::serialize
{

/** Bump on any .tcs wire-format change; readers reject others. */
inline constexpr uint32_t kStreamVersion = 1;

/** Append-only .tcs producer; one instance per output file. */
class StreamArtifactWriter
{
  public:
    /** Opens (truncates) `path` and writes the header. */
    explicit StreamArtifactWriter(const std::string &path);

    /** False after any I/O failure; sticky. */
    bool ok() const { return ok_; }

    /**
     * Append one chunk's artifact and flush it to the OS, so the
     * file's readable prefix always covers every completed chunk.
     * Returns ok().
     */
    bool append(uint64_t job_key, const CompileResult &result);

    /** Records appended so far. */
    size_t count() const { return count_; }

  private:
    std::ofstream out_;
    size_t count_ = 0;
    bool ok_ = false;
};

/** Sequential .tcs consumer; holds one record at a time. */
class StreamArtifactReader
{
  public:
    enum class Status
    {
        Record, ///< One record decoded into the out-params.
        End,    ///< Clean end of file after the last record.
        Corrupt ///< Malformed bytes; reading cannot continue.
    };

    /** Opens `path`; a bad header makes the first next() Corrupt. */
    explicit StreamArtifactReader(const std::string &path);

    /**
     * Decode the next record. Every structural check (record order,
     * artifact magic/version/key/checksum) must pass for
     * Status::Record; on Corrupt the out-params are unspecified.
     */
    Status next(uint64_t &job_key, CompileResult &result);

    /** Records successfully decoded so far. */
    size_t count() const { return count_; }

  private:
    std::ifstream in_;
    size_t count_ = 0;
    bool header_ok_ = false;
};

} // namespace tetris::serialize

#endif // TETRIS_SERIALIZE_STREAM_FILE_HH
