#include "serialize/binary.hh"

#include <bit>
#include <cstring>

namespace tetris::serialize
{

void
BinaryWriter::u8(uint8_t v)
{
    out_.push_back(static_cast<char>(v));
}

void
BinaryWriter::u32(uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out_.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
BinaryWriter::u64(uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out_.push_back(static_cast<char>((v >> shift) & 0xff));
}

void
BinaryWriter::i32(int32_t v)
{
    u32(static_cast<uint32_t>(v));
}

void
BinaryWriter::f64(double v)
{
    u64(std::bit_cast<uint64_t>(v));
}

void
BinaryWriter::str(std::string_view v)
{
    u64(v.size());
    out_.append(v.data(), v.size());
}

void
BinaryWriter::bytes(const void *data, size_t n)
{
    out_.append(static_cast<const char *>(data), n);
}

bool
BinaryReader::take(size_t n, const char *&p)
{
    if (!ok_ || n > data_.size() - pos_) {
        ok_ = false;
        return false;
    }
    p = data_.data() + pos_;
    pos_ += n;
    return true;
}

uint8_t
BinaryReader::u8()
{
    const char *p = nullptr;
    if (!take(1, p))
        return 0;
    return static_cast<uint8_t>(*p);
}

uint32_t
BinaryReader::u32()
{
    const char *p = nullptr;
    if (!take(4, p))
        return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    return v;
}

uint64_t
BinaryReader::u64()
{
    const char *p = nullptr;
    if (!take(8, p))
        return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
    return v;
}

int32_t
BinaryReader::i32()
{
    return static_cast<int32_t>(u32());
}

double
BinaryReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
BinaryReader::str()
{
    uint64_t n = u64();
    const char *p = nullptr;
    if (!take(static_cast<size_t>(n), p))
        return std::string();
    return std::string(p, static_cast<size_t>(n));
}

ByteSpan
BinaryReader::view(size_t n)
{
    const char *p = nullptr;
    if (!take(n, p))
        return ByteSpan();
    return ByteSpan(p, n);
}

} // namespace tetris::serialize
