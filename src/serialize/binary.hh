/**
 * @file
 * Binary (de)serialization primitives for on-disk artifacts.
 *
 * A byte-oriented writer/reader pair with an explicit little-endian
 * wire format, independent of host endianness and struct layout.
 * Strings and byte blobs are length-prefixed. The reader never
 * throws: any overrun or malformed length flips a sticky fail flag
 * and subsequent reads return zero values, so callers validate one
 * ok() check at the end instead of guarding every field — corrupt
 * input degrades to "decode failed", never to UB or an abort.
 *
 * The reader decodes over a borrowed ByteSpan and never copies the
 * underlying buffer, so it works equally over an in-memory string
 * and over an mmap'ed artifact (serialize/mmap_file.hh): the bytes
 * of a .tca file are decoded straight out of the page cache.
 */

#ifndef TETRIS_SERIALIZE_BINARY_HH
#define TETRIS_SERIALIZE_BINARY_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace tetris::serialize
{

/**
 * A borrowed, non-owning view of raw bytes. Decoders taking a
 * ByteSpan promise zero-copy access: the caller keeps the backing
 * storage (string, mapped file) alive for the duration of the call.
 */
using ByteSpan = std::string_view;

/** Append-only little-endian encoder over a growable byte string. */
class BinaryWriter
{
  public:
    void u8(uint8_t v);
    void u32(uint32_t v);
    void u64(uint64_t v);
    void i32(int32_t v);
    /** IEEE-754 bit pattern; NaN/inf round-trip exactly. */
    void f64(double v);
    /** u64 length prefix followed by the raw bytes. */
    void str(std::string_view v);
    void bytes(const void *data, size_t n);

    const std::string &data() const { return out_; }
    size_t size() const { return out_.size(); }

  private:
    std::string out_;
};

/** Non-throwing decoder over a borrowed byte range. */
class BinaryReader
{
  public:
    explicit BinaryReader(ByteSpan data) : data_(data) {}

    uint8_t u8();
    uint32_t u32();
    uint64_t u64();
    int32_t i32();
    double f64();
    /** Fails (and returns "") if the length prefix overruns. */
    std::string str();

    /** True while every read so far stayed in bounds. */
    bool ok() const { return ok_; }
    /** Mark the stream bad explicitly (semantic validation). */
    void fail() { ok_ = false; }
    size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }

    /**
     * Borrow the next n bytes without copying; empty view + fail on
     * overrun. Used to checksum a payload in place.
     */
    ByteSpan view(size_t n);

  private:
    bool take(size_t n, const char *&p);

    ByteSpan data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace tetris::serialize

#endif // TETRIS_SERIALIZE_BINARY_HH
