#include "serialize/stream_file.hh"

#include "serialize/artifact.hh"
#include "serialize/binary.hh"

namespace tetris::serialize
{

namespace
{

/** "TCS1" read as a little-endian u32. */
constexpr uint32_t kStreamMagic = 0x31534354u;

/** Cap one record's artifact before allocating its buffer. */
constexpr uint64_t kMaxArtifactBytes = uint64_t{1} << 32;

} // namespace

StreamArtifactWriter::StreamArtifactWriter(const std::string &path)
    : out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        return;
    BinaryWriter header;
    header.u32(kStreamMagic);
    header.u32(kStreamVersion);
    out_.write(header.data().data(),
               static_cast<std::streamsize>(header.size()));
    ok_ = static_cast<bool>(out_);
}

bool
StreamArtifactWriter::append(uint64_t job_key, const CompileResult &result)
{
    if (!ok_)
        return false;
    std::string artifact = encodeArtifact(job_key, result);
    BinaryWriter rec;
    rec.u64(job_key);
    rec.u64(count_);
    rec.u64(artifact.size());
    out_.write(rec.data().data(),
               static_cast<std::streamsize>(rec.size()));
    out_.write(artifact.data(),
               static_cast<std::streamsize>(artifact.size()));
    out_.flush();
    ok_ = static_cast<bool>(out_);
    if (ok_)
        ++count_;
    return ok_;
}

StreamArtifactReader::StreamArtifactReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        return;
    char raw[8];
    in_.read(raw, sizeof raw);
    if (!in_ || in_.gcount() != sizeof raw)
        return;
    BinaryReader r(ByteSpan(raw, sizeof raw));
    uint32_t magic = r.u32();
    uint32_t version = r.u32();
    header_ok_ =
        r.ok() && magic == kStreamMagic && version == kStreamVersion;
}

StreamArtifactReader::Status
StreamArtifactReader::next(uint64_t &job_key, CompileResult &result)
{
    if (!header_ok_)
        return Status::Corrupt;

    char raw[24];
    in_.read(raw, sizeof raw);
    if (in_.gcount() == 0 && in_.eof())
        return Status::End;
    if (in_.gcount() != sizeof raw)
        return Status::Corrupt; // truncated mid-record-header

    BinaryReader r(ByteSpan(raw, sizeof raw));
    uint64_t key = r.u64();
    uint64_t index = r.u64();
    uint64_t size = r.u64();
    if (!r.ok() || index != count_ || size > kMaxArtifactBytes)
        return Status::Corrupt;

    std::string artifact(static_cast<size_t>(size), '\0');
    in_.read(artifact.data(), static_cast<std::streamsize>(size));
    if (in_.gcount() != static_cast<std::streamsize>(size))
        return Status::Corrupt; // truncated mid-artifact

    if (!decodeArtifact(artifact, key, result))
        return Status::Corrupt;
    job_key = key;
    ++count_;
    return Status::Record;
}

} // namespace tetris::serialize
