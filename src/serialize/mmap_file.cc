#include "serialize/mmap_file.hh"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define TETRIS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define TETRIS_HAVE_MMAP 0
#endif

namespace tetris::serialize
{

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        reset();
        addr_ = std::exchange(other.addr_, nullptr);
        len_ = std::exchange(other.len_, 0);
        buffer_ = std::move(other.buffer_);
        other.buffer_.clear();
        valid_ = std::exchange(other.valid_, false);
    }
    return *this;
}

void
MappedFile::reset()
{
#if TETRIS_HAVE_MMAP
    if (addr_ != nullptr)
        ::munmap(addr_, len_);
#endif
    addr_ = nullptr;
    len_ = 0;
    buffer_.clear();
    valid_ = false;
}

ByteSpan
MappedFile::span() const
{
    if (!valid_)
        return ByteSpan();
    if (addr_ != nullptr)
        return ByteSpan(static_cast<const char *>(addr_), len_);
    return ByteSpan(buffer_);
}

bool
MappedFile::mmapEnabled()
{
#if TETRIS_HAVE_MMAP
    const char *v = std::getenv("TETRIS_DISK_MMAP");
    return v == nullptr || std::strcmp(v, "0") != 0;
#else
    return false;
#endif
}

MappedFile
MappedFile::open(const std::string &path)
{
    MappedFile f;
#if TETRIS_HAVE_MMAP
    if (mmapEnabled()) {
        int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            return f; // invalid: caller treats as miss
        struct stat st;
        if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
            ::close(fd);
            return f;
        }
        if (st.st_size == 0) {
            // mmap rejects zero-length maps; an empty file is still a
            // successfully-opened (if undecodable) artifact.
            ::close(fd);
            f.valid_ = true;
            return f;
        }
        void *addr = ::mmap(nullptr, static_cast<size_t>(st.st_size),
                            PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd); // the mapping keeps the inode alive
        if (addr != MAP_FAILED) {
            f.addr_ = addr;
            f.len_ = static_cast<size_t>(st.st_size);
            f.valid_ = true;
            return f;
        }
        // MAP_FAILED (e.g. a filesystem without mmap support): fall
        // through to the buffered path below.
    }
#endif
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return f;
    f.buffer_.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        f.buffer_.clear();
        return f;
    }
    f.valid_ = true;
    return f;
}

} // namespace tetris::serialize
