/**
 * @file
 * Versioned on-disk compile-artifact format (.tca files).
 *
 * An artifact is one CompileResult frozen to bytes so a later process
 * can skip the compilation entirely (see engine/disk_cache.hh):
 *
 *   u32  magic      "TCA1"
 *   u32  version    kArtifactVersion
 *   u64  jobKey     Engine::jobKey of the compilation
 *   u64  payloadSize
 *   ...  payload    circuit + stats + layout + block order
 *   u64  checksum   FNV-1a over the payload bytes
 *
 * decode() is total: every failure mode — truncation, bit flips,
 * foreign files, version skew, key mismatch — returns false and
 * leaves no partial state, so cache readers can treat any bad file
 * as a miss. Component-level round-trips (Circuit, CompileStats)
 * are exposed for reuse and direct testing.
 */

#ifndef TETRIS_SERIALIZE_ARTIFACT_HH
#define TETRIS_SERIALIZE_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "core/compiler.hh"
#include "serialize/binary.hh"

namespace tetris::serialize
{

/**
 * Bump on any wire-format change; readers reject other versions.
 * v2 added the seed placement (CompileResult::initialLayout) the
 * streaming frontend chains chunks with; v1 files decode as misses.
 */
inline constexpr uint32_t kArtifactVersion = 2;

/** Component encoders (appended to `w`). */
void write(BinaryWriter &w, const Circuit &c);
void write(BinaryWriter &w, const CompileStats &s);
void write(BinaryWriter &w, const Layout &l);

/**
 * Component decoders: false on malformed input (out-of-range qubits,
 * unknown gate kinds, non-bijective layouts, overruns). On failure
 * the output value is unspecified and the reader is marked failed.
 */
bool read(BinaryReader &r, Circuit &c);
bool read(BinaryReader &r, CompileStats &s);
bool read(BinaryReader &r, Layout &l);

/** Serialize one result into a complete artifact file image. */
std::string encodeArtifact(uint64_t job_key, const CompileResult &result);

/**
 * Parse a complete artifact file image. `expected_key` must match the
 * stored job key (a renamed/aliased file never serves the wrong
 * compilation). Returns false — never throws, never aborts — unless
 * every check (magic, version, key, length, checksum, payload
 * structure) passes. The bytes are only borrowed (zero-copy): they
 * may live in an mmap'ed file (serialize/mmap_file.hh) and are never
 * written to.
 */
bool decodeArtifact(ByteSpan bytes, uint64_t expected_key,
                    CompileResult &result);

} // namespace tetris::serialize

#endif // TETRIS_SERIALIZE_ARTIFACT_HH
