/**
 * @file
 * Read-only memory-mapped file with a buffered-read fallback.
 *
 * The zero-copy half of the artifact read path: DiskCache::load maps
 * a .tca file and hands its bytes straight to decodeArtifact as a
 * ByteSpan, so a warm cache hit decodes out of the page cache with no
 * intermediate std::string copy. When mmap is unavailable — non-POSIX
 * platform, a filesystem that refuses the map, or TETRIS_DISK_MMAP=0
 * — open() silently degrades to reading the file into an internal
 * buffer; span() is valid either way and isMapped() tells the two
 * apart (DiskCache reports them as separate load counters).
 *
 * Safety notes:
 *  - the mapping is private and read-only; a concurrent writer using
 *    DiskCache's temp-file + atomic-rename protocol never mutates
 *    the bytes under a live map (the old inode stays alive until the
 *    last mapping drops);
 *  - a file truncated *in place* after mapping could SIGBUS on
 *    access, which is why the store never truncates artifacts — it
 *    only ever replaces them whole via rename or unlinks them;
 *  - zero-length files are valid with an empty span and no mapping
 *    (mmap rejects length 0), which downstream decoding rejects as
 *    any other malformed artifact.
 */

#ifndef TETRIS_SERIALIZE_MMAP_FILE_HH
#define TETRIS_SERIALIZE_MMAP_FILE_HH

#include <string>

#include "serialize/binary.hh"

namespace tetris::serialize
{

class MappedFile
{
  public:
    /** An invalid (empty) file; open() is the real constructor. */
    MappedFile() = default;

    ~MappedFile() { reset(); }

    MappedFile(MappedFile &&other) noexcept { *this = std::move(other); }
    MappedFile &operator=(MappedFile &&other) noexcept;

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Open `path` read-only: mmap when possible, buffered read
     * otherwise. Returns an invalid MappedFile when the file cannot
     * be opened or read (never throws).
     */
    static MappedFile open(const std::string &path);

    /** True when the file was opened and its bytes are accessible. */
    bool valid() const { return valid_; }

    /** The file's bytes; empty when !valid() or the file is empty. */
    ByteSpan span() const;

    /** True when span() points into an mmap, not the fallback buffer. */
    bool isMapped() const { return addr_ != nullptr; }

    /**
     * True when this build can mmap and TETRIS_DISK_MMAP is not "0".
     * Checked per open() so tests can toggle the variable at runtime.
     */
    static bool mmapEnabled();

  private:
    void reset();

    void *addr_ = nullptr; // non-null only for a live mapping
    size_t len_ = 0;
    std::string buffer_; // fallback storage when not mapped
    bool valid_ = false;
};

} // namespace tetris::serialize

#endif // TETRIS_SERIALIZE_MMAP_FILE_HH
