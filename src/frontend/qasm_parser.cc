#include "frontend/qasm_parser.hh"

#include <cmath>

#include "circuit/gate.hh"

namespace tetris::frontend
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Parenthesis nesting bound for angle expressions. */
constexpr int kMaxExprDepth = 64;

} // namespace

QasmParser::QasmParser(std::istream &in) : cs_(in), lex_(cs_)
{
    advance();
}

void
QasmParser::advance()
{
    tok_ = lex_.next();
    if (tok_.kind == TokKind::Error && error_.ok())
        error_ = lex_.error();
}

bool
QasmParser::failHere(ParseErrorKind kind, std::string message)
{
    if (error_.ok()) {
        error_.kind = kind;
        error_.line = tok_.line;
        error_.column = tok_.column;
        error_.message = std::move(message);
    }
    return false;
}

bool
QasmParser::expect(TokKind kind, const char *what)
{
    if (tok_.kind == TokKind::Error)
        return false;
    if (tok_.kind != kind)
        return failHere(ParseErrorKind::Syntax,
                        std::string("expected ") + what);
    advance();
    return true;
}

BlockSource::Status
QasmParser::next(PauliBlock &out)
{
    while (true) {
        if (!error_.ok())
            return Status::Error;
        if (!pending_.empty()) {
            auto [axis, angle] = std::move(pending_.front());
            pending_.pop_front();
            out = PauliBlock({std::move(axis)}, angle);
            return Status::Block;
        }
        if (done_)
            return Status::End;
        if (!pump())
            return Status::Error;
    }
}

bool
QasmParser::pump()
{
    if (!header_done_) {
        if (!parseHeader())
            return false;
        header_done_ = true;
    }
    while (pending_.empty()) {
        if (tok_.kind == TokKind::Error)
            return false;
        if (tok_.kind == TokKind::Eof) {
            if (cs_.ioError())
                return failHere(ParseErrorKind::Io,
                                "read failure on the input stream");
            done_ = true;
            return true;
        }
        if (!parseStatement())
            return false;
    }
    return true;
}

bool
QasmParser::parseHeader()
{
    if (tok_.kind != TokKind::Identifier || tok_.text != "OPENQASM")
        return failHere(ParseErrorKind::Syntax,
                        "expected OPENQASM 2.0 header");
    advance();
    if (tok_.kind != TokKind::Number || tok_.text != "2.0")
        return failHere(ParseErrorKind::Unsupported,
                        "only OPENQASM version 2.0 is supported");
    advance();
    return expect(TokKind::Semicolon, "';' after the version");
}

bool
QasmParser::parseStatement()
{
    if (tok_.kind != TokKind::Identifier)
        return failHere(ParseErrorKind::Syntax,
                        "expected a statement keyword or gate name");
    std::string name = tok_.text;
    size_t line = tok_.line, column = tok_.column;

    if (name == "qreg")
        return parseQreg();
    if (name == "creg")
        return parseCreg();
    if (name == "include")
        return parseInclude();
    if (name == "barrier") {
        advance();
        return skipToSemicolon();
    }
    if (name == "measure" || name == "reset" || name == "if" ||
        name == "gate" || name == "opaque") {
        // All of these change semantics the Pauli-block IR cannot
        // carry; a typed refusal beats a silently-wrong stream.
        return failHere(ParseErrorKind::Unsupported,
                        "unsupported statement: " + name);
    }
    advance();
    return parseGate(name, line, column);
}

bool
QasmParser::parseQreg()
{
    advance();
    if (frame_ != nullptr)
        return failHere(ParseErrorKind::Unsupported,
                        "qreg declared after the first gate");
    if (tok_.kind != TokKind::Identifier)
        return failHere(ParseErrorKind::Syntax, "expected register name");
    std::string name = tok_.text;
    if (qregs_.count(name) != 0 || cregs_.count(name) != 0)
        return failHere(ParseErrorKind::Semantic,
                        "register redeclared: " + name);
    advance();
    if (!expect(TokKind::LBracket, "'['"))
        return false;
    if (tok_.kind != TokKind::Number)
        return failHere(ParseErrorKind::Syntax, "expected register size");
    double size = tok_.number;
    if (size < 1 || size != std::floor(size) ||
        size > kMaxFrontendQubits - num_qubits_) {
        return failHere(ParseErrorKind::Limit,
                        "register size out of range [1, " +
                            std::to_string(kMaxFrontendQubits) + "]");
    }
    advance();
    if (!expect(TokKind::RBracket, "']'") ||
        !expect(TokKind::Semicolon, "';'"))
        return false;
    Reg reg;
    reg.offset = num_qubits_;
    reg.size = static_cast<int>(size);
    qregs_[name] = reg;
    num_qubits_ += reg.size;
    return true;
}

bool
QasmParser::parseCreg()
{
    advance();
    if (tok_.kind != TokKind::Identifier)
        return failHere(ParseErrorKind::Syntax, "expected register name");
    std::string name = tok_.text;
    if (qregs_.count(name) != 0 || cregs_.count(name) != 0)
        return failHere(ParseErrorKind::Semantic,
                        "register redeclared: " + name);
    advance();
    if (!expect(TokKind::LBracket, "'['"))
        return false;
    if (tok_.kind != TokKind::Number || tok_.number < 1 ||
        tok_.number != std::floor(tok_.number))
        return failHere(ParseErrorKind::Syntax, "expected register size");
    advance();
    if (!expect(TokKind::RBracket, "']'") ||
        !expect(TokKind::Semicolon, "';'"))
        return false;
    cregs_.insert(name);
    return true;
}

bool
QasmParser::parseInclude()
{
    advance();
    if (tok_.kind != TokKind::String)
        return failHere(ParseErrorKind::Syntax,
                        "expected a quoted include path");
    if (tok_.text != "qelib1.inc") {
        // The standard gate library is built in; arbitrary file
        // inclusion would break the no-filesystem streaming contract.
        return failHere(ParseErrorKind::Unsupported,
                        "include of files other than qelib1.inc");
    }
    advance();
    return expect(TokKind::Semicolon, "';'");
}

bool
QasmParser::skipToSemicolon()
{
    while (tok_.kind != TokKind::Semicolon) {
        if (tok_.kind == TokKind::Error)
            return false;
        if (tok_.kind == TokKind::Eof)
            return failHere(ParseErrorKind::Syntax,
                            "unexpected end of input inside a statement");
        advance();
    }
    advance();
    return true;
}

bool
QasmParser::parseAngle(double &out, int depth)
{
    if (!parseAngleTerm(out, depth))
        return false;
    while (tok_.kind == TokKind::Plus || tok_.kind == TokKind::Minus) {
        bool add = tok_.kind == TokKind::Plus;
        advance();
        double rhs = 0.0;
        if (!parseAngleTerm(rhs, depth))
            return false;
        out = add ? out + rhs : out - rhs;
    }
    return true;
}

bool
QasmParser::parseAngleTerm(double &out, int depth)
{
    if (!parseAngleFactor(out, depth))
        return false;
    while (tok_.kind == TokKind::Star || tok_.kind == TokKind::Slash) {
        bool mul = tok_.kind == TokKind::Star;
        advance();
        double rhs = 0.0;
        if (!parseAngleFactor(rhs, depth))
            return false;
        if (!mul && rhs == 0.0)
            return failHere(ParseErrorKind::Semantic,
                            "division by zero in angle expression");
        out = mul ? out * rhs : out / rhs;
    }
    return true;
}

bool
QasmParser::parseAngleFactor(double &out, int depth)
{
    if (depth > kMaxExprDepth)
        return failHere(ParseErrorKind::Limit,
                        "angle expression nested deeper than 64");
    if (tok_.kind == TokKind::Minus) {
        advance();
        if (!parseAngleFactor(out, depth + 1))
            return false;
        out = -out;
        return true;
    }
    if (tok_.kind == TokKind::Plus) {
        advance();
        return parseAngleFactor(out, depth + 1);
    }
    if (tok_.kind == TokKind::Number) {
        out = tok_.number;
        advance();
        return true;
    }
    if (tok_.kind == TokKind::Identifier && tok_.text == "pi") {
        out = kPi;
        advance();
        return true;
    }
    if (tok_.kind == TokKind::LParen) {
        advance();
        if (!parseAngle(out, depth + 1))
            return false;
        return expect(TokKind::RParen, "')'");
    }
    return failHere(ParseErrorKind::Syntax,
                    "expected a number, pi, or '(' in angle expression");
}

bool
QasmParser::parseArgument(std::vector<int> &wires, bool &broadcast)
{
    if (tok_.kind != TokKind::Identifier)
        return failHere(ParseErrorKind::Syntax,
                        "expected a quantum register argument");
    auto it = qregs_.find(tok_.text);
    if (it == qregs_.end())
        return failHere(ParseErrorKind::Semantic,
                        "undeclared quantum register: " + tok_.text);
    const Reg &reg = it->second;
    advance();
    if (tok_.kind != TokKind::LBracket) {
        // Bare register = broadcast over every wire of the register.
        broadcast = true;
        for (int i = 0; i < reg.size; ++i)
            wires.push_back(reg.offset + i);
        return true;
    }
    advance();
    if (tok_.kind != TokKind::Number ||
        tok_.number != std::floor(tok_.number) || tok_.number < 0)
        return failHere(ParseErrorKind::Syntax, "expected a qubit index");
    if (tok_.number >= reg.size)
        return failHere(ParseErrorKind::Semantic,
                        "qubit index out of range for the register");
    wires.push_back(reg.offset + static_cast<int>(tok_.number));
    advance();
    return expect(TokKind::RBracket, "']'");
}

bool
QasmParser::parseGate(const std::string &name, size_t line, size_t column)
{
    std::vector<double> params;
    if (tok_.kind == TokKind::LParen) {
        advance();
        if (tok_.kind != TokKind::RParen) {
            while (true) {
                double v = 0.0;
                if (!parseAngle(v, 0))
                    return false;
                params.push_back(v);
                if (tok_.kind != TokKind::Comma)
                    break;
                advance();
            }
        }
        if (!expect(TokKind::RParen, "')'"))
            return false;
    }

    // Each argument is either one wire or a whole-register broadcast.
    std::vector<std::vector<int>> args;
    std::vector<bool> broadcast;
    while (true) {
        std::vector<int> wires;
        bool bcast = false;
        if (!parseArgument(wires, bcast))
            return false;
        args.push_back(std::move(wires));
        broadcast.push_back(bcast);
        if (tok_.kind != TokKind::Comma)
            break;
        advance();
    }
    if (!expect(TokKind::Semicolon, "';'"))
        return false;

    if (frame_ == nullptr) {
        if (num_qubits_ == 0) {
            error_.kind = ParseErrorKind::Semantic;
            error_.line = line;
            error_.column = column;
            error_.message = "gate before any qreg declaration";
            return false;
        }
        frame_ = std::make_unique<PauliFrame>(num_qubits_);
    }

    if (args.size() == 1) {
        for (int wire : args[0]) {
            if (!applyGate(name, line, column, params, {wire}))
                return false;
        }
        return true;
    }
    if (args.size() == 2) {
        if (broadcast[0] || broadcast[1]) {
            error_.kind = ParseErrorKind::Unsupported;
            error_.line = line;
            error_.column = column;
            error_.message =
                "whole-register broadcast of a two-qubit gate";
            return false;
        }
        if (args[0][0] == args[1][0]) {
            error_.kind = ParseErrorKind::Semantic;
            error_.line = line;
            error_.column = column;
            error_.message = "two-qubit gate with identical qubits";
            return false;
        }
        return applyGate(name, line, column, params,
                         {args[0][0], args[1][0]});
    }
    error_.kind = ParseErrorKind::Unsupported;
    error_.line = line;
    error_.column = column;
    error_.message = "gates with more than two arguments";
    return false;
}

void
QasmParser::pushRotation(bool z_axis, int wire, double angle)
{
    const SignedPauli &back = z_axis ? frame_->backImageZ(wire)
                                     : frame_->backImageX(wire);
    pending_.emplace_back(back.p, back.sign * angle);
}

bool
QasmParser::applyGate(const std::string &name, size_t line,
                      size_t column, const std::vector<double> &params,
                      const std::vector<int> &wires)
{
    auto arity_error = [&](size_t nq, size_t np) {
        error_.kind = ParseErrorKind::Syntax;
        error_.line = line;
        error_.column = column;
        error_.message = name + " expects " + std::to_string(np) +
                         " parameter(s) and " + std::to_string(nq) +
                         " qubit argument(s)";
        return false;
    };
    auto need = [&](size_t nq, size_t np) {
        if (wires.size() != nq || params.size() != np)
            return arity_error(nq, np);
        return true;
    };
    auto clifford = [&](const Gate &g) { frame_->applyGate(g); };

    ++instructions_;
    int q0 = wires[0];

    if (name == "id") {
        return need(1, 0);
    }
    if (name == "h") {
        if (!need(1, 0))
            return false;
        clifford(Gate::h(q0));
        return true;
    }
    if (name == "x") {
        if (!need(1, 0))
            return false;
        clifford(Gate::x(q0));
        return true;
    }
    if (name == "s") {
        if (!need(1, 0))
            return false;
        clifford(Gate::s(q0));
        return true;
    }
    if (name == "sdg") {
        if (!need(1, 0))
            return false;
        clifford(Gate::sdg(q0));
        return true;
    }
    if (name == "z") {
        if (!need(1, 0))
            return false;
        clifford(Gate::s(q0));
        clifford(Gate::s(q0));
        return true;
    }
    if (name == "y") {
        // Y = iXZ: equal to Z then X up to global phase, which the
        // Pauli-rotation semantics cannot observe.
        if (!need(1, 0))
            return false;
        clifford(Gate::s(q0));
        clifford(Gate::s(q0));
        clifford(Gate::x(q0));
        return true;
    }
    if (name == "cx" || name == "CX") {
        if (!need(2, 0))
            return false;
        clifford(Gate::cx(q0, wires[1]));
        return true;
    }
    if (name == "swap") {
        if (!need(2, 0))
            return false;
        clifford(Gate::swap(q0, wires[1]));
        return true;
    }
    if (name == "cz") {
        // cz = (I (x) H) cx (I (x) H).
        if (!need(2, 0))
            return false;
        clifford(Gate::h(wires[1]));
        clifford(Gate::cx(q0, wires[1]));
        clifford(Gate::h(wires[1]));
        return true;
    }
    if (name == "t") {
        if (!need(1, 0))
            return false;
        pushRotation(true, q0, kPi / 4);
        return true;
    }
    if (name == "tdg") {
        if (!need(1, 0))
            return false;
        pushRotation(true, q0, -kPi / 4);
        return true;
    }
    if (name == "sx") {
        if (!need(1, 0))
            return false;
        pushRotation(false, q0, kPi / 2);
        return true;
    }
    if (name == "sxdg") {
        if (!need(1, 0))
            return false;
        pushRotation(false, q0, -kPi / 2);
        return true;
    }
    if (name == "rz" || name == "u1" || name == "p") {
        if (!need(1, 1))
            return false;
        pushRotation(true, q0, params[0]);
        return true;
    }
    if (name == "rx") {
        if (!need(1, 1))
            return false;
        pushRotation(false, q0, params[0]);
        return true;
    }
    if (name == "ry") {
        // ry(t) = s * rx(t) * sdg as matrices: apply sdg, rx, s in
        // circuit order. The sdg/s pair folds into the frame.
        if (!need(1, 1))
            return false;
        clifford(Gate::sdg(q0));
        pushRotation(false, q0, params[0]);
        clifford(Gate::s(q0));
        return true;
    }
    if (name == "u2") {
        if (!need(1, 2))
            return false;
        --instructions_; // the recursive u3 re-counts this gate
        return applyGate("u3", line, column,
                         {kPi / 2, params[0], params[1]}, wires);
    }
    if (name == "u3" || name == "u" || name == "U") {
        // u3(t, phi, lambda) = rz(phi) ry(t) rz(lambda) up to global
        // phase; circuit order is rz(lambda) first.
        if (!need(1, 3))
            return false;
        pushRotation(true, q0, params[2]);
        clifford(Gate::sdg(q0));
        pushRotation(false, q0, params[0]);
        clifford(Gate::s(q0));
        pushRotation(true, q0, params[1]);
        return true;
    }

    error_.kind = ParseErrorKind::Unsupported;
    error_.line = line;
    error_.column = column;
    error_.message = "unsupported gate: " + name;
    return false;
}

bool
QasmParser::residualClifford() const
{
    if (frame_ == nullptr)
        return false;
    for (int q = 0; q < num_qubits_; ++q) {
        PauliString x_ref(static_cast<size_t>(num_qubits_));
        x_ref.setOp(q, PauliOp::X);
        PauliString z_ref(static_cast<size_t>(num_qubits_));
        z_ref.setOp(q, PauliOp::Z);
        const SignedPauli &bx = frame_->backImageX(q);
        const SignedPauli &bz = frame_->backImageZ(q);
        if (bx.sign != 1 || bz.sign != 1 || bx.p != x_ref ||
            bz.p != z_ref)
            return true;
    }
    return false;
}

} // namespace tetris::frontend
