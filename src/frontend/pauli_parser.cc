#include "frontend/pauli_parser.hh"

#include <cctype>
#include <cstdlib>

#include "frontend/qasm_parser.hh" // kMaxFrontendQubits

namespace tetris::frontend
{

namespace
{

/** Longest accepted line: a max-width string plus a weight. */
constexpr size_t kMaxLineLength = 64 * 1024;

bool
pauliFromChar(char c, PauliOp &op)
{
    switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'I':
        op = PauliOp::I;
        return true;
    case 'X':
        op = PauliOp::X;
        return true;
    case 'Y':
        op = PauliOp::Y;
        return true;
    case 'Z':
        op = PauliOp::Z;
        return true;
    default:
        return false;
    }
}

/** Full-string strict double parse ("1.0", "-0.5", "1e-3"). */
bool
parseWeight(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(s.c_str(), &end);
    return end == s.c_str() + s.size();
}

} // namespace

PauliListParser::PauliListParser(std::istream &in) : cs_(in) {}

bool
PauliListParser::failAt(ParseErrorKind kind, size_t line, size_t column,
                        std::string message)
{
    if (error_.ok()) {
        error_.kind = kind;
        error_.line = line;
        error_.column = column;
        error_.message = std::move(message);
    }
    return false;
}

bool
PauliListParser::readLine()
{
    line_.clear();
    if (cs_.peek() < 0)
        return false;
    line_no_ = cs_.line();
    while (true) {
        int c = cs_.get();
        if (c < 0 || c == '\n')
            break;
        line_.push_back(static_cast<char>(c));
        if (line_.size() > kMaxLineLength) {
            return failAt(ParseErrorKind::Limit, line_no_, line_.size(),
                          "line longer than 64 KiB");
        }
    }
    return true;
}

bool
PauliListParser::consumeLine()
{
    // Strip comments, then split on blanks.
    size_t end = line_.size();
    for (size_t i = 0; i < line_.size(); ++i) {
        if (line_[i] == '#' ||
            (line_[i] == '/' && i + 1 < line_.size() &&
             line_[i + 1] == '/')) {
            end = i;
            break;
        }
    }
    std::vector<std::pair<std::string, size_t>> tokens; // text, column
    size_t i = 0;
    while (i < end) {
        if (line_[i] == ' ' || line_[i] == '\t') {
            ++i;
            continue;
        }
        size_t start = i;
        while (i < end && line_[i] != ' ' && line_[i] != '\t')
            ++i;
        tokens.emplace_back(line_.substr(start, i - start), start + 1);
    }
    if (tokens.empty())
        return true;

    if (tokens[0].first == "block") {
        if (tokens.size() != 2)
            return failAt(ParseErrorKind::Syntax, line_no_,
                          tokens[0].second,
                          "block header takes exactly one theta value");
        double theta = 0.0;
        if (!parseWeight(tokens[1].first, theta))
            return failAt(ParseErrorKind::Lex, line_no_,
                          tokens[1].second,
                          "malformed theta: " + tokens[1].first);
        if (block_open_) {
            if (strings_.empty())
                return failAt(ParseErrorKind::Semantic, line_no_,
                              tokens[0].second,
                              "previous block has no strings");
            ready_ = PauliBlock(std::move(strings_),
                                std::move(weights_), theta_);
            block_ready_ = true;
            strings_ = {};
            weights_ = {};
        }
        block_open_ = true;
        block_line_ = line_no_;
        theta_ = theta;
        return true;
    }

    // A Pauli-string line.
    if (!block_open_)
        return failAt(ParseErrorKind::Syntax, line_no_,
                      tokens[0].second,
                      "Pauli string before any block header");
    if (tokens.size() > 2)
        return failAt(ParseErrorKind::Syntax, line_no_,
                      tokens[2].second,
                      "trailing tokens after the weight");

    const std::string &text = tokens[0].first;
    if (text.size() > static_cast<size_t>(kMaxFrontendQubits))
        return failAt(ParseErrorKind::Limit, line_no_, tokens[0].second,
                      "string wider than " +
                          std::to_string(kMaxFrontendQubits) +
                          " qubits");
    if (num_qubits_ == 0) {
        num_qubits_ = static_cast<int>(text.size());
    } else if (text.size() != static_cast<size_t>(num_qubits_)) {
        return failAt(ParseErrorKind::Semantic, line_no_,
                      tokens[0].second,
                      "string width " + std::to_string(text.size()) +
                          " != program width " +
                          std::to_string(num_qubits_));
    }
    PauliString s(text.size());
    for (size_t q = 0; q < text.size(); ++q) {
        PauliOp op;
        if (!pauliFromChar(text[q], op))
            return failAt(ParseErrorKind::Lex, line_no_,
                          tokens[0].second + q,
                          std::string("invalid Pauli character '") +
                              text[q] + "'");
        s.setOp(q, op);
    }
    double weight = 1.0;
    if (tokens.size() == 2 && !parseWeight(tokens[1].first, weight))
        return failAt(ParseErrorKind::Lex, line_no_, tokens[1].second,
                      "malformed weight: " + tokens[1].first);
    strings_.push_back(std::move(s));
    weights_.push_back(weight);
    ++instructions_;
    return true;
}

BlockSource::Status
PauliListParser::next(PauliBlock &out)
{
    while (true) {
        if (!error_.ok())
            return Status::Error;
        if (block_ready_) {
            out = std::move(ready_);
            ready_ = PauliBlock();
            block_ready_ = false;
            return Status::Block;
        }
        if (done_)
            return Status::End;
        if (!readLine()) {
            if (!error_.ok())
                return Status::Error;
            if (cs_.ioError()) {
                (void)failAt(ParseErrorKind::Io, cs_.line(),
                             cs_.column(),
                             "read failure on the input stream");
                return Status::Error;
            }
            // Clean EOF: flush the open block, if any.
            done_ = true;
            if (block_open_) {
                if (strings_.empty()) {
                    (void)failAt(ParseErrorKind::Semantic, block_line_,
                                 1, "last block has no strings");
                    return Status::Error;
                }
                out = PauliBlock(std::move(strings_),
                                 std::move(weights_), theta_);
                strings_ = {};
                weights_ = {};
                block_open_ = false;
                return Status::Block;
            }
            return Status::End;
        }
        if (!consumeLine())
            return Status::Error;
    }
}

} // namespace tetris::frontend
