#include "frontend/frontend.hh"

#include <sstream>

namespace tetris::frontend
{

const char *
parseErrorKindName(ParseErrorKind kind)
{
    switch (kind) {
    case ParseErrorKind::None:
        return "none";
    case ParseErrorKind::Io:
        return "io";
    case ParseErrorKind::Lex:
        return "lex";
    case ParseErrorKind::Syntax:
        return "syntax";
    case ParseErrorKind::Unsupported:
        return "unsupported";
    case ParseErrorKind::Semantic:
        return "semantic";
    case ParseErrorKind::Limit:
        return "limit";
    }
    return "unknown";
}

std::string
ParseError::toText() const
{
    std::ostringstream os;
    os << "line " << line << ", column " << column << ": ["
       << parseErrorKindName(kind) << "] " << message;
    return os.str();
}

CharStream::CharStream(std::istream &in) : in_(in), buf_(kBufferSize) {}

bool
CharStream::fill()
{
    if (io_error_)
        return false;
    in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    len_ = static_cast<size_t>(in_.gcount());
    pos_ = 0;
    if (len_ == 0 && !in_.eof())
        io_error_ = true;
    return len_ > 0;
}

int
CharStream::peek()
{
    while (true) {
        if (pos_ >= len_ && !fill())
            return -1;
        char c = buf_[pos_];
        if (c != '\r')
            return static_cast<unsigned char>(c);
        // Swallow '\r' so CRLF files tokenize identically to LF
        // files; a bare '\r' degrades to a plain skip, which keeps
        // positions monotonic for old-Mac line endings too.
        ++pos_;
        ++bytes_;
    }
}

int
CharStream::get()
{
    int c = peek();
    if (c < 0)
        return -1;
    ++pos_;
    ++bytes_;
    if (c == '\n') {
        ++line_;
        column_ = 1;
    } else {
        ++column_;
    }
    return c;
}

} // namespace tetris::frontend
