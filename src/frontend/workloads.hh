/**
 * @file
 * Streaming program generators for production-scale workloads.
 *
 * Each generator writes a deterministic (seeded) program as *text*
 * to an ostream, line by line, so a 100M-instruction program costs
 * O(1) generator memory and can be piped straight into the frontend
 * parsers. Three families from the streaming roadmap item:
 *
 *  - Shor-style modular exponentiation (Pauli-list format): the
 *    controlled-phase cascades of the QFT/modexp structure, i.e.
 *    CPHASE(theta) expanded into its commuting {Z_c, Z_t, Z_c Z_t}
 *    rotation block at dyadic angles, interleaved with X-axis
 *    mixing rotations.
 *  - Grover over random 3-SAT (OpenQASM 2): per-clause phase
 *    oracles (X-conjugated CCZ in the standard 7-T decomposition)
 *    alternating with H/X diffusion layers — a heavily
 *    non-commuting, T-dense gate stream that exercises the QASM
 *    path end to end.
 *  - Trotterized chemistry (Pauli-list format): the synthetic
 *    UCCSD ansatz (chem/uccsd.hh) split into first-order Trotter
 *    steps, each block's angle scaled by 1/steps.
 *
 * Every generator writes at least spec.minInstructions source
 * instructions (strings / gates) and returns the exact count.
 */

#ifndef TETRIS_FRONTEND_WORKLOADS_HH
#define TETRIS_FRONTEND_WORKLOADS_HH

#include <cstdint>
#include <ostream>

namespace tetris::frontend
{

struct WorkloadSpec
{
    int numQubits = 16;
    /** Lower bound on instructions; generators finish their current
     *  structural unit (clause, Trotter step) past it. */
    uint64_t minInstructions = 10000;
    uint64_t seed = 42;
};

/** Pauli-list modular-exponentiation phase cascades. */
uint64_t genShorModExp(std::ostream &out, const WorkloadSpec &spec);

/** OpenQASM 2 Grover iterations over random 3-SAT clauses. */
uint64_t genGrover3Sat(std::ostream &out, const WorkloadSpec &spec);

/** Pauli-list Trotterized synthetic-UCCSD evolution. */
uint64_t genTrotterChem(std::ostream &out, const WorkloadSpec &spec);

} // namespace tetris::frontend

#endif // TETRIS_FRONTEND_WORKLOADS_HH
