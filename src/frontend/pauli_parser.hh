/**
 * @file
 * Incremental reader for the native Pauli-list text format.
 *
 * The format is the compiler's IR written down, one item per line,
 * so generators can stream arbitrarily large programs:
 *
 *     # Shor-style modular exponentiation, 24 qubits
 *     block 0.125          // opens a block with theta = 0.125
 *     ZIIZ...XX  1.0       // weighted string of the open block
 *     IZZI...YY -0.5
 *     block 0.0625         // closes the previous block, opens one
 *     ...
 *
 * '#' and '//' start comments; blank lines and CRLF endings are
 * accepted anywhere. The first string fixes the qubit count; every
 * later string must match it. A block with no strings, a malformed
 * weight, a width mismatch, or a character outside [IXYZixyz] is a
 * typed ParseError with the line/column of the offending byte.
 *
 * next() returns a block only once its successor line (or EOF)
 * proves it complete, so memory is one block, never the file.
 */

#ifndef TETRIS_FRONTEND_PAULI_PARSER_HH
#define TETRIS_FRONTEND_PAULI_PARSER_HH

#include <string>
#include <vector>

#include "frontend/frontend.hh"

namespace tetris::frontend
{

class PauliListParser : public BlockSource
{
  public:
    explicit PauliListParser(std::istream &in);

    Status next(PauliBlock &out) override;
    const ParseError &error() const override { return error_; }
    int numQubits() const override { return num_qubits_; }
    uint64_t instructionsRead() const override { return instructions_; }
    uint64_t bytesRead() const override { return cs_.bytesRead(); }

  private:
    [[nodiscard]] bool failAt(ParseErrorKind kind, size_t line,
                              size_t column, std::string message);
    /** Read one logical line into line_; false at EOF/error. */
    bool readLine();
    /** Handle line_; sets block_ready_ when a block completed. */
    bool consumeLine();

    CharStream cs_;
    ParseError error_;

    std::string line_;
    size_t line_no_ = 0;

    int num_qubits_ = 0;
    uint64_t instructions_ = 0;

    /** The block under construction. */
    bool block_open_ = false;
    size_t block_line_ = 0; ///< Where the open block's header was.
    double theta_ = 0.0;
    std::vector<PauliString> strings_;
    std::vector<double> weights_;

    /** A finished block waiting for next() to take it. */
    bool block_ready_ = false;
    PauliBlock ready_;

    bool done_ = false;
};

} // namespace tetris::frontend

#endif // TETRIS_FRONTEND_PAULI_PARSER_HH
