#include "frontend/lexer.hh"

#include <cctype>
#include <cstdlib>

namespace tetris::frontend
{

namespace
{

bool
isIdentStart(int c)
{
    return std::isalpha(c) != 0 || c == '_';
}

bool
isIdentChar(int c)
{
    return std::isalnum(c) != 0 || c == '_';
}

/** Cap on one token's spelling; longer is garbage, not a program. */
constexpr size_t kMaxTokenLength = 4096;

} // namespace

Token
Lexer::fail(ParseErrorKind kind, size_t line, size_t column,
            std::string message)
{
    if (error_.ok()) {
        error_.kind = kind;
        error_.line = line;
        error_.column = column;
        error_.message = std::move(message);
    }
    Token t;
    t.kind = TokKind::Error;
    t.line = error_.line;
    t.column = error_.column;
    return t;
}

Token
Lexer::next()
{
    if (!error_.ok())
        return fail(error_.kind, error_.line, error_.column, "");

    // Skip whitespace and // comments.
    while (true) {
        int c = in_.peek();
        if (c == ' ' || c == '\t' || c == '\n') {
            in_.get();
            continue;
        }
        if (c == '/') {
            // Either a comment or the division operator; only commit
            // once the second '/' is seen.
            size_t line = in_.line(), column = in_.column();
            in_.get();
            if (in_.peek() == '/') {
                while (in_.peek() >= 0 && in_.peek() != '\n')
                    in_.get();
                continue;
            }
            Token t;
            t.kind = TokKind::Slash;
            t.line = line;
            t.column = column;
            return t;
        }
        break;
    }

    Token t;
    t.line = in_.line();
    t.column = in_.column();

    int c = in_.peek();
    if (c < 0) {
        if (in_.ioError())
            return fail(ParseErrorKind::Io, t.line, t.column,
                        "read failure on the input stream");
        t.kind = TokKind::Eof;
        return t;
    }

    if (isIdentStart(c)) {
        while (isIdentChar(in_.peek())) {
            t.text.push_back(static_cast<char>(in_.get()));
            if (t.text.size() > kMaxTokenLength)
                return fail(ParseErrorKind::Limit, t.line, t.column,
                            "identifier longer than 4096 bytes");
        }
        t.kind = TokKind::Identifier;
        return t;
    }

    if (std::isdigit(c) != 0 || c == '.') {
        std::string num;
        while (std::isdigit(in_.peek()) != 0)
            num.push_back(static_cast<char>(in_.get()));
        if (in_.peek() == '.') {
            num.push_back(static_cast<char>(in_.get()));
            while (std::isdigit(in_.peek()) != 0)
                num.push_back(static_cast<char>(in_.get()));
        }
        if (in_.peek() == 'e' || in_.peek() == 'E') {
            num.push_back(static_cast<char>(in_.get()));
            if (in_.peek() == '+' || in_.peek() == '-')
                num.push_back(static_cast<char>(in_.get()));
            if (std::isdigit(in_.peek()) == 0)
                return fail(ParseErrorKind::Lex, t.line, t.column,
                            "exponent with no digits");
            while (std::isdigit(in_.peek()) != 0)
                num.push_back(static_cast<char>(in_.get()));
        }
        if (num == "." || num.empty())
            return fail(ParseErrorKind::Lex, t.line, t.column,
                        "'.' is not a number");
        if (num.size() > kMaxTokenLength)
            return fail(ParseErrorKind::Limit, t.line, t.column,
                        "number longer than 4096 bytes");
        t.kind = TokKind::Number;
        t.number = std::strtod(num.c_str(), nullptr);
        t.text = std::move(num);
        return t;
    }

    if (c == '"') {
        in_.get();
        while (true) {
            int ch = in_.peek();
            if (ch < 0 || ch == '\n')
                return fail(ParseErrorKind::Lex, t.line, t.column,
                            "unterminated string literal");
            in_.get();
            if (ch == '"')
                break;
            t.text.push_back(static_cast<char>(ch));
            if (t.text.size() > kMaxTokenLength)
                return fail(ParseErrorKind::Limit, t.line, t.column,
                            "string longer than 4096 bytes");
        }
        t.kind = TokKind::String;
        return t;
    }

    in_.get();
    switch (c) {
    case '(':
        t.kind = TokKind::LParen;
        return t;
    case ')':
        t.kind = TokKind::RParen;
        return t;
    case '[':
        t.kind = TokKind::LBracket;
        return t;
    case ']':
        t.kind = TokKind::RBracket;
        return t;
    case '{':
        t.kind = TokKind::LBrace;
        return t;
    case '}':
        t.kind = TokKind::RBrace;
        return t;
    case ',':
        t.kind = TokKind::Comma;
        return t;
    case ';':
        t.kind = TokKind::Semicolon;
        return t;
    case '+':
        t.kind = TokKind::Plus;
        return t;
    case '*':
        t.kind = TokKind::Star;
        return t;
    case '-':
        if (in_.peek() == '>') {
            in_.get();
            t.kind = TokKind::Arrow;
            return t;
        }
        t.kind = TokKind::Minus;
        return t;
    default:
        break;
    }
    std::string msg = "unexpected byte 0x";
    const char *hex = "0123456789abcdef";
    msg.push_back(hex[(c >> 4) & 0xf]);
    msg.push_back(hex[c & 0xf]);
    return fail(ParseErrorKind::Lex, t.line, t.column, std::move(msg));
}

} // namespace tetris::frontend
