#include "frontend/workloads.hh"

#include <string>
#include <vector>

#include "chem/uccsd.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "pauli/pauli_block.hh"

namespace tetris::frontend
{

namespace
{

/** One Pauli-list string line: text, optional weight. */
void
writeString(std::ostream &out, const std::string &text, double weight)
{
    out << text;
    if (weight != 1.0)
        out << ' ' << weight;
    out << '\n';
}

std::string
singleOp(int n, int q, char op)
{
    std::string s(static_cast<size_t>(n), 'I');
    s[static_cast<size_t>(q)] = op;
    return s;
}

} // namespace

uint64_t
genShorModExp(std::ostream &out, const WorkloadSpec &spec)
{
    TETRIS_ASSERT(spec.numQubits >= 2, "need at least two qubits");
    const int n = spec.numQubits;
    Rng rng(spec.seed);
    uint64_t written = 0;

    out << "# shor-modexp: controlled-phase cascades, " << n
        << " qubits, seed " << spec.seed << "\n";

    // The modexp structure: sweeps of controlled phases from each
    // "exponent" qubit onto the "work" register at dyadic angles —
    // CPHASE(t) = exp(i t/4 (I-Z_c)(I-Z_t)) written as one commuting
    // three-string block — with an X-mixing rotation after each
    // sweep (the basis changes between QFT stages).
    while (written < spec.minInstructions) {
        int control = rng.uniformInt(0, n - 1);
        for (int dist = 1; dist < n && written < spec.minInstructions;
             ++dist) {
            int target = (control + dist) % n;
            double theta = 3.14159265358979323846 / double(1 << (dist % 20));
            out << "block " << theta << "\n";
            writeString(out, singleOp(n, control, 'Z'), -1.0);
            writeString(out, singleOp(n, target, 'Z'), -1.0);
            std::string zz(static_cast<size_t>(n), 'I');
            zz[static_cast<size_t>(control)] = 'Z';
            zz[static_cast<size_t>(target)] = 'Z';
            writeString(out, zz, 1.0);
            written += 3;
        }
        // Mixing rotation on the control before the next sweep.
        out << "block " << rng.uniform(0.1, 1.5) << "\n";
        writeString(out, singleOp(n, control, 'X'), 1.0);
        written += 1;
    }
    return written;
}

uint64_t
genGrover3Sat(std::ostream &out, const WorkloadSpec &spec)
{
    TETRIS_ASSERT(spec.numQubits >= 3, "need at least three qubits");
    const int n = spec.numQubits;
    Rng rng(spec.seed);
    uint64_t written = 0;

    out << "// grover-3sat: " << n << " variables, seed " << spec.seed
        << "\n";
    out << "OPENQASM 2.0;\n";
    out << "include \"qelib1.inc\";\n";
    out << "qreg q[" << n << "];\n";

    auto gate1 = [&](const char *g, int q) {
        out << g << " q[" << q << "];\n";
        ++written;
    };
    auto cx = [&](int a, int b) {
        out << "cx q[" << a << "], q[" << b << "];\n";
        ++written;
    };
    // Standard ancilla-free CCZ: 6 CX + 7 T/Tdg.
    auto ccz = [&](int a, int b, int c) {
        cx(b, c);
        gate1("tdg", c);
        cx(a, c);
        gate1("t", c);
        cx(b, c);
        gate1("tdg", c);
        cx(a, c);
        gate1("t", b);
        gate1("t", c);
        cx(a, b);
        gate1("t", a);
        gate1("tdg", b);
        cx(a, b);
    };

    // Uniform superposition.
    for (int q = 0; q < n; ++q)
        gate1("h", q);

    // 3-SAT instance at the standard hard ratio ~4.3 clauses/var.
    int num_clauses = (n * 43 + 9) / 10;
    struct Clause
    {
        int var[3];
        bool neg[3];
    };
    std::vector<Clause> clauses(static_cast<size_t>(num_clauses));
    for (auto &cl : clauses) {
        auto vars = rng.sampleIndices(static_cast<size_t>(n), 3);
        for (int i = 0; i < 3; ++i) {
            cl.var[i] = static_cast<int>(vars[static_cast<size_t>(i)]);
            cl.neg[i] = rng.bernoulli(0.5);
        }
    }

    while (written < spec.minInstructions) {
        // Oracle: phase-flip each clause's violating assignment.
        for (const auto &cl : clauses) {
            for (int i = 0; i < 3; ++i)
                if (!cl.neg[i])
                    gate1("x", cl.var[i]);
            ccz(cl.var[0], cl.var[1], cl.var[2]);
            for (int i = 0; i < 3; ++i)
                if (!cl.neg[i])
                    gate1("x", cl.var[i]);
        }
        // Diffusion: H X (CCZ cascade) X H.
        for (int q = 0; q < n; ++q)
            gate1("h", q);
        for (int q = 0; q < n; ++q)
            gate1("x", q);
        for (int q = 0; q + 2 < n; q += 2)
            ccz(q, q + 1, q + 2);
        for (int q = 0; q < n; ++q)
            gate1("x", q);
        for (int q = 0; q < n; ++q)
            gate1("h", q);
    }
    return written;
}

uint64_t
genTrotterChem(std::ostream &out, const WorkloadSpec &spec)
{
    TETRIS_ASSERT(spec.numQubits >= 4, "need at least four qubits");
    std::vector<PauliBlock> ansatz =
        buildSyntheticUcc(spec.numQubits, spec.seed);

    // Strings per Trotter step, to size the step count up front.
    uint64_t per_step = 0;
    for (const auto &b : ansatz)
        per_step += b.size();
    uint64_t steps = (spec.minInstructions + per_step - 1) / per_step;
    if (steps == 0)
        steps = 1;

    out << "# trotter-chem: synthetic UCCSD, " << spec.numQubits
        << " qubits, " << steps << " steps, seed " << spec.seed << "\n";

    uint64_t written = 0;
    for (uint64_t s = 0; s < steps; ++s) {
        for (const auto &b : ansatz) {
            out << "block " << b.theta() / static_cast<double>(steps)
                << "\n";
            for (size_t i = 0; i < b.size(); ++i) {
                writeString(out, b.string(i).toText(), b.weight(i));
                ++written;
            }
        }
    }
    return written;
}

} // namespace tetris::frontend
