/**
 * @file
 * Windowed chunk compilation over a block stream.
 *
 * The StreamCompiler is the driver that turns an unbounded
 * BlockSource into a bounded-memory compilation: it gathers blocks
 * into chunks of at most `window` blocks (TETRIS_STREAM_WINDOW), and
 * pipelines the chunks through an Engine —
 *
 *     parse chunk 0 | submit 0 | parse 1 | wait 0 | submit 1 | ...
 *
 * so parsing chunk N+1 overlaps compiling chunk N on the engine's
 * worker pool. Chunk N+1's compilation is *seeded* with chunk N's
 * final layout (TetrisOptions::initialLayout), so the concatenation
 * of the per-chunk circuits is a circuit for the whole program: no
 * re-placement movement is needed at chunk boundaries, and the
 * differential test (tests/test_stream.cc) checks exactly that
 * composition against a whole-program compile.
 *
 * Every finished chunk is appended to a .tcs stream container
 * (serialize/stream_file.hh) the moment it completes, then dropped;
 * live state is one chunk being parsed plus one being compiled —
 * O(window), independent of input length.
 */

#ifndef TETRIS_FRONTEND_STREAM_COMPILER_HH
#define TETRIS_FRONTEND_STREAM_COMPILER_HH

#include <istream>
#include <memory>
#include <string>

#include "core/compiler.hh"
#include "engine/engine.hh"
#include "frontend/frontend.hh"
#include "hardware/coupling_graph.hh"

namespace tetris::frontend
{

/** Input format selector for makeBlockSource(). */
enum class SourceFormat
{
    Auto, ///< By path extension: ".qasm" -> Qasm, else PauliList.
    Qasm,
    PauliList,
};

/** Resolve Auto against a file path ("x.qasm" -> Qasm). */
SourceFormat formatForPath(const std::string &path);

/** Construct the parser for a format (Auto uses `path_hint`). */
std::unique_ptr<BlockSource> makeBlockSource(std::istream &in,
                                             SourceFormat format,
                                             const std::string &path_hint);

/**
 * Window size: `requested` if >= 1, else TETRIS_STREAM_WINDOW
 * (strict parse, [1, 1048576]), else 256.
 */
int resolveStreamWindow(int requested = 0);

/** Peak resident set size of this process in KiB (getrusage). */
uint64_t peakRssKb();

struct StreamOptions
{
    /** Blocks per chunk; <= 0 resolves TETRIS_STREAM_WINDOW. */
    int window = 0;
    /** Job-name prefix; chunk i submits as "<name>#<i>". */
    std::string name = "stream";
    /**
     * Base compiler options for every chunk. initialLayout is
     * overwritten per chunk with the previous chunk's final layout.
     */
    TetrisOptions compile;
    /** Destination .tcs path; empty = do not write artifacts. */
    std::string outputPath;
};

/** Everything a streamed run learned, for benches and tests. */
struct StreamStats
{
    /** False when parsing, compiling, or writing failed. */
    bool ok = false;
    /** The parse diagnostic when parsing is what failed. */
    ParseError parseError;
    /** Non-parse failure description ("chunk 3 cancelled", ...). */
    std::string failure;

    int numQubits = 0;
    size_t chunks = 0;
    size_t blocks = 0;
    uint64_t instructions = 0;
    uint64_t bytesRead = 0;
    bool residualClifford = false;

    /** Final layout of the last chunk (l2p), the program's output
     *  placement; empty when no chunk compiled. */
    std::vector<int> finalLayout;

    /** Job keys of every chunk, in order (cache/artifact lookup). */
    std::vector<uint64_t> chunkKeys;

    /** Aggregates over all chunk circuits. */
    size_t totalGates = 0;
    size_t cnotCount = 0;
    size_t swapCount = 0;

    /** Chunks whose engine verify pass failed (0 with verify off). */
    size_t verifyFailures = 0;

    /** Wall-clock of the whole run (parse + compile + write). */
    double totalSeconds = 0.0;
    /** Wall-clock spent inside BlockSource::next (the frontend). */
    double parseSeconds = 0.0;
    /** Sum of per-chunk pipeline compile time. */
    double compileSeconds = 0.0;
};

class StreamCompiler
{
  public:
    StreamCompiler(Engine &engine,
                   std::shared_ptr<const CouplingGraph> hw,
                   StreamOptions opts);

    /**
     * Drain `src` through the engine. Returns stats with ok=false
     * and the typed error/failure set on the first problem; chunks
     * already compiled are still in the .tcs output and the stats.
     */
    StreamStats run(BlockSource &src);

    /** The window actually in force after env resolution. */
    int window() const { return window_; }

  private:
    Engine &engine_;
    std::shared_ptr<const CouplingGraph> hw_;
    StreamOptions opts_;
    int window_;
};

} // namespace tetris::frontend

#endif // TETRIS_FRONTEND_STREAM_COMPILER_HH
