#include "frontend/stream_compiler.hh"

#include <chrono>
#include <cstdlib>

#include <sys/resource.h>

#include "common/env.hh"
#include "core/pipeline_adapters.hh"
#include "frontend/pauli_parser.hh"
#include "frontend/qasm_parser.hh"
#include "serialize/stream_file.hh"

namespace tetris::frontend
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

} // namespace

SourceFormat
formatForPath(const std::string &path)
{
    const std::string suffix = ".qasm";
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) == 0)
        return SourceFormat::Qasm;
    return SourceFormat::PauliList;
}

std::unique_ptr<BlockSource>
makeBlockSource(std::istream &in, SourceFormat format,
                const std::string &path_hint)
{
    if (format == SourceFormat::Auto)
        format = formatForPath(path_hint);
    if (format == SourceFormat::Qasm)
        return std::make_unique<QasmParser>(in);
    return std::make_unique<PauliListParser>(in);
}

int
resolveStreamWindow(int requested)
{
    if (requested >= 1)
        return requested;
    if (const char *env = std::getenv("TETRIS_STREAM_WINDOW")) {
        if (int parsed = parseEnvInt(env, 1, 1 << 20))
            return parsed;
    }
    return 256;
}

uint64_t
peakRssKb()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // Linux reports ru_maxrss in KiB already.
    return static_cast<uint64_t>(ru.ru_maxrss);
}

StreamCompiler::StreamCompiler(Engine &engine,
                               std::shared_ptr<const CouplingGraph> hw,
                               StreamOptions opts)
    : engine_(engine), hw_(std::move(hw)), opts_(std::move(opts)),
      window_(resolveStreamWindow(opts_.window))
{
}

StreamStats
StreamCompiler::run(BlockSource &src)
{
    auto t0 = std::chrono::steady_clock::now();
    StreamStats st;

    std::unique_ptr<serialize::StreamArtifactWriter> writer;
    if (!opts_.outputPath.empty()) {
        writer = std::make_unique<serialize::StreamArtifactWriter>(
            opts_.outputPath);
        if (!writer->ok()) {
            st.failure = "cannot open output file: " + opts_.outputPath;
            st.totalSeconds = secondsSince(t0);
            return st;
        }
    }

    // Pull up to `window_` blocks; false on parse error.
    auto parseChunk = [&](std::vector<PauliBlock> &chunk) {
        chunk.clear();
        auto p0 = std::chrono::steady_clock::now();
        PauliBlock b;
        bool ok = true;
        while (static_cast<int>(chunk.size()) < window_) {
            BlockSource::Status s = src.next(b);
            if (s == BlockSource::Status::Block) {
                chunk.push_back(std::move(b));
            } else {
                ok = s == BlockSource::Status::End;
                break;
            }
        }
        st.parseSeconds += secondsSince(p0);
        return ok;
    };

    struct Pending
    {
        std::shared_ptr<CompileCache::Entry> entry;
        uint64_t key = 0;
        size_t blocks = 0;
        size_t index = 0;
    };

    auto submit = [&](std::vector<PauliBlock> chunk,
                      std::vector<int> seed, size_t index) {
        Pending p;
        p.blocks = chunk.size();
        p.index = index;
        TetrisOptions chunk_opts = opts_.compile;
        chunk_opts.initialLayout = std::move(seed);
        CompileJob job;
        job.name = opts_.name + "#" + std::to_string(index);
        job.blocks = std::move(chunk);
        job.hw = hw_;
        job.pipeline = makeTetrisPipeline(chunk_opts);
        // Chunk keys are unique (name#index + seeded layout) and each
        // result is read exactly once, then lives on in the .tcs
        // stream: caching them would make resident memory O(chunks),
        // sinking the O(window) claim this layer exists for.
        job.transient = true;
        p.key = Engine::jobKey(job);
        p.entry = engine_.submitScoped(std::move(job));
        return p;
    };

    // Wait for one chunk, fold its result into the stats/output.
    // Returns false (with st.failure set) when streaming must stop.
    auto settle = [&](const Pending &p, std::vector<int> &seed_out) {
        std::shared_ptr<const CompileResult> res = p.entry->get();
        if (res->cancelled) {
            st.failure = "chunk " + std::to_string(p.index) +
                         " was cancelled by the engine";
            return false;
        }
        // 0 = verify not run, else 1 + VerifyStatus (2 = Fail).
        if (p.entry->verifyStatus() == 2)
            ++st.verifyFailures;
        ++st.chunks;
        st.blocks += p.blocks;
        st.chunkKeys.push_back(p.key);
        st.totalGates += res->stats.totalGateCount;
        st.cnotCount += res->stats.cnotCount;
        st.swapCount += res->stats.swapCount;
        st.compileSeconds += res->stats.compileSeconds;
        st.finalLayout = res->finalLayout.toPhysical();
        seed_out = st.finalLayout;
        if (writer != nullptr && !writer->append(p.key, *res)) {
            st.failure = "write failure on " + opts_.outputPath +
                         " at chunk " + std::to_string(p.index);
            return false;
        }
        return true;
    };

    auto finish = [&](bool ok) {
        st.numQubits = src.numQubits();
        st.instructions = src.instructionsRead();
        st.bytesRead = src.bytesRead();
        // A trailing Clifford the block stream could not carry is
        // flagged, not fatal: the chunks themselves are verified, and
        // drivers/tests decide whether a dangling basis change at EOF
        // matters for their use (it usually is a final measurement
        // basis rotation).
        st.residualClifford = src.residualClifford();
        st.ok = ok && st.failure.empty();
        st.totalSeconds = secondsSince(t0);
        return st;
    };

    std::vector<PauliBlock> chunk;
    if (!parseChunk(chunk)) {
        st.parseError = src.error();
        return finish(false);
    }
    if (chunk.empty())
        return finish(true); // empty program: zero chunks, success

    if (static_cast<int>(chunk.front().numQubits()) > hw_->numQubits()) {
        st.failure = "program needs " +
                     std::to_string(chunk.front().numQubits()) +
                     " qubits but the device has " +
                     std::to_string(hw_->numQubits());
        return finish(false);
    }

    std::vector<int> seed; // empty = identity for chunk 0
    Pending pending = submit(std::move(chunk), seed, 0);
    size_t index = 0;
    while (true) {
        // Parse the next chunk while the engine compiles this one.
        bool parsed = parseChunk(chunk);
        if (!settle(pending, seed))
            return finish(false);
        if (!parsed) {
            st.parseError = src.error();
            return finish(false);
        }
        if (chunk.empty())
            break;
        pending = submit(std::move(chunk), seed, ++index);
    }
    return finish(true);
}

} // namespace tetris::frontend
