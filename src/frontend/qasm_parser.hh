/**
 * @file
 * Incremental OpenQASM 2 reader producing Pauli rotation blocks.
 *
 * The parser consumes one statement at a time from the lexer and
 * folds the circuit into the Pauli-rotation picture the compiler
 * speaks, using the verifier's Clifford frame (verify/pauli_frame.hh)
 * as the algebra engine:
 *
 *  - Clifford gates (h, x, y, z, s, sdg, cx, cz, swap) are never
 *    emitted; they accumulate in a PauliFrame.
 *  - Rotation gates become single-string PauliBlocks whose axis is
 *    the rotation generator pulled back through the accumulated
 *    Clifford prefix: rz(t) on wire q emits exp(-i t/2 * C^dg Z_q C).
 *    ry routes through rx conjugated by s; t/tdg/u1 are rz with
 *    fixed/forwarded angles; u2/u3 decompose into rz/ry/rz.
 *  - Everything the Pauli IR cannot express — measure, reset, if,
 *    custom gate bodies, opaque, non-qelib1 includes — is a typed
 *    Unsupported error at its source position, by design: silently
 *    dropping semantics would poison the differential corpus.
 *
 * A program that ends while the frame is non-identity has a trailing
 * Clifford the block stream cannot carry; residualClifford() reports
 * it so drivers can refuse or warn.
 *
 * Angle expressions support the common qelib idiom: numbers, pi,
 * unary +/-, * / + -, and parentheses (depth-bounded, so crafted
 * inputs cannot blow the stack).
 */

#ifndef TETRIS_FRONTEND_QASM_PARSER_HH
#define TETRIS_FRONTEND_QASM_PARSER_HH

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "frontend/frontend.hh"
#include "frontend/lexer.hh"
#include "verify/pauli_frame.hh"

namespace tetris::frontend
{

/** Widest program the frontend accepts (sanity bound, not a HW cap). */
inline constexpr int kMaxFrontendQubits = 4096;

class QasmParser : public BlockSource
{
  public:
    explicit QasmParser(std::istream &in);

    Status next(PauliBlock &out) override;
    const ParseError &error() const override { return error_; }
    int numQubits() const override { return num_qubits_; }
    uint64_t instructionsRead() const override { return instructions_; }
    uint64_t bytesRead() const override { return cs_.bytesRead(); }
    bool residualClifford() const override;

  private:
    struct Reg
    {
        int offset = 0;
        int size = 0;
    };

    void advance();
    bool expect(TokKind kind, const char *what);
    [[nodiscard]] bool failHere(ParseErrorKind kind, std::string message);

    /** Parse statements until a rotation lands in pending_ or EOF. */
    bool pump();
    bool parseHeader();
    bool parseStatement();
    bool parseQreg();
    bool parseCreg();
    bool parseInclude();
    bool skipToSemicolon();
    bool parseGate(const std::string &name, size_t line, size_t column);
    bool parseAngle(double &out, int depth);
    bool parseAngleTerm(double &out, int depth);
    bool parseAngleFactor(double &out, int depth);
    bool parseArgument(std::vector<int> &wires, bool &broadcast);
    bool applyGate(const std::string &name, size_t line, size_t column,
                   const std::vector<double> &params,
                   const std::vector<int> &wires);
    void pushRotation(bool z_axis, int wire, double angle);

    CharStream cs_;
    Lexer lex_;
    Token tok_; ///< One-token lookahead.

    bool header_done_ = false;
    bool done_ = false;
    ParseError error_;

    std::map<std::string, Reg> qregs_;
    std::set<std::string> cregs_;
    int num_qubits_ = 0;
    /** Created lazily at the first gate; qregs are closed then. */
    std::unique_ptr<PauliFrame> frame_;

    uint64_t instructions_ = 0;
    /** Rotations a statement produced but next() has not returned. */
    std::deque<std::pair<PauliString, double>> pending_;
};

} // namespace tetris::frontend

#endif // TETRIS_FRONTEND_QASM_PARSER_HH
