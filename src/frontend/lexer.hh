/**
 * @file
 * Incremental tokenizer for the OpenQASM 2 grammar subset.
 *
 * Pulls characters from a CharStream on demand — one token of
 * lookahead, no token list — and never throws: unexpected bytes
 * yield a Token of kind Error with the lexer's ParseError set, and
 * every subsequent next() repeats that token, so the parser can
 * treat the lexer as an infallible stream and report once.
 */

#ifndef TETRIS_FRONTEND_LEXER_HH
#define TETRIS_FRONTEND_LEXER_HH

#include <string>

#include "frontend/frontend.hh"

namespace tetris::frontend
{

enum class TokKind
{
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< decimal literal, optional fraction/exponent
    String,     ///< "..." (include paths)
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Arrow, ///< "->"
    Plus,
    Minus,
    Star,
    Slash,
    Eof,
    Error,
};

struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;    ///< Identifier/String spelling.
    double number = 0.0; ///< Number value.
    size_t line = 0;     ///< 1-based start position.
    size_t column = 0;
};

class Lexer
{
  public:
    explicit Lexer(CharStream &in) : in_(in) {}

    /** The next token; Eof forever at end, Error forever after one. */
    Token next();

    /** The diagnostic behind a TokKind::Error token. */
    const ParseError &error() const { return error_; }

  private:
    Token fail(ParseErrorKind kind, size_t line, size_t column,
               std::string message);

    CharStream &in_;
    ParseError error_;
};

} // namespace tetris::frontend

#endif // TETRIS_FRONTEND_LEXER_HH
