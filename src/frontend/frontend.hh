/**
 * @file
 * Streaming program-ingestion layer (ROADMAP item 2).
 *
 * The frontend turns a text file — OpenQASM 2 or the native
 * Pauli-list format — into an incremental stream of PauliBlocks
 * without ever materializing the file: a fixed-size CharStream
 * buffer feeds a pull-based parser (BlockSource), and the windowing
 * stage downstream (frontend/stream_compiler.hh) groups the blocks
 * into bounded chunks. Memory is O(buffer + one block) regardless of
 * input size, which is what lets O(GB) programs flow through a
 * compiler built for in-memory block lists.
 *
 * Decoding is *total*: every malformed input — truncation, garbage
 * bytes, mixed encodings, unsupported constructs — surfaces as a
 * typed ParseError carrying the 1-based line/column where decoding
 * stopped, never a crash, abort, or unbounded loop. The fuzz suite
 * (tests/test_frontend_fuzz.cc) enforces exactly that contract.
 */

#ifndef TETRIS_FRONTEND_FRONTEND_HH
#define TETRIS_FRONTEND_FRONTEND_HH

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "pauli/pauli_block.hh"

namespace tetris::frontend
{

/** What a parse failure is, beyond where it happened. */
enum class ParseErrorKind
{
    None,        ///< No error (default state).
    Io,          ///< The underlying stream failed mid-read.
    Lex,         ///< Bytes that form no token (garbage, bad number).
    Syntax,      ///< Tokens in an order the grammar rejects.
    Unsupported, ///< Valid QASM the Pauli IR cannot express
                 ///< (measure, custom gate bodies, ...).
    Semantic,    ///< Well-formed but meaningless (undeclared
                 ///< register, index out of range, width mismatch).
    Limit,       ///< A sanity bound tripped (register too wide).
};

/** A typed, positioned parse diagnostic. */
struct ParseError
{
    ParseErrorKind kind = ParseErrorKind::None;
    size_t line = 0;   ///< 1-based; 0 = position unknown.
    size_t column = 0; ///< 1-based; 0 = position unknown.
    std::string message;

    bool ok() const { return kind == ParseErrorKind::None; }
    /** "line 12, column 7: unsupported statement: measure". */
    std::string toText() const;
};

/** Stable name of the kind ("syntax", "unsupported", ...). */
const char *parseErrorKindName(ParseErrorKind kind);

/**
 * Buffered incremental character reader with position tracking.
 * Pulls from the istream one fixed-size block at a time; peek()/get()
 * never touch more than the current buffer. '\n' advances line and
 * resets column; '\r' is consumed transparently when followed by
 * '\n' (CRLF inputs report the same positions as LF inputs).
 */
class CharStream
{
  public:
    static constexpr size_t kBufferSize = 64 * 1024;

    explicit CharStream(std::istream &in);

    /** Next character without consuming, or -1 at end of input. */
    int peek();

    /** Consume and return the next character, -1 at end of input. */
    int get();

    /** True once a read failed for a reason other than EOF. */
    bool ioError() const { return io_error_; }

    size_t line() const { return line_; }
    size_t column() const { return column_; }

    /** Bytes consumed so far (ingest-rate accounting). */
    uint64_t bytesRead() const { return bytes_; }

  private:
    bool fill();

    std::istream &in_;
    std::vector<char> buf_;
    size_t pos_ = 0;
    size_t len_ = 0;
    size_t line_ = 1;
    size_t column_ = 1;
    uint64_t bytes_ = 0;
    bool io_error_ = false;
};

/**
 * Pull-based block producer: the interface between a format parser
 * and the windowing stage. next() parses exactly as much input as
 * one block needs; callers own the loop, so memory stays bounded by
 * what *they* retain.
 */
class BlockSource
{
  public:
    enum class Status
    {
        Block, ///< `out` holds the next block.
        End,   ///< Clean end of input; `out` untouched.
        Error  ///< error() describes the failure; stream unusable.
    };

    virtual ~BlockSource() = default;

    virtual Status next(PauliBlock &out) = 0;

    /** The diagnostic after Status::Error (kind None otherwise). */
    virtual const ParseError &error() const = 0;

    /**
     * Qubit count of the program; 0 until the input has declared it
     * (QASM: after the qreg statements; Pauli list: after the first
     * string).
     */
    virtual int numQubits() const = 0;

    /** Source instructions consumed (gates / list lines) so far. */
    virtual uint64_t instructionsRead() const = 0;

    /** Bytes of input consumed so far (ingest-rate accounting). */
    virtual uint64_t bytesRead() const = 0;

    /**
     * True when the input ended with folded-but-unemitted Clifford
     * gates (QASM only): the block stream then represents the
     * program only up to that trailing Clifford, and the caller
     * must surface it.
     */
    virtual bool residualClifford() const { return false; }
};

} // namespace tetris::frontend

#endif // TETRIS_FRONTEND_FRONTEND_HH
