#include "qaoa/graph.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace tetris
{

Graph::Graph(int num_nodes, std::vector<std::pair<int, int>> edges)
    : numNodes_(num_nodes), edges_(std::move(edges))
{
    std::set<std::pair<int, int>> seen;
    for (auto &[u, v] : edges_) {
        TETRIS_ASSERT(u >= 0 && u < numNodes_ && v >= 0 && v < numNodes_,
                      "edge endpoint out of range");
        TETRIS_ASSERT(u != v, "self loop");
        if (u > v)
            std::swap(u, v);
        TETRIS_ASSERT(seen.insert({u, v}).second, "duplicate edge");
    }
}

int
Graph::degree(int v) const
{
    int d = 0;
    for (const auto &[a, b] : edges_) {
        if (a == v || b == v)
            ++d;
    }
    return d;
}

Graph
Graph::randomWithEdges(int num_nodes, int num_edges, uint64_t seed)
{
    const long max_edges =
        static_cast<long>(num_nodes) * (num_nodes - 1) / 2;
    TETRIS_ASSERT(num_edges <= max_edges, "too many edges requested");

    Rng rng(seed);
    std::set<std::pair<int, int>> picked;
    while (static_cast<int>(picked.size()) < num_edges) {
        int u = rng.uniformInt(0, num_nodes - 1);
        int v = rng.uniformInt(0, num_nodes - 1);
        if (u == v)
            continue;
        if (u > v)
            std::swap(u, v);
        picked.insert({u, v});
    }
    return Graph(num_nodes,
                 std::vector<std::pair<int, int>>(picked.begin(),
                                                  picked.end()));
}

Graph
Graph::randomDensity(int num_nodes, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::pair<int, int>> edges;
    for (int u = 0; u < num_nodes; ++u) {
        for (int v = u + 1; v < num_nodes; ++v) {
            if (rng.bernoulli(density))
                edges.emplace_back(u, v);
        }
    }
    return Graph(num_nodes, std::move(edges));
}

Graph
Graph::regular(int num_nodes, int degree, uint64_t seed)
{
    TETRIS_ASSERT(num_nodes * degree % 2 == 0,
                  "n*d must be even for a regular graph");
    Rng rng(seed);
    for (int attempt = 0; attempt < 1000; ++attempt) {
        std::vector<int> stubs;
        stubs.reserve(num_nodes * degree);
        for (int v = 0; v < num_nodes; ++v) {
            for (int k = 0; k < degree; ++k)
                stubs.push_back(v);
        }
        rng.shuffle(stubs);

        std::set<std::pair<int, int>> picked;
        bool ok = true;
        for (size_t i = 0; i < stubs.size(); i += 2) {
            int u = stubs[i], v = stubs[i + 1];
            if (u == v) {
                ok = false;
                break;
            }
            if (u > v)
                std::swap(u, v);
            if (!picked.insert({u, v}).second) {
                ok = false;
                break;
            }
        }
        if (ok) {
            return Graph(num_nodes,
                         std::vector<std::pair<int, int>>(picked.begin(),
                                                          picked.end()));
        }
    }
    fatal("failed to sample a ", degree, "-regular graph on ", num_nodes,
          " nodes");
}

} // namespace tetris
