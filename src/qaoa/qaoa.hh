/**
 * @file
 * QAOA MaxCut workload construction.
 *
 * One QAOA cost layer over a graph G is the product of
 * exp(-i gamma/2 * Z_u Z_v) over edges (u, v); each edge becomes a
 * single-string Pauli block (at most two non-identity operators, the
 * regime where the paper's fast-bridging pass applies). The mixer
 * and initial layers are single-qubit and are appended by the
 * harness for the Table I gate accounting.
 */

#ifndef TETRIS_QAOA_QAOA_HH
#define TETRIS_QAOA_QAOA_HH

#include <string>
#include <vector>

#include "circuit/circuit.hh"
#include "pauli/pauli_block.hh"
#include "qaoa/graph.hh"

namespace tetris
{

/** One ZZ Pauli block per edge of the graph. */
std::vector<PauliBlock> buildQaoaCostBlocks(const Graph &g, double gamma);

/** The initial |+>^n layer (H on every node). */
Circuit qaoaInitialLayer(int num_qubits, int num_nodes);

/** The RX(2*beta) mixer layer on every node. */
Circuit qaoaMixerLayer(int num_qubits, int num_nodes, double beta);

/** A named QAOA benchmark instance. */
struct QaoaBenchmarkSpec
{
    std::string name;
    int numNodes;
    /** Edges for random graphs; degree for regular graphs. */
    int parameter;
    bool isRegular;
};

/** The paper's QAOA benchmark set (Rand-16/18/20, REG3-16/18/20). */
const std::vector<QaoaBenchmarkSpec> &qaoaBenchmarks();

/** Instantiate a benchmark graph for one seed. */
Graph buildQaoaGraph(const QaoaBenchmarkSpec &spec, uint64_t seed);

} // namespace tetris

#endif // TETRIS_QAOA_QAOA_HH
