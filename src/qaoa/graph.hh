/**
 * @file
 * Simple undirected graphs and the seeded generators used by the
 * QAOA benchmarks (random graphs with a fixed edge budget and
 * d-regular graphs via the configuration model).
 */

#ifndef TETRIS_QAOA_GRAPH_HH
#define TETRIS_QAOA_GRAPH_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tetris
{

/** An undirected simple graph. */
class Graph
{
  public:
    Graph(int num_nodes, std::vector<std::pair<int, int>> edges);

    int numNodes() const { return numNodes_; }
    const std::vector<std::pair<int, int>> &edges() const { return edges_; }
    size_t numEdges() const { return edges_.size(); }

    /** Degree of one node. */
    int degree(int v) const;

    /** Erdos-Renyi-style graph with exactly num_edges edges. */
    static Graph randomWithEdges(int num_nodes, int num_edges,
                                 uint64_t seed);

    /** Random graph with edge probability `density`. */
    static Graph randomDensity(int num_nodes, double density,
                               uint64_t seed);

    /** Random d-regular graph (configuration model with retries). */
    static Graph regular(int num_nodes, int degree, uint64_t seed);

  private:
    int numNodes_;
    std::vector<std::pair<int, int>> edges_;
};

} // namespace tetris

#endif // TETRIS_QAOA_GRAPH_HH
