#include "qaoa/qaoa.hh"

#include "common/logging.hh"

namespace tetris
{

std::vector<PauliBlock>
buildQaoaCostBlocks(const Graph &g, double gamma)
{
    std::vector<PauliBlock> blocks;
    blocks.reserve(g.numEdges());
    for (const auto &[u, v] : g.edges()) {
        PauliString s(static_cast<size_t>(g.numNodes()));
        s.setOp(u, PauliOp::Z);
        s.setOp(v, PauliOp::Z);
        blocks.push_back(PauliBlock({std::move(s)}, gamma));
    }
    return blocks;
}

Circuit
qaoaInitialLayer(int num_qubits, int num_nodes)
{
    Circuit c(num_qubits);
    for (int q = 0; q < num_nodes; ++q)
        c.h(q);
    return c;
}

Circuit
qaoaMixerLayer(int num_qubits, int num_nodes, double beta)
{
    Circuit c(num_qubits);
    for (int q = 0; q < num_nodes; ++q)
        c.rx(q, 2.0 * beta);
    return c;
}

const std::vector<QaoaBenchmarkSpec> &
qaoaBenchmarks()
{
    // Edge counts for the random graphs match the paper's Table I
    // (#Pauli = #edges: 25, 31, 40).
    static const std::vector<QaoaBenchmarkSpec> specs = {
        {"Rand-16", 16, 25, false}, {"Rand-18", 18, 31, false},
        {"Rand-20", 20, 40, false}, {"REG3-16", 16, 3, true},
        {"REG3-18", 18, 3, true},   {"REG3-20", 20, 3, true},
    };
    return specs;
}

Graph
buildQaoaGraph(const QaoaBenchmarkSpec &spec, uint64_t seed)
{
    if (spec.isRegular)
        return Graph::regular(spec.numNodes, spec.parameter, seed);
    return Graph::randomWithEdges(spec.numNodes, spec.parameter, seed);
}

} // namespace tetris
