/**
 * @file
 * Clifford back-conjugation frame (stabilizer tableau).
 *
 * For a circuit prefix C of Clifford gates, the frame answers
 * "what does a Pauli at the *current* point of the circuit look like
 * pulled back to the input?": backImage(P) = C^dagger P C. That is
 * exactly what the conjugation checker needs to lift every RZ/RX it
 * encounters into an input-frame rotation axis (writing the circuit
 * as C_total * prod_k exp(-i theta_k/2 Q_k) with all Cliffords pushed
 * to the end), and to test the residual C_total against the
 * finalLayout permutation.
 *
 * Representation: the signed back-images of the 2n generators X_q,
 * Z_q, each stored as a packed bit-plane PauliString. Appending a
 * gate g maps generator G on g's wires to the back-image of
 * g^dagger G g, a product of at most two stored generators -- an
 * in-place word-wide XOR/popcount update (PauliString::mulLeft /
 * mulRight), O(n/64) words per update, no allocation. Signs are
 * tracked exactly; Hermiticity of every image is a checked invariant.
 */

#ifndef TETRIS_VERIFY_PAULI_FRAME_HH
#define TETRIS_VERIFY_PAULI_FRAME_HH

#include <vector>

#include "circuit/gate.hh"
#include "pauli/pauli_string.hh"

namespace tetris
{

/** A Hermitian signed Pauli operator: sign * P with sign in {+1,-1}. */
struct SignedPauli
{
    PauliString p;
    int sign = 1;
};

class PauliFrame
{
  public:
    /** Identity frame over n wires. */
    explicit PauliFrame(int num_qubits);

    int numQubits() const { return static_cast<int>(x_.size()); }

    /**
     * Fold one Clifford gate into the frame. Returns false (frame
     * unchanged) for non-Clifford kinds -- rotations, MEASURE, RESET
     * -- which the caller must handle itself.
     */
    bool applyGate(const Gate &g);

    /** Back-image of X on wire q under the accumulated prefix. */
    const SignedPauli &backImageX(int q) const { return x_[q]; }

    /** Back-image of Z on wire q under the accumulated prefix. */
    const SignedPauli &backImageZ(int q) const { return z_[q]; }

  private:
    std::vector<SignedPauli> x_;
    std::vector<SignedPauli> z_;
};

} // namespace tetris

#endif // TETRIS_VERIFY_PAULI_FRAME_HH
