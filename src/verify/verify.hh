/**
 * @file
 * Semantic equivalence verification of compiled circuits.
 *
 * Every pipeline in the registry promises the same contract: its
 * CompileResult implements the ordered product of exp(-i w theta/2 P)
 * rotations of the scheduled blocks, followed by the finalLayout wire
 * permutation, up to global phase, with free wires treated as |0>
 * ancillas that return to |0>. Nothing downstream (the engine, the
 * artifact store, the bench sweeps) re-checks that contract; this
 * subsystem is the backstop that does.
 *
 * Two checkers share one report type:
 *
 *  - verifyExact(): simulates the compiled circuit and the analytic
 *    reference on random input states (sim/statevector) and compares
 *    up to global phase. Exhaustive in practice, but exponential in
 *    width -- usable up to VerifyOptions::maxExactQubits wires.
 *
 *  - verifyConjugation(): scales to every device in the repository.
 *    Walks the circuit once, maintaining the Clifford back-conjugation
 *    frame (verify/pauli_frame.hh); each RZ/RX is pulled back to an
 *    input-frame rotation axis, and the resulting (axis, angle)
 *    sequence is matched blockwise against the scheduled blocks
 *    (per-axis angle sums, mod 2pi, within each commuting block).
 *    The residual Clifford must be exactly the finalLayout
 *    permutation on logical wires and Z-type on the |0> ancillas.
 *
 * verifyCompileResult() dispatches: exact when the circuit is narrow
 *    enough, conjugation otherwise. Circuits with MEASURE/RESET
 *    (QAOA qubit reuse) or evicted logical qubits are reported as
 *    Skipped -- their semantics are not the unitary contract above.
 *
 * The engine runs this on every fresh compilation *and* every
 * disk-cache hit when EngineOptions::verify is set, recording
 * verify.pass / verify.fail / verify.skipped metrics (see the README
 * "Verification" section).
 */

#ifndef TETRIS_VERIFY_VERIFY_HH
#define TETRIS_VERIFY_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Outcome class of one verification. */
enum class VerifyStatus
{
    /** The circuit provably implements the reference program. */
    Pass,
    /** A semantic divergence was found (miscompile or stale artifact). */
    Fail,
    /** The checker does not apply (width, reuse semantics, ...). */
    Skipped,
};

/** Human-readable name of a status. */
const char *verifyStatusName(VerifyStatus s);

/** Knobs of both checkers. */
struct VerifyOptions
{
    /** Widest register verifyExact() will simulate (2^n amplitudes). */
    int maxExactQubits = 14;
    /** Random input states per exact check. */
    int numStates = 2;
    /** Seed for the exact checker's random input states. */
    uint64_t seed = 0x7e72150001ull;
    /** Allowed |overlap - 1| deviation in the exact checker. */
    double tolerance = 1e-7;
    /** Allowed per-axis angle residual (mod 2pi) in the conjugation
     *  checker. */
    double angleTolerance = 1e-6;
};

/** Result of one verification run. */
struct VerifyReport
{
    VerifyStatus status = VerifyStatus::Skipped;
    /** Which checker produced the verdict: "exact"|"conjugation". */
    std::string method;
    /** Diagnostic for Fail (what diverged) and Skipped (why). */
    std::string detail;

    bool pass() const { return status == VerifyStatus::Pass; }
    bool failed() const { return status == VerifyStatus::Fail; }
};

/**
 * Statevector check: simulate compiled circuit and reference program
 * on numStates random inputs (ancillas |0>), undo the finalLayout
 * permutation, require overlap 1 up to `tolerance`. Skipped when the
 * register exceeds maxExactQubits or the circuit leaves the unitary
 * gate set (MEASURE/RESET).
 */
VerifyReport verifyExact(const std::vector<PauliBlock> &blocks,
                         const CompileResult &result,
                         const VerifyOptions &opts = VerifyOptions());

/**
 * Clifford/Pauli-conjugation check, polynomial in circuit size and
 * width. Blocks whose strings mutually commute are matched by
 * per-axis angle sums (order free); blocks with non-commuting
 * strings are matched as an ordered rotation sequence where only
 * commutation-preserving reorderings are accepted, so arbitrary
 * client-submitted programs verify rather than skip. Skipped only
 * for MEASURE/RESET (qubit-reuse) circuits.
 */
VerifyReport verifyConjugation(const std::vector<PauliBlock> &blocks,
                               const CompileResult &result,
                               const VerifyOptions &opts = VerifyOptions());

/**
 * The engine's entry point: exact for registers up to
 * maxExactQubits, conjugation beyond. Cancelled results are Skipped.
 */
VerifyReport verifyCompileResult(const std::vector<PauliBlock> &blocks,
                                 const CompileResult &result,
                                 const VerifyOptions &opts
                                 = VerifyOptions());

} // namespace tetris

#endif // TETRIS_VERIFY_VERIFY_HH
