/**
 * @file
 * Helpers shared between the verify checkers (not public API).
 */

#ifndef TETRIS_VERIFY_INTERNAL_HH
#define TETRIS_VERIFY_INTERNAL_HH

#include <optional>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "pauli/pauli_block.hh"

namespace tetris::verify_detail
{

/** Simulation/tableau width: circuit wires, at least the program's. */
int registerWidth(const std::vector<PauliBlock> &blocks,
                  const CompileResult &result);

/** True when the circuit stays in the unitary gate set. */
bool circuitIsUnitary(const Circuit &c);

/**
 * Total wire permutation implied by a layout (identity when the
 * layout is default-constructed; free wires fill remaining slots in
 * ascending order). Entry l of the result is the physical wire of
 * logical qubit l. nullopt, with `why_not` set, when the contract
 * does not apply (evicted logicals, malformed layout).
 */
std::optional<std::vector<int>>
layoutPermutation(const Layout &layout, int num_logical, int num_phys,
                  std::string &why_not);

/** layoutPermutation applied to result.finalLayout. */
std::optional<std::vector<int>>
finalPermutation(const CompileResult &result, int num_logical,
                 int num_phys, std::string &why_not);

} // namespace tetris::verify_detail

#endif // TETRIS_VERIFY_INTERNAL_HH
