/**
 * @file
 * Exact statevector equivalence checker (see verify/verify.hh).
 */

#include <cmath>
#include <sstream>

#include "common/rng.hh"
#include "sim/statevector.hh"
#include "verify/internal.hh"
#include "verify/verify.hh"

namespace tetris
{

namespace verify_detail
{

int
registerWidth(const std::vector<PauliBlock> &blocks,
              const CompileResult &result)
{
    int width = std::max(result.circuit.numQubits(),
                         blocksNumQubits(blocks));
    return std::max(width, 1);
}

bool
circuitIsUnitary(const Circuit &c)
{
    for (const auto &g : c.gates()) {
        if (g.kind == GateKind::MEASURE || g.kind == GateKind::RESET)
            return false;
    }
    return true;
}

std::optional<std::vector<int>>
layoutPermutation(const Layout &layout, int num_logical, int num_phys,
                  std::string &why_not)
{
    // Unrouted pipelines leave the layout default-constructed:
    // logical wire l stays on physical wire l.
    std::vector<int> new_pos(num_phys, -1);
    std::vector<bool> used(num_phys, false);
    for (int l = 0; l < num_logical; ++l) {
        int pos = l;
        if (layout.numPhysical() > 0) {
            if (l >= layout.numLogical()) {
                why_not = "layout narrower than the program";
                return std::nullopt;
            }
            pos = layout.physOf(l);
        }
        if (pos < 0) {
            // Qubit-reuse pipelines evict finished logical qubits;
            // the permutation contract does not apply to them.
            why_not = "logical qubit evicted from the layout "
                      "(qubit reuse)";
            return std::nullopt;
        }
        if (pos >= num_phys || used[pos]) {
            why_not = "layout is not an injective map into the "
                      "register";
            return std::nullopt;
        }
        new_pos[l] = pos;
        used[pos] = true;
    }
    // Free wires are |0> on both sides; fill the remaining slots in
    // ascending order so the permutation is total.
    int next_free = 0;
    for (int b = 0; b < num_phys; ++b) {
        if (new_pos[b] >= 0)
            continue;
        while (used[next_free])
            ++next_free;
        new_pos[b] = next_free;
        used[next_free] = true;
    }
    return new_pos;
}

std::optional<std::vector<int>>
finalPermutation(const CompileResult &result, int num_logical,
                 int num_phys, std::string &why_not)
{
    return layoutPermutation(result.finalLayout, num_logical, num_phys,
                             why_not);
}

} // namespace verify_detail

namespace
{

/** Pad a logical string with identities up to num_qubits wires. */
PauliString
extendTo(const PauliString &s, int num_qubits)
{
    PauliString out(static_cast<size_t>(num_qubits));
    for (size_t q = 0; q < s.numQubits(); ++q)
        out.setOp(q, s.op(q));
    return out;
}

/** |psi_logical> tensor |0...0> on a wider register. */
Statevector
embed(const Statevector &logical, int num_qubits)
{
    std::vector<Statevector::Amplitude> amp(size_t{1} << num_qubits,
                                            0.0);
    for (size_t i = 0; i < logical.amplitudes().size(); ++i)
        amp[i] = logical.amplitudes()[i];
    return Statevector::fromAmplitudes(std::move(amp));
}

/** Move bit b of the index to position new_pos[b]. */
Statevector
permute(const Statevector &sv, const std::vector<int> &new_pos)
{
    std::vector<Statevector::Amplitude> amp(sv.amplitudes().size(), 0.0);
    for (size_t i = 0; i < sv.amplitudes().size(); ++i) {
        size_t j = 0;
        for (int b = 0; b < sv.numQubits(); ++b) {
            if (i & (size_t{1} << b))
                j |= size_t{1} << new_pos[b];
        }
        amp[j] = sv.amplitudes()[i];
    }
    return Statevector::fromAmplitudes(std::move(amp));
}

} // namespace

VerifyReport
verifyExact(const std::vector<PauliBlock> &blocks,
            const CompileResult &result, const VerifyOptions &opts)
{
    VerifyReport report;
    report.method = "exact";
    if (result.cancelled) {
        report.detail = "cancelled result";
        return report;
    }

    const int num_logical = blocksNumQubits(blocks);
    const int num_phys = verify_detail::registerWidth(blocks, result);
    if (num_phys > opts.maxExactQubits) {
        std::ostringstream os;
        os << "register of " << num_phys
           << " wires exceeds maxExactQubits=" << opts.maxExactQubits;
        report.detail = os.str();
        return report;
    }
    if (!verify_detail::circuitIsUnitary(result.circuit)) {
        report.detail = "circuit contains MEASURE/RESET (qubit reuse)";
        return report;
    }

    std::string why_not;
    auto new_pos = verify_detail::finalPermutation(result, num_logical,
                                                   num_phys, why_not);
    if (!new_pos) {
        report.detail = why_not;
        return report;
    }
    // Seeded compiles (streamed chunks) take their input with logical
    // qubit l already sitting on wire initialLayout(l); the reference
    // side stays on logical wires, so the actual side starts from the
    // initial-layout permutation of the embedded state.
    auto init_pos = verify_detail::layoutPermutation(
        result.initialLayout, num_logical, num_phys, why_not);
    if (!init_pos) {
        report.detail = "initialLayout: " + why_not;
        return report;
    }

    std::vector<size_t> order = result.blockOrder;
    if (order.empty()) {
        order.resize(blocks.size());
        for (size_t i = 0; i < blocks.size(); ++i)
            order[i] = i;
    }
    for (size_t idx : order) {
        if (idx >= blocks.size()) {
            report.status = VerifyStatus::Fail;
            report.detail = "blockOrder references a block out of range";
            return report;
        }
    }

    Rng rng(opts.seed);
    for (int trial = 0; trial < std::max(opts.numStates, 1); ++trial) {
        Statevector logical = Statevector::random(num_logical, rng);
        Statevector start = embed(logical, num_phys);

        Statevector actual = permute(start, *init_pos);
        actual.applyCircuit(result.circuit);

        Statevector expected = start;
        for (size_t idx : order) {
            const PauliBlock &b = blocks[idx];
            for (size_t i = 0; i < b.size(); ++i) {
                expected.applyPauliExp(extendTo(b.string(i), num_phys),
                                       b.weight(i) * b.theta());
            }
        }
        expected = permute(expected, *new_pos);

        double overlap = actual.overlapWith(expected);
        if (std::abs(overlap - 1.0) >= opts.tolerance) {
            std::ostringstream os;
            os << "state overlap " << overlap << " on trial " << trial
               << " (tolerance " << opts.tolerance << ")";
            report.status = VerifyStatus::Fail;
            report.detail = os.str();
            return report;
        }
    }

    report.status = VerifyStatus::Pass;
    return report;
}

} // namespace tetris
