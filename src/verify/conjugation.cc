/**
 * @file
 * Scalable Pauli-conjugation equivalence checker.
 *
 * Writes the compiled circuit as C_total * prod_k exp(-i t_k/2 Q_k)
 * by pushing every Clifford gate to the end (verify/pauli_frame.hh):
 * one O(gates * width) walk yields the input-frame rotation sequence
 * (Q_k, t_k) plus the residual Clifford's tableau. The circuit is
 * correct iff
 *
 *  (1) each Q_k restricted to the ancilla wires is Z-type (Z acts as
 *      +1 on the |0> ancillas, so those factors are inert),
 *  (2) the logical parts of the rotation sequence match the scheduled
 *      blocks. Within one *commuting* block rotation order is free and
 *      same-axis rotations may merge, so per-axis angle *sums* must
 *      agree mod 2pi (mod-2pi slack is a global phase). When every
 *      pair of strings in the whole program commutes (QAOA cost
 *      layers), the pipeline may interleave blocks arbitrarily and
 *      all blocks collapse into a single pool. A block whose strings
 *      do *not* all commute keeps its rotations as an ordered
 *      sequence instead: a compiled rotation may consume an entry
 *      only if every earlier not-yet-satisfied entry commutes with
 *      its axis -- the exact set of reorderings that preserve the
 *      block unitary -- so arbitrary client-submitted programs verify
 *      rather than being skipped. A residual left when a block closes
 *      may carry over to a later same-axis entry (in this block or
 *      any later one) only if it commutes with every live rotation it
 *      crosses -- exactly the moves a commutation-aware peephole can
 *      make.
 *  (3) the residual Clifford acts as the finalLayout permutation on
 *      the logical wires and as a Z-type map on the |0> ancillas.
 *
 * Unlike the exact checker this is polynomial everywhere, so it runs
 * on the 64/65-qubit devices of the paper's evaluation.
 */

#include <cmath>
#include <map>
#include <sstream>

#include "verify/internal.hh"
#include "verify/pauli_frame.hh"
#include "verify/verify.hh"

namespace tetris
{

namespace
{

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** One input-frame rotation, reduced to the logical wires. */
struct LogicalRotation
{
    PauliString axis; // over [0, num_logical)
    double angle;
};

/** One expected rotation slot of a scheduled block. */
struct Entry
{
    PauliString axis;
    double remaining; // expected-minus-consumed angle
};

/** Expected rotations of one scheduled block. */
struct Pool
{
    /**
     * True when the block's strings do not all mutually commute, so
     * the relative order of `seq` entries is load-bearing. Commuting
     * blocks merge same-axis rotations into one slot and are order
     * free.
     */
    bool ordered = false;
    std::vector<Entry> seq;
    /** Axis -> seq slot; maintained for unordered pools only. */
    std::map<PauliString, size_t> index;
};

bool
angleIsIdentity(double angle, double tol)
{
    // exp(-i a/2 P) is the identity up to global phase iff a = 0 mod
    // 2pi (a = 2pi gives the -1 phase).
    return std::abs(std::remainder(angle, kTwoPi)) <= tol;
}

std::string
describeAxis(const PauliString &axis)
{
    return axis.toText();
}

/**
 * Find the slot in `pool` a compiled rotation on `axis` may consume,
 * or nullptr. Unordered pools: the unique per-axis slot. Ordered
 * pools: the earliest same-axis entry the rotation can legally reach,
 * i.e. every earlier entry with a live (non-identity) residual must
 * commute with `axis` -- a live non-commuting entry ahead of the
 * match means the compiled circuit reordered rotations that do not
 * commute, which changes the unitary.
 */
Entry *
findSlot(Pool &pool, const PauliString &axis, double tol)
{
    if (!pool.ordered) {
        auto it = pool.index.find(axis);
        return it == pool.index.end() ? nullptr : &pool.seq[it->second];
    }
    for (Entry &e : pool.seq) {
        if (e.axis == axis)
            return &e;
        if (!angleIsIdentity(e.remaining, tol) &&
            !e.axis.commutesWith(axis))
            return nullptr; // blocked: order would be violated
    }
    return nullptr;
}

/**
 * Close pool `bi`: every residual must be an identity rotation, or
 * carry over to a later same-axis slot -- first within this pool
 * (ordered pools keep same-axis rotations in separate slots), then
 * into any later pool -- when that is a semantically legal move,
 * i.e. the residual commutes with every live rotation it crosses on
 * the way there.
 */
bool
closePool(std::vector<Pool> &pools, size_t bi, double tol,
          std::string &detail)
{
    Pool &pool = pools[bi];
    for (size_t i = 0; i < pool.seq.size(); ++i) {
        Entry &e = pool.seq[i];
        if (angleIsIdentity(e.remaining, tol))
            continue;
        bool carried = false;
        bool blocked = false;
        // Within-pool carry: only ordered pools can hold a later
        // same-axis slot (unordered pools merged them at build time).
        // Within an unordered pool every pair commutes, so reaching
        // the block boundary is always legal there.
        for (size_t j = i + 1; j < pool.seq.size(); ++j) {
            if (pool.seq[j].axis == e.axis) {
                pool.seq[j].remaining += e.remaining;
                e.remaining = 0.0;
                carried = true;
                break;
            }
            if (pool.ordered &&
                !angleIsIdentity(pool.seq[j].remaining, tol) &&
                !pool.seq[j].axis.commutesWith(e.axis)) {
                blocked = true;
                break;
            }
        }
        // Cross-pool carry: land on the first same-axis slot of a
        // later pool the residual can legally reach. It may cross a
        // pool entirely -- or, in an ordered pool, the entries ahead
        // of the landing slot -- only while every live rotation it
        // passes commutes with it; the first live non-commuting
        // entry ends the search. (When it lands in an unordered
        // pool the axis is one of that block's strings and commutes
        // with the whole block, so the landing position is free.)
        for (size_t pj = bi + 1;
             !carried && !blocked && pj < pools.size(); ++pj) {
            Pool &np = pools[pj];
            if (!np.ordered) {
                auto it = np.index.find(e.axis);
                if (it != np.index.end()) {
                    np.seq[it->second].remaining += e.remaining;
                    e.remaining = 0.0;
                    carried = true;
                    break;
                }
                for (const Entry &ne : np.seq) {
                    if (!angleIsIdentity(ne.remaining, tol) &&
                        !ne.axis.commutesWith(e.axis)) {
                        blocked = true;
                        break;
                    }
                }
            } else {
                for (Entry &ne : np.seq) {
                    if (ne.axis == e.axis) {
                        ne.remaining += e.remaining;
                        e.remaining = 0.0;
                        carried = true;
                        break;
                    }
                    if (!angleIsIdentity(ne.remaining, tol) &&
                        !ne.axis.commutesWith(e.axis)) {
                        blocked = true;
                        break;
                    }
                }
            }
        }
        if (!carried) {
            std::ostringstream os;
            os << "block " << bi << ": axis " << describeAxis(e.axis)
               << " has angle residual " << e.remaining
               << " (not 0 mod 2pi)";
            detail = os.str();
            return false;
        }
    }
    return true;
}

} // namespace

VerifyReport
verifyConjugation(const std::vector<PauliBlock> &blocks,
                  const CompileResult &result, const VerifyOptions &opts)
{
    VerifyReport report;
    report.method = "conjugation";
    if (result.cancelled) {
        report.detail = "cancelled result";
        return report;
    }
    if (!verify_detail::circuitIsUnitary(result.circuit)) {
        report.detail = "circuit contains MEASURE/RESET (qubit reuse)";
        return report;
    }

    const int num_logical = blocksNumQubits(blocks);
    const int width = verify_detail::registerWidth(blocks, result);

    std::string why_not;
    auto perm = verify_detail::finalPermutation(result, num_logical,
                                                width, why_not);
    if (!perm) {
        report.detail = why_not;
        return report;
    }
    // Seeded compiles take logical qubit l in on wire initialLayout(l)
    // (identity when default-constructed); every input-frame statement
    // below is phrased on those wires. Wires outside the image are the
    // |0> ancillas at the circuit input.
    auto init = verify_detail::layoutPermutation(
        result.initialLayout, num_logical, width, why_not);
    if (!init) {
        report.detail = "initialLayout: " + why_not;
        return report;
    }
    std::vector<int> logical_at_in(width, -1);
    for (int l = 0; l < num_logical; ++l)
        logical_at_in[(*init)[l]] = l;

    // ---- scheduled reference ------------------------------------
    std::vector<size_t> order = result.blockOrder;
    if (order.empty()) {
        order.resize(blocks.size());
        for (size_t i = 0; i < blocks.size(); ++i)
            order[i] = i;
    }
    for (size_t idx : order) {
        if (idx >= blocks.size()) {
            report.status = VerifyStatus::Fail;
            report.detail = "blockOrder references a block out of range";
            return report;
        }
    }

    auto extend = [&](const PauliString &s) {
        PauliString out(static_cast<size_t>(num_logical));
        for (size_t q = 0; q < s.numQubits(); ++q)
            out.setOp(q, s.op(q));
        return out;
    };

    // All-pairs commutation across the program decides whether block
    // boundaries constrain rotation order at all.
    std::vector<PauliString> all_strings;
    for (const auto &b : blocks) {
        for (const auto &s : b.strings())
            all_strings.push_back(extend(s));
    }
    bool globally_commuting = true;
    for (size_t i = 0; i < all_strings.size() && globally_commuting; ++i) {
        for (size_t j = i + 1; j < all_strings.size(); ++j) {
            if (!all_strings[i].commutesWith(all_strings[j])) {
                globally_commuting = false;
                break;
            }
        }
    }

    std::vector<Pool> pools;
    if (globally_commuting) {
        pools.emplace_back();
    }
    for (size_t idx : order) {
        const PauliBlock &b = blocks[idx];
        if (!globally_commuting) {
            // A block whose strings all mutually commute is an
            // order-free pool with per-axis merged angles; otherwise
            // the in-block rotation order is part of the semantics
            // and the pool keeps one slot per string, in order.
            // (reorderForConsecutiveSimilarity leaves non-commuting
            // blocks untouched, so compiled output preserves that
            // order and such programs verify instead of skipping.)
            bool block_commuting = true;
            for (size_t i = 0; i < b.size() && block_commuting; ++i) {
                for (size_t j = i + 1; j < b.size(); ++j) {
                    if (!b.string(i).commutesWith(b.string(j))) {
                        block_commuting = false;
                        break;
                    }
                }
            }
            pools.emplace_back();
            pools.back().ordered = !block_commuting;
        }
        Pool &pool = pools.back();
        for (size_t i = 0; i < b.size(); ++i) {
            PauliString axis = extend(b.string(i));
            double angle = b.weight(i) * b.theta();
            if (pool.ordered) {
                pool.seq.push_back({std::move(axis), angle});
                continue;
            }
            auto [it, inserted] =
                pool.index.try_emplace(axis, pool.seq.size());
            if (inserted)
                pool.seq.push_back({std::move(axis), angle});
            else
                pool.seq[it->second].remaining += angle;
        }
    }
    if (pools.empty())
        pools.emplace_back();

    // ---- one walk: pull every rotation back to the input frame ----
    PauliFrame frame(width);
    std::vector<LogicalRotation> rotations;
    for (const auto &g : result.circuit.gates()) {
        if (frame.applyGate(g))
            continue;
        TETRIS_ASSERT(g.kind == GateKind::RZ || g.kind == GateKind::RX);
        const SignedPauli &back = g.kind == GateKind::RZ
                                      ? frame.backImageZ(g.q0)
                                      : frame.backImageX(g.q0);
        PauliString axis(static_cast<size_t>(num_logical));
        bool ancilla_only_z = true;
        for (int w = 0; w < width; ++w) {
            PauliOp op = back.p.op(w);
            int l = logical_at_in[w];
            if (l >= 0) {
                axis.setOp(l, op);
            } else if (op != PauliOp::I && op != PauliOp::Z) {
                ancilla_only_z = false;
                break;
            }
        }
        if (!ancilla_only_z) {
            std::ostringstream os;
            os << "rotation axis " << back.p.toText()
               << " carries X/Y on a |0> ancilla wire";
            report.status = VerifyStatus::Fail;
            report.detail = os.str();
            return report;
        }
        // Z factors on |0> ancillas are +1 eigenvalue: inert. A fully
        // ancilla/identity axis is a pure global phase.
        if (axis.isIdentity())
            continue;
        rotations.push_back({std::move(axis), back.sign * g.angle});
    }

    // ---- blockwise matching --------------------------------------
    size_t bi = 0;
    for (const auto &rot : rotations) {
        while (true) {
            if (bi >= pools.size()) {
                std::ostringstream os;
                os << "rotation on axis " << describeAxis(rot.axis)
                   << " after every block was satisfied";
                report.status = VerifyStatus::Fail;
                report.detail = os.str();
                return report;
            }
            Entry *slot =
                findSlot(pools[bi], rot.axis, opts.angleTolerance);
            if (slot != nullptr) {
                slot->remaining -= rot.angle;
                break;
            }
            std::string detail;
            if (!closePool(pools, bi, opts.angleTolerance, detail)) {
                std::ostringstream os;
                os << detail << "; next rotation axis "
                   << describeAxis(rot.axis);
                report.status = VerifyStatus::Fail;
                report.detail = os.str();
                return report;
            }
            ++bi;
        }
    }
    for (; bi < pools.size(); ++bi) {
        std::string detail;
        if (!closePool(pools, bi, opts.angleTolerance, detail)) {
            report.status = VerifyStatus::Fail;
            report.detail = detail;
            return report;
        }
    }

    // ---- residual Clifford = initial->final permutation ----------
    // Conditions phrased on back-images M(P) = C^dg P C: with V the
    // (logical-on-initialLayout-wires) (x) |0>_F subspace, C|V acts
    // as the initial->final wire permutation up to global phase iff
    // the pulled-back logical generators reduce to the input-wire
    // ones modulo the ancilla stabilizer <Z_f : f free-in>, and the
    // free-out stabilizer pulls back into that same group.
    std::vector<bool> logical_out(width, false);
    for (int l = 0; l < num_logical; ++l)
        logical_out[(*perm)[l]] = true;

    auto checkImage = [&](const SignedPauli &img, int expect_wire,
                          PauliOp expect_op, std::string &detail) {
        if (img.sign != 1) {
            detail = "negative sign";
            return false;
        }
        for (int w = 0; w < width; ++w) {
            PauliOp op = img.p.op(w);
            if (w == expect_wire) {
                if (op != expect_op) {
                    detail = "wrong operator on its own wire";
                    return false;
                }
            } else if (logical_at_in[w] >= 0) {
                if (op != PauliOp::I) {
                    detail = "spills onto another logical wire";
                    return false;
                }
            } else if (op != PauliOp::I && op != PauliOp::Z) {
                detail = "X/Y factor on a |0> ancilla wire";
                return false;
            }
        }
        return true;
    };

    for (int l = 0; l < num_logical; ++l) {
        int p = (*perm)[l];
        int in = (*init)[l];
        std::string why;
        if (!checkImage(frame.backImageX(p), in, PauliOp::X, why) ||
            !checkImage(frame.backImageZ(p), in, PauliOp::Z, why)) {
            std::ostringstream os;
            os << "residual Clifford does not map logical qubit " << l
               << " from wire " << in << " to wire " << p << ": "
               << why;
            report.status = VerifyStatus::Fail;
            report.detail = os.str();
            return report;
        }
    }
    for (int p = 0; p < width; ++p) {
        if (logical_out[p])
            continue;
        // -1 = "no single wire": only the ancilla-Z pattern may match.
        std::string why;
        if (!checkImage(frame.backImageZ(p), -1, PauliOp::I, why)) {
            std::ostringstream os;
            os << "residual Clifford does not return ancilla wire " << p
               << " to |0>: " << why;
            report.status = VerifyStatus::Fail;
            report.detail = os.str();
            return report;
        }
    }

    report.status = VerifyStatus::Pass;
    return report;
}

} // namespace tetris
