#include "verify/verify.hh"

#include "verify/internal.hh"

namespace tetris
{

const char *
verifyStatusName(VerifyStatus s)
{
    switch (s) {
      case VerifyStatus::Pass: return "pass";
      case VerifyStatus::Fail: return "fail";
      case VerifyStatus::Skipped: return "skipped";
    }
    return "?";
}

VerifyReport
verifyCompileResult(const std::vector<PauliBlock> &blocks,
                    const CompileResult &result,
                    const VerifyOptions &opts)
{
    if (result.cancelled) {
        VerifyReport report;
        report.method = "none";
        report.detail = "cancelled result";
        return report;
    }
    // Exact is the stronger oracle; use it whenever the register is
    // small enough to simulate, and fall back to the polynomial
    // conjugation checker for the real devices.
    if (verify_detail::registerWidth(blocks, result) <=
        opts.maxExactQubits) {
        return verifyExact(blocks, result, opts);
    }
    return verifyConjugation(blocks, result, opts);
}

} // namespace tetris
