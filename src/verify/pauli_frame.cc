#include "verify/pauli_frame.hh"

#include "common/logging.hh"

namespace tetris
{

PauliFrame::PauliFrame(int num_qubits)
{
    TETRIS_ASSERT(num_qubits >= 1);
    x_.reserve(num_qubits);
    z_.reserve(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        SignedPauli sx{PauliString(static_cast<size_t>(num_qubits)), 1};
        sx.p.setOp(q, PauliOp::X);
        x_.push_back(std::move(sx));
        SignedPauli sz{PauliString(static_cast<size_t>(num_qubits)), 1};
        sz.p.setOp(q, PauliOp::Z);
        z_.push_back(std::move(sz));
    }
}

namespace
{

/** Fold a product's i^exp into a +/-1 sign; Hermiticity is a frame
 *  invariant, so any odd power is an update bug, not bad input. */
int
hermitianSign(int phase_exp)
{
    const int exp = phase_exp % 4;
    TETRIS_ASSERT(exp == 0 || exp == 2,
                  "non-Hermitian Pauli image (phase i^", exp, ")");
    return exp == 2 ? -1 : 1;
}

/** acc = acc * rhs, in place on the packed planes (no allocation). */
void
mulInto(SignedPauli &acc, const SignedPauli &rhs, int extra_phase_exp)
{
    const int exp = acc.p.mulRight(rhs.p) + extra_phase_exp;
    acc.sign = acc.sign * rhs.sign * hermitianSign(exp);
}

/** acc = lhs * acc, in place on the packed planes (no allocation). */
void
mulIntoLeft(SignedPauli &acc, const SignedPauli &lhs, int extra_phase_exp)
{
    const int exp = acc.p.mulLeft(lhs.p) + extra_phase_exp;
    acc.sign = acc.sign * lhs.sign * hermitianSign(exp);
}

} // namespace

bool
PauliFrame::applyGate(const Gate &g)
{
    // Every rule below is M_new(G) = M_old(g^dagger G g) for the
    // generators G on g's wires; untouched generators keep their
    // images. All updates run word-wide on the stored bit-planes.
    switch (g.kind) {
      case GateKind::H:
        // H X H = Z, H Z H = X.
        std::swap(x_[g.q0], z_[g.q0]);
        return true;
      case GateKind::X:
        // X Z X = -Z.
        z_[g.q0].sign = -z_[g.q0].sign;
        return true;
      case GateKind::S:
        // S^dg X S = -Y = -i X Z.
        mulInto(x_[g.q0], z_[g.q0], /*i^*/ 3);
        return true;
      case GateKind::Sdg:
        // S X S^dg = Y = i X Z.
        mulInto(x_[g.q0], z_[g.q0], /*i^*/ 1);
        return true;
      case GateKind::CX:
        // CX X_c CX = X_c X_t;  CX Z_t CX = Z_c Z_t.
        mulInto(x_[g.q0], x_[g.q1], 0);
        mulIntoLeft(z_[g.q1], z_[g.q0], 0);
        return true;
      case GateKind::SWAP:
        std::swap(x_[g.q0], x_[g.q1]);
        std::swap(z_[g.q0], z_[g.q1]);
        return true;
      case GateKind::RZ:
      case GateKind::RX:
      case GateKind::MEASURE:
      case GateKind::RESET:
        return false;
    }
    panic("invalid gate kind");
}

} // namespace tetris
