#include "verify/pauli_frame.hh"

#include "common/logging.hh"

namespace tetris
{

PauliFrame::PauliFrame(int num_qubits)
{
    TETRIS_ASSERT(num_qubits >= 1);
    x_.reserve(num_qubits);
    z_.reserve(num_qubits);
    for (int q = 0; q < num_qubits; ++q) {
        SignedPauli sx{PauliString(static_cast<size_t>(num_qubits)), 1};
        sx.p.setOp(q, PauliOp::X);
        x_.push_back(std::move(sx));
        SignedPauli sz{PauliString(static_cast<size_t>(num_qubits)), 1};
        sz.p.setOp(q, PauliOp::Z);
        z_.push_back(std::move(sz));
    }
}

SignedPauli
PauliFrame::mul(const SignedPauli &a, const SignedPauli &b,
                int extra_phase_exp)
{
    PauliStringProduct prod = mulStrings(a.p, b.p);
    int exp = (prod.phaseExp + extra_phase_exp) % 4;
    TETRIS_ASSERT(exp == 0 || exp == 2,
                  "non-Hermitian Pauli image (phase i^", exp, ")");
    int sign = a.sign * b.sign * (exp == 2 ? -1 : 1);
    return {std::move(prod.string), sign};
}

bool
PauliFrame::applyGate(const Gate &g)
{
    // Every rule below is M_new(G) = M_old(g^dagger G g) for the
    // generators G on g's wires; untouched generators keep their
    // images.
    switch (g.kind) {
      case GateKind::H:
        // H X H = Z, H Z H = X.
        std::swap(x_[g.q0], z_[g.q0]);
        return true;
      case GateKind::X:
        // X Z X = -Z.
        z_[g.q0].sign = -z_[g.q0].sign;
        return true;
      case GateKind::S:
        // S^dg X S = -Y = -i X Z.
        x_[g.q0] = mul(x_[g.q0], z_[g.q0], /*i^*/ 3);
        return true;
      case GateKind::Sdg:
        // S X S^dg = Y = i X Z.
        x_[g.q0] = mul(x_[g.q0], z_[g.q0], /*i^*/ 1);
        return true;
      case GateKind::CX:
        // CX X_c CX = X_c X_t;  CX Z_t CX = Z_c Z_t.
        x_[g.q0] = mul(x_[g.q0], x_[g.q1], 0);
        z_[g.q1] = mul(z_[g.q0], z_[g.q1], 0);
        return true;
      case GateKind::SWAP:
        std::swap(x_[g.q0], x_[g.q1]);
        std::swap(z_[g.q0], z_[g.q1]);
        return true;
      case GateKind::RZ:
      case GateKind::RX:
      case GateKind::MEASURE:
      case GateKind::RESET:
        return false;
    }
    panic("invalid gate kind");
}

} // namespace tetris
