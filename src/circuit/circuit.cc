#include "circuit/circuit.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tetris
{

void
Circuit::add(const Gate &g)
{
    TETRIS_ASSERT(g.q0 >= 0 && g.q0 < numQubits_, "qubit out of range");
    if (g.isTwoQubit()) {
        TETRIS_ASSERT(g.q1 >= 0 && g.q1 < numQubits_, "qubit out of range");
        TETRIS_ASSERT(g.q0 != g.q1, "two-qubit gate on one wire");
    }
    gates_.push_back(g);
}

void
Circuit::append(const Circuit &other)
{
    TETRIS_ASSERT(other.numQubits_ <= numQubits_,
                  "appended circuit is wider than the register");
    gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

size_t
Circuit::cnotCount() const
{
    size_t n = 0;
    for (const auto &g : gates_) {
        if (g.kind == GateKind::CX)
            n += 1;
        else if (g.kind == GateKind::SWAP)
            n += 3;
    }
    return n;
}

size_t
Circuit::swapCount() const
{
    size_t n = 0;
    for (const auto &g : gates_) {
        if (g.kind == GateKind::SWAP)
            ++n;
    }
    return n;
}

size_t
Circuit::oneQubitCount() const
{
    size_t n = 0;
    for (const auto &g : gates_) {
        if (g.isOneQubit())
            ++n;
    }
    return n;
}

size_t
Circuit::totalGateCount() const
{
    return cnotCount() + oneQubitCount();
}

size_t
Circuit::depth() const
{
    std::vector<size_t> level(numQubits_, 0);
    size_t max_level = 0;
    for (const auto &g : gates_) {
        size_t cost = g.kind == GateKind::SWAP ? 3 : 1;
        size_t start = level[g.q0];
        if (g.isTwoQubit())
            start = std::max(start, level[g.q1]);
        size_t end = start + cost;
        level[g.q0] = end;
        if (g.isTwoQubit())
            level[g.q1] = end;
        max_level = std::max(max_level, end);
    }
    return max_level;
}

double
Circuit::duration(const DurationModel &model) const
{
    std::vector<double> time(numQubits_, 0.0);
    double max_time = 0.0;
    for (const auto &g : gates_) {
        double start = time[g.q0];
        if (g.isTwoQubit())
            start = std::max(start, time[g.q1]);
        double end = start + model.of(g);
        time[g.q0] = end;
        if (g.isTwoQubit())
            time[g.q1] = end;
        max_time = std::max(max_time, end);
    }
    return max_time;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_);
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        Gate g = *it;
        switch (g.kind) {
          case GateKind::S:
            g.kind = GateKind::Sdg;
            break;
          case GateKind::Sdg:
            g.kind = GateKind::S;
            break;
          case GateKind::RZ:
          case GateKind::RX:
            g.angle = -g.angle;
            break;
          case GateKind::MEASURE:
          case GateKind::RESET:
            panic("cannot invert a circuit containing measure/reset");
          default:
            break;
        }
        inv.gates_.push_back(g);
    }
    return inv;
}

Circuit
Circuit::withSwapsDecomposed() const
{
    Circuit out(numQubits_);
    for (const auto &g : gates_) {
        if (g.kind == GateKind::SWAP) {
            out.cx(g.q0, g.q1);
            out.cx(g.q1, g.q0);
            out.cx(g.q0, g.q1);
        } else {
            out.add(g);
        }
    }
    return out;
}

} // namespace tetris
