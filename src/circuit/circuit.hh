/**
 * @file
 * Circuit container plus the metric definitions used by the paper.
 *
 * Metric conventions (Sec. VI-A of the paper):
 *  - CNOT count: every CX plus 3 per SWAP.
 *  - Depth: critical path length where a SWAP contributes 3 layers.
 *  - Duration: critical path weighted by per-gate dt durations.
 *  - 1Q count: all single-qubit gates.
 */

#ifndef TETRIS_CIRCUIT_CIRCUIT_HH
#define TETRIS_CIRCUIT_CIRCUIT_HH

#include <cstdint>
#include <vector>

#include "circuit/gate.hh"

namespace tetris
{

/**
 * Per-gate durations in units of dt. Defaults are calibrated to
 * IBM-scale timings (CNOT ~300ns at dt = 0.222ns); see DESIGN.md.
 */
struct DurationModel
{
    double oneQubitDt = 160.0;
    double cnotDt = 1350.0;
    double measureDt = 5000.0;
    double resetDt = 3000.0;

    /** Duration of one gate under this model. */
    double
    of(const Gate &g) const
    {
        switch (g.kind) {
          case GateKind::CX: return cnotDt;
          case GateKind::SWAP: return 3.0 * cnotDt;
          case GateKind::MEASURE: return measureDt;
          case GateKind::RESET: return resetDt;
          default: return oneQubitDt;
        }
    }
};

/**
 * An ordered list of gates over a fixed qubit register. Gate order is
 * program order; scheduling metrics (depth, duration) use ASAP
 * placement respecting qubit dependencies.
 */
class Circuit
{
  public:
    Circuit() = default;
    explicit Circuit(int num_qubits) : numQubits_(num_qubits) {}

    int numQubits() const { return numQubits_; }
    const std::vector<Gate> &gates() const { return gates_; }
    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    /** Append one gate (qubits must be in range). */
    void add(const Gate &g);

    /** Convenience emitters. */
    void h(int q) { add(Gate::h(q)); }
    void x(int q) { add(Gate::x(q)); }
    void s(int q) { add(Gate::s(q)); }
    void sdg(int q) { add(Gate::sdg(q)); }
    void rz(int q, double a) { add(Gate::rz(q, a)); }
    void rx(int q, double a) { add(Gate::rx(q, a)); }
    void cx(int c, int t) { add(Gate::cx(c, t)); }
    void swap(int a, int b) { add(Gate::swap(a, b)); }
    void measure(int q) { add(Gate::measure(q)); }
    void reset(int q) { add(Gate::reset(q)); }

    /** Append all gates of another circuit (same register width). */
    void append(const Circuit &other);

    /** Number of CX gates plus three per SWAP. */
    size_t cnotCount() const;

    /** Number of SWAP gates (undecomposed). */
    size_t swapCount() const;

    /** Number of single-qubit gates. */
    size_t oneQubitCount() const;

    /** cnotCount() + oneQubitCount(). */
    size_t totalGateCount() const;

    /** Critical-path depth; SWAP counts as 3 layers. */
    size_t depth() const;

    /** Critical-path duration in dt under the model. */
    double duration(const DurationModel &model = DurationModel()) const;

    /**
     * The inverse circuit (reversed gate order, inverted gates).
     * Measure/reset gates are not invertible; calling this on a
     * circuit containing them is an error.
     */
    Circuit inverse() const;

    /** Decompose every SWAP into 3 CNOTs (for simulators/routers). */
    Circuit withSwapsDecomposed() const;

  private:
    int numQubits_ = 0;
    std::vector<Gate> gates_;
};

} // namespace tetris

#endif // TETRIS_CIRCUIT_CIRCUIT_HH
