/**
 * @file
 * Quantum gate record used by the circuit IR.
 *
 * The gate set mirrors what the Tetris compilation flow emits:
 * {H, X, S, Sdg, RZ, RX, CX, SWAP, MEASURE, RESET}. SWAP is kept as a
 * logical gate and decomposed into three CNOTs only in the metrics
 * (matching the paper's accounting).
 */

#ifndef TETRIS_CIRCUIT_GATE_HH
#define TETRIS_CIRCUIT_GATE_HH

#include <cstdint>
#include <string>

namespace tetris
{

/** Gate kinds supported by the circuit IR. */
enum class GateKind : uint8_t
{
    H,
    X,
    S,
    Sdg,
    RZ,
    RX,
    CX,
    SWAP,
    MEASURE,
    RESET,
};

/** True for gates acting on a single qubit. */
inline bool
isOneQubit(GateKind k)
{
    switch (k) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::RZ:
      case GateKind::RX:
        return true;
      default:
        return false;
    }
}

/** True for the two-qubit gate kinds. */
inline bool
isTwoQubit(GateKind k)
{
    return k == GateKind::CX || k == GateKind::SWAP;
}

/** Human-readable gate name. */
const char *gateName(GateKind k);

/**
 * One gate application. q1 is negative for single-qubit gates; for CX,
 * q0 is the control and q1 the target.
 */
struct Gate
{
    GateKind kind;
    int q0;
    int q1;
    double angle;

    static Gate h(int q) { return {GateKind::H, q, -1, 0.0}; }
    static Gate x(int q) { return {GateKind::X, q, -1, 0.0}; }
    static Gate s(int q) { return {GateKind::S, q, -1, 0.0}; }
    static Gate sdg(int q) { return {GateKind::Sdg, q, -1, 0.0}; }
    static Gate rz(int q, double a) { return {GateKind::RZ, q, -1, a}; }
    static Gate rx(int q, double a) { return {GateKind::RX, q, -1, a}; }
    static Gate cx(int c, int t) { return {GateKind::CX, c, t, 0.0}; }
    static Gate swap(int a, int b) { return {GateKind::SWAP, a, b, 0.0}; }
    static Gate measure(int q) { return {GateKind::MEASURE, q, -1, 0.0}; }
    static Gate reset(int q) { return {GateKind::RESET, q, -1, 0.0}; }

    bool isOneQubit() const { return tetris::isOneQubit(kind); }
    bool isTwoQubit() const { return tetris::isTwoQubit(kind); }

    /** True if the gate touches qubit q. */
    bool
    actsOn(int q) const
    {
        return q0 == q || (isTwoQubit() && q1 == q);
    }

    /** Render like "CX 3 5" or "RZ 2 (0.5)". */
    std::string toString() const;
};

} // namespace tetris

#endif // TETRIS_CIRCUIT_GATE_HH
