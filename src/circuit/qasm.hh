/**
 * @file
 * OpenQASM 2.0 export.
 *
 * Lets compiled circuits be inspected or fed to external toolchains
 * (the original artifact's Qiskit flows accept this format). SWAP
 * and reset are emitted with their standard qelib decompositions /
 * statements.
 */

#ifndef TETRIS_CIRCUIT_QASM_HH
#define TETRIS_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace tetris
{

/** Render a circuit as an OpenQASM 2.0 program. */
std::string toQasm(const Circuit &c);

/** Write the QASM rendering to a file; returns success. */
bool writeQasm(const Circuit &c, const std::string &path);

} // namespace tetris

#endif // TETRIS_CIRCUIT_QASM_HH
