#include "circuit/peephole.hh"

#include <array>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace tetris
{

namespace
{

constexpr int kNone = -1;

/** Doubly linked per-wire gate list over a frozen gate vector. */
class WireGraph
{
  public:
    explicit WireGraph(const Circuit &c)
        : gates_(c.gates()), alive_(gates_.size(), true),
          next_(gates_.size(), {kNone, kNone}),
          prev_(gates_.size(), {kNone, kNone})
    {
        std::vector<int> last(c.numQubits(), kNone);
        for (size_t i = 0; i < gates_.size(); ++i) {
            const Gate &g = gates_[i];
            linkWire(static_cast<int>(i), 0, g.q0, last);
            if (g.isTwoQubit())
                linkWire(static_cast<int>(i), 1, g.q1, last);
        }
    }

    const Gate &gate(int i) const { return gates_[i]; }
    Gate &gate(int i) { return gates_[i]; }
    bool alive(int i) const { return alive_[i]; }
    size_t size() const { return gates_.size(); }

    /** Which wire slot (0/1) of gate i carries qubit q. */
    int
    slotOf(int i, int q) const
    {
        const Gate &g = gates_[i];
        if (g.q0 == q)
            return 0;
        TETRIS_ASSERT(g.isTwoQubit() && g.q1 == q);
        return 1;
    }

    int
    nextOn(int i, int q) const
    {
        return next_[i][slotOf(i, q)];
    }

    /** Unlink gate i from all of its wires and mark it dead. */
    void
    remove(int i)
    {
        TETRIS_ASSERT(alive_[i]);
        const Gate &g = gates_[i];
        unlinkWire(i, 0);
        if (g.isTwoQubit())
            unlinkWire(i, 1);
        alive_[i] = false;
    }

  private:
    void
    linkWire(int i, int slot, int q, std::vector<int> &last)
    {
        prev_[i][slot] = last[q];
        if (last[q] != kNone) {
            int p = last[q];
            next_[p][slotOf(p, q)] = i;
        }
        last[q] = i;
    }

    void
    unlinkWire(int i, int slot)
    {
        int q = slot == 0 ? gates_[i].q0 : gates_[i].q1;
        int p = prev_[i][slot];
        int n = next_[i][slot];
        if (p != kNone)
            next_[p][slotOf(p, q)] = n;
        if (n != kNone)
            prev_[n][slotOf(n, q)] = p;
    }

    std::vector<Gate> gates_;
    std::vector<bool> alive_;
    std::vector<std::array<int, 2>> next_;
    std::vector<std::array<int, 2>> prev_;

  public:
    /** Rebuild a circuit from the surviving gates. */
    Circuit
    toCircuit(int num_qubits) const
    {
        Circuit out(num_qubits);
        for (size_t i = 0; i < gates_.size(); ++i) {
            if (alive_[i])
                out.add(gates_[i]);
        }
        return out;
    }
};

/** Diagonal single-qubit gates commute with each other and CX controls. */
bool
isDiagonal1q(GateKind k)
{
    return k == GateKind::RZ || k == GateKind::S || k == GateKind::Sdg;
}

/** X-basis single-qubit gates commute with CX targets. */
bool
isXBasis1q(GateKind k)
{
    return k == GateKind::X || k == GateKind::RX;
}

/** True if kinds a then b on the same wire cancel to identity. */
bool
isInversePair1q(GateKind a, GateKind b)
{
    if (a == GateKind::H && b == GateKind::H)
        return true;
    if (a == GateKind::X && b == GateKind::X)
        return true;
    if (a == GateKind::S && b == GateKind::Sdg)
        return true;
    if (a == GateKind::Sdg && b == GateKind::S)
        return true;
    return false;
}

/**
 * Can the scan for a partner of `moving` (a 1q gate kind on wire q)
 * hop over gate j?
 */
bool
canHop1q(GateKind moving, const Gate &j, int q)
{
    if (j.kind == GateKind::MEASURE || j.kind == GateKind::RESET)
        return false;
    if (isDiagonal1q(moving)) {
        if (j.isOneQubit())
            return isDiagonal1q(j.kind);
        return j.kind == GateKind::CX && j.q0 == q;
    }
    if (isXBasis1q(moving)) {
        if (j.isOneQubit())
            return isXBasis1q(j.kind);
        return j.kind == GateKind::CX && j.q1 == q;
    }
    return false; // H and others: adjacency only.
}

/**
 * Does gate j, acting on wire q, commute with a CX whose control (if
 * role_control) or target (otherwise) is q?
 */
bool
commutesWithCxOnWire(const Gate &j, int q, bool role_control)
{
    if (j.kind == GateKind::MEASURE || j.kind == GateKind::RESET)
        return false;
    if (role_control) {
        if (j.isOneQubit())
            return isDiagonal1q(j.kind);
        return j.kind == GateKind::CX && j.q0 == q;
    }
    if (j.isOneQubit())
        return isXBasis1q(j.kind);
    return j.kind == GateKind::CX && j.q1 == q;
}

double
normalizeAngle(double a)
{
    constexpr double two_pi = 6.283185307179586476925286766559;
    a = std::fmod(a, two_pi);
    if (a > two_pi / 2)
        a -= two_pi;
    if (a < -two_pi / 2)
        a += two_pi;
    return a;
}

class Peephole
{
  public:
    Peephole(const Circuit &in, const PeepholeOptions &opts)
        : graph_(in), opts_(opts), numQubits_(in.numQubits())
    {
    }

    Circuit
    run(PeepholeStats *stats)
    {
        bool changed = true;
        int pass = 0;
        while (changed && pass < opts_.maxPasses) {
            changed = false;
            ++pass;
            for (int i = 0; i < static_cast<int>(graph_.size()); ++i) {
                if (!graph_.alive(i))
                    continue;
                if (tryReduce(i))
                    changed = true;
            }
        }
        stats_.passes = pass;
        if (stats)
            *stats = stats_;
        return graph_.toCircuit(numQubits_);
    }

  private:
    bool
    tryReduce(int i)
    {
        const Gate g = graph_.gate(i);
        switch (g.kind) {
          case GateKind::H:
          case GateKind::X:
          case GateKind::S:
          case GateKind::Sdg:
            return tryCancel1q(i);
          case GateKind::RZ:
          case GateKind::RX:
            return tryMergeRotation(i);
          case GateKind::CX:
            return tryCancelCx(i);
          case GateKind::SWAP:
            return tryCancelSwap(i);
          default:
            return false;
        }
    }

    bool
    tryCancel1q(int i)
    {
        const Gate &g = graph_.gate(i);
        int q = g.q0;
        int j = graph_.nextOn(i, q);
        int hops = 0;
        while (j != kNone && hops < opts_.scanWindow) {
            const Gate &gj = graph_.gate(j);
            if (gj.isOneQubit() && isInversePair1q(g.kind, gj.kind)) {
                graph_.remove(j);
                graph_.remove(i);
                stats_.removedOneQubit += 2;
                return true;
            }
            if (!opts_.commutationAware || !canHop1q(g.kind, gj, q))
                return false;
            j = graph_.nextOn(j, q);
            ++hops;
        }
        return false;
    }

    bool
    tryMergeRotation(int i)
    {
        const Gate &g = graph_.gate(i);
        if (normalizeAngle(g.angle) == 0.0) {
            graph_.remove(i);
            stats_.removedOneQubit += 1;
            return true;
        }
        int q = g.q0;
        int j = graph_.nextOn(i, q);
        int hops = 0;
        while (j != kNone && hops < opts_.scanWindow) {
            Gate &gj = graph_.gate(j);
            if (gj.kind == g.kind && gj.q0 == q) {
                gj.angle = normalizeAngle(gj.angle + g.angle);
                graph_.remove(i);
                ++stats_.mergedRotations;
                if (gj.angle == 0.0) {
                    graph_.remove(j);
                    stats_.removedOneQubit += 1;
                }
                return true;
            }
            if (!opts_.commutationAware || !canHop1q(g.kind, gj, q))
                return false;
            j = graph_.nextOn(j, q);
            ++hops;
        }
        return false;
    }

    bool
    tryCancelCx(int i)
    {
        const Gate &g = graph_.gate(i);
        int c = g.q0, t = g.q1;
        // Scan along the control wire for a matching CX.
        int j = graph_.nextOn(i, c);
        int hops = 0;
        while (j != kNone && hops < opts_.scanWindow) {
            const Gate &gj = graph_.gate(j);
            if (gj.kind == GateKind::CX && gj.q0 == c && gj.q1 == t) {
                if (targetWireClear(i, j, t)) {
                    graph_.remove(j);
                    graph_.remove(i);
                    stats_.removedCx += 2;
                    return true;
                }
                return false;
            }
            if (!opts_.commutationAware ||
                !commutesWithCxOnWire(gj, c, true)) {
                return false;
            }
            j = graph_.nextOn(j, c);
            ++hops;
        }
        return false;
    }

    /**
     * Check that every gate on wire t strictly between gates i and j
     * commutes with a CX targeting t.
     */
    bool
    targetWireClear(int i, int j, int t)
    {
        int k = graph_.nextOn(i, t);
        int hops = 0;
        while (k != kNone && hops < opts_.scanWindow) {
            if (k == j)
                return true;
            if (!opts_.commutationAware ||
                !commutesWithCxOnWire(graph_.gate(k), t, false)) {
                return false;
            }
            k = graph_.nextOn(k, t);
            ++hops;
        }
        return false;
    }

    bool
    tryCancelSwap(int i)
    {
        const Gate &g = graph_.gate(i);
        int j0 = graph_.nextOn(i, g.q0);
        int j1 = graph_.nextOn(i, g.q1);
        if (j0 == kNone || j0 != j1)
            return false;
        const Gate &gj = graph_.gate(j0);
        if (gj.kind != GateKind::SWAP)
            return false;
        bool same_pair = (gj.q0 == g.q0 && gj.q1 == g.q1) ||
                         (gj.q0 == g.q1 && gj.q1 == g.q0);
        if (!same_pair)
            return false;
        graph_.remove(j0);
        graph_.remove(i);
        stats_.removedSwap += 2;
        return true;
    }

    WireGraph graph_;
    PeepholeOptions opts_;
    int numQubits_;
    PeepholeStats stats_;
};

} // namespace

Circuit
peepholeOptimize(const Circuit &in, PeepholeStats *stats,
                 const PeepholeOptions &opts)
{
    return Peephole(in, opts).run(stats);
}

} // namespace tetris
