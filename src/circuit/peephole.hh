/**
 * @file
 * Commutation-aware peephole optimizer ("Qiskit O3"-lite).
 *
 * Performs the gate-cancellation work the paper delegates to Qiskit
 * optimization level 3: adjacent inverse-pair removal (H.H, X.X,
 * S.Sdg, CX.CX, SWAP.SWAP), rotation merging (RZ.RZ, RX.RX), with
 * commutation-aware partner search (diagonal gates commute through
 * CX controls, X-basis gates through CX targets, CXs sharing a
 * control or sharing a target commute).
 *
 * The pass is unitary-preserving; tests/circuit verify this against
 * the statevector simulator on randomized circuits.
 */

#ifndef TETRIS_CIRCUIT_PEEPHOLE_HH
#define TETRIS_CIRCUIT_PEEPHOLE_HH

#include <cstddef>

#include "circuit/circuit.hh"

namespace tetris
{

/** Knobs for the peephole pass. */
struct PeepholeOptions
{
    /** Search past commuting gates for cancellation partners. */
    bool commutationAware = true;
    /** Upper bound on fixpoint iterations. */
    int maxPasses = 25;
    /** Cap on gates skipped during one partner scan. */
    int scanWindow = 96;
};

/** Counters describing what the pass removed. */
struct PeepholeStats
{
    size_t removedCx = 0;
    size_t removedSwap = 0;
    size_t removedOneQubit = 0;
    size_t mergedRotations = 0;
    int passes = 0;
};

/** Run the optimizer and return the reduced circuit. */
Circuit peepholeOptimize(const Circuit &in, PeepholeStats *stats = nullptr,
                         const PeepholeOptions &opts = PeepholeOptions());

} // namespace tetris

#endif // TETRIS_CIRCUIT_PEEPHOLE_HH
