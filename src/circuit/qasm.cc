#include "circuit/qasm.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace tetris
{

std::string
toQasm(const Circuit &c)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << c.numQubits() << "];\n";
    os << "creg m[" << c.numQubits() << "];\n";

    char buf[96];
    for (const auto &g : c.gates()) {
        switch (g.kind) {
          case GateKind::H:
            std::snprintf(buf, sizeof(buf), "h q[%d];\n", g.q0);
            break;
          case GateKind::X:
            std::snprintf(buf, sizeof(buf), "x q[%d];\n", g.q0);
            break;
          case GateKind::S:
            std::snprintf(buf, sizeof(buf), "s q[%d];\n", g.q0);
            break;
          case GateKind::Sdg:
            std::snprintf(buf, sizeof(buf), "sdg q[%d];\n", g.q0);
            break;
          case GateKind::RZ:
            std::snprintf(buf, sizeof(buf), "rz(%.17g) q[%d];\n",
                          g.angle, g.q0);
            break;
          case GateKind::RX:
            std::snprintf(buf, sizeof(buf), "rx(%.17g) q[%d];\n",
                          g.angle, g.q0);
            break;
          case GateKind::CX:
            std::snprintf(buf, sizeof(buf), "cx q[%d],q[%d];\n", g.q0,
                          g.q1);
            break;
          case GateKind::SWAP:
            std::snprintf(buf, sizeof(buf), "swap q[%d],q[%d];\n", g.q0,
                          g.q1);
            break;
          case GateKind::MEASURE:
            std::snprintf(buf, sizeof(buf), "measure q[%d] -> m[%d];\n",
                          g.q0, g.q0);
            break;
          case GateKind::RESET:
            std::snprintf(buf, sizeof(buf), "reset q[%d];\n", g.q0);
            break;
        }
        os << buf;
    }
    return os.str();
}

bool
writeQasm(const Circuit &c, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toQasm(c);
    return static_cast<bool>(out);
}

} // namespace tetris
