#include "circuit/gate.hh"

#include <cstdio>

namespace tetris
{

const char *
gateName(GateKind k)
{
    switch (k) {
      case GateKind::H: return "H";
      case GateKind::X: return "X";
      case GateKind::S: return "S";
      case GateKind::Sdg: return "Sdg";
      case GateKind::RZ: return "RZ";
      case GateKind::RX: return "RX";
      case GateKind::CX: return "CX";
      case GateKind::SWAP: return "SWAP";
      case GateKind::MEASURE: return "MEASURE";
      case GateKind::RESET: return "RESET";
    }
    return "?";
}

std::string
Gate::toString() const
{
    char buf[64];
    if (isTwoQubit()) {
        std::snprintf(buf, sizeof(buf), "%s %d %d", gateName(kind), q0, q1);
    } else if (kind == GateKind::RZ || kind == GateKind::RX) {
        std::snprintf(buf, sizeof(buf), "%s %d (%g)", gateName(kind), q0,
                      angle);
    } else {
        std::snprintf(buf, sizeof(buf), "%s %d", gateName(kind), q0);
    }
    return buf;
}

} // namespace tetris
