/**
 * @file
 * The max-cancel baseline and the PCOAST proxy.
 *
 * max-cancel fixes the logical circuit to a single leaf tree per
 * block, achieving the maximum structural two-qubit cancellation the
 * Pauli grouping admits (Observation 2 / Fig. 2 upper bound), then
 * transpiles with a router -- trading a flood of SWAPs for the
 * cancellation. The PCOAST proxy is the same hardware-oblivious
 * logical optimization followed by greedy routing, modeling PCOAST's
 * profile of excellent logical counts but heavy SWAP overhead
 * (Fig. 15b). See DESIGN.md "Substitutions".
 */

#ifndef TETRIS_BASELINES_MAX_CANCEL_HH
#define TETRIS_BASELINES_MAX_CANCEL_HH

#include <vector>

#include "circuit/circuit.hh"
#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/**
 * The max-cancel logical circuit: per block, a single leaf chain
 * over the common qubits emitted once at the block boundary, the
 * root chain re-emitted per string. `logical_cx` (optional) receives
 * the emitted CNOT count.
 */
Circuit synthesizeMaxCancelLogical(const std::vector<PauliBlock> &blocks,
                                   size_t *logical_cx = nullptr);

/** max-cancel + router + peephole for a device. */
CompileResult compileMaxCancel(const std::vector<PauliBlock> &blocks,
                               const CouplingGraph &hw);

/** PCOAST proxy: logical peephole optimization + greedy routing. */
CompileResult compilePcoastProxy(const std::vector<PauliBlock> &blocks,
                                 const CouplingGraph &hw);

} // namespace tetris

#endif // TETRIS_BASELINES_MAX_CANCEL_HH
