/**
 * @file
 * The max-cancel baseline and the PCOAST proxy.
 *
 * max-cancel fixes the logical circuit to a single leaf tree per
 * block, achieving the maximum structural two-qubit cancellation the
 * Pauli grouping admits (Observation 2 / Fig. 2 upper bound), then
 * transpiles with a router -- trading a flood of SWAPs for the
 * cancellation. The PCOAST proxy is the same hardware-oblivious
 * logical optimization followed by greedy routing, modeling PCOAST's
 * profile of excellent logical counts but heavy SWAP overhead
 * (Fig. 15b). See DESIGN.md "Substitutions".
 */

#ifndef TETRIS_BASELINES_MAX_CANCEL_HH
#define TETRIS_BASELINES_MAX_CANCEL_HH

#include <vector>

#include "circuit/circuit.hh"
#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/**
 * The max-cancel logical circuit: per block, a single leaf chain
 * over the common qubits emitted once at the block boundary, the
 * root chain re-emitted per string. `logical_cx` (optional) receives
 * the emitted CNOT count.
 */
Circuit synthesizeMaxCancelLogical(const std::vector<PauliBlock> &blocks,
                                   size_t *logical_cx = nullptr);

/** Knobs of the max-cancel pipeline. */
struct MaxCancelOptions
{
    /**
     * Route onto the device (SABRE-lite) and peephole the physical
     * circuit. When false the logical circuit is kept -- the
     * hardware-oblivious cancellation bound of Fig. 17.
     */
    bool route = true;
    /** Peephole the logical circuit before (or instead of) routing. */
    bool logicalPeephole = false;
};

/** max-cancel + router + peephole for a device. */
CompileResult compileMaxCancel(const std::vector<PauliBlock> &blocks,
                               const CouplingGraph &hw,
                               const MaxCancelOptions &opts
                               = MaxCancelOptions());

/** PCOAST proxy: logical peephole optimization + greedy routing. */
CompileResult compilePcoastProxy(const std::vector<PauliBlock> &blocks,
                                 const CouplingGraph &hw);

} // namespace tetris

#endif // TETRIS_BASELINES_MAX_CANCEL_HH
