/**
 * @file
 * 2QAN proxy baseline for QAOA (Lao & Browne, ISCA'22).
 *
 * Models 2QAN's defining optimizations for 2-local Hamiltonian
 * simulation kernels: gates commute so they are drained greedily
 * whenever adjacent, SWAPs are chosen by steepest descent on the
 * total remaining gate distance, and a SWAP whose qubit pair also
 * has a pending ZZ gate is merged with it into a 3-CNOT block
 * (SWAP + ZZ = CX RZ CX CX). See DESIGN.md "Substitutions".
 */

#ifndef TETRIS_BASELINES_QAOA_2QAN_HH
#define TETRIS_BASELINES_QAOA_2QAN_HH

#include <vector>

#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Compile 1-/2-local Z blocks with the 2QAN-proxy pipeline. */
CompileResult compile2qanProxy(const std::vector<PauliBlock> &blocks,
                               const CouplingGraph &hw);

} // namespace tetris

#endif // TETRIS_BASELINES_QAOA_2QAN_HH
