#include "baselines/paulihedral.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "core/synthesis.hh"

namespace tetris
{

CompileResult
compilePaulihedral(const std::vector<PauliBlock> &blocks,
                   const CouplingGraph &hw, const PaulihedralOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();

    const int num_logical = blocksNumQubits(blocks);
    Layout layout(num_logical, hw.numQubits());
    Circuit circ(hw.numQubits());

    SynthesisOptions synth_opts;
    synth_opts.enableBridging = false; // PH uses SWAPs only.
    BlockSynthesizer synth(hw, synth_opts);
    SynthStats synth_stats;

    // Lexicographic block order keeps similar strings adjacent.
    std::vector<std::string> keys(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
        for (const auto &s : blocks[i].strings())
            keys[i] += s.toText();
    }
    std::vector<size_t> order(blocks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return keys[a] < keys[b];
    });

    CompileResult result;
    result.blockOrder.reserve(order.size());
    auto t_sched = std::chrono::steady_clock::now();
    for (size_t idx : order) {
        const PauliBlock &b = blocks[idx];
        for (size_t i = 0; i < b.size(); ++i) {
            synth.synthesizeString(b.string(i), b.weight(i) * b.theta(),
                                   layout, circ, synth_stats);
        }
        result.blockOrder.push_back(idx);
    }

    auto t_synth = std::chrono::steady_clock::now();
    if (opts.runPeephole)
        circ = peepholeOptimize(circ);

    auto t1 = std::chrono::steady_clock::now();

    result.circuit = std::move(circ);
    result.finalLayout = layout;
    finalizeStats(result.circuit, naiveCnotCount(blocks),
                  std::chrono::duration<double>(t1 - t0).count(),
                  synth_stats, result.stats);
    result.stats.scheduleSeconds =
        std::chrono::duration<double>(t_sched - t0).count();
    result.stats.synthSeconds =
        std::chrono::duration<double>(t_synth - t_sched).count();
    result.stats.peepholeSeconds =
        std::chrono::duration<double>(t1 - t_synth).count();
    return result;
}

} // namespace tetris
