/**
 * @file
 * Paulihedral baseline (Li et al., ASPLOS'22) reimplementation.
 *
 * Blocks are scheduled in lexicographic order (which places similar
 * strings adjacently and guarantees the 1Q-gate cancellation the
 * original paper emphasizes); every string is synthesized
 * individually by growing a BFS tree from the largest connected
 * component of its active qubits under the live mapping
 * (SWAP-centric synthesis). Gate cancellation is then left to the
 * peephole ("Qiskit O3") pass, exactly as PH leaves it to Qiskit.
 */

#ifndef TETRIS_BASELINES_PAULIHEDRAL_HH
#define TETRIS_BASELINES_PAULIHEDRAL_HH

#include <vector>

#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Paulihedral knobs. */
struct PaulihedralOptions
{
    /** Run the peephole pass afterwards (Fig. 16 ablation). */
    bool runPeephole = true;
};

/** Compile with the Paulihedral pipeline. */
CompileResult compilePaulihedral(const std::vector<PauliBlock> &blocks,
                                 const CouplingGraph &hw,
                                 const PaulihedralOptions &opts
                                 = PaulihedralOptions());

} // namespace tetris

#endif // TETRIS_BASELINES_PAULIHEDRAL_HH
