#include "baselines/max_cancel.hh"

#include <chrono>

#include "baselines/naive.hh"
#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/logging.hh"
#include "core/tetris_ir.hh"
#include "router/router.hh"

namespace tetris
{

namespace
{

void
basisEnterLogical(Circuit &circ, int q, PauliOp op)
{
    if (op == PauliOp::X) {
        circ.h(q);
    } else if (op == PauliOp::Y) {
        circ.sdg(q);
        circ.h(q);
    }
}

void
basisExitLogical(Circuit &circ, int q, PauliOp op)
{
    if (op == PauliOp::X) {
        circ.h(q);
    } else if (op == PauliOp::Y) {
        circ.h(q);
        circ.s(q);
    }
}

} // namespace

Circuit
synthesizeMaxCancelLogical(const std::vector<PauliBlock> &blocks,
                           size_t *logical_cx)
{
    Circuit circ(blocksNumQubits(blocks));
    size_t cx = 0;

    for (const auto &input_block : blocks) {
        // Use the same consecutive-similarity string order as Tetris
        // so this stays a true cancellation upper bound.
        PauliBlock b = reorderForConsecutiveSimilarity(input_block);
        TetrisBlock tb(b);
        if (tb.rootSet().empty() || tb.numStrings() < 2 ||
            !tb.hasUniformRootSupport()) {
            for (size_t i = 0; i < b.size(); ++i) {
                size_t before = circ.cnotCount();
                emitChainString(circ, b.string(i),
                                b.weight(i) * b.theta());
                cx += circ.cnotCount() - before;
            }
            continue;
        }

        // Single leaf chain l0 -> l1 -> ... -> root chain.
        const auto &leaves = tb.leafSet();
        const auto &roots = tb.rootSet();
        const bool has_leaves = !leaves.empty();

        // Prologue: leaf basis + internal chain CNOTs.
        for (size_t q : leaves)
            basisEnterLogical(circ, static_cast<int>(q), tb.leafOp(q));
        for (size_t i = 0; i + 1 < leaves.size(); ++i) {
            circ.cx(static_cast<int>(leaves[i]),
                    static_cast<int>(leaves[i + 1]));
            ++cx;
        }

        for (size_t si = 0; si < b.size(); ++si) {
            const PauliString &s = b.string(si);
            for (size_t q : roots)
                basisEnterLogical(circ, static_cast<int>(q), s.op(q));
            // Connector from the leaf-chain top into the root chain.
            if (has_leaves) {
                circ.cx(static_cast<int>(leaves.back()),
                        static_cast<int>(roots.front()));
                ++cx;
            }
            for (size_t i = 0; i + 1 < roots.size(); ++i) {
                circ.cx(static_cast<int>(roots[i]),
                        static_cast<int>(roots[i + 1]));
                ++cx;
            }
            circ.rz(static_cast<int>(roots.back()),
                    b.weight(si) * b.theta());
            for (size_t i = roots.size() - 1; i >= 1; --i) {
                circ.cx(static_cast<int>(roots[i - 1]),
                        static_cast<int>(roots[i]));
                ++cx;
            }
            if (has_leaves) {
                circ.cx(static_cast<int>(leaves.back()),
                        static_cast<int>(roots.front()));
                ++cx;
            }
            for (size_t q : roots)
                basisExitLogical(circ, static_cast<int>(q), s.op(q));
        }

        // Epilogue: mirror the leaf chain.
        for (size_t i = has_leaves ? leaves.size() - 1 : 0; i >= 1; --i) {
            circ.cx(static_cast<int>(leaves[i - 1]),
                    static_cast<int>(leaves[i]));
            ++cx;
        }
        for (size_t q : leaves)
            basisExitLogical(circ, static_cast<int>(q), tb.leafOp(q));
    }

    if (logical_cx)
        *logical_cx = cx;
    return circ;
}

namespace
{

CompileResult
routeLogicalPipeline(const std::vector<PauliBlock> &blocks,
                     const CouplingGraph &hw, bool logical_peephole,
                     bool route, RouterKind router)
{
    auto t0 = std::chrono::steady_clock::now();

    Circuit logical = synthesizeMaxCancelLogical(blocks);
    if (logical_peephole)
        logical = peepholeOptimize(logical);

    CompileResult result;
    SynthStats synth;
    // Only routing needs the device (routeCircuit checks it fits);
    // the unrouted bound is hardware-oblivious.
    if (route) {
        RouteResult routed = routeCircuit(logical, hw, router);
        synth.insertedSwaps = routed.insertedSwaps;
        result.finalLayout = routed.finalLayout;
        result.circuit = peepholeOptimize(routed.physical);
    } else {
        result.circuit = std::move(logical);
    }

    auto t1 = std::chrono::steady_clock::now();
    finalizeStats(result.circuit, naiveCnotCount(blocks),
                  std::chrono::duration<double>(t1 - t0).count(), synth,
                  result.stats);
    return result;
}

} // namespace

CompileResult
compileMaxCancel(const std::vector<PauliBlock> &blocks,
                 const CouplingGraph &hw, const MaxCancelOptions &opts)
{
    return routeLogicalPipeline(blocks, hw, opts.logicalPeephole,
                                opts.route, RouterKind::SabreLite);
}

CompileResult
compilePcoastProxy(const std::vector<PauliBlock> &blocks,
                   const CouplingGraph &hw)
{
    return routeLogicalPipeline(blocks, hw, /*logical_peephole=*/true,
                                /*route=*/true, RouterKind::Greedy);
}

} // namespace tetris
