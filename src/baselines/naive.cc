#include "baselines/naive.hh"

#include <chrono>

#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/logging.hh"
#include "router/router.hh"

namespace tetris
{

namespace
{

void
chainBasisEnter(Circuit &circ, int q, PauliOp op)
{
    if (op == PauliOp::X) {
        circ.h(q);
    } else if (op == PauliOp::Y) {
        circ.sdg(q);
        circ.h(q);
    }
}

void
chainBasisExit(Circuit &circ, int q, PauliOp op)
{
    if (op == PauliOp::X) {
        circ.h(q);
    } else if (op == PauliOp::Y) {
        circ.h(q);
        circ.s(q);
    }
}

} // namespace

void
emitChainString(Circuit &circ, const PauliString &s, double angle)
{
    std::vector<size_t> active = s.support();
    if (active.empty())
        return;
    for (size_t q : active)
        chainBasisEnter(circ, static_cast<int>(q), s.op(q));
    for (size_t i = 0; i + 1 < active.size(); ++i) {
        circ.cx(static_cast<int>(active[i]),
                static_cast<int>(active[i + 1]));
    }
    circ.rz(static_cast<int>(active.back()), angle);
    for (size_t i = active.size() - 1; i >= 1; --i) {
        circ.cx(static_cast<int>(active[i - 1]),
                static_cast<int>(active[i]));
    }
    for (size_t q : active)
        chainBasisExit(circ, static_cast<int>(q), s.op(q));
}

Circuit
synthesizeNaiveLogical(const std::vector<PauliBlock> &blocks)
{
    Circuit circ(blocksNumQubits(blocks));
    for (const auto &b : blocks) {
        for (size_t i = 0; i < b.size(); ++i)
            emitChainString(circ, b.string(i), b.weight(i) * b.theta());
    }
    return circ;
}

CompileResult
compileNaive(const std::vector<PauliBlock> &blocks,
             const CouplingGraph &hw, const NaiveOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();

    Circuit circ = synthesizeNaiveLogical(blocks);

    CompileResult result;
    SynthStats synth;
    // Only routing needs the device (routeCircuit checks it fits);
    // the unrouted bound is hardware-oblivious.
    if (opts.route) {
        RouteResult routed = routeCircuit(circ, hw, RouterKind::SabreLite);
        synth.insertedSwaps = routed.insertedSwaps;
        result.finalLayout = routed.finalLayout;
        result.circuit = std::move(routed.physical);
    } else {
        result.circuit = std::move(circ);
    }

    auto t1 = std::chrono::steady_clock::now();
    finalizeStats(result.circuit, naiveCnotCount(blocks),
                  std::chrono::duration<double>(t1 - t0).count(), synth,
                  result.stats);
    return result;
}

CompileResult
compileTketProxy(const std::vector<PauliBlock> &blocks,
                 const CouplingGraph &hw, TketFlavor flavor)
{
    auto t0 = std::chrono::steady_clock::now();

    Circuit logical = synthesizeNaiveLogical(blocks);
    logical = peepholeOptimize(logical);

    RouterKind router = flavor == TketFlavor::O2 ? RouterKind::SabreLite
                                                 : RouterKind::Greedy;
    RouteResult routed = routeCircuit(logical, hw, router);
    Circuit physical = peepholeOptimize(routed.physical);

    auto t1 = std::chrono::steady_clock::now();

    CompileResult result;
    result.circuit = std::move(physical);
    result.finalLayout = routed.finalLayout;
    SynthStats synth;
    synth.insertedSwaps = routed.insertedSwaps;
    finalizeStats(result.circuit, naiveCnotCount(blocks),
                  std::chrono::duration<double>(t1 - t0).count(), synth,
                  result.stats);
    return result;
}

} // namespace tetris
