/**
 * @file
 * Naive chain synthesis and the T|Ket> proxy baseline.
 *
 * The naive logical synthesis lowers each Pauli string independently
 * to a CNOT chain over its active qubits (the "original circuit" of
 * the paper's Table I and gate-cancellation-ratio denominators). The
 * T|Ket> proxy models a general-purpose compiler that is blind to
 * inter-string structure: naive synthesis, peephole, then SABRE-lite
 * (O2 flavor) or greedy (O3 flavor) routing. See DESIGN.md
 * "Substitutions".
 */

#ifndef TETRIS_BASELINES_NAIVE_HH
#define TETRIS_BASELINES_NAIVE_HH

#include <vector>

#include "circuit/circuit.hh"
#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Append exp(-i angle/2 P) as an ascending-order CNOT chain. */
void emitChainString(Circuit &circ, const PauliString &s, double angle);

/** The naive logical circuit: every string as an independent chain. */
Circuit synthesizeNaiveLogical(const std::vector<PauliBlock> &blocks);

/** Knobs of the naive pipeline. */
struct NaiveOptions
{
    /**
     * Map the chain circuit onto the device (SABRE-lite). When false
     * the logical circuit is returned untouched -- no SWAPs, no
     * peephole -- which is exactly the paper's "original circuit"
     * accounting (Table I): cnotCount == naiveCnotCount(blocks).
     */
    bool route = true;
};

/**
 * The naive pipeline: per-string chain synthesis with no gate
 * cancellation anywhere, optionally routed. The lower bound every
 * cancellation ratio is measured against.
 */
CompileResult compileNaive(const std::vector<PauliBlock> &blocks,
                           const CouplingGraph &hw,
                           const NaiveOptions &opts = NaiveOptions());

/** Routing flavors of the T|Ket> proxy (Fig. 15a). */
enum class TketFlavor
{
    /** T|Ket> + T|Ket> O2: lookahead routing. */
    O2,
    /** T|Ket> + Qiskit O3: greedy routing. */
    QiskitO3,
};

/** Compile with the T|Ket> proxy pipeline. */
CompileResult compileTketProxy(const std::vector<PauliBlock> &blocks,
                               const CouplingGraph &hw,
                               TketFlavor flavor = TketFlavor::O2);

} // namespace tetris

#endif // TETRIS_BASELINES_NAIVE_HH
