#include "baselines/qaoa_2qan.hh"

#include <chrono>
#include <limits>

#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/logging.hh"

namespace tetris
{

namespace
{

struct PendingGate
{
    int u;
    int v; // -1 for single-qubit Z rotations
    double angle;
};

} // namespace

CompileResult
compile2qanProxy(const std::vector<PauliBlock> &blocks,
                 const CouplingGraph &hw)
{
    auto t0 = std::chrono::steady_clock::now();

    const int num_logical = blocksNumQubits(blocks);
    TETRIS_ASSERT(num_logical <= hw.numQubits());

    std::vector<PendingGate> pending;
    for (const auto &b : blocks) {
        TETRIS_ASSERT(b.size() == 1, "2QAN expects single-string blocks");
        const PauliString &s = b.string(0);
        auto support = s.support();
        TETRIS_ASSERT(support.size() >= 1 && support.size() <= 2,
                      "2QAN expects 1- or 2-local strings");
        double angle = b.weight(0) * b.theta();
        if (support.size() == 1) {
            pending.push_back({static_cast<int>(support[0]), -1, angle});
        } else {
            pending.push_back({static_cast<int>(support[0]),
                               static_cast<int>(support[1]), angle});
        }
    }

    Layout layout(num_logical, hw.numQubits());
    Circuit circ(hw.numQubits());
    SynthStats synth_stats;

    auto gate_distance = [&](const PendingGate &g) {
        if (g.v < 0)
            return 0;
        return hw.distance(layout.physOf(g.u), layout.physOf(g.v));
    };

    auto emit_gate = [&](const PendingGate &g) {
        if (g.v < 0) {
            circ.rz(layout.physOf(g.u), g.angle);
            return;
        }
        int pu = layout.physOf(g.u);
        int pv = layout.physOf(g.v);
        circ.cx(pu, pv);
        circ.rz(pv, g.angle);
        circ.cx(pu, pv);
        synth_stats.emittedCx += 2;
    };

    while (!pending.empty()) {
        // Drain commuting gates that are currently adjacent.
        bool drained = true;
        while (drained) {
            drained = false;
            for (size_t i = 0; i < pending.size();) {
                if (gate_distance(pending[i]) <= 1) {
                    emit_gate(pending[i]);
                    pending.erase(pending.begin() + i);
                    drained = true;
                } else {
                    ++i;
                }
            }
        }
        if (pending.empty())
            break;

        // Steepest-descent SWAP over edges incident to pending gate
        // qubits; ties favor progress on the closest gate.
        std::vector<bool> active_pos(hw.numQubits(), false);
        for (const auto &g : pending) {
            active_pos[layout.physOf(g.u)] = true;
            if (g.v >= 0)
                active_pos[layout.physOf(g.v)] = true;
        }

        long best_after = std::numeric_limits<long>::max();
        std::pair<int, int> best_swap{-1, -1};
        for (const auto &[a, b] : hw.edges()) {
            if (!active_pos[a] && !active_pos[b])
                continue;
            long after = 0;
            for (const auto &g : pending) {
                if (g.v < 0)
                    continue;
                int x = layout.physOf(g.u);
                int y = layout.physOf(g.v);
                int xs = x == a ? b : (x == b ? a : x);
                int ys = y == a ? b : (y == b ? a : y);
                after += hw.distance(xs, ys);
            }
            if (after < best_after) {
                best_after = after;
                best_swap = {a, b};
            }
        }
        TETRIS_ASSERT(best_swap.first >= 0);

        long current_total = 0;
        for (const auto &g : pending)
            current_total += gate_distance(g);
        if (best_after >= current_total) {
            // Steepest descent stalled; route the closest gate fully
            // so the next drain phase makes progress.
            size_t front = 0;
            for (size_t i = 1; i < pending.size(); ++i) {
                if (gate_distance(pending[i]) <
                    gate_distance(pending[front])) {
                    front = i;
                }
            }
            std::vector<int> path =
                hw.shortestPath(layout.physOf(pending[front].u),
                                layout.physOf(pending[front].v));
            for (size_t k = 1; k + 1 < path.size(); ++k) {
                circ.swap(path[k - 1], path[k]);
                layout.applySwap(path[k - 1], path[k]);
                ++synth_stats.insertedSwaps;
            }
            continue;
        }

        // SWAP absorption: if the swapped pair also carries a
        // pending ZZ gate, merge SWAP + ZZ into 3 CNOTs.
        int lu = layout.logicalAt(best_swap.first);
        int lv = layout.logicalAt(best_swap.second);
        size_t absorb = pending.size();
        for (size_t i = 0; i < pending.size(); ++i) {
            const auto &g = pending[i];
            if (g.v < 0)
                continue;
            if ((g.u == lu && g.v == lv) || (g.u == lv && g.v == lu)) {
                absorb = i;
                break;
            }
        }
        if (absorb < pending.size()) {
            int a = best_swap.first, b = best_swap.second;
            circ.cx(a, b);
            circ.rz(b, pending[absorb].angle);
            circ.cx(b, a);
            circ.cx(a, b);
            synth_stats.emittedCx += 3;
            pending.erase(pending.begin() + absorb);
        } else {
            circ.swap(best_swap.first, best_swap.second);
            ++synth_stats.insertedSwaps;
        }
        layout.applySwap(best_swap.first, best_swap.second);
    }

    circ = peepholeOptimize(circ);

    auto t1 = std::chrono::steady_clock::now();

    CompileResult result;
    result.circuit = std::move(circ);
    result.finalLayout = layout;
    finalizeStats(result.circuit, naiveCnotCount(blocks),
                  std::chrono::duration<double>(t1 - t0).count(),
                  synth_stats, result.stats);
    return result;
}

} // namespace tetris
