#include "router/router.hh"

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace tetris
{

namespace
{

/** Indices of the next `window` two-qubit gates starting at `from`. */
std::vector<size_t>
upcomingTwoQubitGates(const Circuit &logical, size_t from, int window)
{
    std::vector<size_t> out;
    const auto &gates = logical.gates();
    for (size_t i = from; i < gates.size() &&
                          out.size() < static_cast<size_t>(window);
         ++i) {
        if (gates[i].isTwoQubit())
            out.push_back(i);
    }
    return out;
}

} // namespace

RouteResult
routeCircuit(const Circuit &logical, const CouplingGraph &hw,
             RouterKind kind, int lookahead_window)
{
    const int num_logical = logical.numQubits();
    TETRIS_ASSERT(num_logical <= hw.numQubits(),
                  "circuit wider than the device");

    RouteResult result;
    result.physical = Circuit(hw.numQubits());
    Layout layout(num_logical, hw.numQubits());

    const auto &gates = logical.gates();
    for (size_t gi = 0; gi < gates.size(); ++gi) {
        const Gate &g = gates[gi];
        if (!g.isTwoQubit()) {
            Gate out = g;
            out.q0 = layout.physOf(g.q0);
            result.physical.add(out);
            continue;
        }

        while (hw.distance(layout.physOf(g.q0), layout.physOf(g.q1)) >
               1) {
            int pu = layout.physOf(g.q0);
            int pv = layout.physOf(g.q1);
            std::pair<int, int> chosen{-1, -1};

            if (kind == RouterKind::Greedy) {
                std::vector<int> path = hw.shortestPath(pu, pv);
                chosen = {path[0], path[1]};
            } else {
                // SabreLite: score candidate swaps by the decayed sum
                // of post-swap distances over the lookahead window;
                // require progress on the front gate to terminate.
                auto window =
                    upcomingTwoQubitGates(logical, gi, lookahead_window);
                double best_score =
                    std::numeric_limits<double>::infinity();
                auto eval = [&](int a, int b) {
                    int fu = pu == a ? b : (pu == b ? a : pu);
                    int fv = pv == a ? b : (pv == b ? a : pv);
                    if (hw.distance(fu, fv) >= hw.distance(pu, pv))
                        return; // must make progress on the front gate
                    double score = 0.0;
                    double decay = 1.0;
                    for (size_t wi : window) {
                        int x = layout.physOf(gates[wi].q0);
                        int y = layout.physOf(gates[wi].q1);
                        int xs = x == a ? b : (x == b ? a : x);
                        int ys = y == a ? b : (y == b ? a : y);
                        score += decay * hw.distance(xs, ys);
                        decay *= 0.8;
                    }
                    if (score < best_score) {
                        best_score = score;
                        chosen = {a, b};
                    }
                };
                for (int nb : hw.neighbors(pu))
                    eval(pu, nb);
                for (int nb : hw.neighbors(pv))
                    eval(pv, nb);
                if (chosen.first < 0) {
                    std::vector<int> path = hw.shortestPath(pu, pv);
                    chosen = {path[0], path[1]};
                }
            }

            result.physical.swap(chosen.first, chosen.second);
            layout.applySwap(chosen.first, chosen.second);
            ++result.insertedSwaps;
        }

        Gate out = g;
        out.q0 = layout.physOf(g.q0);
        out.q1 = layout.physOf(g.q1);
        result.physical.add(out);
    }

    result.finalLayout = layout;
    return result;
}

} // namespace tetris
