/**
 * @file
 * SWAP-insertion routers for logically synthesized circuits.
 *
 * The Tetris pipeline routes during synthesis; these routers serve
 * the baselines that synthesize hardware-obliviously and transpile
 * afterwards (max-cancel, the PCOAST proxy, the T|Ket> proxy):
 *  - Greedy: route each two-qubit gate along a shortest path when it
 *    becomes blocked (Qiskit BasicSwap-style).
 *  - SabreLite: pick SWAPs scoring a decaying lookahead window of
 *    upcoming two-qubit gates (SABRE-style heuristic).
 */

#ifndef TETRIS_ROUTER_ROUTER_HH
#define TETRIS_ROUTER_ROUTER_HH

#include "circuit/circuit.hh"
#include "hardware/coupling_graph.hh"
#include "hardware/layout.hh"

namespace tetris
{

/** Routing strategies. */
enum class RouterKind
{
    Greedy,
    SabreLite,
};

/** Routing output: physical circuit + bookkeeping. */
struct RouteResult
{
    Circuit physical;
    Layout finalLayout;
    size_t insertedSwaps = 0;
};

/**
 * Insert SWAPs so every two-qubit gate of `logical` acts on coupled
 * physical qubits. Starts from the identity layout; gate order is
 * preserved.
 */
RouteResult routeCircuit(const Circuit &logical, const CouplingGraph &hw,
                         RouterKind kind = RouterKind::Greedy,
                         int lookahead_window = 20);

} // namespace tetris

#endif // TETRIS_ROUTER_ROUTER_HH
