#include "serve/frame.hh"

#include <cmath>
#include <sstream>

#include "common/hash.hh"
#include "core/pipeline.hh"
#include "core/pipeline_adapters.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_string.hh"

namespace tetris::serve
{

namespace
{

using serialize::BinaryReader;
using serialize::BinaryWriter;
using serialize::ByteSpan;

// Structural caps on a submit payload. Far above any real workload
// (the paper's largest device is 65 qubits, its largest program ~2k
// blocks) yet small enough that a hostile count can never drive an
// allocation the length prefix didn't already pay for.
constexpr uint64_t kMaxWireQubits = 4096;
constexpr uint64_t kMaxWireEdges = uint64_t{1} << 20;
constexpr uint64_t kMaxWireBlocks = uint64_t{1} << 20;
constexpr uint64_t kMaxWireStrings = uint64_t{1} << 20;

/** Bounded-count gate, same idea as the artifact codec's countOk:
 *  every element of a count costs >= 1 payload byte, so a count
 *  beyond remaining() is structurally impossible. */
bool
wireCountOk(BinaryReader &r, uint64_t n, uint64_t cap)
{
    if (n > cap || n > r.remaining()) {
        r.fail();
        return false;
    }
    return true;
}

bool
failDecode(std::string &err, const char *what)
{
    err = what;
    return false;
}

} // namespace

bool
frameTypeKnown(uint32_t raw)
{
    return raw >= static_cast<uint32_t>(FrameType::Submit) &&
           raw <= static_cast<uint32_t>(FrameType::StatsText);
}

void
encodeFrameHeader(BinaryWriter &w, FrameType type, uint64_t payload_len)
{
    w.u32(kFrameMagic);
    w.u32(kProtocolVersion);
    w.u32(static_cast<uint32_t>(type));
    w.u64(payload_len);
}

bool
decodeFrameHeader(ByteSpan bytes, FrameHeader &out)
{
    if (bytes.size() < kFrameHeaderBytes)
        return false;
    BinaryReader r(bytes);
    out.magic = r.u32();
    out.version = r.u32();
    out.type = r.u32();
    out.payloadLen = r.u64();
    return r.ok();
}

uint64_t
frameChecksum(ByteSpan payload)
{
    return fnvMixBytes(kFnvOffset, payload.data(), payload.size());
}

std::string
encodeFrame(FrameType type, ByteSpan payload)
{
    BinaryWriter w;
    encodeFrameHeader(w, type, payload.size());
    w.bytes(payload.data(), payload.size());
    w.u64(frameChecksum(payload));
    return w.data();
}

// ---- submit payload ------------------------------------------------

std::string
encodeSubmit(const SubmitRequest &req)
{
    BinaryWriter w;
    w.str(req.name);
    w.str(req.pipelineId);
    w.i32(req.numQubits);
    w.str(req.hwName);
    w.u64(req.edges.size());
    for (const auto &[a, b] : req.edges) {
        w.i32(a);
        w.i32(b);
    }
    w.u64(req.blocks.size());
    for (const auto &b : req.blocks) {
        w.f64(b.theta);
        w.u64(b.strings.size());
        for (const auto &[text, weight] : b.strings) {
            w.str(text);
            w.f64(weight);
        }
    }
    w.u64(req.initialLayout.size());
    for (int p : req.initialLayout)
        w.i32(p);
    return w.data();
}

bool
decodeSubmit(ByteSpan payload, SubmitRequest &out, std::string &err)
{
    out = SubmitRequest();
    BinaryReader r(payload);
    out.name = r.str();
    out.pipelineId = r.str();
    out.numQubits = r.i32();
    out.hwName = r.str();
    if (!r.ok())
        return failDecode(err, "truncated submit header");
    if (out.numQubits < 1 ||
        static_cast<uint64_t>(out.numQubits) > kMaxWireQubits)
        return failDecode(err, "numQubits out of range");

    const uint64_t num_edges = r.u64();
    if (!r.ok() || !wireCountOk(r, num_edges, kMaxWireEdges))
        return failDecode(err, "edge count out of range");
    out.edges.reserve(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
        int a = r.i32();
        int b = r.i32();
        if (!r.ok())
            return failDecode(err, "truncated edge list");
        if (a < 0 || b < 0 || a >= out.numQubits ||
            b >= out.numQubits || a == b)
            return failDecode(err, "edge endpoint out of range");
        out.edges.emplace_back(a, b);
    }

    const uint64_t num_blocks = r.u64();
    if (!r.ok() || num_blocks == 0 ||
        !wireCountOk(r, num_blocks, kMaxWireBlocks))
        return failDecode(err, "block count out of range");
    out.blocks.reserve(num_blocks);
    for (uint64_t i = 0; i < num_blocks; ++i) {
        SubmitRequest::Block block;
        block.theta = r.f64();
        if (!r.ok() || !std::isfinite(block.theta))
            return failDecode(err, "block theta not finite");
        const uint64_t num_strings = r.u64();
        if (!r.ok() || num_strings == 0 ||
            !wireCountOk(r, num_strings, kMaxWireStrings))
            return failDecode(err, "string count out of range");
        block.strings.reserve(num_strings);
        for (uint64_t s = 0; s < num_strings; ++s) {
            std::string text = r.str();
            double weight = r.f64();
            if (!r.ok())
                return failDecode(err, "truncated Pauli string");
            if (text.size() != static_cast<size_t>(out.numQubits))
                return failDecode(err,
                                  "Pauli string width != numQubits");
            for (char c : text) {
                if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z')
                    return failDecode(
                        err, "Pauli string has a char outside IXYZ");
            }
            if (!std::isfinite(weight))
                return failDecode(err, "string weight not finite");
            block.strings.emplace_back(std::move(text), weight);
        }
        out.blocks.push_back(std::move(block));
    }

    const uint64_t layout_len = r.u64();
    if (!r.ok() ||
        (layout_len != 0 &&
         layout_len != static_cast<uint64_t>(out.numQubits)))
        return failDecode(err, "initialLayout length must be 0 or "
                               "numQubits");
    std::vector<bool> seen(static_cast<size_t>(out.numQubits), false);
    out.initialLayout.reserve(layout_len);
    for (uint64_t i = 0; i < layout_len; ++i) {
        int p = r.i32();
        if (!r.ok())
            return failDecode(err, "truncated initialLayout");
        if (p < 0 || p >= out.numQubits)
            return failDecode(err, "initialLayout entry out of range");
        if (seen[static_cast<size_t>(p)])
            return failDecode(err, "initialLayout repeats a qubit");
        seen[static_cast<size_t>(p)] = true;
        out.initialLayout.push_back(p);
    }
    if (!r.atEnd())
        return failDecode(err, "trailing bytes after submit body");
    return true;
}

bool
submitToJob(const SubmitRequest &req, CompileJob &job, std::string &err)
{
    if (!req.initialLayout.empty()) {
        // A seed placement is a TetrisOptions knob, so it can only
        // ride on the tetris pipeline; the registry's other stacks
        // have no notion of a starting layout.
        if (!req.pipelineId.empty() && req.pipelineId != "tetris") {
            err = "initialLayout requires the tetris pipeline, got: " +
                  req.pipelineId;
            return false;
        }
        TetrisOptions opts;
        opts.initialLayout = req.initialLayout;
        job.pipeline = makeTetrisPipeline(std::move(opts));
    } else if (req.pipelineId.empty()) {
        job.pipeline = defaultPipeline();
    } else if (PipelineRegistry::instance().contains(req.pipelineId)) {
        job.pipeline = PipelineRegistry::instance().create(req.pipelineId);
    } else {
        err = "unknown pipeline id: " + req.pipelineId;
        return false;
    }

    // decodeSubmit bounded every index, so the asserting constructors
    // below only ever see structurally valid data.
    auto hw = std::make_shared<CouplingGraph>(
        req.numQubits, req.edges,
        req.hwName.empty() ? "client" : req.hwName);
    if (!hw->isConnected()) {
        err = "device coupling graph is not connected";
        return false;
    }
    job.hw = std::move(hw);

    job.blocks.clear();
    job.blocks.reserve(req.blocks.size());
    for (const auto &b : req.blocks) {
        std::vector<PauliString> strings;
        std::vector<double> weights;
        strings.reserve(b.strings.size());
        weights.reserve(b.strings.size());
        for (const auto &[text, weight] : b.strings) {
            strings.push_back(PauliString::fromText(text));
            weights.push_back(weight);
        }
        job.blocks.emplace_back(std::move(strings), std::move(weights),
                                b.theta);
    }
    job.name = req.name.empty() ? "serve-job" : req.name;
    return true;
}

SubmitRequest
makeSubmitRequest(std::string name, std::string pipeline_id,
                  const std::vector<PauliBlock> &blocks,
                  const CouplingGraph &hw,
                  std::vector<int> initial_layout)
{
    SubmitRequest req;
    req.name = std::move(name);
    req.pipelineId = std::move(pipeline_id);
    req.initialLayout = std::move(initial_layout);
    req.numQubits = hw.numQubits();
    req.edges = hw.edges();
    req.hwName = hw.name();
    req.blocks.reserve(blocks.size());
    for (const PauliBlock &b : blocks) {
        SubmitRequest::Block wb;
        wb.theta = b.theta();
        wb.strings.reserve(b.size());
        for (size_t i = 0; i < b.size(); ++i)
            wb.strings.emplace_back(b.string(i).toText(),
                                    b.weight(i));
        req.blocks.push_back(std::move(wb));
    }
    return req;
}

// ---- result / error payloads ---------------------------------------

std::string
encodeResult(const ResultFrame &r)
{
    BinaryWriter w;
    w.u64(r.jobKey);
    w.u8(static_cast<uint8_t>(r.verify));
    w.f64(r.serverMs);
    w.str(r.artifact);
    return w.data();
}

bool
decodeResult(ByteSpan payload, ResultFrame &out)
{
    out = ResultFrame();
    BinaryReader r(payload);
    out.jobKey = r.u64();
    const uint8_t verify = r.u8();
    out.serverMs = r.f64();
    out.artifact = r.str();
    if (!r.ok() || !r.atEnd() ||
        verify > static_cast<uint8_t>(WireVerify::Skipped))
        return false;
    out.verify = static_cast<WireVerify>(verify);
    return true;
}

std::string
encodeError(const ErrorFrame &e)
{
    BinaryWriter w;
    w.str(e.code);
    w.str(e.detail);
    return w.data();
}

bool
decodeError(ByteSpan payload, ErrorFrame &out)
{
    out = ErrorFrame();
    BinaryReader r(payload);
    out.code = r.str();
    out.detail = r.str();
    return r.ok() && r.atEnd();
}

#if TETRIS_HAVE_SOCKETS

// ---- fd-level frame transport --------------------------------------

const char *
recvStatusName(RecvStatus s)
{
    switch (s) {
      case RecvStatus::Ok:          return "ok";
      case RecvStatus::Closed:      return "closed";
      case RecvStatus::Truncated:   return "truncated";
      case RecvStatus::BadMagic:    return "bad_magic";
      case RecvStatus::VersionSkew: return "version_skew";
      case RecvStatus::BadType:     return "bad_type";
      case RecvStatus::TooLarge:    return "frame_too_large";
      case RecvStatus::BadChecksum: return "bad_checksum";
    }
    return "unknown";
}

bool
sendFrame(int fd, FrameType type, ByteSpan payload)
{
    const std::string frame = encodeFrame(type, payload);
    return net::sendAll(fd, frame.data(), frame.size());
}

RecvStatus
recvFrame(int fd, uint64_t max_payload, FrameType &type,
          std::string &payload)
{
    // First byte separately: a clean EOF *between* frames is the
    // normal end of a conversation (Closed), not a protocol error.
    char head[kFrameHeaderBytes];
    ssize_t first = net::recvRetry(fd, head, 1, 0);
    if (first == 0)
        return RecvStatus::Closed;
    if (first < 0)
        return RecvStatus::Truncated;
    if (!net::recvAll(fd, head + 1, sizeof(head) - 1))
        return RecvStatus::Truncated;

    FrameHeader h;
    decodeFrameHeader(ByteSpan(head, sizeof(head)), h);
    if (h.magic != kFrameMagic)
        return RecvStatus::BadMagic;
    if (h.version != kProtocolVersion)
        return RecvStatus::VersionSkew;
    if (!frameTypeKnown(h.type))
        return RecvStatus::BadType;
    // Budget check before the allocation: an oversize (or hostile
    // 2^63) length prefix is rejected for free.
    if (h.payloadLen > max_payload)
        return RecvStatus::TooLarge;

    payload.resize(h.payloadLen);
    if (h.payloadLen != 0 &&
        !net::recvAll(fd, payload.data(), payload.size()))
        return RecvStatus::Truncated;

    char trailer[kFrameTrailerBytes];
    if (!net::recvAll(fd, trailer, sizeof(trailer)))
        return RecvStatus::Truncated;
    BinaryReader tr(ByteSpan(trailer, sizeof(trailer)));
    if (tr.u64() != frameChecksum(payload))
        return RecvStatus::BadChecksum;

    type = static_cast<FrameType>(h.type);
    return RecvStatus::Ok;
}

#endif // TETRIS_HAVE_SOCKETS

} // namespace tetris::serve
