/**
 * @file
 * Client side of the tetrisd frame protocol.
 *
 * One ServeClient is one connection speaking serve/frame.hh frames
 * synchronously: submit() writes a Submit frame and blocks for the
 * Result (decoding the embedded .tca artifact back into a
 * CompileResult) or an Error. Everything the bench/CLI/tests need —
 * including the raw fd, so the robustness suite can inject malformed
 * bytes through the same connection type real clients use.
 *
 * Not thread-safe: one connection, one requester (open more
 * connections for concurrency, as serve_stress does).
 */

#ifndef TETRIS_SERVE_CLIENT_HH
#define TETRIS_SERVE_CLIENT_HH

#include <memory>
#include <string>

#include "core/compiler.hh"
#include "serve/frame.hh"

namespace tetris::serve
{

#if TETRIS_HAVE_SOCKETS

class ServeClient
{
  public:
    /** Connect to a tetrisd TCP listener on localhost. */
    static std::unique_ptr<ServeClient> connectTcp(int port,
                                                   std::string &err);

    /** Connect to a tetrisd Unix-domain listener. */
    static std::unique_ptr<ServeClient> connectUnix(
        const std::string &path, std::string &err);

    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Outcome of one submit round-trip. */
    struct Response
    {
        /** True iff a Result frame arrived and its artifact decoded. */
        bool ok = false;
        /** Error frame contents (or transport diagnostic) when !ok. */
        std::string errorCode;
        std::string errorDetail;
        uint64_t jobKey = 0;
        WireVerify verify = WireVerify::NotRun;
        double serverMs = 0.0;
        CompileResult result;
    };

    /**
     * Round-trip one compile request. Returns false only on
     * transport death (connection unusable afterwards); a server-side
     * rejection returns true with out.ok == false and the error code.
     */
    bool submit(const SubmitRequest &req, Response &out);

    /** Liveness probe: Ping -> Pong. */
    bool ping();

    /** Fetch the server's /metrics-format stats text. */
    bool statsText(std::string &out);

    /** Raw connected fd (tests poke malformed bytes through it). */
    int fd() const { return fd_; }

  private:
    explicit ServeClient(int fd) : fd_(fd) {}

    int fd_ = -1;
};

#endif // TETRIS_HAVE_SOCKETS

} // namespace tetris::serve

#endif // TETRIS_SERVE_CLIENT_HH
