/**
 * @file
 * tetrisd wire protocol: length-prefixed frames over the .tca codec.
 *
 * Every message on a serve connection is one frame:
 *
 *   u32  magic       "TSP1"
 *   u32  version     kProtocolVersion (readers reject others)
 *   u32  type        FrameType
 *   u64  payloadLen  bytes of payload that follow
 *   ...  payload     type-specific, serialize/binary.hh encoding
 *   u64  checksum    FNV-1a over the payload bytes
 *
 * The payloads reuse the serialize/ layer end to end: submit bodies
 * are BinaryWriter records, and a Result frame's artifact field *is*
 * a complete `.tca` file image (serialize/artifact.hh) — the same
 * bytes the disk cache stores, so a client can persist the response
 * directly and the server never invents a second result encoding.
 *
 * Decoding is total, exactly like the artifact codec: truncation,
 * bit flips, version skew, oversize length prefixes, and malformed
 * payloads all surface as a typed error, never a throw, abort, or
 * unbounded allocation. The length prefix is validated against the
 * receiver's frame budget *before* any payload byte is read, so a
 * hostile 2^63 prefix costs nothing.
 *
 * The codec half of this header (encode/decode of headers and
 * payload structs) is platform-independent and fuzzable without a
 * socket; the fd-level sendFrame/recvFrame helpers are only
 * compiled where sockets exist (common/net.hh).
 */

#ifndef TETRIS_SERVE_FRAME_HH
#define TETRIS_SERVE_FRAME_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/net.hh"
#include "engine/engine.hh"
#include "serialize/binary.hh"

namespace tetris::serve
{

/** "TSP1" little-endian, deliberately distinct from .tca's "TCA1". */
inline constexpr uint32_t kFrameMagic = 0x31505354u;

/**
 * Bump on any frame-layout change; receivers reject other versions.
 * v2 added the Submit initialLayout field (streamed chunk chaining);
 * v1 peers get version_skew, never a misparse.
 */
inline constexpr uint32_t kProtocolVersion = 2;

/** magic + version + type + payloadLen. */
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 4 + 8;

/** Trailing FNV-1a checksum over the payload. */
inline constexpr size_t kFrameTrailerBytes = 8;

/** Default per-frame payload budget (TETRIS_SERVE_MAX_FRAME_MB). */
inline constexpr uint64_t kDefaultMaxFrameBytes = 64ull << 20;

enum class FrameType : uint32_t {
    Submit = 1,    ///< client -> server: compile this program
    Result = 2,    ///< server -> client: key + verify + .tca artifact
    Error = 3,     ///< server -> client: code + human detail
    Ping = 4,      ///< client -> server: liveness probe
    Pong = 5,      ///< server -> client: liveness answer
    Stats = 6,     ///< client -> server: request a stats snapshot
    StatsText = 7, ///< server -> client: /metrics-format text
};

/** True for the frame types a conforming peer may emit. */
bool frameTypeKnown(uint32_t raw);

struct FrameHeader
{
    uint32_t magic = 0;
    uint32_t version = 0;
    uint32_t type = 0;
    uint64_t payloadLen = 0;
};

/** Append the 20-byte header for `payload_len` bytes of `type`. */
void encodeFrameHeader(serialize::BinaryWriter &w, FrameType type,
                       uint64_t payload_len);

/**
 * Parse a header from exactly kFrameHeaderBytes bytes. Returns false
 * only on short input; magic/version/type validation is the caller's
 * (each failure mode wants a different error frame).
 */
bool decodeFrameHeader(serialize::ByteSpan bytes, FrameHeader &out);

/** FNV-1a over a payload, the frame trailer value. */
uint64_t frameChecksum(serialize::ByteSpan payload);

/** One complete frame image: header + payload + checksum. */
std::string encodeFrame(FrameType type, serialize::ByteSpan payload);

// ---- submit payload ------------------------------------------------

/**
 * A compile request as it travels the wire: everything Engine::jobKey
 * hashes, described in plain data so the server can validate it
 * before constructing the asserting in-memory types (PauliString,
 * CouplingGraph) from untrusted bytes.
 */
struct SubmitRequest
{
    /** Display name for metrics/event-log lines; may be empty. */
    std::string name;
    /** Registered pipeline id; empty selects the default pipeline. */
    std::string pipelineId;
    /** Device: qubit count, undirected edge list, display name. */
    int numQubits = 0;
    std::vector<std::pair<int, int>> edges;
    std::string hwName;
    struct Block
    {
        double theta = 0.0;
        /** (Pauli text over numQubits chars of IXYZ, weight). */
        std::vector<std::pair<std::string, double>> strings;
    };
    std::vector<Block> blocks;
    /**
     * Seed placement (protocol v2): logical qubit l starts on device
     * qubit initialLayout[l]. Empty = identity. When present it must
     * be a permutation of [0, numQubits) — the wire's one-width rule
     * makes the program exactly device wide — and the server compiles
     * with the seeded Tetris pipeline, which is how a streaming
     * client chains chunk N's final layout into chunk N+1.
     */
    std::vector<int> initialLayout;
};

std::string encodeSubmit(const SubmitRequest &req);

/**
 * Total decode of a submit payload: bounded counts, chars restricted
 * to IXYZ, edge endpoints in range and distinct, string widths equal
 * to numQubits. False + a diagnostic in `err` on anything else — the
 * output is then unspecified and must not be used.
 */
bool decodeSubmit(serialize::ByteSpan payload, SubmitRequest &out,
                  std::string &err);

/**
 * Validate a decoded request against this process (pipeline id
 * registered, device connected) and build the CompileJob. The
 * request's data has already passed decodeSubmit's structural
 * checks, so the asserting constructors are safe to run.
 */
bool submitToJob(const SubmitRequest &req, CompileJob &job,
                 std::string &err);

/**
 * The client-side inverse of submitToJob: flatten an in-memory
 * program + device into the wire request. Strings must be as wide as
 * the device (the protocol's one-width rule).
 */
SubmitRequest makeSubmitRequest(std::string name,
                                std::string pipeline_id,
                                const std::vector<PauliBlock> &blocks,
                                const CouplingGraph &hw,
                                std::vector<int> initial_layout = {});

// ---- result / error payloads ---------------------------------------

/** Verify verdict on the wire (u8). */
enum class WireVerify : uint8_t {
    NotRun = 0,
    Pass = 1,
    Fail = 2,
    Skipped = 3,
};

struct ResultFrame
{
    uint64_t jobKey = 0;
    WireVerify verify = WireVerify::NotRun;
    /** Submit-to-respond wall time on the server, milliseconds. */
    double serverMs = 0.0;
    /** Complete .tca image; decode with serialize::decodeArtifact. */
    std::string artifact;
};

std::string encodeResult(const ResultFrame &r);
bool decodeResult(serialize::ByteSpan payload, ResultFrame &out);

struct ErrorFrame
{
    /** Stable machine-readable code: bad_request, bad_frame,
     *  version_skew, frame_too_large, overloaded, draining,
     *  too_many_clients, compile_cancelled, internal. */
    std::string code;
    std::string detail;
};

std::string encodeError(const ErrorFrame &e);
bool decodeError(serialize::ByteSpan payload, ErrorFrame &out);

#if TETRIS_HAVE_SOCKETS

// ---- fd-level frame transport --------------------------------------

/** Why recvFrame did not produce a frame. */
enum class RecvStatus {
    Ok,
    Closed,       ///< clean EOF before any header byte
    Truncated,    ///< peer vanished mid-frame (or recv timeout)
    BadMagic,     ///< not a TSP1 stream
    VersionSkew,  ///< header version != kProtocolVersion
    BadType,      ///< unknown FrameType
    TooLarge,     ///< payloadLen over the receiver's budget
    BadChecksum,  ///< payload bytes corrupted in flight
};

const char *recvStatusName(RecvStatus s);

/** Write one complete frame; false if the peer went away. */
bool sendFrame(int fd, FrameType type, serialize::ByteSpan payload);

/**
 * Read one complete frame. The payload buffer is only allocated
 * after the length prefix passes the `max_payload` budget, so a
 * hostile prefix can never OOM the receiver. On any non-Ok status
 * the connection is unusable for further frames (framing is lost).
 */
RecvStatus recvFrame(int fd, uint64_t max_payload, FrameType &type,
                     std::string &payload);

#endif // TETRIS_HAVE_SOCKETS

} // namespace tetris::serve

#endif // TETRIS_SERVE_FRAME_HH
