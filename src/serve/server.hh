/**
 * @file
 * tetrisd: a resident compile service over one Engine.
 *
 * The daemon shape the ROADMAP's "millions of users" directions
 * assume: the thread pool, both cache tiers, and the obs plane stay
 * alive across requests, so a client's second submission of a known
 * program is a lock-free memory-cache hit instead of a process
 * launch. Concurrent clients connect over TCP and/or a Unix socket
 * and speak the frame protocol of serve/frame.hh:
 *
 *   client                      server
 *     Submit(program, device) ->
 *                             <- Result(key, verify, .tca artifact)
 *                             <- Error(code, detail)   on any failure
 *     Ping ->                 <- Pong
 *     Stats ->                <- StatsText(/metrics text)
 *
 * Concurrency model: one accept thread polls the listeners; each
 * connection gets a handler thread that serves requests
 * synchronously (read -> submit -> wait -> respond). A client
 * therefore has at most one compilation in flight, which is the
 * fairness story: N clients interleave through the engine's FIFO
 * queue round-robin-ish, and no client can monopolize the pool by
 * pipelining. The engine's cache still dedups identical programs
 * *across* clients, so a thundering herd on one program compiles it
 * once.
 *
 * Admission control is backpressure-by-error-frame, never OOM: a
 * connection beyond maxClients is answered with too_many_clients and
 * closed; a submit that would push the engine backlog past
 * maxQueueDepth gets `overloaded`; oversize frames are rejected from
 * the length prefix alone (frame.hh). Every rejection is a counted
 * metric (serve.*) on the engine registry, so /metrics exposes the
 * serving plane for free.
 *
 * Graceful drain (the SIGTERM path — see bench/tetrisd_main.cc):
 * drain() pins Engine::markDraining so /healthz reports "draining"
 * for the whole window, stops accepting, optionally cancels queued
 * jobs, lets every in-flight request publish and respond, then
 * waits out the engine's write-behind persists. No accepted request
 * is ever dropped without an answer frame.
 */

#ifndef TETRIS_SERVE_SERVER_HH
#define TETRIS_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.hh"

namespace tetris
{

class Engine;

namespace serve
{

struct ServeOptions
{
    /** TCP bind host (IPv4 literal or "localhost"). */
    std::string tcpHost = "127.0.0.1";
    /** TCP port: -1 = no TCP listener, 0 = ephemeral. */
    int tcpPort = -1;
    /** Unix-domain socket path; empty = no Unix listener. */
    std::string unixPath;
    /** Concurrent connections; 0 = TETRIS_SERVE_MAX_CLIENTS / 64. */
    int maxClients = 0;
    /** Engine backlog (submitted - finished) beyond which submits
     *  are rejected; 0 = TETRIS_SERVE_QUEUE / 256. */
    int maxQueueDepth = 0;
    /** Per-frame payload budget in bytes; 0 =
     *  TETRIS_SERVE_MAX_FRAME_MB / 64 MiB. */
    uint64_t maxFrameBytes = 0;
};

class ServeServer
{
  public:
    /**
     * Bind the configured listeners and start serving `engine`. At
     * least one listener (TCP or Unix) must be requested and
     * bindable, else null. The engine must outlive the server.
     */
    static std::unique_ptr<ServeServer> start(Engine &engine,
                                              ServeOptions opts);

    /** Drains (without cancelling queued work) if not yet drained. */
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /** Bound TCP port, or 0 when no TCP listener. */
    int port() const { return port_; }

    /** Bound Unix socket path, or empty. */
    const std::string &unixPath() const { return unixPath_; }

    /**
     * Graceful shutdown: pin the engine's draining flag, stop
     * accepting, optionally cancelPending() so queued-but-unstarted
     * jobs answer `compile_cancelled` immediately, wait for every
     * in-flight request to respond, then Engine::drain(). Idempotent;
     * the engine reports "draining" on /healthz from the first call
     * onward.
     */
    void drain(bool cancel_queued);

    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    /** Submit frames answered (with a Result or an Error). */
    uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    explicit ServeServer(Engine &engine) : engine_(engine) {}

    void acceptLoop();
    void handleConnection(int fd);
    void handleSubmit(int fd, const std::string &payload);
    void reapFinishedHandlers();

    Engine &engine_;
    int tcpFd_ = -1;
    int unixFd_ = -1;
    int port_ = 0;
    std::string unixPath_;
    int maxClients_ = 64;
    int maxQueueDepth_ = 256;
    uint64_t maxFrameBytes_ = 0;

    std::thread acceptThread_;
    std::atomic<bool> stopAccept_{false};
    std::atomic<bool> draining_{false};
    std::atomic<int> activeConns_{0};
    std::atomic<uint64_t> requests_{0};

    std::mutex handlersMutex_;
    std::vector<std::thread> handlers_;
    /** Indices of handlers_ whose threads have returned (reapable). */
    std::vector<size_t> finishedHandlers_;
    /** Reusable handlers_ slots, so a long-lived daemon's handler
     *  table stays bounded by maxClients_, not by connection count. */
    std::vector<size_t> freeSlots_;
    std::once_flag drainOnce_;
};

} // namespace serve
} // namespace tetris

#endif // TETRIS_SERVE_SERVER_HH
