#include "serve/server.hh"

#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cstdlib>
#include <cstring>

#include "common/env.hh"
#include "common/log.hh"
#include "engine/engine.hh"
#include "engine/stats.hh"
#include "engine/trace.hh"
#include "serialize/artifact.hh"
#include "serve/frame.hh"

namespace tetris::serve
{

#if TETRIS_HAVE_SOCKETS

namespace
{

/** Env-with-default knob resolution (0 request = consult env). */
int
resolveKnob(int requested, const char *env, int min_v, int max_v,
            int fallback)
{
    if (requested > 0)
        return requested;
    if (const char *v = std::getenv(env)) {
        if (int n = parseEnvInt(v, min_v, max_v))
            return n;
        logWarn("ignoring invalid ", env, "='", v, "' (want [", min_v,
                ", ", max_v, "])");
    }
    return fallback;
}

/** A stuck or vanished peer must not wedge a handler mid-frame. */
void
setIoTimeouts(int fd)
{
    struct timeval tmo;
    tmo.tv_sec = 5;
    tmo.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tmo, sizeof(tmo));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tmo, sizeof(tmo));
}

/** Best-effort error frame; the peer may already be gone. */
void
sendError(int fd, const char *code, const std::string &detail)
{
    sendFrame(fd, FrameType::Error,
              encodeError(ErrorFrame{code, detail}));
}

int
bindTcp(const std::string &host, int port, int &bound_port)
{
    std::string h = host.empty() || host == "localhost" ? "127.0.0.1"
                                                        : host;
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, h.c_str(), &sa.sin_addr) != 1) {
        logWarn("tetrisd: invalid TCP host '", host, "'");
        return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&sa),
               sizeof(sa)) != 0 ||
        ::listen(fd, 64) != 0 ||
        ::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                      &len) != 0) {
        logWarn("tetrisd: cannot bind TCP ", host, ":", port, ": ",
                std::strerror(errno));
        ::close(fd);
        return -1;
    }
    bound_port = ntohs(bound.sin_port);
    return fd;
}

int
bindUnix(const std::string &path)
{
    struct sockaddr_un sa;
    if (path.size() >= sizeof(sa.sun_path)) {
        logWarn("tetrisd: unix socket path too long: ", path);
        return -1;
    }
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(), path.size());
    ::unlink(path.c_str()); // stale socket from a previous run
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&sa),
               sizeof(sa)) != 0 ||
        ::listen(fd, 64) != 0) {
        logWarn("tetrisd: cannot bind unix socket ", path, ": ",
                std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

std::unique_ptr<ServeServer>
ServeServer::start(Engine &engine, ServeOptions opts)
{
    std::unique_ptr<ServeServer> server(new ServeServer(engine));
    server->maxClients_ = resolveKnob(
        opts.maxClients, "TETRIS_SERVE_MAX_CLIENTS", 1, 4096, 64);
    server->maxQueueDepth_ = resolveKnob(
        opts.maxQueueDepth, "TETRIS_SERVE_QUEUE", 1, 1 << 20, 256);
    if (opts.maxFrameBytes > 0) {
        server->maxFrameBytes_ = opts.maxFrameBytes;
    } else {
        server->maxFrameBytes_ =
            static_cast<uint64_t>(
                resolveKnob(0, "TETRIS_SERVE_MAX_FRAME_MB", 1, 4096,
                            64))
            << 20;
    }

    if (opts.tcpPort >= 0) {
        server->tcpFd_ =
            bindTcp(opts.tcpHost, opts.tcpPort, server->port_);
        if (server->tcpFd_ < 0)
            return nullptr;
    }
    if (!opts.unixPath.empty()) {
        server->unixFd_ = bindUnix(opts.unixPath);
        if (server->unixFd_ < 0) {
            if (server->tcpFd_ >= 0)
                ::close(server->tcpFd_);
            return nullptr;
        }
        server->unixPath_ = opts.unixPath;
    }
    if (server->tcpFd_ < 0 && server->unixFd_ < 0) {
        logWarn("tetrisd: no listener configured (need a TCP port "
                "and/or a unix socket path)");
        return nullptr;
    }

    server->acceptThread_ =
        std::thread([s = server.get()] { s->acceptLoop(); });
    logInfo("tetrisd: serving",
            server->tcpFd_ >= 0 ? " tcp port " : "",
            server->tcpFd_ >= 0 ? std::to_string(server->port_) : "",
            server->unixFd_ >= 0 ? " unix " : "",
            server->unixFd_ >= 0 ? server->unixPath_ : "",
            " (max_clients=", server->maxClients_,
            " queue=", server->maxQueueDepth_, ")");
    return server;
}

ServeServer::~ServeServer()
{
    drain(false);
}

void
ServeServer::drain(bool cancel_queued)
{
    std::call_once(drainOnce_, [&] {
        // Order matters: the draining flag first, so every handler
        // answers "draining" to new submits while in-flight ones
        // finish; /healthz flips the same instant.
        draining_.store(true, std::memory_order_relaxed);
        engine_.markDraining(true);
        if (cancel_queued)
            engine_.cancelPending();

        stopAccept_.store(true, std::memory_order_relaxed);
        if (acceptThread_.joinable())
            acceptThread_.join();
        if (tcpFd_ >= 0)
            ::close(tcpFd_);
        if (unixFd_ >= 0) {
            ::close(unixFd_);
            ::unlink(unixPath_.c_str());
        }

        // Every handler exits once its current request has been
        // answered (they poll draining_ between requests); joining
        // here is what guarantees no accepted request is dropped.
        std::vector<std::thread> live;
        {
            std::lock_guard<std::mutex> lock(handlersMutex_);
            for (auto &t : handlers_) {
                if (t.joinable())
                    live.push_back(std::move(t));
            }
            finishedHandlers_.clear();
        }
        for (auto &t : live)
            t.join();

        // Wait out the pool, including write-behind disk persists;
        // drain() clears the flag when the pool is idle, so pin it
        // again — the daemon stays "draining" until the process
        // exits.
        engine_.drain();
        engine_.markDraining(true);
        logInfo("tetrisd: drained after ", requestsServed(),
                " requests");
    });
}

void
ServeServer::reapFinishedHandlers()
{
    std::vector<std::thread> done;
    std::vector<size_t> slots;
    {
        std::lock_guard<std::mutex> lock(handlersMutex_);
        for (size_t idx : finishedHandlers_) {
            if (handlers_[idx].joinable())
                done.push_back(std::move(handlers_[idx]));
        }
        slots.swap(finishedHandlers_);
    }
    for (auto &t : done)
        t.join();
    // Joined: the slots are safe to assign new threads into.
    std::lock_guard<std::mutex> lock(handlersMutex_);
    freeSlots_.insert(freeSlots_.end(), slots.begin(), slots.end());
}

void
ServeServer::acceptLoop()
{
    while (!stopAccept_.load(std::memory_order_relaxed)) {
        struct pollfd pfds[2];
        nfds_t nfds = 0;
        if (tcpFd_ >= 0)
            pfds[nfds++] = {tcpFd_, POLLIN, 0};
        if (unixFd_ >= 0)
            pfds[nfds++] = {unixFd_, POLLIN, 0};
        // Short poll instead of blocking accept: drain() only flips
        // stopAccept_ and joins. pollRetry/acceptRetry absorb EINTR,
        // so the SIGTERM that *starts* a drain never costs the
        // connection that raced it.
        int r = net::pollRetry(pfds, nfds, 100);
        if (r <= 0)
            continue;
        for (nfds_t i = 0; i < nfds; ++i) {
            if ((pfds[i].revents & POLLIN) == 0)
                continue;
            int fd = net::acceptRetry(pfds[i].fd, nullptr, nullptr);
            if (fd < 0)
                continue;
            engine_.metrics().addCount("serve.connections");
            setIoTimeouts(fd);
            if (draining_.load(std::memory_order_relaxed)) {
                sendError(fd, "draining", "server is draining");
                ::close(fd);
                continue;
            }
            // Admission control, stage 1: connection cap. Answered
            // with an error frame and closed — backpressure, not
            // OOM via unbounded handler threads.
            if (activeConns_.load(std::memory_order_relaxed) >=
                maxClients_) {
                engine_.metrics().addCount("serve.rejected_clients");
                sendError(fd, "too_many_clients",
                          "connection limit reached; retry later");
                ::close(fd);
                continue;
            }
            activeConns_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(handlersMutex_);
            size_t slot;
            if (!freeSlots_.empty()) {
                slot = freeSlots_.back();
                freeSlots_.pop_back();
            } else {
                slot = handlers_.size();
                handlers_.emplace_back();
            }
            // The slot only re-enters freeSlots_ after the reap has
            // *joined* the finished thread — assigning a new thread
            // over a merely-finished (still joinable) one would
            // terminate.
            handlers_[slot] = std::thread([this, fd, slot] {
                handleConnection(fd);
                std::lock_guard<std::mutex> l(handlersMutex_);
                finishedHandlers_.push_back(slot);
            });
        }
        reapFinishedHandlers();
    }
}

void
ServeServer::handleConnection(int fd)
{
    while (!draining_.load(std::memory_order_relaxed)) {
        // Idle wait via poll so a drain is noticed within 100ms even
        // with no traffic; the socket timeouts only bound mid-frame
        // stalls.
        struct pollfd pfd = {fd, POLLIN, 0};
        int r = net::pollRetry(&pfd, 1, 100);
        if (r < 0)
            break;
        if (r == 0)
            continue;

        FrameType type = FrameType::Ping;
        std::string payload;
        RecvStatus st = recvFrame(fd, maxFrameBytes_, type, payload);
        if (st == RecvStatus::Closed)
            break;
        if (st != RecvStatus::Ok) {
            // Framing is lost (or the bytes never were frames):
            // answer with the typed reason, then hang up. The error
            // frame is best-effort — a peer that died mid-frame
            // won't read it.
            engine_.metrics().addCount("serve.bad_frames");
            sendError(fd, recvStatusName(st),
                      "unreadable frame; closing connection");
            break;
        }

        switch (type) {
          case FrameType::Ping:
            sendFrame(fd, FrameType::Pong, {});
            continue;
          case FrameType::Stats:
            sendFrame(fd, FrameType::StatsText,
                      formatStatsSnapshot(engine_));
            continue;
          case FrameType::Submit:
            handleSubmit(fd, payload);
            continue;
          default:
            // A well-framed message only a server may send; framing
            // is intact, so answer and keep the connection.
            engine_.metrics().addCount("serve.bad_requests");
            sendError(fd, "bad_request",
                      "unexpected frame type from a client");
            continue;
        }
    }
    ::close(fd);
    activeConns_.fetch_sub(1, std::memory_order_relaxed);
}

void
ServeServer::handleSubmit(int fd, const std::string &payload)
{
    const uint64_t t0 = steadyNowNs();
    requests_.fetch_add(1, std::memory_order_relaxed);

    auto respondError = [&](const char *metric, const char *code,
                            const std::string &detail) {
        engine_.metrics().addCount(metric);
        sendError(fd, code, detail);
    };

    SubmitRequest req;
    std::string err;
    if (!decodeSubmit(payload, req, err)) {
        respondError("serve.bad_requests", "bad_request", err);
        return;
    }
    CompileJob job;
    if (!submitToJob(req, job, err)) {
        respondError("serve.bad_requests", "bad_request", err);
        return;
    }
    if (draining_.load(std::memory_order_relaxed)) {
        respondError("serve.rejected_draining", "draining",
                     "server is draining");
        return;
    }
    // Admission control, stage 2: bounded engine backlog. The
    // rejection is an error frame the client can retry on — the
    // queue itself never grows past the budget.
    const size_t submitted = engine_.submittedCount();
    const size_t finished = engine_.finishedCount();
    const size_t backlog =
        submitted > finished ? submitted - finished : 0;
    if (backlog >= static_cast<size_t>(maxQueueDepth_)) {
        respondError("serve.rejected_overload", "overloaded",
                     "engine backlog full; retry later");
        return;
    }

    const uint64_t key = Engine::jobKey(job);
    auto entry = engine_.submitScoped(std::move(job));
    auto result = entry->get();
    if (result == nullptr || result->cancelled) {
        respondError("serve.cancelled", "compile_cancelled",
                     "job was cancelled while the server drained");
        return;
    }

    ResultFrame rf;
    rf.jobKey = key;
    rf.verify = static_cast<WireVerify>(entry->verifyStatus());
    rf.serverMs =
        static_cast<double>(steadyNowNs() - t0) / 1e6;
    rf.artifact = serialize::encodeArtifact(key, *result);
    if (sendFrame(fd, FrameType::Result, encodeResult(rf))) {
        engine_.metrics().addCount("serve.results");
        engine_.metrics()
            .histogram("serve.request_ns")
            .record(steadyNowNs() - t0);
    }
}

#else // !TETRIS_HAVE_SOCKETS

std::unique_ptr<ServeServer>
ServeServer::start(Engine &, ServeOptions)
{
    logWarn("tetrisd: no socket support on this platform");
    return nullptr;
}

ServeServer::~ServeServer() = default;

void
ServeServer::drain(bool)
{
}

void
ServeServer::acceptLoop()
{
}

void
ServeServer::handleConnection(int)
{
}

void
ServeServer::handleSubmit(int, const std::string &)
{
}

void
ServeServer::reapFinishedHandlers()
{
}

#endif // TETRIS_HAVE_SOCKETS

} // namespace tetris::serve
