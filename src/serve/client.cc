#include "serve/client.hh"

#if TETRIS_HAVE_SOCKETS

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "serialize/artifact.hh"

namespace tetris::serve
{

namespace
{

/** Clients wait out real compilations; 60s bounds a dead server. */
void
setClientTimeouts(int fd)
{
    struct timeval tmo;
    tmo.tv_sec = 60;
    tmo.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tmo, sizeof(tmo));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tmo, sizeof(tmo));
}

} // namespace

std::unique_ptr<ServeClient>
ServeClient::connectTcp(int port, std::string &err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::strerror(errno);
        return nullptr;
    }
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        err = std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    setClientTimeouts(fd);
    return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

std::unique_ptr<ServeClient>
ServeClient::connectUnix(const std::string &path, std::string &err)
{
    struct sockaddr_un sa;
    if (path.size() >= sizeof(sa.sun_path)) {
        err = "unix socket path too long";
        return nullptr;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        err = std::strerror(errno);
        return nullptr;
    }
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::memcpy(sa.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        err = std::strerror(errno);
        ::close(fd);
        return nullptr;
    }
    setClientTimeouts(fd);
    return std::unique_ptr<ServeClient>(new ServeClient(fd));
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
ServeClient::submit(const SubmitRequest &req, Response &out)
{
    out = Response();
    if (!sendFrame(fd_, FrameType::Submit, encodeSubmit(req))) {
        out.errorCode = "transport";
        out.errorDetail = "send failed";
        return false;
    }
    FrameType type = FrameType::Error;
    std::string payload;
    RecvStatus st =
        recvFrame(fd_, kDefaultMaxFrameBytes, type, payload);
    if (st != RecvStatus::Ok) {
        out.errorCode = "transport";
        out.errorDetail = recvStatusName(st);
        return false;
    }
    if (type == FrameType::Error) {
        ErrorFrame e;
        if (decodeError(payload, e)) {
            out.errorCode = e.code;
            out.errorDetail = e.detail;
        } else {
            out.errorCode = "transport";
            out.errorDetail = "undecodable error frame";
        }
        return true;
    }
    if (type != FrameType::Result) {
        out.errorCode = "transport";
        out.errorDetail = "unexpected response frame type";
        return false;
    }
    ResultFrame rf;
    if (!decodeResult(payload, rf)) {
        out.errorCode = "transport";
        out.errorDetail = "undecodable result frame";
        return false;
    }
    // The artifact is a complete .tca image keyed by the server's
    // job key: the same total decode the disk cache runs, so a
    // corrupted or mismatched response is caught right here.
    if (!serialize::decodeArtifact(rf.artifact, rf.jobKey,
                                   out.result)) {
        out.errorCode = "transport";
        out.errorDetail = "artifact image failed to decode";
        return false;
    }
    out.ok = true;
    out.jobKey = rf.jobKey;
    out.verify = rf.verify;
    out.serverMs = rf.serverMs;
    return true;
}

bool
ServeClient::ping()
{
    if (!sendFrame(fd_, FrameType::Ping, {}))
        return false;
    FrameType type = FrameType::Error;
    std::string payload;
    return recvFrame(fd_, kDefaultMaxFrameBytes, type, payload) ==
               RecvStatus::Ok &&
           type == FrameType::Pong;
}

bool
ServeClient::statsText(std::string &out)
{
    if (!sendFrame(fd_, FrameType::Stats, {}))
        return false;
    FrameType type = FrameType::Error;
    std::string payload;
    if (recvFrame(fd_, kDefaultMaxFrameBytes, type, payload) !=
            RecvStatus::Ok ||
        type != FrameType::StatsText)
        return false;
    out = std::move(payload);
    return true;
}

} // namespace tetris::serve

#endif // TETRIS_HAVE_SOCKETS
