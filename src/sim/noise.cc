#include "sim/noise.hh"

#include <cmath>

namespace tetris
{

double
estimatedSuccessProbability(const Circuit &c, const NoiseModel &noise)
{
    // log-domain product for numerical stability on large circuits.
    double log_p = 0.0;
    log_p += std::log1p(-noise.p2) * static_cast<double>(c.cnotCount());
    log_p += std::log1p(-noise.p1) *
             static_cast<double>(c.oneQubitCount());
    return std::exp(log_p);
}

double
echoFidelity(const Circuit &c, const NoiseModel &noise)
{
    double esp = estimatedSuccessProbability(c, noise);
    return esp * esp; // circuit + inverse
}

double
echoFidelityMonteCarlo(const Circuit &c, const NoiseModel &noise, Rng &rng,
                       int shots)
{
    const double p_survive = echoFidelity(c, noise);
    int ok = 0;
    for (int s = 0; s < shots; ++s) {
        if (rng.bernoulli(p_survive))
            ++ok;
    }
    return static_cast<double>(ok) / shots;
}

} // namespace tetris
