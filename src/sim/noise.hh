/**
 * @file
 * Depolarizing noise model and fidelity estimation.
 *
 * Reproduces the paper's fidelity methodology (Sec. VI-G): a
 * depolarizing channel with parameter p2 = 1e-3 on every CNOT and
 * p1 = 1e-4 on every single-qubit gate; fidelity is the probability
 * of recovering |0...0> after running circuit + inverse(circuit).
 * Under pure depolarizing noise this equals (to first order) the
 * probability that no gate depolarized, which we expose analytically
 * (estimatedSuccessProbability) and as a Monte-Carlo sampler that
 * reproduces shot statistics.
 */

#ifndef TETRIS_SIM_NOISE_HH
#define TETRIS_SIM_NOISE_HH

#include "circuit/circuit.hh"
#include "common/rng.hh"

namespace tetris
{

/** Depolarizing error probabilities per gate class. */
struct NoiseModel
{
    /** Depolarizing parameter per two-qubit (CNOT) gate. */
    double p2 = 1e-3;
    /** Depolarizing parameter per single-qubit gate. */
    double p1 = 1e-4;
};

/**
 * Analytic no-error probability of a circuit: the product of
 * (1 - p) over all gates, with SWAP counted as three CNOTs.
 */
double estimatedSuccessProbability(const Circuit &c,
                                   const NoiseModel &noise);

/**
 * Fidelity of the paper's randomized-benchmarking-style experiment:
 * run circuit followed by its inverse under the noise model, report
 * P(all zeros). Computed as the ESP of the doubled circuit.
 */
double echoFidelity(const Circuit &c, const NoiseModel &noise);

/**
 * Monte-Carlo estimate of echoFidelity with `shots` samples: each
 * shot survives iff no gate depolarizes (a depolarized n-qubit
 * subsystem has only ~4^-n chance of looking unaffected, which we
 * neglect exactly as the analytic model does).
 */
double echoFidelityMonteCarlo(const Circuit &c, const NoiseModel &noise,
                              Rng &rng, int shots);

} // namespace tetris

#endif // TETRIS_SIM_NOISE_HH
