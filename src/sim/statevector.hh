/**
 * @file
 * Dense statevector simulator.
 *
 * Used by the test suite to prove functional correctness of every
 * synthesis path: a compiled circuit must act on |psi> exactly like
 * the ordered product of exp(-i theta/2 P) rotations it implements,
 * up to global phase, with ancilla qubits returned to |0>.
 *
 * Qubit 0 is the least significant bit of the basis-state index.
 * Practical up to ~20 qubits; tests stay <= 12.
 */

#ifndef TETRIS_SIM_STATEVECTOR_HH
#define TETRIS_SIM_STATEVECTOR_HH

#include <complex>
#include <vector>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "pauli/pauli_string.hh"

namespace tetris
{

/** A normalized pure state over n qubits. */
class Statevector
{
  public:
    using Amplitude = std::complex<double>;

    /** The all-zeros computational basis state. */
    explicit Statevector(int num_qubits);

    /** A Haar-ish random normalized state (Gaussian amplitudes). */
    static Statevector random(int num_qubits, Rng &rng);

    /** Construct from an explicit amplitude vector (must be 2^n long). */
    static Statevector fromAmplitudes(std::vector<Amplitude> amp);

    int numQubits() const { return numQubits_; }
    const std::vector<Amplitude> &amplitudes() const { return amp_; }

    /** Apply one gate. MEASURE is a no-op; RESET projects onto |0>. */
    void apply(const Gate &g);

    /** Apply all gates of a circuit in order. */
    void applyCircuit(const Circuit &c);

    /** Apply a Pauli string operator P (unitary, Hermitian). */
    void applyPauli(const PauliString &p);

    /**
     * Apply exp(-i theta/2 P) analytically:
     * cos(theta/2) |psi> - i sin(theta/2) P |psi>.
     */
    void applyPauliExp(const PauliString &p, double theta);

    /** <this|other>. */
    Amplitude inner(const Statevector &other) const;

    /** |<this|other>|^2 (global-phase insensitive). */
    double overlapWith(const Statevector &other) const;

    /** Probability that measuring qubit q yields 0. */
    double probZero(int q) const;

    /** Probability of the all-zeros outcome. */
    double probAllZero() const;

    /** Euclidean norm (should stay ~1). */
    double norm() const;

  private:
    int numQubits_;
    std::vector<Amplitude> amp_;
};

} // namespace tetris

#endif // TETRIS_SIM_STATEVECTOR_HH
