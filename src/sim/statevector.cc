#include "sim/statevector.hh"

#include <cmath>

#include "common/logging.hh"

namespace tetris
{

namespace
{
constexpr std::complex<double> kI{0.0, 1.0};
} // namespace

Statevector::Statevector(int num_qubits)
    : numQubits_(num_qubits), amp_(size_t{1} << num_qubits, 0.0)
{
    TETRIS_ASSERT(num_qubits >= 1 && num_qubits <= 26,
                  "statevector limited to 26 qubits");
    amp_[0] = 1.0;
}

Statevector
Statevector::random(int num_qubits, Rng &rng)
{
    Statevector sv(num_qubits);
    std::normal_distribution<double> gauss(0.0, 1.0);
    double norm2 = 0.0;
    for (auto &a : sv.amp_) {
        a = {gauss(rng.engine()), gauss(rng.engine())};
        norm2 += std::norm(a);
    }
    double inv = 1.0 / std::sqrt(norm2);
    for (auto &a : sv.amp_)
        a *= inv;
    return sv;
}

Statevector
Statevector::fromAmplitudes(std::vector<Amplitude> amp)
{
    int n = 0;
    while ((size_t{1} << n) < amp.size())
        ++n;
    TETRIS_ASSERT((size_t{1} << n) == amp.size(),
                  "amplitude vector length must be a power of two");
    Statevector sv(n);
    sv.amp_ = std::move(amp);
    return sv;
}

void
Statevector::apply(const Gate &g)
{
    const size_t n = amp_.size();
    const size_t bit0 = size_t{1} << g.q0;

    switch (g.kind) {
      case GateKind::H: {
        const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
        for (size_t i = 0; i < n; ++i) {
            if (i & bit0)
                continue;
            Amplitude a0 = amp_[i], a1 = amp_[i | bit0];
            amp_[i] = (a0 + a1) * inv_sqrt2;
            amp_[i | bit0] = (a0 - a1) * inv_sqrt2;
        }
        break;
      }
      case GateKind::X: {
        for (size_t i = 0; i < n; ++i) {
            if (!(i & bit0))
                std::swap(amp_[i], amp_[i | bit0]);
        }
        break;
      }
      case GateKind::S: {
        for (size_t i = 0; i < n; ++i) {
            if (i & bit0)
                amp_[i] *= kI;
        }
        break;
      }
      case GateKind::Sdg: {
        for (size_t i = 0; i < n; ++i) {
            if (i & bit0)
                amp_[i] *= -kI;
        }
        break;
      }
      case GateKind::RZ: {
        const Amplitude e0 = std::exp(-kI * (g.angle / 2.0));
        const Amplitude e1 = std::exp(kI * (g.angle / 2.0));
        for (size_t i = 0; i < n; ++i)
            amp_[i] *= (i & bit0) ? e1 : e0;
        break;
      }
      case GateKind::RX: {
        const double c = std::cos(g.angle / 2.0);
        const double s = std::sin(g.angle / 2.0);
        for (size_t i = 0; i < n; ++i) {
            if (i & bit0)
                continue;
            Amplitude a0 = amp_[i], a1 = amp_[i | bit0];
            amp_[i] = c * a0 - kI * s * a1;
            amp_[i | bit0] = c * a1 - kI * s * a0;
        }
        break;
      }
      case GateKind::CX: {
        const size_t bit1 = size_t{1} << g.q1;
        for (size_t i = 0; i < n; ++i) {
            if ((i & bit0) && !(i & bit1))
                std::swap(amp_[i], amp_[i | bit1]);
        }
        break;
      }
      case GateKind::SWAP: {
        const size_t bit1 = size_t{1} << g.q1;
        for (size_t i = 0; i < n; ++i) {
            if ((i & bit0) && !(i & bit1))
                std::swap(amp_[i], amp_[(i & ~bit0) | bit1]);
        }
        break;
      }
      case GateKind::MEASURE:
        break; // Metrics-only marker; no state change modeled.
      case GateKind::RESET: {
        // Project onto |0> on this wire and renormalize.
        double p0 = probZero(g.q0);
        TETRIS_ASSERT(p0 > 1e-12, "reset of a qubit that is never |0>");
        double inv = 1.0 / std::sqrt(p0);
        for (size_t i = 0; i < n; ++i) {
            if (i & bit0)
                amp_[i] = 0.0;
            else
                amp_[i] *= inv;
        }
        break;
      }
    }
}

void
Statevector::applyCircuit(const Circuit &c)
{
    TETRIS_ASSERT(c.numQubits() <= numQubits_,
                  "circuit wider than the state");
    for (const auto &g : c.gates())
        apply(g);
}

void
Statevector::applyPauli(const PauliString &p)
{
    TETRIS_ASSERT(static_cast<int>(p.numQubits()) <= numQubits_);
    size_t x_mask = 0;
    size_t z_mask = 0;
    int num_y = 0;
    for (size_t q = 0; q < p.numQubits(); ++q) {
        switch (p.op(q)) {
          case PauliOp::X:
            x_mask |= size_t{1} << q;
            break;
          case PauliOp::Z:
            z_mask |= size_t{1} << q;
            break;
          case PauliOp::Y:
            x_mask |= size_t{1} << q;
            z_mask |= size_t{1} << q;
            ++num_y;
            break;
          case PauliOp::I:
            break;
        }
    }

    // Y = i X Z per wire, so P = i^{num_y} * (prod X) * (prod Z).
    const Amplitude global = std::pow(kI, num_y % 4);

    std::vector<Amplitude> out(amp_.size());
    for (size_t i = 0; i < amp_.size(); ++i) {
        // Z phase acts on the pre-X-flip basis state.
        int parity = __builtin_popcountll(i & z_mask) & 1;
        Amplitude v = amp_[i] * (parity ? -1.0 : 1.0) * global;
        out[i ^ x_mask] = v;
    }
    amp_ = std::move(out);
}

void
Statevector::applyPauliExp(const PauliString &p, double theta)
{
    Statevector rotated = *this;
    rotated.applyPauli(p);
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    for (size_t i = 0; i < amp_.size(); ++i)
        amp_[i] = c * amp_[i] - kI * s * rotated.amp_[i];
}

Statevector::Amplitude
Statevector::inner(const Statevector &other) const
{
    TETRIS_ASSERT(numQubits_ == other.numQubits_);
    Amplitude acc = 0.0;
    for (size_t i = 0; i < amp_.size(); ++i)
        acc += std::conj(amp_[i]) * other.amp_[i];
    return acc;
}

double
Statevector::overlapWith(const Statevector &other) const
{
    return std::norm(inner(other));
}

double
Statevector::probZero(int q) const
{
    const size_t bit = size_t{1} << q;
    double p = 0.0;
    for (size_t i = 0; i < amp_.size(); ++i) {
        if (!(i & bit))
            p += std::norm(amp_[i]);
    }
    return p;
}

double
Statevector::probAllZero() const
{
    return std::norm(amp_[0]);
}

double
Statevector::norm() const
{
    double n2 = 0.0;
    for (const auto &a : amp_)
        n2 += std::norm(a);
    return std::sqrt(n2);
}

} // namespace tetris
