#include "obs/watchdog.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/env.hh"
#include "common/log.hh"
#include "engine/engine.hh"
#include "engine/trace.hh"
#include "obs/event_log.hh"

namespace tetris
{

StallWatchdog::StallWatchdog(Engine &engine, uint64_t stall_ms)
    : engine_(engine), stallMs_(stall_ms)
{
    thread_ = std::thread([this] { loop(); });
}

StallWatchdog::~StallWatchdog()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

uint64_t
StallWatchdog::stallMsFromEnv()
{
    const char *v = std::getenv("TETRIS_STALL_MS");
    if (v == nullptr || *v == '\0')
        return 0;
    // "0" is an explicit off, not an invalid value.
    if (v[0] == '0' && v[1] == '\0')
        return 0;
    if (int n = parseEnvInt(v, 1, 86400000))
        return static_cast<uint64_t>(n);
    logWarn("ignoring invalid TETRIS_STALL_MS='", v,
            "' (want milliseconds in [1, 86400000]); watchdog off");
    return 0;
}

void
StallWatchdog::loop()
{
    const uint64_t poll_ms =
        std::clamp<uint64_t>(stallMs_ / 4, 10, 1000);
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (wake_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                               [this] { return stopping_; })) {
                return;
            }
        }
        scan();
    }
}

void
StallWatchdog::scan()
{
    const uint64_t now_ns = steadyNowNs();
    const uint64_t threshold_ns = stallMs_ * 1000000ull;
    for (const auto &job : engine_.activeJobs()) {
        const uint64_t elapsed_ns =
            now_ns > job->startNs ? now_ns - job->startNs : 0;
        if (elapsed_ns <= threshold_ns)
            continue;
        // Flag once per job: exchange() wins the race against a
        // concurrent scan and against the job finishing.
        if (job->stalled.exchange(true, std::memory_order_relaxed))
            continue;
        const char *stage = job->stage.load(std::memory_order_relaxed);
        const double elapsed_ms =
            static_cast<double>(elapsed_ns) / 1e6;
        stalled_.fetch_add(1, std::memory_order_relaxed);
        engine_.metrics().addCount("jobs.stalled");
        EventLog &events = engine_.eventLog();
        if (events.enabled()) {
            events.record(
                "stall",
                {EventLog::Field::str("job", job->name),
                 EventLog::Field::u64("key", job->key),
                 EventLog::Field::str("stage", stage),
                 EventLog::Field::f64("elapsed_ms", elapsed_ms),
                 EventLog::Field::u64("threshold_ms", stallMs_)});
        }
        logWarn("watchdog: job [", job->name, "] key ", job->key,
                " stalled in stage '", stage, "' for ", elapsed_ms,
                " ms (threshold ", stallMs_, " ms)");
    }
}

} // namespace tetris
