#include "obs/event_log.hh"

#include <cstdlib>

#include <sys/time.h>

#include "common/env.hh"
#include "common/json.hh"
#include "common/log.hh"

namespace tetris
{

namespace
{

/** Wall-clock milliseconds since the epoch for record timestamps. */
uint64_t
wallClockMs()
{
    struct timeval tv;
    ::gettimeofday(&tv, nullptr);
    return static_cast<uint64_t>(tv.tv_sec) * 1000 +
           static_cast<uint64_t>(tv.tv_usec) / 1000;
}

const char *
teeLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
      case LogLevel::Off:
        break;
    }
    return "?";
}

} // namespace

EventLog::Field
EventLog::Field::str(const char *key, std::string value)
{
    Field f;
    f.key = key;
    f.kind = Kind::Str;
    f.s = std::move(value);
    return f;
}

EventLog::Field
EventLog::Field::u64(const char *key, uint64_t value)
{
    Field f;
    f.key = key;
    f.kind = Kind::U64;
    f.u = value;
    return f;
}

EventLog::Field
EventLog::Field::f64(const char *key, double value)
{
    Field f;
    f.key = key;
    f.kind = Kind::F64;
    f.d = value;
    return f;
}

EventLog::Field
EventLog::Field::b(const char *key, bool value)
{
    Field f;
    f.key = key;
    f.kind = Kind::Bool;
    f.flag = value;
    return f;
}

EventLog::~EventLog() { close(); }

bool
EventLog::arm(const std::string &path, uint64_t max_bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
        enabled_.store(false, std::memory_order_relaxed);
    }
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
        logWarn("event log: cannot open '", path, "'; disabled");
        return false;
    }
    long pos = std::ftell(f);
    file_ = f;
    path_ = path;
    maxBytes_ = max_bytes > 0 ? max_bytes : kDefaultMaxBytes;
    bytes_ = pos > 0 ? static_cast<uint64_t>(pos) : 0;
    enabled_.store(true, std::memory_order_relaxed);
    return true;
}

void
EventLog::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_relaxed);
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

void
EventLog::rotateLocked()
{
    // Two generations: <path> -> <path>.1, then restart fresh. Errors
    // fall back to truncating in place — record() must never log (it
    // can run inside the logger tee, under the emit mutex).
    std::fclose(file_);
    file_ = nullptr;
    const std::string old = path_ + ".1";
    std::remove(old.c_str());
    std::rename(path_.c_str(), old.c_str());
    file_ = std::fopen(path_.c_str(), "wb");
    bytes_ = 0;
    if (file_ == nullptr)
        enabled_.store(false, std::memory_order_relaxed);
    else
        rotations_.fetch_add(1, std::memory_order_relaxed);
}

void
EventLog::record(const char *event, std::initializer_list<Field> fields)
{
    if (!enabled())
        return;
    // Format outside the lock; only the append is serialized.
    JsonWriter w;
    w.beginObject();
    w.key("ts_ms").value(wallClockMs());
    w.key("event").value(event);
    for (const Field &f : fields) {
        w.key(f.key);
        switch (f.kind) {
          case Field::Kind::Str:
            w.value(f.s);
            break;
          case Field::Kind::U64:
            w.value(f.u);
            break;
          case Field::Kind::F64:
            w.value(f.d);
            break;
          case Field::Kind::Bool:
            w.value(f.flag);
            break;
        }
    }
    w.endObject();
    std::string line = w.str();
    line += '\n';

    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr)
        return; // closed between the enabled() check and the lock
    if (bytes_ + line.size() > maxBytes_)
        rotateLocked();
    if (file_ == nullptr)
        return;
    std::fwrite(line.data(), 1, line.size(), file_);
    // Flush per record: events are rare (per job, not per gate) and a
    // crashing process should leave a readable log.
    std::fflush(file_);
    bytes_ += line.size();
    records_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
EventLog::maxBytesFromEnv()
{
    const char *v = std::getenv("TETRIS_EVENT_LOG_MAX_BYTES");
    if (v == nullptr || *v == '\0')
        return kDefaultMaxBytes;
    if (int n = parseEnvInt(v, 4096, 1 << 30))
        return static_cast<uint64_t>(n);
    logWarn("ignoring invalid TETRIS_EVENT_LOG_MAX_BYTES='", v,
            "' (want bytes in [4096, 2^30]); using default");
    return kDefaultMaxBytes;
}

EventLog &
EventLog::global()
{
    // Leaked deliberately: worker threads and static destructors may
    // still record during teardown, and every record is flushed.
    static EventLog *g = [] {
        auto *log = new EventLog();
        const char *path = std::getenv("TETRIS_EVENT_LOG");
        if (path != nullptr && *path != '\0') {
            if (log->arm(path, maxBytesFromEnv()))
                installLogTee(*log);
        }
        return log;
    }();
    return *g;
}

void
installLogTee(EventLog &log)
{
    setLogTee([&log](LogLevel level, const std::string &message) {
        if (level < LogLevel::Warn)
            return;
        log.record("log",
                   {EventLog::Field::str("level", teeLevelName(level)),
                    EventLog::Field::str("message", message)});
    });
}

void
clearLogTee()
{
    setLogTee(nullptr);
}

} // namespace tetris
