/**
 * @file
 * Embedded HTTP/1.0 scrape server for the observability plane.
 *
 * A deliberately tiny, dependency-free server: one blocking
 * accept/serve loop on its own thread, one request per connection
 * (Connection: close), GET only. It exists so any engine-hosting
 * process — today's bench binaries, tomorrow's tetrisd — can be
 * observed *while work is in flight* instead of only through the
 * BENCH_*.json it writes at exit. Three endpoints:
 *
 *   GET /metrics  Prometheus text exposition 0.0.4 rendered by
 *                 formatStatsSnapshot() (engine/stats.hh): counters,
 *                 gauges, and the log2 latency histograms as
 *                 cumulative _bucket{le=...}/_sum/_count series.
 *   GET /healthz  Liveness + drain state as a one-line JSON object;
 *                 "status" flips to "draining" inside Engine::drain.
 *   GET /statusz  Human-readable: uptime, in-flight jobs with stage
 *                 and elapsed time, queue depth, cache hit rates,
 *                 top-5 slowest recent jobs.
 *
 * Armed by TETRIS_OBS_ADDR=host:port (EngineOptions::obsServer for
 * tests; port 0 binds an ephemeral port, reported by port()).
 * TETRIS_OBS_LINGER_MS=<ms> keeps the server alive that long into
 * its teardown, so an external scraper can collect the final
 * (post-sweep, idle) state of a short-lived process — smoke.sh uses
 * this to compare the last scrape against the BENCH json. The
 * engine tears the server down before its own members, so a request
 * racing engine destruction either completes or gets a reset — never
 * a use-after-free. Serving is serialized: a scrape every few
 * seconds against a handler that renders in microseconds does not
 * need concurrency, and a single serving thread keeps the engine's
 * hot path entirely untouched when nobody scrapes.
 */

#ifndef TETRIS_OBS_OBS_SERVER_HH
#define TETRIS_OBS_OBS_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace tetris
{

class Engine;

class ObsServer
{
  public:
    ~ObsServer();

    ObsServer(const ObsServer &) = delete;
    ObsServer &operator=(const ObsServer &) = delete;

    /**
     * Bind `addr` ("host:port"; host must be an IPv4 literal or
     * "localhost", port 0 picks an ephemeral one) and start serving
     * `engine`'s state. Returns null after logging a warning when
     * the address is malformed or the bind fails — an unbindable
     * scrape port must not take down the compile job.
     */
    static std::unique_ptr<ObsServer> start(const Engine &engine,
                                            const std::string &addr);

    /** The bound TCP port (resolved even when `addr` said 0). */
    int port() const { return port_; }

    /** Requests served since start (statusz shows it). */
    uint64_t requestCount() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

  private:
    explicit ObsServer(const Engine &engine) : engine_(engine) {}

    void loop();
    void handle(int fd);

    const Engine &engine_;
    int listenFd_ = -1;
    int port_ = 0;
    /** TETRIS_OBS_LINGER_MS: serve this long into teardown. */
    uint64_t lingerMs_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<uint64_t> requests_{0};
    std::thread thread_;
};

/**
 * Minimal loopback HTTP/1.0 GET for tests and benches: fetch `path`
 * from 127.0.0.1:`port`, return the response body, store the status
 * code in `*status` when non-null (0 on connect/protocol failure).
 */
std::string obsHttpGet(int port, const std::string &path,
                       int *status = nullptr);

} // namespace tetris

#endif // TETRIS_OBS_OBS_SERVER_HH
