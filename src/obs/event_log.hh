/**
 * @file
 * Structured JSONL event log for the observability plane.
 *
 * One self-describing JSON object per significant engine event —
 * job start/finish/cancel, verify failure, disk-cache
 * corruption-as-miss, store trim, watchdog stall — appended to a
 * file armed by TETRIS_EVENT_LOG=<path> (or EventLog::arm() for
 * tests). Every record carries a wall-clock timestamp and the event
 * name; the remaining fields are event-specific. The file rotates in
 * place once it exceeds TETRIS_EVENT_LOG_MAX_BYTES (default 64 MiB):
 * the current file moves to <path>.1 (replacing any previous .1) and
 * writing restarts on a fresh <path>, so a long-lived daemon keeps a
 * bounded two-generation window.
 *
 * The disabled fast path is one relaxed atomic load — an unarmed
 * process pays nothing per event (perf_microbench's obs_overhead
 * section trends this). Armed recording serializes on one mutex and
 * flushes per line so a crash loses at most the line being written.
 *
 * The process-wide instance (global(), what engines default to) also
 * installs a logger tee (installLogTee) that mirrors every warn+ log
 * line into the event log as a {"event":"log",...} record, so paths
 * that only warn (disk-cache I/O failures, bad env knobs) are
 * captured without bespoke instrumentation. The tee runs under the
 * logger's emit mutex: EventLog never logs from its own record path,
 * which keeps the lock order acyclic.
 */

#ifndef TETRIS_OBS_EVENT_LOG_HH
#define TETRIS_OBS_EVENT_LOG_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>

namespace tetris
{

class EventLog
{
  public:
    static constexpr uint64_t kDefaultMaxBytes = 64ull << 20;

    /** One typed key/value pair of a record. Build via the static
     *  helpers: Field::str / Field::u64 / Field::f64 / Field::b. */
    struct Field
    {
        enum class Kind
        {
            Str,
            U64,
            F64,
            Bool,
        };

        const char *key = "";
        Kind kind = Kind::U64;
        std::string s;
        uint64_t u = 0;
        double d = 0.0;
        bool flag = false;

        static Field str(const char *key, std::string value);
        static Field u64(const char *key, uint64_t value);
        static Field f64(const char *key, double value);
        static Field b(const char *key, bool value);
    };

    EventLog() = default;
    ~EventLog();

    EventLog(const EventLog &) = delete;
    EventLog &operator=(const EventLog &) = delete;

    /**
     * Start appending to `path`, rotating once the file would exceed
     * `max_bytes` (0 keeps the default budget). Returns false (and
     * stays disabled) when the file cannot be opened.
     */
    bool arm(const std::string &path,
             uint64_t max_bytes = kDefaultMaxBytes);

    /** Flush and stop recording (idempotent). */
    void close();

    /** One relaxed load: the per-event cost when nothing is armed. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Append {"ts_ms":...,"event":event,<fields>} as one line.
     * No-op when disabled. Never logs (see the tee lock-order note
     * above), so it is safe to call from inside the logger tee.
     */
    void record(const char *event,
                std::initializer_list<Field> fields = {});

    /** Records written since arm() (tests, statusz). */
    uint64_t recordCount() const
    {
        return records_.load(std::memory_order_relaxed);
    }

    /** Completed <path> -> <path>.1 rotations. */
    uint64_t rotationCount() const
    {
        return rotations_.load(std::memory_order_relaxed);
    }

    const std::string &path() const { return path_; }

    /**
     * The process-wide event log engines default to. Armed on first
     * access from TETRIS_EVENT_LOG / TETRIS_EVENT_LOG_MAX_BYTES;
     * when armed it also installs the warn+ logger tee. Never
     * destroyed (worker threads may emit during static teardown).
     */
    static EventLog &global();

    /**
     * TETRIS_EVENT_LOG_MAX_BYTES: strict integer number of bytes in
     * [4096, 2^30]; unset or invalid falls back to kDefaultMaxBytes
     * (invalid warns).
     */
    static uint64_t maxBytesFromEnv();

  private:
    void rotateLocked();

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> records_{0};
    std::atomic<uint64_t> rotations_{0};
    mutable std::mutex mutex_;
    std::FILE *file_ = nullptr;
    std::string path_;
    uint64_t maxBytes_ = kDefaultMaxBytes;
    uint64_t bytes_ = 0;
};

/**
 * Mirror every warn+ log line into `log` as {"event":"log"} records
 * (see common/log.hh setLogTee). The tee holds a reference: `log`
 * must outlive it or call clearLogTee() first.
 */
void installLogTee(EventLog &log);
void clearLogTee();

} // namespace tetris

#endif // TETRIS_OBS_EVENT_LOG_HH
