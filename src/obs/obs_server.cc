#include "obs/obs_server.hh"

#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS
#define TETRIS_OBS_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define TETRIS_OBS_HAVE_SOCKETS 0
#endif

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/env.hh"
#include "common/log.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "engine/stats.hh"
#include "engine/trace.hh"

namespace tetris
{

#if TETRIS_OBS_HAVE_SOCKETS

namespace
{

/**
 * "host:port" -> (inet addr, port). Host must be an IPv4 literal or
 * "localhost"; a bare ":port" or "port" binds loopback. Returns
 * false on anything else.
 */
bool
parseAddr(const std::string &addr, struct sockaddr_in &out)
{
    std::string host = "127.0.0.1";
    std::string port_str = addr;
    const size_t colon = addr.rfind(':');
    if (colon != std::string::npos) {
        host = addr.substr(0, colon);
        port_str = addr.substr(colon + 1);
        if (host.empty())
            host = "127.0.0.1";
    }
    if (host == "localhost")
        host = "127.0.0.1";
    if (port_str.empty())
        return false;
    // Port 0 (ephemeral) is legal here but parseEnvInt uses 0 as its
    // rejection sentinel, so check for a literal "0" first.
    int port = 0;
    if (!(port_str == "0")) {
        port = parseEnvInt(port_str.c_str(), 1, 65535);
        if (port == 0)
            return false;
    }
    std::memset(&out, 0, sizeof(out));
    out.sin_family = AF_INET;
    out.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &out.sin_addr) != 1)
        return false;
    return true;
}

void
sendResponse(int fd, int status, const char *reason,
             const char *content_type, const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.0 " << status << " " << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n";
    const std::string head = os.str();
    // net::sendAll retries EINTR, so a signal landing mid-scrape
    // (SIGTERM during a daemon drain, SIGINT during a bench) cannot
    // truncate the response; peer death just abandons it.
    if (net::sendAll(fd, head.data(), head.size()))
        net::sendAll(fd, body.data(), body.size());
}

std::string
renderHealthz(const Engine &engine)
{
    const size_t started = engine.startedCount();
    const size_t finished = engine.finishedCount();
    const size_t submitted = engine.submittedCount();
    const bool draining = engine.draining();
    std::ostringstream os;
    os << "{\"status\":\"" << (draining ? "draining" : "ok")
       << "\",\"draining\":" << (draining ? "true" : "false")
       << ",\"in_flight\":" << (started > finished ? started - finished : 0)
       << ",\"queued\":" << (submitted > started ? submitted - started : 0)
       << ",\"submitted\":" << submitted << ",\"finished\":" << finished
       << "}\n";
    return os.str();
}

std::string
renderStatusz(const Engine &engine, uint64_t requests)
{
    const uint64_t now_ns = steadyNowNs();
    const size_t submitted = engine.submittedCount();
    const size_t started = engine.startedCount();
    const size_t finished = engine.finishedCount();
    std::ostringstream os;
    os << "tetris engine status\n"
       << "====================\n"
       << "uptime_s: " << engine.uptimeSeconds() << "\n"
       << "threads: " << engine.numThreads() << "\n"
       << "draining: " << (engine.draining() ? "yes" : "no") << "\n"
       << "jobs: " << finished << "/" << submitted << " finished, "
       << (started > finished ? started - finished : 0) << " in flight, "
       << (submitted > started ? submitted - started : 0) << " queued\n";

    const CompileCache &cache = engine.cache();
    const size_t chits = cache.hits(), cmiss = cache.misses();
    os << "cache: " << chits << " hits / " << cmiss << " misses";
    if (chits + cmiss > 0) {
        os << " (" << 100.0 * static_cast<double>(chits) /
                          static_cast<double>(chits + cmiss)
           << "% hit rate)";
    }
    os << "\n";
    if (const DiskCache *disk = engine.diskCache()) {
        os << "disk cache: " << disk->hits() << " hits / "
           << disk->misses() << " misses, " << disk->writes()
           << " writes\n";
    }
    os << "scrapes served: " << requests << "\n";

    os << "\nin-flight jobs\n--------------\n";
    auto active = engine.activeJobs();
    if (active.empty())
        os << "(none)\n";
    for (const auto &job : active) {
        const uint64_t elapsed_ns =
            now_ns > job->startNs ? now_ns - job->startNs : 0;
        os << "  " << job->name << "  stage="
           << job->stage.load(std::memory_order_relaxed) << "  elapsed="
           << static_cast<double>(elapsed_ns) / 1e6 << "ms"
           << (job->stalled.load(std::memory_order_relaxed)
                   ? "  [STALLED]"
                   : "")
           << "\n";
    }

    os << "\ntop-5 slowest recent jobs\n-------------------------\n";
    auto recent = engine.recentJobs();
    std::sort(recent.begin(), recent.end(),
              [](const Engine::RecentJob &a, const Engine::RecentJob &b) {
                  return a.durationNs > b.durationNs;
              });
    if (recent.empty())
        os << "(none)\n";
    for (size_t i = 0; i < recent.size() && i < 5; ++i) {
        os << "  " << recent[i].name << "  "
           << static_cast<double>(recent[i].durationNs) / 1e6 << "ms\n";
    }
    return os.str();
}

} // namespace

std::unique_ptr<ObsServer>
ObsServer::start(const Engine &engine, const std::string &addr)
{
    struct sockaddr_in sa;
    if (!parseAddr(addr, sa)) {
        logWarn("obs server: invalid address '", addr,
                "' (want host:port); not serving");
        return nullptr;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        logWarn("obs server: socket() failed: ", std::strerror(errno));
        return nullptr;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&sa),
               sizeof(sa)) != 0 ||
        ::listen(fd, 16) != 0) {
        logWarn("obs server: cannot bind '", addr,
                "': ", std::strerror(errno), "; not serving");
        ::close(fd);
        return nullptr;
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                      &len) != 0) {
        logWarn("obs server: getsockname failed: ",
                std::strerror(errno));
        ::close(fd);
        return nullptr;
    }
    std::unique_ptr<ObsServer> server(new ObsServer(engine));
    server->listenFd_ = fd;
    server->port_ = ntohs(bound.sin_port);
    if (const char *linger = std::getenv("TETRIS_OBS_LINGER_MS")) {
        if (int ms = parseEnvInt(linger, 1, 60000))
            server->lingerMs_ = static_cast<uint64_t>(ms);
        else if (!(linger[0] == '0' && linger[1] == '\0'))
            logWarn("ignoring invalid TETRIS_OBS_LINGER_MS='", linger,
                    "' (want ms in [1, 60000])");
    }
    server->thread_ = std::thread([s = server.get()] { s->loop(); });
    logInfo("obs server: serving /metrics /healthz /statusz on port ",
            server->port_);
    return server;
}

ObsServer::~ObsServer()
{
    // The linger window runs before stop_ flips, so the serving
    // thread keeps answering: the engine is still fully alive here
    // (it destroys this server before any of its own members).
    if (lingerMs_ > 0) {
        logInfo("obs server: lingering ", lingerMs_,
                "ms for a final scrape");
        std::this_thread::sleep_for(
            std::chrono::milliseconds(lingerMs_));
    }
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

void
ObsServer::loop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        // Poll with a short timeout instead of blocking in accept():
        // the destructor only has to flip stop_ and join, with no
        // platform-dependent socket-shutdown wakeup dance.
        struct pollfd pfd;
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        // EINTR-retrying poll/accept: a signal aimed at the process
        // (drain, cancellation) must not cost a scrape.
        int r = net::pollRetry(&pfd, 1, 100);
        if (r <= 0)
            continue;
        int fd = net::acceptRetry(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        // A stuck or malicious client must not wedge the serving
        // thread past this request.
        struct timeval tmo;
        tmo.tv_sec = 2;
        tmo.tv_usec = 0;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tmo, sizeof(tmo));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tmo, sizeof(tmo));
        handle(fd);
        ::close(fd);
    }
}

void
ObsServer::handle(int fd)
{
    // Read until the end of the request head (or a sane cap); only
    // the request line matters for an HTTP/1.0 GET.
    std::string req;
    char buf[1024];
    while (req.size() < 8192 &&
           req.find("\r\n\r\n") == std::string::npos &&
           req.find('\n') == std::string::npos) {
        ssize_t n = net::recvRetry(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return;
        req.append(buf, static_cast<size_t>(n));
    }
    const size_t eol = req.find_first_of("\r\n");
    if (eol == std::string::npos)
        return;
    std::istringstream line(req.substr(0, eol));
    std::string method, path;
    line >> method >> path;
    requests_.fetch_add(1, std::memory_order_relaxed);

    if (method != "GET") {
        sendResponse(fd, 405, "Method Not Allowed", "text/plain",
                     "only GET is served\n");
        return;
    }
    if (path == "/metrics") {
        sendResponse(fd, 200, "OK",
                     "text/plain; version=0.0.4; charset=utf-8",
                     formatStatsSnapshot(engine_));
    } else if (path == "/healthz") {
        sendResponse(fd, 200, "OK", "application/json",
                     renderHealthz(engine_));
    } else if (path == "/statusz") {
        sendResponse(fd, 200, "OK", "text/plain; charset=utf-8",
                     renderStatusz(engine_, requestCount()));
    } else {
        sendResponse(fd, 404, "Not Found", "text/plain",
                     "try /metrics, /healthz, or /statusz\n");
    }
}

std::string
obsHttpGet(int port, const std::string &path, int *status)
{
    if (status != nullptr)
        *status = 0;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "";
    struct timeval tmo;
    tmo.tv_sec = 5;
    tmo.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tmo, sizeof(tmo));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tmo, sizeof(tmo));
    struct sockaddr_in sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&sa),
                  sizeof(sa)) != 0) {
        ::close(fd);
        return "";
    }
    const std::string req =
        "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
    net::sendAll(fd, req.data(), req.size());
    std::string resp;
    char buf[4096];
    for (;;) {
        ssize_t n = net::recvRetry(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        resp.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    const size_t sp = resp.find(' ');
    if (status != nullptr && sp != std::string::npos)
        *status = std::atoi(resp.c_str() + sp + 1);
    const size_t body = resp.find("\r\n\r\n");
    return body == std::string::npos ? std::string()
                                     : resp.substr(body + 4);
}

#else // !TETRIS_OBS_HAVE_SOCKETS

std::unique_ptr<ObsServer>
ObsServer::start(const Engine &, const std::string &addr)
{
    logWarn("obs server: no socket support on this platform; "
            "ignoring '", addr, "'");
    return nullptr;
}

ObsServer::~ObsServer() = default;

void
ObsServer::loop()
{
}

void
ObsServer::handle(int)
{
}

std::string
obsHttpGet(int, const std::string &, int *status)
{
    if (status != nullptr)
        *status = 0;
    return "";
}

#endif // TETRIS_OBS_HAVE_SOCKETS

} // namespace tetris
