/**
 * @file
 * Stall watchdog: flags jobs stuck past TETRIS_STALL_MS.
 *
 * A long compile is normal; a compile that never comes back is a
 * bug (or a pathological input) that a batch process only reveals by
 * hanging. The watchdog polls the engine's in-flight job table from
 * its own thread and, the first time a job's elapsed time crosses
 * the threshold, emits the full triple: a `jobs.stalled` counter in
 * the MetricsRegistry (so /metrics alerts can fire), a `stall`
 * record in the structured event log, and a warn-level log line
 * carrying the job name, cache key, and the stage it is stuck in
 * (queued / disk_read / compile / verify / disk_write). Each job is
 * flagged at most once; it keeps running — detection, not
 * preemption, matching the engine's cooperative cancellation model.
 *
 * Armed per engine by EngineOptions::stallMs or TETRIS_STALL_MS
 * (milliseconds; unset = off). The poll interval self-scales to a
 * quarter of the threshold, clamped to [10ms, 1s], so detection
 * latency stays proportional without busy-polling.
 */

#ifndef TETRIS_OBS_WATCHDOG_HH
#define TETRIS_OBS_WATCHDOG_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace tetris
{

class Engine;

class StallWatchdog
{
  public:
    /** Start watching `engine`; `stall_ms` must be > 0. The engine
     *  must outlive the watchdog (it owns and resets it first). */
    StallWatchdog(Engine &engine, uint64_t stall_ms);

    /** Stops and joins the polling thread. */
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog &) = delete;
    StallWatchdog &operator=(const StallWatchdog &) = delete;

    uint64_t stallMs() const { return stallMs_; }

    /** Jobs this watchdog has flagged (mirrors `jobs.stalled`). */
    uint64_t stalledCount() const
    {
        return stalled_.load(std::memory_order_relaxed);
    }

    /**
     * TETRIS_STALL_MS: strict integer milliseconds in
     * [1, 86400000]; unset or 0 disables, anything else warns and
     * disables.
     */
    static uint64_t stallMsFromEnv();

  private:
    void loop();
    void scan();

    Engine &engine_;
    const uint64_t stallMs_;
    std::atomic<uint64_t> stalled_{0};
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace tetris

#endif // TETRIS_OBS_WATCHDOG_HH
