/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the library (synthetic benchmark
 * generation, random graphs, Monte-Carlo noise sampling) draw from an
 * explicitly seeded Rng so that every experiment is reproducible.
 */

#ifndef TETRIS_COMMON_RNG_HH
#define TETRIS_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.hh"

namespace tetris
{

/**
 * A seeded pseudo-random generator with the small set of draw
 * primitives used across the library. Thin wrapper around a 64-bit
 * Mersenne twister; never constructed from global entropy.
 */
class Rng
{
  public:
    /** Construct with an explicit seed. */
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [lo, hi], inclusive. */
    int
    uniformInt(int lo, int hi)
    {
        TETRIS_ASSERT(lo <= hi);
        return std::uniform_int_distribution<int>(lo, hi)(engine_);
    }

    /** Uniform size_t in [0, n). */
    size_t
    index(size_t n)
    {
        TETRIS_ASSERT(n > 0);
        return std::uniform_int_distribution<size_t>(0, n - 1)(engine_);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    bernoulli(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            std::swap(v[i - 1], v[index(i)]);
        }
    }

    /** Sample k distinct indices from [0, n) in random order. */
    std::vector<size_t>
    sampleIndices(size_t n, size_t k)
    {
        TETRIS_ASSERT(k <= n);
        std::vector<size_t> all(n);
        for (size_t i = 0; i < n; ++i)
            all[i] = i;
        shuffle(all);
        all.resize(k);
        return all;
    }

    /** Access the underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace tetris

#endif // TETRIS_COMMON_RNG_HH
