/**
 * @file
 * FNV-1a content hashing helpers.
 *
 * The compile cache keys jobs by a 64-bit content hash of their
 * inputs (Pauli blocks, coupling graph, compiler options). These
 * helpers provide the mixing primitives; each value type exposes a
 * contentHash() built on top of them. Collisions are possible in
 * principle but negligible at cache scale (< 2^20 entries).
 */

#ifndef TETRIS_COMMON_HASH_HH
#define TETRIS_COMMON_HASH_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace tetris
{

/** FNV-1a 64-bit offset basis. */
inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
/** FNV-1a 64-bit prime. */
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Mix a raw byte buffer into a running FNV-1a hash. */
inline uint64_t
fnvMixBytes(uint64_t h, const void *data, size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

/** Mix one trivially-copyable value into a running hash. */
template <typename T>
inline uint64_t
fnvMix(uint64_t h, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "fnvMix needs a trivially copyable value");
    return fnvMixBytes(h, &v, sizeof(T));
}

/** Mix a string (length-prefixed so "ab","c" != "a","bc"). */
inline uint64_t
fnvMixString(uint64_t h, const std::string &s)
{
    h = fnvMix(h, s.size());
    return fnvMixBytes(h, s.data(), s.size());
}

} // namespace tetris

#endif // TETRIS_COMMON_HASH_HH
