#include "common/json.hh"

#include <cmath>
#include <cstdio>

namespace tetris
{

void
JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ += ',';
        hasElement_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    hasElement_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    hasElement_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    hasElement_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (!hasElement_.empty()) {
        if (hasElement_.back())
            out_ += ',';
        hasElement_.back() = true;
    }
    out_ += '"';
    out_ += escape(name);
    out_ += "\":";
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null();
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace tetris
