/**
 * @file
 * Leveled, thread-safe structured logger.
 *
 * One line per event on stderr, with a wall-clock timestamp, the
 * severity, and a small stable per-thread id, so interleaved worker
 * output from a 64-thread sweep is attributable:
 *
 *   [12:34:56.789] warn  t03 disk cache: rename failed for ...
 *
 * The threshold comes from TETRIS_LOG_LEVEL (debug | info | warn |
 * error | off; default warn) and can be overridden programmatically
 * (setLogLevel, used by tests and the future daemon's config).
 * Emission takes one process-wide mutex, so concurrent lines never
 * interleave mid-message; suppressed levels cost a single relaxed
 * atomic load and no formatting.
 *
 * This replaces the ad-hoc warn() stderr writes on the engine and
 * disk-cache paths; panic()/fatal() (common/logging.hh) remain the
 * unconditional abort/exit channels.
 */

#ifndef TETRIS_COMMON_LOG_HH
#define TETRIS_COMMON_LOG_HH

#include <functional>
#include <sstream>
#include <string>

namespace tetris
{

enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Off = 4,
};

/** Current threshold: events below it are dropped unformatted. */
LogLevel logLevel();

/** Override the threshold (wins over TETRIS_LOG_LEVEL). */
void setLogLevel(LogLevel level);

/**
 * Parse a TETRIS_LOG_LEVEL value ("debug".."off", case-sensitive).
 * Sets `ok` and returns the level; `ok` false leaves the default.
 */
LogLevel parseLogLevel(const char *s, bool &ok);

/** True when an event at `level` would currently be emitted. */
bool logEnabled(LogLevel level);

/**
 * Install a tee receiving every emitted log line (level + unformatted
 * message), or nullptr to remove it. The tee runs under the emission
 * mutex — concurrent with nothing, but it must not log (the mutex is
 * not recursive) and should return quickly. One tee at a time; the
 * observability plane uses this to mirror warn+ lines into the
 * structured event log (obs/event_log.hh).
 */
void setLogTee(std::function<void(LogLevel, const std::string &)> tee);

namespace detail
{

/** Format and write one line (threshold already checked). */
void logEmit(LogLevel level, const std::string &message);

} // namespace detail

template <typename... Args>
void
logAt(LogLevel level, Args &&...args)
{
    if (!logEnabled(level))
        return;
    std::ostringstream os;
    (os << ... << args);
    detail::logEmit(level, os.str());
}

template <typename... Args>
void
logDebug(Args &&...args)
{
    logAt(LogLevel::Debug, std::forward<Args>(args)...);
}

template <typename... Args>
void
logInfo(Args &&...args)
{
    logAt(LogLevel::Info, std::forward<Args>(args)...);
}

template <typename... Args>
void
logWarn(Args &&...args)
{
    logAt(LogLevel::Warn, std::forward<Args>(args)...);
}

template <typename... Args>
void
logError(Args &&...args)
{
    logAt(LogLevel::Error, std::forward<Args>(args)...);
}

} // namespace tetris

#endif // TETRIS_COMMON_LOG_HH
