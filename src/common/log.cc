#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include <sys/time.h>

namespace tetris
{

namespace
{

/**
 * The threshold lives in one relaxed atomic so the suppressed-level
 * fast path is a single load. Initialized lazily from the
 * environment on first query.
 */
std::atomic<int> g_level{-1};

int
levelFromEnv()
{
    const char *v = std::getenv("TETRIS_LOG_LEVEL");
    if (v == nullptr || *v == '\0')
        return static_cast<int>(LogLevel::Warn);
    bool ok = false;
    LogLevel parsed = parseLogLevel(v, ok);
    if (!ok) {
        // The logger is not configured yet, so report the bad knob
        // directly; this mirrors the other TETRIS_* env fallbacks.
        std::fprintf(stderr,
                     "warn: ignoring invalid TETRIS_LOG_LEVEL='%s' "
                     "(want debug|info|warn|error|off); using warn\n",
                     v);
        return static_cast<int>(LogLevel::Warn);
    }
    return static_cast<int>(parsed);
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info ";
      case LogLevel::Warn:
        return "warn ";
      case LogLevel::Error:
        return "error";
      case LogLevel::Off:
        break;
    }
    return "?    ";
}

/** Small stable per-thread id for log attribution (not the OS tid). */
int
threadTag()
{
    static std::atomic<int> next{0};
    thread_local int tag = next.fetch_add(1);
    return tag;
}

} // namespace

LogLevel
parseLogLevel(const char *s, bool &ok)
{
    ok = true;
    if (std::strcmp(s, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(s, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(s, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(s, "error") == 0)
        return LogLevel::Error;
    if (std::strcmp(s, "off") == 0)
        return LogLevel::Off;
    ok = false;
    return LogLevel::Warn;
}

LogLevel
logLevel()
{
    int level = g_level.load(std::memory_order_relaxed);
    if (level < 0) {
        level = levelFromEnv();
        // Racing initializers compute the same value; last store wins.
        g_level.store(level, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return level >= logLevel() && level != LogLevel::Off;
}

namespace
{

/** Emission mutex + tee share one guard; see setLogTee(). */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

std::function<void(LogLevel, const std::string &)> &
teeSlot()
{
    static std::function<void(LogLevel, const std::string &)> tee;
    return tee;
}

} // namespace

void
setLogTee(std::function<void(LogLevel, const std::string &)> tee)
{
    std::lock_guard<std::mutex> lock(emitMutex());
    teeSlot() = std::move(tee);
}

namespace detail
{

void
logEmit(LogLevel level, const std::string &message)
{
    // Reentrancy guard: a line emitted from inside the tee would
    // deadlock on the non-recursive emission mutex, so it goes to
    // stderr unteed and unserialized instead of recursing.
    static thread_local bool in_tee = false;

    struct timeval tv;
    ::gettimeofday(&tv, nullptr);
    struct tm tm_buf;
    ::localtime_r(&tv.tv_sec, &tm_buf);

    if (in_tee) {
        std::fprintf(stderr, "[%02d:%02d:%02d.%03d] %s t%02d %s\n",
                     tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                     static_cast<int>(tv.tv_usec / 1000),
                     levelName(level), threadTag(), message.c_str());
        return;
    }

    // One mutex-guarded fprintf per line: concurrent workers never
    // interleave mid-message, and ordering matches wall clock.
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "[%02d:%02d:%02d.%03d] %s t%02d %s\n",
                 tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                 static_cast<int>(tv.tv_usec / 1000), levelName(level),
                 threadTag(), message.c_str());
    // The tee runs under the same mutex so installation/removal never
    // races an emission.
    if (teeSlot()) {
        in_tee = true;
        teeSlot()(level, message);
        in_tee = false;
    }
}

} // namespace detail

} // namespace tetris
