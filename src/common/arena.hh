/**
 * @file
 * Monotonic bump arena for per-job scratch memory.
 *
 * The compiler and synthesizer allocate the same transient buffers
 * (BFS parent/distance arrays, visit marks, work queues) thousands of
 * times per job, all sized by the device qubit count and all dead by
 * the end of the enclosing call. An Arena turns each of those
 * heap round-trips into a pointer bump: memory is carved from
 * geometrically-reused chunks, deallocate is a no-op, and a Frame
 * rewinds the bump pointer on scope exit so the footprint stays at
 * the high-water mark of one call tree instead of growing with the
 * job.
 *
 * Chunk size defaults to 64 KiB and is tunable via TETRIS_ARENA_KB
 * (strict integer in [1, 1048576], same contract as the other
 * TETRIS_* knobs). Allocations larger than one chunk get a dedicated
 * chunk, so no request can fail short of the system allocator
 * failing.
 *
 * Not thread-safe: one Arena belongs to one job/thread, which is
 * exactly the ownership the per-job BlockSynthesizer provides.
 */

#ifndef TETRIS_COMMON_ARENA_HH
#define TETRIS_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/env.hh"
#include "common/log.hh"
#include "common/logging.hh"

namespace tetris
{

class Arena
{
  public:
    /** Position of the bump pointer; see mark()/rewind(). */
    struct Marker
    {
        size_t chunk = 0;
        size_t used = 0;
    };

    explicit Arena(size_t chunk_bytes = resolveChunkBytes())
        : chunkBytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate `bytes` with the given power-of-two alignment. */
    void *allocate(size_t bytes, size_t alignment)
    {
        TETRIS_ASSERT(alignment != 0 &&
                          (alignment & (alignment - 1)) == 0 &&
                          alignment <= alignof(std::max_align_t),
                      "unsupported arena alignment");
        if (bytes == 0)
            bytes = 1;
        // Reuse the active chunk, then any later (rewound) chunk that
        // fits, then grow.
        for (; active_ < chunks_.size(); ++active_) {
            Chunk &c = chunks_[active_];
            const size_t at = alignUp(c.used, alignment);
            if (at + bytes <= c.capacity) {
                c.used = at + bytes;
                return c.data.get() + at;
            }
        }
        const size_t capacity =
            bytes + alignment > chunkBytes_ ? bytes + alignment
                                            : chunkBytes_;
        chunks_.push_back(Chunk{
            std::unique_ptr<unsigned char[]>(new unsigned char[capacity]),
            capacity, 0});
        active_ = chunks_.size() - 1;
        Chunk &c = chunks_.back();
        const size_t at = alignUp(c.used, alignment);
        c.used = at + bytes;
        return c.data.get() + at;
    }

    /** Current bump position, to rewind to later. */
    Marker mark() const { return Marker{active_, currentUsed()}; }

    /**
     * Roll the bump pointer back to `m`, making every allocation
     * since then reusable. Chunks stay owned (no free), so rewound
     * memory is recycled by later allocations.
     */
    void rewind(Marker m)
    {
        if (chunks_.empty())
            return;
        for (size_t i = m.chunk + 1; i < chunks_.size(); ++i)
            chunks_[i].used = 0;
        chunks_[m.chunk].used = m.used;
        active_ = m.chunk;
    }

    /** Rewind everything (chunks stay reserved). */
    void reset() { rewind(Marker{0, 0}); }

    /** Total bytes of chunk capacity held (the footprint). */
    size_t bytesReserved() const
    {
        size_t total = 0;
        for (const Chunk &c : chunks_)
            total += c.capacity;
        return total;
    }

    /**
     * Chunk size from TETRIS_ARENA_KB (strict integer in
     * [1, 1048576] KiB; anything else warns and falls back to the
     * 64 KiB default).
     */
    static size_t resolveChunkBytes()
    {
        if (const char *env = std::getenv("TETRIS_ARENA_KB")) {
            if (int kb = parseEnvInt(env, 1, 1 << 20))
                return static_cast<size_t>(kb) * 1024;
            logWarn("ignoring invalid TETRIS_ARENA_KB='", env,
                    "' (want an integer in [1, 1048576]); using the "
                    "64 KiB default");
        }
        return kDefaultChunkBytes;
    }

    /**
     * RAII rewind scope: everything allocated while the Frame lives
     * is recycled when it dies. Arena-backed containers must not
     * outlive the Frame they were allocated under.
     */
    class Frame
    {
      public:
        explicit Frame(Arena &arena)
            : arena_(arena), marker_(arena.mark())
        {
        }
        ~Frame() { arena_.rewind(marker_); }

        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

      private:
        Arena &arena_;
        Marker marker_;
    };

  private:
    static constexpr size_t kDefaultChunkBytes = 64 * 1024;

    struct Chunk
    {
        std::unique_ptr<unsigned char[]> data;
        size_t capacity;
        size_t used;
    };

    static size_t alignUp(size_t n, size_t alignment)
    {
        return (n + alignment - 1) & ~(alignment - 1);
    }

    size_t currentUsed() const
    {
        return active_ < chunks_.size() ? chunks_[active_].used : 0;
    }

    size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    size_t active_ = 0;
};

/**
 * Minimal std allocator over an Arena, for scratch containers
 * (std::vector<int, ArenaAllocator<int>> etc.). Deallocation is a
 * no-op — pair containers with an Arena::Frame for reuse.
 */
template <typename T> class ArenaAllocator
{
  public:
    using value_type = T;

    explicit ArenaAllocator(Arena &arena) : arena_(&arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena_(other.arena())
    {
    }

    T *allocate(size_t n)
    {
        return static_cast<T *>(
            arena_->allocate(n * sizeof(T), alignof(T)));
    }

    void deallocate(T *, size_t) {}

    Arena *arena() const { return arena_; }

    friend bool operator==(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return a.arena_ == b.arena_;
    }
    friend bool operator!=(const ArenaAllocator &a, const ArenaAllocator &b)
    {
        return !(a == b);
    }

  private:
    Arena *arena_;
};

} // namespace tetris

#endif // TETRIS_COMMON_ARENA_HH
