#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS

#include <cerrno>

namespace tetris::net
{

namespace
{

#if defined(MSG_NOSIGNAL)
constexpr int kNoSigPipe = MSG_NOSIGNAL;
#else
constexpr int kNoSigPipe = 0;
#endif

} // namespace

int
acceptRetry(int listen_fd, struct sockaddr *addr, socklen_t *len)
{
    for (;;) {
        int fd = ::accept(listen_fd, addr, len);
        if (fd >= 0)
            return fd;
        if (errno == EINTR || errno == ECONNABORTED)
            continue;
        return -1;
    }
}

ssize_t
recvRetry(int fd, void *buf, size_t len, int flags)
{
    for (;;) {
        ssize_t n = ::recv(fd, buf, len, flags);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

ssize_t
sendRetry(int fd, const void *buf, size_t len, int flags)
{
    for (;;) {
        ssize_t n = ::send(fd, buf, len, flags);
        if (n >= 0 || errno != EINTR)
            return n;
    }
}

int
pollRetry(struct pollfd *fds, nfds_t nfds, int timeout_ms)
{
    for (;;) {
        int r = ::poll(fds, nfds, timeout_ms);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

bool
sendAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < len) {
        ssize_t n = sendRetry(fd, p + off, len - off, kNoSigPipe);
        if (n <= 0)
            return false; // peer gone or send timeout
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
recvAll(int fd, void *data, size_t len)
{
    char *p = static_cast<char *>(data);
    size_t off = 0;
    while (off < len) {
        ssize_t n = recvRetry(fd, p + off, len - off, 0);
        if (n <= 0)
            return false; // EOF, error, or receive timeout
        off += static_cast<size_t>(n);
    }
    return true;
}

} // namespace tetris::net

#endif // TETRIS_HAVE_SOCKETS
