/**
 * @file
 * Compiler code-version stamp.
 *
 * The persistent artifact store (engine/disk_cache.hh) keys entries
 * by Engine::jobKey, which hashes only a job's *inputs* (pipeline id,
 * options, device, blocks). That key cannot see changes to the
 * compiler code itself, so without an extra stamp a store populated
 * by an older build would keep serving artifacts that the current
 * algorithms would no longer produce.
 *
 * kTetrisAbiVersion is that stamp: Engine::jobKey mixes it into every
 * cache key. Bump it in the same change whenever any pipeline's
 * output for unchanged inputs changes (scheduler ordering, synthesis
 * emission, peephole rules, routing, serialization semantics...).
 * Old .tca artifacts then simply stop matching and age out via the
 * store's LRU trim; no manual `cache_tool.py clear` needed.
 */

#ifndef TETRIS_COMMON_VERSION_HH
#define TETRIS_COMMON_VERSION_HH

#include <cstdint>

namespace tetris
{

/** Compile-output ABI generation. History:
 *   1  PR 3 store bring-up (implicit, pre-stamp)
 *   2  PR 4 stamp introduced; keys diverge from the unstamped era
 */
inline constexpr uint32_t kTetrisAbiVersion = 2;

} // namespace tetris

#endif // TETRIS_COMMON_VERSION_HH
