/**
 * @file
 * EINTR-hardened POSIX socket helpers.
 *
 * Every blocking socket syscall in this repository goes through these
 * wrappers. The contract they fix: a syscall interrupted by a signal
 * (EINTR) is *retried*, never treated as a peer failure. That matters
 * for any resident process — tetrisd fields SIGTERM for its graceful
 * drain, bench binaries field SIGINT for cancellation — where a
 * signal landing mid-accept() or mid-recv() must not drop a request,
 * truncate a response, or lose a metrics scrape. (Before these
 * helpers existed, the obs server's accept/recv/send loops treated
 * EINTR as fatal; see src/obs/obs_server.cc history.)
 *
 * All helpers are thin: no buffering, no ownership, no timeouts of
 * their own (callers set SO_RCVTIMEO/SO_SNDTIMEO or poll first). A
 * receive timeout surfaces as EAGAIN/EWOULDBLOCK, which the *All
 * variants report as a short transfer so a stuck peer still cannot
 * wedge a serving thread forever.
 *
 * Only compiled on POSIX platforms (TETRIS_HAVE_SOCKETS); the obs
 * and serve layers carry their own no-socket stubs.
 */

#ifndef TETRIS_COMMON_NET_HH
#define TETRIS_COMMON_NET_HH

#if defined(__unix__) || defined(__APPLE__)
#define TETRIS_HAVE_SOCKETS 1
#else
#define TETRIS_HAVE_SOCKETS 0
#endif

#if TETRIS_HAVE_SOCKETS

#include <cstddef>

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace tetris::net
{

/**
 * accept(2) retrying on EINTR. Also retries the transient
 * per-connection errors a listener must shrug off (ECONNABORTED).
 * Returns the connected fd, or -1 with errno set on a real failure.
 */
int acceptRetry(int listen_fd, struct sockaddr *addr, socklen_t *len);

/** recv(2) retrying on EINTR. Semantics of recv otherwise. */
ssize_t recvRetry(int fd, void *buf, size_t len, int flags);

/** send(2) retrying on EINTR. Semantics of send otherwise. */
ssize_t sendRetry(int fd, const void *buf, size_t len, int flags);

/** poll(2) retrying on EINTR (the timeout is not re-armed exactly,
 *  which every caller here — periodic wakeup loops — tolerates). */
int pollRetry(struct pollfd *fds, nfds_t nfds, int timeout_ms);

/**
 * Write exactly `len` bytes. Retries EINTR and short writes; sends
 * with MSG_NOSIGNAL where available so a dead peer yields EPIPE, not
 * a process-killing SIGPIPE. Returns false if the peer went away or
 * the send timeout expired before everything was written.
 */
bool sendAll(int fd, const void *data, size_t len);

/**
 * Read exactly `len` bytes. Retries EINTR and short reads. Returns
 * false on EOF, error, or receive timeout before `len` arrived —
 * the caller cannot distinguish a truncated message from a closed
 * peer, and never needs to: both mean "this conversation is over".
 */
bool recvAll(int fd, void *data, size_t len);

} // namespace tetris::net

#endif // TETRIS_HAVE_SOCKETS

#endif // TETRIS_COMMON_NET_HH
