/**
 * @file
 * Aligned console table and CSV emission.
 *
 * The benchmark harness regenerates the paper's tables and figure data
 * as text. TablePrinter renders a column-aligned table on stdout and
 * can additionally persist the same rows as CSV for plotting.
 */

#ifndef TETRIS_COMMON_TABLE_HH
#define TETRIS_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace tetris
{

/**
 * Collects rows of string cells and prints them with aligned columns.
 * All numeric formatting is done by the caller (see formatCount /
 * formatPercent helpers) so the table itself stays dumb.
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to stdout. */
    void print() const;

    /** Write the table as CSV to the given path. Returns success. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a count like the paper: 8064, "21.1k", "130.9M". */
std::string formatCount(double v);

/** Format a signed percentage with one decimal, e.g. "-31.3%". */
std::string formatPercent(double fraction);

/** Format a plain double with the given precision. */
std::string formatDouble(double v, int precision = 3);

} // namespace tetris

#endif // TETRIS_COMMON_TABLE_HH
