/**
 * @file
 * Fixed-bucket log2 histogram for latency distributions.
 *
 * 64 power-of-two buckets over uint64 samples (nanoseconds in
 * practice): bucket 0 holds the value 0, bucket i (i >= 1) holds
 * [2^(i-1), 2^i - 1]. Recording is wait-free — one relaxed
 * fetch_add per counter — so worker threads can feed a shared
 * histogram with no mutex; reads (percentiles, snapshots, JSON) are
 * approximate under concurrent writes, exact once writers quiesce.
 *
 * Percentiles are conservative upper bounds: percentile(p) returns
 * the upper edge of the bucket containing the rank-p sample, so the
 * reported p99 is within one power of two of the true value and is a
 * pure function of the bucket counts. That makes the value stable
 * across serialization: recomputing a percentile from the bucket
 * array a JSON snapshot carries reproduces the emitted number
 * exactly (tested in test_engine.cc).
 */

#ifndef TETRIS_COMMON_HISTOGRAM_HH
#define TETRIS_COMMON_HISTOGRAM_HH

#include <atomic>
#include <bit>
#include <cstdint>

namespace tetris
{

class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    /** Snapshot of the derived statistics, safe to copy around. */
    struct Snapshot
    {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t max = 0;
        uint64_t p50 = 0;
        uint64_t p90 = 0;
        uint64_t p99 = 0;
    };

    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one sample. Wait-free; callable from any thread. */
    void record(uint64_t value)
    {
        buckets_[bucketIndex(value)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (value > prev &&
               !max_.compare_exchange_weak(prev, value,
                                           std::memory_order_relaxed)) {
        }
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }

    uint64_t bucketCount(int i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /**
     * Upper bound of the bucket holding the p-quantile sample
     * (p in [0, 1]); 0 when the histogram is empty. Depends only on
     * the bucket counts, never on max(), so it survives a
     * bucket-array round trip bit-exactly.
     */
    uint64_t percentile(double p) const
    {
        uint64_t total = 0;
        uint64_t counts[kBuckets];
        for (int i = 0; i < kBuckets; ++i) {
            counts[i] = bucketCount(i);
            total += counts[i];
        }
        if (total == 0)
            return 0;
        if (p < 0.0)
            p = 0.0;
        if (p > 1.0)
            p = 1.0;
        // Rank of the requested quantile, 1-based; p=0 means the
        // smallest recorded sample.
        uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
        if (rank < 1)
            rank = 1;
        if (rank > total)
            rank = total;
        uint64_t seen = 0;
        for (int i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen >= rank)
                return bucketUpperBound(i);
        }
        return bucketUpperBound(kBuckets - 1);
    }

    Snapshot snapshot() const
    {
        Snapshot s;
        s.count = count();
        s.sum = sum();
        s.max = max();
        s.p50 = percentile(0.50);
        s.p90 = percentile(0.90);
        s.p99 = percentile(0.99);
        return s;
    }

    /** Fold another histogram's samples into this one. */
    void merge(const Histogram &other)
    {
        for (int i = 0; i < kBuckets; ++i) {
            uint64_t n = other.bucketCount(i);
            if (n != 0)
                buckets_[i].fetch_add(n, std::memory_order_relaxed);
        }
        count_.fetch_add(other.count(), std::memory_order_relaxed);
        sum_.fetch_add(other.sum(), std::memory_order_relaxed);
        uint64_t om = other.max();
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (om > prev &&
               !max_.compare_exchange_weak(prev, om,
                                           std::memory_order_relaxed)) {
        }
    }

    void clear()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

    /** Bucket of a sample: 0 for 0, else bit_width clamped to 63. */
    static int bucketIndex(uint64_t value)
    {
        if (value == 0)
            return 0;
        int w = std::bit_width(value);
        return w >= kBuckets ? kBuckets - 1 : w;
    }

    /** Largest sample bucket i can hold (2^i - 1; top bucket: max). */
    static uint64_t bucketUpperBound(int i)
    {
        if (i <= 0)
            return 0;
        if (i >= kBuckets - 1)
            return UINT64_MAX;
        return (uint64_t{1} << i) - 1;
    }

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

} // namespace tetris

#endif // TETRIS_COMMON_HISTOGRAM_HH
