#include "common/table.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace tetris
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    TETRIS_ASSERT(cells.size() == headers_.size(),
                  "row arity mismatch: ", cells.size(), " vs ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print() const
{
    std::vector<size_t> width(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            std::printf("%-*s", static_cast<int>(width[c] + 2),
                        row[c].c_str());
        }
        std::printf("\n");
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

bool
TablePrinter::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;

    auto write_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << row[c];
        }
        out << '\n';
    };
    write_row(headers_);
    for (const auto &row : rows_)
        write_row(row);
    return true;
}

std::string
formatCount(double v)
{
    char buf[64];
    double a = std::fabs(v);
    if (a >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.1fM", v / 1e6);
    } else if (a >= 1e4) {
        std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    }
    return buf;
}

std::string
formatPercent(double fraction)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

std::string
formatDouble(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace tetris
