/**
 * @file
 * Environment-variable parsing helpers.
 *
 * The tuning knobs (TETRIS_ENGINE_THREADS, TETRIS_CACHE_SHARDS, ...)
 * share one strictness contract: the whole value, modulo surrounding
 * whitespace, must be a decimal integer inside the knob's range, and
 * anything else is rejected so the caller falls back to its derived
 * default instead of trusting whatever atoi() would have yielded.
 */

#ifndef TETRIS_COMMON_ENV_HH
#define TETRIS_COMMON_ENV_HH

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace tetris
{

/**
 * Strict bounded parse of an environment value: the entire string
 * (leading whitespace per strtol, trailing spaces/tabs tolerated)
 * must be a decimal integer in [min_value, max_value]. Returns 0 on
 * anything else — garbage, trailing junk ("8abc"), out-of-range,
 * overflow — so callers use 0 as the "fall back" sentinel
 * (min_value must therefore be >= 1).
 */
inline int
parseEnvInt(const char *s, int min_value, int max_value)
{
    TETRIS_ASSERT(min_value >= 1, "0 is the rejection sentinel");
    errno = 0;
    char *end = nullptr;
    long n = std::strtol(s, &end, 10);
    if (end == s || errno == ERANGE)
        return 0;
    while (*end == ' ' || *end == '\t')
        ++end;
    if (*end != '\0')
        return 0;
    if (n < min_value || n > max_value)
        return 0;
    return static_cast<int>(n);
}

} // namespace tetris

#endif // TETRIS_COMMON_ENV_HH
