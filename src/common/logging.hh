/**
 * @file
 * Error and status reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for unrecoverable user errors
 * (bad configuration or input), warn() is advisory only.
 */

#ifndef TETRIS_COMMON_LOGGING_HH
#define TETRIS_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// The library relies on C++20 (defaulted operator== in
// hardware/layout.hh, designated initializers, etc.). Fail the build
// here, with a readable message, instead of deep inside a template.
// MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus is set, so
// check its _MSVC_LANG instead.
#if defined(_MSVC_LANG)
static_assert(_MSVC_LANG >= 202002L,
              "tetris requires C++20: configure with "
              "CMAKE_CXX_STANDARD=20 (the bundled CMakeLists.txt "
              "already does) or pass /std:c++20");
#else
static_assert(__cplusplus >= 202002L,
              "tetris requires C++20: configure with "
              "CMAKE_CXX_STANDARD=20 (the bundled CMakeLists.txt "
              "already does) or pass -std=c++20");
#endif

namespace tetris
{

namespace detail
{

/** Compose a message from stream-style arguments. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Abort because an internal invariant was violated. Use for conditions
 * that indicate a bug in this library, never for user input errors.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::composeMessage(std::forward<Args>(args)...).c_str());
    std::abort();
}

/**
 * Exit because the computation cannot continue due to a user-side
 * condition (invalid arguments, inconsistent configuration).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::composeMessage(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Print a non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::composeMessage(std::forward<Args>(args)...).c_str());
}

/** Panic if a condition does not hold. Active in all build types. */
#define TETRIS_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tetris::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, " ", ##__VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace tetris

#endif // TETRIS_COMMON_LOGGING_HH
