/**
 * @file
 * Error and status reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for unrecoverable user errors
 * (bad configuration or input), warn() is advisory only.
 */

#ifndef TETRIS_COMMON_LOGGING_HH
#define TETRIS_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tetris
{

namespace detail
{

/** Compose a message from stream-style arguments. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/**
 * Abort because an internal invariant was violated. Use for conditions
 * that indicate a bug in this library, never for user input errors.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::composeMessage(std::forward<Args>(args)...).c_str());
    std::abort();
}

/**
 * Exit because the computation cannot continue due to a user-side
 * condition (invalid arguments, inconsistent configuration).
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::composeMessage(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Print a non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::composeMessage(std::forward<Args>(args)...).c_str());
}

/** Panic if a condition does not hold. Active in all build types. */
#define TETRIS_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tetris::panic("assertion '", #cond, "' failed at ",           \
                            __FILE__, ":", __LINE__, " ", ##__VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace tetris

#endif // TETRIS_COMMON_LOGGING_HH
