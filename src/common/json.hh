/**
 * @file
 * Minimal JSON emission.
 *
 * A streaming writer sufficient for the machine-readable artifacts
 * this repo produces (bench trajectories, engine metrics, compile
 * stats). No parsing, no DOM — just correctly escaped, correctly
 * comma-separated output. Doubles are emitted with enough precision
 * to round-trip; non-finite doubles become null.
 */

#ifndef TETRIS_COMMON_JSON_HH
#define TETRIS_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tetris
{

class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** The serialized document so far. */
    const std::string &str() const { return out_; }

    static std::string escape(const std::string &s);

  private:
    void beforeValue();

    std::string out_;
    /** Per-open-container flag: true once it holds an element. */
    std::vector<bool> hasElement_;
    bool pendingKey_ = false;
};

} // namespace tetris

#endif // TETRIS_COMMON_JSON_HH
