#include "core/pipeline.hh"

#include <utility>

#include "common/hash.hh"
#include "common/logging.hh"
#include "core/pipeline_adapters.hh"

namespace tetris
{

namespace
{

/**
 * The one concrete Pipeline: a registry id, a captured compile
 * callable, and a precomputed options hash. Every built-in adapter
 * is an instance of this with the entry-point options bound in.
 */
class BoundPipeline final : public Pipeline
{
  public:
    using RunFn = std::function<CompileResult(
        const std::vector<PauliBlock> &, const CouplingGraph &)>;

    BoundPipeline(std::string id, uint64_t options_hash, RunFn run)
        : id_(std::move(id)), optionsHash_(options_hash),
          run_(std::move(run))
    {
    }

    const std::string &name() const override { return id_; }

    CompileResult
    run(const std::vector<PauliBlock> &blocks,
        const CouplingGraph &hw) const override
    {
        return run_(blocks, hw);
    }

    uint64_t optionsHash() const override { return optionsHash_; }

  private:
    std::string id_;
    uint64_t optionsHash_;
    RunFn run_;
};

uint64_t
optionsContentHash(const PaulihedralOptions &opts)
{
    return fnvMix(kFnvOffset, opts.runPeephole);
}

uint64_t
optionsContentHash(const NaiveOptions &opts)
{
    return fnvMix(kFnvOffset, opts.route);
}

uint64_t
optionsContentHash(const MaxCancelOptions &opts)
{
    uint64_t h = fnvMix(kFnvOffset, opts.route);
    return fnvMix(h, opts.logicalPeephole);
}

} // namespace

uint64_t
optionsContentHash(const QaoaPassOptions &opts)
{
    uint64_t h = fnvMix(kFnvOffset, opts.swapBenefitThreshold);
    h = fnvMix(h, opts.enableBridging);
    h = fnvMix(h, opts.enableQubitReuse);
    return fnvMix(h, opts.runPeephole);
}

PipelinePtr
makeTetrisPipeline(TetrisOptions opts)
{
    return std::make_shared<BoundPipeline>(
        "tetris", optionsContentHash(opts),
        [opts](const std::vector<PauliBlock> &blocks,
               const CouplingGraph &hw) {
            return compileTetris(blocks, hw, opts);
        });
}

PipelinePtr
makePaulihedralPipeline(PaulihedralOptions opts)
{
    return std::make_shared<BoundPipeline>(
        "paulihedral", optionsContentHash(opts),
        [opts](const std::vector<PauliBlock> &blocks,
               const CouplingGraph &hw) {
            return compilePaulihedral(blocks, hw, opts);
        });
}

PipelinePtr
makeTketPipeline(TketFlavor flavor)
{
    return std::make_shared<BoundPipeline>(
        flavor == TketFlavor::O2 ? "tket-o2" : "tket-o3",
        fnvMix(kFnvOffset, static_cast<int>(flavor)),
        [flavor](const std::vector<PauliBlock> &blocks,
                 const CouplingGraph &hw) {
            return compileTketProxy(blocks, hw, flavor);
        });
}

PipelinePtr
makePcoastPipeline()
{
    return std::make_shared<BoundPipeline>(
        "pcoast", kFnvOffset,
        [](const std::vector<PauliBlock> &blocks,
           const CouplingGraph &hw) {
            return compilePcoastProxy(blocks, hw);
        });
}

PipelinePtr
makeNaivePipeline(NaiveOptions opts)
{
    return std::make_shared<BoundPipeline>(
        "naive", optionsContentHash(opts),
        [opts](const std::vector<PauliBlock> &blocks,
               const CouplingGraph &hw) {
            return compileNaive(blocks, hw, opts);
        });
}

PipelinePtr
makeMaxCancelPipeline(MaxCancelOptions opts)
{
    return std::make_shared<BoundPipeline>(
        "max-cancel", optionsContentHash(opts),
        [opts](const std::vector<PauliBlock> &blocks,
               const CouplingGraph &hw) {
            return compileMaxCancel(blocks, hw, opts);
        });
}

PipelinePtr
makeQaoa2qanPipeline()
{
    return std::make_shared<BoundPipeline>(
        "qaoa-2qan", kFnvOffset,
        [](const std::vector<PauliBlock> &blocks,
           const CouplingGraph &hw) {
            return compile2qanProxy(blocks, hw);
        });
}

PipelinePtr
makeQaoaBridgePipeline(QaoaPassOptions opts)
{
    return std::make_shared<BoundPipeline>(
        "qaoa-bridge", optionsContentHash(opts),
        [opts](const std::vector<PauliBlock> &blocks,
               const CouplingGraph &hw) {
            return compileQaoaTetris(blocks, hw, opts);
        });
}

PipelinePtr
defaultPipeline()
{
    static const PipelinePtr pipeline = makeTetrisPipeline();
    return pipeline;
}

PipelineRegistry::PipelineRegistry()
{
    factories_["tetris"] = [] { return makeTetrisPipeline(); };
    factories_["paulihedral"] = [] { return makePaulihedralPipeline(); };
    factories_["tket-o2"] = [] {
        return makeTketPipeline(TketFlavor::O2);
    };
    factories_["tket-o3"] = [] {
        return makeTketPipeline(TketFlavor::QiskitO3);
    };
    factories_["pcoast"] = [] { return makePcoastPipeline(); };
    factories_["naive"] = [] { return makeNaivePipeline(); };
    factories_["max-cancel"] = [] { return makeMaxCancelPipeline(); };
    factories_["qaoa-2qan"] = [] { return makeQaoa2qanPipeline(); };
    factories_["qaoa-bridge"] = [] { return makeQaoaBridgePipeline(); };
}

PipelineRegistry &
PipelineRegistry::instance()
{
    static PipelineRegistry registry;
    return registry;
}

void
PipelineRegistry::add(const std::string &id, Factory factory)
{
    TETRIS_ASSERT(factory != nullptr, "null pipeline factory");
    std::lock_guard<std::mutex> lock(mutex_);
    if (!factories_.emplace(id, std::move(factory)).second)
        fatal("pipeline '", id, "' is already registered");
}

bool
PipelineRegistry::contains(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(id) > 0;
}

PipelinePtr
PipelineRegistry::create(const std::string &id) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = factories_.find(id);
        if (it == factories_.end()) {
            std::string known;
            for (const auto &[known_id, f] : factories_)
                known += (known.empty() ? "" : ", ") + known_id;
            fatal("unknown pipeline '", id, "' (known: ", known, ")");
        }
        factory = it->second;
    }
    PipelinePtr pipeline = factory();
    TETRIS_ASSERT(pipeline != nullptr, "factory for '", id,
                  "' returned null");
    return pipeline;
}

std::vector<std::string>
PipelineRegistry::ids() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[id, factory] : factories_)
        out.push_back(id);
    return out;
}

} // namespace tetris
