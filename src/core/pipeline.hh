/**
 * @file
 * The pluggable compiler-pipeline registry.
 *
 * Every compiler stack the evaluation compares -- Tetris, the
 * Paulihedral / T|Ket> / PCOAST / 2QAN proxies, the naive and
 * max-cancel bounds, and the QAOA bridging pass -- sits behind one
 * Pipeline interface: name() (the registry id), run() (blocks +
 * device -> CompileResult), and optionsHash() (an FNV content hash
 * of every knob that changes the output). The batch engine dispatches
 * CompileJobs through this interface and keys its compile cache on
 * (name, optionsHash, blocks, device), so jobs for different
 * compilers over identical inputs can never alias.
 *
 * PipelineRegistry maps string ids to factories producing
 * default-configured instances; the make*Pipeline() helpers in
 * core/pipeline_adapters.hh build configured ones. Registering a new
 * compiler takes one factory registration -- no engine or
 * bench-harness changes (see the README "Pipeline registry"
 * section). This header is deliberately free of baselines/
 * dependencies so the engine layer stays decoupled from the
 * individual compiler stacks.
 */

#ifndef TETRIS_CORE_PIPELINE_HH
#define TETRIS_CORE_PIPELINE_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/**
 * One compiler stack: a named, immutably-configured transformation
 * from (Pauli blocks, device) to a compiled circuit. Instances are
 * stateless across run() calls and safe to share between threads.
 */
class Pipeline
{
  public:
    virtual ~Pipeline() = default;

    /** Registry id ("tetris", "paulihedral", ...). */
    virtual const std::string &name() const = 0;

    /** Compile `blocks` for `hw` with this pipeline's options. */
    virtual CompileResult run(const std::vector<PauliBlock> &blocks,
                              const CouplingGraph &hw) const = 0;

    /**
     * Content hash of every option that influences run()'s output.
     * Two instances of the same pipeline hashing equal compile
     * equally; the engine mixes this (plus name()) into its cache
     * key.
     */
    virtual uint64_t optionsHash() const = 0;
};

using PipelinePtr = std::shared_ptr<const Pipeline>;

/**
 * Process-wide map from pipeline id to factory. The built-in
 * pipelines are registered on first access; add() plugs in new ones
 * (e.g. from downstream code) under fresh ids.
 */
class PipelineRegistry
{
  public:
    using Factory = std::function<PipelinePtr()>;

    static PipelineRegistry &instance();

    /** Register a factory under `id` (fatal on duplicates). */
    void add(const std::string &id, Factory factory);

    bool contains(const std::string &id) const;

    /** Instantiate the default-configured `id` (fatal if unknown). */
    PipelinePtr create(const std::string &id) const;

    /** All registered ids, sorted. */
    std::vector<std::string> ids() const;

  private:
    PipelineRegistry(); // registers the built-ins below

    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/**
 * The shared default-configured Tetris instance -- what a CompileJob
 * runs when no pipeline is set explicitly.
 */
PipelinePtr defaultPipeline();

} // namespace tetris

#endif // TETRIS_CORE_PIPELINE_HH
