/**
 * @file
 * Tetris-IR: the refined Pauli-string block representation.
 *
 * A TetrisBlock annotates a PauliBlock with the root-tree-qubit-set
 * and leaf-tree-qubit-set split (Sec. IV-A of the paper) plus the
 * derived quantities the scheduler needs (active length, leaf
 * operators, the Eq. 1 similarity). The textual rendering follows
 * Fig. 6: qubits reordered root-first, the common section lower-case
 * and elided on interior strings.
 */

#ifndef TETRIS_CORE_TETRIS_IR_HH
#define TETRIS_CORE_TETRIS_IR_HH

#include <string>
#include <vector>

#include "pauli/pauli_block.hh"

namespace tetris
{

/** A Pauli block with its root/leaf qubit-set split. */
class TetrisBlock
{
  public:
    /** Derive root and leaf sets from the block's common operators. */
    explicit TetrisBlock(PauliBlock block);

    const PauliBlock &block() const { return block_; }
    size_t numStrings() const { return block_.size(); }

    /** Qubits whose operator differs across strings (root set). */
    const std::vector<size_t> &rootSet() const { return rootSet_; }

    /** Qubits with one common operator across all strings (leaf set). */
    const std::vector<size_t> &leafSet() const { return leafSet_; }

    /** The shared operator on a leaf qubit. */
    PauliOp leafOp(size_t qubit) const;

    /** Union-support size (the scheduler's active length). */
    size_t activeLength() const { return activeLength_; }

    /**
     * True when every string has a non-identity operator on every
     * root qubit; the block-level cancellation emission requires
     * this (always holds for UCCSD and QAOA inputs; the compiler
     * falls back to per-string synthesis otherwise).
     */
    bool hasUniformRootSupport() const;

    /** Render the block in Tetris-IR text form (Fig. 6 style). */
    std::string toText() const;

  private:
    PauliBlock block_;
    std::vector<size_t> rootSet_;
    std::vector<size_t> leafSet_;
    size_t activeLength_;
};

/**
 * Eq. 1: |C| / (|LT1| + |LT2| - |C|) where C counts leaf qubits the
 * two blocks share with identical operators.
 */
double blockSimilarity(const TetrisBlock &a, const TetrisBlock &b);

/** Wrap a list of Pauli blocks into TetrisBlocks. */
std::vector<TetrisBlock> buildTetrisIr(const std::vector<PauliBlock> &);

/**
 * Tetris-IR-recursive enabler (the paper's Sec. IV-B1 "future
 * work"): reorder the strings of a block so consecutive strings
 * share as many operators as possible (greedy nearest-neighbor
 * chain). The block-level root/leaf split is order-independent, but
 * the recursive cancellation opportunities between consecutive
 * strings -- harvested by the peephole pass on the re-emitted root
 * section -- grow with consecutive similarity.
 */
PauliBlock reorderForConsecutiveSimilarity(const PauliBlock &block);

} // namespace tetris

#endif // TETRIS_CORE_TETRIS_IR_HH
