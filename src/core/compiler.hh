/**
 * @file
 * The Tetris compiler facade: scheduling + synthesis + peephole.
 *
 * compileTetris() drives the full paper pipeline over a list of
 * Pauli blocks: block scheduling (active-length start, similarity
 * top-K lookahead with SWAP-cost tie-break — Sec. V-B), per-block
 * hardware-aware synthesis with structural 2Q cancellation and
 * bridging (Sec. V-A), and the peephole pass standing in for Qiskit
 * O3. Scheduler/options knobs expose every ablation the evaluation
 * section sweeps (lookahead K, SWAP weight w, bridging, O3 on/off).
 */

#ifndef TETRIS_CORE_COMPILER_HH
#define TETRIS_CORE_COMPILER_HH

#include <cstdint>
#include <vector>

#include "circuit/circuit.hh"
#include "core/synthesis.hh"
#include "core/tetris_ir.hh"
#include "hardware/coupling_graph.hh"
#include "hardware/layout.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Block scheduling policies. */
enum class SchedulerKind
{
    /** Compile blocks in the order given. */
    InputOrder,
    /** Sort blocks lexicographically (Paulihedral-style ordering). */
    Lexicographic,
    /** The paper's similarity top-K lookahead scheduler. */
    Lookahead,
};

/** All user-facing compiler knobs. */
struct TetrisOptions
{
    SynthesisOptions synthesis;
    SchedulerKind scheduler = SchedulerKind::Lookahead;
    /** Candidate-set size K of the lookahead scheduler. */
    int lookaheadK = 10;
    /** Run the peephole ("Qiskit O3") pass after synthesis. */
    bool runPeephole = true;
    /**
     * Seed placement: logical->physical mapping the compilation
     * starts from (entries of -1 leave the qubit unplaced). Empty
     * (the default) starts from the identity placement. The
     * streaming frontend chains chunks with this: chunk N starts
     * from chunk N-1's final layout, so no movement is needed
     * between chunk circuits. Must be an injective map into
     * [0, hw.numQubits()); part of the options content hash (and
     * therefore of the compile-cache key).
     */
    std::vector<int> initialLayout;
    /**
     * Extension (the paper's Tetris-IR-recursive future work):
     * reorder strings within each block for maximal consecutive
     * similarity before synthesis, increasing the recursive
     * cancellation the peephole can harvest. Applied only to blocks
     * whose strings mutually commute (semantics-preserving); this
     * covers all UCCSD and QAOA workloads.
     */
    bool reorderStringsInBlock = true;
};

/** Metrics of one compilation (paper Sec. VI-A definitions). */
struct CompileStats
{
    size_t cnotCount = 0;      ///< CX + 3 per SWAP, final circuit.
    size_t oneQubitCount = 0;  ///< All 1Q gates, final circuit.
    size_t totalGateCount = 0; ///< cnotCount + oneQubitCount.
    size_t depth = 0;          ///< SWAP = 3 layers.
    double durationDt = 0.0;   ///< Critical path in dt.
    size_t swapCount = 0;      ///< SWAPs surviving in the circuit.
    size_t swapCnots = 0;      ///< 3 * swapCount.
    size_t logicalCnots = 0;   ///< cnotCount - swapCnots.
    size_t originalCnots = 0;  ///< Naive per-string chain CNOTs.
    double cancelRatio = 0.0;  ///< (original - logical) / original.
    double compileSeconds = 0.0;
    /** Scheduler time: ranking + cost estimation (not synthesis). */
    double scheduleSeconds = 0.0;
    /** Time inside per-block synthesis. */
    double synthSeconds = 0.0;
    /** Time inside the peephole ("O3") pass. */
    double peepholeSeconds = 0.0;
    SynthStats synthesis;
};

/** Output of a compilation. */
struct CompileResult
{
    Circuit circuit; ///< Physical circuit on hw.numQubits() wires.
    CompileStats stats;
    /**
     * The placement the circuit assumes at its input. Default
     * constructed (numPhysical() == 0) means identity: logical wire
     * l enters on physical wire l, the contract of every
     * non-streamed compilation. Streamed chunks seeded from a
     * previous chunk's final layout record that seed here, and the
     * verifier checks against it.
     */
    Layout initialLayout;
    Layout finalLayout;
    std::vector<size_t> blockOrder; ///< Scheduled block indices.
    /**
     * True when the engine abandoned the job before compiling it
     * (Engine::cancelPending); all other fields are empty/zero then.
     */
    bool cancelled = false;
};

/** Compile a block list for a device with the Tetris pipeline. */
CompileResult compileTetris(const std::vector<PauliBlock> &blocks,
                            const CouplingGraph &hw,
                            const TetrisOptions &opts = TetrisOptions());

/** Number of logical qubits a block list is defined over. */
int blocksNumQubits(const std::vector<PauliBlock> &blocks);

/** Fill the derived metric fields of `stats` from a final circuit. */
void finalizeStats(const Circuit &circuit, size_t original_cnots,
                   double compile_seconds, const SynthStats &synth,
                   CompileStats &stats);

/**
 * FNV-1a hash over every compiler knob (scheduler, lookahead K,
 * peephole/reorder toggles, and all synthesis options). Part of the
 * compile-cache key: two option sets hashing equal compile equally.
 */
uint64_t optionsContentHash(const TetrisOptions &opts);

/** Append `stats` as a JSON object to `w`. */
class JsonWriter;
void writeJson(JsonWriter &w, const CompileStats &stats);

} // namespace tetris

#endif // TETRIS_CORE_COMPILER_HH
