#include "core/tetris_ir.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/logging.hh"

namespace tetris
{

TetrisBlock::TetrisBlock(PauliBlock block) : block_(std::move(block))
{
    leafSet_ = block_.commonQubits();
    rootSet_ = block_.rootQubits();
    activeLength_ = block_.activeLength();
}

PauliOp
TetrisBlock::leafOp(size_t qubit) const
{
    TETRIS_ASSERT(std::binary_search(leafSet_.begin(), leafSet_.end(),
                                     qubit),
                  "not a leaf qubit");
    return block_.strings().front().op(qubit);
}

bool
TetrisBlock::hasUniformRootSupport() const
{
    if (rootSet_.empty())
        return true;
    // Root-occupancy mask once, then one masked word scan per string.
    const size_t words = block_.strings().front().numWords();
    std::vector<uint64_t> root_mask(words, 0);
    for (size_t q : rootSet_)
        root_mask[q >> 6] |= uint64_t{1} << (q & 63);
    for (const auto &s : block_.strings()) {
        for (size_t i = 0; i < words; ++i) {
            if ((root_mask[i] & ~(s.xWords()[i] | s.zWords()[i])) != 0)
                return false;
        }
    }
    return true;
}

std::string
TetrisBlock::toText() const
{
    // Qubit order annotation: root qubits first, then leaf qubits.
    std::ostringstream os;
    os << "{ ";
    for (size_t q : rootSet_)
        os << q << " ";
    os << "| ";
    for (size_t q : leafSet_)
        os << q << " ";
    os << ", {";
    for (size_t i = 0; i < block_.size(); ++i) {
        const auto &s = block_.string(i);
        os << (i ? ", " : "");
        for (size_t q : rootSet_)
            os << pauliChar(s.op(q));
        // Interior strings elide the common section; boundary strings
        // render it lower-case (the cancellable peripheral section).
        if (i == 0 || i + 1 == block_.size()) {
            for (size_t q : leafSet_) {
                os << static_cast<char>(
                    std::tolower(pauliChar(s.op(q))));
            }
        }
    }
    os << "}, theta=" << block_.theta() << " }";
    return os.str();
}

double
blockSimilarity(const TetrisBlock &a, const TetrisBlock &b)
{
    size_t common = 0;
    // Leaf sets are sorted ascending; intersect with matching ops.
    size_t i = 0, j = 0;
    const auto &la = a.leafSet();
    const auto &lb = b.leafSet();
    while (i < la.size() && j < lb.size()) {
        if (la[i] < lb[j]) {
            ++i;
        } else if (la[i] > lb[j]) {
            ++j;
        } else {
            if (a.leafOp(la[i]) == b.leafOp(lb[j]))
                ++common;
            ++i;
            ++j;
        }
    }
    size_t denom = la.size() + lb.size() - common;
    double eq1 = denom == 0 ? 0.0
                            : static_cast<double>(common) /
                                  static_cast<double>(denom);

    // Tie-break with boundary-string similarity: when leaf sets are
    // uninformative (e.g. Bravyi-Kitaev blocks), adjacency of blocks
    // whose boundary strings share operators still enables peephole
    // cancellation. Scaled so it can never override Eq. 1.
    const PauliString &tail = a.block().strings().back();
    const PauliString &head = b.block().strings().front();
    size_t boundary = PauliBlock::commonOperatorCount(tail, head);
    double tie = static_cast<double>(boundary) /
                 static_cast<double>(tail.numQubits() + 1);
    return eq1 + 1e-3 * tie;
}

PauliBlock
reorderForConsecutiveSimilarity(const PauliBlock &block)
{
    const size_t n = block.size();
    if (n <= 2)
        return block;

    // Reordering changes the rotation product order, which is only
    // semantics-preserving when the strings mutually commute (true
    // for UCCSD excitation blocks); otherwise pass through.
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            if (!block.string(i).commutesWith(block.string(j)))
                return block;
        }
    }

    auto common = [&](size_t i, size_t j) {
        return PauliBlock::commonOperatorCount(block.string(i),
                                               block.string(j));
    };

    std::vector<size_t> order{0};
    std::vector<bool> used(n, false);
    used[0] = true;
    while (order.size() < n) {
        size_t last = order.back();
        size_t best = n;
        size_t best_common = 0;
        for (size_t j = 0; j < n; ++j) {
            if (used[j])
                continue;
            size_t c = common(last, j);
            if (best == n || c > best_common) {
                best = j;
                best_common = c;
            }
        }
        used[best] = true;
        order.push_back(best);
    }

    std::vector<PauliString> strings;
    std::vector<double> weights;
    strings.reserve(n);
    weights.reserve(n);
    for (size_t idx : order) {
        strings.push_back(block.string(idx));
        weights.push_back(block.weight(idx));
    }
    return PauliBlock(std::move(strings), std::move(weights),
                      block.theta());
}

std::vector<TetrisBlock>
buildTetrisIr(const std::vector<PauliBlock> &blocks)
{
    std::vector<TetrisBlock> out;
    out.reserve(blocks.size());
    for (const auto &b : blocks)
        out.emplace_back(b);
    return out;
}

} // namespace tetris
