/**
 * @file
 * Hardware-aware circuit synthesis for Tetris blocks (Algorithm 1).
 *
 * For each block the synthesizer
 *   1. clusters the root-tree qubits around a center found on the
 *      coupling graph (SWAP insertion),
 *   2. attaches every leaf-tree qubit to the growing tree by
 *      minimizing score(qn, qm, w) = (d-1)*w + (qm in root ? 2*#ps
 *      : 2), preferring CNOT bridges through free |0> ancillas over
 *      SWAP chains when a fully-free path exists,
 *   3. emits the block circuit with structural two-qubit-gate
 *      cancellation: internal leaf-tree CNOTs and leaf basis gates
 *      appear only at the block boundary, while connector CNOTs and
 *      the root tree are re-emitted per string.
 *
 * The same machinery synthesizes one Pauli string at a time
 * (synthesizeString), which is the building block of the Paulihedral
 * baseline and the fallback for blocks without the uniform root
 * support the cancellation emission requires.
 */

#ifndef TETRIS_CORE_SYNTHESIS_HH
#define TETRIS_CORE_SYNTHESIS_HH

#include <vector>

#include "circuit/circuit.hh"
#include "common/arena.hh"
#include "core/tetris_ir.hh"
#include "hardware/coupling_graph.hh"
#include "hardware/layout.hh"

namespace tetris
{

/** Tuning knobs of the synthesis stage. */
struct SynthesisOptions
{
    /** SWAP weight w in the leaf scoring function (paper: w = 3). */
    double swapWeight = 3.0;
    /** Use CNOT bridging through free ancillas when possible. */
    bool enableBridging = true;
    /**
     * Adaptive tuning: fall back to per-string synthesis when the
     * structural cancellation cannot recoup the estimated root
     * clustering SWAP cost times this factor (0 disables the
     * fallback and always uses block-level synthesis).
     */
    double adaptiveFallbackFactor = 2.0;
    /**
     * PH-style clustering for single strings: grow from the largest
     * connected component instead of a distance center.
     */
    bool clusterFromLargestCC = false;
};

/** Counters accumulated across synthesized blocks. */
struct SynthStats
{
    size_t insertedSwaps = 0;
    size_t emittedCx = 0;
    size_t bridgeNodes = 0;
    size_t blocksWithCancellation = 0;
    size_t blocksFallback = 0;
};

/**
 * Stateful synthesizer bound to one coupling graph. The layout is
 * owned by the caller and evolves across blocks (SWAPs persist).
 */
class BlockSynthesizer
{
  public:
    BlockSynthesizer(const CouplingGraph &hw, const SynthesisOptions &opts);

    /** Synthesize one Tetris block into `circ`, updating `layout`. */
    void synthesizeBlock(const TetrisBlock &tb, Layout &layout,
                         Circuit &circ, SynthStats &stats);

    /**
     * Synthesize exp(-i angle/2 * P) for one string (PH-style
     * per-string flow; also the fallback path).
     */
    void synthesizeString(const PauliString &s, double angle,
                          Layout &layout, Circuit &circ,
                          SynthStats &stats);

    /**
     * Scheduler helper: rough SWAP count needed to gather the
     * block's root qubits under the given layout.
     */
    long estimateRootClusterCost(const TetrisBlock &tb,
                                 const Layout &layout) const;

    const SynthesisOptions &options() const { return opts_; }

  private:
    struct AttachEdge
    {
        int childPos;
        int parentPos;
        bool connector;
    };

    struct AttachResult
    {
        bool ok = false;
        /** Parent-side-first per attachment; see emitBlock. */
        std::vector<AttachEdge> edges;
        /** Physical position of each attached leaf logical qubit. */
        std::vector<std::pair<int, int>> leafPositions;
        std::vector<int> bridgePositions;
    };

    /** Swap the occupant of `from` along `path` to its last node. */
    void moveAlongPath(const std::vector<int> &path, Layout &layout,
                       Circuit &circ, SynthStats &stats);

    /**
     * Move the given logical qubits until their physical positions
     * form a connected set; returns the positions. If center >= 0
     * the first qubit is routed onto it.
     */
    std::vector<int> growCluster(const std::vector<int> &logicals,
                                 int center, Layout &layout,
                                 Circuit &circ, SynthStats &stats);

    /** Root-tree parent relation via BFS from rootPos. */
    void buildBfsTree(const std::vector<int> &positions, int root_pos,
                      std::vector<int> &bfs_order,
                      std::vector<int> &parent) const;

    AttachResult attachLeaves(const TetrisBlock &tb,
                              const std::vector<int> &root_positions,
                              Layout &layout, Circuit &circ,
                              SynthStats &stats);

    void emitBlock(const TetrisBlock &tb,
                   const std::vector<int> &root_bfs_order,
                   const std::vector<int> &root_parent,
                   const AttachResult &att, Layout &layout,
                   Circuit &circ, SynthStats &stats);

    void basisEnter(Circuit &circ, int pos, PauliOp op);
    void basisExit(Circuit &circ, int pos, PauliOp op);

    const CouplingGraph &hw_;
    SynthesisOptions opts_;
    /**
     * Per-job scratch arena for the BFS working sets (parent and
     * distance arrays, visit marks, queues). Every helper opens an
     * Arena::Frame, so the footprint stays at one call tree's
     * high-water mark. Mutable: const helpers still need scratch.
     */
    mutable Arena arena_;
};

} // namespace tetris

#endif // TETRIS_CORE_SYNTHESIS_HH
