/**
 * @file
 * Configured-instance constructors for the built-in pipelines.
 *
 * Separated from core/pipeline.hh so the engine layer (which only
 * needs the Pipeline interface and registry) does not transitively
 * depend on every compiler stack. Include this header where
 * pipelines are configured: the bench harness, the CLI, and tests.
 * The registry ids are noted on each helper;
 * PipelineRegistry::create(id) is equivalent to the
 * default-argument call.
 */

#ifndef TETRIS_CORE_PIPELINE_ADAPTERS_HH
#define TETRIS_CORE_PIPELINE_ADAPTERS_HH

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "baselines/qaoa_2qan.hh"
#include "core/compiler.hh"
#include "core/pipeline.hh"
#include "core/qaoa_pass.hh"

namespace tetris
{

/** "tetris": the paper's full pipeline (Sec. V). */
PipelinePtr makeTetrisPipeline(TetrisOptions opts = TetrisOptions());

/** "paulihedral": the Paulihedral baseline (ASPLOS'22). */
PipelinePtr makePaulihedralPipeline(PaulihedralOptions opts
                                    = PaulihedralOptions());

/** "tket-o2" / "tket-o3": the two T|Ket> proxy flavors (Fig. 15a). */
PipelinePtr makeTketPipeline(TketFlavor flavor = TketFlavor::O2);

/** "pcoast": logical peephole + greedy routing proxy (Fig. 15b). */
PipelinePtr makePcoastPipeline();

/** "naive": per-string chain synthesis (Table I's original circuit). */
PipelinePtr makeNaivePipeline(NaiveOptions opts = NaiveOptions());

/** "max-cancel": the structural-cancellation upper bound (Fig. 2). */
PipelinePtr makeMaxCancelPipeline(MaxCancelOptions opts
                                  = MaxCancelOptions());

/** "qaoa-2qan": the 2QAN proxy for 2-local workloads (ISCA'22). */
PipelinePtr makeQaoa2qanPipeline();

/** "qaoa-bridge": Tetris's QAOA bridging + qubit-reuse pass. */
PipelinePtr makeQaoaBridgePipeline(QaoaPassOptions opts
                                   = QaoaPassOptions());

/** FNV-1a content hash over the QAOA-pass knobs. */
uint64_t optionsContentHash(const QaoaPassOptions &opts);

} // namespace tetris

#endif // TETRIS_CORE_PIPELINE_ADAPTERS_HH
