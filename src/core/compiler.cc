#include "core/compiler.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/arena.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace tetris
{

int
blocksNumQubits(const std::vector<PauliBlock> &blocks)
{
    TETRIS_ASSERT(!blocks.empty(), "no blocks to compile");
    return static_cast<int>(blocks.front().numQubits());
}

void
finalizeStats(const Circuit &circuit, size_t original_cnots,
              double compile_seconds, const SynthStats &synth,
              CompileStats &stats)
{
    stats.cnotCount = circuit.cnotCount();
    stats.oneQubitCount = circuit.oneQubitCount();
    stats.totalGateCount = circuit.totalGateCount();
    stats.depth = circuit.depth();
    stats.durationDt = circuit.duration();
    stats.swapCount = circuit.swapCount();
    stats.swapCnots = 3 * stats.swapCount;
    stats.logicalCnots = stats.cnotCount - stats.swapCnots;
    stats.originalCnots = original_cnots;
    stats.cancelRatio =
        original_cnots == 0
            ? 0.0
            : static_cast<double>(original_cnots -
                                  std::min(original_cnots,
                                           stats.logicalCnots)) /
                  static_cast<double>(original_cnots);
    stats.compileSeconds = compile_seconds;
    stats.synthesis = synth;
}

namespace
{

/** Lexicographic block order by concatenated string text. */
std::vector<size_t>
lexicographicOrder(const std::vector<PauliBlock> &blocks)
{
    std::vector<std::string> keys(blocks.size());
    for (size_t i = 0; i < blocks.size(); ++i) {
        for (const auto &s : blocks[i].strings())
            keys[i] += s.toText();
    }
    std::vector<size_t> order(blocks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return keys[a] < keys[b]; });
    return order;
}

} // namespace

CompileResult
compileTetris(const std::vector<PauliBlock> &blocks,
              const CouplingGraph &hw, const TetrisOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();

    const int num_logical = blocksNumQubits(blocks);
    TETRIS_ASSERT(num_logical <= hw.numQubits(),
                  "workload needs more qubits than the device has");

    std::vector<TetrisBlock> ir;
    if (opts.reorderStringsInBlock) {
        std::vector<PauliBlock> reordered;
        reordered.reserve(blocks.size());
        for (const auto &b : blocks)
            reordered.push_back(reorderForConsecutiveSimilarity(b));
        ir = buildTetrisIr(reordered);
    } else {
        ir = buildTetrisIr(blocks);
    }
    Layout layout(num_logical, hw.numQubits());
    bool seeded = false;
    if (!opts.initialLayout.empty()) {
        TETRIS_ASSERT(opts.initialLayout.size() ==
                          static_cast<size_t>(num_logical),
                      "initialLayout size != workload qubit count");
        auto from = Layout::fromMapping(opts.initialLayout, hw.numQubits());
        TETRIS_ASSERT(from.has_value(),
                      "initialLayout is not an injective map into the "
                      "device qubits");
        layout = *from;
        seeded = true;
    }
    Circuit circ(hw.numQubits());
    BlockSynthesizer synth(hw, opts.synthesis);
    SynthStats synth_stats;

    CompileResult result;
    result.blockOrder.reserve(blocks.size());

    double synth_seconds = 0.0;
    auto synthesize = [&](size_t idx) {
        auto s0 = std::chrono::steady_clock::now();
        synth.synthesizeBlock(ir[idx], layout, circ, synth_stats);
        synth_seconds += std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - s0)
                             .count();
        result.blockOrder.push_back(idx);
    };

    if (opts.scheduler == SchedulerKind::InputOrder) {
        for (size_t i = 0; i < ir.size(); ++i)
            synthesize(i);
    } else if (opts.scheduler == SchedulerKind::Lexicographic) {
        for (size_t i : lexicographicOrder(blocks))
            synthesize(i);
    } else {
        // Lookahead scheduling (Sec. V-B): start from the block with
        // the largest active length; then repeatedly rank remaining
        // blocks by similarity to the last scheduled block, and among
        // the top-K pick the one with the cheapest root clustering
        // under the live layout. Both working sets live in a per-job
        // arena: allocated once, recycled when the job ends.
        Arena arena;
        const ArenaAllocator<size_t> alloc(arena);
        std::vector<size_t, ArenaAllocator<size_t>> remaining(ir.size(),
                                                             0, alloc);
        std::iota(remaining.begin(), remaining.end(), 0);

        size_t first = 0;
        for (size_t i = 1; i < remaining.size(); ++i) {
            if (ir[remaining[i]].activeLength() >
                ir[remaining[first]].activeLength()) {
                first = i;
            }
        }
        size_t last_block = remaining[first];
        remaining.erase(remaining.begin() + first);
        synthesize(last_block);

        const size_t k =
            std::max<size_t>(1, static_cast<size_t>(opts.lookaheadK));
        std::vector<size_t, ArenaAllocator<size_t>> candidates(alloc);
        candidates.reserve(ir.size());
        while (!remaining.empty()) {
            size_t take = std::min(k, remaining.size());
            candidates.assign(remaining.begin(), remaining.end());
            std::partial_sort(
                candidates.begin(), candidates.begin() + take,
                candidates.end(), [&](size_t a, size_t b) {
                    double sa = blockSimilarity(ir[last_block], ir[a]);
                    double sb = blockSimilarity(ir[last_block], ir[b]);
                    if (sa != sb)
                        return sa > sb;
                    return a < b;
                });

            size_t chosen = candidates[0];
            long best_cost =
                synth.estimateRootClusterCost(ir[chosen], layout);
            for (size_t i = 1; i < take; ++i) {
                long cost = synth.estimateRootClusterCost(
                    ir[candidates[i]], layout);
                if (cost < best_cost) {
                    best_cost = cost;
                    chosen = candidates[i];
                }
            }

            remaining.erase(std::find(remaining.begin(), remaining.end(),
                                      chosen));
            last_block = chosen;
            synthesize(chosen);
        }
    }

    auto t_sched = std::chrono::steady_clock::now();
    if (opts.runPeephole)
        circ = peepholeOptimize(circ);

    auto t1 = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(t1 - t0).count();

    result.circuit = std::move(circ);
    if (seeded) {
        auto from =
            Layout::fromMapping(opts.initialLayout, hw.numQubits());
        result.initialLayout = *from;
    }
    result.finalLayout = layout;
    finalizeStats(result.circuit, naiveCnotCount(blocks), seconds,
                  synth_stats, result.stats);
    result.stats.synthSeconds = synth_seconds;
    result.stats.peepholeSeconds =
        std::chrono::duration<double>(t1 - t_sched).count();
    result.stats.scheduleSeconds =
        std::max(0.0, std::chrono::duration<double>(t_sched - t0).count() -
                          synth_seconds);
    return result;
}

uint64_t
optionsContentHash(const TetrisOptions &opts)
{
    uint64_t h = fnvMix(kFnvOffset, static_cast<int>(opts.scheduler));
    h = fnvMix(h, opts.lookaheadK);
    h = fnvMix(h, opts.runPeephole);
    h = fnvMix(h, opts.reorderStringsInBlock);
    h = fnvMix(h, opts.synthesis.swapWeight);
    h = fnvMix(h, opts.synthesis.enableBridging);
    h = fnvMix(h, opts.synthesis.adaptiveFallbackFactor);
    h = fnvMix(h, opts.synthesis.clusterFromLargestCC);
    // The seed placement changes the emitted circuit, so it must be
    // part of the cache key: a chunk compiled from layout A must not
    // satisfy a lookup for the same blocks seeded from layout B.
    h = fnvMix(h, opts.initialLayout.size());
    for (int p : opts.initialLayout)
        h = fnvMix(h, p);
    return h;
}

void
writeJson(JsonWriter &w, const CompileStats &stats)
{
    w.beginObject();
    w.key("cnotCount").value(static_cast<uint64_t>(stats.cnotCount));
    w.key("oneQubitCount")
        .value(static_cast<uint64_t>(stats.oneQubitCount));
    w.key("totalGateCount")
        .value(static_cast<uint64_t>(stats.totalGateCount));
    w.key("depth").value(static_cast<uint64_t>(stats.depth));
    w.key("durationDt").value(stats.durationDt);
    w.key("swapCount").value(static_cast<uint64_t>(stats.swapCount));
    w.key("swapCnots").value(static_cast<uint64_t>(stats.swapCnots));
    w.key("logicalCnots")
        .value(static_cast<uint64_t>(stats.logicalCnots));
    w.key("originalCnots")
        .value(static_cast<uint64_t>(stats.originalCnots));
    w.key("cancelRatio").value(stats.cancelRatio);
    w.key("compileSeconds").value(stats.compileSeconds);
    w.key("scheduleSeconds").value(stats.scheduleSeconds);
    w.key("synthSeconds").value(stats.synthSeconds);
    w.key("peepholeSeconds").value(stats.peepholeSeconds);
    w.key("synthesis").beginObject();
    w.key("insertedSwaps")
        .value(static_cast<uint64_t>(stats.synthesis.insertedSwaps));
    w.key("emittedCx")
        .value(static_cast<uint64_t>(stats.synthesis.emittedCx));
    w.key("bridgeNodes")
        .value(static_cast<uint64_t>(stats.synthesis.bridgeNodes));
    w.key("blocksWithCancellation")
        .value(static_cast<uint64_t>(
            stats.synthesis.blocksWithCancellation));
    w.key("blocksFallback")
        .value(static_cast<uint64_t>(stats.synthesis.blocksFallback));
    w.endObject();
    w.endObject();
}

} // namespace tetris
