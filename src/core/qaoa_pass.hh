/**
 * @file
 * Tetris QAOA compilation pass (Sec. V-C).
 *
 * QAOA cost layers are products of commuting two-local ZZ rotations,
 * so there is little Pauli-string similarity to exploit; instead the
 * pass (a) schedules commuting gates greedily whenever their qubits
 * are adjacent, (b) chooses between SWAP insertion and fast CNOT
 * bridging through free |0> ancillas by a lookahead test (does the
 * SWAP help future gates?), and (c) reclaims finished qubits with
 * mid-circuit measure+reset so they can serve as bridge ancillas
 * (Hua et al.'s qubit-reuse opportunity; measurement commutes with
 * the remaining diagonal gates).
 */

#ifndef TETRIS_CORE_QAOA_PASS_HH
#define TETRIS_CORE_QAOA_PASS_HH

#include <vector>

#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Knobs of the QAOA bridging pass. */
struct QaoaPassOptions
{
    /**
     * SWAP is chosen over bridging when its total distance reduction
     * across pending gates reaches this threshold.
     */
    int swapBenefitThreshold = 2;
    /** Allow CNOT bridging through free ancillas. */
    bool enableBridging = true;
    /**
     * Measure+reset qubits whose gates are all done, freeing them as
     * bridge ancillas. Disable for unitary-equivalence testing.
     */
    bool enableQubitReuse = true;
    /** Run the peephole pass afterwards. */
    bool runPeephole = true;
};

/**
 * Compile a list of 1- or 2-local Z-basis blocks (one string each,
 * e.g. from buildQaoaCostBlocks) for the device.
 */
CompileResult compileQaoaTetris(const std::vector<PauliBlock> &blocks,
                                const CouplingGraph &hw,
                                const QaoaPassOptions &opts
                                = QaoaPassOptions());

} // namespace tetris

#endif // TETRIS_CORE_QAOA_PASS_HH
