#include "core/synthesis.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace tetris
{

namespace
{

// Arena-backed scratch containers. BFS queues are plain vectors
// drained by a moving head index (nothing is ever popped), so the
// deque's node allocations disappear entirely.
using ScratchInts = std::vector<int, ArenaAllocator<int>>;
using ScratchMarks = std::vector<char, ArenaAllocator<char>>;

/** Connected components of the induced subgraph on `positions`. */
std::vector<std::vector<int>>
inducedComponents(const CouplingGraph &hw, const ScratchInts &positions,
                  Arena &arena)
{
    Arena::Frame frame(arena);
    const ArenaAllocator<int> ints(arena);
    ScratchMarks member(hw.numQubits(), 0, ArenaAllocator<char>(arena));
    for (int p : positions)
        member[p] = 1;

    ScratchMarks seen(hw.numQubits(), 0, ArenaAllocator<char>(arena));
    ScratchInts queue(ints);
    queue.reserve(positions.size());
    std::vector<std::vector<int>> comps;
    for (int p : positions) {
        if (seen[p])
            continue;
        comps.emplace_back();
        queue.clear();
        queue.push_back(p);
        seen[p] = 1;
        for (size_t head = 0; head < queue.size(); ++head) {
            int u = queue[head];
            comps.back().push_back(u);
            for (int v : hw.neighbors(u)) {
                if (member[v] && !seen[v]) {
                    seen[v] = 1;
                    queue.push_back(v);
                }
            }
        }
    }
    return comps;
}

/**
 * BFS from `start` over nodes not in `blocked`, returning the path
 * to the nearest node adjacent to `blocked`-marked cluster nodes in
 * `cluster_mark` (possibly `start` itself). Empty on failure.
 */
std::vector<int>
pathToClusterFrontier(const CouplingGraph &hw, int start,
                      const ScratchMarks &cluster_mark, Arena &arena)
{
    auto adjacent_to_cluster = [&](int v) {
        for (int u : hw.neighbors(v)) {
            if (cluster_mark[u])
                return true;
        }
        return false;
    };

    Arena::Frame frame(arena);
    const ArenaAllocator<int> ints(arena);
    ScratchInts parent(hw.numQubits(), -2, ints);
    ScratchInts queue(ints);
    queue.reserve(hw.numQubits());
    queue.push_back(start);
    parent[start] = -1;
    for (size_t head = 0; head < queue.size(); ++head) {
        int u = queue[head];
        if (adjacent_to_cluster(u)) {
            std::vector<int> path;
            for (int x = u; x != -1; x = parent[x])
                path.push_back(x);
            std::reverse(path.begin(), path.end());
            return path;
        }
        for (int v : hw.neighbors(u)) {
            if (parent[v] == -2 && !cluster_mark[v]) {
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    return {};
}

} // namespace

BlockSynthesizer::BlockSynthesizer(const CouplingGraph &hw,
                                   const SynthesisOptions &opts)
    : hw_(hw), opts_(opts)
{
}

void
BlockSynthesizer::moveAlongPath(const std::vector<int> &path, Layout &layout,
                                Circuit &circ, SynthStats &stats)
{
    for (size_t i = 1; i < path.size(); ++i) {
        circ.swap(path[i - 1], path[i]);
        layout.applySwap(path[i - 1], path[i]);
        ++stats.insertedSwaps;
    }
}

std::vector<int>
BlockSynthesizer::growCluster(const std::vector<int> &logicals, int center,
                              Layout &layout, Circuit &circ,
                              SynthStats &stats)
{
    TETRIS_ASSERT(!logicals.empty());

    Arena::Frame frame(arena_);
    const ArenaAllocator<int> ints(arena_);
    ScratchMarks cluster_mark(hw_.numQubits(), 0,
                              ArenaAllocator<char>(arena_));
    std::vector<int> cluster;
    std::vector<int> pending = logicals;

    auto add_to_cluster = [&](int pos) {
        cluster.push_back(pos);
        cluster_mark[pos] = 1;
    };

    // Already connected? No SWAPs needed regardless of the center.
    {
        ScratchInts positions(ints);
        positions.reserve(pending.size());
        for (int q : pending)
            positions.push_back(layout.physOf(q));
        auto comps = inducedComponents(hw_, positions, arena_);
        if (comps.size() == 1)
            return comps.front();
    }

    if (center >= 0) {
        // Route the nearest group member onto the center position.
        size_t best = 0;
        for (size_t i = 1; i < pending.size(); ++i) {
            if (hw_.distance(layout.physOf(pending[i]), center) <
                hw_.distance(layout.physOf(pending[best]), center)) {
                best = i;
            }
        }
        int q = pending[best];
        pending.erase(pending.begin() + best);
        std::vector<int> path =
            hw_.shortestPath(layout.physOf(q), center);
        moveAlongPath(path, layout, circ, stats);
        add_to_cluster(center);
    } else {
        // Seed with the largest already-connected component.
        ScratchInts positions(ints);
        positions.reserve(pending.size());
        for (int q : pending)
            positions.push_back(layout.physOf(q));
        auto comps = inducedComponents(hw_, positions, arena_);
        size_t largest = 0;
        for (size_t i = 1; i < comps.size(); ++i) {
            if (comps[i].size() > comps[largest].size())
                largest = i;
        }
        for (int pos : comps[largest])
            add_to_cluster(pos);
        std::vector<int> still_pending;
        for (int q : pending) {
            if (!cluster_mark[layout.physOf(q)])
                still_pending.push_back(q);
        }
        pending = std::move(still_pending);
    }

    while (!pending.empty()) {
        // Pick the pending qubit with the shortest realizable path to
        // the cluster frontier.
        size_t best_idx = pending.size();
        std::vector<int> best_path;
        for (size_t i = 0; i < pending.size(); ++i) {
            std::vector<int> path = pathToClusterFrontier(
                hw_, layout.physOf(pending[i]), cluster_mark, arena_);
            if (path.empty())
                continue;
            if (best_idx == pending.size() ||
                path.size() < best_path.size()) {
                best_idx = i;
                best_path = std::move(path);
            }
        }
        TETRIS_ASSERT(best_idx != pending.size(),
                      "cluster growth blocked: no free path to the "
                      "frontier on ", hw_.name());
        moveAlongPath(best_path, layout, circ, stats);
        add_to_cluster(best_path.back());
        pending.erase(pending.begin() + best_idx);
    }
    return cluster;
}

void
BlockSynthesizer::buildBfsTree(const std::vector<int> &positions,
                               int root_pos, std::vector<int> &bfs_order,
                               std::vector<int> &parent) const
{
    Arena::Frame frame(arena_);
    ScratchMarks member(hw_.numQubits(), 0, ArenaAllocator<char>(arena_));
    for (int p : positions)
        member[p] = 1;
    TETRIS_ASSERT(member[root_pos]);

    parent.assign(hw_.numQubits(), -1);
    bfs_order.clear();
    ScratchMarks seen(hw_.numQubits(), 0, ArenaAllocator<char>(arena_));
    ScratchInts queue{ArenaAllocator<int>(arena_)};
    queue.reserve(positions.size());
    queue.push_back(root_pos);
    seen[root_pos] = 1;
    for (size_t head = 0; head < queue.size(); ++head) {
        int u = queue[head];
        bfs_order.push_back(u);
        for (int v : hw_.neighbors(u)) {
            if (member[v] && !seen[v]) {
                seen[v] = 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    TETRIS_ASSERT(bfs_order.size() == positions.size(),
                  "tree positions not connected");
}

void
BlockSynthesizer::basisEnter(Circuit &circ, int pos, PauliOp op)
{
    switch (op) {
      case PauliOp::X:
        circ.h(pos);
        break;
      case PauliOp::Y:
        circ.sdg(pos);
        circ.h(pos);
        break;
      default:
        break;
    }
}

void
BlockSynthesizer::basisExit(Circuit &circ, int pos, PauliOp op)
{
    switch (op) {
      case PauliOp::X:
        circ.h(pos);
        break;
      case PauliOp::Y:
        circ.h(pos);
        circ.s(pos);
        break;
      default:
        break;
    }
}

void
BlockSynthesizer::synthesizeString(const PauliString &s, double angle,
                                   Layout &layout, Circuit &circ,
                                   SynthStats &stats)
{
    std::vector<size_t> support = s.support();
    if (support.empty())
        return; // Identity: a global phase only.

    if (support.size() == 1) {
        int pos = layout.physOf(static_cast<int>(support[0]));
        PauliOp op = s.op(support[0]);
        basisEnter(circ, pos, op);
        circ.rz(pos, angle);
        basisExit(circ, pos, op);
        return;
    }

    std::vector<int> logicals(support.begin(), support.end());
    std::vector<int> cluster =
        growCluster(logicals, /*center=*/-1, layout, circ, stats);

    // Root the tree at the member position with minimal total
    // distance to the others.
    int root_pos = cluster.front();
    long best_cost = std::numeric_limits<long>::max();
    for (int cand : cluster) {
        long cost = 0;
        for (int other : cluster)
            cost += hw_.distance(cand, other);
        if (cost < best_cost) {
            best_cost = cost;
            root_pos = cand;
        }
    }

    std::vector<int> bfs_order, parent;
    buildBfsTree(cluster, root_pos, bfs_order, parent);

    for (size_t q : support)
        basisEnter(circ, layout.physOf(static_cast<int>(q)), s.op(q));
    for (auto it = bfs_order.rbegin(); it != bfs_order.rend(); ++it) {
        if (parent[*it] != -1) {
            circ.cx(*it, parent[*it]);
            ++stats.emittedCx;
        }
    }
    circ.rz(root_pos, angle);
    for (int pos : bfs_order) {
        if (parent[pos] != -1) {
            circ.cx(pos, parent[pos]);
            ++stats.emittedCx;
        }
    }
    for (size_t q : support)
        basisExit(circ, layout.physOf(static_cast<int>(q)), s.op(q));
}

BlockSynthesizer::AttachResult
BlockSynthesizer::attachLeaves(const TetrisBlock &tb,
                               const std::vector<int> &root_positions,
                               Layout &layout, Circuit &circ,
                               SynthStats &stats)
{
    AttachResult result;
    const double w = opts_.swapWeight;
    const double num_ps = static_cast<double>(tb.numStrings());

    Arena::Frame frame(arena_);
    ScratchMarks blocked(hw_.numQubits(), 0,
                         ArenaAllocator<char>(arena_));
    ScratchMarks is_root_pos(hw_.numQubits(), 0,
                             ArenaAllocator<char>(arena_));
    for (int p : root_positions) {
        blocked[p] = 1;
        is_root_pos[p] = 1;
    }

    std::vector<int> pending(tb.leafSet().begin(), tb.leafSet().end());

    // Per-hop cost of a CNOT bridge: 2 CNOTs at the block boundary
    // (the bridge hops are internal leaf edges, canceled between
    // strings), versus 3 CNOTs per SWAP weighted by w in the score.
    const double bridge_hop_cost = 2.0;

    while (!pending.empty()) {
        struct Choice
        {
            double score = std::numeric_limits<double>::max();
            size_t pending_idx = 0;
            int target = -1;
            bool bridge = false;
            std::vector<int> path; // start .. approach node
        } best;

        // One BFS pass per pending qubit over non-blocked nodes
        // (SWAP routes) and one restricted to free |0> ancillas
        // (bridge routes); each visited node adjacent to a mapped
        // target yields a candidate attachment.
        auto scan = [&](size_t i, bool free_only) {
            int start = layout.physOf(pending[i]);
            Arena::Frame scan_frame(arena_);
            const ArenaAllocator<int> ints(arena_);
            ScratchInts parent(hw_.numQubits(), -2, ints);
            ScratchInts dist(hw_.numQubits(), -1, ints);
            ScratchInts queue(ints);
            queue.reserve(hw_.numQubits());
            queue.push_back(start);
            parent[start] = -1;
            dist[start] = 0;
            for (size_t head = 0; head < queue.size(); ++head) {
                int u = queue[head];
                for (int t : hw_.neighbors(u)) {
                    if (!blocked[t])
                        continue;
                    double d = dist[u] + 1;
                    double hop = free_only ? bridge_hop_cost : w;
                    double score = (d - 1) * hop +
                                   (is_root_pos[t] ? 2 * num_ps : 2);
                    if (score < best.score) {
                        best.score = score;
                        best.pending_idx = i;
                        best.target = t;
                        best.bridge = free_only && d > 1;
                        best.path.clear();
                        for (int x = u; x != -1; x = parent[x])
                            best.path.push_back(x);
                        std::reverse(best.path.begin(), best.path.end());
                    }
                }
                for (int v : hw_.neighbors(u)) {
                    if (parent[v] != -2 || blocked[v])
                        continue;
                    if (free_only && !layout.isFree(v))
                        continue;
                    parent[v] = u;
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        };

        for (size_t i = 0; i < pending.size(); ++i) {
            scan(i, /*free_only=*/false);
            if (opts_.enableBridging)
                scan(i, /*free_only=*/true);
        }

        if (best.target < 0)
            return result; // ok stays false; caller falls back.

        int q = pending[best.pending_idx];
        pending.erase(pending.begin() + best.pending_idx);
        bool target_is_root = is_root_pos[best.target];

        if (best.bridge) {
            // Chain q(path0) -> path1 -> ... -> pathLast -> target.
            // Edges appended parent-side-first (see emitBlock).
            int top = best.path.back();
            result.edges.push_back({top, best.target, target_is_root});
            for (size_t k = best.path.size() - 1; k >= 1; --k) {
                result.edges.push_back(
                    {best.path[k - 1], best.path[k], false});
            }
            for (size_t k = 1; k < best.path.size(); ++k) {
                blocked[best.path[k]] = 1;
                result.bridgePositions.push_back(best.path[k]);
                ++stats.bridgeNodes;
            }
            blocked[best.path.front()] = 1;
            result.leafPositions.emplace_back(q, best.path.front());
        } else {
            moveAlongPath(best.path, layout, circ, stats);
            int pos = layout.physOf(q);
            TETRIS_ASSERT(pos == best.path.back());
            result.edges.push_back({pos, best.target, target_is_root});
            blocked[pos] = 1;
            result.leafPositions.emplace_back(q, pos);
        }
    }

    result.ok = true;
    return result;
}

void
BlockSynthesizer::emitBlock(const TetrisBlock &tb,
                            const std::vector<int> &root_bfs_order,
                            const std::vector<int> &root_parent,
                            const AttachResult &att, Layout &layout,
                            Circuit &circ, SynthStats &stats)
{
    (void)layout;
    const PauliBlock &block = tb.block();

    // --- Block prologue: leaf basis gates + internal leaf CNOTs. ---
    for (const auto &[logical, pos] : att.leafPositions)
        basisEnter(circ, pos, tb.leafOp(logical));
    for (auto it = att.edges.rbegin(); it != att.edges.rend(); ++it) {
        if (!it->connector) {
            circ.cx(it->childPos, it->parentPos);
            ++stats.emittedCx;
        }
    }

    // --- Per string: root basis, connectors, root tree, RZ. ---
    const int rz_pos = root_bfs_order.front();
    for (size_t i = 0; i < block.size(); ++i) {
        const PauliString &s = block.string(i);
        for (size_t q : tb.rootSet()) {
            basisEnter(circ, layout.physOf(static_cast<int>(q)),
                       s.op(q));
        }
        for (auto it = att.edges.rbegin(); it != att.edges.rend(); ++it) {
            if (it->connector) {
                circ.cx(it->childPos, it->parentPos);
                ++stats.emittedCx;
            }
        }
        for (auto it = root_bfs_order.rbegin();
             it != root_bfs_order.rend(); ++it) {
            if (root_parent[*it] != -1) {
                circ.cx(*it, root_parent[*it]);
                ++stats.emittedCx;
            }
        }
        circ.rz(rz_pos, block.weight(i) * block.theta());
        for (int pos : root_bfs_order) {
            if (root_parent[pos] != -1) {
                circ.cx(pos, root_parent[pos]);
                ++stats.emittedCx;
            }
        }
        for (const auto &e : att.edges) {
            if (e.connector) {
                circ.cx(e.childPos, e.parentPos);
                ++stats.emittedCx;
            }
        }
        for (size_t q : tb.rootSet()) {
            basisExit(circ, layout.physOf(static_cast<int>(q)),
                      s.op(q));
        }
    }

    // --- Block epilogue: mirror internal leaf CNOTs + leaf basis. ---
    for (const auto &e : att.edges) {
        if (!e.connector) {
            circ.cx(e.childPos, e.parentPos);
            ++stats.emittedCx;
        }
    }
    for (const auto &[logical, pos] : att.leafPositions)
        basisExit(circ, pos, tb.leafOp(logical));
}

void
BlockSynthesizer::synthesizeBlock(const TetrisBlock &tb, Layout &layout,
                                  Circuit &circ, SynthStats &stats)
{
    const PauliBlock &block = tb.block();

    auto fallback = [&] {
        ++stats.blocksFallback;
        for (size_t i = 0; i < block.size(); ++i) {
            synthesizeString(block.string(i),
                             block.weight(i) * block.theta(), layout,
                             circ, stats);
        }
    };

    if (tb.rootSet().empty() || tb.numStrings() < 2 ||
        !tb.hasUniformRootSupport()) {
        fallback();
        return;
    }

    // Adaptive tuning (Sec. IV-B2): block-level synthesis is only
    // worthwhile when the structural cancellation (up to
    // 2*(L-1)*(#ps-1) CNOTs with a single leaf tree) outweighs the
    // SWAP cost of gathering the root qubits.
    if (opts_.adaptiveFallbackFactor > 0.0) {
        const long leaf_size = static_cast<long>(tb.leafSet().size());
        const long num_ps = static_cast<long>(tb.numStrings());
        const long savings =
            leaf_size >= 2 ? 2 * (leaf_size - 1) * (num_ps - 1) : 0;
        const double cost = opts_.adaptiveFallbackFactor *
                            static_cast<double>(
                                estimateRootClusterCost(tb, layout));
        if (static_cast<double>(savings) <= cost) {
            fallback();
            return;
        }
    }

    // 1. Cluster the root qubits around a distance center.
    std::vector<int> root_logicals(tb.rootSet().begin(),
                                   tb.rootSet().end());
    std::vector<int> terminals;
    terminals.reserve(root_logicals.size());
    for (int q : root_logicals)
        terminals.push_back(layout.physOf(q));
    int center = hw_.findCenter(terminals);
    std::vector<int> root_positions =
        growCluster(root_logicals, center, layout, circ, stats);

    // 2. Root tree via BFS from the most central member (the center
    // itself when clustering ran; the in-set center when the roots
    // were already connected and no SWAPs were inserted).
    int tree_root = root_positions.front();
    long best_cost = std::numeric_limits<long>::max();
    for (int cand : root_positions) {
        long cost = 0;
        for (int other : root_positions)
            cost += hw_.distance(cand, other);
        if (cost < best_cost) {
            best_cost = cost;
            tree_root = cand;
        }
    }
    std::vector<int> root_bfs_order, root_parent;
    buildBfsTree(root_positions, tree_root, root_bfs_order, root_parent);

    // 3. Attach the leaf qubits (may insert SWAPs / bridges).
    AttachResult att =
        attachLeaves(tb, root_positions, layout, circ, stats);
    if (!att.ok) {
        // Only SWAPs were emitted so far; they are semantically
        // neutral, so the per-string fallback stays correct.
        fallback();
        return;
    }

    // 4. Emit with structural cancellation.
    ++stats.blocksWithCancellation;
    emitBlock(tb, root_bfs_order, root_parent, att, layout, circ, stats);
}

long
BlockSynthesizer::estimateRootClusterCost(const TetrisBlock &tb,
                                          const Layout &layout) const
{
    const auto &roots = tb.rootSet();
    if (roots.empty())
        return 0;
    std::vector<int> terminals;
    terminals.reserve(roots.size());
    for (size_t q : roots)
        terminals.push_back(layout.physOf(static_cast<int>(q)));
    int center = hw_.findCenter(terminals);
    long cost = 0;
    for (int t : terminals)
        cost += hw_.distance(t, center);
    return cost;
}

} // namespace tetris
