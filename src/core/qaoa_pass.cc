#include "core/qaoa_pass.hh"

#include <algorithm>
#include <chrono>
#include <limits>

#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/logging.hh"

namespace tetris
{

namespace
{

/** One pending rotation: ZZ on (u, v), or single-Z when v < 0. */
struct PendingGate
{
    int u;
    int v;
    double angle;
};

} // namespace

CompileResult
compileQaoaTetris(const std::vector<PauliBlock> &blocks,
                  const CouplingGraph &hw, const QaoaPassOptions &opts)
{
    auto t0 = std::chrono::steady_clock::now();

    const int num_logical = blocksNumQubits(blocks);
    TETRIS_ASSERT(num_logical <= hw.numQubits());

    // Flatten blocks into Z/ZZ rotations.
    std::vector<PendingGate> pending;
    std::vector<int> gates_left(num_logical, 0);
    for (const auto &b : blocks) {
        TETRIS_ASSERT(b.size() == 1,
                      "QAOA pass expects single-string blocks");
        const PauliString &s = b.string(0);
        auto support = s.support();
        TETRIS_ASSERT(support.size() >= 1 && support.size() <= 2,
                      "QAOA pass expects 1- or 2-local strings");
        for (size_t q : support) {
            TETRIS_ASSERT(s.op(q) == PauliOp::Z,
                          "QAOA pass expects Z-basis strings");
        }
        double angle = b.weight(0) * b.theta();
        if (support.size() == 1) {
            pending.push_back({static_cast<int>(support[0]), -1, angle});
            ++gates_left[support[0]];
        } else {
            pending.push_back({static_cast<int>(support[0]),
                               static_cast<int>(support[1]), angle});
            ++gates_left[support[0]];
            ++gates_left[support[1]];
        }
    }

    Layout layout(num_logical, hw.numQubits());
    Circuit circ(hw.numQubits());
    SynthStats synth_stats;
    std::vector<bool> retired(num_logical, false);

    auto retire_if_done = [&](int logical) {
        if (!opts.enableQubitReuse || retired[logical] ||
            gates_left[logical] > 0) {
            return;
        }
        int pos = layout.physOf(logical);
        circ.measure(pos);
        circ.reset(pos);
        layout.evict(logical);
        retired[logical] = true;
    };

    auto emit_gate = [&](const PendingGate &g) {
        if (g.v < 0) {
            circ.rz(layout.physOf(g.u), g.angle);
            --gates_left[g.u];
            retire_if_done(g.u);
            return;
        }
        int pu = layout.physOf(g.u);
        int pv = layout.physOf(g.v);
        TETRIS_ASSERT(hw.connected(pu, pv));
        circ.cx(pu, pv);
        circ.rz(pv, g.angle);
        circ.cx(pu, pv);
        synth_stats.emittedCx += 2;
        --gates_left[g.u];
        --gates_left[g.v];
        retire_if_done(g.u);
        retire_if_done(g.v);
    };

    auto emit_bridged = [&](const PendingGate &g,
                            const std::vector<int> &path) {
        // Chain rooted at the far endpoint: forward CNOTs, RZ, mirror.
        for (size_t k = 0; k + 1 < path.size(); ++k) {
            circ.cx(path[k], path[k + 1]);
            ++synth_stats.emittedCx;
        }
        circ.rz(path.back(), g.angle);
        for (size_t k = path.size() - 1; k >= 1; --k) {
            circ.cx(path[k - 1], path[k]);
            ++synth_stats.emittedCx;
        }
        synth_stats.bridgeNodes += path.size() - 2;
        --gates_left[g.u];
        --gates_left[g.v];
        retire_if_done(g.u);
        retire_if_done(g.v);
    };

    auto gate_distance = [&](const PendingGate &g) {
        if (g.v < 0)
            return 0;
        return hw.distance(layout.physOf(g.u), layout.physOf(g.v));
    };

    while (!pending.empty()) {
        // Phase 1: drain everything currently executable.
        bool drained = true;
        while (drained) {
            drained = false;
            for (size_t i = 0; i < pending.size();) {
                if (gate_distance(pending[i]) <= 1) {
                    emit_gate(pending[i]);
                    pending.erase(pending.begin() + i);
                    drained = true;
                } else {
                    ++i;
                }
            }
        }
        if (pending.empty())
            break;

        // Phase 2: the front gate is the pending gate with the
        // smallest physical distance.
        size_t front = 0;
        for (size_t i = 1; i < pending.size(); ++i) {
            if (gate_distance(pending[i]) < gate_distance(pending[front]))
                front = i;
        }
        const PendingGate g = pending[front];
        int pu = layout.physOf(g.u);
        int pv = layout.physOf(g.v);

        // Candidate SWAPs: edges incident to the front gate's qubits.
        // Benefit = total distance reduction across pending gates.
        int best_benefit = std::numeric_limits<int>::min();
        std::pair<int, int> best_swap{-1, -1};
        auto eval_swap = [&](int a, int b) {
            int before = 0, after = 0;
            for (const auto &p : pending) {
                if (p.v < 0)
                    continue;
                int x = layout.physOf(p.u);
                int y = layout.physOf(p.v);
                before += hw.distance(x, y);
                int xs = x == a ? b : (x == b ? a : x);
                int ys = y == a ? b : (y == b ? a : y);
                after += hw.distance(xs, ys);
            }
            int benefit = before - after;
            if (benefit > best_benefit) {
                best_benefit = benefit;
                best_swap = {a, b};
            }
        };
        for (int nb : hw.neighbors(pu))
            eval_swap(pu, nb);
        for (int nb : hw.neighbors(pv))
            eval_swap(pv, nb);

        // Bridging candidate: a shortest path whose interior is all
        // free ancillas.
        std::vector<int> bridge_path;
        if (opts.enableBridging) {
            std::vector<bool> occupied(hw.numQubits(), false);
            for (int q = 0; q < hw.numQubits(); ++q)
                occupied[q] = !layout.isFree(q);
            std::vector<int> path = hw.shortestPath(pu, pv, &occupied);
            if (path.size() >= 3 &&
                static_cast<int>(path.size()) ==
                    hw.distance(pu, pv) + 1) {
                bridge_path = std::move(path);
            }
        }

        // Lookahead decision (Sec. V-C): SWAP only when it helps
        // future gates enough; otherwise bridge if possible.
        if (!bridge_path.empty() &&
            best_benefit < opts.swapBenefitThreshold) {
            emit_bridged(g, bridge_path);
            pending.erase(pending.begin() + front);
            continue;
        }

        if (best_swap.first >= 0 && best_benefit > 0) {
            circ.swap(best_swap.first, best_swap.second);
            layout.applySwap(best_swap.first, best_swap.second);
            ++synth_stats.insertedSwaps;
            continue;
        }

        // Fallback: no profitable swap exists -- bridge if we can,
        // else route the front gate fully along its shortest path so
        // the next drain phase is guaranteed to emit it.
        if (!bridge_path.empty()) {
            emit_bridged(g, bridge_path);
            pending.erase(pending.begin() + front);
            continue;
        }
        std::vector<int> path = hw.shortestPath(pu, pv);
        TETRIS_ASSERT(path.size() >= 3);
        for (size_t k = 1; k + 1 < path.size(); ++k) {
            circ.swap(path[k - 1], path[k]);
            layout.applySwap(path[k - 1], path[k]);
            ++synth_stats.insertedSwaps;
        }
    }

    if (opts.runPeephole)
        circ = peepholeOptimize(circ);

    auto t1 = std::chrono::steady_clock::now();

    CompileResult result;
    result.circuit = std::move(circ);
    result.finalLayout = layout;
    finalizeStats(result.circuit, naiveCnotCount(blocks),
                  std::chrono::duration<double>(t1 - t0).count(),
                  synth_stats, result.stats);
    return result;
}

} // namespace tetris
