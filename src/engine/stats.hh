/**
 * @file
 * Live engine stats: a periodic progress reporter and the /metrics
 * exposition formatter.
 *
 * StatsReporter is the long-sweep companion: with
 * TETRIS_STATS_INTERVAL=<seconds> set (bench_util wires it around
 * every sweep), a background thread prints one line per interval —
 * finished/submitted, in-flight and queued jobs, throughput, and an
 * ETA — so a 30-minute table2 run is observable without a trace.
 * With TETRIS_STATS_SUMMARY=1 it additionally prints one end-of-run
 * summary line (throughput, p50/p99 job latency, cache hit rate)
 * when it stops, whether or not an interval reporter was armed.
 *
 * formatStatsSnapshot() renders the same state as a full Prometheus
 * text exposition 0.0.4 document: # TYPE'd counter and gauge
 * families, and every MetricsRegistry log2 histogram as cumulative
 * `_bucket{le="..."}` / `_sum` / `_count` series (plus `_max` and
 * `_quantile` gauge companions). It is the body the obs scrape
 * server (obs/obs_server.hh) serves from GET /metrics and what the
 * reporter's per-tick snapshot prints at debug level.
 */

#ifndef TETRIS_ENGINE_STATS_HH
#define TETRIS_ENGINE_STATS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace tetris
{

class Engine;

/**
 * Render the engine's live counters, timers, and histograms as a
 * Prometheus text exposition 0.0.4 document: `tetris_jobs_submitted
 * 40`, `tetris_count{name="jobs.completed"} 40`,
 * `tetris_job_latency_ns_bucket{le="1023"} 7`, ... Histogram
 * `_count` is computed from the same one-shot bucket read as the
 * cumulative series, so `_count` always equals the +Inf bucket even
 * while workers are recording.
 */
std::string formatStatsSnapshot(const Engine &engine);

class StatsReporter
{
  public:
    /**
     * Start reporting on `engine` every `interval_seconds`;
     * <= 0 disables (no thread). The engine must outlive the
     * reporter. The default interval comes from
     * TETRIS_STATS_INTERVAL; `summary` (default TETRIS_STATS_SUMMARY)
     * requests the one-line end-of-run summary from stop().
     */
    explicit StatsReporter(const Engine &engine,
                           double interval_seconds = intervalFromEnv(),
                           bool summary = summaryFromEnv());

    /** Stops and joins the reporting thread. */
    ~StatsReporter();

    StatsReporter(const StatsReporter &) = delete;
    StatsReporter &operator=(const StatsReporter &) = delete;

    /**
     * Stop early (idempotent; the destructor calls it). The first
     * call prints the end-of-run summary when one was requested.
     */
    void stop();

    bool active() const { return thread_.joinable(); }

    /**
     * TETRIS_STATS_INTERVAL in seconds: strict integer in
     * [1, 86400]; unset or 0 disables, anything else warns and
     * disables.
     */
    static double intervalFromEnv();

    /** TETRIS_STATS_SUMMARY: set and not "0" enables the summary. */
    static bool summaryFromEnv();

    /**
     * The end-of-run summary line (without trailing newline): jobs
     * finished, wall time, throughput, job-latency p50/p99, and the
     * in-memory/disk cache hit rates. Public so tests can check the
     * numbers without scraping stderr.
     */
    static std::string formatSummary(const Engine &engine,
                                     double elapsed_seconds);

  private:
    void loop();

    const Engine &engine_;
    const double interval_;
    const bool summary_;
    const std::chrono::steady_clock::time_point start_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace tetris

#endif // TETRIS_ENGINE_STATS_HH
