/**
 * @file
 * Live engine stats: a periodic progress reporter and the
 * /metrics-style snapshot formatter.
 *
 * StatsReporter is the long-sweep companion: with
 * TETRIS_STATS_INTERVAL=<seconds> set (bench_util wires it around
 * every sweep), a background thread prints one line per interval —
 * finished/submitted, in-flight and queued jobs, throughput, and an
 * ETA — so a 30-minute table2 run is observable without a trace.
 *
 * formatStatsSnapshot() renders the same state as a text-exposition
 * document (one `tetris_*` sample per line, Prometheus-style): it is
 * the body the planned `tetrisd` daemon will serve from its /metrics
 * endpoint, and what the reporter's final summary prints at debug
 * level.
 */

#ifndef TETRIS_ENGINE_STATS_HH
#define TETRIS_ENGINE_STATS_HH

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace tetris
{

class Engine;

/**
 * Render the engine's live counters, timers, and histogram
 * percentiles as Prometheus-style text: `tetris_jobs_submitted 40`,
 * `tetris_seconds{name="compile.total"} 1.25`,
 * `tetris_histogram_ns{name="job.latency_ns",quantile="0.99"} ...`.
 */
std::string formatStatsSnapshot(const Engine &engine);

class StatsReporter
{
  public:
    /**
     * Start reporting on `engine` every `interval_seconds`;
     * <= 0 disables (no thread). The engine must outlive the
     * reporter. The default interval comes from
     * TETRIS_STATS_INTERVAL.
     */
    explicit StatsReporter(const Engine &engine,
                           double interval_seconds = intervalFromEnv());

    /** Stops and joins the reporting thread. */
    ~StatsReporter();

    StatsReporter(const StatsReporter &) = delete;
    StatsReporter &operator=(const StatsReporter &) = delete;

    /** Stop early (idempotent; the destructor calls it). */
    void stop();

    bool active() const { return thread_.joinable(); }

    /**
     * TETRIS_STATS_INTERVAL in seconds: strict integer in
     * [1, 86400]; unset or 0 disables, anything else warns and
     * disables.
     */
    static double intervalFromEnv();

  private:
    void loop();

    const Engine &engine_;
    const double interval_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace tetris

#endif // TETRIS_ENGINE_STATS_HH
