#include "engine/trace.hh"

#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/json.hh"
#include "common/log.hh"

namespace tetris
{

namespace
{

/** Unique tracer ids so the thread-local cache never aliases a
 *  destroyed tracer with a new one at the same address. */
std::atomic<uint64_t> g_next_tracer_id{1};

struct TlsEntry
{
    uint64_t tracerId;
    void *buffer;
};

/** Per-thread cache of (tracer id -> buffer). A thread records into
 *  at most a couple of tracers, so linear search wins over a map. */
thread_local std::vector<TlsEntry> t_buffers;

} // namespace

Tracer::Tracer() : id_(g_next_tracer_id.fetch_add(1)) {}

Tracer::~Tracer()
{
    // The global tracer relies on this: armed from TETRIS_TRACE, the
    // trace lands on disk when the process tears the instance down.
    if (enabled() && !path_.empty())
        writeFile();
}

void
Tracer::enable(std::string path)
{
    path_ = std::move(path);
    epochNs_ = steadyNowNs();
    enabled_.store(true, std::memory_order_release);
}

Tracer::Buffer &
Tracer::localBuffer()
{
    for (const TlsEntry &e : t_buffers) {
        if (e.tracerId == id_)
            return *static_cast<Buffer *>(e.buffer);
    }
    auto owned = std::make_unique<Buffer>();
    Buffer *buffer = owned.get();
    {
        std::lock_guard<std::mutex> lock(buffersMutex_);
        buffer->tid = static_cast<int>(buffers_.size());
        buffers_.push_back(std::move(owned));
    }
    t_buffers.push_back({id_, buffer});
    return *buffer;
}

void
Tracer::recordSpan(const char *name, const char *category,
                   uint64_t start_ns, uint64_t end_ns, std::string job)
{
    if (!enabled())
        return;
    if (end_ns < start_ns)
        end_ns = start_ns;
    Buffer &buffer = localBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.events.push_back(Event{name, category, start_ns,
                                  end_ns - start_ns, std::move(job)});
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(buffersMutex_);
    size_t total = 0;
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        total += buffer->events.size();
    }
    return total;
}

std::string
Tracer::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents").beginArray();
    {
        std::lock_guard<std::mutex> lock(buffersMutex_);
        for (const auto &buffer : buffers_) {
            std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
            for (const Event &e : buffer->events) {
                w.beginObject();
                w.key("name").value(e.name);
                w.key("cat").value(e.category);
                w.key("ph").value("X");
                // Chrome trace events use microsecond doubles,
                // relative to any fixed origin; ours is enable().
                w.key("ts").value(
                    static_cast<double>(e.startNs - epochNs_) / 1e3);
                w.key("dur").value(static_cast<double>(e.durNs) / 1e3);
                w.key("pid").value(1);
                w.key("tid").value(buffer->tid);
                if (!e.job.empty()) {
                    w.key("args").beginObject();
                    w.key("job").value(e.job);
                    w.endObject();
                }
                w.endObject();
            }
        }
    }
    w.endArray();
    w.key("displayTimeUnit").value("ms");
    w.endObject();
    return w.str();
}

bool
Tracer::writeFile() const
{
    if (path_.empty()) {
        logWarn("trace: no output path configured; span data dropped");
        return false;
    }
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
        logWarn("trace: cannot open '", path_, "' for writing");
        return false;
    }
    out << toJson() << "\n";
    out.close();
    if (out.fail()) {
        logWarn("trace: write to '", path_, "' failed");
        return false;
    }
    return true;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(buffersMutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->events.clear();
    }
}

Tracer &
Tracer::global()
{
    // Constructed on first use — the engine touches it in its
    // constructor, so it outlives every Engine (and its worker
    // threads); the destructor then flushes TETRIS_TRACE output.
    static Tracer tracer;
    static const bool armed = [] {
        if (const char *path = std::getenv("TETRIS_TRACE")) {
            if (*path != '\0')
                tracer.enable(path);
        }
        return true;
    }();
    (void)armed;
    return tracer;
}

} // namespace tetris
