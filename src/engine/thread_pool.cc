#include "engine/thread_pool.hh"

#include <cstdlib>

#include "common/env.hh"
#include "common/log.hh"
#include "common/logging.hh"

namespace tetris
{

ThreadPool::ThreadPool(int num_threads)
{
    if (num_threads < 1)
        num_threads = 1;
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock,
                   [this] { return queue_.empty() && activeTasks_ == 0; });
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    TETRIS_ASSERT(task != nullptr, "null task submitted");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TETRIS_ASSERT(!stopping_, "submit on a stopping pool");
        queue_.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && activeTasks_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++activeTasks_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --activeTasks_;
        }
        idle_.notify_all();
    }
}

int
ThreadPool::resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("TETRIS_ENGINE_THREADS")) {
        if (int n = parseEnvInt(env, 1, 4096))
            return n;
        logWarn("ignoring invalid TETRIS_ENGINE_THREADS='", env,
                "' (want an integer in [1, 4096]); using hardware "
                "concurrency");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace tetris
