#include "engine/compile_cache.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "common/logging.hh"

namespace tetris
{

void
CompileCache::Entry::publish(std::shared_ptr<const CompileResult> result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TETRIS_ASSERT(!ready_.load(std::memory_order_relaxed),
                      "cache entry published twice");
        result_ = std::move(result);
        // The release store pairs with the lock-free acquire in
        // get(): a reader that observes ready_ sees result_.
        ready_.store(true, std::memory_order_release);
    }
    published_.notify_all();
}

std::shared_ptr<const CompileResult>
CompileCache::Entry::get() const
{
    if (ready_.load(std::memory_order_acquire))
        return result_;
    std::unique_lock<std::mutex> lock(mutex_);
    published_.wait(lock, [this] {
        return ready_.load(std::memory_order_relaxed);
    });
    return result_;
}

namespace
{

constexpr int kMaxShards = 1024;

constexpr uint8_t kEmpty = 0;
constexpr uint8_t kFull = 1;
constexpr uint8_t kDead = 2;

/** Smallest read-view capacity; must be a power of two. */
constexpr size_t kMinViewCapacity = 16;

/** Smallest power of two >= n, clamped to [1, kMaxShards]. */
int
nextPowerOfTwo(unsigned n)
{
    int p = 1;
    while (p < kMaxShards && static_cast<unsigned>(p) < n)
        p *= 2;
    return p;
}

/** Load-factor gate: can a view of `capacity` take `live` keys and
 *  still keep >= 1/4 of its slots empty (probe termination)? */
bool
fitsView(size_t live, size_t capacity)
{
    return live * 4 <= capacity * 3;
}

} // namespace

int
CompileCache::resolveShardCount(int requested)
{
    if (requested > 0)
        return requested > kMaxShards ? kMaxShards : requested;
    if (const char *env = std::getenv("TETRIS_CACHE_SHARDS")) {
        if (int n = parseEnvInt(env, 1, kMaxShards))
            return n;
        logWarn("ignoring invalid TETRIS_CACHE_SHARDS='", env,
                "' (want an integer in [1, 1024]); deriving from "
                "hardware concurrency");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return nextPowerOfTwo(hw == 0 ? 1 : hw);
}

CompileCache::CompileCache(int num_shards)
    : numShards_(resolveShardCount(num_shards)),
      shards_(new Shard[static_cast<size_t>(numShards_)])
{
    for (int i = 0; i < numShards_; ++i) {
        shards_[i].view.store(new View(kMinViewCapacity),
                              std::memory_order_release);
    }
}

CompileCache::~CompileCache()
{
    for (int i = 0; i < numShards_; ++i)
        delete shards_[i].view.load(std::memory_order_acquire);
}

std::unique_lock<std::mutex>
CompileCache::lockShard(const Shard &shard) const
{
    std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        // Contended: time the blocked wait only, so the common
        // uncontended acquisition stays two instructions.
        auto t0 = std::chrono::steady_clock::now();
        lock.lock();
        auto waited = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        lockWaitNs_.fetch_add(waited, std::memory_order_relaxed);
        if (lockWaitHist_ != nullptr)
            lockWaitHist_->record(waited);
    }
    return lock;
}

std::shared_ptr<CompileCache::Entry>
CompileCache::findInView(const Shard &shard, uint64_t key)
{
    // Pure loads: acquire the view pointer, then linear-probe with an
    // acquire load per slot state. Views keep >= 1/4 of their slots
    // empty at all times, so the probe always terminates, and a view
    // observed through the atomic pointer is never freed while the
    // cache lives, so a stale pointer is still safe to walk.
    const View *view = shard.view.load(std::memory_order_acquire);
    size_t i = key & view->mask;
    while (true) {
        const Slot &slot = view->slots[i];
        const uint8_t state = slot.state.load(std::memory_order_acquire);
        if (state == kEmpty)
            return nullptr;
        if (state == kFull && slot.key == key)
            return slot.entry;
        i = (i + 1) & view->mask;
    }
}

void
CompileCache::publishToView(Shard &shard, uint64_t key,
                            std::shared_ptr<Entry> entry)
{
    View *view = shard.view.load(std::memory_order_relaxed);
    if (!fitsView(view->used + 1, view->mask + 1)) {
        // Dead slots are never reused (a reader may still be copying
        // the entry of a slot it saw kFull), so growth also reclaims
        // tombstones: size for the live key set, not `used`.
        size_t capacity = kMinViewCapacity;
        while (!fitsView(shard.entries.size(), capacity))
            capacity *= 2;
        rebuildView(shard, capacity);
        return; // the rebuild placed `key` from the authoritative map
    }
    size_t i = key & view->mask;
    while (view->slots[i].state.load(std::memory_order_relaxed) !=
           kEmpty)
        i = (i + 1) & view->mask;
    Slot &slot = view->slots[i];
    slot.key = key;
    slot.entry = std::move(entry);
    // Release pairs with the reader's acquire on state: observing
    // kFull implies key and entry are visible.
    slot.state.store(kFull, std::memory_order_release);
    ++view->used;
}

void
CompileCache::tombstoneInView(Shard &shard, uint64_t key)
{
    View *view = shard.view.load(std::memory_order_relaxed);
    size_t i = key & view->mask;
    while (true) {
        Slot &slot = view->slots[i];
        const uint8_t state =
            slot.state.load(std::memory_order_relaxed);
        if (state == kEmpty)
            return;
        if (state == kFull && slot.key == key) {
            // Tombstone only — the slot's entry pointer stays intact
            // so a reader mid-probe can still copy it safely; the
            // memory is reclaimed at the next rebuild.
            slot.state.store(kDead, std::memory_order_release);
            return;
        }
        i = (i + 1) & view->mask;
    }
}

void
CompileCache::rebuildView(Shard &shard, size_t capacity)
{
    auto next = std::make_unique<View>(capacity);
    for (const auto &[key, entry] : shard.entries) {
        size_t i = key & next->mask;
        while (next->slots[i].state.load(std::memory_order_relaxed) !=
               kEmpty)
            i = (i + 1) & next->mask;
        Slot &slot = next->slots[i];
        slot.key = key;
        slot.entry = entry;
        // Not yet published: plain ordering suffices, the release
        // store of the view pointer below fences everything.
        slot.state.store(kFull, std::memory_order_relaxed);
        ++next->used;
    }
    View *old = shard.view.load(std::memory_order_relaxed);
    shard.view.store(next.release(), std::memory_order_release);
    // Readers may still hold `old`; park it until the cache dies.
    shard.retired.emplace_back(old);
}

std::shared_ptr<CompileCache::Entry>
CompileCache::acquire(uint64_t key, bool &is_new)
{
    Shard &shard = shardFor(key);
    // Fast path: published hits never touch the shard mutex.
    if (auto entry = findInView(shard, key)) {
        is_new = false;
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return entry;
    }
    auto lock = lockShard(shard);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        // Raced with the inserter between our view probe and the
        // lock: still a hit, and still exactly one is_new per key.
        is_new = false;
        shard.hits.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    is_new = true;
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    auto entry = std::make_shared<Entry>();
    shard.entries.emplace(key, entry);
    publishToView(shard, key, entry);
    return entry;
}

size_t
CompileCache::hits() const
{
    size_t total = 0;
    for (int i = 0; i < numShards_; ++i)
        total += shards_[i].hits.load(std::memory_order_relaxed);
    return total;
}

size_t
CompileCache::misses() const
{
    size_t total = 0;
    for (int i = 0; i < numShards_; ++i)
        total += shards_[i].misses.load(std::memory_order_relaxed);
    return total;
}

size_t
CompileCache::size() const
{
    size_t total = 0;
    for (int i = 0; i < numShards_; ++i) {
        auto lock = lockShard(shards_[i]);
        total += shards_[i].entries.size();
    }
    return total;
}

void
CompileCache::erase(uint64_t key)
{
    Shard &shard = shardFor(key);
    auto lock = lockShard(shard);
    if (shard.entries.erase(key) != 0)
        tombstoneInView(shard, key);
}

void
CompileCache::clear()
{
    for (int i = 0; i < numShards_; ++i) {
        auto lock = lockShard(shards_[i]);
        shards_[i].entries.clear();
        rebuildView(shards_[i], kMinViewCapacity);
        shards_[i].hits.store(0, std::memory_order_relaxed);
        shards_[i].misses.store(0, std::memory_order_relaxed);
    }
    lockWaitNs_.store(0);
}

} // namespace tetris
