#include "engine/compile_cache.hh"

#include "common/logging.hh"

namespace tetris
{

void
CompileCache::Entry::publish(std::shared_ptr<const CompileResult> result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TETRIS_ASSERT(!ready_, "cache entry published twice");
        result_ = std::move(result);
        ready_ = true;
    }
    published_.notify_all();
}

std::shared_ptr<const CompileResult>
CompileCache::Entry::get() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    published_.wait(lock, [this] { return ready_; });
    return result_;
}

std::shared_ptr<CompileCache::Entry>
CompileCache::acquire(uint64_t key, bool &is_new)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        is_new = false;
        hits_.fetch_add(1);
        return it->second;
    }
    is_new = true;
    misses_.fetch_add(1);
    auto entry = std::make_shared<Entry>();
    entries_.emplace(key, entry);
    return entry;
}

size_t
CompileCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
CompileCache::erase(uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.erase(key);
}

void
CompileCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

} // namespace tetris
