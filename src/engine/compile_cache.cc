#include "engine/compile_cache.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/env.hh"
#include "common/log.hh"
#include "common/logging.hh"

namespace tetris
{

void
CompileCache::Entry::publish(std::shared_ptr<const CompileResult> result)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        TETRIS_ASSERT(!ready_, "cache entry published twice");
        result_ = std::move(result);
        ready_ = true;
    }
    published_.notify_all();
}

std::shared_ptr<const CompileResult>
CompileCache::Entry::get() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    published_.wait(lock, [this] { return ready_; });
    return result_;
}

namespace
{

constexpr int kMaxShards = 1024;

/** Smallest power of two >= n, clamped to [1, kMaxShards]. */
int
nextPowerOfTwo(unsigned n)
{
    int p = 1;
    while (p < kMaxShards && static_cast<unsigned>(p) < n)
        p *= 2;
    return p;
}

} // namespace

int
CompileCache::resolveShardCount(int requested)
{
    if (requested > 0)
        return requested > kMaxShards ? kMaxShards : requested;
    if (const char *env = std::getenv("TETRIS_CACHE_SHARDS")) {
        if (int n = parseEnvInt(env, 1, kMaxShards))
            return n;
        logWarn("ignoring invalid TETRIS_CACHE_SHARDS='", env,
                "' (want an integer in [1, 1024]); deriving from "
                "hardware concurrency");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return nextPowerOfTwo(hw == 0 ? 1 : hw);
}

CompileCache::CompileCache(int num_shards)
    : numShards_(resolveShardCount(num_shards)),
      shards_(new Shard[static_cast<size_t>(numShards_)])
{
}

std::unique_lock<std::mutex>
CompileCache::lockShard(const Shard &shard) const
{
    std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
        // Contended: time the blocked wait only, so the common
        // uncontended acquisition stays two instructions.
        auto t0 = std::chrono::steady_clock::now();
        lock.lock();
        auto waited = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        lockWaitNs_.fetch_add(waited, std::memory_order_relaxed);
        if (lockWaitHist_ != nullptr)
            lockWaitHist_->record(waited);
    }
    return lock;
}

std::shared_ptr<CompileCache::Entry>
CompileCache::acquire(uint64_t key, bool &is_new)
{
    Shard &shard = shardFor(key);
    auto lock = lockShard(shard);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
        is_new = false;
        hits_.fetch_add(1);
        return it->second;
    }
    is_new = true;
    misses_.fetch_add(1);
    auto entry = std::make_shared<Entry>();
    shard.entries.emplace(key, entry);
    return entry;
}

size_t
CompileCache::size() const
{
    size_t total = 0;
    for (int i = 0; i < numShards_; ++i) {
        auto lock = lockShard(shards_[i]);
        total += shards_[i].entries.size();
    }
    return total;
}

void
CompileCache::erase(uint64_t key)
{
    Shard &shard = shardFor(key);
    auto lock = lockShard(shard);
    shard.entries.erase(key);
}

void
CompileCache::clear()
{
    for (int i = 0; i < numShards_; ++i) {
        auto lock = lockShard(shards_[i]);
        shards_[i].entries.clear();
    }
    hits_.store(0);
    misses_.store(0);
    lockWaitNs_.store(0);
}

} // namespace tetris
