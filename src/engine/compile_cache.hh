/**
 * @file
 * Content-addressed cache of compilation results.
 *
 * Jobs are keyed by a 64-bit FNV content hash of (blocks, coupling
 * graph, pipeline, options); see Engine::jobKey. The cache also
 * deduplicates in-flight work: the first submitter of a key computes
 * the result while concurrent submitters of the same key block on the
 * shared Entry instead of recompiling. Results are immutable once
 * published (shared_ptr<const CompileResult>).
 */

#ifndef TETRIS_ENGINE_COMPILE_CACHE_HH
#define TETRIS_ENGINE_COMPILE_CACHE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/compiler.hh"

namespace tetris
{

class CompileCache
{
  public:
    /**
     * One cache slot: created unpublished, filled exactly once by the
     * job that owns the compilation, awaited by everyone else.
     */
    class Entry
    {
      public:
        /** Publish the result and wake all waiters (call once). */
        void publish(std::shared_ptr<const CompileResult> result);

        /** Block until published, then return the result. */
        std::shared_ptr<const CompileResult> get() const;

      private:
        mutable std::mutex mutex_;
        mutable std::condition_variable published_;
        std::shared_ptr<const CompileResult> result_;
        bool ready_ = false;
    };

    /**
     * Look up `key`, inserting an unpublished Entry if absent.
     * `is_new` tells the caller whether it must compute and publish
     * (miss) or merely wait on the returned entry (hit — including
     * hits on entries still being computed).
     */
    std::shared_ptr<Entry> acquire(uint64_t key, bool &is_new);

    size_t hits() const { return hits_.load(); }
    size_t misses() const { return misses_.load(); }
    size_t size() const;

    /**
     * Forget one key (e.g. a cancelled compilation) so the next
     * acquire recomputes. Waiters already holding the entry keep it.
     */
    void erase(uint64_t key);

    /** Drop all entries and reset the hit/miss counters. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries_;
    std::atomic<size_t> hits_{0};
    std::atomic<size_t> misses_{0};
};

} // namespace tetris

#endif // TETRIS_ENGINE_COMPILE_CACHE_HH
