/**
 * @file
 * Content-addressed cache of compilation results.
 *
 * Jobs are keyed by a 64-bit FNV content hash of (blocks, coupling
 * graph, pipeline, options); see Engine::jobKey. The cache also
 * deduplicates in-flight work: the first submitter of a key computes
 * the result while concurrent submitters of the same key block on the
 * shared Entry instead of recompiling. Results are immutable once
 * published (shared_ptr<const CompileResult>).
 *
 * The table is striped across N independently-locked shards (key
 * modulo shard count — jobKey output is already well mixed). On top
 * of each shard's authoritative map sits a lock-free read view: an
 * open-addressed slot array published through an atomic pointer.
 * A hit on a published key never touches the shard mutex — readers
 * acquire-load the view pointer, linear-probe with acquire loads of
 * the slot states, and copy out the entry. Mutexes are retained only
 * for the miss/insert/in-flight-dedup path and for erase/clear, so a
 * pure-hit workload performs no lock acquisitions at all and
 * lockWaitNs() stays exactly zero.
 *
 * All dedup guarantees hold per key, and a key always maps to exactly
 * one shard, so sharding never changes observable semantics: exactly
 * one acquire() per key reports is_new, erase() targets the one shard
 * that can hold the key, and hit/miss accounting stays global (striped
 * per-shard counters summed on read). Contention that does occur is
 * measured: lockWaitNs() sums the time threads spent blocked on shard
 * mutexes (uncontended acquisitions cost no clock reads), which the
 * perf microbench and the cache.lock_wait_ns metric expose.
 */

#ifndef TETRIS_ENGINE_COMPILE_CACHE_HH
#define TETRIS_ENGINE_COMPILE_CACHE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "core/compiler.hh"

namespace tetris
{

class CompileCache
{
  public:
    /**
     * One cache slot: created unpublished, filled exactly once by the
     * job that owns the compilation, awaited by everyone else.
     */
    class Entry
    {
      public:
        /** Publish the result and wake all waiters (call once). */
        void publish(std::shared_ptr<const CompileResult> result);

        /**
         * Return the result, blocking until published. Once the
         * result is out, this is a single acquire load — waiters that
         * arrive late never touch the entry mutex.
         */
        std::shared_ptr<const CompileResult> get() const;

        /**
         * Verify verdict for this entry's result: 0 = not run, else
         * 1 + VerifyStatus (1 pass, 2 fail, 3 skipped). Set by the
         * publishing job before publish(), so any waiter that has
         * returned from get() reads a settled value. The serve layer
         * routes this into its Result frames; dedup'd and
         * memory-cache-hit submissions share the one verdict of the
         * submission that compiled.
         */
        void setVerifyStatus(uint8_t v)
        {
            verify_.store(v, std::memory_order_release);
        }
        uint8_t verifyStatus() const
        {
            return verify_.load(std::memory_order_acquire);
        }

      private:
        mutable std::mutex mutex_;
        mutable std::condition_variable published_;
        std::shared_ptr<const CompileResult> result_;
        std::atomic<bool> ready_{false};
        /** 0 = verify not run, else 1 + VerifyStatus. */
        std::atomic<uint8_t> verify_{0};
    };

    /**
     * Build a cache striped over resolveShardCount(num_shards)
     * shards; the default resolves TETRIS_CACHE_SHARDS / hardware
     * concurrency.
     */
    explicit CompileCache(int num_shards = 0);
    ~CompileCache();

    CompileCache(const CompileCache &) = delete;
    CompileCache &operator=(const CompileCache &) = delete;

    /**
     * Look up `key`, inserting an unpublished Entry if absent.
     * `is_new` tells the caller whether it must compute and publish
     * (miss) or merely wait on the returned entry (hit — including
     * hits on entries still being computed). Hits on published keys
     * are lock-free.
     */
    std::shared_ptr<Entry> acquire(uint64_t key, bool &is_new);

    size_t hits() const;
    size_t misses() const;
    size_t size() const;

    /**
     * Forget one key (e.g. a cancelled compilation) so the next
     * acquire recomputes. Waiters already holding the entry keep it.
     */
    void erase(uint64_t key);

    /** Drop all entries and reset the hit/miss/lock-wait counters. */
    void clear();

    int shardCount() const { return numShards_; }

    /**
     * Total nanoseconds threads spent blocked acquiring shard
     * mutexes. Only contended acquisitions are timed, so the hot
     * uncontended path pays no clock reads.
     */
    uint64_t lockWaitNs() const { return lockWaitNs_.load(); }

    /**
     * Also record each contended wait into `hist` (the engine wires
     * its cache.lock_wait_ns histogram here, turning the flat total
     * into a p50/p90/p99 distribution). Set before concurrent use;
     * null detaches. The histogram must outlive the cache.
     */
    void setLockWaitHistogram(Histogram *hist) { lockWaitHist_ = hist; }

    /**
     * Resolve a shard-count request: a positive request wins;
     * otherwise the TETRIS_CACHE_SHARDS environment variable
     * (strict integer in [1, 1024], anything else warns and falls
     * through); otherwise hardware concurrency rounded up to the
     * next power of two. Always in [1, 1024].
     */
    static int resolveShardCount(int requested);

  private:
    /**
     * One slot of a shard's lock-free read view. The writer fills
     * key/entry and then release-stores the state; readers that
     * acquire-load a non-empty state may touch the other fields.
     * After that a slot is immutable except for the kDead tombstone,
     * so a concurrent reader can always safely copy `entry`.
     */
    struct Slot
    {
        std::atomic<uint8_t> state{0}; // kEmpty / kFull / kDead
        uint64_t key = 0;
        std::shared_ptr<Entry> entry;
    };

    /**
     * An open-addressed, power-of-two-sized probe array. Published
     * views only ever gain kFull slots or see kFull become kDead;
     * superseded views are retired (kept allocated, never mutated)
     * until the cache dies, so readers holding a stale pointer stay
     * safe without reference counting on the hot path.
     */
    struct View
    {
        explicit View(size_t capacity)
            : mask(capacity - 1), slots(capacity)
        {
        }

        size_t mask;
        std::vector<Slot> slots;
        /** kFull + kDead slots; writer-side only (under the mutex). */
        size_t used = 0;
    };

    struct alignas(64) Shard
    {
        mutable std::mutex mutex;
        std::unordered_map<uint64_t, std::shared_ptr<Entry>> entries;
        std::atomic<View *> view{nullptr};
        /** Views superseded by rehash/clear; freed by ~CompileCache. */
        std::vector<std::unique_ptr<View>> retired;
        /** Striped counters (summed by hits()/misses()). */
        std::atomic<size_t> hits{0};
        std::atomic<size_t> misses{0};
    };

    Shard &shardFor(uint64_t key) const
    {
        return shards_[key % static_cast<uint64_t>(numShards_)];
    }

    /** Lock a shard, accumulating blocked time into lockWaitNs_. */
    std::unique_lock<std::mutex> lockShard(const Shard &shard) const;

    /** Lock-free probe of the published view. Null on miss. */
    static std::shared_ptr<Entry> findInView(const Shard &shard,
                                             uint64_t key);

    /** Writer-side (shard locked): add key to the live view,
     *  rehashing first if the load factor would exceed 3/4. */
    static void publishToView(Shard &shard, uint64_t key,
                              std::shared_ptr<Entry> entry);

    /** Writer-side (shard locked): tombstone key in the live view. */
    static void tombstoneInView(Shard &shard, uint64_t key);

    /** Writer-side (shard locked): swap in a fresh view rebuilt from
     *  the authoritative map, retiring the old one. */
    static void rebuildView(Shard &shard, size_t capacity);

    int numShards_;
    std::unique_ptr<Shard[]> shards_;
    mutable std::atomic<uint64_t> lockWaitNs_{0};
    /** Optional per-wait distribution; see setLockWaitHistogram. */
    Histogram *lockWaitHist_ = nullptr;
};

} // namespace tetris

#endif // TETRIS_ENGINE_COMPILE_CACHE_HH
