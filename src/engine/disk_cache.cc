#include "engine/disk_cache.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "common/logging.hh"
#include "obs/event_log.hh"
#include "serialize/artifact.hh"
#include "serialize/mmap_file.hh"

namespace fs = std::filesystem;

namespace tetris
{

namespace
{

/** Keys render as fixed-width lowercase hex: stable shard prefixes. */
std::string
keyHex(uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<size_t>(i)] = digits[key & 0xf];
        key >>= 4;
    }
    return s;
}

/** The artifact files of one store, cheap metadata included. */
struct DiskEntry
{
    fs::path path;
    uint64_t size = 0;
    fs::file_time_type mtime;
};

std::vector<DiskEntry>
listEntries(const std::string &dir)
{
    std::vector<DiskEntry> entries;
    std::error_code ec;
    for (const auto &shard : fs::directory_iterator(dir, ec)) {
        if (!shard.is_directory(ec))
            continue;
        for (const auto &file : fs::directory_iterator(shard.path(), ec)) {
            if (!file.is_regular_file(ec) ||
                file.path().extension() != ".tca") {
                continue;
            }
            DiskEntry e;
            e.path = file.path();
            e.size = file.file_size(ec);
            e.mtime = file.last_write_time(ec);
            if (!ec)
                entries.push_back(std::move(e));
        }
    }
    return entries;
}

/** Strict byte-count parse of TETRIS_CACHE_MAX_BYTES; 0 on reject. */
uint64_t
maxBytesFromEnv()
{
    const char *v = std::getenv("TETRIS_CACHE_MAX_BYTES");
    if (v == nullptr || *v == '\0')
        return 0;
    errno = 0;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    while (end != nullptr && (*end == ' ' || *end == '\t'))
        ++end;
    if (errno != 0 || end == v || *end != '\0' ||
        std::strchr(v, '-') != nullptr) {
        logWarn("ignoring invalid TETRIS_CACHE_MAX_BYTES='", v,
                "' (want a plain byte count)");
        return 0;
    }
    return parsed;
}

} // namespace

std::shared_ptr<DiskCache>
DiskCache::openFromEnv()
{
    const char *dir = std::getenv("TETRIS_CACHE_DIR");
    if (dir == nullptr || *dir == '\0')
        return nullptr;
    return open(dir, maxBytesFromEnv());
}

std::shared_ptr<DiskCache>
DiskCache::open(const std::string &dir, uint64_t max_bytes)
{
    if (dir.find_first_not_of(" \t\n") == std::string::npos) {
        logWarn("disk cache disabled: empty cache directory path");
        return nullptr;
    }
    std::error_code ec;
    // Pin relative paths to the current CWD once, so later loads and
    // stores don't silently retarget when the process chdirs.
    fs::path root = fs::absolute(dir, ec);
    if (ec) {
        logWarn("disk cache disabled: cannot resolve '", dir, "': ",
                ec.message());
        return nullptr;
    }
    fs::create_directories(root, ec);
    if (ec) {
        logWarn("disk cache disabled: cannot create '", root.string(),
                "': ", ec.message());
        return nullptr;
    }
    // Probe writability now: a read-only store must degrade to
    // cache-off at startup, not to per-job warnings mid-sweep.
    fs::path probe =
        root / (".probe." + std::to_string(::getpid()) + ".tmp");
    {
        std::ofstream out(probe, std::ios::binary);
        out << "probe";
        if (!out) {
            logWarn("disk cache disabled: '", root.string(),
                    "' is not writable");
            fs::remove(probe, ec);
            return nullptr;
        }
    }
    fs::remove(probe, ec);
    return std::shared_ptr<DiskCache>(
        new DiskCache(root.string(), max_bytes));
}

std::string
DiskCache::pathFor(uint64_t key) const
{
    std::string hex = keyHex(key);
    return (fs::path(dir_) / hex.substr(0, 2) / (hex + ".tca")).string();
}

std::shared_ptr<const CompileResult>
DiskCache::load(uint64_t key) const
{
    fs::path path = pathFor(key);
    // Zero-copy read: the artifact's bytes are decoded directly out
    // of the mapped file (or the fallback buffer), never staged
    // through an intermediate string.
    serialize::MappedFile file = serialize::MappedFile::open(path.string());
    if (!file.valid()) {
        misses_.fetch_add(1);
        return nullptr;
    }
    auto result = std::make_shared<CompileResult>();
    if (!serialize::decodeArtifact(file.span(), key, *result)) {
        // Corruption of any kind is a miss: the caller recompiles and
        // the subsequent store() overwrites the bad file. Worth an
        // event and a warn — one corrupt artifact is bit rot, many
        // are a codec bug or a dying disk.
        misses_.fetch_add(1);
        EventLog &events = EventLog::global();
        if (events.enabled()) {
            events.record(
                "disk.corrupt_miss",
                {EventLog::Field::u64("key", key),
                 EventLog::Field::str("path", path.string())});
        }
        logWarn("disk cache: corrupt artifact ", path.string(),
                " (treating as miss)");
        return nullptr;
    }
    hits_.fetch_add(1);
    (file.isMapped() ? mmapLoads_ : bufferedLoads_).fetch_add(1);
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return result;
}

bool
DiskCache::store(uint64_t key, const CompileResult &result) const
{
    std::string image = serialize::encodeArtifact(key, result);
    fs::path path = pathFor(key);
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
        logWarn("disk cache: cannot create shard dir for ",
                path.string(), ": ", ec.message());
        return false;
    }
    // Unique-per-writer temp name in the final directory, so the
    // rename is a same-filesystem atomic replace.
    static std::atomic<unsigned> seq{0};
    fs::path tmp = path;
    tmp += ".tmp." + std::to_string(::getpid()) + "." +
           std::to_string(seq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(image.data(),
                  static_cast<std::streamsize>(image.size()));
        // Close before the rename and re-check: a buffered write
        // error (ENOSPC) may only surface at flush time, and a
        // truncated temp file must never reach the final path.
        out.close();
        if (out.fail()) {
            logWarn("disk cache: write failed for ", tmp.string());
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        logWarn("disk cache: rename failed for ", path.string(), ": ",
                ec.message());
        fs::remove(tmp, ec);
        return false;
    }
    writes_.fetch_add(1);
    return true;
}

size_t
DiskCache::trim(uint64_t max_bytes) const
{
    std::vector<DiskEntry> entries = listEntries(dir_);
    uint64_t total = 0;
    for (const auto &e : entries)
        total += e.size;
    if (total <= max_bytes)
        return 0;
    std::sort(entries.begin(), entries.end(),
              [](const DiskEntry &a, const DiskEntry &b) {
                  return a.mtime < b.mtime;
              });
    size_t removed = 0;
    std::error_code ec;
    for (const auto &e : entries) {
        if (total <= max_bytes)
            break;
        if (fs::remove(e.path, ec) && !ec) {
            total -= e.size;
            ++removed;
        }
    }
    if (removed > 0) {
        EventLog &events = EventLog::global();
        if (events.enabled()) {
            events.record("disk.trim",
                          {EventLog::Field::u64(
                               "removed", static_cast<uint64_t>(removed)),
                           EventLog::Field::u64("kept_bytes", total),
                           EventLog::Field::u64("max_bytes", max_bytes)});
        }
        logInfo("disk cache: trimmed ", removed, " artifact(s) to ",
                total, " bytes (budget ", max_bytes, ")");
    }
    return removed;
}

void
DiskCache::clear() const
{
    std::error_code ec;
    for (const auto &e : listEntries(dir_))
        fs::remove(e.path, ec);
    // Drop now-empty shard dirs; harmless if another process is
    // concurrently repopulating them (its store() recreates dirs).
    for (const auto &shard : fs::directory_iterator(dir_, ec)) {
        std::error_code ignore;
        if (shard.is_directory(ignore) &&
            fs::is_empty(shard.path(), ignore)) {
            fs::remove(shard.path(), ignore);
        }
    }
}

DiskCache::Usage
DiskCache::usage() const
{
    Usage u;
    for (const auto &e : listEntries(dir_)) {
        ++u.entries;
        u.bytes += e.size;
    }
    return u;
}

} // namespace tetris
