/**
 * @file
 * Fixed-size worker thread pool.
 *
 * A condition-variable work queue shared by N worker threads. Tasks
 * are arbitrary void() callables; submission order is FIFO but
 * completion order is unspecified — callers needing per-task results
 * synchronize on their own state (see CompileCache::Entry). The pool
 * drains outstanding tasks before the destructor returns.
 */

#ifndef TETRIS_ENGINE_THREAD_POOL_HH
#define TETRIS_ENGINE_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tetris
{

class ThreadPool
{
  public:
    /** Spawn `num_threads` workers (clamped to >= 1). */
    explicit ThreadPool(int num_threads);

    /** Waits for all queued and running tasks, then joins workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; runs on some worker, exceptions are fatal. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is running. */
    void waitIdle();

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /**
     * Resolve a thread-count request: a positive request wins;
     * otherwise the TETRIS_ENGINE_THREADS environment variable;
     * otherwise std::thread::hardware_concurrency(). Always >= 1.
     */
    static int resolveThreadCount(int requested);

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    int activeTasks_ = 0;
    bool stopping_ = false;
};

} // namespace tetris

#endif // TETRIS_ENGINE_THREAD_POOL_HH
