#include "engine/stats.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/env.hh"
#include "common/log.hh"
#include "engine/engine.hh"

namespace tetris
{

namespace
{

/** Dots to underscores: metric names as Prometheus label values are
 *  fine, but the sample names themselves must be [a-zA-Z0-9_:]. */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (!(('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
              ('0' <= c && c <= '9') || c == '_'))
            c = '_';
    }
    return out;
}

} // namespace

namespace
{

/**
 * Jobs dequeued by a worker but not yet finished. Deduplicated
 * submissions finish without ever starting, so the naive difference
 * can go negative; clamp for display.
 */
size_t
inFlight(size_t started, size_t finished)
{
    return started > finished ? started - finished : 0;
}

} // namespace

std::string
formatStatsSnapshot(const Engine &engine)
{
    std::ostringstream os;
    os << "# tetris engine stats\n";
    os << "tetris_jobs_submitted " << engine.submittedCount() << "\n";
    os << "tetris_jobs_started " << engine.startedCount() << "\n";
    os << "tetris_jobs_finished " << engine.finishedCount() << "\n";
    os << "tetris_jobs_in_flight "
       << inFlight(engine.startedCount(), engine.finishedCount())
       << "\n";
    os << "tetris_threads " << engine.numThreads() << "\n";

    const MetricsRegistry &metrics = engine.metrics();
    for (const auto &[name, value] : metrics.counts())
        os << "tetris_count{name=\"" << name << "\"} " << value << "\n";
    for (const auto &[name, value] : metrics.timers())
        os << "tetris_seconds{name=\"" << name << "\"} " << value
           << "\n";
    for (const auto &[name, snap] : metrics.histogramSnapshots()) {
        std::string base = "tetris_" + sanitize(name);
        os << base << "_count " << snap.count << "\n";
        os << base << "_sum " << snap.sum << "\n";
        os << base << "_max " << snap.max << "\n";
        os << base << "{quantile=\"0.5\"} " << snap.p50 << "\n";
        os << base << "{quantile=\"0.9\"} " << snap.p90 << "\n";
        os << base << "{quantile=\"0.99\"} " << snap.p99 << "\n";
    }
    return os.str();
}

double
StatsReporter::intervalFromEnv()
{
    const char *v = std::getenv("TETRIS_STATS_INTERVAL");
    if (v == nullptr || *v == '\0')
        return 0.0;
    // "0" is an explicit off, not an invalid value.
    if (v[0] == '0' && v[1] == '\0')
        return 0.0;
    if (int n = parseEnvInt(v, 1, 86400))
        return static_cast<double>(n);
    logWarn("ignoring invalid TETRIS_STATS_INTERVAL='", v,
            "' (want seconds in [1, 86400]); stats reporter off");
    return 0.0;
}

StatsReporter::StatsReporter(const Engine &engine,
                             double interval_seconds)
    : engine_(engine), interval_(interval_seconds)
{
    if (interval_ > 0.0)
        thread_ = std::thread([this] { loop(); });
}

StatsReporter::~StatsReporter() { stop(); }

void
StatsReporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
StatsReporter::loop()
{
    const auto start = std::chrono::steady_clock::now();
    const size_t finished_at_start = engine_.finishedCount();
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (wake_.wait_for(
                    lock, std::chrono::duration<double>(interval_),
                    [this] { return stopping_; })) {
                return;
            }
        }
        const size_t submitted = engine_.submittedCount();
        const size_t started = engine_.startedCount();
        const size_t finished = engine_.finishedCount();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double rate =
            elapsed > 0.0
                ? static_cast<double>(finished - finished_at_start) /
                      elapsed
                : 0.0;
        const size_t remaining = submitted - finished;
        // Opt-in progress, not logging: print unconditionally on
        // stderr like the bench progress lines, one line per tick.
        if (rate > 0.0 && remaining > 0) {
            std::fprintf(
                stderr,
                "stats: %zu/%zu done, %zu in-flight, %zu queued, "
                "%.2f jobs/s, ETA %.0fs\n",
                finished, submitted, started - finished,
                submitted - started, rate,
                static_cast<double>(remaining) / rate);
        } else {
            std::fprintf(stderr,
                         "stats: %zu/%zu done, %zu in-flight, "
                         "%zu queued, %.2f jobs/s\n",
                         finished, submitted, started - finished,
                         submitted - started, rate);
        }
        logDebug("stats snapshot:\n", formatStatsSnapshot(engine_));
    }
}

} // namespace tetris
