#include "engine/stats.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/env.hh"
#include "common/histogram.hh"
#include "common/log.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"

namespace tetris
{

namespace
{

/** Dots to underscores: metric names as Prometheus label values are
 *  fine, but the sample names themselves must be [a-zA-Z0-9_:]. */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (!(('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
              ('0' <= c && c <= '9') || c == '_'))
            c = '_';
    }
    return out;
}

/** Exposition label-value escaping: backslash, quote, newline. */
std::string
escapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/**
 * Jobs dequeued by a worker but not yet finished. Deduplicated
 * submissions finish without ever starting, so the naive difference
 * can go negative; clamp for display.
 */
size_t
inFlight(size_t started, size_t finished)
{
    return started > finished ? started - finished : 0;
}

void
typeLine(std::ostream &os, const std::string &family, const char *kind)
{
    os << "# TYPE " << family << " " << kind << "\n";
}

/**
 * One log2 histogram as a Prometheus histogram family: sparse
 * cumulative `_bucket{le="2^i-1"}` lines from a single read of the
 * bucket array, so the series is monotone and `_count` equals the
 * +Inf bucket even under concurrent recording. The top (overflow)
 * bucket only contributes to +Inf. `_max` and `_quantile` ride along
 * as separate gauge families (they are derived views, not part of
 * the histogram contract).
 */
void
renderHistogram(std::ostream &os, const std::string &base,
                const Histogram &hist)
{
    uint64_t counts[Histogram::kBuckets];
    uint64_t total = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        counts[i] = hist.bucketCount(i);
        total += counts[i];
    }
    typeLine(os, base, "histogram");
    uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
        if (counts[i] == 0)
            continue;
        cum += counts[i];
        os << base << "_bucket{le=\"" << Histogram::bucketUpperBound(i)
           << "\"} " << cum << "\n";
    }
    os << base << "_bucket{le=\"+Inf\"} " << total << "\n";
    os << base << "_sum " << hist.sum() << "\n";
    os << base << "_count " << total << "\n";
    typeLine(os, base + "_max", "gauge");
    os << base << "_max " << hist.max() << "\n";
    typeLine(os, base + "_quantile", "gauge");
    os << base << "_quantile{quantile=\"0.5\"} "
       << hist.percentile(0.50) << "\n";
    os << base << "_quantile{quantile=\"0.9\"} "
       << hist.percentile(0.90) << "\n";
    os << base << "_quantile{quantile=\"0.99\"} "
       << hist.percentile(0.99) << "\n";
}

/** Nanoseconds as a human latency (summary line only). */
std::string
formatNsHuman(uint64_t ns)
{
    char buf[32];
    if (ns < 1000)
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(ns));
    else if (ns < 1000000)
        std::snprintf(buf, sizeof(buf), "%.1fus",
                      static_cast<double>(ns) / 1e3);
    else if (ns < 1000000000)
        std::snprintf(buf, sizeof(buf), "%.1fms",
                      static_cast<double>(ns) / 1e6);
    else
        std::snprintf(buf, sizeof(buf), "%.2fs",
                      static_cast<double>(ns) / 1e9);
    return buf;
}

} // namespace

std::string
formatStatsSnapshot(const Engine &engine)
{
    std::ostringstream os;
    os << "# tetris engine stats (Prometheus text exposition 0.0.4)\n";

    os << "# HELP tetris_up 1 while the engine is serving.\n";
    typeLine(os, "tetris_up", "gauge");
    os << "tetris_up 1\n";
    os << "# HELP tetris_draining 1 while Engine::drain() or "
          "teardown is waiting for workers.\n";
    typeLine(os, "tetris_draining", "gauge");
    os << "tetris_draining " << (engine.draining() ? 1 : 0) << "\n";
    typeLine(os, "tetris_uptime_seconds", "gauge");
    os << "tetris_uptime_seconds " << engine.uptimeSeconds() << "\n";

    const size_t submitted = engine.submittedCount();
    const size_t started = engine.startedCount();
    const size_t finished = engine.finishedCount();
    typeLine(os, "tetris_jobs_submitted", "counter");
    os << "tetris_jobs_submitted " << submitted << "\n";
    typeLine(os, "tetris_jobs_started", "counter");
    os << "tetris_jobs_started " << started << "\n";
    typeLine(os, "tetris_jobs_finished", "counter");
    os << "tetris_jobs_finished " << finished << "\n";
    typeLine(os, "tetris_jobs_in_flight", "gauge");
    os << "tetris_jobs_in_flight " << inFlight(started, finished)
       << "\n";
    typeLine(os, "tetris_jobs_queued", "gauge");
    os << "tetris_jobs_queued "
       << (submitted > started ? submitted - started : 0) << "\n";
    typeLine(os, "tetris_threads", "gauge");
    os << "tetris_threads " << engine.numThreads() << "\n";

    const MetricsRegistry &metrics = engine.metrics();
    const auto counts = metrics.counts();
    if (!counts.empty()) {
        os << "# HELP tetris_count Named engine counters "
              "(MetricsRegistry).\n";
        typeLine(os, "tetris_count", "counter");
        for (const auto &[name, value] : counts) {
            os << "tetris_count{name=\"" << escapeLabel(name) << "\"} "
               << value << "\n";
        }
    }
    const auto timers = metrics.timers();
    if (!timers.empty()) {
        os << "# HELP tetris_seconds Accumulated engine timers in "
              "seconds (MetricsRegistry).\n";
        typeLine(os, "tetris_seconds", "counter");
        for (const auto &[name, value] : timers) {
            os << "tetris_seconds{name=\"" << escapeLabel(name)
               << "\"} " << value << "\n";
        }
    }
    metrics.forEachHistogram(
        [&os](const std::string &name, const Histogram &hist) {
            renderHistogram(os, "tetris_" + sanitize(name), hist);
        });
    return os.str();
}

double
StatsReporter::intervalFromEnv()
{
    const char *v = std::getenv("TETRIS_STATS_INTERVAL");
    if (v == nullptr || *v == '\0')
        return 0.0;
    // "0" is an explicit off, not an invalid value.
    if (v[0] == '0' && v[1] == '\0')
        return 0.0;
    if (int n = parseEnvInt(v, 1, 86400))
        return static_cast<double>(n);
    logWarn("ignoring invalid TETRIS_STATS_INTERVAL='", v,
            "' (want seconds in [1, 86400]); stats reporter off");
    return 0.0;
}

bool
StatsReporter::summaryFromEnv()
{
    const char *v = std::getenv("TETRIS_STATS_SUMMARY");
    return v != nullptr && *v != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

std::string
StatsReporter::formatSummary(const Engine &engine,
                             double elapsed_seconds)
{
    const size_t submitted = engine.submittedCount();
    const size_t finished = engine.finishedCount();
    uint64_t p50 = 0, p99 = 0;
    const auto hists = engine.metrics().histogramSnapshots();
    if (auto it = hists.find("job.latency_ns"); it != hists.end()) {
        p50 = it->second.p50;
        p99 = it->second.p99;
    }
    const size_t hits = engine.cache().hits();
    const size_t lookups = hits + engine.cache().misses();

    std::ostringstream os;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fs", elapsed_seconds);
    os << "stats: summary: " << finished << "/" << submitted
       << " jobs in " << buf;
    if (elapsed_seconds > 0.0) {
        std::snprintf(buf, sizeof(buf), "%.2f",
                      static_cast<double>(finished) / elapsed_seconds);
        os << " (" << buf << " jobs/s)";
    }
    os << ", job latency p50 " << formatNsHuman(p50) << " p99 "
       << formatNsHuman(p99) << ", cache " << hits << "/" << lookups
       << " hits";
    if (lookups > 0) {
        std::snprintf(buf, sizeof(buf), "%.1f%%",
                      100.0 * static_cast<double>(hits) /
                          static_cast<double>(lookups));
        os << " (" << buf << ")";
    }
    if (const DiskCache *disk = engine.diskCache()) {
        os << ", disk " << disk->hits() << " hit(s) / "
           << disk->writes() << " write(s)";
    }
    return os.str();
}

StatsReporter::StatsReporter(const Engine &engine,
                             double interval_seconds, bool summary)
    : engine_(engine), interval_(interval_seconds), summary_(summary),
      start_(std::chrono::steady_clock::now())
{
    if (interval_ > 0.0)
        thread_ = std::thread([this] { loop(); });
}

StatsReporter::~StatsReporter() { stop(); }

void
StatsReporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable())
        thread_.join();
    // First stop wins the flag above, so the summary prints exactly
    // once — with or without an interval thread.
    if (summary_) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        std::fprintf(stderr, "%s\n",
                     formatSummary(engine_, elapsed).c_str());
    }
}

void
StatsReporter::loop()
{
    const auto start = std::chrono::steady_clock::now();
    const size_t finished_at_start = engine_.finishedCount();
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (wake_.wait_for(
                    lock, std::chrono::duration<double>(interval_),
                    [this] { return stopping_; })) {
                return;
            }
        }
        const size_t submitted = engine_.submittedCount();
        const size_t started = engine_.startedCount();
        const size_t finished = engine_.finishedCount();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        const double rate =
            elapsed > 0.0
                ? static_cast<double>(finished - finished_at_start) /
                      elapsed
                : 0.0;
        const size_t remaining = submitted - finished;
        // Opt-in progress, not logging: print unconditionally on
        // stderr like the bench progress lines, one line per tick.
        if (rate > 0.0 && remaining > 0) {
            std::fprintf(
                stderr,
                "stats: %zu/%zu done, %zu in-flight, %zu queued, "
                "%.2f jobs/s, ETA %.0fs\n",
                finished, submitted, started - finished,
                submitted - started, rate,
                static_cast<double>(remaining) / rate);
        } else {
            std::fprintf(stderr,
                         "stats: %zu/%zu done, %zu in-flight, "
                         "%zu queued, %.2f jobs/s\n",
                         finished, submitted, started - finished,
                         submitted - started, rate);
        }
        logDebug("stats snapshot:\n", formatStatsSnapshot(engine_));
    }
}

} // namespace tetris
