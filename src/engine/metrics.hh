/**
 * @file
 * Thread-safe metrics registry for the batch-compilation engine.
 *
 * Named monotonic counters and accumulated timers. The engine feeds
 * it per-job events (submissions, completions, cache traffic) and the
 * per-stage timings the compiler records in CompileStats (scheduling,
 * synthesis, peephole), so a batch run can report where the time went
 * across all workers. Snapshots serialize to JSON for the BENCH_*
 * trajectory files.
 */

#ifndef TETRIS_ENGINE_METRICS_HH
#define TETRIS_ENGINE_METRICS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace tetris
{

class JsonWriter;
struct CompileStats;

class MetricsRegistry
{
  public:
    /** Add to a named monotonic counter (creates it at 0). */
    void addCount(const std::string &name, uint64_t delta = 1);

    /**
     * Set a named counter to an absolute value (gauge semantics).
     * Used to publish snapshots of externally-accumulated state,
     * e.g. the cache's shard count and lock-wait total.
     */
    void setCount(const std::string &name, uint64_t value);

    /** Accumulate seconds on a named timer (creates it at 0). */
    void addSeconds(const std::string &name, double seconds);

    /** Fold one job's per-stage timings and gate counts in. */
    void recordCompile(const CompileStats &stats);

    uint64_t count(const std::string &name) const;
    double seconds(const std::string &name) const;

    /** Stable-ordered copies for reporting. */
    std::map<std::string, uint64_t> counts() const;
    std::map<std::string, double> timers() const;

    /** Reset every counter and timer to zero. */
    void clear();

    /** {"counts": {...}, "seconds": {...}} appended to `w`. */
    void writeJson(JsonWriter &w) const;

    /** Standalone JSON document of the current snapshot. */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, uint64_t> counts_;
    std::map<std::string, double> timers_;
};

/** RAII timer adding its lifetime to a registry timer. */
class ScopedTimer
{
  public:
    ScopedTimer(MetricsRegistry &registry, std::string name)
        : registry_(registry), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        registry_.addSeconds(
            name_, std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    MetricsRegistry &registry_;
    std::string name_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace tetris

#endif // TETRIS_ENGINE_METRICS_HH
