/**
 * @file
 * Thread-safe metrics registry for the batch-compilation engine.
 *
 * Three kinds of instruments:
 *  - named monotonic counters and accumulated timers (string-keyed,
 *    mutex-guarded map — fine for cold paths);
 *  - interned handles for both (counterHandle()/timerHandle()): a
 *    one-time string lookup returns a stable id whose updates are a
 *    single relaxed atomic add — no mutex, no string copy. The
 *    engine pre-registers its per-job instruments this way, so a
 *    64-thread sweep's hot path never touches the registry lock;
 *  - fixed-bucket log2 Histograms (common/histogram.hh) for latency
 *    distributions (job latency, queue wait, lock wait): wait-free
 *    recording, p50/p90/p99 in every snapshot.
 *
 * Snapshots serialize to JSON for the BENCH_* trajectory files as
 * {"counts": ..., "seconds": ..., "histograms": ...}; the same data
 * formats as a /metrics-style text dump via engine/stats.hh.
 */

#ifndef TETRIS_ENGINE_METRICS_HH
#define TETRIS_ENGINE_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"

namespace tetris
{

class JsonWriter;
struct CompileStats;

class MetricsRegistry
{
  public:
    /** Interned instrument id; see counterHandle()/timerHandle(). */
    using Handle = size_t;

    MetricsRegistry();

    /** Add to a named monotonic counter (creates it at 0). */
    void addCount(const std::string &name, uint64_t delta = 1);

    /**
     * Set a named counter to an absolute value (gauge semantics).
     * Used to publish snapshots of externally-accumulated state,
     * e.g. the cache's shard count and lock-wait total.
     */
    void setCount(const std::string &name, uint64_t value);

    /** Accumulate seconds on a named timer (creates it at 0). */
    void addSeconds(const std::string &name, double seconds);

    /**
     * Intern a counter/timer once; the returned handle is stable for
     * the registry's lifetime and updates through it are lock-free.
     * Interning the same name twice returns the same handle, and the
     * handle's total merges with any string-keyed updates of the
     * same name in every read-out.
     */
    Handle counterHandle(const std::string &name);
    Handle timerHandle(const std::string &name);

    /** Lock-free add on a pre-registered counter/timer. */
    void addCount(Handle h, uint64_t delta = 1);
    void addSeconds(Handle h, double seconds);

    /**
     * The named latency histogram, interned on first use. The
     * returned reference is stable for the registry's lifetime and
     * recording on it is wait-free (common/histogram.hh).
     */
    Histogram &histogram(const std::string &name);

    /** Fold one job's per-stage timings and gate counts in. */
    void recordCompile(const CompileStats &stats);

    uint64_t count(const std::string &name) const;
    double seconds(const std::string &name) const;

    /** Stable-ordered copies for reporting (handles merged in). */
    std::map<std::string, uint64_t> counts() const;
    std::map<std::string, double> timers() const;

    /** Snapshot of every histogram, keyed by name. */
    std::map<std::string, Histogram::Snapshot> histogramSnapshots() const;

    /**
     * Visit every histogram in stable name order without copying
     * bucket state (the /metrics exposition reads raw buckets so its
     * cumulative series stay self-consistent). `fn` runs under the
     * registry mutex: keep it quick and do not call back in.
     */
    void forEachHistogram(
        const std::function<void(const std::string &,
                                 const Histogram &)> &fn) const;

    /** Reset every counter, timer, and histogram to zero. */
    void clear();

    /**
     * {"counts": {...}, "seconds": {...}, "histograms": {...}}
     * appended to `w`. Each histogram object carries count/sum/max,
     * the p50/p90/p99 upper bounds, and its sparse [index, count]
     * bucket list (so percentiles can be recomputed offline).
     */
    void writeJson(JsonWriter &w) const;

    /** Standalone JSON document of the current snapshot. */
    std::string toJson() const;

  private:
    struct Slot
    {
        std::string name;
        std::atomic<uint64_t> count{0};
        /** Timers accumulate integer nanoseconds (atomic-add). */
        std::atomic<uint64_t> nanos{0};
    };

    Handle internSlot(const std::string &name);

    mutable std::mutex mutex_;
    std::map<std::string, uint64_t> counts_;
    std::map<std::string, double> timers_;
    /** deque: stable addresses across growth, indexed by Handle. */
    std::deque<Slot> slots_;
    std::unordered_map<std::string, Handle> slotIndex_;
    std::deque<std::pair<std::string, Histogram>> histograms_;
    std::unordered_map<std::string, size_t> histogramIndex_;

    /** Pre-interned handles for the per-job compile stats. */
    Handle compileTotal_, compileSchedule_, compileSynthesis_,
        compilePeephole_;
    Handle gatesCnot_, gatesOneq_, gatesSwap_;
};

/**
 * RAII timer adding its lifetime to a registry timer. Prefer the
 * Handle constructor on hot paths: it records through one atomic
 * add, while the string form pays a map lookup under the registry
 * mutex per event.
 */
class ScopedTimer
{
  public:
    ScopedTimer(MetricsRegistry &registry, std::string name)
        : registry_(registry), name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedTimer(MetricsRegistry &registry, MetricsRegistry::Handle handle)
        : registry_(registry), handle_(handle), useHandle_(true),
          start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
        if (useHandle_)
            registry_.addSeconds(handle_, elapsed);
        else
            registry_.addSeconds(name_, elapsed);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    MetricsRegistry &registry_;
    std::string name_;
    MetricsRegistry::Handle handle_ = 0;
    bool useHandle_ = false;
    std::chrono::steady_clock::time_point start_;
};

} // namespace tetris

#endif // TETRIS_ENGINE_METRICS_HH
