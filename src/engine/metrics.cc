#include "engine/metrics.hh"

#include "common/json.hh"
#include "core/compiler.hh"

namespace tetris
{

namespace
{

/** Seconds -> integer nanoseconds for the atomic timer slots. */
uint64_t
toNanos(double seconds)
{
    if (seconds <= 0.0)
        return 0;
    return static_cast<uint64_t>(seconds * 1e9);
}

} // namespace

MetricsRegistry::MetricsRegistry()
{
    // Per-job hot instruments: recordCompile() runs once per fresh
    // compilation on a worker thread, so its updates go through
    // interned slots (pure atomic adds), not the mutex-guarded maps.
    compileTotal_ = timerHandle("compile.total");
    compileSchedule_ = timerHandle("compile.schedule");
    compileSynthesis_ = timerHandle("compile.synthesis");
    compilePeephole_ = timerHandle("compile.peephole");
    gatesCnot_ = counterHandle("gates.cnot");
    gatesOneq_ = counterHandle("gates.oneq");
    gatesSwap_ = counterHandle("gates.swap");
}

MetricsRegistry::Handle
MetricsRegistry::internSlot(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slotIndex_.find(name);
    if (it != slotIndex_.end())
        return it->second;
    slots_.emplace_back();
    slots_.back().name = name;
    Handle h = slots_.size() - 1;
    slotIndex_.emplace(name, h);
    return h;
}

MetricsRegistry::Handle
MetricsRegistry::counterHandle(const std::string &name)
{
    return internSlot(name);
}

MetricsRegistry::Handle
MetricsRegistry::timerHandle(const std::string &name)
{
    return counterHandle(name);
}

void
MetricsRegistry::addCount(Handle h, uint64_t delta)
{
    slots_[h].count.fetch_add(delta, std::memory_order_relaxed);
}

void
MetricsRegistry::addSeconds(Handle h, double seconds)
{
    slots_[h].nanos.fetch_add(toNanos(seconds),
                              std::memory_order_relaxed);
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histogramIndex_.find(name);
    if (it != histogramIndex_.end())
        return histograms_[it->second].second;
    histograms_.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple());
    histogramIndex_.emplace(name, histograms_.size() - 1);
    return histograms_.back().second;
}

void
MetricsRegistry::addCount(const std::string &name, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_[name] += delta;
}

void
MetricsRegistry::setCount(const std::string &name, uint64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_[name] = value;
}

void
MetricsRegistry::addSeconds(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timers_[name] += seconds;
}

void
MetricsRegistry::recordCompile(const CompileStats &stats)
{
    addSeconds(compileTotal_, stats.compileSeconds);
    addSeconds(compileSchedule_, stats.scheduleSeconds);
    addSeconds(compileSynthesis_, stats.synthSeconds);
    addSeconds(compilePeephole_, stats.peepholeSeconds);
    addCount(gatesCnot_, stats.cnotCount);
    addCount(gatesOneq_, stats.oneQubitCount);
    addCount(gatesSwap_, stats.swapCount);
}

uint64_t
MetricsRegistry::count(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    auto it = counts_.find(name);
    if (it != counts_.end())
        total += it->second;
    auto slot = slotIndex_.find(name);
    if (slot != slotIndex_.end())
        total += slots_[slot->second].count.load(
            std::memory_order_relaxed);
    return total;
}

double
MetricsRegistry::seconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double total = 0.0;
    auto it = timers_.find(name);
    if (it != timers_.end())
        total += it->second;
    auto slot = slotIndex_.find(name);
    if (slot != slotIndex_.end())
        total += static_cast<double>(slots_[slot->second].nanos.load(
                     std::memory_order_relaxed)) /
                 1e9;
    return total;
}

std::map<std::string, uint64_t>
MetricsRegistry::counts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, uint64_t> out = counts_;
    for (const auto &slot : slots_) {
        uint64_t v = slot.count.load(std::memory_order_relaxed);
        if (v != 0)
            out[slot.name] += v;
    }
    return out;
}

std::map<std::string, double>
MetricsRegistry::timers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, double> out = timers_;
    for (const auto &slot : slots_) {
        uint64_t ns = slot.nanos.load(std::memory_order_relaxed);
        if (ns != 0)
            out[slot.name] += static_cast<double>(ns) / 1e9;
    }
    return out;
}

void
MetricsRegistry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)>
        &fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, const Histogram *> ordered;
    for (const auto &[name, hist] : histograms_)
        ordered[name] = &hist;
    for (const auto &[name, hist] : ordered)
        fn(name, *hist);
}

std::map<std::string, Histogram::Snapshot>
MetricsRegistry::histogramSnapshots() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, Histogram::Snapshot> out;
    for (const auto &[name, hist] : histograms_)
        out[name] = hist.snapshot();
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_.clear();
    timers_.clear();
    for (auto &slot : slots_) {
        slot.count.store(0, std::memory_order_relaxed);
        slot.nanos.store(0, std::memory_order_relaxed);
    }
    for (auto &[name, hist] : histograms_)
        hist.clear();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    // Build merged views first: counts()/timers() take the mutex
    // themselves, and the histogram walk below takes it again.
    std::map<std::string, uint64_t> merged_counts = counts();
    std::map<std::string, double> merged_timers = timers();

    w.beginObject();
    w.key("counts").beginObject();
    for (const auto &[name, v] : merged_counts)
        w.key(name).value(v);
    w.endObject();
    w.key("seconds").beginObject();
    for (const auto &[name, v] : merged_timers)
        w.key(name).value(v);
    w.endObject();
    w.key("histograms").beginObject();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Stable name order, like the other sections.
        std::map<std::string, const Histogram *> ordered;
        for (const auto &[name, hist] : histograms_)
            ordered[name] = &hist;
        for (const auto &[name, hist] : ordered) {
            w.key(name).beginObject();
            w.key("count").value(hist->count());
            w.key("sum").value(hist->sum());
            w.key("max").value(hist->max());
            w.key("p50").value(hist->percentile(0.50));
            w.key("p90").value(hist->percentile(0.90));
            w.key("p99").value(hist->percentile(0.99));
            w.key("buckets").beginArray();
            for (int i = 0; i < Histogram::kBuckets; ++i) {
                uint64_t n = hist->bucketCount(i);
                if (n == 0)
                    continue;
                w.beginArray().value(i).value(n).endArray();
            }
            w.endArray();
            w.endObject();
        }
    }
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::toJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

} // namespace tetris
