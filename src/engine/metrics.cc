#include "engine/metrics.hh"

#include "common/json.hh"
#include "core/compiler.hh"

namespace tetris
{

void
MetricsRegistry::addCount(const std::string &name, uint64_t delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_[name] += delta;
}

void
MetricsRegistry::setCount(const std::string &name, uint64_t value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_[name] = value;
}

void
MetricsRegistry::addSeconds(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timers_[name] += seconds;
}

void
MetricsRegistry::recordCompile(const CompileStats &stats)
{
    std::lock_guard<std::mutex> lock(mutex_);
    timers_["compile.total"] += stats.compileSeconds;
    timers_["compile.schedule"] += stats.scheduleSeconds;
    timers_["compile.synthesis"] += stats.synthSeconds;
    timers_["compile.peephole"] += stats.peepholeSeconds;
    counts_["gates.cnot"] += stats.cnotCount;
    counts_["gates.oneq"] += stats.oneQubitCount;
    counts_["gates.swap"] += stats.swapCount;
}

uint64_t
MetricsRegistry::count(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
}

double
MetricsRegistry::seconds(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = timers_.find(name);
    return it == timers_.end() ? 0.0 : it->second;
}

std::map<std::string, uint64_t>
MetricsRegistry::counts() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
}

std::map<std::string, double>
MetricsRegistry::timers() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return timers_;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counts_.clear();
    timers_.clear();
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    w.beginObject();
    w.key("counts").beginObject();
    for (const auto &[name, v] : counts_)
        w.key(name).value(v);
    w.endObject();
    w.key("seconds").beginObject();
    for (const auto &[name, v] : timers_)
        w.key(name).value(v);
    w.endObject();
    w.endObject();
}

std::string
MetricsRegistry::toJson() const
{
    JsonWriter w;
    writeJson(w);
    return w.str();
}

} // namespace tetris
