#include "engine/engine.hh"

#include <algorithm>
#include <cstdlib>

#include "common/hash.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "engine/disk_cache.hh"
#include "engine/trace.hh"
#include "obs/event_log.hh"
#include "obs/obs_server.hh"
#include "obs/watchdog.hh"

namespace tetris
{

namespace
{

/** Stage durations -> span lengths on the trace timeline. */
uint64_t
secondsToNs(double seconds)
{
    if (seconds <= 0.0)
        return 0;
    return static_cast<uint64_t>(seconds * 1e9);
}

} // namespace

Engine::Engine(EngineOptions opts)
    : opts_(opts), cache_(opts.cacheShards),
      pool_(ThreadPool::resolveThreadCount(opts.numThreads)),
      // Touching Tracer::global() here also orders static lifetimes:
      // the global tracer is constructed before any engine, so it is
      // destroyed (and its TETRIS_TRACE file flushed) after every
      // engine's worker threads have drained.
      tracer_(opts.tracer != nullptr ? opts.tracer : &Tracer::global()),
      latencyHist_(&metrics_.histogram("job.latency_ns")),
      queueWaitHist_(&metrics_.histogram("job.queue_wait_ns")),
      jobsSubmittedH_(metrics_.counterHandle("jobs.submitted")),
      jobsCompletedH_(metrics_.counterHandle("jobs.completed")),
      jobsDedupedH_(metrics_.counterHandle("jobs.deduplicated")),
      jobsDiskHitsH_(metrics_.counterHandle("jobs.disk_hits")),
      jobsCancelledH_(metrics_.counterHandle("jobs.cancelled")),
      verifyPassH_(metrics_.counterHandle("verify.pass")),
      verifyFailH_(metrics_.counterHandle("verify.fail")),
      verifySkippedH_(metrics_.counterHandle("verify.skipped")),
      verifySecondsH_(metrics_.timerHandle("verify.seconds")),
      eventLog_(opts.eventLog != nullptr ? opts.eventLog
                                         : &EventLog::global()),
      startNs_(steadyNowNs())
{
    cache_.setLockWaitHistogram(
        &metrics_.histogram("cache.lock_wait_ns"));

    // Observability plane: both pieces are opt-in (options first,
    // env second) and both read engine state the member-init list
    // above has fully built. Disabled, they cost nothing per job.
    const uint64_t stall_ms = opts_.stallMs != 0
                                  ? opts_.stallMs
                                  : StallWatchdog::stallMsFromEnv();
    if (stall_ms != 0)
        watchdog_ = std::make_unique<StallWatchdog>(*this, stall_ms);
    std::string obs_addr = opts_.obsServer;
    if (obs_addr.empty()) {
        if (const char *v = std::getenv("TETRIS_OBS_ADDR"))
            obs_addr = v;
    }
    if (!obs_addr.empty())
        obsServer_ = ObsServer::start(*this, obs_addr);
}

Engine::~Engine()
{
    // Teardown order: report draining for the whole shutdown, stop
    // the watchdog's scans, drain workers, then apply the store's
    // eviction budget. The scrape server (declared last) dies before
    // any member it reads; until then /healthz says "draining".
    draining_.store(true, std::memory_order_relaxed);
    watchdog_.reset();
    pool_.waitIdle();
    // Apply the store's eviction budget once the sweep is done, not
    // per write: trimming mid-run could evict entries the same run
    // is about to read back.
    if (opts_.diskCache && opts_.diskCache->maxBytes() > 0)
        opts_.diskCache->trim(opts_.diskCache->maxBytes());
}

void
Engine::drain()
{
    draining_.store(true, std::memory_order_relaxed);
    pool_.waitIdle();
    draining_.store(false, std::memory_order_relaxed);
}

int
Engine::obsPort() const
{
    return obsServer_ ? obsServer_->port() : 0;
}

double
Engine::uptimeSeconds() const
{
    return static_cast<double>(steadyNowNs() - startNs_) / 1e9;
}

std::shared_ptr<Engine::ActiveJob>
Engine::beginActiveJob(const std::string &name, uint64_t key,
                       uint64_t start_ns)
{
    auto job = std::make_shared<ActiveJob>();
    job->name = name;
    job->key = key;
    job->startNs = start_ns;
    std::lock_guard<std::mutex> lock(activeMutex_);
    active_.push_back(job);
    return job;
}

void
Engine::endActiveJob(const std::shared_ptr<ActiveJob> &job)
{
    std::lock_guard<std::mutex> lock(activeMutex_);
    active_.erase(std::remove(active_.begin(), active_.end(), job),
                  active_.end());
}

void
Engine::pushRecentJob(const std::string &name, uint64_t duration_ns)
{
    std::lock_guard<std::mutex> lock(recentMutex_);
    recent_.push_back(RecentJob{name, duration_ns});
    if (recent_.size() > 64)
        recent_.pop_front();
}

std::vector<std::shared_ptr<Engine::ActiveJob>>
Engine::activeJobs() const
{
    std::lock_guard<std::mutex> lock(activeMutex_);
    return active_;
}

std::vector<Engine::RecentJob>
Engine::recentJobs() const
{
    std::lock_guard<std::mutex> lock(recentMutex_);
    return std::vector<RecentJob>(recent_.begin(), recent_.end());
}

const DiskCache *
Engine::diskCache() const
{
    return opts_.diskCache.get();
}

uint64_t
Engine::jobKey(const CompileJob &job, uint32_t abi_version)
{
    TETRIS_ASSERT(job.hw != nullptr, "job without a device");
    TETRIS_ASSERT(job.pipeline != nullptr, "job without a pipeline");
    // The code-generation stamp comes first: a compiler-algorithm
    // change bumps kTetrisAbiVersion and every key moves, so the
    // persistent store can never serve artifacts an older build
    // produced (see common/version.hh).
    uint64_t h = fnvMix(kFnvOffset, abi_version);
    // The id/options pair is mixed in next so two pipelines over
    // identical blocks can never alias in the cache, even if their
    // option hashes happen to collide.
    h = fnvMixString(h, job.pipeline->name());
    h = fnvMix(h, job.pipeline->optionsHash());
    h = fnvMix(h, job.hw->contentHash());
    h = fnvMix(h, job.blocks.size());
    for (const auto &b : job.blocks)
        h = fnvMix(h, b.contentHash());
    return h;
}

void
Engine::reportDone(const std::string &name)
{
    // The finished count always advances (the stats reporter polls
    // it); the progress mutex only serializes the user callback so
    // its (done, total) pairs never interleave or run backwards.
    if (!opts_.onJobDone) {
        finished_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    std::lock_guard<std::mutex> lock(progressMutex_);
    size_t done = finished_.fetch_add(1, std::memory_order_relaxed) + 1;
    opts_.onJobDone(done, submittedCount(), name);
}

VerifyStatus
Engine::verifyJob(const CompileJob &job, const CompileResult &result)
{
    TraceSpan span(tracer_, "verify", "verify", job.name);
    ScopedTimer timer(metrics_, verifySecondsH_);
    VerifyReport report =
        verifyCompileResult(job.blocks, result, opts_.verifyOptions);
    switch (report.status) {
      case VerifyStatus::Pass:
        metrics_.addCount(verifyPassH_);
        break;
      case VerifyStatus::Fail:
        metrics_.addCount(verifyFailH_);
        if (eventLog_->enabled()) {
            eventLog_->record(
                "verify.fail",
                {EventLog::Field::str("job", job.name),
                 EventLog::Field::str("method", report.method),
                 EventLog::Field::str("detail", report.detail)});
        }
        logWarn("verify FAIL [", job.name, "] via ", report.method,
                ": ", report.detail);
        break;
      case VerifyStatus::Skipped:
        metrics_.addCount(verifySkippedH_);
        break;
    }
    return report.status;
}

void
Engine::runJob(const CompileJob &job, uint64_t key,
               const std::shared_ptr<CompileCache::Entry> &entry,
               uint64_t submit_ns)
{
    started_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t dequeue_ns = steadyNowNs();
    queueWaitHist_->record(dequeue_ns >= submit_ns
                               ? dequeue_ns - submit_ns
                               : 0);
    if (tracer_->enabled()) {
        tracer_->recordSpan("queue_wait", "queue", submit_ns,
                            dequeue_ns, job.name);
    }
    // Register with the in-flight table for the watchdog and
    // /statusz; deregistered at every exit from this function.
    auto active = beginActiveJob(job.name, key, dequeue_ns);
    // One "job" span per dequeued submission, dequeue -> publish; the
    // latency histogram additionally covers the queue wait. Returns
    // the submit-to-publish latency for the job.finish event record.
    auto finishJob = [&]() -> uint64_t {
        const uint64_t end_ns = steadyNowNs();
        const uint64_t latency_ns =
            end_ns >= submit_ns ? end_ns - submit_ns : 0;
        latencyHist_->record(latency_ns);
        pushRecentJob(job.name, latency_ns);
        if (tracer_->enabled())
            tracer_->recordSpan("job", "job", dequeue_ns, end_ns,
                                job.name);
        return latency_ns;
    };

    // Cancellation gate: checked when a worker dequeues the job, so
    // cancelPending() stops everything that has not started yet.
    if (cancel_.load()) {
        metrics_.addCount(jobsCancelledH_);
        if (opts_.enableCache && !job.transient) {
            // Don't let the placeholder result shadow the key: a
            // later engine (or run) must recompile it.
            cache_.erase(key);
        }
        auto placeholder = std::make_shared<CompileResult>();
        placeholder->cancelled = true;
        reportDone(job.name);
        finishJob();
        if (eventLog_->enabled()) {
            eventLog_->record("job.cancel",
                              {EventLog::Field::str("job", job.name),
                               EventLog::Field::u64("key", key)});
        }
        entry->publish(std::move(placeholder));
        endActiveJob(active);
        return;
    }

    if (eventLog_->enabled()) {
        eventLog_->record(
            "job.start",
            {EventLog::Field::str("job", job.name),
             EventLog::Field::u64("key", key),
             EventLog::Field::str("pipeline", job.pipeline->name())});
    }

    // Read-through: an in-memory miss may still be served from the
    // persistent store of a previous process.
    if (opts_.diskCache) {
        active->stage.store("disk_read", std::memory_order_relaxed);
        auto loadPersisted = [&] {
            TraceSpan span(tracer_, "disk_read", "disk", job.name);
            return opts_.diskCache->load(key);
        };
        if (auto persisted = loadPersisted()) {
            metrics_.addCount(jobsDiskHitsH_);
            // Disk artifacts are verified too: this is what catches a
            // stale or silently-wrong .tca entry before its numbers
            // reach a BENCH_*.json.
            if (opts_.verify) {
                active->stage.store("verify",
                                    std::memory_order_relaxed);
                entry->setVerifyStatus(
                    1 + static_cast<uint8_t>(verifyJob(job, *persisted)));
            }
            reportDone(job.name);
            const uint64_t latency_ns = finishJob();
            if (eventLog_->enabled()) {
                eventLog_->record(
                    "job.finish",
                    {EventLog::Field::str("job", job.name),
                     EventLog::Field::u64("key", key),
                     EventLog::Field::str("outcome", "disk_hit"),
                     EventLog::Field::f64(
                         "latency_ms",
                         static_cast<double>(latency_ns) / 1e6)});
            }
            entry->publish(std::move(persisted));
            endActiveJob(active);
            return;
        }
    }

    active->stage.store("compile", std::memory_order_relaxed);
    const uint64_t compile_start_ns = steadyNowNs();
    CompileResult result = job.pipeline->run(job.blocks, *job.hw);
    const uint64_t compile_end_ns = steadyNowNs();
    metrics_.recordCompile(result.stats);
    metrics_.addCount(jobsCompletedH_);
    if (tracer_->enabled()) {
        tracer_->recordSpan("compile", "compile", compile_start_ns,
                            compile_end_ns, job.name);
        // The pipeline runs its stages sequentially, so their spans
        // can be laid back-to-back from the measured durations; they
        // nest under "compile" on the same track.
        struct StageSpan
        {
            const char *name;
            double seconds;
        };
        const StageSpan stages[] = {
            {"schedule", result.stats.scheduleSeconds},
            {"synthesis", result.stats.synthSeconds},
            {"peephole", result.stats.peepholeSeconds},
        };
        uint64_t t = compile_start_ns;
        for (const StageSpan &stage : stages) {
            uint64_t end =
                std::min(t + secondsToNs(stage.seconds),
                         compile_end_ns);
            tracer_->recordSpan(stage.name, "stage", t, end, job.name);
            t = end;
        }
    }
    // Verify-on-write: the verdict is taken *before* the artifact can
    // reach the disk tier, so a miscompile never lands in the store.
    bool verify_failed = false;
    if (opts_.verify) {
        active->stage.store("verify", std::memory_order_relaxed);
        const VerifyStatus status = verifyJob(job, result);
        entry->setVerifyStatus(1 + static_cast<uint8_t>(status));
        verify_failed = status == VerifyStatus::Fail;
    }
    active->stage.store("publish", std::memory_order_relaxed);
    // Report before publishing: once the entry publishes, waiters
    // (compileAll callers) may proceed, and every callback for their
    // jobs must already have returned.
    reportDone(job.name);
    const uint64_t latency_ns = finishJob();
    if (eventLog_->enabled()) {
        eventLog_->record(
            "job.finish",
            {EventLog::Field::str("job", job.name),
             EventLog::Field::u64("key", key),
             EventLog::Field::str("outcome", "compiled"),
             EventLog::Field::f64("latency_ms",
                                  static_cast<double>(latency_ns) /
                                      1e6),
             EventLog::Field::b("verify_failed", verify_failed)});
    }
    auto shared = std::make_shared<const CompileResult>(std::move(result));
    entry->publish(shared);
    // Write-behind: persist after publishing so waiters never block
    // on disk I/O. The job stays in the in-flight table until the
    // persist lands, so a wedged disk write is stall-visible too.
    if (opts_.diskCache) {
        active->stage.store("disk_write", std::memory_order_relaxed);
        if (verify_failed && opts_.verifyBeforeStore) {
            metrics_.addCount("verify.blocked_write");
            logWarn("verify: not persisting failed compilation [",
                    job.name, "]");
        } else {
            TraceSpan span(tracer_, "disk_write", "disk", job.name);
            opts_.diskCache->store(key, *shared);
        }
    }
    endActiveJob(active);
}

std::shared_ptr<CompileCache::Entry>
Engine::submitEntry(CompileJob job)
{
    TETRIS_ASSERT(job.hw != nullptr, "job without a device");
    TETRIS_ASSERT(job.pipeline != nullptr, "job without a pipeline");
    metrics_.addCount(jobsSubmittedH_);
    submitted_.fetch_add(1, std::memory_order_relaxed);

    const uint64_t key = jobKey(job);
    std::shared_ptr<CompileCache::Entry> entry;
    bool is_new = true;
    if (opts_.enableCache && !job.transient) {
        entry = cache_.acquire(key, is_new);
    } else {
        // No dedup: every submission gets a private slot. Transient
        // jobs take this path too — a consume-once result must not
        // be pinned by the cache's read views (see CompileJob).
        entry = std::make_shared<CompileCache::Entry>();
    }

    if (is_new) {
        // The submit timestamp rides along so the worker can account
        // the queue wait to this job when it dequeues.
        const uint64_t submit_ns = steadyNowNs();
        // The worker owns a copy of the job; callers may mutate or
        // destroy theirs immediately after submit().
        pool_.submit(
            [this, job = std::move(job), key, entry, submit_ns] {
                runJob(job, key, entry, submit_ns);
            });
    } else {
        metrics_.addCount(jobsDedupedH_);
        // No work left for this submission: the shared entry is (or
        // will be) published by its owner.
        reportDone(job.name);
    }
    return entry;
}

Engine::JobId
Engine::submit(CompileJob job)
{
    auto entry = submitEntry(std::move(job));
    std::lock_guard<std::mutex> lock(jobsMutex_);
    jobs_.push_back(std::move(entry));
    return jobs_.size() - 1;
}

std::shared_ptr<CompileCache::Entry>
Engine::submitScoped(CompileJob job)
{
    return submitEntry(std::move(job));
}

std::shared_ptr<const CompileResult>
Engine::wait(JobId id)
{
    std::shared_ptr<CompileCache::Entry> entry;
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        TETRIS_ASSERT(id < jobs_.size(), "unknown job id ", id);
        entry = jobs_[id];
    }
    return entry->get();
}

void
Engine::syncCacheMetrics()
{
    metrics_.setCount("cache.shard_count",
                      static_cast<uint64_t>(cache_.shardCount()));
    metrics_.setCount("cache.lock_wait_ns", cache_.lockWaitNs());
    if (opts_.diskCache) {
        metrics_.setCount("cache.disk.mmap_loads",
                          opts_.diskCache->mmapLoads());
        metrics_.setCount("cache.disk.buffered_loads",
                          opts_.diskCache->bufferedLoads());
    }
}

std::vector<std::shared_ptr<const CompileResult>>
Engine::compileAll(std::vector<CompileJob> jobs)
{
    std::vector<JobId> ids;
    ids.reserve(jobs.size());
    for (auto &job : jobs)
        ids.push_back(submit(std::move(job)));

    std::vector<std::shared_ptr<const CompileResult>> results;
    results.reserve(ids.size());
    for (JobId id : ids)
        results.push_back(wait(id));
    syncCacheMetrics();
    return results;
}

} // namespace tetris
