#include "engine/engine.hh"

#include "common/hash.hh"
#include "common/logging.hh"
#include "engine/disk_cache.hh"

namespace tetris
{

Engine::Engine(EngineOptions opts)
    : opts_(opts), cache_(opts.cacheShards),
      pool_(ThreadPool::resolveThreadCount(opts.numThreads))
{
}

Engine::~Engine()
{
    pool_.waitIdle();
    // Apply the store's eviction budget once the sweep is done, not
    // per write: trimming mid-run could evict entries the same run
    // is about to read back.
    if (opts_.diskCache && opts_.diskCache->maxBytes() > 0)
        opts_.diskCache->trim(opts_.diskCache->maxBytes());
}

const DiskCache *
Engine::diskCache() const
{
    return opts_.diskCache.get();
}

uint64_t
Engine::jobKey(const CompileJob &job, uint32_t abi_version)
{
    TETRIS_ASSERT(job.hw != nullptr, "job without a device");
    TETRIS_ASSERT(job.pipeline != nullptr, "job without a pipeline");
    // The code-generation stamp comes first: a compiler-algorithm
    // change bumps kTetrisAbiVersion and every key moves, so the
    // persistent store can never serve artifacts an older build
    // produced (see common/version.hh).
    uint64_t h = fnvMix(kFnvOffset, abi_version);
    // The id/options pair is mixed in next so two pipelines over
    // identical blocks can never alias in the cache, even if their
    // option hashes happen to collide.
    h = fnvMixString(h, job.pipeline->name());
    h = fnvMix(h, job.pipeline->optionsHash());
    h = fnvMix(h, job.hw->contentHash());
    h = fnvMix(h, job.blocks.size());
    for (const auto &b : job.blocks)
        h = fnvMix(h, b.contentHash());
    return h;
}

void
Engine::reportDone(const std::string &name)
{
    if (!opts_.onJobDone)
        return;
    // One lock for counters and callback: (done, total) pairs stay
    // consistent and concurrent invocations never interleave.
    std::lock_guard<std::mutex> lock(progressMutex_);
    ++finished_;
    opts_.onJobDone(finished_, submitted_, name);
}

VerifyStatus
Engine::verifyJob(const CompileJob &job, const CompileResult &result)
{
    ScopedTimer timer(metrics_, "verify.seconds");
    VerifyReport report =
        verifyCompileResult(job.blocks, result, opts_.verifyOptions);
    switch (report.status) {
      case VerifyStatus::Pass:
        metrics_.addCount("verify.pass");
        break;
      case VerifyStatus::Fail:
        metrics_.addCount("verify.fail");
        warn("verify FAIL [", job.name, "] via ", report.method, ": ",
             report.detail);
        break;
      case VerifyStatus::Skipped:
        metrics_.addCount("verify.skipped");
        break;
    }
    return report.status;
}

void
Engine::runJob(const CompileJob &job, uint64_t key,
               const std::shared_ptr<CompileCache::Entry> &entry)
{
    // Cancellation gate: checked when a worker dequeues the job, so
    // cancelPending() stops everything that has not started yet.
    if (cancel_.load()) {
        metrics_.addCount("jobs.cancelled");
        if (opts_.enableCache) {
            // Don't let the placeholder result shadow the key: a
            // later engine (or run) must recompile it.
            cache_.erase(key);
        }
        auto placeholder = std::make_shared<CompileResult>();
        placeholder->cancelled = true;
        reportDone(job.name);
        entry->publish(std::move(placeholder));
        return;
    }

    // Read-through: an in-memory miss may still be served from the
    // persistent store of a previous process.
    if (opts_.diskCache) {
        if (auto persisted = opts_.diskCache->load(key)) {
            metrics_.addCount("jobs.disk_hits");
            // Disk artifacts are verified too: this is what catches a
            // stale or silently-wrong .tca entry before its numbers
            // reach a BENCH_*.json.
            if (opts_.verify)
                verifyJob(job, *persisted);
            reportDone(job.name);
            entry->publish(std::move(persisted));
            return;
        }
    }

    CompileResult result = job.pipeline->run(job.blocks, *job.hw);
    metrics_.recordCompile(result.stats);
    metrics_.addCount("jobs.completed");
    // Verify-on-write: the verdict is taken *before* the artifact can
    // reach the disk tier, so a miscompile never lands in the store.
    bool verify_failed = false;
    if (opts_.verify)
        verify_failed = verifyJob(job, result) == VerifyStatus::Fail;
    // Report before publishing: once the entry publishes, waiters
    // (compileAll callers) may proceed, and every callback for their
    // jobs must already have returned.
    reportDone(job.name);
    auto shared = std::make_shared<const CompileResult>(std::move(result));
    entry->publish(shared);
    // Write-behind: persist after publishing so waiters never block
    // on disk I/O.
    if (opts_.diskCache) {
        if (verify_failed && opts_.verifyBeforeStore) {
            metrics_.addCount("verify.blocked_write");
            warn("verify: not persisting failed compilation [",
                 job.name, "]");
        } else {
            opts_.diskCache->store(key, *shared);
        }
    }
}

Engine::JobId
Engine::submit(CompileJob job)
{
    TETRIS_ASSERT(job.hw != nullptr, "job without a device");
    TETRIS_ASSERT(job.pipeline != nullptr, "job without a pipeline");
    metrics_.addCount("jobs.submitted");
    {
        std::lock_guard<std::mutex> lock(progressMutex_);
        ++submitted_;
    }

    const uint64_t key = jobKey(job);
    std::shared_ptr<CompileCache::Entry> entry;
    bool is_new = true;
    if (opts_.enableCache) {
        entry = cache_.acquire(key, is_new);
    } else {
        // No dedup: every submission gets a private slot.
        entry = std::make_shared<CompileCache::Entry>();
    }

    if (is_new) {
        // The worker owns a copy of the job; callers may mutate or
        // destroy theirs immediately after submit().
        pool_.submit([this, job = std::move(job), key, entry] {
            runJob(job, key, entry);
        });
    } else {
        metrics_.addCount("jobs.deduplicated");
        // No work left for this submission: the shared entry is (or
        // will be) published by its owner.
        reportDone(job.name);
    }

    std::lock_guard<std::mutex> lock(jobsMutex_);
    jobs_.push_back(entry);
    return jobs_.size() - 1;
}

std::shared_ptr<const CompileResult>
Engine::wait(JobId id)
{
    std::shared_ptr<CompileCache::Entry> entry;
    {
        std::lock_guard<std::mutex> lock(jobsMutex_);
        TETRIS_ASSERT(id < jobs_.size(), "unknown job id ", id);
        entry = jobs_[id];
    }
    return entry->get();
}

void
Engine::syncCacheMetrics()
{
    metrics_.setCount("cache.shard_count",
                      static_cast<uint64_t>(cache_.shardCount()));
    metrics_.setCount("cache.lock_wait_ns", cache_.lockWaitNs());
    if (opts_.diskCache) {
        metrics_.setCount("cache.disk.mmap_loads",
                          opts_.diskCache->mmapLoads());
        metrics_.setCount("cache.disk.buffered_loads",
                          opts_.diskCache->bufferedLoads());
    }
}

std::vector<std::shared_ptr<const CompileResult>>
Engine::compileAll(std::vector<CompileJob> jobs)
{
    std::vector<JobId> ids;
    ids.reserve(jobs.size());
    for (auto &job : jobs)
        ids.push_back(submit(std::move(job)));

    std::vector<std::shared_ptr<const CompileResult>> results;
    results.reserve(ids.size());
    for (JobId id : ids)
        results.push_back(wait(id));
    syncCacheMetrics();
    return results;
}

} // namespace tetris
