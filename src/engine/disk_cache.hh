/**
 * @file
 * Persistent on-disk compile-artifact store.
 *
 * Extends the in-memory CompileCache across processes: every
 * compilation keyed by Engine::jobKey can be frozen to a .tca
 * artifact (serialize/artifact.hh) and served back on the next run,
 * turning a repeated bench sweep into pure deserialization. Entries
 * shard by key prefix under the cache root:
 *
 *   $TETRIS_CACHE_DIR/<key[0:2]>/<key-16-hex>.tca
 *
 * Reads are zero-copy: load() mmaps the artifact
 * (serialize/mmap_file.hh) and decodes straight out of the page
 * cache; a platform or filesystem without mmap — or TETRIS_DISK_MMAP=0
 * — falls back to a buffered read. mmapLoads()/bufferedLoads() count
 * which path served each hit.
 *
 * Durability rules:
 *  - writes are crash-safe: temp file in the final directory, then
 *    atomic rename — readers never observe a partial artifact (and a
 *    replaced artifact's old inode stays alive under any still-open
 *    mapping; artifacts are never truncated in place);
 *  - any unreadable, truncated, corrupted, version-skewed, or
 *    foreign file is a miss, never an error (the compilation simply
 *    reruns and overwrites it);
 *  - a load hit refreshes the file's mtime, so trim(maxBytes) —
 *    oldest-mtime-first eviction — approximates LRU;
 *  - concurrent engines (threads or processes) may share one
 *    directory; the worst race outcome is a double compilation whose
 *    renames settle on equivalent bytes.
 *
 * Construction goes through open()/openFromEnv(), which validate the
 * directory (created recursively, probed for writability) and return
 * null — warning, not aborting — when the store cannot be used, so a
 * misconfigured cache degrades to cache-off.
 */

#ifndef TETRIS_ENGINE_DISK_CACHE_HH
#define TETRIS_ENGINE_DISK_CACHE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/compiler.hh"

namespace tetris
{

class DiskCache
{
  public:
    /** Aggregate of one stats() walk over the store. */
    struct Usage
    {
        size_t entries = 0;
        uint64_t bytes = 0;
    };

    /**
     * Open the store named by TETRIS_CACHE_DIR, with the eviction
     * budget from TETRIS_CACHE_MAX_BYTES (optional; suffix-free byte
     * count, 0 or unset = unlimited). Null when the variable is
     * unset/empty or the directory is unusable (warned).
     */
    static std::shared_ptr<DiskCache> openFromEnv();

    /**
     * Open a store rooted at `dir` (created recursively; relative
     * paths resolve against the CWD). Null + warning when the path is
     * empty, cannot be resolved/created, or is not writable.
     */
    static std::shared_ptr<DiskCache> open(const std::string &dir,
                                           uint64_t max_bytes = 0);

    /**
     * Fetch the artifact for `key`; null on miss, including every
     * corruption mode. A hit refreshes the entry's LRU mtime.
     */
    std::shared_ptr<const CompileResult> load(uint64_t key) const;

    /** Persist one result (crash-safe). False on I/O failure. */
    bool store(uint64_t key, const CompileResult &result) const;

    /**
     * Evict oldest-mtime entries until the store holds at most
     * `max_bytes` of artifacts. Returns the number of files removed.
     */
    size_t trim(uint64_t max_bytes) const;

    /** Remove every artifact (the directory itself stays). */
    void clear() const;

    /** Walk the store and measure it. */
    Usage usage() const;

    const std::string &dir() const { return dir_; }
    /** Eviction budget applied by Engine teardown; 0 = unlimited. */
    uint64_t maxBytes() const { return maxBytes_; }

    /** Process-lifetime traffic counters (not persisted). */
    size_t hits() const { return hits_.load(); }
    size_t misses() const { return misses_.load(); }
    size_t writes() const { return writes_.load(); }

    /** Hits decoded zero-copy out of an mmap'ed artifact. */
    size_t mmapLoads() const { return mmapLoads_.load(); }
    /** Hits served through the buffered-read fallback. */
    size_t bufferedLoads() const { return bufferedLoads_.load(); }

    /** Final artifact path for a key (shard dir included). */
    std::string pathFor(uint64_t key) const;

  private:
    DiskCache(std::string dir, uint64_t max_bytes)
        : dir_(std::move(dir)), maxBytes_(max_bytes)
    {
    }

    std::string dir_;
    uint64_t maxBytes_ = 0;
    mutable std::atomic<size_t> hits_{0};
    mutable std::atomic<size_t> misses_{0};
    mutable std::atomic<size_t> writes_{0};
    mutable std::atomic<size_t> mmapLoads_{0};
    mutable std::atomic<size_t> bufferedLoads_{0};
};

} // namespace tetris

#endif // TETRIS_ENGINE_DISK_CACHE_HH
