/**
 * @file
 * Job-level span tracer -> Chrome trace-event / Perfetto JSON.
 *
 * Records named time spans (queue wait, compile stages, verify,
 * disk-cache reads/writes) from many worker threads into per-thread
 * buffers and exports them as a Chrome trace-event JSON document
 * ({"traceEvents": [...]}) that chrome://tracing and Perfetto load
 * directly. scripts/trace_report.py summarizes the same file
 * offline (per-stage totals, slowest jobs, queue-wait share).
 *
 * Cost model:
 *  - disabled (the default): recordSpan() and TraceSpan construction
 *    are one relaxed atomic load each — no clock reads, no
 *    allocation. The engine's hot paths stay unmeasurably close to
 *    the untraced build (perf_microbench guards this).
 *  - enabled: each thread appends to its own buffer under its own
 *    never-contended mutex (taken only by that thread while
 *    recording, and by the exporter after the fact), so tracing
 *    scales with thread count instead of serializing on one lock.
 *
 * The process-wide instance (Tracer::global()) arms itself from
 * TETRIS_TRACE=<file> and writes the file when the process exits;
 * tests and embedders construct private Tracers and pass them via
 * EngineOptions::tracer.
 *
 * Span names/categories are captured as const char* and must be
 * string literals (or otherwise outlive the tracer).
 */

#ifndef TETRIS_ENGINE_TRACE_HH
#define TETRIS_ENGINE_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tetris
{

/** Monotonic nanoseconds; the time base of every span. */
inline uint64_t
steadyNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class Tracer
{
  public:
    Tracer();
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Start accepting spans. `path` is where writeFile() (and the
     * destructor) will put the JSON; empty = export via toJson()
     * only. Call before concurrent recording starts.
     */
    void enable(std::string path = "");

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** steadyNowNs() at enable(); spans are exported relative to it. */
    uint64_t epochNs() const { return epochNs_; }

    /**
     * Record one completed span [start_ns, end_ns] (steadyNowNs
     * values). `job` labels the span with the owning CompileJob's
     * display name in the exported args. No-op while disabled.
     */
    void recordSpan(const char *name, const char *category,
                    uint64_t start_ns, uint64_t end_ns,
                    std::string job = {});

    /** Spans recorded so far, across all threads. */
    size_t eventCount() const;

    /** The Chrome trace-event JSON document of everything recorded. */
    std::string toJson() const;

    /**
     * Write toJson() to the enable() path (false + warning when no
     * path was configured or the write fails).
     */
    bool writeFile() const;

    /** Drop all recorded spans (buffers stay registered). */
    void clear();

    /**
     * The process-wide tracer: enabled iff TETRIS_TRACE names a
     * file, which is written when this instance is destroyed at
     * process exit. Engines default to it (EngineOptions::tracer ==
     * nullptr).
     */
    static Tracer &global();

  private:
    struct Event
    {
        const char *name;
        const char *category;
        uint64_t startNs;
        uint64_t durNs;
        std::string job;
    };

    /**
     * One per (tracer, recording thread). The mutex is only ever
     * contended by the exporter: the owning thread records under it
     * uncontended, which keeps the enabled hot path cheap while
     * staying provably race-free (the CI ThreadSanitizer job builds
     * this).
     */
    struct Buffer
    {
        mutable std::mutex mutex;
        int tid = 0;
        std::vector<Event> events;
    };

    Buffer &localBuffer();

    /** Distinguishes tracers in the thread-local buffer cache. */
    const uint64_t id_;
    std::atomic<bool> enabled_{false};
    uint64_t epochNs_ = 0;
    std::string path_;
    mutable std::mutex buffersMutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

/**
 * RAII span: captures the clock on construction, records on
 * destruction. When the tracer is null or disabled the constructor
 * is a branch and the destructor a no-op.
 */
class TraceSpan
{
  public:
    TraceSpan(Tracer *tracer, const char *name, const char *category,
              std::string job = {})
    {
        if (tracer != nullptr && tracer->enabled()) {
            tracer_ = tracer;
            name_ = name;
            category_ = category;
            job_ = std::move(job);
            startNs_ = steadyNowNs();
        }
    }

    ~TraceSpan() { close(); }

    /** Record the span now instead of at scope exit. */
    void close()
    {
        if (tracer_ == nullptr)
            return;
        tracer_->recordSpan(name_, category_, startNs_, steadyNowNs(),
                            std::move(job_));
        tracer_ = nullptr;
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    Tracer *tracer_ = nullptr;
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    std::string job_;
    uint64_t startNs_ = 0;
};

} // namespace tetris

#endif // TETRIS_ENGINE_TRACE_HH
