/**
 * @file
 * Batch compilation engine.
 *
 * Accepts many CompileJobs (block list + device + options), executes
 * them concurrently on a worker thread pool, deduplicates identical
 * jobs through a content-addressed CompileCache, and aggregates
 * per-stage timing into a MetricsRegistry. Results are deterministic:
 * each job's CompileResult is bit-identical to what a serial
 * compileTetris()/compilePaulihedral() call would produce, and
 * compileAll() returns results in submission order regardless of
 * worker interleaving.
 *
 * Thread count defaults to TETRIS_ENGINE_THREADS, falling back to
 * hardware concurrency (see ThreadPool::resolveThreadCount).
 */

#ifndef TETRIS_ENGINE_ENGINE_HH
#define TETRIS_ENGINE_ENGINE_HH

#include <memory>
#include <string>
#include <vector>

#include "baselines/paulihedral.hh"
#include "core/compiler.hh"
#include "engine/compile_cache.hh"
#include "engine/metrics.hh"
#include "engine/thread_pool.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"

namespace tetris
{

/** Which compiler pipeline a job runs. */
enum class PipelineKind
{
    Tetris,
    Paulihedral,
};

/** One unit of batch work: a workload, a device, and options. */
struct CompileJob
{
    /** Display name for progress reporting and JSON artifacts. */
    std::string name;
    std::vector<PauliBlock> blocks;
    /** Shared so many jobs can target one device cheaply. */
    std::shared_ptr<const CouplingGraph> hw;
    PipelineKind pipeline = PipelineKind::Tetris;
    TetrisOptions tetris;
    /** Only read when pipeline == Paulihedral. */
    PaulihedralOptions paulihedral;
};

struct EngineOptions
{
    /** 0 = TETRIS_ENGINE_THREADS env, else hardware concurrency. */
    int numThreads = 0;
    /** Deduplicate identical jobs through the compile cache. */
    bool enableCache = true;
};

class Engine
{
  public:
    using JobId = size_t;

    explicit Engine(EngineOptions opts = EngineOptions());

    /** Drains all outstanding jobs. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Enqueue a job; returns a handle for wait(). */
    JobId submit(CompileJob job);

    /** Block until the job finishes; its immutable result. */
    std::shared_ptr<const CompileResult> wait(JobId id);

    /**
     * Submit every job and wait for all of them. results[i] belongs
     * to jobs[i] — submission order, independent of scheduling.
     */
    std::vector<std::shared_ptr<const CompileResult>>
    compileAll(std::vector<CompileJob> jobs);

    int numThreads() const { return pool_.numThreads(); }
    const CompileCache &cache() const { return cache_; }
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Content hash of everything that determines a job's output:
     * blocks, coupling graph, pipeline kind, and options. The
     * compile-cache key.
     */
    static uint64_t jobKey(const CompileJob &job);

  private:
    void runJob(const CompileJob &job,
                const std::shared_ptr<CompileCache::Entry> &entry);

    EngineOptions opts_;
    MetricsRegistry metrics_;
    CompileCache cache_;
    ThreadPool pool_;

    std::mutex jobsMutex_;
    std::vector<std::shared_ptr<CompileCache::Entry>> jobs_;
};

} // namespace tetris

#endif // TETRIS_ENGINE_ENGINE_HH
