/**
 * @file
 * Batch compilation engine.
 *
 * Accepts many CompileJobs (block list + device + pipeline), executes
 * them concurrently on a worker thread pool, deduplicates identical
 * jobs through a content-addressed CompileCache, and aggregates
 * per-stage timing into a MetricsRegistry. Results are deterministic:
 * each job's CompileResult is bit-identical to what a serial
 * Pipeline::run() call would produce, and compileAll() returns
 * results in submission order regardless of worker interleaving.
 *
 * Which compiler a job runs is data, not code: every registered
 * pipeline (see core/pipeline.hh) dispatches through the same
 * interface, and the cache key mixes in the pipeline id and its
 * options hash so different compilers over identical blocks never
 * alias.
 *
 * Thread count defaults to TETRIS_ENGINE_THREADS, falling back to
 * hardware concurrency (see ThreadPool::resolveThreadCount). The
 * in-memory cache is striped across TETRIS_CACHE_SHARDS
 * independently-locked shards (CompileCache::resolveShardCount) so
 * high-thread-count sweeps do not serialize on one mutex.
 *
 * Below the in-memory cache an optional DiskCache (engine/
 * disk_cache.hh) persists results across processes: in-memory misses
 * read through to disk, fresh compilations write behind to it, and
 * teardown applies the store's eviction budget. Long sweeps can be
 * abandoned with cancelPending(): queued-but-unstarted jobs publish
 * a `cancelled` CompileResult instead of compiling.
 */

#ifndef TETRIS_ENGINE_ENGINE_HH
#define TETRIS_ENGINE_ENGINE_HH

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/version.hh"
#include "core/compiler.hh"
#include "core/pipeline.hh"
#include "engine/compile_cache.hh"
#include "engine/metrics.hh"
#include "engine/thread_pool.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"
#include "verify/verify.hh"

namespace tetris
{

class DiskCache;
class EventLog;
class ObsServer;
class StallWatchdog;
class Tracer;

/** One unit of batch work: a workload, a device, and a pipeline. */
struct CompileJob
{
    /** Display name for progress reporting and JSON artifacts. */
    std::string name;
    std::vector<PauliBlock> blocks;
    /** Shared so many jobs can target one device cheaply. */
    std::shared_ptr<const CouplingGraph> hw;
    /**
     * The compiler stack to run: any registered pipeline, via
     * PipelineRegistry::create(id) or a make*Pipeline() helper.
     */
    PipelinePtr pipeline = defaultPipeline();
    /**
     * Consume-once job: bypass the in-memory compile cache (no dedup
     * entry, nothing retained after the caller drops its handle).
     * For streaming drivers whose chunk keys are unique and whose
     * results are read exactly once, caching would grow resident
     * memory with every chunk compiled — the cache's lock-free read
     * views deliberately pin erased entries until the cache dies, so
     * erase-after-use is not a fix. The persistent disk tier (if
     * configured) still serves and stores transient jobs.
     */
    bool transient = false;
};

struct EngineOptions
{
    /** 0 = TETRIS_ENGINE_THREADS env, else hardware concurrency. */
    int numThreads = 0;
    /** Deduplicate identical jobs through the compile cache. */
    bool enableCache = true;
    /**
     * Mutex stripes of the in-memory compile cache; 0 resolves
     * TETRIS_CACHE_SHARDS, falling back to hardware concurrency
     * (see CompileCache::resolveShardCount).
     */
    int cacheShards = 0;
    /**
     * Persistent tier under the in-memory cache; null = disabled
     * (the default, so unit tests never touch the filesystem).
     * Wire the environment-configured store in with
     * DiskCache::openFromEnv(), as bench_util and compile_cli do.
     */
    std::shared_ptr<DiskCache> diskCache;
    /**
     * Run the semantic equivalence verifier (verify/verify.hh) on
     * every result this engine produces: fresh compilations and
     * disk-cache hits alike, so a stale or corrupted-but-decodable
     * artifact is caught the moment it is served. Outcomes land in
     * the metrics as verify.pass / verify.fail / verify.skipped
     * (time under verify.seconds); failures additionally warn with
     * the job name and the checker's diagnostic. In-memory
     * deduplicated submissions share the one verification of the
     * submission that compiled.
     */
    bool verify = false;
    /** Checker knobs used when `verify` is set. */
    VerifyOptions verifyOptions;
    /**
     * When the verify pass is on, gate the disk tier on its verdict:
     * a compilation whose verification *fails* is still published to
     * its waiters (flagged by the warn + verify.fail metric) but is
     * never persisted, so a bad compile cannot poison the store and
     * get served to later runs. Each blocked persist counts as
     * verify.blocked_write. No effect unless `verify` is set.
     */
    bool verifyBeforeStore = true;
    /**
     * Span tracer receiving this engine's per-job trace events
     * (queue wait, compile stages, verify, disk reads/writes); see
     * engine/trace.hh. Null (the default) means Tracer::global(),
     * which is armed by TETRIS_TRACE=<file> and otherwise records
     * nothing. Tests pass a private Tracer to capture spans without
     * touching process state. Must outlive the engine.
     */
    Tracer *tracer = nullptr;
    /**
     * Progress hook: called once per submission when its work is
     * finished -- after the compilation for fresh jobs, immediately
     * for cache-deduplicated ones. `done` counts finished
     * submissions, `total` submissions so far. Invocations are
     * serialized (safe to print from) but run on worker threads and
     * must not call back into the engine. A job's callback always
     * returns before wait() on that job does.
     */
    std::function<void(size_t done, size_t total,
                       const std::string &name)>
        onJobDone;
    /**
     * Observability scrape server bind address ("host:port", port 0
     * for an ephemeral one — see obs/obs_server.hh). Empty (the
     * default) consults TETRIS_OBS_ADDR; no env either means no
     * server, which is the zero-overhead path.
     */
    std::string obsServer;
    /**
     * Stall-watchdog threshold in milliseconds (obs/watchdog.hh):
     * a job in flight longer than this is flagged once via the
     * jobs.stalled metric, a `stall` event record, and a warn log
     * line. 0 (the default) consults TETRIS_STALL_MS; no env either
     * means no watchdog thread.
     */
    uint64_t stallMs = 0;
    /**
     * Structured event sink for job lifecycle records
     * (obs/event_log.hh). Null (the default) means
     * EventLog::global(), which is armed by TETRIS_EVENT_LOG and
     * otherwise records nothing. Tests pass a private EventLog; it
     * must outlive the engine.
     */
    EventLog *eventLog = nullptr;
};

class Engine
{
  public:
    using JobId = size_t;

    explicit Engine(EngineOptions opts = EngineOptions());

    /** Drains all outstanding jobs. */
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Enqueue a job; returns a handle for wait(). */
    JobId submit(CompileJob job);

    /**
     * Session-scoped submission for resident services (serve/): the
     * same enqueue/dedup path as submit(), but the returned entry is
     * the *only* handle — nothing is appended to the engine-lifetime
     * job table, so a daemon serving millions of requests does not
     * grow per-request state inside the engine. Block on
     * entry->get() for the immutable result; dropping the entry
     * abandons interest (the compilation still completes and caches).
     */
    std::shared_ptr<CompileCache::Entry> submitScoped(CompileJob job);

    /** Block until the job finishes; its immutable result. */
    std::shared_ptr<const CompileResult> wait(JobId id);

    /**
     * Submit every job and wait for all of them. results[i] belongs
     * to jobs[i] — submission order, independent of scheduling.
     */
    std::vector<std::shared_ptr<const CompileResult>>
    compileAll(std::vector<CompileJob> jobs);

    /**
     * Abandon every job that has not started compiling yet: each
     * publishes an empty CompileResult with `cancelled` set (so
     * compileAll/wait still return one result per submission, in
     * order) and its key leaves the in-memory cache. One-way for the
     * lifetime of this engine; jobs submitted afterwards are also
     * cancelled. Jobs already inside Pipeline::run complete normally.
     */
    void cancelPending() { cancel_.store(true); }

    /** True once cancelPending() has been called. */
    bool cancelRequested() const { return cancel_.load(); }

    /**
     * Block until every submitted job's work has fully finished.
     * wait()/compileAll() return as results publish; drain()
     * additionally covers the write-behind disk persists that run
     * after a result publishes (the destructor drains implicitly).
     * While draining, draining() reads true and /healthz reports
     * "draining".
     */
    void drain();

    /** True while drain() (or the destructor) is waiting for the
     *  pool to go idle. Relaxed; safe to poll from any thread. */
    bool draining() const
    {
        return draining_.load(std::memory_order_relaxed);
    }

    /**
     * Pin the draining flag without waiting: a resident service
     * (serve/server.hh) sets it the moment SIGTERM lands so /healthz
     * reports "draining" for the *entire* shutdown window — before,
     * during, and after the drain() call — not just while the pool
     * empties. One-way in practice; drain() still clears it, so a
     * daemon re-asserts after draining if it keeps serving errors.
     */
    void markDraining(bool v)
    {
        draining_.store(v, std::memory_order_relaxed);
    }

    int numThreads() const { return pool_.numThreads(); }

    /**
     * Live progress counters (relaxed atomics — safe to poll from
     * any thread, e.g. the StatsReporter): submissions accepted,
     * jobs a worker has dequeued, and submissions whose work is
     * finished. Deduplicated submissions finish without starting,
     * so finishedCount() can exceed startedCount().
     */
    size_t submittedCount() const
    {
        return submitted_.load(std::memory_order_relaxed);
    }
    size_t startedCount() const
    {
        return started_.load(std::memory_order_relaxed);
    }
    size_t finishedCount() const
    {
        return finished_.load(std::memory_order_relaxed);
    }

    /** The tracer this engine records spans into (never null). */
    Tracer &tracer() const { return *tracer_; }

    /** The structured event sink (never null; possibly disarmed). */
    EventLog &eventLog() const { return *eventLog_; }

    /**
     * One dequeued-but-unfinished job as the obs plane sees it. The
     * engine updates `stage` (a string literal: queued, disk_read,
     * compile, verify, publish, disk_write) as the job progresses;
     * the watchdog sets `stalled` at most once. Snapshots share
     * ownership, so a job finishing mid-scrape never dangles.
     */
    struct ActiveJob
    {
        std::string name;
        uint64_t key = 0;
        /** steadyNowNs() at dequeue. */
        uint64_t startNs = 0;
        std::atomic<const char *> stage{"queued"};
        std::atomic<bool> stalled{false};
    };

    /** Completed-job record for the statusz top-N view. */
    struct RecentJob
    {
        std::string name;
        /** Submit-to-publish latency. */
        uint64_t durationNs = 0;
    };

    /** Snapshot of the in-flight job table (watchdog, /statusz). */
    std::vector<std::shared_ptr<ActiveJob>> activeJobs() const;

    /** The last <=64 finished jobs, oldest first (/statusz). */
    std::vector<RecentJob> recentJobs() const;

    /** Scrape-server port when one is armed and bound, else 0. */
    int obsPort() const;

    /** Seconds since this engine was constructed. */
    double uptimeSeconds() const;

    /** True when this engine runs the verify pass on its results. */
    bool verifyEnabled() const { return opts_.verify; }
    const CompileCache &cache() const { return cache_; }

    /**
     * Publish the cache's gauge-style counters into the metrics
     * registry: cache.shard_count, cache.lock_wait_ns, and — when a
     * disk tier is attached — cache.disk.mmap_loads /
     * cache.disk.buffered_loads. Called automatically at the end of
     * compileAll(); call it directly before reading metrics() after
     * bare submit()/wait() traffic.
     */
    void syncCacheMetrics();
    /** The persistent tier, or null when disabled. */
    const DiskCache *diskCache() const;
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /**
     * Content hash of everything that determines a job's output:
     * the compiler code generation (kTetrisAbiVersion -- so bumping
     * it orphans every artifact an older algorithm produced), the
     * pipeline id, its options hash, the coupling graph, and the
     * blocks. The key of both the in-memory compile cache and the
     * persistent artifact store. The abi_version parameter exists
     * for tests; production callers use the current stamp.
     */
    static uint64_t jobKey(const CompileJob &job,
                           uint32_t abi_version = kTetrisAbiVersion);

  private:
    std::shared_ptr<CompileCache::Entry> submitEntry(CompileJob job);
    void runJob(const CompileJob &job, uint64_t key,
                const std::shared_ptr<CompileCache::Entry> &entry,
                uint64_t submit_ns);
    VerifyStatus verifyJob(const CompileJob &job,
                           const CompileResult &result);
    void reportDone(const std::string &name);
    std::shared_ptr<ActiveJob> beginActiveJob(const std::string &name,
                                              uint64_t key,
                                              uint64_t start_ns);
    void endActiveJob(const std::shared_ptr<ActiveJob> &job);
    void pushRecentJob(const std::string &name, uint64_t duration_ns);

    EngineOptions opts_;
    std::atomic<bool> cancel_{false};
    MetricsRegistry metrics_;
    CompileCache cache_;
    ThreadPool pool_;

    /** opts_.tracer resolved against Tracer::global(); never null. */
    Tracer *tracer_;
    /** Stable refs into metrics_ for the per-job latency records. */
    Histogram *latencyHist_;
    Histogram *queueWaitHist_;
    /** Pre-interned instruments for the per-job hot path. */
    MetricsRegistry::Handle jobsSubmittedH_, jobsCompletedH_,
        jobsDedupedH_, jobsDiskHitsH_, jobsCancelledH_;
    MetricsRegistry::Handle verifyPassH_, verifyFailH_,
        verifySkippedH_, verifySecondsH_;

    std::mutex jobsMutex_;
    std::vector<std::shared_ptr<CompileCache::Entry>> jobs_;

    /** Serializes onJobDone so (done, total) pairs never interleave. */
    std::mutex progressMutex_;
    std::atomic<size_t> submitted_{0};
    std::atomic<size_t> started_{0};
    std::atomic<size_t> finished_{0};

    /** opts_.eventLog resolved against EventLog::global(); never
     *  null (possibly disarmed, in which case record() is a no-op). */
    EventLog *eventLog_;
    std::atomic<bool> draining_{false};
    /** steadyNowNs() at construction, for uptime. */
    uint64_t startNs_ = 0;

    /** In-flight job table for the watchdog and /statusz. Touched
     *  twice per dequeued job — negligible next to a compile. */
    mutable std::mutex activeMutex_;
    std::vector<std::shared_ptr<ActiveJob>> active_;

    /** Ring of the last finished jobs for the statusz top-N view. */
    mutable std::mutex recentMutex_;
    std::deque<RecentJob> recent_;

    /** Declared last, and reset explicitly in the destructor before
     *  the pool drains, so neither ever observes a dead engine. */
    std::unique_ptr<StallWatchdog> watchdog_;
    std::unique_ptr<ObsServer> obsServer_;
};

} // namespace tetris

#endif // TETRIS_ENGINE_ENGINE_HH
