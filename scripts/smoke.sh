#!/usr/bin/env bash
# Quick end-to-end smoke: configure + build, then run one batch bench
# binary in quick mode and check its JSON trajectory appears.
set -euo pipefail
cd "$(dirname "$0")/.."

export TETRIS_BENCH_QUICK=1
export TETRIS_ENGINE_THREADS="${TETRIS_ENGINE_THREADS:-2}"

cmake -B build -S .
cmake --build build -j

(cd build && ./table2_main)
test -s build/BENCH_table2.json
echo "smoke OK: build/BENCH_table2.json written"
