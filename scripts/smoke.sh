#!/usr/bin/env bash
# Quick end-to-end smoke: configure + build, then run a slice of the
# engine-backed bench binaries in quick mode and check that each
# drops its machine-readable BENCH_*.json trajectory. The slice
# covers the three workload families (UCCSD molecules via table2,
# multi-pipeline comparison via fig14, QAOA via fig23).
#
# Second half: the persistent compile-artifact store. One bench runs
# twice against a fresh TETRIS_CACHE_DIR; the cold run must populate
# the store and the warm run must recompile nothing (all disk hits).
# A deliberately corrupted artifact must degrade to a miss, not an
# error, and scripts/cache_tool.py + scripts/bench_diff.py must
# operate on the resulting store/trajectories. The warm run must
# report zero contended cache lock waits (published hits are served
# by the cache's lock-free read view). The perf microbench (sharded
# cache + mmap artifact reads + packed Pauli kernels) then runs its
# quick preset: its warm engine sweep must do zero recompiles, its
# pure-hit cache sweeps must be lock-free, and the packed kernels
# must hold their >=5x speedup at 64+ qubits.
#
# Observability: trajectories must carry the bench-v2 schema with
# latency histograms, a TETRIS_TRACE run must produce a file that
# scripts/trace_report.py validates, and bench_diff.py must refuse
# (exit 2) to diff artifacts with mismatched schemas. The resident
# obs plane then runs for real: a sweep with TETRIS_OBS_ADDR serves
# /metrics mid-run (scraped and strictly validated by
# scripts/obs_scrape.py), its idle-state scrape must agree with the
# BENCH json bucket for bucket, and TETRIS_EVENT_LOG must record the
# job lifecycle. The disarmed event log must cost a few ns/op at
# most (obs_overhead section of BENCH_perf.json).
#
# Serving: the multi-client stress bench must pass (warm phase all
# cache hits) and write its serve-v1 trajectory, then a real tetrisd
# round-trips compilations over TCP + unix socket via tetris_client
# — including a streamed program file ingested in windowed chunks
# with server-side verification on — and is SIGTERMed mid-batch; the
# drain must answer in-flight work, unlink the unix socket, and
# exit 0.
#
# Streaming frontend: the quick stream bench must verify every chunk
# and write its stream-v1 trajectory (self-diffing clean), a short
# frontend fuzz sweep must find no total-decode violation, and a
# dedicated 1M+-instruction run must hold peak RSS under the
# window-proportional bound — the O(window) memory claim, asserted
# at file scale.
set -euo pipefail
cd "$(dirname "$0")/.."

export TETRIS_BENCH_QUICK=1
export TETRIS_ENGINE_THREADS="${TETRIS_ENGINE_THREADS:-2}"

cmake -B build -S .
cmake --build build -j

for bench in table2_main fig14_compilers fig23_qaoa; do
  (cd build && "./${bench}")
done
for artifact in table2 fig14 fig23; do
  test -s "build/BENCH_${artifact}.json"
  echo "smoke OK: build/BENCH_${artifact}.json written"
done

# ---- observability: schema, histograms, tracing -------------------
# Every job trajectory must declare the bench-v2 schema and carry
# ordered latency percentiles for job latency and queue wait.
python3 - build/BENCH_table2.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("schema") == "bench-v2", \
    f"expected bench-v2 schema, got {doc.get('schema')!r}"
hists = doc["engine"]["histograms"]
for name in ("job.latency_ns", "job.queue_wait_ns"):
    h = hists[name]
    assert h["count"] > 0, f"{name} recorded nothing"
    assert h["p50"] <= h["p90"] <= h["p99"], \
        f"{name} percentiles out of order: {h}"
print(f"smoke OK: bench-v2 histograms present "
      f"(job latency p99 {hists['job.latency_ns']['p99']} ns over "
      f"{hists['job.latency_ns']['count']} job(s))")
EOF

# A traced run must produce a loadable Chrome trace-event file that
# trace_report.py accepts; a malformed one must be rejected (exit 2).
rm -f build/smoke-trace.json
(cd build && TETRIS_TRACE=smoke-trace.json ./table2_main)
test -s build/smoke-trace.json
python3 scripts/trace_report.py build/smoke-trace.json
echo 'not a trace' > build/smoke-trace-bad.json
if python3 scripts/trace_report.py build/smoke-trace-bad.json \
    2> /dev/null; then
  echo "smoke FAIL: trace_report accepted a malformed trace" >&2
  exit 1
fi
python3 scripts/trace_report.py build/smoke-trace.json --json \
  > build/smoke-trace-report.json
python3 - build/smoke-trace-report.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "trace-report-v1", doc.get("schema")
assert doc["stages"].get("job", {}).get("count", 0) > 0, \
    "trace report JSON has no job spans"
print(f"smoke OK: trace_report --json emitted "
      f"{doc['spans']} span(s) across {len(doc['stages'])} stage(s)")
EOF
echo "smoke OK: traced run + trace_report validation passed"

# ---- resident obs plane: live scrape + event log ------------------
# Run a sweep with the scrape server and event log armed. The scraper
# polls /metrics while jobs are in flight (every scrape must pass the
# strict exposition validation and counters must be monotone), waits
# for the idle end-of-sweep state, and that final scrape must agree
# with the run's BENCH json histogram bucket for bucket (the linger
# window keeps the server up long enough to catch it).
obs_port=$((20000 + RANDOM % 20000))
obs_events="$PWD/build/smoke-events.jsonl"
rm -f "$obs_events" build/smoke-scrape.prom
(cd build && TETRIS_OBS_ADDR="127.0.0.1:${obs_port}" \
  TETRIS_OBS_LINGER_MS=8000 TETRIS_EVENT_LOG="$obs_events" \
  TETRIS_STATS_SUMMARY=1 ./table2_main) &
obs_bench_pid=$!
python3 scripts/obs_scrape.py scrape --port "$obs_port" \
  --wait-idle --timeout 120 --out build/smoke-scrape.prom
wait "$obs_bench_pid"
python3 scripts/obs_scrape.py check build/smoke-scrape.prom \
  --bench build/BENCH_table2.json
test -s "$obs_events"
for event in job.start job.finish; do
  if ! grep -q "\"event\":\"${event}\"" "$obs_events"; then
    echo "smoke FAIL: event log has no ${event} record" >&2
    exit 1
  fi
done
echo "smoke OK: live /metrics scrape validated + matched BENCH json;" \
  "event log recorded the job lifecycle"

# Mixing a bench-v2 trajectory with a legacy (pre-schema) one must be
# an invocation error (exit 2), not a crash or a silent diff.
python3 - build/BENCH_table2.json build/BENCH_table2.legacy.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc.pop("schema", None)
doc["engine"].pop("histograms", None)
json.dump(doc, open(sys.argv[2], "w"))
EOF
set +e
python3 scripts/bench_diff.py \
  build/BENCH_table2.json build/BENCH_table2.legacy.json
mixed_rc=$?
set -e
if [ "$mixed_rc" -ne 2 ]; then
  echo "smoke FAIL: mixed-schema diff exited $mixed_rc (want 2)" >&2
  exit 1
fi
echo "smoke OK: mixed-schema diff refused with exit 2"

# ---- persistent disk cache: cold run, warm run, corruption --------
warm_dir="${TETRIS_CACHE_DIR:-$PWD/build/tetris-cache}/smoke"
rm -rf "$warm_dir"

# Cold: populates the store.
(cd build && TETRIS_CACHE_DIR="$warm_dir" ./table2_main)
python3 - build/BENCH_table2.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
disk = doc["cache"]["disk"]
assert disk["enabled"], "disk cache not enabled on cold run"
assert disk["writes"] > 0, "cold run persisted nothing"
assert disk["hits"] == 0, "cold run cannot have disk hits"
print(f"smoke OK: cold run persisted {disk['writes']} artifact(s)")
EOF
cp build/BENCH_table2.json build/BENCH_table2.cold.json

# Warm: identical run must deserialize everything, compiling
# nothing. Published in-memory hits go through the cache's lock-free
# read view, so the warm sweep must also report zero contended cache
# lock waits — nonzero here means the hit path regressed onto a
# mutex.
(cd build && TETRIS_CACHE_DIR="$warm_dir" ./table2_main)
python3 - build/BENCH_table2.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
disk = doc["cache"]["disk"]
counts = doc["engine"]["counts"]
assert disk["hits"] > 0, "warm run reported no disk-cache hits"
assert counts.get("jobs.completed", 0) == 0, \
    f"warm run still compiled {counts.get('jobs.completed')} job(s)"
lock_wait = counts.get("cache.lock_wait_ns", 0)
assert lock_wait == 0, \
    f"warm run saw {lock_wait} ns of contended cache lock waits " \
    "(hit path must be lock-free)"
print(f"smoke OK: warm run served {disk['hits']} job(s) from disk, "
      "0 recompilations, 0 ns contended cache lock wait")
EOF

# Identical runs must also diff clean.
python3 scripts/bench_diff.py \
  build/BENCH_table2.cold.json build/BENCH_table2.json

# Corrupt one artifact: the next run must degrade it to a miss and
# still succeed end to end.
victim="$(find "$warm_dir" -name '*.tca' | head -n1)"
test -n "$victim"
printf 'deliberately corrupted' > "$victim"
(cd build && TETRIS_CACHE_DIR="$warm_dir" ./table2_main)
python3 - build/BENCH_table2.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
disk = doc["cache"]["disk"]
assert disk["misses"] > 0, "corrupted artifact did not read as a miss"
print("smoke OK: corrupted artifact degraded to a miss "
      f"({disk['misses']} miss(es), run still succeeded)")
EOF

python3 scripts/cache_tool.py stats --dir "$warm_dir"
python3 scripts/cache_tool.py trim --dir "$warm_dir" --max-bytes 0
python3 scripts/cache_tool.py stats --dir "$warm_dir"
echo "smoke OK: persistent cache cold/warm/corruption cycle passed"

# ---- perf microbench: caching-path throughput/latency -------------
# Quick preset of the cache/artifact-load/engine microbenchmark. The
# embedded warm engine sweep must be served entirely from the store
# (zero recompilations) and, where the platform supports it, through
# the zero-copy mmap path.
(cd build && ./perf_microbench)
python3 - build/BENCH_perf.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "perf-v1", "unexpected perf schema"
warm = doc["engine"]["warm"]
assert warm["completed"] == 0, \
    f"warm microbench recompiled {warm['completed']} job(s)"
assert warm["disk_hits"] > 0, "warm microbench had no disk hits"
load = doc["artifact_load"]
if load["mmap_enabled"]:
    assert load["mmap_loads"] > 0, "mmap load path not exercised"
assert load["buffered_loads"] > 0, "buffered fallback not exercised"
assert doc["cache"]["sweeps"], "empty cache sweep"
for sweep in doc["cache"]["sweeps"]:
    assert sweep["lock_wait_ns"] == 0, \
        f"pure-hit cache sweep reported {sweep['lock_wait_ns']} ns " \
        "of lock wait (hit path must be lock-free)"
rows = doc["pauli_kernels"]["rows"]
assert rows, "pauli_kernels section is empty"
slow = [r for r in rows
        if r["qubits"] >= 64
        and r["kernel"] in ("commute", "product")
        and r["speedup"] < 5.0]
assert not slow, f"packed Pauli kernels below 5x at >=64 qubits: {slow}"
obs = doc["obs_overhead"]
assert obs["event_log_disabled_ns"] < 50.0, \
    "disarmed event log costs " \
    f"{obs['event_log_disabled_ns']:.1f} ns/op (must stay a few ns)"
assert obs["scrape_load_count"] > 0, \
    "no /metrics scrapes landed during the loaded run"
print("smoke OK: warm microbench did zero recompiles "
      f"({warm['disk_hits']} disk hit(s), "
      f"{load['mmap_loads']} mmap load(s)); pure-hit sweeps "
      "lock-free; packed Pauli kernels >=5x at 64+ qubits; "
      f"disarmed event log {obs['event_log_disabled_ns']:.2f} ns/op")
EOF
# A perf trajectory must diff clean against itself.
python3 scripts/bench_diff.py \
  build/BENCH_perf.json build/BENCH_perf.json
echo "smoke OK: perf microbench + perf diff passed"

# ---- semantic verification sweep ----------------------------------
# Every result of a multi-pipeline molecule sweep (and every QAOA
# result outside the qubit-reuse contract) must pass the equivalence
# verifier; a single verify.fail is a miscompile and fails the smoke.
(cd build && TETRIS_VERIFY=1 ./fig14_compilers)
python3 scripts/check_verify_json.py build/BENCH_fig14.json
echo "smoke OK: verification sweep clean"

# Bounded differential fuzz: random programs through all pipelines,
# pairwise-checked against each other.
python3 scripts/fuzz_verify.py --binary build/test_verify_fuzz \
  --seeds 3 --cases 4
echo "smoke OK: verification + differential fuzz passed"

# ---- streaming frontend: windowed chunk compilation ---------------
# Quick preset with per-chunk semantic verification: every chunk of
# every workload family must verify, peak RSS must sit inside the
# window bound (the binary exits 1 on either), and the stream-v1
# trajectory must self-diff clean.
(cd build && TETRIS_VERIFY=1 ./stream_bench)
test -s build/BENCH_stream.json
python3 - build/BENCH_stream.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("schema") == "stream-v1", \
    f"expected stream-v1 schema, got {doc.get('schema')!r}"
assert doc["rss_within_bound"], \
    f"peak RSS {doc['peak_rss_kb']} KiB over bound {doc['rss_bound_kb']}"
for row in doc["rows"]:
    assert row["verify_failures"] == 0, \
        f"{row['name']}: {row['verify_failures']} chunk(s) failed verify"
    assert row["chunks"] > 1, \
        f"{row['name']}: only {row['chunks']} chunk(s) — not windowed"
print(f"smoke OK: {len(doc['rows'])} streamed workload(s), every "
      f"chunk verified, peak RSS {doc['peak_rss_kb']} KiB "
      f"(bound {doc['rss_bound_kb']} KiB)")
EOF
python3 scripts/bench_diff.py \
  build/BENCH_stream.json build/BENCH_stream.json

# Bounded frontend fuzz: random/mutated/garbage bytes through both
# parsers — clean end or one typed positioned error, deterministic.
python3 scripts/fuzz_frontend.py --binary build/test_frontend_fuzz \
  --seeds 3 --cases 10
echo "smoke OK: streaming bench + frontend fuzz passed"

# The memory contract at file scale: stream 1M+ instructions per
# workload and hold peak RSS inside the same window bound (the
# binary exits 1 if resident memory scaled with input length
# instead of window size). Verification is covered by the quick run
# above; this run is about the memory shape.
(cd build && TETRIS_STREAM_INSTRUCTIONS=1000000 ./stream_bench)
python3 - build/BENCH_stream.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["rss_within_bound"], \
    f"peak RSS {doc['peak_rss_kb']} KiB over bound {doc['rss_bound_kb']}"
for row in doc["rows"]:
    assert row["instructions"] >= 1000000, \
        f"{row['name']}: only {row['instructions']} instruction(s)"
print(f"smoke OK: 1M+-instruction streams held peak RSS at "
      f"{doc['peak_rss_kb']} KiB (bound {doc['rss_bound_kb']} KiB, "
      f"window {doc['window']})")
EOF

# ---- resident serve plane: tetrisd + wire protocol ----------------
# The multi-client stress bench runs the full frame protocol against
# an in-process server: the warm phase must be pure cache hits (the
# binary itself exits 1 on any recompile, rejection, or verify
# failure) and the serve-v1 trajectory must self-diff clean.
(cd build && ./serve_stress)
test -s build/BENCH_serve.json
python3 scripts/bench_diff.py \
  build/BENCH_serve.json build/BENCH_serve.json
echo "smoke OK: serve_stress wrote build/BENCH_serve.json"

# Then the real daemon: start tetrisd on an ephemeral port + unix
# socket, round-trip compilations over both transports with
# tetris_client, and SIGTERM it mid-batch. The drain must answer
# every in-flight request, unlink the unix socket, and exit 0.
serve_dir="$PWD/build/tetris-serve-smoke"
rm -rf "$serve_dir"
mkdir -p "$serve_dir"
rm -f build/tetrisd.port build/tetrisd.log
# exec so $! is tetrisd itself, not a wrapping subshell — the
# SIGTERM below must land on the daemon.
(cd build && exec env TETRIS_CACHE_DIR="$serve_dir" TETRIS_VERIFY=1 \
  ./tetrisd_main --port 0 --port-file tetrisd.port \
  --unix "$serve_dir/tetrisd.sock" > tetrisd.log 2>&1) &
tetrisd_pid=$!
for _ in $(seq 1 50); do
  [ -s build/tetrisd.port ] && break
  sleep 0.1
done
test -s build/tetrisd.port
serve_port="$(cat build/tetrisd.port)"

(cd build && ./tetris_client --port "$serve_port" --ping)
(cd build && ./tetris_client --port "$serve_port" \
  --jobs 4 --distinct 2 --qubits 6)
(cd build && ./tetris_client --unix "$serve_dir/tetrisd.sock" \
  --jobs 2 --qubits 6)
(cd build && ./tetris_client --port "$serve_port" --stats) \
  | grep -q 'serve.results' \
  || { echo "smoke FAIL: no serve.results in daemon stats" >&2; \
       exit 1; }
echo "smoke OK: tetrisd round-trips over TCP + unix socket"

# Streamed ingest through the live daemon: generate a program file,
# chunk it client-side, and chain each chunk's final layout into the
# next submission over the wire (protocol v2 seeding). The daemon
# runs with TETRIS_VERIFY=1, and the client exits nonzero if any
# chunk's verify verdict comes back as a failure.
(cd build && ./gen_workloads --kind shor --qubits 12 \
  --min-instructions 3000 --out smoke-stream.pauli)
(cd build && ./tetris_client --port "$serve_port" \
  --file smoke-stream.pauli --window 64 --name smoke-stream)
echo "smoke OK: streamed ingest through live tetrisd, layouts" \
  "chained over the wire, every chunk verified"

# SIGTERM mid-batch: a client is still submitting when the signal
# lands. The daemon must drain (answering what it accepted) and
# exit 0; the client may see the connection close for its remaining
# jobs, which is not a smoke failure.
(cd build && ./tetris_client --port "$serve_port" \
  --jobs 40 --qubits 8 > /dev/null 2>&1) &
client_pid=$!
sleep 0.4
kill -TERM "$tetrisd_pid"
set +e
wait "$tetrisd_pid"
tetrisd_rc=$?
wait "$client_pid"
set -e
if [ "$tetrisd_rc" -ne 0 ]; then
  echo "smoke FAIL: tetrisd exited $tetrisd_rc after SIGTERM" >&2
  exit 1
fi
grep -q 'drained after' build/tetrisd.log
if [ -e "$serve_dir/tetrisd.sock" ]; then
  echo "smoke FAIL: drain left the unix socket behind" >&2
  exit 1
fi
echo "smoke OK: SIGTERM mid-batch drained cleanly" \
  "($(grep 'drained after' build/tetrisd.log))"
