#!/usr/bin/env bash
# Quick end-to-end smoke: configure + build, then run a slice of the
# engine-backed bench binaries in quick mode and check that each
# drops its machine-readable BENCH_*.json trajectory. The slice
# covers the three workload families (UCCSD molecules via table2,
# multi-pipeline comparison via fig14, QAOA via fig23).
set -euo pipefail
cd "$(dirname "$0")/.."

export TETRIS_BENCH_QUICK=1
export TETRIS_ENGINE_THREADS="${TETRIS_ENGINE_THREADS:-2}"

cmake -B build -S .
cmake --build build -j

for bench in table2_main fig14_compilers fig23_qaoa; do
  (cd build && "./${bench}")
done
for artifact in table2 fig14 fig23; do
  test -s "build/BENCH_${artifact}.json"
  echo "smoke OK: build/BENCH_${artifact}.json written"
done
