#!/usr/bin/env python3
"""Compare two BENCH_*.json trajectory artifacts and flag regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--tolerance PCT]

Matches jobs by name and compares the paper's headline metrics
(CNOT count, total gate count, depth, SWAP count) per job. A metric
regresses when the candidate exceeds the baseline by more than
--tolerance percent (default 0: any increase counts). Jobs present
in only one artifact are reported but are not regressions.

Exit status: 0 = no regressions, 1 = at least one regression,
2 = bad invocation or unreadable/malformed artifact.
"""

import argparse
import json
import sys

# Metrics where *more* is *worse*, in report order.
METRICS = ("cnotCount", "totalGateCount", "depth", "swapCount")


def load_jobs(path):
    """Return {job key: stats dict} from one trajectory artifact.

    Display names may repeat within a sweep (e.g. table2 runs each
    molecule once per encoder under one name), so repeats are keyed
    by submission-order occurrence: "LiH/ph", "LiH/ph#2", ... Both
    artifacts of one bench binary number identically.
    """
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    jobs = {}
    seen = {}
    for job in doc.get("jobs", []):
        name, stats = job.get("name"), job.get("stats")
        if name is None or stats is None:  # failed job
            continue
        if job.get("cancelled"):  # zeroed stats, not a measurement
            continue
        seen[name] = seen.get(name, 0) + 1
        key = name if seen[name] == 1 else f"{name}#{seen[name]}"
        jobs[key] = stats
    if not jobs:
        print(f"bench_diff: no comparable jobs in {path}",
              file=sys.stderr)
        sys.exit(2)
    return jobs


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json artifacts for regressions."
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="PCT",
        help="allowed increase in percent before a metric counts as "
        "a regression (default: 0, any increase)",
    )
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    base = load_jobs(args.baseline)
    cand = load_jobs(args.candidate)

    regressions = []
    improvements = 0
    for name in sorted(base.keys() & cand.keys()):
        for metric in METRICS:
            old = base[name].get(metric)
            new = cand[name].get(metric)
            if old is None or new is None:
                continue
            if new > old * (1.0 + args.tolerance / 100.0):
                pct = 100.0 * (new - old) / old if old else float("inf")
                regressions.append((name, metric, old, new, pct))
            elif new < old:
                improvements += 1

    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())
    for name in only_base:
        print(f"note: job '{name}' only in {args.baseline}")
    for name in only_cand:
        print(f"note: job '{name}' only in {args.candidate}")

    common = len(base.keys() & cand.keys())
    if regressions:
        print(
            f"REGRESSIONS ({len(regressions)} metric(s) across "
            f"{len({r[0] for r in regressions})} job(s), "
            f"tolerance {args.tolerance:g}%):"
        )
        for name, metric, old, new, pct in regressions:
            print(f"  {name}: {metric} {old} -> {new} (+{pct:.1f}%)")
        print(
            f"compared {common} common job(s); "
            f"{improvements} metric(s) improved"
        )
        return 1

    print(
        f"OK: no regressions across {common} common job(s) "
        f"({improvements} metric(s) improved, "
        f"tolerance {args.tolerance:g}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
