#!/usr/bin/env python3
"""Compare two BENCH_*.json trajectory artifacts and flag regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--tolerance PCT]

Matches jobs by name and compares the paper's headline metrics
(CNOT count, total gate count, depth, SWAP count) per job. A metric
regresses when the candidate exceeds the baseline by more than
--tolerance percent (default 0: any increase counts). Jobs present
in only one artifact are reported but are not regressions.

Perf trajectories (BENCH_perf.json, "schema": "perf-v1", written by
bench/perf_microbench) are diffed with different rules, because raw
timing is machine- and load-dependent:
  - WARN-only: throughput (ops_per_sec) or latency (avg_ns) moving
    by more than --tolerance percent in the bad direction, the
    pauli_kernels rows (packed kernel ns/op rising, or the
    packed-vs-byte speedup shrinking), and the obs_overhead numbers
    (disarmed event-log ns/op or /metrics scrape latency rising);
  - FAIL: configuration or semantics drift — the (shards, threads)
    sweep grid changed, the (kernel, qubits) pauli grid changed or
    a section disappeared, the default shard count changed, mmap
    availability flipped, the warm engine run recompiled anything,
    or warm hits stopped being served from the store. When the two
    artifacts report different hardware_concurrency (different
    machines), the machine-derived checks (grid, shard count, mmap)
    downgrade to warnings; warm-run semantics always fail hard.

Serve trajectories (BENCH_serve.json, "schema": "serve-v1", written
by bench/serve_stress) follow the same split: request latency
percentiles and throughput WARN-only, while the stress grid
drifting, any rejected/errored/verify-failed request, a warm phase
that recompiled anything, or server-side bad-frame counts FAIL hard.

Stream trajectories (BENCH_stream.json, "schema": "stream-v1",
written by bench/stream_bench) split the same way: ingest rate,
chunk throughput, and wall time WARN-only; the workload grid or
run configuration (window, instruction floor, quick mode) drifting,
any candidate chunk failing semantic verification, the per-workload
deterministic counts (generated/parsed instructions, blocks,
chunks) moving, or the candidate's peak RSS breaking its
window-proportional bound FAIL hard.

Job trajectories come in two schema versions: legacy files (no
"schema" key) and "bench-v2" files (which add the engine.histograms
percentile section). Both diff identically — the headline metrics
live in the same place — but the two artifacts must agree: mixing
schemas (or mixing a perf file with a job file) exits 2, since the
documents were produced by different builds of the bench harness.

Exit status: 0 = no regressions, 1 = at least one regression,
2 = bad invocation, unreadable/malformed artifact, or mismatched
schemas.
"""

import argparse
import json
import sys

# Metrics where *more* is *worse*, in report order.
METRICS = ("cnotCount", "totalGateCount", "depth", "swapCount")


def load_doc(path):
    """Parse one trajectory artifact, exiting 2 when unreadable."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_diff: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def load_jobs(path, doc):
    """Return {job key: stats dict} from one trajectory artifact.

    Display names may repeat within a sweep (e.g. table2 runs each
    molecule once per encoder under one name), so repeats are keyed
    by submission-order occurrence: "LiH/ph", "LiH/ph#2", ... Both
    artifacts of one bench binary number identically.
    """
    jobs = {}
    seen = {}
    for job in doc.get("jobs", []):
        name, stats = job.get("name"), job.get("stats")
        if name is None or stats is None:  # failed job
            continue
        if job.get("cancelled"):  # zeroed stats, not a measurement
            continue
        seen[name] = seen.get(name, 0) + 1
        key = name if seen[name] == 1 else f"{name}#{seen[name]}"
        jobs[key] = stats
    if not jobs:
        print(f"bench_diff: no comparable jobs in {path}",
              file=sys.stderr)
        sys.exit(2)
    return jobs


def sweep_grid(doc):
    """The (shards, threads) configurations of one perf sweep."""
    return {
        (row.get("shards"), row.get("threads"))
        for row in doc.get("cache", {}).get("sweeps", [])
    }


def kernel_rows(doc):
    """{(kernel, qubits): row} from the pauli_kernels section."""
    return {
        (row.get("kernel"), row.get("qubits")): row
        for row in doc.get("pauli_kernels", {}).get("rows", [])
    }


def diff_perf(base, cand, tolerance):
    """Diff two perf-v1 trajectories: timing warns, drift fails."""
    failures = []
    warnings = []
    slack = 1.0 + tolerance / 100.0

    # Shard count, the sweep grid, and mmap availability are derived
    # from the machine. On the *same* hardware a change means a code
    # or environment drift (fail); across different machines it is
    # expected (warn), like timing.
    base_hw = base.get("hardware_concurrency")
    cand_hw = cand.get("hardware_concurrency")
    same_machine = base_hw == cand_hw
    if not same_machine:
        warnings.append(
            f"hardware concurrency differs ({base_hw} vs {cand_hw}); "
            "machine-derived drift checks downgraded to warnings"
        )

    def drift(message):
        (failures if same_machine else warnings).append(message)

    # --- configuration / semantics drift -----------------------------
    base_grid, cand_grid = sweep_grid(base), sweep_grid(cand)
    if base_grid != cand_grid:
        drift(
            "cache sweep grid drifted: "
            f"baseline {sorted(base_grid)} vs "
            f"candidate {sorted(cand_grid)}"
        )
    base_shards = base.get("cache", {}).get("default_shard_count")
    cand_shards = cand.get("cache", {}).get("default_shard_count")
    if base_shards != cand_shards:
        drift(
            f"default shard count drifted: {base_shards} -> "
            f"{cand_shards}"
        )
    base_mmap = base.get("artifact_load", {}).get("mmap_enabled")
    cand_mmap = cand.get("artifact_load", {}).get("mmap_enabled")
    if base_mmap != cand_mmap:
        drift(
            f"mmap availability drifted: {base_mmap} -> {cand_mmap}"
        )
    # Warm-run semantics hold on any machine: always hard failures.
    warm = cand.get("engine", {}).get("warm", {})
    recompiled = warm.get("completed", 0)
    if recompiled != 0:
        failures.append(
            f"warm engine run recompiled {recompiled} job(s) "
            "(must be served entirely from the store)"
        )
    if warm.get("disk_hits", 0) == 0:
        failures.append("warm engine run had no disk hits")

    # --- timing: warnings only --------------------------------------
    cand_rows = {
        (r.get("shards"), r.get("threads")): r
        for r in cand.get("cache", {}).get("sweeps", [])
    }
    for row in base.get("cache", {}).get("sweeps", []):
        key = (row.get("shards"), row.get("threads"))
        other = cand_rows.get(key)
        if other is None:
            continue
        old, new = row.get("ops_per_sec", 0), other.get("ops_per_sec", 0)
        if old > 0 and new * slack < old:
            pct = 100.0 * (old - new) / old
            warnings.append(
                f"shards={key[0]} threads={key[1]}: throughput "
                f"{old / 1e6:.2f} -> {new / 1e6:.2f} Mops/s "
                f"(-{pct:.1f}%)"
            )
    for phase in ("cold", "warm", "buffered"):
        old = base.get("artifact_load", {}).get(phase, {}).get("avg_ns")
        new = cand.get("artifact_load", {}).get(phase, {}).get("avg_ns")
        if old and new and new > old * slack:
            pct = 100.0 * (new - old) / old
            warnings.append(
                f"{phase} artifact load {old:.0f} -> {new:.0f} ns "
                f"(+{pct:.1f}%)"
            )

    # --- pauli kernel trend: grid drifts fail, timing warns ----------
    # The (kernel, qubits) grid is code-derived, but older baselines
    # predate the section entirely, so a missing *baseline* section
    # is only a note; a candidate that *dropped* the section drifted.
    base_kernels, cand_kernels = kernel_rows(base), kernel_rows(cand)
    if base_kernels and not cand_kernels:
        drift("pauli_kernels section disappeared from the candidate")
    elif cand_kernels and not base_kernels:
        print(
            "note: baseline predates the pauli_kernels section; "
            "no kernel trend to compare"
        )
    elif base_kernels:
        if set(base_kernels) != set(cand_kernels):
            drift(
                "pauli kernel grid drifted: "
                f"baseline {sorted(base_kernels)} vs "
                f"candidate {sorted(cand_kernels)}"
            )
        for key in sorted(base_kernels.keys() & cand_kernels.keys()):
            kernel, qubits = key
            old_row, new_row = base_kernels[key], cand_kernels[key]
            old_ns = old_row.get("packed_ns")
            new_ns = new_row.get("packed_ns")
            if old_ns and new_ns and new_ns > old_ns * slack:
                pct = 100.0 * (new_ns - old_ns) / old_ns
                warnings.append(
                    f"{kernel}@{qubits}q: packed kernel "
                    f"{old_ns:.2f} -> {new_ns:.2f} ns (+{pct:.1f}%)"
                )
            old_sp = old_row.get("speedup")
            new_sp = new_row.get("speedup")
            if old_sp and new_sp and new_sp * slack < old_sp:
                pct = 100.0 * (old_sp - new_sp) / old_sp
                warnings.append(
                    f"{kernel}@{qubits}q: packed-vs-byte speedup "
                    f"{old_sp:.1f}x -> {new_sp:.1f}x (-{pct:.1f}%)"
                )

    # --- obs-plane overhead trend: timing warns, loss fails ----------
    # Same shape as pauli_kernels: baselines predating the section
    # get a note; a candidate that dropped it drifted.
    base_obs = base.get("obs_overhead", {})
    cand_obs = cand.get("obs_overhead", {})
    if base_obs and not cand_obs:
        drift("obs_overhead section disappeared from the candidate")
    elif cand_obs and not base_obs:
        print(
            "note: baseline predates the obs_overhead section; "
            "no obs trend to compare"
        )
    elif base_obs:
        obs_timings = (
            ("event_log_disabled_ns", "disarmed event log", "ns/op"),
            ("scrape_load_avg_us", "/metrics under load", "us"),
            ("scrape_idle_avg_us", "/metrics idle", "us"),
        )
        for key, label, unit in obs_timings:
            old, new = base_obs.get(key), cand_obs.get(key)
            if old and new and new > old * slack:
                pct = 100.0 * (new - old) / old
                warnings.append(
                    f"{label}: {old:.2f} -> {new:.2f} {unit} "
                    f"(+{pct:.1f}%)"
                )

    for message in warnings:
        print(f"perf warning (timing, not failing): {message}")
    if failures:
        print(f"PERF DRIFT ({len(failures)} failure(s)):")
        for message in failures:
            print(f"  {message}")
        return 1
    print(
        f"OK: perf trajectories consistent "
        f"({len(warnings)} timing warning(s), "
        f"tolerance {tolerance:g}%)"
    )
    return 0


def diff_serve(base, cand, tolerance):
    """Diff two serve-v1 trajectories: latency warns, drift fails.

    The stress grid (clients x jobs x programs) and the correctness
    counters are code-derived and must not move: any rejected
    request, transport error, verify failure, or warm-phase
    recompile in the *candidate* is a hard failure regardless of the
    baseline. Latency percentiles and throughput are machine- and
    load-dependent, so they only warn, like perf timings.
    """
    failures = []
    warnings = []
    slack = 1.0 + tolerance / 100.0

    base_cfg = base.get("config", {})
    cand_cfg = cand.get("config", {})
    grid_keys = (
        "clients",
        "jobs_per_client",
        "distinct_programs",
        "qubits",
        "verify",
    )
    base_grid = tuple(base_cfg.get(k) for k in grid_keys)
    cand_grid = tuple(cand_cfg.get(k) for k in grid_keys)
    if base_grid != cand_grid:
        failures.append(
            f"stress grid drifted: baseline {base_grid} vs "
            f"candidate {cand_grid}; regenerate with matching "
            "serve_stress arguments"
        )

    # --- correctness: candidate must be clean ------------------------
    for phase in ("cold", "warm"):
        p = cand.get(phase, {})
        for counter in ("rejected", "transport_errors", "verify_fail"):
            n = p.get(counter, 0)
            if n != 0:
                failures.append(
                    f"{phase} phase had {n} {counter.replace('_', ' ')}"
                )
    if cand.get("warm_recompiled"):
        failures.append(
            f"warm phase recompiled "
            f"{cand.get('warm', {}).get('compiles', '?')} program(s) "
            "(must be served entirely from the cache)"
        )
    bad_frames = cand.get("server", {}).get("bad_frames", 0)
    if bad_frames != 0:
        failures.append(
            f"server counted {bad_frames} bad frame(s) from the "
            "stress clients (codec drift?)"
        )

    # --- latency / throughput: warnings only -------------------------
    for phase in ("cold", "warm"):
        old_p, new_p = base.get(phase, {}), cand.get(phase, {})
        for pct_key in ("p50", "p99"):
            old = old_p.get("latency_ms", {}).get(pct_key)
            new = new_p.get("latency_ms", {}).get(pct_key)
            if old and new and new > old * slack:
                pct = 100.0 * (new - old) / old
                warnings.append(
                    f"{phase} {pct_key} latency {old:.2f} -> "
                    f"{new:.2f} ms (+{pct:.1f}%)"
                )
        old = old_p.get("throughput_rps")
        new = new_p.get("throughput_rps")
        if old and new and new * slack < old:
            pct = 100.0 * (old - new) / old
            warnings.append(
                f"{phase} throughput {old:.0f} -> {new:.0f} req/s "
                f"(-{pct:.1f}%)"
            )

    for message in warnings:
        print(f"serve warning (timing, not failing): {message}")
    if failures:
        print(f"SERVE DRIFT ({len(failures)} failure(s)):")
        for message in failures:
            print(f"  {message}")
        return 1
    print(
        f"OK: serve trajectories consistent "
        f"({len(warnings)} timing warning(s), "
        f"tolerance {tolerance:g}%)"
    )
    return 0


def diff_stream(base, cand, tolerance):
    """Diff two stream-v1 trajectories: rates warn, drift fails.

    Everything counted is deterministic given (workload grid, window,
    instruction floor, quick mode): the generators are seeded and the
    windowing is pure arithmetic, so instruction/block/chunk counts
    moving means the frontend or the windowing changed semantics, not
    the machine. Rates and wall time are machine-dependent and only
    warn. The candidate must also be internally clean: zero verify
    failures and peak RSS within its own window bound, regardless of
    what the baseline did.
    """
    failures = []
    warnings = []
    slack = 1.0 + tolerance / 100.0

    grid_ok = True
    cfg_keys = ("window", "instruction_floor", "quickMode")
    base_cfg = tuple(base.get(k) for k in cfg_keys)
    cand_cfg = tuple(cand.get(k) for k in cfg_keys)
    if base_cfg != cand_cfg:
        grid_ok = False
        failures.append(
            f"run configuration drifted: baseline {base_cfg} vs "
            f"candidate {cand_cfg} for (window, instruction_floor, "
            "quickMode); regenerate with matching settings"
        )

    def rows_by_name(doc):
        return {row.get("name"): row for row in doc.get("rows", [])}

    base_rows, cand_rows = rows_by_name(base), rows_by_name(cand)
    base_grid = {
        (r.get("name"), r.get("format"), r.get("qubits"))
        for r in base.get("rows", [])
    }
    cand_grid = {
        (r.get("name"), r.get("format"), r.get("qubits"))
        for r in cand.get("rows", [])
    }
    if base_grid != cand_grid:
        grid_ok = False
        failures.append(
            f"workload grid drifted: baseline {sorted(base_grid)} vs "
            f"candidate {sorted(cand_grid)}"
        )

    # --- candidate correctness: clean regardless of the baseline -----
    for name, row in sorted(cand_rows.items()):
        vf = row.get("verify_failures", 0)
        if vf != 0:
            failures.append(
                f"{name}: {vf} chunk(s) failed semantic verification"
            )
    if not cand.get("rss_within_bound", True):
        failures.append(
            f"peak RSS {cand.get('peak_rss_kb')} KiB exceeds the "
            f"window bound {cand.get('rss_bound_kb')} KiB — streaming "
            "memory is no longer O(window)"
        )

    # --- deterministic counts: must match exactly --------------------
    if grid_ok:  # counts are only comparable on a matching grid
        count_keys = (
            "generated_instructions",
            "instructions",
            "blocks",
            "chunks",
        )
        for name in sorted(base_rows.keys() & cand_rows.keys()):
            for key in count_keys:
                old = base_rows[name].get(key)
                new = cand_rows[name].get(key)
                if old is not None and new is not None and old != new:
                    failures.append(
                        f"{name}: {key} drifted {old} -> {new} "
                        "(deterministic given the grid and window)"
                    )

    # --- rates / wall time: warnings only ----------------------------
    rate_keys = (
        ("instructions_per_sec", "ingest rate", "instr/s"),
        ("bytes_per_sec", "byte rate", "B/s"),
        ("chunks_per_sec", "chunk throughput", "chunks/s"),
    )
    for name in sorted(base_rows.keys() & cand_rows.keys()):
        old_row, new_row = base_rows[name], cand_rows[name]
        for key, label, unit in rate_keys:
            old, new = old_row.get(key), new_row.get(key)
            if old and new and new * slack < old:
                pct = 100.0 * (old - new) / old
                warnings.append(
                    f"{name}: {label} {old:.0f} -> {new:.0f} {unit} "
                    f"(-{pct:.1f}%)"
                )
        old = old_row.get("total_seconds")
        new = new_row.get("total_seconds")
        if old and new and new > old * slack:
            pct = 100.0 * (new - old) / old
            warnings.append(
                f"{name}: end-to-end {old:.2f} -> {new:.2f} s "
                f"(+{pct:.1f}%)"
            )

    for message in warnings:
        print(f"stream warning (timing, not failing): {message}")
    if failures:
        print(f"STREAM DRIFT ({len(failures)} failure(s)):")
        for message in failures:
            print(f"  {message}")
        return 1
    print(
        f"OK: stream trajectories consistent "
        f"({len(warnings)} timing warning(s), "
        f"tolerance {tolerance:g}%)"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json artifacts for regressions."
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="PCT",
        help="allowed increase in percent before a metric counts as "
        "a regression (default: 0, any increase)",
    )
    args = parser.parse_args()
    if args.tolerance < 0:
        parser.error("--tolerance must be >= 0")

    base_doc = load_doc(args.baseline)
    cand_doc = load_doc(args.candidate)

    # Schema gate. Three document versions exist: legacy job
    # trajectories (no "schema" key), "bench-v2" job trajectories
    # (added the engine.histograms section), and "perf-v1" perf
    # trajectories. Diffing across versions would silently compare
    # different measurements, so mixed schemas are an invocation
    # error (exit 2), not a regression.
    base_schema = base_doc.get("schema")
    cand_schema = cand_doc.get("schema")
    if base_schema != cand_schema:
        print(
            "bench_diff: schema mismatch: "
            f"{args.baseline} is {base_schema or 'legacy (pre-v2)'}, "
            f"{args.candidate} is {cand_schema or 'legacy (pre-v2)'}; "
            "regenerate both artifacts with the same build",
            file=sys.stderr,
        )
        return 2
    if base_schema not in (None, "bench-v2", "perf-v1", "serve-v1",
                           "stream-v1"):
        print(
            f"bench_diff: unknown schema '{base_schema}' "
            "(this script understands legacy, bench-v2, perf-v1, "
            "serve-v1, and stream-v1)",
            file=sys.stderr,
        )
        return 2
    if base_schema == "perf-v1":
        return diff_perf(base_doc, cand_doc, args.tolerance)
    if base_schema == "serve-v1":
        return diff_serve(base_doc, cand_doc, args.tolerance)
    if base_schema == "stream-v1":
        return diff_stream(base_doc, cand_doc, args.tolerance)

    base = load_jobs(args.baseline, base_doc)
    cand = load_jobs(args.candidate, cand_doc)

    regressions = []
    improvements = 0
    for name in sorted(base.keys() & cand.keys()):
        for metric in METRICS:
            old = base[name].get(metric)
            new = cand[name].get(metric)
            if old is None or new is None:
                continue
            if new > old * (1.0 + args.tolerance / 100.0):
                pct = 100.0 * (new - old) / old if old else float("inf")
                regressions.append((name, metric, old, new, pct))
            elif new < old:
                improvements += 1

    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())
    for name in only_base:
        print(f"note: job '{name}' only in {args.baseline}")
    for name in only_cand:
        print(f"note: job '{name}' only in {args.candidate}")

    common = len(base.keys() & cand.keys())
    if regressions:
        print(
            f"REGRESSIONS ({len(regressions)} metric(s) across "
            f"{len({r[0] for r in regressions})} job(s), "
            f"tolerance {args.tolerance:g}%):"
        )
        for name, metric, old, new, pct in regressions:
            print(f"  {name}: {metric} {old} -> {new} (+{pct:.1f}%)")
        print(
            f"compared {common} common job(s); "
            f"{improvements} metric(s) improved"
        )
        return 1

    print(
        f"OK: no regressions across {common} common job(s) "
        f"({improvements} metric(s) improved, "
        f"tolerance {args.tolerance:g}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
