#!/usr/bin/env python3
"""Fuzzing driver for the streaming frontend parsers.

Runs the seeded C++ harness (tests/test_frontend_fuzz.cc) across a
range of base seeds. Each seed generates fresh random OpenQASM 2 and
Pauli-list programs, mutates them (byte flips, splices, deletions,
truncations), and adds uniform garbage; the harness enforces the
total-decode contract — every input parses clean or stops with one
typed, positioned error, deterministically, with no crash or hang.

    python3 scripts/fuzz_frontend.py                   # 10 seeds x 25 cases
    python3 scripts/fuzz_frontend.py --seeds 200 --cases 50
    python3 scripts/fuzz_frontend.py --binary build/test_frontend_fuzz

Exits nonzero if any seed breaks the contract; the failing seed is
printed so the run reproduces with
    TETRIS_FUZZ_SEED=<seed> TETRIS_FUZZ_CASES=<cases> build/test_frontend_fuzz
"""

import argparse
import os
import subprocess
import sys
import time


def parse_args():
    p = argparse.ArgumentParser(
        description="sweep the frontend fuzz harness over seeds")
    p.add_argument("--binary", default="build/test_frontend_fuzz",
                   help="path to the test_frontend_fuzz gtest binary")
    p.add_argument("--seeds", type=int, default=10,
                   help="number of base seeds to run (default 10)")
    p.add_argument("--start", type=int, default=1,
                   help="first seed (default 1)")
    p.add_argument("--cases", type=int, default=25,
                   help="cases per suite per seed (default 25)")
    p.add_argument("--gtest-filter", default="FrontendFuzz.*",
                   help="forwarded to --gtest_filter")
    p.add_argument("--timeout", type=int, default=120,
                   help="per-seed timeout in seconds: a hang IS a "
                        "contract violation (default 120)")
    return p.parse_args()


def main():
    args = parse_args()
    if not os.path.exists(args.binary):
        sys.exit(f"fuzz_frontend: binary not found: {args.binary} "
                 "(build first: cmake --build build -j)")

    failures = []
    t0 = time.monotonic()
    for seed in range(args.start, args.start + args.seeds):
        env = dict(os.environ,
                   TETRIS_FUZZ_SEED=str(seed),
                   TETRIS_FUZZ_CASES=str(args.cases))
        try:
            proc = subprocess.run(
                [args.binary, f"--gtest_filter={args.gtest_filter}"],
                env=env, capture_output=True, text=True,
                timeout=args.timeout)
        except subprocess.TimeoutExpired:
            failures.append(seed)
            print(f"seed {seed:>6}: HANG (>{args.timeout}s) — "
                  "total-decode violation", file=sys.stderr)
            continue
        if proc.returncode == 0:
            print(f"seed {seed:>6}: ok")
            continue
        failures.append(seed)
        print(f"seed {seed:>6}: FAILED", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)

    dt = time.monotonic() - t0
    print(f"fuzz_frontend: {args.seeds} seed(s) x {args.cases} "
          f"case(s) in {dt:.1f}s")
    if failures:
        print("fuzz_frontend: FAILING SEEDS: "
              + ", ".join(map(str, failures)), file=sys.stderr)
        print("reproduce with: TETRIS_FUZZ_SEED=<seed> "
              f"TETRIS_FUZZ_CASES={args.cases} {args.binary}",
              file=sys.stderr)
        return 1
    print("fuzz_frontend: no contract violation found")
    return 0


if __name__ == "__main__":
    sys.exit(main())
