#!/usr/bin/env python3
"""Scrape and validate a live engine's /metrics endpoint.

Usage:
    obs_scrape.py scrape --port PORT [--out FILE] [--timeout SEC]
                  [--wait-idle]
    obs_scrape.py check SCRAPE.prom [--bench BENCH.json]

`scrape` polls http://127.0.0.1:PORT/metrics until a scrape passes
the strict exposition validation below (retrying while the serving
process is still starting up), then writes the body to --out (default
stdout). With --wait-idle it keeps polling until a scrape shows the
sweep finished and the engine idle — tetris_jobs_finished equal to a
nonzero tetris_jobs_submitted, nothing queued or in flight — and
saves *that* scrape, which is then bucket-for-bucket comparable to
the BENCH json the process writes at exit (arm the server with
TETRIS_OBS_LINGER_MS to hold it open long enough). Counters must be
monotone non-decreasing across the polls; any counter moving
backwards fails the run.

`check` re-validates a saved scrape offline and, with --bench,
asserts the scrape's tetris_job_latency_ns histogram agrees with the
BENCH json's job.latency_ns histogram bucket for bucket (the two are
rendered from the same Histogram, so an idle-state scrape must match
exactly).

Validation (both modes) is the same strict Prometheus text
exposition 0.0.4 contract the C++ test suite enforces:
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names match
    [a-zA-Z_][a-zA-Z0-9_]*, label values are quoted with only
    \\\\, \\", and \\n escapes;
  - every sample belongs to a # TYPE'd family;
  - histogram buckets are cumulative, in ascending le order, end in
    le="+Inf", and _count equals the +Inf bucket.

Exit status: 0 = scrape validated (and matched --bench, if given),
1 = validation/comparison failure, 2 = cannot reach the server or
bad invocation.
"""

import argparse
import json
import math
import re
import sys
import time
import urllib.error
import urllib.request

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$"
)
LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"'
)


def fail(message):
    print(f"obs_scrape: {message}", file=sys.stderr)
    sys.exit(1)


def parse_exposition(body):
    """Strict parse -> (types dict, samples list); raises ValueError."""
    types = {}
    samples = []  # (name, labels dict, value)
    for lineno, line in enumerate(body.splitlines(), 1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"line {lineno}: malformed TYPE")
                family, kind = parts[2], parts[3]
                if not NAME_RE.match(family):
                    raise ValueError(
                        f"line {lineno}: bad family '{family}'")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValueError(
                        f"line {lineno}: unknown kind '{kind}'")
                if family in types:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE {family}")
                types[family] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: unparsable sample: "
                             f"{line!r}")
        name, label_block, value_str = m.groups()
        labels = {}
        if label_block:
            consumed = 0
            for pm in LABEL_PAIR_RE.finditer(label_block):
                labels[pm.group(1)] = pm.group(2)
                consumed += len(pm.group(0)) + 1  # + separator
            # Reject junk the pair regex silently skipped.
            stripped = label_block[1:-1]
            rebuilt = ",".join(
                f'{k}="{v}"' for k, v in labels.items()
            )
            if len(stripped) != len(rebuilt):
                raise ValueError(
                    f"line {lineno}: malformed label block "
                    f"{label_block!r}")
        if value_str == "+Inf":
            value = math.inf
        else:
            try:
                value = float(value_str)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad value {value_str!r}")
        samples.append((name, labels, value))
    if not samples:
        raise ValueError("no samples")
    return types, samples


def family_of(name, types):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return name


def histogram_buckets(samples, family):
    """[(le, cumulative)] for one histogram family, in order."""
    out = []
    for name, labels, value in samples:
        if name == family + "_bucket":
            le = labels.get("le")
            if le is None:
                raise ValueError(f"{family}: bucket without le")
            out.append((math.inf if le == "+Inf" else float(le),
                        value))
    return out


def validate(body):
    """Full contract check; returns (types, samples) or raises."""
    types, samples = parse_exposition(body)
    for name, _, _ in samples:
        if family_of(name, types) not in types:
            raise ValueError(f"sample without TYPE: {name}")
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = histogram_buckets(samples, family)
        if not buckets:
            raise ValueError(f"{family}: no buckets")
        if buckets[-1][0] != math.inf:
            raise ValueError(f"{family}: last bucket is not +Inf")
        for (le_a, cum_a), (le_b, cum_b) in zip(buckets, buckets[1:]):
            if le_b <= le_a:
                raise ValueError(f"{family}: le not ascending")
            if cum_b < cum_a:
                raise ValueError(f"{family}: cumulative decreased")
        counts = [v for n, _, v in samples if n == family + "_count"]
        if counts != [buckets[-1][1]]:
            raise ValueError(f"{family}: _count != +Inf bucket")
        if not any(n == family + "_sum" for n, _, _ in samples):
            raise ValueError(f"{family}: missing _sum")
    return types, samples


def sample_value(samples, name):
    for n, labels, value in samples:
        if n == name and not labels:
            return value
    return None


def counter_snapshot(types, samples):
    snap = {}
    for name, labels, value in samples:
        if types.get(family_of(name, types)) == "counter":
            key = (name, tuple(sorted(labels.items())))
            snap[key] = value
    return snap


def cmd_scrape(args):
    url = f"http://127.0.0.1:{args.port}/metrics"
    deadline = time.monotonic() + args.timeout
    last_counters = None
    body = None
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=5) as resp:
                candidate = resp.read().decode("utf-8")
        except (urllib.error.URLError, OSError, TimeoutError):
            time.sleep(0.05)
            continue
        try:
            types, samples = validate(candidate)
        except ValueError as exc:
            fail(f"invalid exposition from {url}: {exc}")
        counters = counter_snapshot(types, samples)
        if last_counters is not None:
            for key, old in last_counters.items():
                new = counters.get(key)
                if new is not None and new < old:
                    fail(f"counter went backwards across scrapes: "
                         f"{key[0]}{dict(key[1])} {old} -> {new}")
        last_counters = counters
        body = candidate
        if not args.wait_idle:
            break
        submitted = sample_value(samples, "tetris_jobs_submitted")
        finished = sample_value(samples, "tetris_jobs_finished")
        queued = sample_value(samples, "tetris_jobs_queued")
        in_flight = sample_value(samples, "tetris_jobs_in_flight")
        if (submitted and submitted > 0 and finished == submitted
                and queued == 0 and in_flight == 0):
            break
        time.sleep(0.02)
    else:
        what = "idle-state scrape" if args.wait_idle else "scrape"
        print(f"obs_scrape: no valid {what} from {url} within "
              f"{args.timeout:g}s", file=sys.stderr)
        sys.exit(2)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(body)
        print(f"obs_scrape: wrote {len(body)} bytes to {args.out}")
    else:
        sys.stdout.write(body)
    return 0


def cmd_check(args):
    try:
        with open(args.scrape, encoding="utf-8") as f:
            body = f.read()
    except OSError as exc:
        print(f"obs_scrape: cannot read {args.scrape}: {exc}",
              file=sys.stderr)
        sys.exit(2)
    try:
        types, samples = validate(body)
    except ValueError as exc:
        fail(f"{args.scrape}: {exc}")
    print(f"obs_scrape: {args.scrape} validates "
          f"({len(samples)} samples, {len(types)} families)")

    if not args.bench:
        return 0
    try:
        with open(args.bench, encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs_scrape: cannot read {args.bench}: {exc}",
              file=sys.stderr)
        sys.exit(2)
    hist = (bench.get("engine", {}).get("histograms", {})
            .get("job.latency_ns"))
    if hist is None:
        print(f"obs_scrape: {args.bench} has no "
              "engine.histograms['job.latency_ns'] section",
              file=sys.stderr)
        sys.exit(2)

    # Rebuild the cumulative series from the BENCH json's sparse
    # [bucket_index, count] pairs, exactly as the exposition renders
    # it: finite le = 2^i - 1 per nonzero bucket below the overflow
    # bucket (index 63), which folds into +Inf only.
    expected = []
    cum = 0
    total = 0
    for index, count in hist.get("buckets", []):
        total += count
        if index >= 63:
            continue
        cum += count
        expected.append((float(2 ** index - 1), float(cum)))
    expected.append((math.inf, float(total)))

    actual = histogram_buckets(samples, "tetris_job_latency_ns")
    if actual != expected:
        fail(
            "job.latency_ns histogram mismatch between "
            f"{args.scrape} and {args.bench}:\n"
            f"  scrape: {actual}\n  bench:  {expected}"
        )
    print(f"obs_scrape: job.latency_ns agrees with {args.bench} "
          f"bucket for bucket ({len(actual)} buckets, "
          f"{total:g} records)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Scrape and validate a live /metrics endpoint."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scrape = sub.add_parser("scrape", help="poll a live endpoint")
    scrape.add_argument("--port", type=int, required=True)
    scrape.add_argument("--out", metavar="FILE",
                        help="write the scrape body here "
                        "(default: stdout)")
    scrape.add_argument("--timeout", type=float, default=60.0,
                        metavar="SEC")
    scrape.add_argument("--wait-idle", action="store_true",
                        help="poll until the engine reports the sweep "
                        "finished and nothing in flight")

    check = sub.add_parser("check", help="validate a saved scrape")
    check.add_argument("scrape")
    check.add_argument("--bench", metavar="BENCH.json",
                       help="assert the job.latency_ns histogram "
                       "matches this BENCH json bucket for bucket")

    args = parser.parse_args()
    if args.command == "scrape":
        return cmd_scrape(args)
    return cmd_check(args)


if __name__ == "__main__":
    sys.exit(main())
