#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON file written via TETRIS_TRACE.

Usage:
    trace_report.py TRACE.json [--top N] [--json]

Reads the {"traceEvents": [...]} document the engine's span tracer
produces (engine/trace.hh) — plain or gzip-compressed (detected by
the gzip magic bytes, so archived `trace.json.gz` files work without
an extension convention), validates it, and prints:

  - per-stage totals: accumulated wall time per span name
    (queue_wait, compile, schedule, synthesis, peephole, verify,
    disk_read, disk_write, job), with event counts and averages;
  - the top N slowest "job" spans (default 10), with the owning
    job's display name from args.job;
  - the queue-wait share: total queue_wait time relative to total
    queue_wait + job time — a high share means submissions spend
    their life waiting for a worker, i.e. the sweep wants more
    threads (or has a head-of-line straggler).

With --json the same report is emitted as one machine-readable JSON
document on stdout instead of the human tables: span counts/totals
per stage, the top-N slowest jobs, thread count, and the queue-wait
share. Tooling (bench dashboards, CI trend jobs) should prefer this
over scraping the table output.

Validation is strict so CI can trust a zero exit: the document must
be valid JSON with a traceEvents list, and every complete event
("ph": "X") must carry a string name and numeric ts/dur/tid.

Exit status: 0 = report printed, 2 = unreadable, malformed, or
empty trace.
"""

import argparse
import gzip
import json
import os
import sys


def fail(message):
    print(f"trace_report: {message}", file=sys.stderr)
    sys.exit(2)


def read_text(path):
    """The file's text, transparently gunzipping by magic bytes."""
    with open(path, "rb") as f:
        head = f.read(2)
        f.seek(0)
        if head == b"\x1f\x8b":
            with gzip.open(f) as gz:
                return gz.read().decode("utf-8")
        return f.read().decode("utf-8")


def load_events(path):
    """Parse and validate the trace; returns the complete events."""
    try:
        doc = json.loads(read_text(path))
    except (OSError, UnicodeDecodeError, EOFError,
            json.JSONDecodeError) as exc:
        fail(f"cannot read {path}: {exc}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a trace-event document "
             "(missing 'traceEvents')")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' is not a list")

    complete = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if event.get("ph") != "X":
            continue  # metadata/counter events are fine, just skipped
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{path}: traceEvents[{i}] has no span name")
        for field in ("ts", "dur", "tid"):
            if not isinstance(event.get(field), (int, float)):
                fail(f"{path}: traceEvents[{i}] ('{name}') has "
                     f"non-numeric '{field}'")
        if event["dur"] < 0:
            fail(f"{path}: traceEvents[{i}] ('{name}') has "
                 "negative duration")
        complete.append(event)
    if not complete:
        fail(f"{path}: no complete ('ph': 'X') span events")
    return complete


def fmt_ms(us):
    return f"{us / 1e3:10.3f} ms"


def main():
    parser = argparse.ArgumentParser(
        description="Summarize a TETRIS_TRACE span file."
    )
    parser.add_argument("trace")
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="how many of the slowest jobs to list (default: 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as one JSON document instead of tables",
    )
    args = parser.parse_args()
    if args.top < 1:
        parser.error("--top must be >= 1")

    events = load_events(args.trace)

    # --- per-stage totals -------------------------------------------
    totals = {}  # name -> [count, total_us]
    for event in events:
        entry = totals.setdefault(event["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += event["dur"]
    threads = len({event["tid"] for event in events})

    jobs = sorted(
        (e for e in events if e["name"] == "job"),
        key=lambda e: -e["dur"],
    )
    queue_us = totals.get("queue_wait", [0, 0.0])[1]
    job_us = totals.get("job", [0, 0.0])[1]

    if args.json:
        report = {
            "schema": "trace-report-v1",
            "trace": args.trace,
            "spans": len(events),
            "threads": threads,
            "stages": {
                name: {
                    "count": count,
                    "total_us": total_us,
                    "avg_us": total_us / count,
                }
                for name, (count, total_us) in sorted(totals.items())
            },
            "slowest_jobs": [
                {
                    "job": e.get("args", {}).get("job", "<unnamed>"),
                    "dur_us": e["dur"],
                }
                for e in jobs[: args.top]
            ],
        }
        if queue_us + job_us > 0:
            report["queue_wait_share"] = queue_us / (queue_us + job_us)
        json.dump(report, sys.stdout, indent=2)
        print()
        return 0

    print(f"{args.trace}: {len(events)} spans across "
          f"{threads} thread(s)")
    print()
    print(f"{'span':<12} {'count':>7} {'total':>13} {'avg':>13}")
    for name, (count, total_us) in sorted(
        totals.items(), key=lambda kv: -kv[1][1]
    ):
        print(f"{name:<12} {count:>7} {fmt_ms(total_us)} "
              f"{fmt_ms(total_us / count)}")

    # --- slowest jobs -----------------------------------------------
    if jobs:
        print()
        print(f"top {min(args.top, len(jobs))} slowest jobs:")
        for event in jobs[: args.top]:
            label = event.get("args", {}).get("job", "<unnamed>")
            print(f"  {fmt_ms(event['dur'])}  {label}")

    # --- queue-wait share -------------------------------------------
    if queue_us + job_us > 0:
        share = 100.0 * queue_us / (queue_us + job_us)
        print()
        print(f"queue-wait share: {share:.1f}% of "
              f"{fmt_ms(queue_us + job_us).strip()} "
              "(queue_wait / (queue_wait + job))")

    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
