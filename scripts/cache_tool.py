#!/usr/bin/env python3
"""Operate on a Tetris persistent compile-artifact store.

Usage:
    cache_tool.py stats [--dir DIR]
    cache_tool.py trim  [--dir DIR] [--max-bytes N]
    cache_tool.py clear [--dir DIR]

The store layout is <dir>/<key[0:2]>/<key>.tca (see
src/engine/disk_cache.hh). --dir defaults to $TETRIS_CACHE_DIR;
trim's --max-bytes defaults to $TETRIS_CACHE_MAX_BYTES. trim evicts
oldest-mtime entries first (the C++ side refreshes mtime on every
cache hit, so this is LRU), matching DiskCache::trim exactly.

Exit status: 0 on success, 2 on bad invocation or missing store.
"""

import argparse
import os
import sys
import time

MAGIC = b"TCA1"


def artifact_files(root):
    """Yield (path, size, mtime) for every .tca entry in the store."""
    for shard in sorted(os.listdir(root)):
        shard_path = os.path.join(root, shard)
        if not os.path.isdir(shard_path):
            continue
        for name in sorted(os.listdir(shard_path)):
            if not name.endswith(".tca"):
                continue
            path = os.path.join(shard_path, name)
            try:
                st = os.stat(path)
            except OSError:
                continue  # concurrently evicted
            yield path, st.st_size, st.st_mtime


def human(n):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024.0


def cmd_stats(root):
    entries = list(artifact_files(root))
    total = sum(size for _, size, _ in entries)
    valid = 0
    for path, _, _ in entries:
        try:
            with open(path, "rb") as f:
                valid += f.read(4) == MAGIC
        except OSError:
            pass
    print(f"store      : {root}")
    print(f"entries    : {len(entries)} ({valid} with valid magic)")
    print(f"bytes      : {total} ({human(total)})")
    if entries:
        now = time.time()
        ages = [now - mtime for _, _, mtime in entries]
        print(f"oldest     : {max(ages) / 3600.0:.1f} h since last use")
        print(f"newest     : {min(ages) / 3600.0:.1f} h since last use")
    return 0


def cmd_trim(root, max_bytes):
    if max_bytes is None:
        print(
            "cache_tool: trim needs --max-bytes or "
            "TETRIS_CACHE_MAX_BYTES",
            file=sys.stderr,
        )
        sys.exit(2)
    entries = sorted(artifact_files(root), key=lambda e: e[2])  # mtime
    total = sum(size for _, size, _ in entries)
    removed = freed = 0
    for path, size, _ in entries:
        if total <= max_bytes:
            break
        try:
            os.remove(path)
        except OSError as exc:
            print(f"warn: cannot remove {path}: {exc}", file=sys.stderr)
            continue
        total -= size
        freed += size
        removed += 1
    print(
        f"trimmed {removed} entr{'y' if removed == 1 else 'ies'} "
        f"({human(freed)}), {total} bytes retained "
        f"(budget {max_bytes})"
    )
    return 0


def cmd_clear(root):
    removed = 0
    for path, _, _ in artifact_files(root):
        try:
            os.remove(path)
            removed += 1
        except OSError as exc:
            print(f"warn: cannot remove {path}: {exc}", file=sys.stderr)
    # Drop empty shard directories; leave the root itself.
    for shard in os.listdir(root):
        shard_path = os.path.join(root, shard)
        if os.path.isdir(shard_path) and not os.listdir(shard_path):
            os.rmdir(shard_path)
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Inspect, trim, or clear a Tetris artifact store."
    )
    parser.add_argument("mode", choices=("stats", "trim", "clear"))
    parser.add_argument(
        "--dir",
        default=os.environ.get("TETRIS_CACHE_DIR"),
        help="store root (default: $TETRIS_CACHE_DIR)",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="trim budget in bytes "
        "(default: $TETRIS_CACHE_MAX_BYTES)",
    )
    args = parser.parse_args()

    if not args.dir:
        parser.error("no store: pass --dir or set TETRIS_CACHE_DIR")
    if not os.path.isdir(args.dir):
        print(f"cache_tool: no such cache directory: {args.dir}",
              file=sys.stderr)
        sys.exit(2)

    max_bytes = args.max_bytes
    if max_bytes is None:
        env = os.environ.get("TETRIS_CACHE_MAX_BYTES", "")
        if env.strip().isdigit():
            max_bytes = int(env)
    if max_bytes is not None and max_bytes < 0:
        parser.error("--max-bytes must be >= 0")

    if args.mode == "stats":
        return cmd_stats(args.dir)
    if args.mode == "trim":
        return cmd_trim(args.dir, max_bytes)
    return cmd_clear(args.dir)


if __name__ == "__main__":
    sys.exit(main())
