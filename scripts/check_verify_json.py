#!/usr/bin/env python3
"""Assert the "verify" object of BENCH_*.json trajectories is clean.

Shared by scripts/smoke.sh and the CI verify-and-fuzz job so both
enforce the same contract: the verification pass was enabled, it
checked at least one job, and no job failed semantically.

    python3 scripts/check_verify_json.py build/BENCH_table2.json [...]
"""

import json
import sys


def check(path):
    with open(path) as f:
        doc = json.load(f)
    v = doc.get("verify")
    assert v is not None, f"{path}: no 'verify' object"
    assert v["enabled"], f"{path}: verify pass not enabled"
    assert v["fail"] == 0, f"{path}: {v['fail']} semantic mismatch(es)"
    assert v["pass"] > 0, f"{path}: verification pass checked no jobs"
    print(f"{path}: {v['pass']} pass, {v['skipped']} skipped, 0 fail")


def main(argv):
    if len(argv) < 2:
        sys.exit("usage: check_verify_json.py BENCH_*.json [...]")
    for path in argv[1:]:
        check(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
