#!/usr/bin/env python3
"""Differential-fuzzing driver for the semantic equivalence verifier.

Runs the seeded C++ harness (tests/test_verify_fuzz.cc) across a
range of base seeds. Each seed generates fresh random Pauli-block
programs and devices, compiles them through every registered
pipeline, self-verifies each result with both checkers, and
cross-checks pipelines pairwise on order-free programs.

    python3 scripts/fuzz_verify.py                    # 10 seeds x 4 cases
    python3 scripts/fuzz_verify.py --seeds 100 --cases 8
    python3 scripts/fuzz_verify.py --binary build/test_verify_fuzz

Exits nonzero if any seed finds a semantic divergence; the failing
seed is printed so the run reproduces with
    TETRIS_FUZZ_SEED=<seed> TETRIS_FUZZ_CASES=<cases> build/test_verify_fuzz
"""

import argparse
import os
import subprocess
import sys
import time


def parse_args():
    p = argparse.ArgumentParser(
        description="sweep the differential fuzz harness over seeds")
    p.add_argument("--binary", default="build/test_verify_fuzz",
                   help="path to the test_verify_fuzz gtest binary")
    p.add_argument("--seeds", type=int, default=10,
                   help="number of base seeds to run (default 10)")
    p.add_argument("--start", type=int, default=1,
                   help="first seed (default 1)")
    p.add_argument("--cases", type=int, default=4,
                   help="programs per suite per seed (default 4)")
    p.add_argument("--gtest-filter", default="DifferentialFuzz.*",
                   help="forwarded to --gtest_filter")
    return p.parse_args()


def main():
    args = parse_args()
    if not os.path.exists(args.binary):
        sys.exit(f"fuzz_verify: binary not found: {args.binary} "
                 "(build first: cmake --build build -j)")

    failures = []
    t0 = time.monotonic()
    for seed in range(args.start, args.start + args.seeds):
        env = dict(os.environ,
                   TETRIS_FUZZ_SEED=str(seed),
                   TETRIS_FUZZ_CASES=str(args.cases))
        proc = subprocess.run(
            [args.binary, f"--gtest_filter={args.gtest_filter}"],
            env=env, capture_output=True, text=True)
        if proc.returncode == 0:
            print(f"seed {seed:>6}: ok")
            continue
        failures.append(seed)
        print(f"seed {seed:>6}: FAILED", file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        print(proc.stderr, file=sys.stderr)

    dt = time.monotonic() - t0
    total = args.seeds * args.cases
    print(f"fuzz_verify: {args.seeds} seed(s), ~{total} program(s) "
          f"per suite in {dt:.1f}s")
    if failures:
        print("fuzz_verify: FAILING SEEDS: "
              + ", ".join(map(str, failures)), file=sys.stderr)
        print("reproduce with: TETRIS_FUZZ_SEED=<seed> "
              f"TETRIS_FUZZ_CASES={args.cases} {args.binary}",
              file=sys.stderr)
        return 1
    print("fuzz_verify: no semantic divergence found")
    return 0


if __name__ == "__main__":
    sys.exit(main())
