/**
 * @file
 * Command-line compiler driver: compile a named workload with a
 * chosen compiler and backend, print the paper's metrics, and
 * optionally export the compiled circuit as OpenQASM 2.0 -- the
 * "downstream user" entry point of the library.
 *
 * Usage:
 *   compile_cli --workload LiH|BeH2|...|ucc-20|qaoa-rand-16
 *               [--encoder jw|bk] [--backend ithaca|sycamore]
 *               [--compiler tetris|ph|max|tket|pcoast]
 *               [--swap-weight W] [--lookahead K] [--no-bridging]
 *               [--qasm out.qasm]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "circuit/qasm.hh"
#include "core/compiler.hh"
#include "core/qaoa_pass.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"

namespace
{

using namespace tetris;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: compile_cli --workload <name> [--encoder jw|bk]"
                 " [--backend ithaca|sycamore] [--compiler tetris|ph|"
                 "max|tket|pcoast] [--swap-weight W] [--lookahead K]"
                 " [--no-bridging] [--qasm FILE]\n");
    std::exit(2);
}

std::vector<PauliBlock>
loadWorkload(const std::string &name, const std::string &encoder,
             bool &is_qaoa)
{
    is_qaoa = false;
    if (name.rfind("ucc-", 0) == 0) {
        int n = std::atoi(name.c_str() + 4);
        return buildSyntheticUcc(n, 1000 + n);
    }
    if (name.rfind("qaoa-", 0) == 0) {
        is_qaoa = true;
        for (const auto &spec : qaoaBenchmarks()) {
            std::string key = spec.name;
            for (auto &c : key)
                c = static_cast<char>(std::tolower(c));
            if ("qaoa-" + key == name)
                return buildQaoaCostBlocks(buildQaoaGraph(spec, 1), 0.35);
        }
        fatal("unknown QAOA workload '", name, "'");
    }
    return buildMolecule(moleculeByName(name), encoder);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tetris;

    std::string workload, encoder = "jw", backend = "ithaca";
    std::string compiler = "tetris", qasm_path;
    TetrisOptions opts;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage();
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload"))
            workload = need("--workload");
        else if (!std::strcmp(argv[i], "--encoder"))
            encoder = need("--encoder");
        else if (!std::strcmp(argv[i], "--backend"))
            backend = need("--backend");
        else if (!std::strcmp(argv[i], "--compiler"))
            compiler = need("--compiler");
        else if (!std::strcmp(argv[i], "--swap-weight"))
            opts.synthesis.swapWeight = std::atof(need("--swap-weight"));
        else if (!std::strcmp(argv[i], "--lookahead"))
            opts.lookaheadK = std::atoi(need("--lookahead"));
        else if (!std::strcmp(argv[i], "--no-bridging"))
            opts.synthesis.enableBridging = false;
        else if (!std::strcmp(argv[i], "--qasm"))
            qasm_path = need("--qasm");
        else
            usage();
    }
    if (workload.empty())
        usage();

    bool is_qaoa = false;
    auto blocks = loadWorkload(workload, encoder, is_qaoa);
    CouplingGraph hw =
        backend == "sycamore" ? googleSycamore64() : ibmIthaca65();

    CompileResult result;
    if (compiler == "tetris") {
        if (is_qaoa) {
            QaoaPassOptions qopts;
            qopts.enableBridging = opts.synthesis.enableBridging;
            result = compileQaoaTetris(blocks, hw, qopts);
        } else {
            result = compileTetris(blocks, hw, opts);
        }
    } else if (compiler == "ph") {
        result = compilePaulihedral(blocks, hw);
    } else if (compiler == "max") {
        result = compileMaxCancel(blocks, hw);
    } else if (compiler == "tket") {
        result = compileTketProxy(blocks, hw);
    } else if (compiler == "pcoast") {
        result = compilePcoastProxy(blocks, hw);
    } else {
        usage();
    }

    std::printf("workload   : %s (%zu blocks, %zu strings)\n",
                workload.c_str(), blocks.size(), totalStrings(blocks));
    std::printf("backend    : %s\n", hw.name().c_str());
    std::printf("compiler   : %s\n", compiler.c_str());
    std::printf("CNOT       : %zu (logical %zu + swap %zu)\n",
                result.stats.cnotCount, result.stats.logicalCnots,
                result.stats.swapCnots);
    std::printf("1Q gates   : %zu\n", result.stats.oneQubitCount);
    std::printf("depth      : %zu\n", result.stats.depth);
    std::printf("duration   : %.0f dt\n", result.stats.durationDt);
    std::printf("cancel     : %.1f%%\n",
                100.0 * result.stats.cancelRatio);
    std::printf("compile    : %.3f s\n", result.stats.compileSeconds);

    if (!qasm_path.empty()) {
        if (!writeQasm(result.circuit, qasm_path))
            fatal("cannot write '", qasm_path, "'");
        std::printf("qasm       : %s (%zu gates)\n", qasm_path.c_str(),
                    result.circuit.size());
    }
    return 0;
}
