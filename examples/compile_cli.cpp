/**
 * @file
 * Command-line compiler driver: compile a named workload with any
 * registered pipeline and backend, print the paper's metrics, and
 * optionally export the compiled circuit as OpenQASM 2.0 -- the
 * "downstream user" entry point of the library. The job runs through
 * the batch engine (Engine::compileAll), so it exercises the same
 * registry dispatch and compile cache as the bench sweeps.
 *
 * Usage:
 *   compile_cli --workload LiH|BeH2|...|ucc-20|qaoa-rand-16
 *               [--encoder jw|bk] [--backend ithaca|sycamore]
 *               [--compiler <registry id or alias>]
 *               [--swap-weight W] [--lookahead K] [--no-bridging]
 *               [--qasm out.qasm]
 *
 * --compiler takes any PipelineRegistry id (tetris, paulihedral,
 * tket-o2, tket-o3, pcoast, naive, max-cancel, qaoa-2qan,
 * qaoa-bridge) plus the legacy aliases ph, max, tket. "tetris" on a
 * QAOA workload selects the qaoa-bridge pass, as the paper does.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chem/uccsd.hh"
#include "circuit/qasm.hh"
#include "core/pipeline_adapters.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"
#include "verify/verify.hh"

namespace
{

using namespace tetris;

[[noreturn]] void
usage()
{
    std::string ids;
    for (const auto &id : PipelineRegistry::instance().ids())
        ids += (ids.empty() ? "" : "|") + id;
    std::fprintf(stderr,
                 "usage: compile_cli --workload <name> [--encoder jw|bk]"
                 " [--backend ithaca|sycamore] [--compiler %s|ph|max|"
                 "tket] [--swap-weight W] [--lookahead K]"
                 " [--no-bridging] [--verify] [--qasm FILE]\n"
                 "(--verify, or TETRIS_VERIFY=1, checks the compiled "
                 "circuit against the source Pauli-block program and "
                 "exits nonzero on a semantic mismatch)\n",
                 ids.c_str());
    std::exit(2);
}

std::vector<PauliBlock>
loadWorkload(const std::string &name, const std::string &encoder,
             bool &is_qaoa)
{
    is_qaoa = false;
    if (name.rfind("ucc-", 0) == 0) {
        int n = std::atoi(name.c_str() + 4);
        return buildSyntheticUcc(n, 1000 + n);
    }
    if (name.rfind("qaoa-", 0) == 0) {
        is_qaoa = true;
        for (const auto &spec : qaoaBenchmarks()) {
            std::string key = spec.name;
            for (auto &c : key)
                c = static_cast<char>(std::tolower(c));
            if ("qaoa-" + key == name)
                return buildQaoaCostBlocks(buildQaoaGraph(spec, 1), 0.35);
        }
        fatal("unknown QAOA workload '", name, "'");
    }
    return buildMolecule(moleculeByName(name), encoder);
}

/**
 * Resolve the --compiler argument to a configured pipeline. The
 * tetris/qaoa-bridge instances get the command-line knobs applied;
 * everything else comes default-configured from the registry.
 */
PipelinePtr
resolvePipeline(std::string compiler, bool is_qaoa,
                const TetrisOptions &opts)
{
    // Legacy aliases from the pre-registry CLI.
    if (compiler == "ph")
        compiler = "paulihedral";
    else if (compiler == "max")
        compiler = "max-cancel";
    else if (compiler == "tket")
        compiler = "tket-o2";

    if (compiler == "tetris" && is_qaoa)
        compiler = "qaoa-bridge"; // the paper's QAOA pass

    if (compiler == "tetris")
        return makeTetrisPipeline(opts);
    if (compiler == "qaoa-bridge") {
        QaoaPassOptions qopts;
        qopts.enableBridging = opts.synthesis.enableBridging;
        return makeQaoaBridgePipeline(qopts);
    }
    if (!PipelineRegistry::instance().contains(compiler))
        usage();
    return PipelineRegistry::instance().create(compiler);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tetris;

    std::string workload, encoder = "jw", backend = "ithaca";
    std::string compiler = "tetris", qasm_path;
    TetrisOptions opts;
    const char *verify_env = std::getenv("TETRIS_VERIFY");
    bool do_verify =
        verify_env != nullptr && std::strcmp(verify_env, "0") != 0;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage();
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--workload"))
            workload = need("--workload");
        else if (!std::strcmp(argv[i], "--encoder"))
            encoder = need("--encoder");
        else if (!std::strcmp(argv[i], "--backend"))
            backend = need("--backend");
        else if (!std::strcmp(argv[i], "--compiler"))
            compiler = need("--compiler");
        else if (!std::strcmp(argv[i], "--swap-weight"))
            opts.synthesis.swapWeight = std::atof(need("--swap-weight"));
        else if (!std::strcmp(argv[i], "--lookahead"))
            opts.lookaheadK = std::atoi(need("--lookahead"));
        else if (!std::strcmp(argv[i], "--no-bridging"))
            opts.synthesis.enableBridging = false;
        else if (!std::strcmp(argv[i], "--verify"))
            do_verify = true;
        else if (!std::strcmp(argv[i], "--qasm"))
            qasm_path = need("--qasm");
        else
            usage();
    }
    if (workload.empty())
        usage();

    bool is_qaoa = false;
    auto blocks = loadWorkload(workload, encoder, is_qaoa);
    auto hw = std::make_shared<const CouplingGraph>(
        backend == "sycamore" ? googleSycamore64() : ibmIthaca65());

    CompileJob job;
    job.name = workload + "/" + compiler;
    job.blocks = blocks;
    job.hw = hw;
    job.pipeline = resolvePipeline(compiler, is_qaoa, opts);

    EngineOptions eopts;
    // Set TETRIS_CACHE_DIR to reuse compilations across invocations.
    eopts.diskCache = DiskCache::openFromEnv();
    Engine engine(eopts);
    std::vector<CompileJob> jobs;
    jobs.push_back(std::move(job)); // a braced list would deep-copy
    auto results = engine.compileAll(std::move(jobs));
    const CompileResult &result = *results.front();

    std::printf("workload   : %s (%zu blocks, %zu strings)\n",
                workload.c_str(), blocks.size(), totalStrings(blocks));
    std::printf("backend    : %s\n", hw->name().c_str());
    std::printf("compiler   : %s\n", compiler.c_str());
    std::printf("CNOT       : %zu (logical %zu + swap %zu)\n",
                result.stats.cnotCount, result.stats.logicalCnots,
                result.stats.swapCnots);
    std::printf("1Q gates   : %zu\n", result.stats.oneQubitCount);
    std::printf("depth      : %zu\n", result.stats.depth);
    std::printf("duration   : %.0f dt\n", result.stats.durationDt);
    std::printf("cancel     : %.1f%%\n",
                100.0 * result.stats.cancelRatio);
    std::printf("compile    : %.3f s\n", result.stats.compileSeconds);
    if (const DiskCache *disk = engine.diskCache()) {
        std::printf("disk cache : %s (%zu hit, %zu miss)\n",
                    disk->dir().c_str(), disk->hits(), disk->misses());
    }

    if (!qasm_path.empty()) {
        if (!writeQasm(result.circuit, qasm_path))
            fatal("cannot write '", qasm_path, "'");
        std::printf("qasm       : %s (%zu gates)\n", qasm_path.c_str(),
                    result.circuit.size());
    }

    if (do_verify) {
        VerifyReport report =
            verifyCompileResult(blocks, result, VerifyOptions());
        std::printf("verify     : %s (%s checker%s%s)\n",
                    verifyStatusName(report.status),
                    report.method.c_str(),
                    report.detail.empty() ? "" : ": ",
                    report.detail.c_str());
        if (report.failed())
            return 1;
    }
    return 0;
}
