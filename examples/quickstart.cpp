/**
 * @file
 * Quickstart: compile a hand-written group of Pauli strings with the
 * Tetris compiler and inspect the result.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/compiler.hh"
#include "core/tetris_ir.hh"
#include "hardware/topologies.hh"
#include "pauli/pauli_block.hh"

int
main()
{
    using namespace tetris;

    // The paper's running example (Fig. 5): three Pauli strings that
    // share Z operators on qubits 2..4 -- one rotation block of the
    // matrix exponential exp(-i theta/2 (X0 Y1 Z2 Z3 Z4 + ...)).
    std::vector<PauliString> strings = {
        PauliString::fromText("XYZZZ"),
        PauliString::fromText("XXZZZ"),
        PauliString::fromText("YXZZZ"),
    };
    PauliBlock block(strings, /*theta=*/0.42);

    // Tetris-IR: the compiler's view of the block. Leaf qubits carry
    // the common (cancellable) operators, rendered lower-case.
    TetrisBlock ir(block);
    std::printf("Tetris-IR: %s\n", ir.toText().c_str());
    std::printf("root set size: %zu, leaf set size: %zu\n\n",
                ir.rootSet().size(), ir.leafSet().size());

    // Compile for a 7-qubit line device (Fig. 5's setting).
    CouplingGraph device = lineTopology(7);
    CompileResult result = compileTetris({block}, device);

    std::printf("compiled for %s:\n", device.name().c_str());
    std::printf("  CNOT gates      : %zu (naive synthesis: %zu)\n",
                result.stats.cnotCount, result.stats.originalCnots);
    std::printf("  1Q gates        : %zu\n", result.stats.oneQubitCount);
    std::printf("  depth           : %zu\n", result.stats.depth);
    std::printf("  duration        : %.0f dt\n", result.stats.durationDt);
    std::printf("  cancel ratio    : %.1f%%\n",
                100.0 * result.stats.cancelRatio);
    std::printf("  inserted SWAPs  : %zu\n\n", result.stats.swapCount);

    std::printf("gate listing:\n");
    for (const auto &g : result.circuit.gates())
        std::printf("  %s\n", g.toString().c_str());
    return 0;
}
