/**
 * @file
 * End-to-end VQE compilation: build the UCCSD ansatz for a molecule,
 * compile it with Paulihedral, max-cancel and Tetris for a chosen
 * backend, and compare the paper's metrics including estimated
 * fidelity under depolarizing noise.
 *
 * Usage: vqe_molecule [molecule] [jw|bk] [ithaca|sycamore]
 *        (defaults: LiH jw ithaca)
 */

#include <cstdio>
#include <string>

#include "baselines/max_cancel.hh"
#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "common/table.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "sim/noise.hh"

int
main(int argc, char **argv)
{
    using namespace tetris;

    std::string molecule = argc > 1 ? argv[1] : "LiH";
    std::string encoder = argc > 2 ? argv[2] : "jw";
    std::string backend = argc > 3 ? argv[3] : "ithaca";

    const MoleculeSpec &spec = moleculeByName(molecule);
    CouplingGraph hw =
        backend == "sycamore" ? googleSycamore64() : ibmIthaca65();

    std::printf("molecule %s: %d spin orbitals, %d electrons, %s, %s\n",
                spec.name.c_str(), spec.numSpinOrbitals,
                spec.numElectrons, encoder.c_str(), hw.name().c_str());

    auto blocks = buildMolecule(spec, encoder);
    std::printf("ansatz: %zu excitation blocks, %zu Pauli strings, "
                "%zu naive CNOTs\n\n",
                blocks.size(), totalStrings(blocks),
                naiveCnotCount(blocks));

    CompileResult ph = compilePaulihedral(blocks, hw);
    CompileResult max = compileMaxCancel(blocks, hw);
    CompileResult tet = compileTetris(blocks, hw);

    NoiseModel noise; // p2 = 1e-3, p1 = 1e-4, as in the paper
    TablePrinter table({"Compiler", "CNOT", "SWAP-CNOT", "1Q", "Depth",
                        "Duration(dt)", "CancelRatio", "ESP",
                        "Compile(s)"});
    auto add = [&](const char *name, const CompileResult &r) {
        table.addRow({name, formatCount(r.stats.cnotCount),
                      formatCount(r.stats.swapCnots),
                      formatCount(r.stats.oneQubitCount),
                      formatCount(r.stats.depth),
                      formatCount(r.stats.durationDt),
                      formatPercent(r.stats.cancelRatio),
                      formatDouble(
                          estimatedSuccessProbability(r.circuit, noise),
                          6),
                      formatDouble(r.stats.compileSeconds)});
    };
    add("Paulihedral", ph);
    add("max-cancel", max);
    add("Tetris", tet);
    table.print();

    std::printf("\nTetris reduces CNOTs by %.1f%% vs Paulihedral.\n",
                100.0 * (1.0 - static_cast<double>(tet.stats.cnotCount) /
                                   ph.stats.cnotCount));
    return 0;
}
