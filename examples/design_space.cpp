/**
 * @file
 * The Tetris tuning spectrum (paper Sec. IV-B2): sweep the SWAP
 * weight w and the scheduler lookahead K on one molecule and print
 * how the compiler trades SWAP insertion against two-qubit-gate
 * cancellation -- the design-space knobs a user would tune for a
 * new device.
 *
 * The whole sweep is submitted to the batch engine up front and
 * compiled in parallel (thread count from TETRIS_ENGINE_THREADS);
 * results print in submission order with gate counts identical to a
 * serial sweep. The Compile(s) column is wall time measured inside
 * each compile, so with >1 engine thread concurrent jobs contend for
 * cores and inflate it; set TETRIS_ENGINE_THREADS=1 for faithful
 * per-job latencies.
 *
 * Usage: design_space [molecule] [jw|bk]   (defaults: BeH2 jw)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "chem/uccsd.hh"
#include "common/table.hh"
#include "core/compiler.hh"
#include "core/pipeline_adapters.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"

int
main(int argc, char **argv)
{
    using namespace tetris;

    std::string molecule = argc > 1 ? argv[1] : "BeH2";
    std::string encoder = argc > 2 ? argv[2] : "jw";

    auto blocks = buildMolecule(moleculeByName(molecule), encoder);
    auto hw = std::make_shared<const CouplingGraph>(ibmIthaca65());

    Engine engine;
    std::printf("tuning Tetris for %s/%s on %s (%d engine threads)\n\n",
                molecule.c_str(), encoder.c_str(), hw->name().c_str(),
                engine.numThreads());

    const std::vector<double> weights = {0.5, 1.0, 3.0, 5.0, 10.0, 100.0};
    const std::vector<int> lookaheads = {1, 5, 10, 20};
    const std::vector<SchedulerKind> alt_scheds = {
        SchedulerKind::InputOrder, SchedulerKind::Lexicographic};

    std::vector<CompileJob> jobs;
    auto addJob = [&](const TetrisOptions &opts) {
        CompileJob job;
        job.blocks = blocks;
        job.hw = hw;
        job.pipeline = makeTetrisPipeline(opts);
        jobs.push_back(std::move(job));
    };
    for (double w : weights) {
        TetrisOptions opts;
        opts.synthesis.swapWeight = w;
        addJob(opts);
    }
    for (int k : lookaheads) {
        TetrisOptions opts;
        opts.lookaheadK = k;
        addJob(opts);
    }
    for (auto kind : alt_scheds) {
        TetrisOptions opts;
        opts.scheduler = kind;
        addJob(opts);
    }

    auto results = engine.compileAll(std::move(jobs));
    size_t next = 0;

    std::printf("SWAP weight sweep (K = 10):\n");
    TablePrinter wt({"w", "SWAPs", "LogicalCNOT", "TotalCNOT", "Depth"});
    for (double w : weights) {
        const CompileStats &s = results[next++]->stats;
        wt.addRow({formatDouble(w, 1), formatCount(s.swapCount),
                   formatCount(s.logicalCnots), formatCount(s.cnotCount),
                   formatCount(s.depth)});
    }
    wt.print();

    std::printf("\nscheduler sweep (w = 3):\n");
    if (engine.numThreads() > 1) {
        std::printf("(Compile(s) measured under %d-way parallelism; "
                    "set TETRIS_ENGINE_THREADS=1 for uncontended "
                    "latencies)\n",
                    engine.numThreads());
    }
    TablePrinter kt({"Scheduler", "TotalCNOT", "Depth", "Compile(s)"});
    for (int k : lookaheads) {
        const CompileStats &s = results[next++]->stats;
        kt.addRow({"lookahead K=" + std::to_string(k),
                   formatCount(s.cnotCount), formatCount(s.depth),
                   formatDouble(s.compileSeconds)});
    }
    for (auto kind : alt_scheds) {
        const CompileStats &s = results[next++]->stats;
        kt.addRow({kind == SchedulerKind::InputOrder ? "input order"
                                                     : "lexicographic",
                   formatCount(s.cnotCount), formatCount(s.depth),
                   formatDouble(s.compileSeconds)});
    }
    kt.print();

    std::printf("\nengine: %zu jobs, cache hits %zu / misses %zu\n",
                results.size(), engine.cache().hits(),
                engine.cache().misses());
    return 0;
}
