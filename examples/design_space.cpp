/**
 * @file
 * The Tetris tuning spectrum (paper Sec. IV-B2): sweep the SWAP
 * weight w and the scheduler lookahead K on one molecule and print
 * how the compiler trades SWAP insertion against two-qubit-gate
 * cancellation -- the design-space knobs a user would tune for a
 * new device.
 *
 * Usage: design_space [molecule] [jw|bk]   (defaults: BeH2 jw)
 */

#include <cstdio>
#include <string>

#include "chem/uccsd.hh"
#include "common/table.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

int
main(int argc, char **argv)
{
    using namespace tetris;

    std::string molecule = argc > 1 ? argv[1] : "BeH2";
    std::string encoder = argc > 2 ? argv[2] : "jw";

    auto blocks = buildMolecule(moleculeByName(molecule), encoder);
    CouplingGraph hw = ibmIthaca65();
    std::printf("tuning Tetris for %s/%s on %s\n\n", molecule.c_str(),
                encoder.c_str(), hw.name().c_str());

    std::printf("SWAP weight sweep (K = 10):\n");
    TablePrinter wt({"w", "SWAPs", "LogicalCNOT", "TotalCNOT", "Depth"});
    for (double w : {0.5, 1.0, 3.0, 5.0, 10.0, 100.0}) {
        TetrisOptions opts;
        opts.synthesis.swapWeight = w;
        CompileResult r = compileTetris(blocks, hw, opts);
        wt.addRow({formatDouble(w, 1), formatCount(r.stats.swapCount),
                   formatCount(r.stats.logicalCnots),
                   formatCount(r.stats.cnotCount),
                   formatCount(r.stats.depth)});
    }
    wt.print();

    std::printf("\nscheduler sweep (w = 3):\n");
    TablePrinter kt({"Scheduler", "TotalCNOT", "Depth", "Compile(s)"});
    for (int k : {1, 5, 10, 20}) {
        TetrisOptions opts;
        opts.lookaheadK = k;
        CompileResult r = compileTetris(blocks, hw, opts);
        kt.addRow({"lookahead K=" + std::to_string(k),
                   formatCount(r.stats.cnotCount),
                   formatCount(r.stats.depth),
                   formatDouble(r.stats.compileSeconds)});
    }
    for (auto kind : {SchedulerKind::InputOrder,
                      SchedulerKind::Lexicographic}) {
        TetrisOptions opts;
        opts.scheduler = kind;
        CompileResult r = compileTetris(blocks, hw, opts);
        kt.addRow({kind == SchedulerKind::InputOrder ? "input order"
                                                     : "lexicographic",
                   formatCount(r.stats.cnotCount),
                   formatCount(r.stats.depth),
                   formatDouble(r.stats.compileSeconds)});
    }
    kt.print();
    return 0;
}
