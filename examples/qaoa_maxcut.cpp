/**
 * @file
 * QAOA MaxCut compilation: generate a random graph, build one QAOA
 * cost layer, and compare Paulihedral, the 2QAN proxy, and Tetris's
 * bridging pass (with and without mid-circuit qubit reuse).
 *
 * Usage: qaoa_maxcut [nodes] [edges] [seed]   (defaults: 16 25 7)
 */

#include <cstdio>
#include <cstdlib>

#include "baselines/paulihedral.hh"
#include "baselines/qaoa_2qan.hh"
#include "common/table.hh"
#include "core/qaoa_pass.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"

int
main(int argc, char **argv)
{
    using namespace tetris;

    int nodes = argc > 1 ? std::atoi(argv[1]) : 16;
    int edges = argc > 2 ? std::atoi(argv[2]) : 25;
    uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

    Graph g = Graph::randomWithEdges(nodes, edges, seed);
    std::printf("random MaxCut graph: %d nodes, %zu edges (seed %llu)\n",
                g.numNodes(), g.numEdges(),
                static_cast<unsigned long long>(seed));

    auto blocks = buildQaoaCostBlocks(g, /*gamma=*/0.35);
    CouplingGraph hw = ibmIthaca65();

    CompileResult ph = compilePaulihedral(blocks, hw);
    CompileResult qan = compile2qanProxy(blocks, hw);

    QaoaPassOptions no_reuse;
    no_reuse.enableQubitReuse = false;
    CompileResult tet_plain = compileQaoaTetris(blocks, hw, no_reuse);
    CompileResult tet = compileQaoaTetris(blocks, hw);

    size_t measures = 0;
    for (const auto &gate : tet.circuit.gates()) {
        if (gate.kind == GateKind::MEASURE)
            ++measures;
    }

    TablePrinter table({"Compiler", "CNOT", "SWAPs", "Depth",
                        "Duration(dt)"});
    auto add = [&](const char *name, const CompileResult &r) {
        table.addRow({name, formatCount(r.stats.cnotCount),
                      formatCount(r.stats.swapCount),
                      formatCount(r.stats.depth),
                      formatCount(r.stats.durationDt)});
    };
    add("Paulihedral", ph);
    add("2QAN proxy", qan);
    add("Tetris (no reuse)", tet_plain);
    add("Tetris (bridging+reuse)", tet);
    table.print();

    std::printf("\nmid-circuit measure+reset reclaimed %zu qubits as "
                "bridge ancillas.\n",
                measures);
    std::printf("full layer = |+> preparation, this cost layer, and an "
                "RX mixer (%zu extra 1Q gates).\n",
                qaoaInitialLayer(hw.numQubits(), nodes).size() +
                    qaoaMixerLayer(hw.numQubits(), nodes, 0.2).size());
    return 0;
}
