/**
 * @file
 * Serve-layer tests: the TSP1 frame codec (header/submit/result/
 * error round-trips, total decoding of malformed payloads, a seeded
 * decoder fuzz), end-to-end submissions through a live ServeServer
 * (artifact round-trip, cross-client dedup, ping/stats), protocol
 * robustness against a hostile peer (garbage headers, oversize
 * length prefixes, version skew, checksum corruption, mid-frame
 * disconnects, a seeded frame fuzz — the server must answer a typed
 * error or hang up, never crash, hang, or over-allocate), and the
 * graceful-drain contract (in-flight requests answered, /healthz
 * reporting "draining", post-drain connects refused). The TSan job
 * runs this suite for the accept/handler/drain interleavings.
 */

#include <gtest/gtest.h>

#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "chem/uccsd.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "obs/obs_server.hh"
#include "serialize/binary.hh"
#include "serve/client.hh"
#include "serve/frame.hh"
#include "serve/server.hh"

namespace tetris
{
namespace
{

using serve::ErrorFrame;
using serve::FrameHeader;
using serve::FrameType;
using serve::RecvStatus;
using serve::ResultFrame;
using serve::ServeClient;
using serve::SubmitRequest;
using serve::WireVerify;

SubmitRequest
sampleRequest(int qubits = 4, uint64_t seed = 7)
{
    return serve::makeSubmitRequest(
        "t", "", buildSyntheticUcc(qubits, seed),
        lineTopology(qubits));
}

// ---- codec ---------------------------------------------------------

TEST(ServeFrameCodec, HeaderRoundTrip)
{
    serialize::BinaryWriter w;
    serve::encodeFrameHeader(w, FrameType::Submit, 123);
    ASSERT_EQ(w.data().size(), serve::kFrameHeaderBytes);

    FrameHeader h;
    ASSERT_TRUE(serve::decodeFrameHeader(w.data(), h));
    EXPECT_EQ(h.magic, serve::kFrameMagic);
    EXPECT_EQ(h.version, serve::kProtocolVersion);
    EXPECT_EQ(h.type, static_cast<uint32_t>(FrameType::Submit));
    EXPECT_EQ(h.payloadLen, 123u);

    // Short input is the one failure decodeFrameHeader reports.
    const std::string &bytes = w.data();
    for (size_t k = 0; k < bytes.size(); ++k)
        EXPECT_FALSE(serve::decodeFrameHeader(
            serialize::ByteSpan(bytes.data(), k), h));
}

TEST(ServeFrameCodec, SubmitRoundTrip)
{
    const SubmitRequest req = sampleRequest();
    const std::string payload = serve::encodeSubmit(req);

    SubmitRequest out;
    std::string err;
    ASSERT_TRUE(serve::decodeSubmit(payload, out, err)) << err;
    EXPECT_EQ(out.name, req.name);
    EXPECT_EQ(out.pipelineId, req.pipelineId);
    EXPECT_EQ(out.numQubits, req.numQubits);
    EXPECT_EQ(out.edges, req.edges);
    EXPECT_EQ(out.hwName, req.hwName);
    ASSERT_EQ(out.blocks.size(), req.blocks.size());
    for (size_t b = 0; b < req.blocks.size(); ++b) {
        EXPECT_DOUBLE_EQ(out.blocks[b].theta, req.blocks[b].theta);
        EXPECT_EQ(out.blocks[b].strings, req.blocks[b].strings);
    }

    // Identical wire requests must hash to identical job keys — the
    // property the server's cross-client cache dedup rests on.
    CompileJob a, b;
    ASSERT_TRUE(serve::submitToJob(req, a, err)) << err;
    ASSERT_TRUE(serve::submitToJob(out, b, err)) << err;
    EXPECT_EQ(Engine::jobKey(a), Engine::jobKey(b));
}

TEST(ServeFrameCodec, SubmitDecodeIsTotal)
{
    const std::string good = serve::encodeSubmit(sampleRequest());
    SubmitRequest out;
    std::string err;

    // Every truncation point fails cleanly.
    for (size_t k = 0; k < good.size(); ++k)
        EXPECT_FALSE(serve::decodeSubmit(
            serialize::ByteSpan(good.data(), k), out, err));

    // Trailing junk is rejected, not ignored.
    EXPECT_FALSE(
        serve::decodeSubmit(good + std::string(1, '\0'), out, err));

    auto rejects = [&](SubmitRequest req) {
        SubmitRequest o;
        std::string e;
        EXPECT_FALSE(
            serve::decodeSubmit(serve::encodeSubmit(req), o, e));
        EXPECT_FALSE(e.empty());
    };

    SubmitRequest req = sampleRequest();
    req.blocks[0].strings[0].first[0] = 'A'; // not IXYZ
    rejects(req);

    req = sampleRequest();
    req.blocks[0].strings[0].first += 'X'; // width != numQubits
    rejects(req);

    req = sampleRequest();
    req.edges.emplace_back(0, 99); // endpoint out of range
    rejects(req);

    req = sampleRequest();
    req.edges.emplace_back(2, 2); // self-loop
    rejects(req);

    req = sampleRequest();
    req.blocks.clear(); // no blocks
    rejects(req);

    req = sampleRequest();
    req.blocks[0].strings.clear(); // empty block
    rejects(req);

    req = sampleRequest();
    req.blocks[0].theta = NAN; // non-finite angle
    rejects(req);

    req = sampleRequest();
    req.numQubits = 0;
    rejects(req);

    req = sampleRequest();
    req.numQubits = 1 << 20; // over the wire qubit cap
    rejects(req);
}

TEST(ServeFrameCodec, ResultAndErrorRoundTrip)
{
    ResultFrame rf;
    rf.jobKey = 0xdeadbeefcafef00dull;
    rf.verify = WireVerify::Pass;
    rf.serverMs = 12.5;
    rf.artifact = std::string("\x01\x02\x00\x03", 4);

    ResultFrame ro;
    ASSERT_TRUE(serve::decodeResult(serve::encodeResult(rf), ro));
    EXPECT_EQ(ro.jobKey, rf.jobKey);
    EXPECT_EQ(ro.verify, rf.verify);
    EXPECT_DOUBLE_EQ(ro.serverMs, rf.serverMs);
    EXPECT_EQ(ro.artifact, rf.artifact);

    ErrorFrame ef{"overloaded", "engine backlog full"};
    ErrorFrame eo;
    ASSERT_TRUE(serve::decodeError(serve::encodeError(ef), eo));
    EXPECT_EQ(eo.code, ef.code);
    EXPECT_EQ(eo.detail, ef.detail);

    const std::string enc = serve::encodeResult(rf);
    for (size_t k = 0; k < enc.size(); ++k)
        EXPECT_FALSE(serve::decodeResult(
            serialize::ByteSpan(enc.data(), k), ro));
}

/**
 * Seeded fuzz of the payload decoders: random byte soup and
 * single-byte corruptions of a valid submit image. The decoders are
 * total — any outcome is fine except a crash, hang, or an
 * allocation driven by an unvalidated count.
 */
TEST(ServeFrameCodec, DecoderFuzzNeverCrashes)
{
    std::mt19937_64 rng(0xC0FFEEu); // fixed seed: reproducible
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<size_t> len(0, 512);

    for (int iter = 0; iter < 500; ++iter) {
        std::string noise(len(rng), '\0');
        for (char &c : noise)
            c = static_cast<char>(byte(rng));
        SubmitRequest s;
        ResultFrame r;
        ErrorFrame e;
        FrameHeader h;
        std::string err;
        serve::decodeSubmit(noise, s, err);
        serve::decodeResult(noise, r);
        serve::decodeError(noise, e);
        serve::decodeFrameHeader(noise, h);
    }

    const std::string good = serve::encodeSubmit(sampleRequest());
    for (size_t i = 0; i < good.size(); ++i) {
        std::string flipped = good;
        flipped[i] ^= static_cast<char>(1 + byte(rng) % 255);
        SubmitRequest s;
        std::string err;
        serve::decodeSubmit(flipped, s, err);
    }
}

// ---- live server fixtures ------------------------------------------

struct ServeFixture
{
    Engine engine;
    std::unique_ptr<serve::ServeServer> server;

    explicit ServeFixture(EngineOptions eopts = verifyOpts(),
                          serve::ServeOptions sopts = {})
        : engine(std::move(eopts))
    {
        sopts.tcpPort = 0;
        server = serve::ServeServer::start(engine, sopts);
    }

    static EngineOptions verifyOpts()
    {
        EngineOptions o;
        o.verify = true;
        return o;
    }

    int port() const { return server->port(); }

    std::unique_ptr<ServeClient> connect()
    {
        std::string err;
        auto c = ServeClient::connectTcp(port(), err);
        EXPECT_NE(c, nullptr) << err;
        return c;
    }
};

/** Read one frame off a raw client fd with a test-side deadline. */
RecvStatus
recvWithDeadline(int fd, FrameType &type, std::string &payload)
{
    struct pollfd pfd = {fd, POLLIN, 0};
    if (net::pollRetry(&pfd, 1, 5000) <= 0)
        return RecvStatus::Truncated;
    return serve::recvFrame(fd, serve::kDefaultMaxFrameBytes, type,
                            payload);
}

/** Expect an Error frame with `code` as the next message on fd. */
void
expectErrorFrame(int fd, const std::string &code)
{
    FrameType type = FrameType::Ping;
    std::string payload;
    ASSERT_EQ(recvWithDeadline(fd, type, payload), RecvStatus::Ok);
    ASSERT_EQ(type, FrameType::Error);
    ErrorFrame e;
    ASSERT_TRUE(serve::decodeError(payload, e));
    EXPECT_EQ(e.code, code) << e.detail;
}

TEST(ServeEndToEnd, SubmitRoundTripAndDedup)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    const SubmitRequest req = sampleRequest(4, 11);
    ServeClient::Response first;
    ASSERT_TRUE(client->submit(req, first));
    ASSERT_TRUE(first.ok) << first.errorCode << ": "
                          << first.errorDetail;
    EXPECT_EQ(first.verify, WireVerify::Pass);
    EXPECT_GT(first.result.stats.totalGateCount, 0u);
    EXPECT_FALSE(first.result.circuit.gates().empty());

    // Same program from a second connection: memory-cache hit, same
    // key, same artifact bytes end to end.
    auto client2 = fx.connect();
    ASSERT_NE(client2, nullptr);
    ServeClient::Response second;
    ASSERT_TRUE(client2->submit(req, second));
    ASSERT_TRUE(second.ok);
    EXPECT_EQ(second.jobKey, first.jobKey);
    EXPECT_EQ(second.verify, WireVerify::Pass);
    EXPECT_EQ(second.result.stats.cnotCount,
              first.result.stats.cnotCount);
    EXPECT_GE(fx.engine.metrics().count("jobs.deduplicated"), 1u);
    EXPECT_EQ(fx.engine.metrics().count("serve.results"), 2u);
}

TEST(ServeEndToEnd, PingAndStats)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->ping());

    std::string stats;
    ASSERT_TRUE(client->statsText(stats));
    EXPECT_NE(stats.find("tetris_count"), std::string::npos);
    EXPECT_NE(stats.find("serve.connections"), std::string::npos);
}

TEST(ServeEndToEnd, BadSubmitPayloadAnswersBadRequest)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    // Well-framed Submit whose payload is not a submit record.
    ASSERT_TRUE(serve::sendFrame(client->fd(), FrameType::Submit,
                                 std::string("not a request")));
    expectErrorFrame(client->fd(), "bad_request");

    // Framing was intact, so the connection still serves.
    EXPECT_TRUE(client->ping());
}

// ---- protocol robustness -------------------------------------------

TEST(ServeRobustness, GarbageHeaderAnswersBadMagic)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    std::string junk(serve::kFrameHeaderBytes, '\x5a');
    ASSERT_TRUE(
        net::sendAll(client->fd(), junk.data(), junk.size()));
    expectErrorFrame(client->fd(), "bad_magic");

    // The server hung up on us but must itself still be serving.
    auto again = fx.connect();
    ASSERT_NE(again, nullptr);
    EXPECT_TRUE(again->ping());
}

TEST(ServeRobustness, OversizeLengthPrefixRejectedUnallocated)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    // A hostile 2^62-byte promise: the budget check fires from the
    // header alone, so the reply arrives without any payload read —
    // and with no 4-EiB allocation attempt.
    serialize::BinaryWriter w;
    serve::encodeFrameHeader(w, FrameType::Submit, 1ull << 62);
    ASSERT_TRUE(
        net::sendAll(client->fd(), w.data().data(), w.data().size()));
    expectErrorFrame(client->fd(), "frame_too_large");
    EXPECT_GE(fx.engine.metrics().count("serve.bad_frames"), 1u);
}

TEST(ServeRobustness, VersionSkewAnswersTyped)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    serialize::BinaryWriter w;
    w.u32(serve::kFrameMagic);
    w.u32(serve::kProtocolVersion + 7);
    w.u32(static_cast<uint32_t>(FrameType::Ping));
    w.u64(0);
    ASSERT_TRUE(
        net::sendAll(client->fd(), w.data().data(), w.data().size()));
    expectErrorFrame(client->fd(), "version_skew");
}

TEST(ServeRobustness, CorruptChecksumAnswersTyped)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    std::string frame = serve::encodeFrame(
        FrameType::Submit, serve::encodeSubmit(sampleRequest()));
    frame.back() ^= 0x01; // flip one trailer bit
    ASSERT_TRUE(
        net::sendAll(client->fd(), frame.data(), frame.size()));
    expectErrorFrame(client->fd(), "bad_checksum");
}

TEST(ServeRobustness, MidFrameDisconnectLeavesServerServing)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);

    { // half a header, then vanish
        auto client = fx.connect();
        ASSERT_NE(client, nullptr);
        ASSERT_TRUE(net::sendAll(client->fd(), "TSP", 3));
    }
    { // full header promising 100 bytes, deliver 10, vanish
        auto client = fx.connect();
        ASSERT_NE(client, nullptr);
        serialize::BinaryWriter w;
        serve::encodeFrameHeader(w, FrameType::Submit, 100);
        ASSERT_TRUE(net::sendAll(client->fd(), w.data().data(),
                                 w.data().size()));
        ASSERT_TRUE(net::sendAll(client->fd(), "0123456789", 10));
    }

    auto client = fx.connect();
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->ping());
    ServeClient::Response resp;
    ASSERT_TRUE(client->submit(sampleRequest(), resp));
    EXPECT_TRUE(resp.ok) << resp.errorCode;
}

TEST(ServeRobustness, ServerFramedResponseTypesRejectedButKept)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);
    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    // A Result frame is well-formed but only a server may send one.
    ASSERT_TRUE(serve::sendFrame(
        client->fd(), FrameType::Result,
        serve::encodeResult(ResultFrame{})));
    expectErrorFrame(client->fd(), "bad_request");
    EXPECT_TRUE(client->ping());
}

/**
 * Seeded frame fuzz against the live server: connections that spray
 * random bytes (sometimes prefixed with a valid magic to get deeper
 * into the parser) and hang up. After every barrage the server must
 * still complete a clean round-trip. Runtime is bounded: every
 * malformed connection is answered-or-closed without timeouts.
 */
TEST(ServeRobustness, FrameFuzzNeverKillsServer)
{
    ServeFixture fx;
    ASSERT_NE(fx.server, nullptr);

    std::mt19937_64 rng(0xF00Du); // fixed seed: reproducible
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<size_t> len(1, 96);

    for (int iter = 0; iter < 40; ++iter) {
        auto client = fx.connect();
        ASSERT_NE(client, nullptr);
        std::string noise(len(rng), '\0');
        for (char &c : noise)
            c = static_cast<char>(byte(rng));
        if (iter % 3 == 0) {
            serialize::BinaryWriter w;
            w.u32(serve::kFrameMagic);
            noise = w.data() + noise;
        }
        net::sendAll(client->fd(), noise.data(), noise.size());
        // Briefly drain any typed answer, then hang up — noise too
        // short to even be a header gets no reply until our close,
        // so don't wait on it; correctness is asserted by the final
        // probe.
        struct pollfd pfd = {client->fd(), POLLIN, 0};
        if (net::pollRetry(&pfd, 1, 50) > 0) {
            FrameType type = FrameType::Ping;
            std::string payload;
            serve::recvFrame(client->fd(),
                             serve::kDefaultMaxFrameBytes, type,
                             payload);
        }
    }

    auto probe = fx.connect();
    ASSERT_NE(probe, nullptr);
    EXPECT_TRUE(probe->ping());
    ServeClient::Response resp;
    ASSERT_TRUE(probe->submit(sampleRequest(4, 3), resp));
    EXPECT_TRUE(resp.ok) << resp.errorCode;
}

// ---- graceful drain ------------------------------------------------

TEST(ServeDrain, InFlightAnsweredHealthzDrainingConnectsRefused)
{
    EngineOptions eopts;
    eopts.verify = true;
    eopts.obsServer = "127.0.0.1:0";
    ServeFixture fx(std::move(eopts));
    ASSERT_NE(fx.server, nullptr);

    auto client = fx.connect();
    ASSERT_NE(client, nullptr);

    // Launch a fresh (uncached) compilation, then drain while it is
    // in flight. drain(false) must let it publish and respond.
    ServeClient::Response resp;
    std::thread submitter([&] {
        client->submit(sampleRequest(6, 99), resp);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fx.server->drain(false);

    submitter.join();
    EXPECT_TRUE(resp.ok) << resp.errorCode << ": "
                         << resp.errorDetail;
    EXPECT_EQ(resp.verify, WireVerify::Pass);

    // The draining flag stays pinned for the rest of the process:
    // /healthz reports it and new connections are refused.
    EXPECT_TRUE(fx.server->draining());
    int status = 0;
    const std::string health =
        obsHttpGet(fx.engine.obsPort(), "/healthz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(health.find("draining"), std::string::npos) << health;

    std::string err;
    auto late = ServeClient::connectTcp(fx.port(), err);
    if (late) {
        // The listener may already have closed (connect refused) or
        // the handshake may have raced the shutdown; either way no
        // new request is served.
        ServeClient::Response r;
        const bool sent = late->submit(sampleRequest(4, 5), r);
        EXPECT_TRUE(!sent || !r.ok);
    }
}

TEST(ServeDrain, CancelQueuedAnswersCancelled)
{
    // One worker thread so a queue actually builds up behind the
    // first compilation.
    EngineOptions eopts;
    eopts.numThreads = 1;
    ServeFixture fx(std::move(eopts));
    ASSERT_NE(fx.server, nullptr);

    constexpr int kClients = 4;
    std::vector<std::unique_ptr<ServeClient>> clients;
    std::vector<ServeClient::Response> resps(kClients);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
        clients.push_back(fx.connect());
        ASSERT_NE(clients.back(), nullptr);
    }
    for (int c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            clients[c]->submit(sampleRequest(6, 200 + c), resps[c]);
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    fx.server->drain(/*cancel_queued=*/true);
    for (auto &t : threads)
        t.join();

    // Every request got an answer frame: a Result for whatever had
    // started (or finished), compile_cancelled for the rest. None
    // were dropped.
    int results = 0, cancelled = 0;
    for (const auto &r : resps) {
        if (r.ok)
            results++;
        else if (r.errorCode == "compile_cancelled")
            cancelled++;
        else
            ADD_FAILURE() << "unexpected outcome: " << r.errorCode
                          << " (" << r.errorDetail << ")";
    }
    EXPECT_EQ(results + cancelled, kClients);
}

} // namespace
} // namespace tetris

#else // !TETRIS_HAVE_SOCKETS

TEST(ServeFrameCodec, SkippedWithoutSockets)
{
    GTEST_SKIP() << "no socket support on this platform";
}

#endif // TETRIS_HAVE_SOCKETS
