/**
 * @file
 * End-to-end compiler tests: scheduling policies, full-pipeline
 * functional equivalence, stats accounting, and option ablations.
 */

#include <gtest/gtest.h>

#include "chem/uccsd.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

/** A small random UCCSD-like workload. */
std::vector<PauliBlock>
smallWorkload(int num_qubits, int num_blocks, uint64_t seed)
{
    Rng rng(seed);
    JordanWignerEncoding enc(num_qubits);
    std::vector<PauliBlock> blocks;
    for (int i = 0; i < num_blocks; ++i) {
        if (rng.bernoulli(0.3)) {
            int a = rng.uniformInt(0, num_qubits - 2);
            int b = rng.uniformInt(a + 1, num_qubits - 1);
            blocks.push_back(
                makeSingleExcitation(enc, a, b, rng.uniform(0.1, 1.0)));
        } else {
            auto picks = rng.sampleIndices(num_qubits, 4);
            std::vector<int> m(picks.begin(), picks.end());
            std::sort(m.begin(), m.end());
            blocks.push_back(makeDoubleExcitation(
                enc, m[0], m[1], m[2], m[3], rng.uniform(0.1, 1.0)));
        }
    }
    return blocks;
}

TEST(Compiler, EquivalenceOnLine)
{
    auto blocks = smallWorkload(6, 4, 1);
    CouplingGraph hw = lineTopology(7);
    CompileResult res = compileTetris(blocks, hw);
    Rng rng(2);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(Compiler, EquivalenceOnHeavyHexAllSchedulers)
{
    auto blocks = smallWorkload(6, 5, 3);
    CouplingGraph hw = heavyHexTopology(2, 5);
    for (auto sched : {SchedulerKind::InputOrder,
                       SchedulerKind::Lexicographic,
                       SchedulerKind::Lookahead}) {
        TetrisOptions opts;
        opts.scheduler = sched;
        CompileResult res = compileTetris(blocks, hw, opts);
        Rng rng(4);
        EXPECT_TRUE(test::checkCompiledEquivalence(blocks, res,
                                                   hw.numQubits(), rng))
            << "scheduler " << static_cast<int>(sched);
        EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
    }
}

TEST(Compiler, EquivalenceWithoutPeephole)
{
    auto blocks = smallWorkload(5, 3, 5);
    CouplingGraph hw = gridTopology(2, 3);
    TetrisOptions opts;
    opts.runPeephole = false;
    CompileResult res = compileTetris(blocks, hw, opts);
    Rng rng(6);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
}

TEST(Compiler, PeepholeNeverIncreasesGateCount)
{
    auto blocks = smallWorkload(6, 6, 7);
    CouplingGraph hw = heavyHexTopology(2, 5);
    TetrisOptions with, without;
    without.runPeephole = false;
    CompileResult a = compileTetris(blocks, hw, with);
    CompileResult b = compileTetris(blocks, hw, without);
    EXPECT_LE(a.stats.totalGateCount, b.stats.totalGateCount);
}

TEST(Compiler, BlockOrderIsAPermutation)
{
    auto blocks = smallWorkload(6, 8, 9);
    CompileResult res = compileTetris(blocks, lineTopology(8));
    ASSERT_EQ(res.blockOrder.size(), blocks.size());
    std::vector<bool> seen(blocks.size(), false);
    for (size_t idx : res.blockOrder) {
        ASSERT_LT(idx, blocks.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(Compiler, LookaheadStartsWithLongestActiveBlock)
{
    auto blocks = smallWorkload(7, 6, 11);
    TetrisOptions opts;
    opts.scheduler = SchedulerKind::Lookahead;
    CompileResult res = compileTetris(blocks, lineTopology(8), opts);
    size_t first = res.blockOrder.front();
    for (const auto &b : blocks) {
        EXPECT_LE(b.activeLength(), blocks[first].activeLength());
    }
}

TEST(Compiler, StatsAreInternallyConsistent)
{
    auto blocks = smallWorkload(6, 5, 13);
    CompileResult res = compileTetris(blocks, heavyHexTopology(2, 5));
    const CompileStats &s = res.stats;
    EXPECT_EQ(s.totalGateCount, s.cnotCount + s.oneQubitCount);
    EXPECT_EQ(s.swapCnots, 3 * s.swapCount);
    EXPECT_EQ(s.logicalCnots + s.swapCnots, s.cnotCount);
    EXPECT_GE(s.cancelRatio, 0.0);
    EXPECT_LE(s.cancelRatio, 1.0);
    EXPECT_EQ(s.originalCnots, naiveCnotCount(blocks));
    EXPECT_GT(s.depth, 0u);
    EXPECT_GT(s.durationDt, 0.0);
    EXPECT_GE(s.compileSeconds, 0.0);
}

TEST(Compiler, CancelsMoreThanHalfOnSimilarBlocks)
{
    // Long common Z chains: Tetris should cancel a large fraction of
    // the logical CNOTs.
    JordanWignerEncoding enc(10);
    std::vector<PauliBlock> blocks;
    blocks.push_back(makeDoubleExcitation(enc, 0, 5, 6, 9, 0.3));
    blocks.push_back(makeDoubleExcitation(enc, 0, 5, 6, 9, 0.5));
    CompileResult res = compileTetris(blocks, lineTopology(10));
    EXPECT_GT(res.stats.cancelRatio, 0.5);
}

TEST(Compiler, RejectsOversizedWorkload)
{
    auto blocks = smallWorkload(6, 2, 15);
    EXPECT_DEATH({ compileTetris(blocks, lineTopology(4)); },
                 "more qubits");
}

TEST(Compiler, SwapWeightShiftsSwapVsCancelTradeoff)
{
    // Higher w should never increase the SWAP count.
    auto blocks = smallWorkload(8, 10, 17);
    CouplingGraph hw = heavyHexTopology(3, 5);
    TetrisOptions low, high;
    low.synthesis.swapWeight = 0.1;
    high.synthesis.swapWeight = 100.0;
    CompileResult a = compileTetris(blocks, hw, low);
    CompileResult b = compileTetris(blocks, hw, high);
    EXPECT_GE(a.stats.swapCount + 2, b.stats.swapCount)
        << "high swap weight should not cost many extra SWAPs";
}

TEST(Compiler, DeterministicAcrossRuns)
{
    auto blocks = smallWorkload(6, 6, 19);
    CouplingGraph hw = heavyHexTopology(2, 5);
    CompileResult a = compileTetris(blocks, hw);
    CompileResult b = compileTetris(blocks, hw);
    EXPECT_EQ(a.stats.cnotCount, b.stats.cnotCount);
    EXPECT_EQ(a.blockOrder, b.blockOrder);
    EXPECT_EQ(a.circuit.size(), b.circuit.size());
}

class CompilerLookaheadK : public ::testing::TestWithParam<int>
{
};

TEST_P(CompilerLookaheadK, AllKValuesStayCorrect)
{
    auto blocks = smallWorkload(6, 6, 21);
    CouplingGraph hw = heavyHexTopology(2, 5);
    TetrisOptions opts;
    opts.lookaheadK = GetParam();
    CompileResult res = compileTetris(blocks, hw, opts);
    Rng rng(22);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
}

INSTANTIATE_TEST_SUITE_P(KSweep, CompilerLookaheadK,
                         ::testing::Values(1, 2, 5, 10, 22));

} // namespace
} // namespace tetris
