/**
 * @file
 * Chemistry substrate tests: canonical anticommutation relations for
 * both encoders, excitation-operator structure, and the Table I
 * benchmark statistics.
 */

#include <gtest/gtest.h>

#include <complex>

#include "chem/encoding.hh"
#include "chem/uccsd.hh"
#include "pauli/pauli_sum.hh"

namespace tetris
{
namespace
{

/** {A, B} = AB + BA. */
PauliSum
anticommutator(const PauliSum &a, const PauliSum &b)
{
    return (a * b + b * a).simplified();
}

/** True if the sum equals coeff * Identity. */
bool
isScaledIdentity(const PauliSum &s, std::complex<double> coeff)
{
    PauliSum r = s.simplified();
    if (std::abs(coeff) < 1e-12)
        return r.empty();
    if (r.size() != 1)
        return false;
    return r.terms()[0].string.isIdentity() &&
           std::abs(r.terms()[0].coeff - coeff) < 1e-9;
}

class EncodingCar : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EncodingCar, CanonicalAnticommutationRelations)
{
    const int n = 6;
    auto enc = makeEncoding(GetParam(), n);
    for (int p = 0; p < n; ++p) {
        for (int q = 0; q < n; ++q) {
            // {a_p, a_q^dag} = delta_pq.
            auto mixed =
                anticommutator(enc->annihilationOp(p), enc->creationOp(q));
            EXPECT_TRUE(isScaledIdentity(mixed, p == q ? 1.0 : 0.0))
                << GetParam() << " p=" << p << " q=" << q;
            // {a_p, a_q} = 0.
            auto same = anticommutator(enc->annihilationOp(p),
                                       enc->annihilationOp(q));
            EXPECT_TRUE(isScaledIdentity(same, 0.0))
                << GetParam() << " p=" << p << " q=" << q;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Both, EncodingCar,
                         ::testing::Values("jordan-wigner",
                                           "bravyi-kitaev"));

class EncodingNumberOp : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EncodingNumberOp, NumberOperatorIsAProjector)
{
    const int n = 5;
    auto enc = makeEncoding(GetParam(), n);
    for (int p = 0; p < n; ++p) {
        PauliSum num =
            (enc->creationOp(p) * enc->annihilationOp(p)).simplified();
        // n_p^2 = n_p for a fermionic occupation operator.
        PauliSum diff = (num * num - num).simplified();
        EXPECT_TRUE(diff.empty()) << GetParam() << " p=" << p;
        EXPECT_TRUE(num.isHermitian());
    }
}

INSTANTIATE_TEST_SUITE_P(Both, EncodingNumberOp,
                         ::testing::Values("jw", "bk"));

TEST(JordanWigner, KnownOperatorForms)
{
    JordanWignerEncoding enc(3);
    PauliSum a1 = enc.annihilationOp(1).simplified();
    ASSERT_EQ(a1.size(), 2u);
    // Terms sorted lexicographically: ZXI before ZYI.
    EXPECT_EQ(a1.terms()[0].string.toText(), "ZXI");
    EXPECT_EQ(a1.terms()[1].string.toText(), "ZYI");
    EXPECT_NEAR(a1.terms()[0].coeff.real(), 0.5, 1e-12);
    EXPECT_NEAR(a1.terms()[1].coeff.imag(), 0.5, 1e-12);
}

TEST(JordanWigner, SingleExcitationHasTwoStrings)
{
    JordanWignerEncoding enc(5);
    PauliBlock b = makeSingleExcitation(enc, 1, 4, 0.3);
    EXPECT_EQ(b.size(), 2u);
    // X Z Z Y pattern on qubits 1..4 with Z padding between.
    for (const auto &s : b.strings()) {
        EXPECT_EQ(s.weight(), 4u);
        EXPECT_EQ(s.op(0), PauliOp::I);
        EXPECT_EQ(s.op(2), PauliOp::Z);
        EXPECT_EQ(s.op(3), PauliOp::Z);
    }
}

TEST(JordanWigner, DoubleExcitationHasEightStrings)
{
    JordanWignerEncoding enc(8);
    PauliBlock b = makeDoubleExcitation(enc, 0, 1, 4, 6, 0.3);
    EXPECT_EQ(b.size(), 8u);
    // All eight strings share support {0,1,4,6} plus the Z chain {5}.
    for (const auto &s : b.strings()) {
        EXPECT_NE(s.op(0), PauliOp::I);
        EXPECT_NE(s.op(1), PauliOp::I);
        EXPECT_NE(s.op(4), PauliOp::I);
        EXPECT_NE(s.op(6), PauliOp::I);
        EXPECT_EQ(s.op(5), PauliOp::Z);
        EXPECT_EQ(s.op(7), PauliOp::I);
    }
}

TEST(JordanWigner, DoubleExcitationBlockHasNonTrivialSplit)
{
    JordanWignerEncoding enc(8);
    PauliBlock b = makeDoubleExcitation(enc, 0, 1, 4, 6, 0.3);
    // The four corners differ across strings (root), the Z chain is
    // common (leaf).
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{0, 1, 4, 6}));
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{5}));
}

TEST(BravyiKitaev, FenwickSetsOnFourModes)
{
    BravyiKitaevEncoding enc(4);
    // Tree on [0,3]: parent(1)=3, parent(0)=1, parent(2)=3.
    EXPECT_EQ(enc.updateSet(0), (std::vector<int>{1, 3}));
    EXPECT_EQ(enc.updateSet(2), (std::vector<int>{3}));
    EXPECT_TRUE(enc.updateSet(3).empty());
    EXPECT_EQ(enc.paritySet(2), (std::vector<int>{1}));
    EXPECT_EQ(enc.paritySet(3), (std::vector<int>{1, 2}));
    EXPECT_EQ(enc.flipSet(3), (std::vector<int>{1, 2}));
    EXPECT_TRUE(enc.remainderSet(3).empty());
    EXPECT_EQ(enc.remainderSet(2), (std::vector<int>{1}));
}

TEST(BravyiKitaev, OperatorLocalityIsLogarithmicOnAverage)
{
    // BK strings should be shorter than the O(n) JW chains for the
    // highest modes.
    const int n = 16;
    BravyiKitaevEncoding bk(n);
    JordanWignerEncoding jw(n);
    size_t bk_weight = 0, jw_weight = 0;
    for (int m = 0; m < n; ++m) {
        const PauliSum bk_op = bk.annihilationOp(m);
        for (const auto &t : bk_op.terms())
            bk_weight += t.string.weight();
        const PauliSum jw_op = jw.annihilationOp(m);
        for (const auto &t : jw_op.terms())
            jw_weight += t.string.weight();
    }
    EXPECT_LT(bk_weight, jw_weight);
}

TEST(Uccsd, MoleculePauliCountsMatchTableOne)
{
    // The paper's Table I (#Pauli column), reproduced exactly.
    const std::vector<std::pair<std::string, size_t>> expect = {
        {"LiH", 640},   {"BeH2", 1488},  {"CH4", 4240},
        {"MgH2", 8400}, {"LiCl", 17280}, {"CO2", 20944},
    };
    for (const auto &[name, count] : expect) {
        const MoleculeSpec &spec = moleculeByName(name);
        auto blocks = buildMolecule(spec, "jw");
        EXPECT_EQ(totalStrings(blocks), count) << name;
    }
}

TEST(Uccsd, MoleculeGateCountsMatchTableOne)
{
    // Table I #CNOT and #1Q columns, reproduced exactly by the
    // blocked spin ordering (the default).
    struct Row
    {
        const char *name;
        size_t cnot;
        size_t one_q;
    };
    const std::vector<Row> expect = {
        {"LiH", 8064, 4992},     {"BeH2", 21072, 11712},
        {"CH4", 73680, 33600},   {"MgH2", 173264, 66752},
        {"LiCl", 440960, 137600}, {"CO2", 568656, 166848},
    };
    for (const auto &row : expect) {
        auto blocks = buildMolecule(moleculeByName(row.name), "jw");
        EXPECT_EQ(naiveCnotCount(blocks), row.cnot) << row.name;
        EXPECT_EQ(naiveOneQubitCount(blocks), row.one_q) << row.name;
    }
}

TEST(Uccsd, BlockSizesAreTwoOrEightUnderJw)
{
    auto blocks = buildMolecule(moleculeByName("LiH"), "jw");
    size_t singles = 0, doubles = 0;
    for (const auto &b : blocks) {
        if (b.size() == 2)
            ++singles;
        else if (b.size() == 8)
            ++doubles;
        else
            FAIL() << "unexpected block size " << b.size();
    }
    EXPECT_EQ(singles, 16u);
    EXPECT_EQ(doubles, 76u);
}

TEST(Uccsd, BravyiKitaevProducesSameBlockCount)
{
    auto jw = buildMolecule(moleculeByName("LiH"), "jw");
    auto bk = buildMolecule(moleculeByName("LiH"), "bk");
    EXPECT_EQ(jw.size(), bk.size());
}

TEST(Uccsd, SyntheticBenchmarksMatchTableOne)
{
    for (int n : {10, 15, 20}) {
        auto blocks = buildSyntheticUcc(n, 1234);
        EXPECT_EQ(blocks.size(), static_cast<size_t>(n * n));
        EXPECT_EQ(totalStrings(blocks),
                  static_cast<size_t>(8 * n * n));
    }
}

TEST(Uccsd, SyntheticIsSeedDeterministic)
{
    auto a = buildSyntheticUcc(10, 7);
    auto b = buildSyntheticUcc(10, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].string(0), b[i].string(0));
    }
}

TEST(Uccsd, WeightsAreRealAndNonZero)
{
    JordanWignerEncoding enc(6);
    PauliBlock b = makeDoubleExcitation(enc, 0, 1, 3, 5, 0.2);
    for (size_t i = 0; i < b.size(); ++i)
        EXPECT_GT(std::abs(b.weight(i)), 1e-6);
}

TEST(Uccsd, OrderingChangesChainLengths)
{
    const MoleculeSpec &spec = moleculeByName("LiH");
    UccsdOptions blocked, interleaved;
    blocked.ordering = SpinOrdering::Blocked;
    interleaved.ordering = SpinOrdering::Interleaved;
    auto a = buildMolecule(spec, "jw", blocked);
    auto b = buildMolecule(spec, "jw", interleaved);
    EXPECT_EQ(totalStrings(a), totalStrings(b));
    // Chain lengths (and hence naive CNOT counts) differ.
    EXPECT_NE(naiveCnotCount(a), naiveCnotCount(b));
}

TEST(Uccsd, NaiveCountsFormula)
{
    // One string "XZY" -> 2*(3-1) CNOTs, 2 basis pairs (X and Y).
    PauliBlock b({PauliString::fromText("XZY")}, 0.1);
    std::vector<PauliBlock> blocks{b};
    EXPECT_EQ(naiveCnotCount(blocks), 4u);
    EXPECT_EQ(naiveOneQubitCount(blocks), 4u);
}

TEST(Uccsd, UnknownMoleculeOrEncodingFails)
{
    EXPECT_DEATH(
        { makeEncoding("bogus", 4); }, "unknown encoding");
}

} // namespace
} // namespace tetris
