/**
 * @file
 * Golden-corpus suite for the streaming frontend parsers.
 *
 * The inputs live in tests/data/qasm/ (path baked in as
 * TETRIS_TEST_DATA_DIR) and cover the textual edge cases a streamed
 * reader must not trip over: comments, blank lines, CRLF endings,
 * include directives, plus the rejection side — unsupported
 * constructs must come back as *typed, positioned* errors, because a
 * frontend that silently drops a measure statement would poison
 * every differential result downstream.
 *
 * The 10k-line program is generated on the fly (a megabyte of golden
 * text in the repo would be noise): it proves the incremental reader
 * handles file-scale input with block-at-a-time memory and exact
 * instruction accounting.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "frontend/pauli_parser.hh"
#include "frontend/qasm_parser.hh"

namespace tetris
{
namespace
{

using namespace tetris::frontend;

std::string
dataPath(const std::string &name)
{
    return std::string(TETRIS_TEST_DATA_DIR) + "/qasm/" + name;
}

struct ParseOutcome
{
    std::vector<PauliBlock> blocks;
    ParseError error;
    int numQubits = 0;
    uint64_t instructions = 0;
    bool residual = false;
};

ParseOutcome
parseQasmFile(const std::string &name)
{
    std::ifstream in(dataPath(name), std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing corpus file: " << name;
    QasmParser parser(in);
    ParseOutcome out;
    PauliBlock b;
    BlockSource::Status s;
    while ((s = parser.next(b)) == BlockSource::Status::Block)
        out.blocks.push_back(std::move(b));
    out.error = parser.error();
    out.numQubits = parser.numQubits();
    out.instructions = parser.instructionsRead();
    out.residual = parser.residualClifford();
    return out;
}

// ---- accepting corpus ----------------------------------------------

TEST(QasmGolden, CommentsAndBlankLines)
{
    ParseOutcome out = parseQasmFile("comments_and_blanks.qasm");
    ASSERT_TRUE(out.error.ok()) << out.error.toText();
    EXPECT_EQ(out.numQubits, 3);
    // rz, h, rx, t: four gate statements, three rotation blocks (the
    // h folds into the frame).
    EXPECT_EQ(out.instructions, 4u);
    ASSERT_EQ(out.blocks.size(), 3u);
    EXPECT_EQ(out.blocks[0].string(0).toText(), "ZII");
    // rx on q1 after h: the axis pulls back to Z through the h.
    EXPECT_EQ(out.blocks[1].string(0).toText(), "IZI");
    EXPECT_EQ(out.blocks[2].string(0).toText(), "IIZ");
    // The h was never emitted and never undone.
    EXPECT_TRUE(out.residual);
}

TEST(QasmGolden, IncludeDirectiveAndCxConjugation)
{
    ParseOutcome out = parseQasmFile("include_directive.qasm");
    ASSERT_TRUE(out.error.ok()) << out.error.toText();
    EXPECT_EQ(out.numQubits, 2);
    EXPECT_EQ(out.instructions, 3u);
    ASSERT_EQ(out.blocks.size(), 1u);
    // rz(q1) conjugated by cx(0,1): Z1 -> Z0 Z1.
    EXPECT_EQ(out.blocks[0].string(0).toText(), "ZZ");
    EXPECT_NEAR(out.blocks[0].theta(), 1.5, 1e-12);
    // cx; rz; cx — the second cx cancels the first in the frame.
    EXPECT_FALSE(out.residual);
}

TEST(QasmGolden, CrlfLineEndings)
{
    ParseOutcome out = parseQasmFile("crlf_line_endings.qasm");
    ASSERT_TRUE(out.error.ok()) << out.error.toText();
    EXPECT_EQ(out.numQubits, 2);
    ASSERT_EQ(out.blocks.size(), 2u);
    EXPECT_EQ(out.blocks[0].string(0).toText(), "ZI");
    EXPECT_EQ(out.blocks[1].string(0).toText(), "IX");
    EXPECT_FALSE(out.residual);
}

// ---- rejecting corpus (table-driven) -------------------------------

struct RejectCase
{
    const char *file;
    ParseErrorKind kind;
    size_t line;
    const char *needle; ///< Must appear in the message.
};

class QasmGoldenReject : public ::testing::TestWithParam<RejectCase>
{
};

TEST_P(QasmGoldenReject, TypedPositionedError)
{
    const RejectCase &c = GetParam();
    ParseOutcome out = parseQasmFile(c.file);
    EXPECT_FALSE(out.error.ok())
        << c.file << " unexpectedly parsed clean";
    EXPECT_EQ(out.error.kind, c.kind)
        << c.file << ": " << out.error.toText();
    EXPECT_EQ(out.error.line, c.line)
        << c.file << ": " << out.error.toText();
    EXPECT_GE(out.error.column, 1u);
    EXPECT_NE(out.error.message.find(c.needle), std::string::npos)
        << c.file << ": " << out.error.toText();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, QasmGoldenReject,
    ::testing::Values(
        RejectCase{"unsupported_measure.qasm",
                   ParseErrorKind::Unsupported, 6, "measure"},
        RejectCase{"unsupported_custom_gate.qasm",
                   ParseErrorKind::Unsupported, 4, "gate"},
        RejectCase{"bad_include.qasm", ParseErrorKind::Unsupported, 2,
                   "include"},
        RejectCase{"syntax_error.qasm", ParseErrorKind::Syntax, 4, ""},
        RejectCase{"semantic_bad_index.qasm", ParseErrorKind::Semantic,
                   4, "index"}),
    [](const ::testing::TestParamInfo<RejectCase> &info) {
        std::string name = info.param.file;
        for (char &ch : name)
            if (ch == '.')
                ch = '_';
        return name;
    });

// ---- scale ---------------------------------------------------------

TEST(QasmGolden, TenThousandLineProgramStreams)
{
    // 10k statements over 16 qubits, generated deterministically:
    // alternating Clifford folds and rotations so the frame stays
    // busy the whole way down.
    std::ostringstream gen;
    gen << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[16];\n";
    const int lines = 10000;
    for (int i = 0; i < lines; ++i) {
        const int q = i % 16;
        switch (i % 4) {
        case 0:
            gen << "h q[" << q << "];\n";
            break;
        case 1:
            gen << "rz(0.125) q[" << q << "];\n";
            break;
        case 2:
            gen << "cx q[" << q << "], q[" << (q + 1) % 16 << "];\n";
            break;
        default:
            gen << "rx(pi/8) q[" << q << "];\n";
            break;
        }
    }
    std::istringstream in(gen.str());
    QasmParser parser(in);
    PauliBlock b;
    uint64_t blocks = 0;
    BlockSource::Status s;
    while ((s = parser.next(b)) == BlockSource::Status::Block) {
        EXPECT_EQ(b.numQubits(), 16u);
        ++blocks;
    }
    ASSERT_EQ(s, BlockSource::Status::End)
        << parser.error().toText();
    EXPECT_EQ(parser.instructionsRead(), static_cast<uint64_t>(lines));
    // Half the statements are rotations.
    EXPECT_EQ(blocks, static_cast<uint64_t>(lines) / 2);
    EXPECT_EQ(parser.bytesRead(), gen.str().size());
}

// ---- Pauli-list format ---------------------------------------------

TEST(PauliListGolden, WeightsCommentsAndCase)
{
    std::istringstream in("# comment\n"
                          "block 0.5\n"
                          "  ZZII  -1.0   // inline comment\n"
                          "xyzi\n"
                          "block 0.25\n"
                          "IIXX 2.5\n");
    PauliListParser parser(in);
    PauliBlock b;
    ASSERT_EQ(parser.next(b), BlockSource::Status::Block);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b.string(0).toText(), "ZZII");
    EXPECT_DOUBLE_EQ(b.weight(0), -1.0);
    EXPECT_EQ(b.string(1).toText(), "XYZI");
    EXPECT_DOUBLE_EQ(b.weight(1), 1.0);
    EXPECT_DOUBLE_EQ(b.theta(), 0.5);
    ASSERT_EQ(parser.next(b), BlockSource::Status::Block);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_DOUBLE_EQ(b.weight(0), 2.5);
    EXPECT_EQ(parser.next(b), BlockSource::Status::End);
    EXPECT_EQ(parser.instructionsRead(), 3u);
}

TEST(PauliListGolden, WidthMismatchIsSemantic)
{
    std::istringstream in("block 0.5\nZZ\nZZZ\n");
    PauliListParser parser(in);
    PauliBlock b;
    EXPECT_EQ(parser.next(b), BlockSource::Status::Error);
    EXPECT_EQ(parser.error().kind, ParseErrorKind::Semantic);
    EXPECT_EQ(parser.error().line, 3u);
}

TEST(PauliListGolden, StringBeforeBlockIsSyntax)
{
    std::istringstream in("ZZII\n");
    PauliListParser parser(in);
    PauliBlock b;
    EXPECT_EQ(parser.next(b), BlockSource::Status::Error);
    EXPECT_EQ(parser.error().kind, ParseErrorKind::Syntax);
    EXPECT_EQ(parser.error().line, 1u);
}

} // namespace
} // namespace tetris
