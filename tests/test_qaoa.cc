/**
 * @file
 * QAOA tests: graph generators, cost-block construction, the Tetris
 * QAOA bridging pass, and the 2QAN proxy.
 */

#include <gtest/gtest.h>

#include "baselines/paulihedral.hh"
#include "baselines/qaoa_2qan.hh"
#include "core/qaoa_pass.hh"
#include "hardware/topologies.hh"
#include "qaoa/graph.hh"
#include "qaoa/qaoa.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

TEST(Graph, RandomWithEdgesHasExactCount)
{
    Graph g = Graph::randomWithEdges(16, 25, 7);
    EXPECT_EQ(g.numNodes(), 16);
    EXPECT_EQ(g.numEdges(), 25u);
}

TEST(Graph, RegularHasUniformDegree)
{
    Graph g = Graph::regular(16, 3, 9);
    EXPECT_EQ(g.numEdges(), 24u); // n*d/2
    for (int v = 0; v < g.numNodes(); ++v)
        EXPECT_EQ(g.degree(v), 3);
}

TEST(Graph, GeneratorsAreSeedDeterministic)
{
    Graph a = Graph::randomWithEdges(10, 12, 3);
    Graph b = Graph::randomWithEdges(10, 12, 3);
    EXPECT_EQ(a.edges(), b.edges());
    Graph c = Graph::randomWithEdges(10, 12, 4);
    EXPECT_NE(a.edges(), c.edges());
}

TEST(Graph, DensityGeneratorRespectsBounds)
{
    Graph g = Graph::randomDensity(12, 0.0, 1);
    EXPECT_EQ(g.numEdges(), 0u);
    Graph full = Graph::randomDensity(6, 1.0, 1);
    EXPECT_EQ(full.numEdges(), 15u);
}

TEST(Qaoa, BenchmarkSpecsMatchTableOne)
{
    // #Pauli = #edges; Table I: 25/31/40 random, 24/27/30 regular.
    const std::vector<size_t> expect = {25, 31, 40, 24, 27, 30};
    const auto &specs = qaoaBenchmarks();
    ASSERT_EQ(specs.size(), expect.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        Graph g = buildQaoaGraph(specs[i], 1);
        EXPECT_EQ(g.numEdges(), expect[i]) << specs[i].name;
        auto blocks = buildQaoaCostBlocks(g, 0.4);
        EXPECT_EQ(blocks.size(), expect[i]);
    }
}

TEST(Qaoa, CostBlocksAreTwoLocalZ)
{
    Graph g = Graph::regular(8, 3, 2);
    auto blocks = buildQaoaCostBlocks(g, 0.3);
    for (const auto &b : blocks) {
        EXPECT_EQ(b.size(), 1u);
        EXPECT_EQ(b.string(0).weight(), 2u);
        for (size_t q : b.string(0).support())
            EXPECT_EQ(b.string(0).op(q), PauliOp::Z);
    }
}

TEST(Qaoa, LayersHaveTableOneAccounting)
{
    // Table I #1Q = edges (RZ) + n (H) + n (RX).
    Graph g = Graph::randomWithEdges(16, 25, 11);
    Circuit init = qaoaInitialLayer(16, 16);
    Circuit mixer = qaoaMixerLayer(16, 16, 0.2);
    EXPECT_EQ(init.oneQubitCount() + mixer.oneQubitCount() +
                  g.numEdges(),
              57u);
}

TEST(QaoaPass, EquivalentWithoutReuse)
{
    Graph g = Graph::regular(6, 3, 13);
    auto blocks = buildQaoaCostBlocks(g, 0.37);
    CouplingGraph hw = lineTopology(8);
    QaoaPassOptions opts;
    opts.enableQubitReuse = false;
    CompileResult res = compileQaoaTetris(blocks, hw, opts);
    Rng rng(14);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(QaoaPass, EquivalentWithoutReuseOnHeavyHex)
{
    Graph g = Graph::randomWithEdges(7, 9, 15);
    auto blocks = buildQaoaCostBlocks(g, 0.42);
    CouplingGraph hw = heavyHexTopology(2, 5);
    QaoaPassOptions opts;
    opts.enableQubitReuse = false;
    CompileResult res = compileQaoaTetris(blocks, hw, opts);
    Rng rng(16);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
}

TEST(QaoaPass, ReuseEmitsMeasureAndReset)
{
    Graph g = Graph::regular(8, 3, 17);
    auto blocks = buildQaoaCostBlocks(g, 0.2);
    CouplingGraph hw = heavyHexTopology(2, 5);
    QaoaPassOptions opts;
    opts.enableQubitReuse = true;
    CompileResult res = compileQaoaTetris(blocks, hw, opts);
    size_t measures = 0;
    for (const auto &gate : res.circuit.gates()) {
        if (gate.kind == GateKind::MEASURE)
            ++measures;
    }
    EXPECT_GT(measures, 0u);
    EXPECT_LE(measures, 8u);
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(QaoaPass, BridgingReducesSwapCnotsOnSparseLayouts)
{
    // ZZ(0,4) on a ring-8 with only 5 logicals: the direct arc is
    // occupied but the back arc 0-7-6-5-4 is all free ancillas, so
    // bridging avoids every SWAP.
    std::vector<PauliBlock> blocks;
    PauliString s(5);
    s.setOp(0, PauliOp::Z);
    s.setOp(4, PauliOp::Z);
    blocks.push_back(PauliBlock({s}, 0.3));

    CouplingGraph hw = ringTopology(8);
    QaoaPassOptions with, without;
    with.enableQubitReuse = without.enableQubitReuse = false;
    without.enableBridging = false;
    CompileResult a = compileQaoaTetris(blocks, hw, with);
    CompileResult b = compileQaoaTetris(blocks, hw, without);
    EXPECT_EQ(a.stats.swapCount, 0u);
    EXPECT_GT(b.stats.swapCount, 0u);
    Rng rng(18);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, a, hw.numQubits(), rng));
}

TEST(Qaoa2qan, EquivalentAndCompliant)
{
    Graph g = Graph::regular(6, 3, 19);
    auto blocks = buildQaoaCostBlocks(g, 0.51);
    CouplingGraph hw = heavyHexTopology(2, 4);
    CompileResult res = compile2qanProxy(blocks, hw);
    Rng rng(20);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(Qaoa2qan, AbsorptionKeepsCnotCountBelowSwapPlusGate)
{
    // Two distant gates force movement; absorption should do better
    // than SWAP + separate gate (5 CNOTs per absorbed pair).
    Graph g = Graph::randomWithEdges(6, 8, 21);
    auto blocks = buildQaoaCostBlocks(g, 0.3);
    CouplingGraph hw = lineTopology(6);
    CompileResult res = compile2qanProxy(blocks, hw);
    Rng rng(22);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
}

TEST(QaoaComparison, TetrisNotWorseThanPaulihedralOnQaoa)
{
    Graph g = Graph::regular(10, 3, 23);
    auto blocks = buildQaoaCostBlocks(g, 0.4);
    CouplingGraph hw = heavyHexTopology(3, 5);
    CompileResult ph = compilePaulihedral(blocks, hw);
    QaoaPassOptions opts;
    CompileResult tet = compileQaoaTetris(blocks, hw, opts);
    EXPECT_LE(tet.stats.cnotCount, ph.stats.cnotCount);
}

} // namespace
} // namespace tetris
