/**
 * @file
 * Tests for the library extensions: QASM export, within-block string
 * reordering (Tetris-IR-recursive enabler), and the commuting-block
 * property that makes the reordering semantics-preserving.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "chem/uccsd.hh"
#include "circuit/qasm.hh"
#include "core/compiler.hh"
#include "core/tetris_ir.hh"
#include "hardware/topologies.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

TEST(Qasm, EmitsAllGateKinds)
{
    Circuit c(3);
    c.h(0);
    c.x(1);
    c.s(2);
    c.sdg(0);
    c.rz(1, 0.5);
    c.rx(2, -0.25);
    c.cx(0, 1);
    c.swap(1, 2);
    c.measure(0);
    c.reset(0);

    std::string qasm = toQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[3];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("x q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("sdg q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("rz(0.5) q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
    EXPECT_NE(qasm.find("swap q[1],q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[0] -> m[0];"), std::string::npos);
    EXPECT_NE(qasm.find("reset q[0];"), std::string::npos);
}

TEST(Qasm, LineCountMatchesGateCount)
{
    Circuit c(2);
    for (int i = 0; i < 10; ++i)
        c.cx(0, 1);
    std::string qasm = toQasm(c);
    size_t lines = std::count(qasm.begin(), qasm.end(), '\n');
    EXPECT_EQ(lines, 4u + 10u); // header(2) + regs(2) + gates
}

TEST(Qasm, WritesToFile)
{
    Circuit c(1);
    c.h(0);
    ASSERT_TRUE(writeQasm(c, "/tmp/tetris_test.qasm"));
    std::ifstream in("/tmp/tetris_test.qasm");
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("h q[0];"), std::string::npos);
}

TEST(Reorder, UccsdBlockStringsMutuallyCommute)
{
    // The property that makes within-block reordering sound.
    JordanWignerEncoding jw(8);
    BravyiKitaevEncoding bk(8);
    for (const FermionEncoding *enc :
         {static_cast<const FermionEncoding *>(&jw),
          static_cast<const FermionEncoding *>(&bk)}) {
        PauliBlock d = makeDoubleExcitation(*enc, 0, 3, 4, 7, 0.3);
        for (size_t i = 0; i < d.size(); ++i) {
            for (size_t j = i + 1; j < d.size(); ++j) {
                EXPECT_TRUE(d.string(i).commutesWith(d.string(j)))
                    << enc->name() << " " << i << "," << j;
            }
        }
        PauliBlock s = makeSingleExcitation(*enc, 1, 6, 0.3);
        EXPECT_TRUE(s.string(0).commutesWith(s.string(1)));
    }
}

TEST(Reorder, PreservesMultisetOfStrings)
{
    JordanWignerEncoding enc(8);
    PauliBlock b = makeDoubleExcitation(enc, 0, 3, 4, 7, 0.3);
    PauliBlock r = reorderForConsecutiveSimilarity(b);
    ASSERT_EQ(r.size(), b.size());
    std::vector<std::string> before, after;
    for (size_t i = 0; i < b.size(); ++i) {
        before.push_back(b.string(i).toText());
        after.push_back(r.string(i).toText());
    }
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
}

TEST(Reorder, WeightsFollowTheirStrings)
{
    JordanWignerEncoding enc(8);
    PauliBlock b = makeDoubleExcitation(enc, 0, 3, 4, 7, 0.3);
    PauliBlock r = reorderForConsecutiveSimilarity(b);
    for (size_t i = 0; i < r.size(); ++i) {
        // Find the string in the original block and compare weights.
        for (size_t j = 0; j < b.size(); ++j) {
            if (b.string(j) == r.string(i)) {
                EXPECT_DOUBLE_EQ(b.weight(j), r.weight(i));
            }
        }
    }
}

TEST(Reorder, ImprovesConsecutiveSimilarity)
{
    JordanWignerEncoding enc(10);
    PauliBlock b = makeDoubleExcitation(enc, 0, 5, 6, 9, 0.3);
    PauliBlock r = reorderForConsecutiveSimilarity(b);
    auto consec = [](const PauliBlock &blk) {
        std::vector<PauliBlock> one{blk};
        return maxCancelCnotBound(one);
    };
    EXPECT_GE(consec(r), consec(b));
}

TEST(Reorder, TinyBlocksPassThrough)
{
    PauliBlock b({PauliString::fromText("ZZ")}, 0.1);
    PauliBlock r = reorderForConsecutiveSimilarity(b);
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r.string(0), b.string(0));
}

TEST(Reorder, CompiledResultStaysEquivalent)
{
    // Strings of an excitation block commute, so the reordered
    // product equals the original product and the simulator check
    // (which uses the *input* order) must still pass.
    JordanWignerEncoding enc(7);
    std::vector<PauliBlock> blocks = {
        makeDoubleExcitation(enc, 0, 3, 4, 6, 0.4),
        makeDoubleExcitation(enc, 1, 3, 4, 5, 0.7),
    };
    CouplingGraph hw = heavyHexTopology(2, 5);
    TetrisOptions opts;
    opts.reorderStringsInBlock = true;
    CompileResult res = compileTetris(blocks, hw, opts);
    Rng rng(5);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
}

TEST(Reorder, NeverIncreasesCnotCountMuch)
{
    // Reordering is an optimization hint; it must not blow up the
    // result (allow small noise from scheduling interactions).
    auto blocks = buildMolecule(moleculeByName("LiH"), "bk");
    CouplingGraph hw = heavyHexTopology(3, 7);
    CompileResult base = compileTetris(blocks, hw);
    TetrisOptions opts;
    opts.reorderStringsInBlock = true;
    CompileResult reordered = compileTetris(blocks, hw, opts);
    EXPECT_LT(reordered.stats.cnotCount,
              base.stats.cnotCount + base.stats.cnotCount / 5);
}

} // namespace
} // namespace tetris
