/**
 * @file
 * Observability-plane tests: strict Prometheus text-exposition
 * parsing of /metrics (name/label grammar, monotone cumulative
 * histogram buckets ending in le="+Inf", _count == +Inf bucket,
 * counter monotonicity across two consecutive scrapes of a live
 * engine), the embedded HTTP server's endpoints (/metrics /healthz
 * /statusz, 404s, draining flip during Engine::drain), the
 * structured JSONL event log (arming, job lifecycle records,
 * size-based rotation, the warn+ logger tee), the stall watchdog
 * against an artificially slow test-only pipeline, and
 * scrape-under-load (the TSan job runs this suite).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "chem/uccsd.hh"
#include "common/histogram.hh"
#include "common/log.hh"
#include "engine/engine.hh"
#include "engine/stats.hh"
#include "hardware/topologies.hh"
#include "obs/event_log.hh"
#include "obs/obs_server.hh"
#include "obs/watchdog.hh"

namespace tetris
{
namespace
{

// ---------------------------------------------------------------
// Strict Prometheus text exposition 0.0.4 parser (test-only).
// ---------------------------------------------------------------

struct PromSample
{
    std::string name;
    std::map<std::string, std::string> labels;
    double value = 0.0;
};

struct PromDoc
{
    /** family -> counter | gauge | histogram (from # TYPE lines). */
    std::map<std::string, std::string> types;
    std::vector<PromSample> samples;
};

bool
validMetricName(const std::string &s)
{
    if (s.empty())
        return false;
    auto first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    auto rest = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) ||
               c == '_' || c == ':';
    };
    if (!first(s[0]))
        return false;
    for (size_t i = 1; i < s.size(); ++i)
        if (!rest(s[i]))
            return false;
    return true;
}

bool
validLabelName(const std::string &s)
{
    if (s.empty())
        return false;
    auto first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto rest = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    if (!first(s[0]))
        return false;
    for (size_t i = 1; i < s.size(); ++i)
        if (!rest(s[i]))
            return false;
    return true;
}

/**
 * Parse one exposition document, failing the test (via `error`) on
 * any grammar violation: bad metric/label names, malformed label
 * blocks, unparsable values, TYPE lines for already-typed families.
 */
bool
parseExposition(const std::string &body, PromDoc &doc,
                std::string &error)
{
    std::istringstream in(body);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto fail = [&](const std::string &why) {
            error = "line " + std::to_string(lineno) + ": " + why +
                    ": '" + line + "'";
            return false;
        };
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream cs(line);
            std::string hash, kind, family, type;
            cs >> hash >> kind;
            if (kind == "TYPE") {
                if (!(cs >> family >> type))
                    return fail("malformed TYPE line");
                if (!validMetricName(family))
                    return fail("bad family name in TYPE");
                if (type != "counter" && type != "gauge" &&
                    type != "histogram" && type != "summary" &&
                    type != "untyped")
                    return fail("unknown TYPE kind");
                if (doc.types.count(family))
                    return fail("duplicate TYPE for family");
                doc.types[family] = type;
            } else if (kind == "HELP") {
                if (!(cs >> family))
                    return fail("malformed HELP line");
                if (!validMetricName(family))
                    return fail("bad family name in HELP");
            }
            // Other comments are legal and ignored.
            continue;
        }
        PromSample sample;
        size_t pos = 0;
        while (pos < line.size() &&
               (std::isalnum(static_cast<unsigned char>(line[pos])) ||
                line[pos] == '_' || line[pos] == ':'))
            ++pos;
        sample.name = line.substr(0, pos);
        if (!validMetricName(sample.name))
            return fail("bad metric name");
        if (pos < line.size() && line[pos] == '{') {
            const size_t close = line.find('}', pos);
            if (close == std::string::npos)
                return fail("unterminated label block");
            std::string block = line.substr(pos + 1, close - pos - 1);
            size_t b = 0;
            while (b < block.size()) {
                const size_t eq = block.find('=', b);
                if (eq == std::string::npos)
                    return fail("label without '='");
                const std::string lname = block.substr(b, eq - b);
                if (!validLabelName(lname))
                    return fail("bad label name '" + lname + "'");
                if (eq + 1 >= block.size() || block[eq + 1] != '"')
                    return fail("label value not quoted");
                std::string lvalue;
                size_t v = eq + 2;
                bool closed = false;
                for (; v < block.size(); ++v) {
                    if (block[v] == '\\') {
                        if (v + 1 >= block.size())
                            return fail("dangling escape");
                        char esc = block[v + 1];
                        if (esc == '\\')
                            lvalue += '\\';
                        else if (esc == '"')
                            lvalue += '"';
                        else if (esc == 'n')
                            lvalue += '\n';
                        else
                            return fail("bad escape in label value");
                        ++v;
                    } else if (block[v] == '"') {
                        closed = true;
                        break;
                    } else {
                        lvalue += block[v];
                    }
                }
                if (!closed)
                    return fail("unterminated label value");
                sample.labels[lname] = lvalue;
                b = v + 1;
                if (b < block.size()) {
                    if (block[b] != ',')
                        return fail("labels not comma-separated");
                    ++b;
                }
            }
            pos = close + 1;
        }
        if (pos >= line.size() || line[pos] != ' ')
            return fail("missing space before value");
        const std::string value_str = line.substr(pos + 1);
        if (value_str.empty())
            return fail("missing value");
        if (value_str == "+Inf") {
            sample.value = std::numeric_limits<double>::infinity();
        } else {
            char *end = nullptr;
            sample.value = std::strtod(value_str.c_str(), &end);
            if (end == value_str.c_str() || *end != '\0')
                return fail("unparsable value '" + value_str + "'");
        }
        doc.samples.push_back(std::move(sample));
    }
    return true;
}

/** Family of a sample name (strips histogram suffixes). */
std::string
familyOf(const PromSample &s, const PromDoc &doc)
{
    for (const char *suffix : {"_bucket", "_sum", "_count"}) {
        const std::string suf(suffix);
        if (s.name.size() > suf.size() &&
            s.name.compare(s.name.size() - suf.size(), suf.size(),
                           suf) == 0) {
            const std::string base =
                s.name.substr(0, s.name.size() - suf.size());
            auto it = doc.types.find(base);
            if (it != doc.types.end() && it->second == "histogram")
                return base;
        }
    }
    return s.name;
}

std::string
sampleKey(const PromSample &s)
{
    std::string key = s.name;
    for (const auto &[k, v] : s.labels)
        key += "|" + k + "=" + v;
    return key;
}

/**
 * Assert every histogram family's contract: cumulative buckets in
 * ascending le order, monotone non-decreasing, ending in le="+Inf",
 * with _count equal to the +Inf bucket and a _sum present.
 */
void
checkHistograms(const PromDoc &doc)
{
    for (const auto &[family, type] : doc.types) {
        if (type != "histogram")
            continue;
        double last_le = -1.0;
        double last_cum = -1.0;
        double inf_value = -1.0;
        bool saw_inf = false, saw_sum = false, saw_count = false;
        double count_value = -1.0;
        size_t buckets = 0;
        for (const auto &s : doc.samples) {
            if (s.name == family + "_bucket") {
                ++buckets;
                auto le = s.labels.find("le");
                ASSERT_NE(le, s.labels.end())
                    << family << " bucket without le";
                EXPECT_FALSE(saw_inf)
                    << family << ": bucket after le=\"+Inf\"";
                double le_val;
                if (le->second == "+Inf") {
                    saw_inf = true;
                    inf_value = s.value;
                    le_val = std::numeric_limits<double>::infinity();
                } else {
                    le_val = std::stod(le->second);
                }
                EXPECT_GT(le_val, last_le)
                    << family << ": le not strictly ascending";
                last_le = le_val;
                EXPECT_GE(s.value, last_cum)
                    << family << ": cumulative bucket decreased";
                last_cum = s.value;
            } else if (s.name == family + "_sum") {
                saw_sum = true;
            } else if (s.name == family + "_count") {
                saw_count = true;
                count_value = s.value;
            }
        }
        ASSERT_GT(buckets, 0u) << family << ": no buckets";
        EXPECT_TRUE(saw_inf) << family << ": missing le=\"+Inf\"";
        EXPECT_TRUE(saw_sum) << family << ": missing _sum";
        ASSERT_TRUE(saw_count) << family << ": missing _count";
        EXPECT_EQ(count_value, inf_value)
            << family << ": _count != +Inf bucket";
    }
}

// ---------------------------------------------------------------
// Fixtures and helpers.
// ---------------------------------------------------------------

std::vector<CompileJob>
smallJobs(int count = 4)
{
    auto hw = std::make_shared<const CouplingGraph>(gridTopology(3, 3));
    std::vector<CompileJob> jobs;
    for (int i = 0; i < count; ++i) {
        CompileJob job;
        job.name = "obs" + std::to_string(i);
        job.blocks = buildSyntheticUcc(6, 100 + i);
        job.hw = hw;
        jobs.push_back(std::move(job));
    }
    return jobs;
}

/** Test-only pipeline: sleeps, then returns an empty result. */
class SlowPipeline : public Pipeline
{
  public:
    explicit SlowPipeline(int sleep_ms) : sleepMs_(sleep_ms) {}

    const std::string &name() const override
    {
        static const std::string n = "slow-test";
        return n;
    }

    CompileResult run(const std::vector<PauliBlock> &,
                      const CouplingGraph &) const override
    {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(sleepMs_));
        return CompileResult{};
    }

    uint64_t optionsHash() const override
    {
        return 0x510bull + static_cast<uint64_t>(sleepMs_);
    }

  private:
    int sleepMs_;
};

CompileJob
slowJob(const std::string &name, int sleep_ms)
{
    CompileJob job;
    job.name = name;
    job.blocks = buildSyntheticUcc(4, 7);
    job.hw = std::make_shared<const CouplingGraph>(gridTopology(2, 2));
    job.pipeline = std::make_shared<SlowPipeline>(sleep_ms);
    return job;
}

std::string
tempPath(const std::string &tag)
{
    return testing::TempDir() + "tetris_obs_" + tag + "_" +
           std::to_string(::getpid()) + ".jsonl";
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

bool
anyLineContains(const std::vector<std::string> &lines,
                const std::string &needle)
{
    for (const auto &l : lines)
        if (l.find(needle) != std::string::npos)
            return true;
    return false;
}

// ---------------------------------------------------------------
// Exposition format.
// ---------------------------------------------------------------

TEST(ObsExposition, StrictGrammarOnLiveEngine)
{
    Engine engine;
    engine.compileAll(smallJobs());
    const std::string body = formatStatsSnapshot(engine);

    PromDoc doc;
    std::string error;
    ASSERT_TRUE(parseExposition(body, doc, error)) << error;
    ASSERT_FALSE(doc.samples.empty());

    // Every sample belongs to a TYPE'd family.
    for (const auto &s : doc.samples) {
        EXPECT_TRUE(doc.types.count(familyOf(s, doc)))
            << "sample without TYPE: " << s.name;
    }
    checkHistograms(doc);

    // The headline families are present with the expected kinds.
    EXPECT_EQ(doc.types["tetris_jobs_submitted"], "counter");
    EXPECT_EQ(doc.types["tetris_jobs_in_flight"], "gauge");
    EXPECT_EQ(doc.types["tetris_draining"], "gauge");
    EXPECT_EQ(doc.types["tetris_count"], "counter");
    EXPECT_EQ(doc.types["tetris_job_latency_ns"], "histogram");
}

TEST(ObsExposition, HistogramAgreesBucketForBucketWithRegistry)
{
    Engine engine;
    engine.compileAll(smallJobs());
    const std::string body = formatStatsSnapshot(engine);

    PromDoc doc;
    std::string error;
    ASSERT_TRUE(parseExposition(body, doc, error)) << error;

    // Rebuild the expected cumulative series from the registry's raw
    // buckets — the same array MetricsRegistry::writeJson() emits
    // into BENCH_*.json — and demand exact agreement.
    const Histogram &hist = engine.metrics().histogram("job.latency_ns");
    std::vector<std::pair<double, double>> expected; // (le, cum)
    uint64_t cum = 0;
    for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
        const uint64_t n = hist.bucketCount(i);
        if (n == 0)
            continue;
        cum += n;
        expected.emplace_back(
            static_cast<double>(Histogram::bucketUpperBound(i)),
            static_cast<double>(cum));
    }
    expected.emplace_back(std::numeric_limits<double>::infinity(),
                          static_cast<double>(hist.count()));

    std::vector<std::pair<double, double>> actual;
    for (const auto &s : doc.samples) {
        if (s.name != "tetris_job_latency_ns_bucket")
            continue;
        const std::string &le = s.labels.at("le");
        actual.emplace_back(
            le == "+Inf" ? std::numeric_limits<double>::infinity()
                         : std::stod(le),
            s.value);
    }
    EXPECT_EQ(actual, expected);
}

TEST(ObsExposition, LabelValuesEscaped)
{
    Engine engine;
    engine.metrics().addCount("weird\"na\\me\nx", 3);
    PromDoc doc;
    std::string error;
    ASSERT_TRUE(parseExposition(formatStatsSnapshot(engine), doc,
                                error))
        << error;
    bool found = false;
    for (const auto &s : doc.samples) {
        if (s.name == "tetris_count" && s.labels.count("name") &&
            s.labels.at("name") == "weird\"na\\me\nx") {
            found = true;
            EXPECT_EQ(s.value, 3.0);
        }
    }
    EXPECT_TRUE(found) << "escaped label value did not round-trip";
}

// ---------------------------------------------------------------
// HTTP server.
// ---------------------------------------------------------------

TEST(ObsServerTest, ServesMetricsHealthzStatusz)
{
    EngineOptions opts;
    opts.obsServer = "127.0.0.1:0";
    Engine engine(opts);
    ASSERT_GT(engine.obsPort(), 0);
    engine.compileAll(smallJobs());

    int status = 0;
    const std::string metrics =
        obsHttpGet(engine.obsPort(), "/metrics", &status);
    ASSERT_EQ(status, 200);
    PromDoc doc;
    std::string error;
    ASSERT_TRUE(parseExposition(metrics, doc, error)) << error;
    checkHistograms(doc);

    const std::string health =
        obsHttpGet(engine.obsPort(), "/healthz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos)
        << health;
    EXPECT_NE(health.find("\"draining\":false"), std::string::npos);

    const std::string statusz =
        obsHttpGet(engine.obsPort(), "/statusz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(statusz.find("tetris engine status"), std::string::npos);
    EXPECT_NE(statusz.find("slowest recent jobs"), std::string::npos);
    EXPECT_NE(statusz.find("obs0"), std::string::npos)
        << "statusz lists no recent job names:\n"
        << statusz;

    EXPECT_EQ(obsHttpGet(engine.obsPort(), "/nope", &status), std::string("try /metrics, /healthz, or /statusz\n"));
    EXPECT_EQ(status, 404);
}

TEST(ObsServerTest, CountersMonotoneAcrossConsecutiveScrapes)
{
    EngineOptions opts;
    opts.obsServer = "127.0.0.1:0";
    Engine engine(opts);
    engine.compileAll(smallJobs(3));

    int status = 0;
    PromDoc first, second;
    std::string error;
    ASSERT_TRUE(parseExposition(
        obsHttpGet(engine.obsPort(), "/metrics", &status), first,
        error))
        << error;
    ASSERT_EQ(status, 200);

    // More work between the scrapes: counters may only grow.
    auto more = smallJobs(6);
    for (auto &job : more)
        job.name += "/second";
    engine.compileAll(std::move(more));

    ASSERT_TRUE(parseExposition(
        obsHttpGet(engine.obsPort(), "/metrics", &status), second,
        error))
        << error;
    ASSERT_EQ(status, 200);

    std::map<std::string, double> before;
    for (const auto &s : first.samples)
        if (first.types[familyOf(s, first)] == "counter")
            before[sampleKey(s)] = s.value;
    size_t compared = 0;
    for (const auto &s : second.samples) {
        if (second.types[familyOf(s, second)] != "counter")
            continue;
        auto it = before.find(sampleKey(s));
        if (it == before.end())
            continue;
        ++compared;
        EXPECT_GE(s.value, it->second)
            << "counter went backwards: " << sampleKey(s);
    }
    EXPECT_GT(compared, 5u);
}

TEST(ObsServerTest, HealthzFlipsToDrainingDuringDrain)
{
    EngineOptions opts;
    opts.obsServer = "127.0.0.1:0";
    Engine engine(opts);
    ASSERT_GT(engine.obsPort(), 0);
    engine.submit(slowJob("drainer", 400));

    std::thread draining([&engine] { engine.drain(); });
    bool saw_draining = false;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
        int status = 0;
        const std::string health =
            obsHttpGet(engine.obsPort(), "/healthz", &status);
        if (status == 200 &&
            health.find("\"status\":\"draining\"") !=
                std::string::npos) {
            saw_draining = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    draining.join();
    EXPECT_TRUE(saw_draining)
        << "/healthz never reported draining during Engine::drain";

    int status = 0;
    const std::string health =
        obsHttpGet(engine.obsPort(), "/healthz", &status);
    EXPECT_EQ(status, 200);
    EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
}

TEST(ObsServerTest, InvalidAddressRefusedWithoutServer)
{
    EngineOptions opts;
    opts.obsServer = "not an address";
    Engine engine(opts);
    EXPECT_EQ(engine.obsPort(), 0);
    // The engine still works without its scrape server.
    auto results = engine.compileAll(smallJobs(1));
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0]->cancelled);
}

TEST(ObsServerTest, ScrapeUnderLoad)
{
    EngineOptions opts;
    opts.obsServer = "127.0.0.1:0";
    Engine engine(opts);
    ASSERT_GT(engine.obsPort(), 0);

    std::atomic<bool> stop{false};
    std::atomic<int> ok_scrapes{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 3; ++t) {
        scrapers.emplace_back([&, t] {
            const char *path = t == 0   ? "/metrics"
                               : t == 1 ? "/statusz"
                                        : "/healthz";
            while (!stop.load()) {
                int status = 0;
                obsHttpGet(engine.obsPort(), path, &status);
                if (status == 200)
                    ok_scrapes.fetch_add(1);
            }
        });
    }
    engine.compileAll(smallJobs(8));
    stop.store(true);
    for (auto &t : scrapers)
        t.join();
    EXPECT_GT(ok_scrapes.load(), 0);

    // A final scrape must still parse strictly after the burst.
    int status = 0;
    PromDoc doc;
    std::string error;
    ASSERT_TRUE(parseExposition(
        obsHttpGet(engine.obsPort(), "/metrics", &status), doc, error))
        << error;
    checkHistograms(doc);
}

// ---------------------------------------------------------------
// Event log.
// ---------------------------------------------------------------

TEST(EventLogTest, EngineEmitsJobLifecycleRecords)
{
    const std::string path = tempPath("lifecycle");
    std::remove(path.c_str());
    EventLog log;
    ASSERT_TRUE(log.arm(path));

    {
        EngineOptions opts;
        opts.eventLog = &log;
        Engine engine(opts);
        engine.compileAll(smallJobs(2));
    }
    {
        EngineOptions opts;
        opts.eventLog = &log;
        Engine engine(opts);
        engine.cancelPending();
        engine.compileAll(smallJobs(2));
    }
    log.close();

    const auto lines = readLines(path);
    ASSERT_FALSE(lines.empty());
    for (const auto &line : lines) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
        EXPECT_NE(line.find("\"event\":"), std::string::npos);
    }
    EXPECT_TRUE(anyLineContains(lines, "\"event\":\"job.start\""));
    EXPECT_TRUE(anyLineContains(lines, "\"event\":\"job.finish\""));
    EXPECT_TRUE(anyLineContains(lines, "\"outcome\":\"compiled\""));
    EXPECT_TRUE(anyLineContains(lines, "\"event\":\"job.cancel\""));
    std::remove(path.c_str());
}

TEST(EventLogTest, RotatesAtSizeBudget)
{
    const std::string path = tempPath("rotate");
    const std::string old = path + ".1";
    std::remove(path.c_str());
    std::remove(old.c_str());

    EventLog log;
    ASSERT_TRUE(log.arm(path, 4096));
    for (int i = 0; i < 200; ++i) {
        log.record("filler",
                   {EventLog::Field::u64("i", static_cast<uint64_t>(i)),
                    EventLog::Field::str(
                        "pad", std::string(64, 'x'))});
    }
    EXPECT_GE(log.rotationCount(), 1u);
    log.close();

    // Both generations exist, and every surviving line is intact
    // JSON (rotation must never tear a record).
    for (const std::string &p : {path, old}) {
        const auto lines = readLines(p);
        ASSERT_FALSE(lines.empty()) << p;
        for (const auto &line : lines) {
            EXPECT_EQ(line.front(), '{') << p;
            EXPECT_EQ(line.back(), '}') << p;
        }
    }
    std::remove(path.c_str());
    std::remove(old.c_str());
}

TEST(EventLogTest, DisabledRecordIsANoOp)
{
    EventLog log;
    EXPECT_FALSE(log.enabled());
    log.record("ignored", {EventLog::Field::u64("x", 1)});
    EXPECT_EQ(log.recordCount(), 0u);
}

TEST(EventLogTest, LogTeeMirrorsWarnLines)
{
    const std::string path = tempPath("tee");
    std::remove(path.c_str());
    EventLog log;
    ASSERT_TRUE(log.arm(path));
    installLogTee(log);
    logWarn("tee probe: disk cache exploded");
    logInfo("tee probe: info is below the tee threshold");
    clearLogTee();
    logWarn("tee probe: after clear");
    log.close();

    const auto lines = readLines(path);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("\"event\":\"log\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"level\":\"warn\""), std::string::npos);
    EXPECT_NE(lines[0].find("disk cache exploded"), std::string::npos);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Stall watchdog.
// ---------------------------------------------------------------

TEST(WatchdogTest, FlagsStalledJobAndSweepStillCompletes)
{
    const std::string path = tempPath("stall");
    std::remove(path.c_str());
    EventLog log;
    ASSERT_TRUE(log.arm(path));

    EngineOptions opts;
    opts.stallMs = 50;
    opts.eventLog = &log;
    Engine engine(opts);

    std::vector<CompileJob> jobs;
    jobs.push_back(slowJob("stall/slow", 400));
    auto quick = smallJobs(2);
    jobs.insert(jobs.end(), quick.begin(), quick.end());
    auto results = engine.compileAll(std::move(jobs));

    ASSERT_EQ(results.size(), 3u);
    for (const auto &r : results)
        EXPECT_FALSE(r->cancelled);
    EXPECT_GE(engine.metrics().count("jobs.stalled"), 1u);

    log.close();
    const auto lines = readLines(path);
    EXPECT_TRUE(anyLineContains(lines, "\"event\":\"stall\""));
    EXPECT_TRUE(anyLineContains(lines, "\"job\":\"stall/slow\""));
    EXPECT_TRUE(anyLineContains(lines, "\"stage\":\"compile\""));
    std::remove(path.c_str());
}

TEST(WatchdogTest, FastJobsAreNeverFlagged)
{
    EngineOptions opts;
    opts.stallMs = 60000;
    Engine engine(opts);
    engine.compileAll(smallJobs(3));
    EXPECT_EQ(engine.metrics().count("jobs.stalled"), 0u);
}

TEST(WatchdogTest, StallMsFromEnvIsStrict)
{
    const char *saved = std::getenv("TETRIS_STALL_MS");
    std::string saved_copy = saved ? saved : "";

    ::setenv("TETRIS_STALL_MS", "250", 1);
    EXPECT_EQ(StallWatchdog::stallMsFromEnv(), 250u);
    ::setenv("TETRIS_STALL_MS", "0", 1);
    EXPECT_EQ(StallWatchdog::stallMsFromEnv(), 0u);
    ::setenv("TETRIS_STALL_MS", "12abc", 1);
    EXPECT_EQ(StallWatchdog::stallMsFromEnv(), 0u);
    ::setenv("TETRIS_STALL_MS", "-5", 1);
    EXPECT_EQ(StallWatchdog::stallMsFromEnv(), 0u);
    ::unsetenv("TETRIS_STALL_MS");
    EXPECT_EQ(StallWatchdog::stallMsFromEnv(), 0u);

    if (saved)
        ::setenv("TETRIS_STALL_MS", saved_copy.c_str(), 1);
}

// ---------------------------------------------------------------
// Stats summary.
// ---------------------------------------------------------------

TEST(StatsSummaryTest, FormatSummaryCarriesTheHeadlineNumbers)
{
    Engine engine;
    auto jobs = smallJobs(2);
    // Duplicate submissions so the cache sees hits.
    auto dup = smallJobs(2);
    jobs.insert(jobs.end(), dup.begin(), dup.end());
    engine.compileAll(std::move(jobs));

    const std::string line =
        StatsReporter::formatSummary(engine, 2.0);
    EXPECT_NE(line.find("stats: summary: 4/4 jobs in 2.00s"),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("jobs/s"), std::string::npos);
    EXPECT_NE(line.find("p50"), std::string::npos);
    EXPECT_NE(line.find("p99"), std::string::npos);
    EXPECT_NE(line.find("cache 2/4 hits (50.0%)"), std::string::npos)
        << line;
}

TEST(StatsSummaryTest, SummaryFromEnv)
{
    ::setenv("TETRIS_STATS_SUMMARY", "1", 1);
    EXPECT_TRUE(StatsReporter::summaryFromEnv());
    ::setenv("TETRIS_STATS_SUMMARY", "0", 1);
    EXPECT_FALSE(StatsReporter::summaryFromEnv());
    ::unsetenv("TETRIS_STATS_SUMMARY");
    EXPECT_FALSE(StatsReporter::summaryFromEnv());
}

TEST(StatsSummaryTest, ReporterPrintsSummaryOnceWithoutThread)
{
    Engine engine;
    engine.compileAll(smallJobs(1));
    StatsReporter reporter(engine, 0.0, /*summary=*/true);
    EXPECT_FALSE(reporter.active());
    reporter.stop(); // prints the summary to stderr
    reporter.stop(); // idempotent: must not print twice or crash
}

} // namespace
} // namespace tetris
