/**
 * @file
 * Simulator tests: gate semantics, Pauli application, analytic
 * exponentials, and the chain-synthesis basis conventions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/naive.hh"
#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "sim/noise.hh"
#include "sim/statevector.hh"

namespace tetris
{
namespace
{

constexpr double kTol = 1e-10;

TEST(Statevector, StartsInAllZeros)
{
    Statevector sv(3);
    EXPECT_NEAR(sv.probAllZero(), 1.0, kTol);
    EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(Statevector, HadamardCreatesUniform)
{
    Statevector sv(1);
    sv.apply(Gate::h(0));
    EXPECT_NEAR(std::norm(sv.amplitudes()[0]), 0.5, kTol);
    EXPECT_NEAR(std::norm(sv.amplitudes()[1]), 0.5, kTol);
    sv.apply(Gate::h(0));
    EXPECT_NEAR(sv.probAllZero(), 1.0, kTol);
}

TEST(Statevector, XFlipsBit)
{
    Statevector sv(2);
    sv.apply(Gate::x(1));
    EXPECT_NEAR(std::norm(sv.amplitudes()[2]), 1.0, kTol);
}

TEST(Statevector, CxControlsOnQ0)
{
    Statevector sv(2);
    sv.apply(Gate::x(0));
    sv.apply(Gate::cx(0, 1));
    EXPECT_NEAR(std::norm(sv.amplitudes()[3]), 1.0, kTol);
}

TEST(Statevector, SwapExchangesWires)
{
    Statevector sv(2);
    sv.apply(Gate::x(0));
    sv.apply(Gate::swap(0, 1));
    EXPECT_NEAR(std::norm(sv.amplitudes()[2]), 1.0, kTol);
}

TEST(Statevector, SPhaseOnOne)
{
    Statevector sv(1);
    sv.apply(Gate::x(0));
    sv.apply(Gate::s(0));
    EXPECT_NEAR(sv.amplitudes()[1].imag(), 1.0, kTol);
    sv.apply(Gate::sdg(0));
    EXPECT_NEAR(sv.amplitudes()[1].real(), 1.0, kTol);
}

TEST(Statevector, ResetProjectsToZero)
{
    Statevector sv(1);
    // |0> is untouched by reset.
    sv.apply(Gate::reset(0));
    EXPECT_NEAR(sv.probAllZero(), 1.0, kTol);
}

TEST(Statevector, ApplyPauliMatchesGateDecomposition)
{
    Rng rng(11);
    for (const char *text : {"X", "Y", "Z", "XY", "ZY", "XYZ", "IYXZ"}) {
        PauliString p = PauliString::fromText(text);
        int n = static_cast<int>(p.numQubits());
        Statevector a = Statevector::random(n, rng);
        Statevector b = a;

        a.applyPauli(p);

        // Decompose each operator via gates: X; Z = HXH is awkward, so
        // use Y = S X S^dag . Z (phase) checked through H conjugation.
        for (size_t q = 0; q < p.numQubits(); ++q) {
            switch (p.op(q)) {
              case PauliOp::X:
                b.apply(Gate::x(static_cast<int>(q)));
                break;
              case PauliOp::Y:
                b.apply(Gate::sdg(static_cast<int>(q)));
                b.apply(Gate::x(static_cast<int>(q)));
                b.apply(Gate::s(static_cast<int>(q)));
                break;
              case PauliOp::Z:
                b.apply(Gate::h(static_cast<int>(q)));
                b.apply(Gate::x(static_cast<int>(q)));
                b.apply(Gate::h(static_cast<int>(q)));
                break;
              case PauliOp::I:
                break;
            }
        }
        EXPECT_NEAR(a.overlapWith(b), 1.0, 1e-9) << text;
    }
}

TEST(Statevector, PauliExpMatchesRZForZ)
{
    Rng rng(5);
    Statevector a = Statevector::random(1, rng);
    Statevector b = a;
    a.applyPauliExp(PauliString::fromText("Z"), 0.7);
    b.apply(Gate::rz(0, 0.7));
    EXPECT_NEAR(a.overlapWith(b), 1.0, 1e-9);
}

TEST(Statevector, PauliExpMatchesRXForX)
{
    Rng rng(6);
    Statevector a = Statevector::random(1, rng);
    Statevector b = a;
    a.applyPauliExp(PauliString::fromText("X"), 0.9);
    b.apply(Gate::rx(0, 0.9));
    EXPECT_NEAR(a.overlapWith(b), 1.0, 1e-9);
}

TEST(Statevector, PauliExpIsPeriodicIn4Pi)
{
    Rng rng(7);
    Statevector a = Statevector::random(2, rng);
    Statevector b = a;
    a.applyPauliExp(PauliString::fromText("XZ"), 0.3);
    b.applyPauliExp(PauliString::fromText("XZ"),
                    0.3 + 4.0 * M_PI);
    EXPECT_NEAR(a.overlapWith(b), 1.0, 1e-9);
}

/**
 * The decisive convention test: the chain synthesis (H / Sdg-H basis
 * wrapping, CNOT ladder, RZ on the last active qubit) must equal the
 * analytic exp(-i theta/2 P) for arbitrary strings.
 */
class ChainSynthesis : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ChainSynthesis, MatchesAnalyticExponential)
{
    PauliString p = PauliString::fromText(GetParam());
    int n = static_cast<int>(p.numQubits());
    Rng rng(42);
    Statevector a = Statevector::random(n, rng);
    Statevector b = a;

    Circuit c(n);
    emitChainString(c, p, 0.61);
    a.applyCircuit(c);
    b.applyPauliExp(p, 0.61);
    EXPECT_NEAR(a.overlapWith(b), 1.0, 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Strings, ChainSynthesis,
    ::testing::Values("Z", "X", "Y", "ZZ", "XX", "YY", "XY", "ZY",
                      "XZY", "YZX", "ZZZZ", "XZZY", "IYZXI", "XXYZI",
                      "YZZZY", "XZZZX", "IXIYIZ"));

TEST(Noise, EspMatchesClosedForm)
{
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    c.swap(0, 1); // 3 CNOTs
    NoiseModel nm;
    double esp = estimatedSuccessProbability(c, nm);
    double expect = std::pow(1 - nm.p1, 1) * std::pow(1 - nm.p2, 5);
    EXPECT_NEAR(esp, expect, 1e-12);
    EXPECT_NEAR(echoFidelity(c, nm), expect * expect, 1e-12);
}

TEST(Noise, MonteCarloConvergesToAnalytic)
{
    Circuit c(2);
    for (int i = 0; i < 50; ++i)
        c.cx(0, 1);
    NoiseModel nm;
    Rng rng(3);
    double mc = echoFidelityMonteCarlo(c, nm, rng, 20000);
    EXPECT_NEAR(mc, echoFidelity(c, nm), 0.02);
}

TEST(Noise, MoreCnotsMeanLowerFidelity)
{
    Circuit small(2), big(2);
    for (int i = 0; i < 10; ++i)
        small.cx(0, 1);
    for (int i = 0; i < 100; ++i)
        big.cx(0, 1);
    NoiseModel nm;
    EXPECT_GT(echoFidelity(small, nm), echoFidelity(big, nm));
}

} // namespace
} // namespace tetris
