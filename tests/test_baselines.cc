/**
 * @file
 * Baseline compiler tests: Paulihedral, max-cancel, the T|Ket> and
 * PCOAST proxies -- functional equivalence, compliance, and the
 * comparative invariants the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

std::vector<PauliBlock>
smallWorkload(int num_qubits, int num_blocks, uint64_t seed)
{
    Rng rng(seed);
    JordanWignerEncoding enc(num_qubits);
    std::vector<PauliBlock> blocks;
    for (int i = 0; i < num_blocks; ++i) {
        auto picks = rng.sampleIndices(num_qubits, 4);
        std::vector<int> m(picks.begin(), picks.end());
        std::sort(m.begin(), m.end());
        blocks.push_back(makeDoubleExcitation(enc, m[0], m[1], m[2],
                                              m[3],
                                              rng.uniform(0.1, 1.0)));
    }
    return blocks;
}

TEST(Paulihedral, EquivalenceAndCompliance)
{
    auto blocks = smallWorkload(6, 4, 31);
    CouplingGraph hw = heavyHexTopology(2, 5);
    CompileResult res = compilePaulihedral(blocks, hw);
    Rng rng(32);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(Paulihedral, WithoutPeepholeStillCorrect)
{
    auto blocks = smallWorkload(5, 3, 33);
    CouplingGraph hw = lineTopology(6);
    PaulihedralOptions opts;
    opts.runPeephole = false;
    CompileResult res = compilePaulihedral(blocks, hw, opts);
    Rng rng(34);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
}

TEST(Paulihedral, PeepholeCancelsOneQubitGates)
{
    // Identical adjacent blocks guarantee basis-gate cancellation.
    JordanWignerEncoding enc(6);
    std::vector<PauliBlock> blocks;
    blocks.push_back(makeDoubleExcitation(enc, 0, 1, 4, 5, 0.3));
    blocks.push_back(makeDoubleExcitation(enc, 0, 1, 4, 5, 0.7));
    CouplingGraph hw = lineTopology(6);
    PaulihedralOptions with, without;
    without.runPeephole = false;
    CompileResult a = compilePaulihedral(blocks, hw, with);
    CompileResult b = compilePaulihedral(blocks, hw, without);
    EXPECT_LT(a.stats.oneQubitCount, b.stats.oneQubitCount);
    EXPECT_LE(a.stats.cnotCount, b.stats.cnotCount);
}

TEST(MaxCancel, LogicalCircuitIsEquivalent)
{
    auto blocks = smallWorkload(6, 4, 35);
    Circuit logical = synthesizeMaxCancelLogical(blocks);
    CompileResult fake;
    fake.circuit = logical;
    fake.finalLayout = Layout(6, 6);
    Rng rng(36);
    EXPECT_TRUE(test::checkCompiledEquivalence(blocks, fake, 6, rng));
}

TEST(MaxCancel, AchievesClosedFormCancellation)
{
    // Single-leaf-tree: per block of s strings over common size L,
    // emitted = naive - 2*(L-1)*(s-1). JW puts Z chains inside the
    // excitation pairs, so (0,5)(6,9) gives chains {1..4} + {7,8}.
    JordanWignerEncoding enc(10);
    PauliBlock b = makeDoubleExcitation(enc, 0, 5, 6, 9, 0.3);
    std::vector<PauliBlock> blocks{b};
    size_t cx = 0;
    synthesizeMaxCancelLogical(blocks, &cx);
    size_t L = b.commonQubits().size();
    ASSERT_EQ(L, 6u);
    EXPECT_EQ(cx, naiveCnotCount(blocks) - 2 * (L - 1) * (8 - 1));
}

TEST(MaxCancel, RoutedResultIsEquivalentAndCompliant)
{
    auto blocks = smallWorkload(6, 3, 37);
    CouplingGraph hw = heavyHexTopology(2, 5);
    CompileResult res = compileMaxCancel(blocks, hw);
    Rng rng(38);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(PcoastProxy, EquivalentAndCompliant)
{
    auto blocks = smallWorkload(6, 3, 39);
    CouplingGraph hw = heavyHexTopology(2, 5);
    CompileResult res = compilePcoastProxy(blocks, hw);
    Rng rng(40);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
}

TEST(TketProxy, BothFlavorsEquivalentAndCompliant)
{
    auto blocks = smallWorkload(6, 3, 41);
    CouplingGraph hw = heavyHexTopology(2, 5);
    for (auto flavor : {TketFlavor::O2, TketFlavor::QiskitO3}) {
        CompileResult res = compileTketProxy(blocks, hw, flavor);
        Rng rng(42);
        EXPECT_TRUE(test::checkCompiledEquivalence(blocks, res,
                                                   hw.numQubits(), rng));
        EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
    }
}

TEST(Baselines, CancellationOrderingHolds)
{
    // The paper's Fig. 17 invariant on the logical circuit: PH
    // cancels least, Tetris sits between PH and max-cancel.
    JordanWignerEncoding enc(10);
    std::vector<PauliBlock> blocks;
    for (int a = 0; a < 2; ++a) {
        for (int r = 8; r < 10; ++r) {
            blocks.push_back(
                makeDoubleExcitation(enc, a, a + 4, 5, r, 0.4));
        }
    }
    CouplingGraph hw = lineTopology(10);

    CompileResult ph = compilePaulihedral(blocks, hw);
    CompileResult tet = compileTetris(blocks, hw);
    size_t max_cx = 0;
    synthesizeMaxCancelLogical(blocks, &max_cx);

    // max-cancel logical CNOTs <= Tetris logical CNOTs is the upper
    // bound on cancellation; PH should cancel no more than Tetris.
    EXPECT_LE(max_cx, naiveCnotCount(blocks));
    EXPECT_LE(tet.stats.logicalCnots, ph.stats.logicalCnots);
}

TEST(Baselines, TetrisBeatsPaulihedralOnChainHeavyWorkload)
{
    // Z-chain-heavy doubles (the molecule regime): total CNOTs.
    JordanWignerEncoding enc(12);
    std::vector<PauliBlock> blocks;
    Rng rng(43);
    for (int i = 0; i < 12; ++i) {
        int p = rng.uniformInt(0, 2);
        int q = rng.uniformInt(3, 5);
        int r = rng.uniformInt(8, 9);
        int s = rng.uniformInt(10, 11);
        blocks.push_back(
            makeDoubleExcitation(enc, p, q, r, s, rng.uniform(0.1, 1.0)));
    }
    CouplingGraph hw = heavyHexTopology(3, 5);
    CompileResult ph = compilePaulihedral(blocks, hw);
    CompileResult tet = compileTetris(blocks, hw);
    EXPECT_LT(tet.stats.cnotCount, ph.stats.cnotCount);
}

TEST(Naive, LogicalCircuitMatchesTableOneAccounting)
{
    auto blocks = smallWorkload(6, 4, 45);
    Circuit logical = synthesizeNaiveLogical(blocks);
    EXPECT_EQ(logical.cnotCount(), naiveCnotCount(blocks));
    // Emitted 1Q gates: 2 per X (H...H), 4 per Y (Sdg H ... H S),
    // one RZ per string. Table I's #1Q merges the Y basis change
    // into one u-gate per side, hence naiveOneQubitCount differs.
    size_t expect = 0;
    for (const auto &b : blocks) {
        for (const auto &s : b.strings()) {
            ++expect; // RZ
            for (size_t q = 0; q < s.numQubits(); ++q) {
                if (s.op(q) == PauliOp::X)
                    expect += 2;
                else if (s.op(q) == PauliOp::Y)
                    expect += 4;
            }
        }
    }
    EXPECT_EQ(logical.oneQubitCount(), expect);
}

} // namespace
} // namespace tetris
