/**
 * @file
 * Unit tests for the Pauli algebra substrate: operator products with
 * phases, string algebra, sums, and block root/leaf decomposition —
 * plus the randomized differential suite that pins the packed
 * bit-plane kernels to the byte-per-qubit reference in pauli_ref.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "circuit/gate.hh"
#include "common/rng.hh"
#include "pauli/pauli_block.hh"
#include "pauli/pauli_op.hh"
#include "pauli/pauli_ref.hh"
#include "pauli/pauli_string.hh"
#include "pauli/pauli_sum.hh"
#include "verify/pauli_frame.hh"

namespace tetris
{
namespace
{

using P = PauliOp;

TEST(PauliOp, IdentityIsNeutral)
{
    for (P a : {P::I, P::X, P::Y, P::Z}) {
        auto r1 = mulPauli(P::I, a);
        EXPECT_EQ(r1.op, a);
        EXPECT_EQ(r1.phaseExp, 0);
        auto r2 = mulPauli(a, P::I);
        EXPECT_EQ(r2.op, a);
        EXPECT_EQ(r2.phaseExp, 0);
    }
}

TEST(PauliOp, SelfProductIsIdentity)
{
    for (P a : {P::X, P::Y, P::Z}) {
        auto r = mulPauli(a, a);
        EXPECT_EQ(r.op, P::I);
        EXPECT_EQ(r.phaseExp, 0);
    }
}

struct MulCase
{
    P a, b, expect;
    uint8_t phase;
};

class PauliMulTable : public ::testing::TestWithParam<MulCase>
{
};

TEST_P(PauliMulTable, MatchesAlgebra)
{
    const auto &c = GetParam();
    auto r = mulPauli(c.a, c.b);
    EXPECT_EQ(r.op, c.expect);
    EXPECT_EQ(r.phaseExp, c.phase);
}

INSTANTIATE_TEST_SUITE_P(
    AllOffDiagonal, PauliMulTable,
    ::testing::Values(MulCase{P::X, P::Y, P::Z, 1},  // XY = iZ
                      MulCase{P::Y, P::X, P::Z, 3},  // YX = -iZ
                      MulCase{P::Y, P::Z, P::X, 1},  // YZ = iX
                      MulCase{P::Z, P::Y, P::X, 3},  // ZY = -iX
                      MulCase{P::Z, P::X, P::Y, 1},  // ZX = iY
                      MulCase{P::X, P::Z, P::Y, 3})); // XZ = -iY

TEST(PauliOp, Commutation)
{
    EXPECT_TRUE(commutes(P::I, P::X));
    EXPECT_TRUE(commutes(P::Z, P::Z));
    EXPECT_FALSE(commutes(P::X, P::Y));
    EXPECT_FALSE(commutes(P::Z, P::X));
}

TEST(PauliString, TextRoundTrip)
{
    PauliString s = PauliString::fromText("XXYZI");
    EXPECT_EQ(s.numQubits(), 5u);
    EXPECT_EQ(s.toText(), "XXYZI");
    EXPECT_EQ(s.op(0), P::X);
    EXPECT_EQ(s.op(3), P::Z);
    EXPECT_EQ(s.op(4), P::I);
}

TEST(PauliString, LowerCaseParses)
{
    EXPECT_EQ(PauliString::fromText("xyzi").toText(), "XYZI");
}

TEST(PauliString, WeightAndSupport)
{
    PauliString s = PauliString::fromText("IXIYZ");
    EXPECT_EQ(s.weight(), 3u);
    EXPECT_EQ(s.support(), (std::vector<size_t>{1, 3, 4}));
    EXPECT_FALSE(s.isIdentity());
    EXPECT_TRUE(PauliString(4).isIdentity());
}

TEST(PauliString, CommutationIsParityOfAnticommutingSites)
{
    auto a = PauliString::fromText("XXI");
    auto b = PauliString::fromText("ZZI");
    EXPECT_TRUE(a.commutesWith(b)); // two anticommuting sites
    auto c = PauliString::fromText("ZII");
    EXPECT_FALSE(a.commutesWith(c)); // one anticommuting site
}

TEST(PauliString, ProductPhaseAccumulates)
{
    auto a = PauliString::fromText("XY");
    auto b = PauliString::fromText("YX");
    auto r = mulStrings(a, b); // (XY)(YX) per qubit: XY=iZ, YX=-iZ
    EXPECT_EQ(r.string.toText(), "ZZ");
    EXPECT_EQ(r.phaseExp, 0); // i * -i = 1
}

TEST(PauliString, HashDistinguishesStrings)
{
    PauliStringHash h;
    EXPECT_NE(h(PauliString::fromText("XZ")),
              h(PauliString::fromText("ZX")));
    EXPECT_EQ(h(PauliString::fromText("XZ")),
              h(PauliString::fromText("XZ")));
}

TEST(PauliSum, SimplifyMergesAndDrops)
{
    PauliSum s(2);
    s.addTerm({0.5, 0.0}, PauliString::fromText("XZ"));
    s.addTerm({0.5, 0.0}, PauliString::fromText("XZ"));
    s.addTerm({1e-15, 0.0}, PauliString::fromText("ZZ"));
    PauliSum r = s.simplified();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.terms()[0].string.toText(), "XZ");
    EXPECT_NEAR(r.terms()[0].coeff.real(), 1.0, 1e-12);
}

TEST(PauliSum, ProductTracksPhases)
{
    // (X)(Y) = iZ on one qubit.
    PauliSum x(std::complex<double>(1.0, 0.0),
               PauliString::fromText("X"));
    PauliSum y(std::complex<double>(1.0, 0.0),
               PauliString::fromText("Y"));
    PauliSum r = (x * y).simplified();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.terms()[0].string.toText(), "Z");
    EXPECT_NEAR(r.terms()[0].coeff.imag(), 1.0, 1e-12);
}

TEST(PauliSum, AntiHermitianDetection)
{
    PauliSum t(1);
    t.addTerm({0.0, 0.7}, PauliString::fromText("X"));
    EXPECT_TRUE(t.isAntiHermitian());
    EXPECT_FALSE(t.isHermitian());
    t.addTerm({0.3, 0.0}, PauliString::fromText("Z"));
    EXPECT_FALSE(t.isAntiHermitian());
}

TEST(PauliSum, SubtractionCancelsExactly)
{
    PauliSum a(std::complex<double>(2.0, 0.0),
               PauliString::fromText("ZZ"));
    PauliSum r = (a - a).simplified();
    EXPECT_TRUE(r.empty());
}

TEST(PauliBlock, CommonAndRootSets)
{
    // Fig. 6 of the paper: {XYZZZ, XXZZZ, ZXZZZ, YXZZZ}.
    std::vector<PauliString> strings = {
        PauliString::fromText("XYZZZ"), PauliString::fromText("XXZZZ"),
        PauliString::fromText("ZXZZZ"), PauliString::fromText("YXZZZ")};
    PauliBlock b(strings, 0.3);
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{2, 3, 4}));
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{0, 1}));
    EXPECT_EQ(b.activeLength(), 5u);
    EXPECT_EQ(b.support(), (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(PauliBlock, CommonRequiresIdenticalOperator)
{
    std::vector<PauliString> strings = {PauliString::fromText("XZY"),
                                        PauliString::fromText("XYY")};
    PauliBlock b(strings, 0.1);
    // Qubit 0 shares X; qubit 1 differs; qubit 2 shares Y.
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{0, 2}));
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{1}));
}

TEST(PauliBlock, IdentityColumnsAreNeitherRootNorLeaf)
{
    std::vector<PauliString> strings = {PauliString::fromText("XIZ"),
                                        PauliString::fromText("YIZ")};
    PauliBlock b(strings, 0.1);
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{2}));
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{0}));
    EXPECT_EQ(b.activeLength(), 2u);
}

TEST(PauliBlock, WeightsDefaultToOne)
{
    PauliBlock b({PauliString::fromText("ZZ")}, 0.5);
    EXPECT_DOUBLE_EQ(b.weight(0), 1.0);
    EXPECT_DOUBLE_EQ(b.theta(), 0.5);
}

// ---- packed vs byte-wise differential suite ------------------------
// The packed bit-plane kernels must agree with the scalar reference
// on every observable, across word boundaries (sizes straddle 64 and
// 128) up to 256 qubits.

pauli_ref::ByteString
randomByteString(Rng &rng, size_t n)
{
    static constexpr P kOps[4] = {P::I, P::X, P::Y, P::Z};
    pauli_ref::ByteString s(n);
    for (size_t q = 0; q < n; ++q)
        s[q] = kOps[rng.uniformInt(0, 3)];
    return s;
}

const std::vector<size_t> kDifferentialSizes = {1,  7,   63, 64,
                                                65, 130, 256};

TEST(PauliPackedDifferential, OpReadbackAndWeightMatchReference)
{
    Rng rng(101);
    for (size_t n : kDifferentialSizes) {
        for (int trial = 0; trial < 20; ++trial) {
            auto bytes = randomByteString(rng, n);
            PauliString packed(bytes);
            ASSERT_EQ(packed.numQubits(), n);
            for (size_t q = 0; q < n; ++q)
                ASSERT_EQ(packed.op(q), bytes[q])
                    << "qubit " << q << " of " << n;
            EXPECT_EQ(packed.weight(), pauli_ref::weight(bytes));
            EXPECT_EQ(packed.isIdentity(),
                      pauli_ref::weight(bytes) == 0);
            auto support = packed.support();
            ASSERT_TRUE(std::is_sorted(support.begin(), support.end()));
            EXPECT_EQ(support.size(), pauli_ref::weight(bytes));
            for (size_t q : support)
                EXPECT_NE(bytes[q], P::I);
        }
    }
}

TEST(PauliPackedDifferential, CommutationMatchesReference)
{
    Rng rng(102);
    for (size_t n : kDifferentialSizes) {
        for (int trial = 0; trial < 40; ++trial) {
            auto a = randomByteString(rng, n);
            auto b = randomByteString(rng, n);
            PauliString pa(a), pb(b);
            EXPECT_EQ(pa.commutesWith(pb), pauli_ref::commutes(a, b))
                << "n=" << n << " trial=" << trial;
            EXPECT_TRUE(pa.commutesWith(pa));
        }
    }
}

TEST(PauliPackedDifferential, ProductAndPhaseMatchReference)
{
    Rng rng(103);
    for (size_t n : kDifferentialSizes) {
        for (int trial = 0; trial < 40; ++trial) {
            auto a = randomByteString(rng, n);
            auto b = randomByteString(rng, n);
            pauli_ref::Product want = pauli_ref::mul(a, b);

            PauliStringProduct got =
                mulStrings(PauliString(a), PauliString(b));
            EXPECT_EQ(got.phaseExp, want.phaseExp)
                << "n=" << n << " trial=" << trial;
            ASSERT_EQ(got.string.numQubits(), n);
            for (size_t q = 0; q < n; ++q)
                ASSERT_EQ(got.string.op(q), want.ops[q]);

            // The in-place kernels must agree with the value API.
            PauliString left(b);
            EXPECT_EQ(left.mulLeft(PauliString(a)), want.phaseExp);
            EXPECT_EQ(left, got.string);
            PauliString right(a);
            EXPECT_EQ(right.mulRight(PauliString(b)), want.phaseExp);
            EXPECT_EQ(right, got.string);

            // And so must the byte-wise in-place reference.
            auto acc = b;
            EXPECT_EQ(pauli_ref::mulInto(a, acc), want.phaseExp);
            EXPECT_EQ(acc, want.ops);
        }
    }
}

TEST(PauliPackedDifferential, HashStableAcrossConstructionPaths)
{
    Rng rng(104);
    PauliStringHash h;
    for (size_t n : kDifferentialSizes) {
        for (int trial = 0; trial < 10; ++trial) {
            auto bytes = randomByteString(rng, n);

            PauliString from_vector(bytes);
            PauliString from_text(
                PauliString::fromText(from_vector.toText()));
            // Sparse path: identity string + setOp of the support in
            // shuffled order, with some redundant overwrites.
            PauliString from_set_ops(n);
            std::vector<size_t> order(n);
            for (size_t q = 0; q < n; ++q)
                order[q] = q;
            for (size_t q = n; q > 1; --q)
                std::swap(order[q - 1], order[rng.index(q)]);
            for (size_t q : order) {
                from_set_ops.setOp(q, P::Y); // overwritten below
                from_set_ops.setOp(q, bytes[q]);
            }

            EXPECT_EQ(from_vector, from_text);
            EXPECT_EQ(from_vector, from_set_ops);
            EXPECT_EQ(h(from_vector), h(from_text));
            EXPECT_EQ(h(from_vector), h(from_set_ops));
        }
    }
}

TEST(PauliPackedDifferential, OrderingMatchesByteLexicographic)
{
    Rng rng(105);
    for (size_t n : kDifferentialSizes) {
        for (int trial = 0; trial < 40; ++trial) {
            auto a = randomByteString(rng, n);
            auto b = randomByteString(rng, n);
            // Force shared prefixes often so the first-diff scan is
            // exercised beyond word 0.
            if (trial % 2 == 0 && n > 2)
                std::copy(a.begin(), a.begin() + n / 2, b.begin());
            const bool want = std::lexicographical_compare(
                a.begin(), a.end(), b.begin(), b.end());
            EXPECT_EQ(PauliString(a) < PauliString(b), want)
                << "n=" << n << " trial=" << trial;
        }
        // Length tie-break: equal prefix, shorter sorts first.
        auto a = randomByteString(rng, n);
        auto longer = a;
        longer.push_back(P::I);
        EXPECT_TRUE(PauliString(a) < PauliString(longer));
        EXPECT_FALSE(PauliString(longer) < PauliString(a));
        EXPECT_FALSE(PauliString(a) < PauliString(a));
    }
}

TEST(PauliPackedDifferential, FrameConjugationMatchesByteFrame)
{
    for (int qubits : {3, 16, 65}) {
        Rng rng(200 + qubits);
        PauliFrame frame(qubits);
        pauli_ref::ByteFrame byte_frame(qubits);
        for (int step = 0; step < 300; ++step) {
            const int q0 = rng.uniformInt(0, qubits - 1);
            switch (rng.uniformInt(0, 2)) {
              case 0:
                ASSERT_TRUE(frame.applyGate(Gate::h(q0)));
                byte_frame.applyH(q0);
                break;
              case 1:
                ASSERT_TRUE(frame.applyGate(Gate::s(q0)));
                byte_frame.applyS(q0);
                break;
              default: {
                int q1 = rng.uniformInt(0, qubits - 1);
                if (q1 == q0)
                    q1 = (q1 + 1) % qubits;
                ASSERT_TRUE(frame.applyGate(Gate::cx(q0, q1)));
                byte_frame.applyCx(q0, q1);
                break;
              }
            }
        }
        for (int q = 0; q < qubits; ++q) {
            const SignedPauli &x = frame.backImageX(q);
            const SignedPauli &z = frame.backImageZ(q);
            ASSERT_EQ(x.sign, byte_frame.xSign[q]) << "X image " << q;
            ASSERT_EQ(z.sign, byte_frame.zSign[q]) << "Z image " << q;
            for (int k = 0; k < qubits; ++k) {
                ASSERT_EQ(x.p.op(static_cast<size_t>(k)),
                          byte_frame.x[q][static_cast<size_t>(k)]);
                ASSERT_EQ(z.p.op(static_cast<size_t>(k)),
                          byte_frame.z[q][static_cast<size_t>(k)]);
            }
        }
    }
}

} // namespace
} // namespace tetris
