/**
 * @file
 * Unit tests for the Pauli algebra substrate: operator products with
 * phases, string algebra, sums, and block root/leaf decomposition.
 */

#include <gtest/gtest.h>

#include "pauli/pauli_block.hh"
#include "pauli/pauli_op.hh"
#include "pauli/pauli_string.hh"
#include "pauli/pauli_sum.hh"

namespace tetris
{
namespace
{

using P = PauliOp;

TEST(PauliOp, IdentityIsNeutral)
{
    for (P a : {P::I, P::X, P::Y, P::Z}) {
        auto r1 = mulPauli(P::I, a);
        EXPECT_EQ(r1.op, a);
        EXPECT_EQ(r1.phaseExp, 0);
        auto r2 = mulPauli(a, P::I);
        EXPECT_EQ(r2.op, a);
        EXPECT_EQ(r2.phaseExp, 0);
    }
}

TEST(PauliOp, SelfProductIsIdentity)
{
    for (P a : {P::X, P::Y, P::Z}) {
        auto r = mulPauli(a, a);
        EXPECT_EQ(r.op, P::I);
        EXPECT_EQ(r.phaseExp, 0);
    }
}

struct MulCase
{
    P a, b, expect;
    uint8_t phase;
};

class PauliMulTable : public ::testing::TestWithParam<MulCase>
{
};

TEST_P(PauliMulTable, MatchesAlgebra)
{
    const auto &c = GetParam();
    auto r = mulPauli(c.a, c.b);
    EXPECT_EQ(r.op, c.expect);
    EXPECT_EQ(r.phaseExp, c.phase);
}

INSTANTIATE_TEST_SUITE_P(
    AllOffDiagonal, PauliMulTable,
    ::testing::Values(MulCase{P::X, P::Y, P::Z, 1},  // XY = iZ
                      MulCase{P::Y, P::X, P::Z, 3},  // YX = -iZ
                      MulCase{P::Y, P::Z, P::X, 1},  // YZ = iX
                      MulCase{P::Z, P::Y, P::X, 3},  // ZY = -iX
                      MulCase{P::Z, P::X, P::Y, 1},  // ZX = iY
                      MulCase{P::X, P::Z, P::Y, 3})); // XZ = -iY

TEST(PauliOp, Commutation)
{
    EXPECT_TRUE(commutes(P::I, P::X));
    EXPECT_TRUE(commutes(P::Z, P::Z));
    EXPECT_FALSE(commutes(P::X, P::Y));
    EXPECT_FALSE(commutes(P::Z, P::X));
}

TEST(PauliString, TextRoundTrip)
{
    PauliString s = PauliString::fromText("XXYZI");
    EXPECT_EQ(s.numQubits(), 5u);
    EXPECT_EQ(s.toText(), "XXYZI");
    EXPECT_EQ(s.op(0), P::X);
    EXPECT_EQ(s.op(3), P::Z);
    EXPECT_EQ(s.op(4), P::I);
}

TEST(PauliString, LowerCaseParses)
{
    EXPECT_EQ(PauliString::fromText("xyzi").toText(), "XYZI");
}

TEST(PauliString, WeightAndSupport)
{
    PauliString s = PauliString::fromText("IXIYZ");
    EXPECT_EQ(s.weight(), 3u);
    EXPECT_EQ(s.support(), (std::vector<size_t>{1, 3, 4}));
    EXPECT_FALSE(s.isIdentity());
    EXPECT_TRUE(PauliString(4).isIdentity());
}

TEST(PauliString, CommutationIsParityOfAnticommutingSites)
{
    auto a = PauliString::fromText("XXI");
    auto b = PauliString::fromText("ZZI");
    EXPECT_TRUE(a.commutesWith(b)); // two anticommuting sites
    auto c = PauliString::fromText("ZII");
    EXPECT_FALSE(a.commutesWith(c)); // one anticommuting site
}

TEST(PauliString, ProductPhaseAccumulates)
{
    auto a = PauliString::fromText("XY");
    auto b = PauliString::fromText("YX");
    auto r = mulStrings(a, b); // (XY)(YX) per qubit: XY=iZ, YX=-iZ
    EXPECT_EQ(r.string.toText(), "ZZ");
    EXPECT_EQ(r.phaseExp, 0); // i * -i = 1
}

TEST(PauliString, HashDistinguishesStrings)
{
    PauliStringHash h;
    EXPECT_NE(h(PauliString::fromText("XZ")),
              h(PauliString::fromText("ZX")));
    EXPECT_EQ(h(PauliString::fromText("XZ")),
              h(PauliString::fromText("XZ")));
}

TEST(PauliSum, SimplifyMergesAndDrops)
{
    PauliSum s(2);
    s.addTerm({0.5, 0.0}, PauliString::fromText("XZ"));
    s.addTerm({0.5, 0.0}, PauliString::fromText("XZ"));
    s.addTerm({1e-15, 0.0}, PauliString::fromText("ZZ"));
    PauliSum r = s.simplified();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.terms()[0].string.toText(), "XZ");
    EXPECT_NEAR(r.terms()[0].coeff.real(), 1.0, 1e-12);
}

TEST(PauliSum, ProductTracksPhases)
{
    // (X)(Y) = iZ on one qubit.
    PauliSum x(std::complex<double>(1.0, 0.0),
               PauliString::fromText("X"));
    PauliSum y(std::complex<double>(1.0, 0.0),
               PauliString::fromText("Y"));
    PauliSum r = (x * y).simplified();
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.terms()[0].string.toText(), "Z");
    EXPECT_NEAR(r.terms()[0].coeff.imag(), 1.0, 1e-12);
}

TEST(PauliSum, AntiHermitianDetection)
{
    PauliSum t(1);
    t.addTerm({0.0, 0.7}, PauliString::fromText("X"));
    EXPECT_TRUE(t.isAntiHermitian());
    EXPECT_FALSE(t.isHermitian());
    t.addTerm({0.3, 0.0}, PauliString::fromText("Z"));
    EXPECT_FALSE(t.isAntiHermitian());
}

TEST(PauliSum, SubtractionCancelsExactly)
{
    PauliSum a(std::complex<double>(2.0, 0.0),
               PauliString::fromText("ZZ"));
    PauliSum r = (a - a).simplified();
    EXPECT_TRUE(r.empty());
}

TEST(PauliBlock, CommonAndRootSets)
{
    // Fig. 6 of the paper: {XYZZZ, XXZZZ, ZXZZZ, YXZZZ}.
    std::vector<PauliString> strings = {
        PauliString::fromText("XYZZZ"), PauliString::fromText("XXZZZ"),
        PauliString::fromText("ZXZZZ"), PauliString::fromText("YXZZZ")};
    PauliBlock b(strings, 0.3);
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{2, 3, 4}));
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{0, 1}));
    EXPECT_EQ(b.activeLength(), 5u);
    EXPECT_EQ(b.support(), (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(PauliBlock, CommonRequiresIdenticalOperator)
{
    std::vector<PauliString> strings = {PauliString::fromText("XZY"),
                                        PauliString::fromText("XYY")};
    PauliBlock b(strings, 0.1);
    // Qubit 0 shares X; qubit 1 differs; qubit 2 shares Y.
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{0, 2}));
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{1}));
}

TEST(PauliBlock, IdentityColumnsAreNeitherRootNorLeaf)
{
    std::vector<PauliString> strings = {PauliString::fromText("XIZ"),
                                        PauliString::fromText("YIZ")};
    PauliBlock b(strings, 0.1);
    EXPECT_EQ(b.commonQubits(), (std::vector<size_t>{2}));
    EXPECT_EQ(b.rootQubits(), (std::vector<size_t>{0}));
    EXPECT_EQ(b.activeLength(), 2u);
}

TEST(PauliBlock, WeightsDefaultToOne)
{
    PauliBlock b({PauliString::fromText("ZZ")}, 0.5);
    EXPECT_DOUBLE_EQ(b.weight(0), 1.0);
    EXPECT_DOUBLE_EQ(b.theta(), 0.5);
}

} // namespace
} // namespace tetris
