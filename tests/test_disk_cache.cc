/**
 * @file
 * DiskCache tests: store/load round-trips through the sharded .tca
 * layout, the hardened directory handling (creation, empty paths,
 * unwritable roots degrade to disabled), environment configuration,
 * corruption-as-miss semantics, the zero-copy mmap read path (warm
 * hits metric-asserted through mmap, TETRIS_DISK_MMAP=0 exercising
 * the buffered fallback), verify-before-store (a miscompile never
 * lands on disk; verify.blocked_write accounting), LRU-by-mtime
 * trim, engine integration (warm runs skip compilation entirely,
 * teardown applies the eviction budget), and two engines hammering
 * one shared store concurrently.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "chem/uccsd.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "serialize/mmap_file.hh"

namespace fs = std::filesystem;

namespace tetris
{
namespace
{

/** Fresh scratch directory per test, removed on teardown. */
class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        root_ = fs::path(::testing::TempDir()) /
                ("tetris_dc_" + std::string(::testing::UnitTest::
                                                GetInstance()
                                                    ->current_test_info()
                                                    ->name()));
        fs::remove_all(root_);
    }

    void TearDown() override { fs::remove_all(root_); }

    CompileResult
    smallResult(int n, int seed)
    {
        return compileTetris(buildSyntheticUcc(n, seed),
                             lineTopology(10));
    }

    fs::path root_;
};

TEST_F(DiskCacheTest, StoreLoadRoundTripThroughShardedLayout)
{
    auto cache = DiskCache::open((root_ / "a" / "b").string());
    ASSERT_NE(cache, nullptr); // created recursively
    EXPECT_TRUE(fs::is_directory(root_ / "a" / "b"));

    const uint64_t key = 0xfeed0000beef1234ull;
    CompileResult result = smallResult(6, 3);
    ASSERT_TRUE(cache->store(key, result));
    EXPECT_EQ(cache->writes(), 1u);

    // Sharded by the top byte of the key, 16-hex-digit file name.
    fs::path expect =
        root_ / "a" / "b" / "fe" / "feed0000beef1234.tca";
    EXPECT_EQ(cache->pathFor(key), expect.string());
    EXPECT_TRUE(fs::is_regular_file(expect));

    auto loaded = cache->load(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(cache->hits(), 1u);
    // POSIX test hosts serve hits zero-copy through the mmap path.
    EXPECT_EQ(cache->mmapLoads(),
              serialize::MappedFile::mmapEnabled() ? 1u : 0u);
    EXPECT_EQ(loaded->stats.cnotCount, result.stats.cnotCount);
    EXPECT_EQ(loaded->stats.depth, result.stats.depth);
    EXPECT_EQ(loaded->circuit.totalGateCount(),
              result.circuit.totalGateCount());
    EXPECT_EQ(loaded->finalLayout, result.finalLayout);
    EXPECT_EQ(loaded->blockOrder, result.blockOrder);

    EXPECT_EQ(cache->load(key + 1), nullptr); // absent key
    EXPECT_EQ(cache->misses(), 1u);

    DiskCache::Usage u = cache->usage();
    EXPECT_EQ(u.entries, 1u);
    EXPECT_GT(u.bytes, 0u);
}

TEST_F(DiskCacheTest, OpenRejectsEmptyAndBlankPaths)
{
    EXPECT_EQ(DiskCache::open(""), nullptr);
    EXPECT_EQ(DiskCache::open("   "), nullptr);
    EXPECT_EQ(DiskCache::open(" \t\n"), nullptr);
}

TEST_F(DiskCacheTest, UnusableDirectoryDegradesToDisabled)
{
    // A regular file where a directory is needed: create_directories
    // fails, open() must warn and return null, never abort.
    fs::create_directories(root_);
    std::ofstream(root_ / "blocker") << "file";
    EXPECT_EQ(DiskCache::open((root_ / "blocker").string()), nullptr);
    EXPECT_EQ(
        DiskCache::open((root_ / "blocker" / "nested").string()),
        nullptr);
}

TEST_F(DiskCacheTest, OpenFromEnvHonorsBothVariables)
{
    ::unsetenv("TETRIS_CACHE_DIR");
    EXPECT_EQ(DiskCache::openFromEnv(), nullptr);
    ::setenv("TETRIS_CACHE_DIR", "", 1);
    EXPECT_EQ(DiskCache::openFromEnv(), nullptr);

    ::setenv("TETRIS_CACHE_DIR", root_.c_str(), 1);
    ::setenv("TETRIS_CACHE_MAX_BYTES", "123456", 1);
    auto cache = DiskCache::openFromEnv();
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->maxBytes(), 123456u);
    EXPECT_EQ(fs::path(cache->dir()), fs::absolute(root_));

    // Garbage budgets are ignored (unlimited), not fatal.
    for (const char *bad : {"garbage", "-5", "12abc", "1.5"}) {
        ::setenv("TETRIS_CACHE_MAX_BYTES", bad, 1);
        auto c = DiskCache::openFromEnv();
        ASSERT_NE(c, nullptr) << bad;
        EXPECT_EQ(c->maxBytes(), 0u) << bad;
    }
    ::unsetenv("TETRIS_CACHE_DIR");
    ::unsetenv("TETRIS_CACHE_MAX_BYTES");
}

TEST_F(DiskCacheTest, CorruptedAndTruncatedFilesReadAsMiss)
{
    auto cache = DiskCache::open(root_.string());
    ASSERT_NE(cache, nullptr);
    const uint64_t key = 42;
    CompileResult result = smallResult(6, 9);
    ASSERT_TRUE(cache->store(key, result));
    fs::path path = cache->pathFor(key);

    // Bit flip in the middle of the artifact.
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekp(static_cast<std::streamoff>(fs::file_size(path) / 2));
        f.put('\x7f');
    }
    EXPECT_EQ(cache->load(key), nullptr);
    EXPECT_EQ(cache->misses(), 1u);

    // Truncation (as after a crash without the atomic rename).
    ASSERT_TRUE(cache->store(key, result));
    fs::resize_file(path, fs::file_size(path) / 3);
    EXPECT_EQ(cache->load(key), nullptr);

    // Entirely foreign bytes.
    std::ofstream(path, std::ios::trunc) << "deliberately corrupted";
    EXPECT_EQ(cache->load(key), nullptr);

    // A rewrite heals the entry.
    ASSERT_TRUE(cache->store(key, result));
    auto healed = cache->load(key);
    ASSERT_NE(healed, nullptr);
    EXPECT_EQ(healed->stats.cnotCount, result.stats.cnotCount);
}

TEST_F(DiskCacheTest, TrimEvictsOldestMtimeFirst)
{
    auto cache = DiskCache::open(root_.string());
    ASSERT_NE(cache, nullptr);
    CompileResult result = smallResult(6, 4);

    auto now = fs::file_time_type::clock::now();
    using std::chrono::hours;
    ASSERT_TRUE(cache->store(1, result));
    ASSERT_TRUE(cache->store(2, result));
    ASSERT_TRUE(cache->store(3, result));
    fs::last_write_time(cache->pathFor(1), now - hours(3));
    fs::last_write_time(cache->pathFor(2), now - hours(1));
    fs::last_write_time(cache->pathFor(3), now - hours(2));

    DiskCache::Usage before = cache->usage();
    ASSERT_EQ(before.entries, 3u);

    // Budget for exactly two artifacts: the oldest (key 1) must go.
    uint64_t two_entries = before.bytes - before.bytes / 3;
    EXPECT_EQ(cache->trim(two_entries), 1u);
    EXPECT_FALSE(fs::exists(cache->pathFor(1)));
    EXPECT_TRUE(fs::exists(cache->pathFor(2)));
    EXPECT_TRUE(fs::exists(cache->pathFor(3)));

    // Under budget: no-op.
    EXPECT_EQ(cache->trim(uint64_t{1} << 40), 0u);
    EXPECT_EQ(cache->usage().entries, 2u);

    // A load refreshes mtime, protecting the entry from the next
    // trim (LRU, not FIFO): key 3 is now newer than key 2.
    ASSERT_NE(cache->load(3), nullptr);
    uint64_t one_entry = before.bytes / 3;
    EXPECT_EQ(cache->trim(one_entry), 1u);
    EXPECT_TRUE(fs::exists(cache->pathFor(3)));
    EXPECT_FALSE(fs::exists(cache->pathFor(2)));

    cache->clear();
    EXPECT_EQ(cache->usage().entries, 0u);
    EXPECT_EQ(cache->usage().bytes, 0u);
}

TEST_F(DiskCacheTest, EngineWarmRunSkipsCompilationEntirely)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    auto make_jobs = [&] {
        std::vector<CompileJob> jobs;
        for (int n : {5, 6, 7}) {
            CompileJob job;
            job.name = "warm" + std::to_string(n);
            job.blocks = buildSyntheticUcc(n, 100 + n);
            job.hw = hw;
            jobs.push_back(std::move(job));
        }
        return jobs;
    };

    std::vector<std::shared_ptr<const CompileResult>> cold;
    auto cold_disk = DiskCache::open(root_.string());
    ASSERT_NE(cold_disk, nullptr);
    {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.diskCache = cold_disk;
        Engine engine(opts);
        cold = engine.compileAll(make_jobs());
        EXPECT_EQ(engine.metrics().count("jobs.completed"), 3u);
        EXPECT_EQ(cold_disk->hits(), 0u);
    }
    // Write-behind settles by engine teardown, not by compileAll.
    EXPECT_EQ(cold_disk->writes(), 3u);

    // Fresh engine, fresh DiskCache handle, same directory: every
    // job must deserialize instead of compiling.
    EngineOptions opts;
    opts.numThreads = 2;
    opts.diskCache = DiskCache::open(root_.string());
    Engine engine(opts);
    auto warm = engine.compileAll(make_jobs());
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 0u);
    EXPECT_EQ(engine.metrics().count("jobs.disk_hits"), 3u);
    EXPECT_EQ(opts.diskCache->hits(), 3u);
    EXPECT_EQ(opts.diskCache->misses(), 0u);

    ASSERT_EQ(warm.size(), cold.size());
    for (size_t i = 0; i < warm.size(); ++i) {
        ASSERT_NE(warm[i], nullptr);
        EXPECT_EQ(warm[i]->stats.cnotCount, cold[i]->stats.cnotCount);
        EXPECT_EQ(warm[i]->stats.depth, cold[i]->stats.depth);
        EXPECT_EQ(warm[i]->circuit.totalGateCount(),
                  cold[i]->circuit.totalGateCount());
        EXPECT_EQ(warm[i]->finalLayout, cold[i]->finalLayout);
        EXPECT_EQ(warm[i]->blockOrder, cold[i]->blockOrder);
    }

    // Every warm hit went through the zero-copy mmap path, and the
    // engine published that into its metrics registry.
    if (serialize::MappedFile::mmapEnabled()) {
        EXPECT_EQ(opts.diskCache->mmapLoads(), 3u);
        EXPECT_EQ(opts.diskCache->bufferedLoads(), 0u);
        EXPECT_EQ(engine.metrics().count("cache.disk.mmap_loads"), 3u);
    }
}

TEST_F(DiskCacheTest, BufferedFallbackServesWarmRunWhenMmapDisabled)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    CompileJob job;
    job.name = "fallback";
    job.blocks = buildSyntheticUcc(6, 77);
    job.hw = hw;

    {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.diskCache = DiskCache::open(root_.string());
        ASSERT_NE(opts.diskCache, nullptr);
        Engine engine(opts);
        engine.wait(engine.submit(job));
    }

    // TETRIS_DISK_MMAP=0: same store, same artifacts, but every hit
    // must be served by the buffered-read fallback.
    ::setenv("TETRIS_DISK_MMAP", "0", 1);
    EngineOptions opts;
    opts.numThreads = 2;
    opts.diskCache = DiskCache::open(root_.string());
    Engine engine(opts);
    auto warm = engine.wait(engine.submit(job));
    ::unsetenv("TETRIS_DISK_MMAP");

    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 0u);
    EXPECT_EQ(engine.metrics().count("jobs.disk_hits"), 1u);
    EXPECT_EQ(opts.diskCache->mmapLoads(), 0u);
    EXPECT_EQ(opts.diskCache->bufferedLoads(), 1u);
}

/**
 * A deliberately wrong compiler: compiles for real, then flips one
 * rotation's sign — exactly the class of miscompile the verifier's
 * mutation matrix proves both checkers reject.
 */
class MiscompilingPipeline final : public Pipeline
{
  public:
    const std::string &name() const override
    {
        static const std::string id = "test-miscompile";
        return id;
    }

    CompileResult
    run(const std::vector<PauliBlock> &blocks,
        const CouplingGraph &hw) const override
    {
        CompileResult res = compileTetris(blocks, hw);
        Circuit circ(res.circuit.numQubits());
        bool flipped = false;
        for (Gate g : res.circuit.gates()) {
            if (!flipped && g.kind == GateKind::RZ &&
                std::abs(g.angle) > 0.05) {
                g.angle = -g.angle;
                flipped = true;
            }
            circ.add(g);
        }
        res.circuit = std::move(circ);
        return res;
    }

    uint64_t optionsHash() const override { return 0xbadc0de; }
};

TEST_F(DiskCacheTest, VerifyBeforeStoreKeepsBadCompilesOffDisk)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob job;
    job.name = "miscompiled";
    job.blocks = buildSyntheticUcc(6, 21);
    job.hw = hw;
    job.pipeline = std::make_shared<MiscompilingPipeline>();
    const uint64_t key = Engine::jobKey(job);

    auto disk = DiskCache::open(root_.string());
    ASSERT_NE(disk, nullptr);
    {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.diskCache = disk;
        opts.verify = true; // verifyBeforeStore defaults to true
        Engine engine(opts);
        auto result = engine.wait(engine.submit(job));
        // The bad result is still published to its waiters...
        ASSERT_NE(result, nullptr);
        EXPECT_GT(result->stats.totalGateCount, 0u);
    }
    // ...but never reached the store (write-behind settles by
    // engine teardown).
    EXPECT_EQ(disk->writes(), 0u);
    EXPECT_EQ(disk->load(key), nullptr);

    // Opting out (verifyBeforeStore = false) restores the old
    // behavior: the artifact lands despite the failed verification.
    {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.diskCache = disk;
        opts.verify = true;
        opts.verifyBeforeStore = false;
        Engine engine(opts);
        engine.wait(engine.submit(job));
    }
    EXPECT_EQ(disk->writes(), 1u);
    EXPECT_NE(disk->load(key), nullptr);
}

TEST_F(DiskCacheTest, VerifyBeforeStoreCountsBlockedWrites)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob bad;
    bad.name = "blocked";
    bad.blocks = buildSyntheticUcc(6, 22);
    bad.hw = hw;
    bad.pipeline = std::make_shared<MiscompilingPipeline>();
    CompileJob good;
    good.name = "clean";
    good.blocks = buildSyntheticUcc(6, 23);
    good.hw = hw;

    auto disk = DiskCache::open(root_.string());
    ASSERT_NE(disk, nullptr);
    EngineOptions opts;
    opts.numThreads = 2;
    opts.diskCache = disk;
    opts.verify = true;
    Engine engine(opts);
    engine.compileAll({bad, good});
    engine.drain(); // write-behind persists settle

    EXPECT_EQ(engine.metrics().count("verify.fail"), 1u);
    EXPECT_EQ(engine.metrics().count("verify.pass"), 1u);
    EXPECT_EQ(engine.metrics().count("verify.blocked_write"), 1u);
    // Exactly the clean job was persisted.
    EXPECT_EQ(disk->usage().entries, 1u);
    EXPECT_NE(disk->load(Engine::jobKey(good)), nullptr);
    EXPECT_EQ(disk->load(Engine::jobKey(bad)), nullptr);
}

TEST_F(DiskCacheTest, EngineTeardownAppliesEvictionBudget)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    auto disk = DiskCache::open(root_.string(), /*max_bytes=*/1);
    ASSERT_NE(disk, nullptr);
    {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.diskCache = disk;
        Engine engine(opts);
        CompileJob job;
        job.name = "evict";
        job.blocks = buildSyntheticUcc(6, 1);
        job.hw = hw;
        engine.wait(engine.submit(job));
    }
    // Written during the run; evicted when the engine drained.
    EXPECT_EQ(disk->writes(), 1u);
    EXPECT_EQ(disk->usage().entries, 0u);
}

TEST_F(DiskCacheTest, ConcurrentEnginesShareOneStore)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    auto make_jobs = [&] {
        std::vector<CompileJob> jobs;
        for (int n : {5, 6, 7, 8}) {
            CompileJob job;
            job.name = "shared" + std::to_string(n);
            job.blocks = buildSyntheticUcc(n, 200 + n);
            job.hw = hw;
            jobs.push_back(std::move(job));
        }
        return jobs;
    };

    // Two engines race on the same directory: both may compile and
    // both may rename the same artifact — last rename wins and every
    // result must stay correct.
    std::vector<std::shared_ptr<const CompileResult>> ra, rb;
    {
        EngineOptions oa, ob;
        oa.numThreads = ob.numThreads = 2;
        oa.diskCache = DiskCache::open(root_.string());
        ob.diskCache = DiskCache::open(root_.string());
        ASSERT_NE(oa.diskCache, nullptr);
        ASSERT_NE(ob.diskCache, nullptr);
        Engine ea(oa), eb(ob);
        std::thread ta([&] { ra = ea.compileAll(make_jobs()); });
        std::thread tb([&] { rb = eb.compileAll(make_jobs()); });
        ta.join();
        tb.join();
    }
    ASSERT_EQ(ra.size(), 4u);
    ASSERT_EQ(rb.size(), 4u);
    for (size_t i = 0; i < ra.size(); ++i) {
        ASSERT_NE(ra[i], nullptr);
        ASSERT_NE(rb[i], nullptr);
        EXPECT_EQ(ra[i]->stats.cnotCount, rb[i]->stats.cnotCount);
        EXPECT_EQ(ra[i]->stats.depth, rb[i]->stats.depth);
    }
    EXPECT_EQ(DiskCache::open(root_.string())->usage().entries, 4u);

    // A third engine sees a fully warm store.
    EngineOptions oc;
    oc.numThreads = 2;
    oc.diskCache = DiskCache::open(root_.string());
    Engine ec(oc);
    auto rc = ec.compileAll(make_jobs());
    EXPECT_EQ(ec.metrics().count("jobs.completed"), 0u);
    EXPECT_EQ(ec.metrics().count("jobs.disk_hits"), 4u);
    for (size_t i = 0; i < rc.size(); ++i)
        EXPECT_EQ(rc[i]->stats.cnotCount, ra[i]->stats.cnotCount);
}

} // namespace
} // namespace tetris
