/**
 * @file
 * Batch-engine tests: parallel-vs-serial determinism, registry
 * dispatch against the direct entry points, compile-cache hit/miss
 * accounting, in-flight dedup and cross-pipeline key separation,
 * the sharded cache (TETRIS_CACHE_SHARDS resolution, multi-thread
 * contention stress across shard counts {1, 4, 64}, dedup
 * invariance under sharding), progress reporting, thread-pool
 * stress, the single-thread fallback, the hardened
 * TETRIS_ENGINE_THREADS knob, JSON serialization of stats and
 * metrics, and cancellation of pending jobs. (The persistent disk
 * tier has its own suite in test_disk_cache.cc.)
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <tuple>

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "baselines/qaoa_2qan.hh"
#include "chem/uccsd.hh"
#include "common/json.hh"
#include "core/pipeline_adapters.hh"
#include "core/qaoa_pass.hh"
#include "engine/engine.hh"
#include "engine/thread_pool.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"

namespace tetris
{
namespace
{

/** A mixed >= 8-job workload over two devices and several options. */
std::vector<CompileJob>
mixedJobs()
{
    auto hex = std::make_shared<const CouplingGraph>(heavyHexTopology(2, 5));
    auto grid = std::make_shared<const CouplingGraph>(gridTopology(4, 4));

    TetrisOptions lex_opts;
    lex_opts.scheduler = SchedulerKind::Lexicographic;

    std::vector<CompileJob> jobs;
    for (int n : {6, 8, 10}) {
        CompileJob job;
        job.name = "ucc" + std::to_string(n);
        job.blocks = buildSyntheticUcc(n, 42 + n);
        job.hw = n <= 8 ? hex : grid;
        jobs.push_back(job);

        CompileJob lex = job;
        lex.name += "/lex";
        lex.pipeline = makeTetrisPipeline(lex_opts);
        jobs.push_back(std::move(lex));

        CompileJob ph = job;
        ph.name += "/ph";
        ph.pipeline = PipelineRegistry::instance().create("paulihedral");
        jobs.push_back(std::move(ph));
    }
    return jobs;
}

/** Deterministic (non-timing) fields must match bit for bit. */
void
expectSameResult(const CompileResult &a, const CompileResult &b)
{
    EXPECT_EQ(a.stats.cnotCount, b.stats.cnotCount);
    EXPECT_EQ(a.stats.oneQubitCount, b.stats.oneQubitCount);
    EXPECT_EQ(a.stats.totalGateCount, b.stats.totalGateCount);
    EXPECT_EQ(a.stats.depth, b.stats.depth);
    EXPECT_EQ(a.stats.durationDt, b.stats.durationDt);
    EXPECT_EQ(a.stats.swapCount, b.stats.swapCount);
    EXPECT_EQ(a.stats.swapCnots, b.stats.swapCnots);
    EXPECT_EQ(a.stats.logicalCnots, b.stats.logicalCnots);
    EXPECT_EQ(a.stats.originalCnots, b.stats.originalCnots);
    EXPECT_EQ(a.stats.cancelRatio, b.stats.cancelRatio);
    EXPECT_EQ(a.stats.synthesis.insertedSwaps,
              b.stats.synthesis.insertedSwaps);
    EXPECT_EQ(a.stats.synthesis.emittedCx, b.stats.synthesis.emittedCx);
    EXPECT_EQ(a.blockOrder, b.blockOrder);
    EXPECT_EQ(a.finalLayout, b.finalLayout);
    EXPECT_EQ(a.circuit.totalGateCount(), b.circuit.totalGateCount());
}

TEST(ThreadPool, StressManyTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 500);

    // Pool stays usable after an idle period.
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 501);
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3);
    ::setenv("TETRIS_ENGINE_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(0), 5);
    ::unsetenv("TETRIS_ENGINE_THREADS");
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1);
}

TEST(ThreadPool, ResolveThreadCountRejectsGarbage)
{
    ::unsetenv("TETRIS_ENGINE_THREADS");
    const int fallback = ThreadPool::resolveThreadCount(0);
    EXPECT_GE(fallback, 1);

    // Garbage, trailing junk, negatives, zero, and overflow must all
    // fall back to hardware concurrency -- never whatever atoi()
    // would have produced (e.g. 8 for "8abc", huge for overflow).
    for (const char *bad :
         {"garbage", "8abc", "-3", "0", "-0", "2.5", "",
          "99999999999999999999", "4097", "0x10"}) {
        ::setenv("TETRIS_ENGINE_THREADS", bad, 1);
        EXPECT_EQ(ThreadPool::resolveThreadCount(0), fallback)
            << "env='" << bad << "'";
    }

    // Surrounding whitespace is tolerated; the bound is inclusive.
    ::setenv("TETRIS_ENGINE_THREADS", " 12 ", 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(0), 12);
    ::setenv("TETRIS_ENGINE_THREADS", "4096", 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(0), 4096);

    // An explicit request always wins over the environment.
    ::setenv("TETRIS_ENGINE_THREADS", "garbage", 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(2), 2);
    ::unsetenv("TETRIS_ENGINE_THREADS");
}

TEST(CompileCache, ResolveShardCountHonorsEnvAndRejectsGarbage)
{
    ::unsetenv("TETRIS_CACHE_SHARDS");
    const int fallback = CompileCache::resolveShardCount(0);
    EXPECT_GE(fallback, 1);
    EXPECT_LE(fallback, 1024);
    // The derived default is a power of two (shard index = key mod N
    // stays cheap and evenly spread).
    EXPECT_EQ(fallback & (fallback - 1), 0);

    ::setenv("TETRIS_CACHE_SHARDS", "6", 1);
    EXPECT_EQ(CompileCache::resolveShardCount(0), 6);
    ::setenv("TETRIS_CACHE_SHARDS", " 128 ", 1);
    EXPECT_EQ(CompileCache::resolveShardCount(0), 128);
    ::setenv("TETRIS_CACHE_SHARDS", "1024", 1);
    EXPECT_EQ(CompileCache::resolveShardCount(0), 1024);

    for (const char *bad : {"garbage", "8abc", "-3", "0", "2.5", "",
                            "1025", "99999999999999999999", "0x10"}) {
        ::setenv("TETRIS_CACHE_SHARDS", bad, 1);
        EXPECT_EQ(CompileCache::resolveShardCount(0), fallback)
            << "env='" << bad << "'";
    }

    // An explicit request beats the environment and is clamped.
    ::setenv("TETRIS_CACHE_SHARDS", "2", 1);
    EXPECT_EQ(CompileCache::resolveShardCount(7), 7);
    EXPECT_EQ(CompileCache::resolveShardCount(5000), 1024);
    ::unsetenv("TETRIS_CACHE_SHARDS");
}

TEST(CompileCache, ShardedContentionStressLosesNothing)
{
    // The sharding invariant under fire: for every key, exactly one
    // acquire() across all threads reports is_new (one compilation,
    // never zero, never two), and every hit observes the value its
    // owner published — across shard counts spanning one-mutex to
    // more-shards-than-keys.
    for (int shards : {1, 4, 64}) {
        CompileCache cache(shards);
        EXPECT_EQ(cache.shardCount(), shards);

        constexpr int kThreads = 8;
        constexpr int kKeys = 96;
        constexpr int kOpsPerThread = 3000;
        std::array<std::atomic<int>, kKeys> owners{};
        std::atomic<bool> go{false};
        std::atomic<int> mismatches{0};

        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                while (!go.load()) {
                }
                for (int i = 0; i < kOpsPerThread; ++i) {
                    const int k = (i * 17 + t * 31) % kKeys;
                    const uint64_t key =
                        0x9e3779b97f4a7c15ull * (k + 1);
                    bool is_new = false;
                    auto entry = cache.acquire(key, is_new);
                    if (is_new) {
                        owners[k].fetch_add(1);
                        auto result =
                            std::make_shared<CompileResult>();
                        // Tag the payload with its key so readers can
                        // detect cross-key mixups.
                        result->stats.cnotCount =
                            static_cast<uint64_t>(k);
                        entry->publish(std::move(result));
                    } else {
                        auto result = entry->get();
                        if (result->stats.cnotCount !=
                            static_cast<uint64_t>(k)) {
                            mismatches.fetch_add(1);
                        }
                    }
                }
            });
        }
        go.store(true);
        for (auto &w : workers)
            w.join();

        for (int k = 0; k < kKeys; ++k)
            EXPECT_EQ(owners[k].load(), 1)
                << "shards=" << shards << " key " << k;
        EXPECT_EQ(mismatches.load(), 0) << "shards=" << shards;
        EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
        EXPECT_EQ(cache.misses(), static_cast<size_t>(kKeys));
        EXPECT_EQ(cache.hits() + cache.misses(),
                  static_cast<size_t>(kThreads) * kOpsPerThread);

        // erase() targets the right shard: the key recompiles.
        const uint64_t first_key = 0x9e3779b97f4a7c15ull;
        cache.erase(first_key);
        bool is_new = false;
        cache.acquire(first_key, is_new);
        EXPECT_TRUE(is_new) << "shards=" << shards;

        cache.clear();
        EXPECT_EQ(cache.size(), 0u);
        EXPECT_EQ(cache.hits(), 0u);
        EXPECT_EQ(cache.misses(), 0u);
        EXPECT_EQ(cache.lockWaitNs(), 0u);
    }
}

TEST(CompileCache, PureHitWorkloadIsLockFree)
{
    // The tentpole guarantee of the published read view: once a key
    // is in the view, acquire() serves it with loads only. 16 threads
    // hammering a fully-published table must therefore report exactly
    // zero blocked lock-wait time — not "low", zero — while the
    // hit/miss accounting stays exact.
    for (int shards : {1, 4}) {
        CompileCache cache(shards);
        constexpr int kKeys = 256;
        auto dummy = std::make_shared<const CompileResult>();
        for (int k = 0; k < kKeys; ++k) {
            bool is_new = false;
            auto entry =
                cache.acquire(0x9e3779b97f4a7c15ull * (k + 1), is_new);
            ASSERT_TRUE(is_new);
            entry->publish(dummy);
        }

        constexpr int kThreads = 16;
        constexpr int kOpsPerThread = 20000;
        std::atomic<bool> go{false};
        std::atomic<int> unexpected{0};
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                while (!go.load()) {
                }
                for (int i = 0; i < kOpsPerThread; ++i) {
                    const int k = (i * 7 + t * 13) % kKeys;
                    bool is_new = true;
                    auto entry = cache.acquire(
                        0x9e3779b97f4a7c15ull * (k + 1), is_new);
                    if (is_new || entry->get() == nullptr)
                        unexpected.fetch_add(1);
                }
            });
        }
        go.store(true);
        for (auto &w : workers)
            w.join();

        EXPECT_EQ(unexpected.load(), 0) << "shards=" << shards;
        EXPECT_EQ(cache.lockWaitNs(), 0u) << "shards=" << shards;
        EXPECT_EQ(cache.misses(), static_cast<size_t>(kKeys));
        EXPECT_EQ(cache.hits(),
                  static_cast<size_t>(kThreads) * kOpsPerThread);
    }
}

TEST(CompileCache, HitsStayCoherentUnderRehashAndErase)
{
    // Readers hold read-view snapshots while a writer churns the
    // table: inserting enough fresh keys to force view rehashes and
    // erasing/recreating a victim key. Stable keys must always hit
    // and always return their own payload (TSan covers the memory
    // ordering; this asserts the semantics).
    CompileCache cache(4);
    constexpr int kStable = 64;
    auto key_of = [](int k) {
        return 0x9e3779b97f4a7c15ull * (k + 1);
    };
    for (int k = 0; k < kStable; ++k) {
        bool is_new = false;
        auto entry = cache.acquire(key_of(k), is_new);
        auto result = std::make_shared<CompileResult>();
        result->stats.cnotCount = static_cast<uint64_t>(k);
        entry->publish(std::move(result));
    }

    std::atomic<bool> stop{false};
    std::atomic<int> bad{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            for (int i = 0; !stop.load(std::memory_order_relaxed);
                 ++i) {
                const int k = (i * 5 + t * 11) % kStable;
                bool is_new = true;
                auto entry = cache.acquire(key_of(k), is_new);
                auto result = entry->get();
                if (is_new || result == nullptr ||
                    result->stats.cnotCount !=
                        static_cast<uint64_t>(k))
                    bad.fetch_add(1);
            }
        });
    }

    // Writer: 4k inserts across 4 shards of min-capacity-16 views
    // force multiple geometric rehashes per shard; the erase victim
    // exercises tombstone + reinsert around every growth step.
    auto published = std::make_shared<const CompileResult>();
    for (int n = 0; n < 4000; ++n) {
        bool is_new = false;
        auto entry = cache.acquire(key_of(kStable + 1000 + n), is_new);
        if (is_new)
            entry->publish(published);
        const uint64_t victim = key_of(kStable + 500);
        cache.erase(victim);
        bool victim_new = false;
        cache.acquire(victim, victim_new)->publish(published);
        EXPECT_TRUE(victim_new);
    }
    stop.store(true);
    for (auto &r : readers)
        r.join();

    EXPECT_EQ(bad.load(), 0);
    EXPECT_EQ(cache.size(), static_cast<size_t>(kStable + 4000 + 1));
}

TEST(Engine, CacheShardsOptionPreservesDedupSemantics)
{
    // The dedup accounting of CacheHitsOnRepeatedJob must be
    // unchanged by any shard configuration.
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    for (int shards : {1, 4, 64}) {
        EngineOptions opts;
        opts.numThreads = 4;
        opts.cacheShards = shards;
        Engine engine(opts);
        EXPECT_EQ(engine.cache().shardCount(), shards);

        std::vector<CompileJob> jobs;
        for (int round = 0; round < 3; ++round) {
            for (int n : {5, 6, 7}) {
                CompileJob job;
                job.name = "shard" + std::to_string(n);
                job.blocks = buildSyntheticUcc(n, 300 + n);
                job.hw = hw;
                jobs.push_back(std::move(job));
            }
        }
        auto results = engine.compileAll(std::move(jobs));
        ASSERT_EQ(results.size(), 9u);
        for (int i = 0; i < 3; ++i)
            for (int r = 1; r < 3; ++r)
                EXPECT_EQ(results[static_cast<size_t>(i)],
                          results[static_cast<size_t>(r * 3 + i)]);
        EXPECT_EQ(engine.cache().misses(), 3u);
        EXPECT_EQ(engine.cache().hits(), 6u);
        EXPECT_EQ(engine.metrics().count("jobs.completed"), 3u);
        EXPECT_EQ(engine.metrics().count("jobs.deduplicated"), 6u);
        // compileAll published the cache gauges into the registry.
        EXPECT_EQ(engine.metrics().count("cache.shard_count"),
                  static_cast<uint64_t>(shards));
    }
}

TEST(Engine, ParallelMatchesSerial)
{
    auto jobs = mixedJobs();
    ASSERT_GE(jobs.size(), 8u);

    // Serial reference: direct pipeline runs, no engine. (That
    // Pipeline::run matches the raw entry points is covered by
    // PipelineDispatch.MatchesDirectEntryPoints.)
    std::vector<CompileResult> serial;
    for (const auto &job : jobs)
        serial.push_back(job.pipeline->run(job.blocks, *job.hw));

    EngineOptions opts;
    opts.numThreads = 4;
    Engine engine(opts);
    EXPECT_EQ(engine.numThreads(), 4);
    auto parallel = engine.compileAll(jobs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_NE(parallel[i], nullptr);
        expectSameResult(*parallel[i], serial[i]);
    }
    EXPECT_EQ(engine.metrics().count("jobs.submitted"), jobs.size());
    EXPECT_EQ(engine.metrics().count("jobs.completed"), jobs.size());
}

TEST(Engine, CacheHitsOnRepeatedJob)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    CompileJob job;
    job.name = "repeat";
    job.blocks = buildSyntheticUcc(8, 7);
    job.hw = hw;

    EngineOptions opts;
    opts.numThreads = 2;
    Engine engine(opts);

    auto id0 = engine.submit(job);
    auto id1 = engine.submit(job); // identical -> served from cache
    CompileJob other = job;
    TetrisOptions k3;
    k3.lookaheadK = 3; // different options -> distinct key
    other.pipeline = makeTetrisPipeline(k3);
    auto id2 = engine.submit(other);

    auto r0 = engine.wait(id0);
    auto r1 = engine.wait(id1);
    auto r2 = engine.wait(id2);

    EXPECT_EQ(engine.cache().hits(), 1u);
    EXPECT_EQ(engine.cache().misses(), 2u);
    EXPECT_EQ(engine.cache().size(), 2u);
    EXPECT_EQ(r0, r1); // literally the same immutable result
    EXPECT_NE(r0, r2);
    EXPECT_EQ(engine.metrics().count("jobs.deduplicated"), 1u);
    // Only two compilations actually ran.
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 2u);
    expectSameResult(*r0, *r1);
}

TEST(Engine, CacheKeySensitivity)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob base;
    base.blocks = buildSyntheticUcc(6, 11);
    base.hw = hw;

    uint64_t k0 = Engine::jobKey(base);
    EXPECT_EQ(k0, Engine::jobKey(base)); // stable

    CompileJob tweaked = base;
    TetrisOptions heavy;
    heavy.synthesis.swapWeight = 5.0;
    tweaked.pipeline = makeTetrisPipeline(heavy);
    EXPECT_NE(Engine::jobKey(tweaked), k0);

    CompileJob ph = base;
    ph.pipeline = PipelineRegistry::instance().create("paulihedral");
    EXPECT_NE(Engine::jobKey(ph), k0);

    CompileJob fewer = base;
    fewer.blocks.pop_back();
    EXPECT_NE(Engine::jobKey(fewer), k0);

    CompileJob wider = base;
    wider.hw = std::make_shared<const CouplingGraph>(lineTopology(9));
    EXPECT_NE(Engine::jobKey(wider), k0);

    // The job display name must NOT affect the key.
    CompileJob renamed = base;
    renamed.name = "something-else";
    EXPECT_EQ(Engine::jobKey(renamed), k0);
}

TEST(PipelineRegistry, AllBuiltinsRegistered)
{
    auto &reg = PipelineRegistry::instance();
    for (const char *id :
         {"tetris", "paulihedral", "tket-o2", "tket-o3", "pcoast",
          "naive", "max-cancel", "qaoa-2qan", "qaoa-bridge"}) {
        EXPECT_TRUE(reg.contains(id)) << id;
        PipelinePtr p = reg.create(id);
        ASSERT_NE(p, nullptr) << id;
        EXPECT_EQ(p->name(), id);
        // Default-configured instances hash identically.
        EXPECT_EQ(p->optionsHash(), reg.create(id)->optionsHash());
    }
    EXPECT_FALSE(reg.contains("no-such-pipeline"));
    EXPECT_GE(reg.ids().size(), 9u);
}

/** A downstream-registered pipeline: engine needs no changes. */
class EchoNaivePipeline final : public Pipeline
{
  public:
    const std::string &name() const override
    {
        static const std::string id = "test-echo-naive";
        return id;
    }

    CompileResult
    run(const std::vector<PauliBlock> &blocks,
        const CouplingGraph &hw) const override
    {
        return compileNaive(blocks, hw);
    }

    uint64_t optionsHash() const override { return 1234567; }
};

TEST(PipelineRegistry, CustomPipelinePlugsIn)
{
    auto &reg = PipelineRegistry::instance();
    if (!reg.contains("test-echo-naive")) {
        reg.add("test-echo-naive",
                [] { return std::make_shared<EchoNaivePipeline>(); });
    }

    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob job;
    job.name = "custom";
    job.blocks = buildSyntheticUcc(6, 5);
    job.hw = hw;
    job.pipeline = reg.create("test-echo-naive");

    Engine engine(EngineOptions{.numThreads = 2});
    auto result = engine.wait(engine.submit(job));
    ASSERT_NE(result, nullptr);
    CompileResult ref = compileNaive(job.blocks, *hw);
    EXPECT_EQ(result->stats.cnotCount, ref.stats.cnotCount);
    EXPECT_EQ(result->stats.depth, ref.stats.depth);
}

TEST(PipelineDispatch, MatchesDirectEntryPoints)
{
    CouplingGraph hw = heavyHexTopology(2, 5);
    auto blocks = buildSyntheticUcc(8, 21);
    auto &reg = PipelineRegistry::instance();

    expectSameResult(reg.create("tetris")->run(blocks, hw),
                     compileTetris(blocks, hw));
    expectSameResult(reg.create("paulihedral")->run(blocks, hw),
                     compilePaulihedral(blocks, hw));
    expectSameResult(reg.create("tket-o2")->run(blocks, hw),
                     compileTketProxy(blocks, hw, TketFlavor::O2));
    expectSameResult(
        reg.create("tket-o3")->run(blocks, hw),
        compileTketProxy(blocks, hw, TketFlavor::QiskitO3));
    expectSameResult(reg.create("pcoast")->run(blocks, hw),
                     compilePcoastProxy(blocks, hw));
    expectSameResult(reg.create("naive")->run(blocks, hw),
                     compileNaive(blocks, hw));
    expectSameResult(reg.create("max-cancel")->run(blocks, hw),
                     compileMaxCancel(blocks, hw));

    // The QAOA pipelines want 1-/2-local Z blocks.
    Graph g = Graph::randomWithEdges(10, 16, 3);
    auto qaoa_blocks = buildQaoaCostBlocks(g, 0.35);
    expectSameResult(reg.create("qaoa-2qan")->run(qaoa_blocks, hw),
                     compile2qanProxy(qaoa_blocks, hw));
    expectSameResult(reg.create("qaoa-bridge")->run(qaoa_blocks, hw),
                     compileQaoaTetris(qaoa_blocks, hw));
}

TEST(PipelineDispatch, UnroutedNaiveReproducesTableOneCounts)
{
    CouplingGraph hw = lineTopology(12);
    auto blocks = buildSyntheticUcc(10, 77);

    NaiveOptions logical_only;
    logical_only.route = false;
    CompileResult res =
        makeNaivePipeline(logical_only)->run(blocks, hw);
    EXPECT_EQ(res.stats.cnotCount, naiveCnotCount(blocks));
    EXPECT_EQ(res.stats.swapCount, 0u);
    EXPECT_EQ(res.stats.originalCnots, naiveCnotCount(blocks));
}

TEST(Engine, CacheSeparatesPipelinesOverIdenticalInputs)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    CompileJob tet;
    tet.name = "shared/tetris";
    tet.blocks = buildSyntheticUcc(8, 13);
    tet.hw = hw;
    CompileJob ph = tet;
    ph.name = "shared/ph";
    ph.pipeline = PipelineRegistry::instance().create("paulihedral");

    ASSERT_NE(Engine::jobKey(tet), Engine::jobKey(ph));

    Engine engine(EngineOptions{.numThreads = 2});
    auto r_tet = engine.wait(engine.submit(tet));
    auto r_ph = engine.wait(engine.submit(ph));

    // Two pipelines over identical blocks+device: two cache entries,
    // two compilations, no aliasing.
    EXPECT_EQ(engine.cache().misses(), 2u);
    EXPECT_EQ(engine.cache().hits(), 0u);
    EXPECT_EQ(engine.cache().size(), 2u);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 2u);
    ASSERT_NE(r_tet, nullptr);
    ASSERT_NE(r_ph, nullptr);
    EXPECT_NE(r_tet, r_ph);
    // ...and the documented distinct results: Tetris's structural
    // cancellation beats PH's per-string synthesis on UCC blocks.
    EXPECT_NE(r_tet->stats.cnotCount, r_ph->stats.cnotCount);
}

TEST(Engine, NameSeparatesKeysWhenOptionHashesCollide)
{
    // pcoast and qaoa-2qan are both parameterless: identical options
    // hashes. The pipeline id keeps their cache keys apart.
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob a;
    a.blocks = buildSyntheticUcc(6, 2);
    a.hw = hw;
    a.pipeline = PipelineRegistry::instance().create("pcoast");
    CompileJob b = a;
    b.pipeline = PipelineRegistry::instance().create("qaoa-2qan");

    EXPECT_EQ(a.pipeline->optionsHash(), b.pipeline->optionsHash());
    EXPECT_NE(Engine::jobKey(a), Engine::jobKey(b));
}

TEST(Engine, ProgressCallbackCountsEverySubmission)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));

    // Serialized by the engine, so no extra locking needed here.
    std::vector<std::tuple<size_t, size_t, std::string>> events;
    EngineOptions opts;
    opts.numThreads = 2;
    opts.onJobDone = [&events](size_t done, size_t total,
                               const std::string &name) {
        events.emplace_back(done, total, name);
    };
    Engine engine(opts);

    std::vector<CompileJob> jobs;
    for (int n : {5, 6, 7}) {
        CompileJob job;
        job.name = "p" + std::to_string(n);
        job.blocks = buildSyntheticUcc(n, n);
        job.hw = hw;
        jobs.push_back(std::move(job));
    }
    jobs.push_back(jobs.front()); // duplicate -> dedup, still reported

    auto results = engine.compileAll(jobs);
    ASSERT_EQ(results.size(), 4u);

    ASSERT_EQ(events.size(), 4u);
    size_t max_done = 0;
    for (const auto &[done, total, name] : events) {
        EXPECT_LE(done, total);
        max_done = std::max(max_done, done);
        EXPECT_FALSE(name.empty());
    }
    // Every submission reported exactly once, dedup included.
    EXPECT_EQ(max_done, 4u);
    EXPECT_EQ(std::get<1>(events.back()), 4u);
}

TEST(Engine, StressJobsExceedThreads)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    EngineOptions opts;
    opts.numThreads = 3;
    Engine engine(opts);

    // 32 submissions over 8 distinct workloads: heavy oversubscription
    // plus in-flight dedup pressure.
    std::vector<Engine::JobId> ids;
    for (int round = 0; round < 4; ++round) {
        for (int n = 0; n < 8; ++n) {
            CompileJob job;
            job.name = "stress" + std::to_string(n);
            job.blocks = buildSyntheticUcc(5 + n % 3, 100 + n);
            job.hw = hw;
            ids.push_back(engine.submit(job));
        }
    }
    std::vector<std::shared_ptr<const CompileResult>> results;
    for (auto id : ids)
        results.push_back(engine.wait(id));

    for (const auto &r : results)
        ASSERT_NE(r, nullptr);
    // Repeats of a workload return the cached object.
    for (size_t i = 8; i < results.size(); ++i)
        EXPECT_EQ(results[i], results[i % 8]);
    EXPECT_EQ(engine.cache().misses(), 8u);
    EXPECT_EQ(engine.cache().hits(), 24u);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 8u);
}

TEST(Engine, SingleThreadFallback)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    EngineOptions opts;
    opts.numThreads = 1;
    Engine engine(opts);
    EXPECT_EQ(engine.numThreads(), 1);

    std::vector<CompileJob> jobs;
    for (int n : {5, 6, 7}) {
        CompileJob job;
        job.blocks = buildSyntheticUcc(n, n);
        job.hw = hw;
        jobs.push_back(std::move(job));
    }
    auto results = engine.compileAll(jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto ref = compileTetris(jobs[i].blocks, *jobs[i].hw);
        expectSameResult(*results[i], ref);
    }
}

TEST(Engine, CacheDisabled)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob job;
    job.blocks = buildSyntheticUcc(6, 3);
    job.hw = hw;

    EngineOptions opts;
    opts.numThreads = 2;
    opts.enableCache = false;
    Engine engine(opts);
    auto r0 = engine.wait(engine.submit(job));
    auto r1 = engine.wait(engine.submit(job));
    EXPECT_NE(r0, r1); // compiled twice, distinct objects
    expectSameResult(*r0, *r1);
    EXPECT_EQ(engine.cache().hits(), 0u);
    EXPECT_EQ(engine.cache().misses(), 0u);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 2u);
}

/**
 * A pipeline whose run() blocks on an external gate, making the
 * engine's queue state deterministic for the cancellation tests.
 */
class GatedPipeline final : public Pipeline
{
  public:
    const std::string &name() const override
    {
        static const std::string id = "test-gated";
        return id;
    }

    CompileResult
    run(const std::vector<PauliBlock> &blocks,
        const CouplingGraph &hw) const override
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            started_ = true;
            cv_.notify_all();
            cv_.wait(lock, [this] { return released_; });
        }
        return compileNaive(blocks, hw);
    }

    uint64_t optionsHash() const override { return 0xfade; }

    void
    waitStarted() const
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return started_; });
    }

    void
    release() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        released_ = true;
        cv_.notify_all();
    }

  private:
    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    mutable bool started_ = false;
    mutable bool released_ = false;
};

TEST(Engine, CancelPendingAbandonsQueuedJobs)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    auto gated = std::make_shared<GatedPipeline>();

    EngineOptions opts;
    opts.numThreads = 1; // single worker: queue order is the run order
    Engine engine(opts);
    EXPECT_FALSE(engine.cancelRequested());

    CompileJob first;
    first.name = "running";
    first.blocks = buildSyntheticUcc(5, 1);
    first.hw = hw;
    first.pipeline = gated;
    auto first_id = engine.submit(first);

    std::vector<Engine::JobId> pending_ids;
    for (int n : {5, 6, 7}) {
        CompileJob job;
        job.name = "pending" + std::to_string(n);
        job.blocks = buildSyntheticUcc(n, 50 + n);
        job.hw = hw;
        pending_ids.push_back(engine.submit(job));
    }

    // The worker is provably inside job 0; the rest are queued.
    gated->waitStarted();
    engine.cancelPending();
    EXPECT_TRUE(engine.cancelRequested());
    gated->release();

    // The in-flight job completes normally...
    auto first_result = engine.wait(first_id);
    ASSERT_NE(first_result, nullptr);
    EXPECT_FALSE(first_result->cancelled);
    EXPECT_GT(first_result->stats.totalGateCount, 0u);

    // ...every queued job returns a cancelled placeholder, in order.
    for (auto id : pending_ids) {
        auto r = engine.wait(id);
        ASSERT_NE(r, nullptr);
        EXPECT_TRUE(r->cancelled);
        EXPECT_TRUE(r->circuit.empty());
        EXPECT_EQ(r->stats.totalGateCount, 0u);
    }
    EXPECT_EQ(engine.metrics().count("jobs.cancelled"), 3u);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 1u);

    // Cancelled keys left the cache: a fresh engine recompiles them.
    EXPECT_EQ(engine.cache().size(), 1u);

    // The flag is one-way: later submissions cancel immediately.
    CompileJob late;
    late.name = "late";
    late.blocks = buildSyntheticUcc(6, 99);
    late.hw = hw;
    auto late_result = engine.wait(engine.submit(late));
    ASSERT_NE(late_result, nullptr);
    EXPECT_TRUE(late_result->cancelled);
}

TEST(Engine, CompileAllReturnsInOrderUnderCancellation)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    auto gated = std::make_shared<GatedPipeline>();

    EngineOptions opts;
    opts.numThreads = 1;
    Engine engine(opts);

    std::vector<CompileJob> jobs;
    CompileJob blocker;
    blocker.name = "blocker";
    blocker.blocks = buildSyntheticUcc(5, 2);
    blocker.hw = hw;
    blocker.pipeline = gated;
    jobs.push_back(blocker);
    for (int n : {5, 6, 7, 8}) {
        CompileJob job;
        job.name = "j" + std::to_string(n);
        job.blocks = buildSyntheticUcc(n, 70 + n);
        job.hw = hw;
        jobs.push_back(std::move(job));
    }

    // Cancel while compileAll is blocked on the gated first job.
    std::thread canceller([&] {
        gated->waitStarted();
        engine.cancelPending();
        gated->release();
    });
    auto results = engine.compileAll(std::move(jobs));
    canceller.join();

    ASSERT_EQ(results.size(), 5u);
    ASSERT_NE(results[0], nullptr);
    EXPECT_FALSE(results[0]->cancelled); // already in flight
    for (size_t i = 1; i < results.size(); ++i) {
        ASSERT_NE(results[i], nullptr) << "job " << i;
        EXPECT_TRUE(results[i]->cancelled) << "job " << i;
    }
}

TEST(Engine, StatsSerializeToJson)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob job;
    job.blocks = buildSyntheticUcc(6, 9);
    job.hw = hw;
    Engine engine;
    auto result = engine.wait(engine.submit(job));

    JsonWriter w;
    writeJson(w, result->stats);
    const std::string &doc = w.str();
    EXPECT_NE(doc.find("\"cnotCount\""), std::string::npos);
    EXPECT_NE(doc.find("\"scheduleSeconds\""), std::string::npos);
    EXPECT_NE(doc.find("\"synthesis\""), std::string::npos);

    std::string metrics = engine.metrics().toJson();
    EXPECT_NE(metrics.find("\"counts\""), std::string::npos);
    EXPECT_NE(metrics.find("\"jobs.completed\""), std::string::npos);
    EXPECT_NE(metrics.find("\"compile.total\""), std::string::npos);
}

TEST(Metrics, CountersTimersAndScopedTimer)
{
    MetricsRegistry reg;
    reg.addCount("events", 2);
    reg.addCount("events");
    EXPECT_EQ(reg.count("events"), 3u);
    EXPECT_EQ(reg.count("missing"), 0u);

    reg.addSeconds("phase.a", 0.25);
    reg.addSeconds("phase.a", 0.5);
    EXPECT_DOUBLE_EQ(reg.seconds("phase.a"), 0.75);
    EXPECT_DOUBLE_EQ(reg.seconds("missing"), 0.0);

    {
        ScopedTimer t(reg, "phase.b");
    }
    EXPECT_GE(reg.seconds("phase.b"), 0.0);

    reg.clear();
    EXPECT_EQ(reg.count("events"), 0u);
    EXPECT_DOUBLE_EQ(reg.seconds("phase.a"), 0.0);
}

TEST(Metrics, HandlesMergeWithStringKeys)
{
    MetricsRegistry reg;
    // The same logical instrument updated through both paths reads
    // back as one total, from either API.
    MetricsRegistry::Handle events = reg.counterHandle("events");
    reg.addCount(events, 2);
    reg.addCount("events", 3);
    EXPECT_EQ(reg.count("events"), 5u);
    EXPECT_EQ(reg.counts().at("events"), 5u);

    MetricsRegistry::Handle t = reg.timerHandle("phase.hot");
    reg.addSeconds(t, 1.5);
    reg.addSeconds("phase.hot", 0.5);
    EXPECT_NEAR(reg.seconds("phase.hot"), 2.0, 1e-6);
    EXPECT_NEAR(reg.timers().at("phase.hot"), 2.0, 1e-6);

    // Interning is idempotent; the handle survives clear().
    EXPECT_EQ(reg.counterHandle("events"), events);
    reg.clear();
    EXPECT_EQ(reg.count("events"), 0u);
    reg.addCount(events);
    EXPECT_EQ(reg.count("events"), 1u);

    {
        ScopedTimer timer(reg, reg.timerHandle("phase.scoped"));
    }
    EXPECT_GE(reg.seconds("phase.scoped"), 0.0);
}

TEST(Metrics, HistogramsInRegistry)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("job.latency_ns");
    EXPECT_EQ(&reg.histogram("job.latency_ns"), &h); // stable ref
    h.record(100);
    h.record(200000);

    auto snaps = reg.histogramSnapshots();
    ASSERT_EQ(snaps.count("job.latency_ns"), 1u);
    EXPECT_EQ(snaps["job.latency_ns"].count, 2u);
    EXPECT_EQ(snaps["job.latency_ns"].max, 200000u);
    EXPECT_LE(snaps["job.latency_ns"].p50,
              snaps["job.latency_ns"].p99);

    std::string doc = reg.toJson();
    EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
    EXPECT_NE(doc.find("\"job.latency_ns\""), std::string::npos);
    EXPECT_NE(doc.find("\"p99\""), std::string::npos);
    EXPECT_NE(doc.find("\"buckets\""), std::string::npos);

    reg.clear();
    EXPECT_EQ(reg.histogramSnapshots()["job.latency_ns"].count, 0u);
}

TEST(Metrics, PercentilesSurviveBucketRoundTrip)
{
    // The BENCH_*.json histogram section carries the sparse bucket
    // array; percentiles recomputed from those counts alone must
    // reproduce the emitted p50/p90/p99 exactly. That holds because
    // percentile() is a pure function of the bucket counts.
    Histogram original;
    uint64_t state = 88172645463325252ull;
    for (int i = 0; i < 5000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        original.record(state % 10000000);
    }

    Histogram rebuilt;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
        uint64_t n = original.bucketCount(i);
        for (uint64_t k = 0; k < n; ++k)
            rebuilt.record(Histogram::bucketUpperBound(i));
    }

    EXPECT_EQ(rebuilt.count(), original.count());
    for (double p : {0.5, 0.9, 0.99}) {
        EXPECT_EQ(rebuilt.percentile(p), original.percentile(p))
            << "p=" << p;
    }
}

TEST(Engine, LatencyHistogramsCoverEveryDequeuedJob)
{
    Engine engine;
    auto results = engine.compileAll(mixedJobs());
    ASSERT_FALSE(results.empty());

    auto snaps = engine.metrics().histogramSnapshots();
    const auto &latency = snaps.at("job.latency_ns");
    const auto &queue_wait = snaps.at("job.queue_wait_ns");
    // One sample per dequeued (non-deduplicated) submission.
    const uint64_t dequeued =
        engine.metrics().count("jobs.submitted") -
        engine.metrics().count("jobs.deduplicated");
    EXPECT_EQ(latency.count, dequeued);
    EXPECT_EQ(queue_wait.count, dequeued);
    EXPECT_GT(latency.sum, 0u);
    EXPECT_LE(latency.p50, latency.p90);
    EXPECT_LE(latency.p90, latency.p99);

    // The trajectory JSON exposes the same distributions.
    std::string doc = engine.metrics().toJson();
    EXPECT_NE(doc.find("\"job.latency_ns\""), std::string::npos);
    EXPECT_NE(doc.find("\"job.queue_wait_ns\""), std::string::npos);
    // And the cache lock-wait histogram is wired (possibly empty).
    EXPECT_NE(doc.find("\"cache.lock_wait_ns\""), std::string::npos);
}

TEST(Json, WriterBasics)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").beginArray().value("x\"y").value(2.5).value(true).null();
    w.endArray();
    w.key("c").beginObject().key("d").value(uint64_t{7}).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":[\"x\\\"y\",2.5,true,null],"
              "\"c\":{\"d\":7}}");
}

} // namespace
} // namespace tetris
