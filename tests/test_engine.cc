/**
 * @file
 * Batch-engine tests: parallel-vs-serial determinism, compile-cache
 * hit/miss accounting and in-flight dedup, thread-pool stress, the
 * single-thread fallback, the TETRIS_ENGINE_THREADS knob, and JSON
 * serialization of stats and metrics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "chem/uccsd.hh"
#include "common/json.hh"
#include "engine/engine.hh"
#include "engine/thread_pool.hh"
#include "hardware/topologies.hh"

namespace tetris
{
namespace
{

/** A mixed >= 8-job workload over two devices and several options. */
std::vector<CompileJob>
mixedJobs()
{
    auto hex = std::make_shared<const CouplingGraph>(heavyHexTopology(2, 5));
    auto grid = std::make_shared<const CouplingGraph>(gridTopology(4, 4));

    std::vector<CompileJob> jobs;
    for (int n : {6, 8, 10}) {
        CompileJob job;
        job.name = "ucc" + std::to_string(n);
        job.blocks = buildSyntheticUcc(n, 42 + n);
        job.hw = n <= 8 ? hex : grid;
        jobs.push_back(job);

        CompileJob lex = job;
        lex.name += "/lex";
        lex.tetris.scheduler = SchedulerKind::Lexicographic;
        jobs.push_back(std::move(lex));

        CompileJob ph = job;
        ph.name += "/ph";
        ph.pipeline = PipelineKind::Paulihedral;
        jobs.push_back(std::move(ph));
    }
    return jobs;
}

/** Deterministic (non-timing) fields must match bit for bit. */
void
expectSameResult(const CompileResult &a, const CompileResult &b)
{
    EXPECT_EQ(a.stats.cnotCount, b.stats.cnotCount);
    EXPECT_EQ(a.stats.oneQubitCount, b.stats.oneQubitCount);
    EXPECT_EQ(a.stats.totalGateCount, b.stats.totalGateCount);
    EXPECT_EQ(a.stats.depth, b.stats.depth);
    EXPECT_EQ(a.stats.durationDt, b.stats.durationDt);
    EXPECT_EQ(a.stats.swapCount, b.stats.swapCount);
    EXPECT_EQ(a.stats.swapCnots, b.stats.swapCnots);
    EXPECT_EQ(a.stats.logicalCnots, b.stats.logicalCnots);
    EXPECT_EQ(a.stats.originalCnots, b.stats.originalCnots);
    EXPECT_EQ(a.stats.cancelRatio, b.stats.cancelRatio);
    EXPECT_EQ(a.stats.synthesis.insertedSwaps,
              b.stats.synthesis.insertedSwaps);
    EXPECT_EQ(a.stats.synthesis.emittedCx, b.stats.synthesis.emittedCx);
    EXPECT_EQ(a.blockOrder, b.blockOrder);
    EXPECT_EQ(a.finalLayout, b.finalLayout);
    EXPECT_EQ(a.circuit.totalGateCount(), b.circuit.totalGateCount());
}

TEST(ThreadPool, StressManyTasks)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.numThreads(), 4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 500);

    // Pool stays usable after an idle period.
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(counter.load(), 501);
}

TEST(ThreadPool, ResolveThreadCount)
{
    EXPECT_EQ(ThreadPool::resolveThreadCount(3), 3);
    ::setenv("TETRIS_ENGINE_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::resolveThreadCount(0), 5);
    ::setenv("TETRIS_ENGINE_THREADS", "garbage", 1);
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1);
    ::unsetenv("TETRIS_ENGINE_THREADS");
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1);
}

TEST(Engine, ParallelMatchesSerial)
{
    auto jobs = mixedJobs();
    ASSERT_GE(jobs.size(), 8u);

    // Serial reference: direct pipeline calls, no engine.
    std::vector<CompileResult> serial;
    for (const auto &job : jobs) {
        serial.push_back(job.pipeline == PipelineKind::Tetris
                             ? compileTetris(job.blocks, *job.hw,
                                             job.tetris)
                             : compilePaulihedral(job.blocks, *job.hw,
                                                  job.paulihedral));
    }

    EngineOptions opts;
    opts.numThreads = 4;
    Engine engine(opts);
    EXPECT_EQ(engine.numThreads(), 4);
    auto parallel = engine.compileAll(jobs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_NE(parallel[i], nullptr);
        expectSameResult(*parallel[i], serial[i]);
    }
    EXPECT_EQ(engine.metrics().count("jobs.submitted"), jobs.size());
    EXPECT_EQ(engine.metrics().count("jobs.completed"), jobs.size());
}

TEST(Engine, CacheHitsOnRepeatedJob)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(10));
    CompileJob job;
    job.name = "repeat";
    job.blocks = buildSyntheticUcc(8, 7);
    job.hw = hw;

    EngineOptions opts;
    opts.numThreads = 2;
    Engine engine(opts);

    auto id0 = engine.submit(job);
    auto id1 = engine.submit(job); // identical -> served from cache
    CompileJob other = job;
    other.tetris.lookaheadK = 3; // different options -> distinct key
    auto id2 = engine.submit(other);

    auto r0 = engine.wait(id0);
    auto r1 = engine.wait(id1);
    auto r2 = engine.wait(id2);

    EXPECT_EQ(engine.cache().hits(), 1u);
    EXPECT_EQ(engine.cache().misses(), 2u);
    EXPECT_EQ(engine.cache().size(), 2u);
    EXPECT_EQ(r0, r1); // literally the same immutable result
    EXPECT_NE(r0, r2);
    EXPECT_EQ(engine.metrics().count("jobs.deduplicated"), 1u);
    // Only two compilations actually ran.
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 2u);
    expectSameResult(*r0, *r1);
}

TEST(Engine, CacheKeySensitivity)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob base;
    base.blocks = buildSyntheticUcc(6, 11);
    base.hw = hw;

    uint64_t k0 = Engine::jobKey(base);
    EXPECT_EQ(k0, Engine::jobKey(base)); // stable

    CompileJob tweaked = base;
    tweaked.tetris.synthesis.swapWeight = 5.0;
    EXPECT_NE(Engine::jobKey(tweaked), k0);

    CompileJob ph = base;
    ph.pipeline = PipelineKind::Paulihedral;
    EXPECT_NE(Engine::jobKey(ph), k0);

    CompileJob fewer = base;
    fewer.blocks.pop_back();
    EXPECT_NE(Engine::jobKey(fewer), k0);

    CompileJob wider = base;
    wider.hw = std::make_shared<const CouplingGraph>(lineTopology(9));
    EXPECT_NE(Engine::jobKey(wider), k0);

    // The job display name must NOT affect the key.
    CompileJob renamed = base;
    renamed.name = "something-else";
    EXPECT_EQ(Engine::jobKey(renamed), k0);
}

TEST(Engine, StressJobsExceedThreads)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    EngineOptions opts;
    opts.numThreads = 3;
    Engine engine(opts);

    // 32 submissions over 8 distinct workloads: heavy oversubscription
    // plus in-flight dedup pressure.
    std::vector<Engine::JobId> ids;
    for (int round = 0; round < 4; ++round) {
        for (int n = 0; n < 8; ++n) {
            CompileJob job;
            job.name = "stress" + std::to_string(n);
            job.blocks = buildSyntheticUcc(5 + n % 3, 100 + n);
            job.hw = hw;
            ids.push_back(engine.submit(job));
        }
    }
    std::vector<std::shared_ptr<const CompileResult>> results;
    for (auto id : ids)
        results.push_back(engine.wait(id));

    for (const auto &r : results)
        ASSERT_NE(r, nullptr);
    // Repeats of a workload return the cached object.
    for (size_t i = 8; i < results.size(); ++i)
        EXPECT_EQ(results[i], results[i % 8]);
    EXPECT_EQ(engine.cache().misses(), 8u);
    EXPECT_EQ(engine.cache().hits(), 24u);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 8u);
}

TEST(Engine, SingleThreadFallback)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    EngineOptions opts;
    opts.numThreads = 1;
    Engine engine(opts);
    EXPECT_EQ(engine.numThreads(), 1);

    std::vector<CompileJob> jobs;
    for (int n : {5, 6, 7}) {
        CompileJob job;
        job.blocks = buildSyntheticUcc(n, n);
        job.hw = hw;
        jobs.push_back(std::move(job));
    }
    auto results = engine.compileAll(jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
        auto ref = compileTetris(jobs[i].blocks, *jobs[i].hw);
        expectSameResult(*results[i], ref);
    }
}

TEST(Engine, CacheDisabled)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob job;
    job.blocks = buildSyntheticUcc(6, 3);
    job.hw = hw;

    EngineOptions opts;
    opts.numThreads = 2;
    opts.enableCache = false;
    Engine engine(opts);
    auto r0 = engine.wait(engine.submit(job));
    auto r1 = engine.wait(engine.submit(job));
    EXPECT_NE(r0, r1); // compiled twice, distinct objects
    expectSameResult(*r0, *r1);
    EXPECT_EQ(engine.cache().hits(), 0u);
    EXPECT_EQ(engine.cache().misses(), 0u);
    EXPECT_EQ(engine.metrics().count("jobs.completed"), 2u);
}

TEST(Engine, StatsSerializeToJson)
{
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    CompileJob job;
    job.blocks = buildSyntheticUcc(6, 9);
    job.hw = hw;
    Engine engine;
    auto result = engine.wait(engine.submit(job));

    JsonWriter w;
    writeJson(w, result->stats);
    const std::string &doc = w.str();
    EXPECT_NE(doc.find("\"cnotCount\""), std::string::npos);
    EXPECT_NE(doc.find("\"scheduleSeconds\""), std::string::npos);
    EXPECT_NE(doc.find("\"synthesis\""), std::string::npos);

    std::string metrics = engine.metrics().toJson();
    EXPECT_NE(metrics.find("\"counts\""), std::string::npos);
    EXPECT_NE(metrics.find("\"jobs.completed\""), std::string::npos);
    EXPECT_NE(metrics.find("\"compile.total\""), std::string::npos);
}

TEST(Metrics, CountersTimersAndScopedTimer)
{
    MetricsRegistry reg;
    reg.addCount("events", 2);
    reg.addCount("events");
    EXPECT_EQ(reg.count("events"), 3u);
    EXPECT_EQ(reg.count("missing"), 0u);

    reg.addSeconds("phase.a", 0.25);
    reg.addSeconds("phase.a", 0.5);
    EXPECT_DOUBLE_EQ(reg.seconds("phase.a"), 0.75);
    EXPECT_DOUBLE_EQ(reg.seconds("missing"), 0.0);

    {
        ScopedTimer t(reg, "phase.b");
    }
    EXPECT_GE(reg.seconds("phase.b"), 0.0);

    reg.clear();
    EXPECT_EQ(reg.count("events"), 0u);
    EXPECT_DOUBLE_EQ(reg.seconds("phase.a"), 0.0);
}

TEST(Json, WriterBasics)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").value(1);
    w.key("b").beginArray().value("x\"y").value(2.5).value(true).null();
    w.endArray();
    w.key("c").beginObject().key("d").value(uint64_t{7}).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"b\":[\"x\\\"y\",2.5,true,null],"
              "\"c\":{\"d\":7}}");
}

} // namespace
} // namespace tetris
