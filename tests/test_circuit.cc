/**
 * @file
 * Circuit IR tests: metric accounting (CNOT/depth/duration with the
 * paper's SWAP=3 convention), inverse, and SWAP decomposition.
 */

#include <gtest/gtest.h>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace tetris
{
namespace
{

TEST(Circuit, CountsFollowPaperConventions)
{
    Circuit c(3);
    c.h(0);
    c.rz(1, 0.5);
    c.cx(0, 1);
    c.swap(1, 2);
    EXPECT_EQ(c.cnotCount(), 4u); // 1 CX + 3 per SWAP
    EXPECT_EQ(c.swapCount(), 1u);
    EXPECT_EQ(c.oneQubitCount(), 2u);
    EXPECT_EQ(c.totalGateCount(), 6u);
}

TEST(Circuit, DepthCountsSwapAsThreeLayers)
{
    Circuit c(2);
    c.swap(0, 1);
    EXPECT_EQ(c.depth(), 3u);
    Circuit d(2);
    d.cx(0, 1);
    d.cx(0, 1);
    EXPECT_EQ(d.depth(), 2u);
}

TEST(Circuit, DepthUsesCriticalPath)
{
    Circuit c(3);
    c.h(0);
    c.h(1);
    c.h(2); // parallel layer
    c.cx(0, 1);
    EXPECT_EQ(c.depth(), 2u);
}

TEST(Circuit, DurationWeighsGatesByModel)
{
    DurationModel m;
    Circuit c(2);
    c.h(0);
    c.cx(0, 1);
    EXPECT_DOUBLE_EQ(c.duration(m), m.oneQubitDt + m.cnotDt);

    Circuit d(2);
    d.h(0);
    d.h(1); // parallel: only one 1Q layer on the critical path
    d.cx(0, 1);
    EXPECT_DOUBLE_EQ(d.duration(m), m.oneQubitDt + m.cnotDt);
}

TEST(Circuit, InverseUndoesTheCircuit)
{
    Rng rng(17);
    Circuit c(3);
    c.h(0);
    c.s(1);
    c.cx(0, 2);
    c.rz(2, 0.37);
    c.sdg(1);
    c.rx(0, 1.1);
    c.swap(1, 2);

    Statevector sv = Statevector::random(3, rng);
    Statevector orig = sv;
    sv.applyCircuit(c);
    sv.applyCircuit(c.inverse());
    EXPECT_NEAR(sv.overlapWith(orig), 1.0, 1e-9);
}

TEST(Circuit, SwapDecompositionPreservesUnitary)
{
    Rng rng(19);
    Circuit c(3);
    c.h(0);
    c.swap(0, 2);
    c.cx(2, 1);
    c.swap(1, 0);

    Statevector a = Statevector::random(3, rng);
    Statevector b = a;
    a.applyCircuit(c);
    b.applyCircuit(c.withSwapsDecomposed());
    EXPECT_NEAR(a.overlapWith(b), 1.0, 1e-9);
    EXPECT_EQ(c.withSwapsDecomposed().swapCount(), 0u);
    EXPECT_EQ(c.withSwapsDecomposed().cnotCount(), c.cnotCount());
}

TEST(Circuit, AppendConcatenates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cx(0, 1);
    a.append(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.gates()[1].kind, GateKind::CX);
}

TEST(Gate, ToStringFormats)
{
    EXPECT_EQ(Gate::cx(3, 5).toString(), "CX 3 5");
    EXPECT_EQ(Gate::h(2).toString(), "H 2");
    EXPECT_EQ(Gate::rz(1, 0.5).toString(), "RZ 1 (0.5)");
}

TEST(Gate, ActsOnChecksBothWires)
{
    Gate g = Gate::cx(1, 4);
    EXPECT_TRUE(g.actsOn(1));
    EXPECT_TRUE(g.actsOn(4));
    EXPECT_FALSE(g.actsOn(2));
    EXPECT_FALSE(Gate::h(0).actsOn(-1));
}

TEST(DurationModel, SwapIsThreeCnots)
{
    DurationModel m;
    EXPECT_DOUBLE_EQ(m.of(Gate::swap(0, 1)), 3.0 * m.cnotDt);
}

} // namespace
} // namespace tetris
