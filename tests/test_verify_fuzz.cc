/**
 * @file
 * Differential fuzzing harness: seeded random Pauli-block programs
 * and devices (with adversarial rotation angles at and near 0 and
 * +-pi -- see fuzzTheta), compiled through every registered
 * pipeline, with every result checked against the source program
 * (both checkers) and -- when the program is order-free (globally
 * commuting) -- against every *other* pipeline's result
 * state-for-state. Each pipeline thus
 * acts as a test oracle for all the others: a miscompile must either
 * trip its own verifier or disagree with six independent compilers.
 *
 * The sweep is seeded and bounded so ctest stays fast; scripts/
 * fuzz_verify.py drives many seeds for the long-running version:
 *
 *   TETRIS_FUZZ_SEED=<n>   base seed (default 1)
 *   TETRIS_FUZZ_CASES=<n>  programs per suite (default 4)
 */

#include <cstdlib>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "core/pipeline_adapters.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "qaoa/graph.hh"
#include "qaoa/qaoa.hh"
#include "sim/statevector.hh"
#include "test_util.hh"
#include "verify/internal.hh"
#include "verify/verify.hh"

namespace tetris
{
namespace
{

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    return (end != nullptr && *end == '\0') ? parsed : fallback;
}

uint64_t
baseSeed()
{
    return envOr("TETRIS_FUZZ_SEED", 1);
}

int
numCases()
{
    return static_cast<int>(envOr("TETRIS_FUZZ_CASES", 4));
}

/**
 * A fuzz rotation angle. Half the draws are benign uniforms; the
 * other half target the numerically hostile corners of the domain:
 * exactly 0 and ±π, and values a sub-1e-7 epsilon away from them.
 * These stress the conjugation checker's per-axis angle sums mod 2π
 * (±π alias under the wraparound, near-zero sums sit right at the
 * match tolerance) and the exact checker's phase comparison.
 */
double
fuzzTheta(Rng &rng)
{
    if (rng.uniformInt(0, 1) == 0)
        return rng.uniform(-1.4, 1.4);
    constexpr double kPi = 3.14159265358979323846;
    const double eps = rng.uniform(0.0, 1e-7);
    switch (rng.uniformInt(0, 5)) {
      case 0:
        return 0.0;
      case 1:
        return eps;
      case 2:
        return -eps;
      case 3:
        return kPi - eps;
      case 4:
        return -kPi + eps;
      default:
        return rng.uniformInt(0, 1) == 0 ? kPi : -kPi;
    }
}

/** A random non-identity string over n qubits. */
PauliString
randomString(Rng &rng, int n)
{
    while (true) {
        PauliString s(static_cast<size_t>(n));
        for (int q = 0; q < n; ++q)
            s.setOp(q, static_cast<PauliOp>(rng.uniformInt(0, 3)));
        if (!s.isIdentity())
            return s;
    }
}

/**
 * A random block program. Strings within one block always mutually
 * commute (the library contract both schedulers and the conjugation
 * checker rely on); `globally_commuting` additionally makes every
 * cross-block pair commute, which legalizes arbitrary inter-block
 * reordering and hence direct pipeline-vs-pipeline comparison.
 */
std::vector<PauliBlock>
randomProgram(Rng &rng, int num_qubits, bool globally_commuting)
{
    const int num_blocks = rng.uniformInt(2, 4);
    std::vector<PauliString> accepted;
    std::vector<PauliBlock> blocks;
    for (int b = 0; b < num_blocks; ++b) {
        const int want = rng.uniformInt(1, 3);
        std::vector<PauliString> strings;
        std::vector<double> weights;
        for (int attempt = 0; attempt < 200 &&
                              static_cast<int>(strings.size()) < want;
             ++attempt) {
            PauliString cand = randomString(rng, num_qubits);
            bool ok = true;
            for (const auto &s : strings)
                ok = ok && cand.commutesWith(s);
            if (globally_commuting) {
                for (const auto &s : accepted)
                    ok = ok && cand.commutesWith(s);
            }
            if (!ok)
                continue;
            strings.push_back(cand);
            // Unit weights every few draws keep w*theta exactly on
            // the adversarial angle instead of smearing it.
            weights.push_back(rng.uniformInt(0, 2) == 0
                                  ? 1.0
                                  : rng.uniform(0.25, 1.75));
        }
        if (strings.empty())
            continue;
        accepted.insert(accepted.end(), strings.begin(), strings.end());
        blocks.emplace_back(std::move(strings), std::move(weights),
                            fuzzTheta(rng));
    }
    if (blocks.empty())
        blocks.push_back(PauliBlock({randomString(rng, num_qubits)}, 0.5));
    return blocks;
}

/** A random connected device with >= min_qubits wires. */
CouplingGraph
randomDevice(Rng &rng, int min_qubits)
{
    const int n = min_qubits + rng.uniformInt(0, 2);
    switch (rng.uniformInt(0, 3)) {
      case 0:
        return lineTopology(n);
      case 1:
        return ringTopology(std::max(n, 3));
      case 2:
        return gridTopology(2, (n + 1) / 2);
      default: {
        // Random spanning tree plus a few chords.
        std::set<std::pair<int, int>> edges;
        for (int v = 1; v < n; ++v)
            edges.insert({rng.uniformInt(0, v - 1), v});
        for (int extra = rng.uniformInt(0, n / 2); extra > 0; --extra) {
            int a = rng.uniformInt(0, n - 1);
            int b = rng.uniformInt(0, n - 1);
            if (a == b)
                continue;
            edges.insert({std::min(a, b), std::max(a, b)});
        }
        return CouplingGraph(
            n, {edges.begin(), edges.end()}, "fuzz-random");
      }
    }
}

std::vector<std::string>
generalPipelines()
{
    return {"tetris",  "paulihedral", "tket-o2",   "tket-o3",
            "pcoast",  "naive",       "max-cancel"};
}

/**
 * Simulate `result` on the embedded input and undo its final-layout
 * permutation, so states from different pipelines (with different
 * SWAP histories) become directly comparable.
 */
Statevector
normalizedOutput(const std::vector<PauliBlock> &blocks,
                 const CompileResult &result, const Statevector &start,
                 int width)
{
    Statevector out = start;
    out.applyCircuit(result.circuit);
    std::string why;
    auto perm = verify_detail::finalPermutation(
        result, blocksNumQubits(blocks), width, why);
    EXPECT_TRUE(perm.has_value()) << why;
    if (!perm)
        return out;
    // Invert: move bit new_pos[l] back onto l.
    std::vector<int> inverse(width, 0);
    for (int b = 0; b < width; ++b)
        inverse[(*perm)[b]] = b;
    return test::permuteState(out, inverse);
}

struct Compiled
{
    std::string id;
    CompileResult result;
};

/** Compile through every id; each result must self-verify. */
std::vector<Compiled>
compileAllAndVerify(const std::vector<PauliBlock> &blocks,
                    const CouplingGraph &hw,
                    const std::vector<std::string> &ids,
                    const std::string &ctx)
{
    std::vector<Compiled> out;
    for (const auto &id : ids) {
        Compiled c{id,
                   PipelineRegistry::instance().create(id)->run(blocks,
                                                                hw)};
        VerifyReport exact = verifyExact(blocks, c.result);
        EXPECT_EQ(exact.status, VerifyStatus::Pass)
            << ctx << " " << id << " exact: " << exact.detail;
        VerifyReport conj = verifyConjugation(blocks, c.result);
        EXPECT_EQ(conj.status, VerifyStatus::Pass)
            << ctx << " " << id << " conjugation: " << conj.detail;
        out.push_back(std::move(c));
    }
    return out;
}

/** All results must agree state-for-state (order-free programs). */
void
expectPairwiseAgreement(const std::vector<PauliBlock> &blocks,
                        const std::vector<Compiled> &compiled,
                        const CouplingGraph &hw, Rng &rng,
                        const std::string &ctx)
{
    const int width = hw.numQubits();
    Statevector logical =
        Statevector::random(blocksNumQubits(blocks), rng);
    Statevector start = test::embedState(logical, width);

    std::vector<Statevector> states;
    for (const auto &c : compiled)
        states.push_back(
            normalizedOutput(blocks, c.result, start, width));
    for (size_t i = 1; i < states.size(); ++i) {
        double overlap = states[0].overlapWith(states[i]);
        EXPECT_NEAR(overlap, 1.0, 1e-7)
            << ctx << ": " << compiled[0].id << " vs "
            << compiled[i].id << " diverge";
    }
}

TEST(DifferentialFuzz, RandomProgramsAcrossAllPipelines)
{
    const int cases = numCases();
    for (int c = 0; c < cases; ++c) {
        Rng rng(baseSeed() * 1000003 + c);
        const bool order_free = c % 2 == 0;
        const int num_qubits = rng.uniformInt(3, 5);
        auto blocks = randomProgram(rng, num_qubits, order_free);
        CouplingGraph hw = randomDevice(rng, num_qubits + 1);

        std::ostringstream ctx;
        ctx << "case " << c << " (seed " << baseSeed() << ", "
            << hw.name() << "/" << hw.numQubits() << "q"
            << (order_free ? ", order-free" : "") << ")";

        auto compiled = compileAllAndVerify(blocks, hw,
                                            generalPipelines(),
                                            ctx.str());
        if (order_free)
            expectPairwiseAgreement(blocks, compiled, hw, rng,
                                    ctx.str());
    }
}

TEST(DifferentialFuzz, QaoaProgramsIncludeQaoaPipelines)
{
    const int cases = numCases();
    for (int c = 0; c < cases; ++c) {
        Rng rng(baseSeed() * 7000003 + c);
        const int n = rng.uniformInt(5, 7);
        Graph g = Graph::randomWithEdges(
            n, rng.uniformInt(n, n + 3),
            static_cast<int>(baseSeed() * 31 + c));
        auto blocks = buildQaoaCostBlocks(g, rng.uniform(0.1, 0.9));
        CouplingGraph hw = randomDevice(rng, n + 1);

        std::ostringstream ctx;
        ctx << "qaoa case " << c << " (seed " << baseSeed() << ")";

        // ZZ cost layers are globally commuting, so the QAOA-special
        // pipelines can be compared directly against the general
        // ones. Qubit reuse is disabled: measure+reset circuits are
        // outside the unitary contract (the dispatcher skips them).
        std::vector<Compiled> compiled = compileAllAndVerify(
            blocks, hw,
            {"tetris", "paulihedral", "naive", "qaoa-2qan"},
            ctx.str());
        QaoaPassOptions qopts;
        qopts.enableQubitReuse = false;
        Compiled bridge{
            "qaoa-bridge(no-reuse)",
            makeQaoaBridgePipeline(qopts)->run(blocks, hw)};
        VerifyReport conj = verifyConjugation(blocks, bridge.result);
        EXPECT_EQ(conj.status, VerifyStatus::Pass)
            << ctx.str() << " " << conj.detail;
        compiled.push_back(std::move(bridge));

        expectPairwiseAgreement(blocks, compiled, hw, rng, ctx.str());
    }
}

TEST(DifferentialFuzz, EngineSweepVerifiesEveryJob)
{
    // The same fuzz programs through the batch engine with the
    // verify pass on: no job may fail verification, and every unique
    // job must be accounted pass or skipped.
    EngineOptions opts;
    opts.verify = true;
    Engine engine(opts);

    std::vector<CompileJob> jobs;
    const int cases = std::max(numCases() / 2, 1);
    for (int c = 0; c < cases; ++c) {
        Rng rng(baseSeed() * 13000003 + c);
        const int num_qubits = rng.uniformInt(3, 5);
        auto blocks = randomProgram(rng, num_qubits, false);
        auto hw = std::make_shared<const CouplingGraph>(
            randomDevice(rng, num_qubits + 1));
        for (const auto &id : generalPipelines()) {
            CompileJob job;
            job.name = "fuzz-" + std::to_string(c) + "/" + id;
            job.blocks = blocks;
            job.hw = hw;
            job.pipeline = PipelineRegistry::instance().create(id);
            jobs.push_back(std::move(job));
        }
    }
    const size_t total = jobs.size();
    engine.compileAll(std::move(jobs));

    EXPECT_EQ(engine.metrics().count("verify.fail"), 0u);
    EXPECT_EQ(engine.metrics().count("verify.pass") +
                  engine.metrics().count("verify.skipped"),
              total);
}

} // namespace
} // namespace tetris
