/**
 * @file
 * Topology, coupling-graph, and layout tests.
 */

#include <gtest/gtest.h>

#include "hardware/coupling_graph.hh"
#include "hardware/layout.hh"
#include "hardware/topologies.hh"

namespace tetris
{
namespace
{

TEST(Topologies, LineBasics)
{
    CouplingGraph g = lineTopology(5);
    EXPECT_EQ(g.numQubits(), 5);
    EXPECT_TRUE(g.isConnected());
    EXPECT_EQ(g.distance(0, 4), 4);
    EXPECT_TRUE(g.connected(2, 3));
    EXPECT_FALSE(g.connected(0, 2));
    EXPECT_EQ(g.maxDegree(), 2);
}

TEST(Topologies, RingWrapsAround)
{
    CouplingGraph g = ringTopology(6);
    EXPECT_EQ(g.distance(0, 5), 1);
    EXPECT_EQ(g.distance(0, 3), 3);
}

TEST(Topologies, GridDistancesAreManhattan)
{
    CouplingGraph g = gridTopology(3, 4);
    EXPECT_EQ(g.numQubits(), 12);
    EXPECT_EQ(g.distance(0, 11), 5); // (0,0) -> (2,3)
    EXPECT_EQ(g.maxDegree(), 4);
}

TEST(Topologies, IbmIthacaMatchesPaperBackend)
{
    CouplingGraph g = ibmIthaca65();
    EXPECT_EQ(g.numQubits(), 65);
    EXPECT_TRUE(g.isConnected());
    EXPECT_LE(g.maxDegree(), 3); // heavy-hex property
}

TEST(Topologies, SycamoreMatchesPaperBackend)
{
    CouplingGraph g = googleSycamore64();
    EXPECT_EQ(g.numQubits(), 64);
    EXPECT_TRUE(g.isConnected());
    EXPECT_LE(g.maxDegree(), 4);
}

TEST(Topologies, SycamoreIsDenserThanHeavyHex)
{
    // Average degree comparison drives the Sec. VI-E discussion.
    CouplingGraph hh = ibmIthaca65();
    CouplingGraph sy = googleSycamore64();
    double hh_deg = 2.0 * hh.edges().size() / hh.numQubits();
    double sy_deg = 2.0 * sy.edges().size() / sy.numQubits();
    EXPECT_GT(sy_deg, hh_deg);
}

TEST(Topologies, HeavyHexBridgeQubitsHaveDegreeTwo)
{
    CouplingGraph g = heavyHexTopology(3, 7);
    int deg2 = 0;
    for (int q = 0; q < g.numQubits(); ++q) {
        if (static_cast<int>(g.neighbors(q).size()) == 2)
            ++deg2;
    }
    EXPECT_GT(deg2, 0);
    EXPECT_LE(g.maxDegree(), 3);
    EXPECT_TRUE(g.isConnected());
}

TEST(CouplingGraph, ShortestPathEndpointsInclusive)
{
    CouplingGraph g = lineTopology(5);
    auto path = g.shortestPath(1, 4);
    EXPECT_EQ(path, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(g.shortestPath(2, 2), (std::vector<int>{2}));
}

TEST(CouplingGraph, ShortestPathRespectsBlocking)
{
    CouplingGraph g = ringTopology(6);
    std::vector<bool> blocked(6, false);
    blocked[1] = true;
    auto path = g.shortestPath(0, 2, &blocked);
    // Must go the long way around: 0-5-4-3-2.
    EXPECT_EQ(path.size(), 5u);
    EXPECT_EQ(path.front(), 0);
    EXPECT_EQ(path.back(), 2);
}

TEST(CouplingGraph, BlockedEndpointIsStillReachable)
{
    CouplingGraph g = lineTopology(4);
    std::vector<bool> blocked(4, false);
    blocked[3] = true; // target itself blocked: still allowed
    auto path = g.shortestPath(0, 3, &blocked);
    EXPECT_EQ(path.size(), 4u);
}

TEST(CouplingGraph, NoPathReturnsEmpty)
{
    CouplingGraph g(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(g.isConnected());
    EXPECT_TRUE(g.shortestPath(0, 3).empty());
}

TEST(CouplingGraph, FindCenterMinimizesTotalDistance)
{
    CouplingGraph g = lineTopology(7);
    EXPECT_EQ(g.findCenter({0, 6}), 3);
    EXPECT_EQ(g.findCenter({0, 1, 2}), 1);
    EXPECT_EQ(g.findCenter({5}), 5);
}

TEST(Layout, TrivialMapping)
{
    Layout l(3, 5);
    EXPECT_EQ(l.physOf(2), 2);
    EXPECT_EQ(l.logicalAt(2), 2);
    EXPECT_TRUE(l.isFree(4));
    EXPECT_FALSE(l.isFree(0));
}

TEST(Layout, SwapMovesOccupants)
{
    Layout l(2, 4);
    l.applySwap(0, 3); // logical 0 onto free slot 3
    EXPECT_EQ(l.physOf(0), 3);
    EXPECT_TRUE(l.isFree(0));
    EXPECT_EQ(l.logicalAt(3), 0);

    l.applySwap(1, 3); // swap two occupied slots
    EXPECT_EQ(l.physOf(0), 1);
    EXPECT_EQ(l.physOf(1), 3);
}

TEST(Layout, EvictAndPlace)
{
    Layout l(2, 3);
    l.evict(1);
    EXPECT_TRUE(l.isFree(1));
    l.place(1, 2);
    EXPECT_EQ(l.physOf(1), 2);
    EXPECT_EQ(l.logicalAt(2), 1);
}

} // namespace
} // namespace tetris
