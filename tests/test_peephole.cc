/**
 * @file
 * Peephole optimizer tests: each cancellation rule plus randomized
 * unitary-preservation property tests.
 */

#include <gtest/gtest.h>

#include "circuit/peephole.hh"
#include "common/rng.hh"
#include "sim/statevector.hh"

namespace tetris
{
namespace
{

TEST(Peephole, CancelsAdjacentHadamards)
{
    Circuit c(1);
    c.h(0);
    c.h(0);
    Circuit r = peepholeOptimize(c);
    EXPECT_EQ(r.size(), 0u);
}

TEST(Peephole, CancelsSSdgPairs)
{
    Circuit c(1);
    c.s(0);
    c.sdg(0);
    c.sdg(0);
    c.s(0);
    EXPECT_EQ(peepholeOptimize(c).size(), 0u);
}

TEST(Peephole, CancelsAdjacentCx)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    EXPECT_EQ(peepholeOptimize(c).size(), 0u);
}

TEST(Peephole, DoesNotCancelReversedCx)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(1, 0);
    EXPECT_EQ(peepholeOptimize(c).size(), 2u);
}

TEST(Peephole, MergesRotations)
{
    Circuit c(1);
    c.rz(0, 0.25);
    c.rz(0, 0.50);
    Circuit r = peepholeOptimize(c);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_NEAR(r.gates()[0].angle, 0.75, 1e-12);
}

TEST(Peephole, RemovesZeroRotations)
{
    Circuit c(1);
    c.rz(0, 0.4);
    c.rz(0, -0.4);
    EXPECT_EQ(peepholeOptimize(c).size(), 0u);
}

TEST(Peephole, RzCommutesThroughCxControl)
{
    Circuit c(2);
    c.cx(0, 1);
    c.rz(0, 0.7); // diagonal on the control: commutes
    c.cx(0, 1);
    Circuit r = peepholeOptimize(c);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.gates()[0].kind, GateKind::RZ);
}

TEST(Peephole, XCommutesThroughCxTarget)
{
    Circuit c(2);
    c.cx(0, 1);
    c.x(1);
    c.cx(0, 1);
    Circuit r = peepholeOptimize(c);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.gates()[0].kind, GateKind::X);
}

TEST(Peephole, RzOnTargetBlocksCxCancellation)
{
    Circuit c(2);
    c.cx(0, 1);
    c.rz(1, 0.7); // on the target: does NOT commute
    c.cx(0, 1);
    EXPECT_EQ(peepholeOptimize(c).size(), 3u);
}

TEST(Peephole, SharedControlCxsCommute)
{
    Circuit c(3);
    c.cx(0, 1);
    c.cx(0, 2); // shares the control with both neighbors
    c.cx(0, 1);
    Circuit r = peepholeOptimize(c);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.gates()[0].q1, 2);
}

TEST(Peephole, SharedTargetCxsCommute)
{
    Circuit c(3);
    c.cx(0, 2);
    c.cx(1, 2);
    c.cx(0, 2);
    Circuit r = peepholeOptimize(c);
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(r.gates()[0].q0, 1);
}

TEST(Peephole, CancelsSwapPairs)
{
    Circuit c(2);
    c.swap(0, 1);
    c.swap(1, 0);
    EXPECT_EQ(peepholeOptimize(c).size(), 0u);
}

TEST(Peephole, MeasureBlocksCancellation)
{
    Circuit c(2);
    c.cx(0, 1);
    c.measure(1);
    c.cx(0, 1);
    EXPECT_EQ(peepholeOptimize(c).size(), 3u);
}

TEST(Peephole, HSandwichCancelsIteratively)
{
    // Sdg H H S collapses over two fixpoint passes.
    Circuit c(1);
    c.sdg(0);
    c.h(0);
    c.h(0);
    c.s(0);
    EXPECT_EQ(peepholeOptimize(c).size(), 0u);
}

TEST(Peephole, ReportsStats)
{
    Circuit c(2);
    c.h(0);
    c.h(0);
    c.cx(0, 1);
    c.cx(0, 1);
    PeepholeStats stats;
    peepholeOptimize(c, &stats);
    EXPECT_EQ(stats.removedOneQubit, 2u);
    EXPECT_EQ(stats.removedCx, 2u);
}

/** Random-circuit property: the pass must preserve the unitary. */
class PeepholeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PeepholeProperty, PreservesUnitary)
{
    const int seed = GetParam();
    Rng rng(seed);
    const int n = 4;
    Circuit c(n);
    for (int i = 0; i < 120; ++i) {
        switch (rng.uniformInt(0, 7)) {
          case 0: c.h(rng.uniformInt(0, n - 1)); break;
          case 1: c.x(rng.uniformInt(0, n - 1)); break;
          case 2: c.s(rng.uniformInt(0, n - 1)); break;
          case 3: c.sdg(rng.uniformInt(0, n - 1)); break;
          case 4: c.rz(rng.uniformInt(0, n - 1), rng.uniform(-3, 3));
                  break;
          default: {
            int a = rng.uniformInt(0, n - 1);
            int b = rng.uniformInt(0, n - 1);
            if (a == b)
                b = (b + 1) % n;
            if (rng.bernoulli(0.85))
                c.cx(a, b);
            else
                c.swap(a, b);
          }
        }
    }
    Circuit r = peepholeOptimize(c);
    EXPECT_LE(r.size(), c.size());

    Statevector sa = Statevector::random(n, rng);
    Statevector sb = sa;
    sa.applyCircuit(c);
    sb.applyCircuit(r);
    EXPECT_NEAR(sa.overlapWith(sb), 1.0, 1e-8) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, PeepholeProperty,
                         ::testing::Range(0, 24));

} // namespace
} // namespace tetris
