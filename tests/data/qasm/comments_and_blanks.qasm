// Leading comment before the header.

OPENQASM 2.0;
// Comment between statements.
include "qelib1.inc";

qreg q[3];
creg c[3];

// A rotation with inline trailing comment.
rz(pi/2) q[0]; // trailing comment

h q[1];
rx(0.25) q[1];

// Blank lines everywhere.


t q[2];
