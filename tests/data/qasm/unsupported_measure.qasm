OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
rz(0.5) q[0];
measure q[0] -> c[0];
