OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];

rz(pi/4) q[0];
h q[0];
rx(0.5) q[1];
h q[0];
