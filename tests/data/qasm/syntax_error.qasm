OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rz(0.5 q[0];
