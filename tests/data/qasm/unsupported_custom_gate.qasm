OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
gate mygate a, b { cx a, b; }
mygate q[0], q[1];
