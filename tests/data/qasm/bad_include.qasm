OPENQASM 2.0;
include "mylib.inc";
qreg q[1];
rz(0.5) q[0];
