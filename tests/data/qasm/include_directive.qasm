OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[0], q[1];
rz(1.5) q[1];
cx q[0], q[1];
