/**
 * @file
 * Tests of the semantic equivalence verifier (src/verify/): both
 * checkers pass on every registered general-purpose pipeline, a
 * matrix of deliberate miscompiles (dropped gate, flipped angle sign,
 * swapped CX wires, stale layout, injected gate) is rejected by
 * *both* checkers, bridged circuits with Z-factors on |0> ancillas
 * are accepted, qubit-reuse circuits are skipped, and the engine's
 * EngineOptions::verify pass counts pass/fail/skipped -- including
 * catching a stale artifact served from the persistent disk store.
 */

#include <algorithm>
#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "chem/uccsd.hh"
#include "core/compiler.hh"
#include "core/pipeline.hh"
#include "core/qaoa_pass.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "qaoa/graph.hh"
#include "qaoa/qaoa.hh"
#include "verify/verify.hh"

namespace tetris
{
namespace
{

namespace fs = std::filesystem;

/** A 5-qubit 3-block workload with X/Y/Z structure and a repeated-
 *  axis block, compiled on a 7-qubit device (2 free ancillas). */
std::vector<PauliBlock>
smallWorkload()
{
    std::vector<PauliBlock> blocks;
    blocks.push_back(PauliBlock({PauliString::fromText("XXIII"),
                                 PauliString::fromText("YYIII")},
                                0.31));
    blocks.push_back(PauliBlock({PauliString::fromText("IZZXI"),
                                 PauliString::fromText("IZYYI")},
                                {1.0, 0.5}, -0.47));
    blocks.push_back(PauliBlock({PauliString::fromText("ZIIIZ")}, 0.83));
    return blocks;
}

/** The pipelines whose results follow the unitary contract. */
std::vector<std::string>
generalPipelines()
{
    return {"tetris",  "paulihedral", "tket-o2",   "tket-o3",
            "pcoast",  "naive",       "max-cancel"};
}

CompileResult
compileSmall(const std::string &pipeline_id)
{
    CouplingGraph hw = lineTopology(7);
    auto pipe = PipelineRegistry::instance().create(pipeline_id);
    return pipe->run(smallWorkload(), hw);
}

TEST(VerifyCheckers, EveryGeneralPipelinePassesBoth)
{
    auto blocks = smallWorkload();
    for (const auto &id : generalPipelines()) {
        CompileResult res = compileSmall(id);
        VerifyReport exact = verifyExact(blocks, res);
        EXPECT_EQ(exact.status, VerifyStatus::Pass)
            << id << ": " << exact.detail;
        VerifyReport conj = verifyConjugation(blocks, res);
        EXPECT_EQ(conj.status, VerifyStatus::Pass)
            << id << ": " << conj.detail;
    }
}

TEST(VerifyCheckers, AgreeOnHeavyHexWithAncillas)
{
    auto blocks = smallWorkload();
    CouplingGraph hw = heavyHexTopology(2, 5);
    for (const auto &id : generalPipelines()) {
        CompileResult res =
            PipelineRegistry::instance().create(id)->run(blocks, hw);
        EXPECT_TRUE(verifyExact(blocks, res).pass()) << id;
        EXPECT_TRUE(verifyConjugation(blocks, res).pass()) << id;
    }
}

TEST(VerifyConjugation, ScalesToRealDeviceWidths)
{
    // 65 physical qubits: far beyond the exact checker, the whole
    // point of the conjugation checker. Synthetic UCCSD keeps the
    // runtime modest.
    auto blocks = buildSyntheticUcc(20, 1020);
    CouplingGraph hw = ibmIthaca65();
    CompileResult res = compileTetris(blocks, hw);

    VerifyReport exact = verifyExact(blocks, res);
    EXPECT_EQ(exact.status, VerifyStatus::Skipped);

    VerifyReport conj = verifyConjugation(blocks, res);
    EXPECT_EQ(conj.status, VerifyStatus::Pass) << conj.detail;

    VerifyReport dispatched = verifyCompileResult(blocks, res);
    EXPECT_EQ(dispatched.method, "conjugation");
    EXPECT_TRUE(dispatched.pass()) << dispatched.detail;
}

TEST(VerifyConjugation, AcceptsBridgedRotationsThroughAncillas)
{
    // ZZ(0,4) on a ring-8 with 5 logicals: the back arc is all free
    // ancillas, so the QAOA pass bridges instead of swapping and the
    // rotation axis picks up Z factors on |0> wires -- legal.
    PauliString s(5);
    s.setOp(0, PauliOp::Z);
    s.setOp(4, PauliOp::Z);
    std::vector<PauliBlock> blocks = {PauliBlock({s}, 0.3)};

    CouplingGraph hw = ringTopology(8);
    QaoaPassOptions opts;
    opts.enableQubitReuse = false;
    CompileResult res = compileQaoaTetris(blocks, hw, opts);
    ASSERT_EQ(res.stats.swapCount, 0u); // bridged, not swapped

    EXPECT_TRUE(verifyConjugation(blocks, res).pass());
    EXPECT_TRUE(verifyExact(blocks, res).pass());
}

// ---- non-commuting in-block rotation order ------------------------
//
// Blocks whose strings do not all commute used to come back Skipped
// from the conjugation checker ("in-block rotation order not
// modeled"). It now tracks that order, so these are hard passes —
// and commutation-violating reorderings are hard failures.

/** Two blocks with anticommuting in-block strings; block 0 repeats
 *  an axis around a non-commuting neighbour so checking it needs
 *  the ordered residual carry, not just per-axis sums. */
std::vector<PauliBlock>
orderedWorkload()
{
    std::vector<PauliBlock> blocks;
    blocks.push_back(PauliBlock({PauliString::fromText("XI"),
                                 PauliString::fromText("ZI"),
                                 PauliString::fromText("XI")},
                                {0.3, 0.7, 0.5}, 1.0));
    blocks.push_back(PauliBlock({PauliString::fromText("ZX"),
                                 PauliString::fromText("ZZ")},
                                0.41));
    return blocks;
}

TEST(VerifyConjugation, NonCommutingBlocksVerifyInsteadOfSkipping)
{
    auto blocks = orderedWorkload();
    CouplingGraph hw = lineTopology(4);
    for (const auto &id : generalPipelines()) {
        CompileResult res =
            PipelineRegistry::instance().create(id)->run(blocks, hw);
        VerifyReport exact = verifyExact(blocks, res);
        EXPECT_EQ(exact.status, VerifyStatus::Pass)
            << id << ": " << exact.detail;
        VerifyReport conj = verifyConjugation(blocks, res);
        EXPECT_EQ(conj.status, VerifyStatus::Pass)
            << id << ": " << conj.detail;
    }
}

/** A compiled result built gate by gate on an identity layout. */
CompileResult
handBuiltResult(int num_qubits, const std::vector<Gate> &gates)
{
    CompileResult res;
    Circuit circ(num_qubits);
    for (const auto &g : gates)
        circ.add(g);
    res.circuit = std::move(circ);
    res.finalLayout = Layout(num_qubits, num_qubits);
    res.blockOrder = {0};
    return res;
}

TEST(VerifyConjugation, EnforcesNonCommutingRotationOrder)
{
    // One block, program order X(0.3) Z(0.7) X(0.5) on qubit 0: the
    // X/Z pairs anticommute, so that order is part of the unitary.
    std::vector<PauliBlock> blocks = {
        PauliBlock({PauliString::fromText("XI"),
                    PauliString::fromText("ZI"),
                    PauliString::fromText("XI")},
                   {0.3, 0.7, 0.5}, 1.0)};

    // Faithful order (split X rotations stay split): Pass.
    CompileResult good = handBuiltResult(
        2, {Gate::rx(0, 0.3), Gate::rz(0, 0.7), Gate::rx(0, 0.5)});
    EXPECT_TRUE(verifyExact(blocks, good).pass());
    VerifyReport conj = verifyConjugation(blocks, good);
    EXPECT_EQ(conj.status, VerifyStatus::Pass) << conj.detail;

    // Pulling Z ahead of the first X reorders an anticommuting pair.
    CompileResult swapped = handBuiltResult(
        2, {Gate::rz(0, 0.7), Gate::rx(0, 0.3), Gate::rx(0, 0.5)});
    EXPECT_TRUE(verifyExact(blocks, swapped).failed());
    EXPECT_TRUE(verifyConjugation(blocks, swapped).failed());

    // Merging the two X rotations across the non-commuting Z — the
    // exact move the old per-axis-sum model could not reject.
    CompileResult merged =
        handBuiltResult(2, {Gate::rx(0, 0.8), Gate::rz(0, 0.7)});
    EXPECT_TRUE(verifyExact(blocks, merged).failed());
    EXPECT_TRUE(verifyConjugation(blocks, merged).failed());
}

TEST(VerifyDispatch, SkipsQubitReuseCircuits)
{
    Graph g = Graph::regular(8, 3, 17);
    auto blocks = buildQaoaCostBlocks(g, 0.2);
    CouplingGraph hw = heavyHexTopology(2, 5);
    QaoaPassOptions opts;
    opts.enableQubitReuse = true;
    CompileResult res = compileQaoaTetris(blocks, hw, opts);

    VerifyReport report = verifyCompileResult(blocks, res);
    EXPECT_EQ(report.status, VerifyStatus::Skipped);
    EXPECT_NE(report.detail.find("MEASURE"), std::string::npos)
        << report.detail;
}

TEST(VerifyDispatch, SkipsCancelledResults)
{
    CompileResult cancelled;
    cancelled.cancelled = true;
    VerifyReport report =
        verifyCompileResult(smallWorkload(), cancelled);
    EXPECT_EQ(report.status, VerifyStatus::Skipped);
}

// ---- mutation matrix: every corruption class must be rejected -----

class VerifyMutations : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        blocks_ = smallWorkload();
        good_ = compileSmall("tetris");
        ASSERT_TRUE(verifyExact(blocks_, good_).pass());
        ASSERT_TRUE(verifyConjugation(blocks_, good_).pass());
    }

    /** Both checkers must flag the mutated result. */
    void
    expectRejected(const CompileResult &mutated, const char *what)
    {
        VerifyReport exact = verifyExact(blocks_, mutated);
        EXPECT_EQ(exact.status, VerifyStatus::Fail)
            << what << " not caught by exact checker";
        VerifyReport conj = verifyConjugation(blocks_, mutated);
        EXPECT_EQ(conj.status, VerifyStatus::Fail)
            << what << " not caught by conjugation checker";
    }

    /** Copy the good result with the gate list transformed. */
    CompileResult
    withGates(const std::vector<Gate> &gates)
    {
        CompileResult res = good_;
        Circuit circ(good_.circuit.numQubits());
        for (const auto &g : gates)
            circ.add(g);
        res.circuit = std::move(circ);
        return res;
    }

    std::vector<PauliBlock> blocks_;
    CompileResult good_;
};

TEST_F(VerifyMutations, DroppedCxGate)
{
    std::vector<Gate> gates = good_.circuit.gates();
    auto it = std::find_if(gates.begin(), gates.end(), [](const Gate &g) {
        return g.kind == GateKind::CX;
    });
    ASSERT_NE(it, gates.end());
    gates.erase(it);
    expectRejected(withGates(gates), "dropped CX");
}

TEST_F(VerifyMutations, WrongRotationSign)
{
    std::vector<Gate> gates = good_.circuit.gates();
    auto it = std::find_if(gates.begin(), gates.end(), [](const Gate &g) {
        return g.kind == GateKind::RZ && std::abs(g.angle) > 0.05;
    });
    ASSERT_NE(it, gates.end());
    it->angle = -it->angle;
    expectRejected(withGates(gates), "flipped rotation sign");
}

TEST_F(VerifyMutations, SwappedCxWires)
{
    std::vector<Gate> gates = good_.circuit.gates();
    auto it = std::find_if(gates.begin(), gates.end(), [](const Gate &g) {
        return g.kind == GateKind::CX;
    });
    ASSERT_NE(it, gates.end());
    std::swap(it->q0, it->q1);
    expectRejected(withGates(gates), "swapped CX control/target");
}

TEST_F(VerifyMutations, InjectedGate)
{
    std::vector<Gate> gates = good_.circuit.gates();
    gates.insert(gates.begin() + gates.size() / 2, Gate::x(0));
    expectRejected(withGates(gates), "injected X gate");
}

TEST_F(VerifyMutations, StaleFinalLayout)
{
    // Swap where two logical qubits claim to have ended up: the
    // permutation no longer matches the circuit's SWAP history.
    CompileResult res = good_;
    std::vector<int> l2p = res.finalLayout.toPhysical();
    ASSERT_GE(l2p.size(), 2u);
    std::swap(l2p[0], l2p[1]);
    auto stale =
        Layout::fromMapping(l2p, res.finalLayout.numPhysical());
    ASSERT_TRUE(stale.has_value());
    res.finalLayout = *stale;
    expectRejected(res, "stale final layout");
}

TEST_F(VerifyMutations, CorruptBlockOrder)
{
    CompileResult res = good_;
    res.blockOrder.assign(res.blockOrder.size(), 999);
    EXPECT_TRUE(verifyExact(blocks_, res).failed());
    EXPECT_TRUE(verifyConjugation(blocks_, res).failed());
}

// ---- engine integration -------------------------------------------

std::shared_ptr<const CouplingGraph>
sharedLine(int n)
{
    return std::make_shared<const CouplingGraph>(lineTopology(n));
}

TEST(VerifyEngine, CountsPassesOncePerUniqueJob)
{
    EngineOptions opts;
    opts.verify = true;
    Engine engine(opts);

    std::vector<CompileJob> jobs;
    for (int i = 0; i < 2; ++i) { // identical pair: dedup to one
        CompileJob job;
        job.name = "dup";
        job.blocks = smallWorkload();
        job.hw = sharedLine(7);
        jobs.push_back(job);
    }
    auto results = engine.compileAll(std::move(jobs));
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(engine.metrics().count("verify.pass"), 1u);
    EXPECT_EQ(engine.metrics().count("verify.fail"), 0u);
}

TEST(VerifyEngine, CatchesStaleDiskArtifact)
{
    fs::path root =
        fs::path(::testing::TempDir()) / "tetris_verify_stale";
    fs::remove_all(root);
    auto disk = DiskCache::open(root.string());
    ASSERT_NE(disk, nullptr);

    CompileJob job;
    job.name = "victim";
    job.blocks = smallWorkload();
    job.hw = sharedLine(7);

    // Plant an artifact under the job's key whose circuit belongs to
    // a *different* program: a decodable-but-wrong entry, exactly
    // what a key collision or a missed ABI bump would produce.
    std::vector<PauliBlock> other = {
        PauliBlock({PauliString::fromText("XIIII")}, 1.1)};
    CompileResult wrong =
        defaultPipeline()->run(other, *job.hw);
    ASSERT_TRUE(disk->store(Engine::jobKey(job), wrong));

    EngineOptions opts;
    opts.verify = true;
    opts.diskCache = disk;
    Engine engine(opts);
    engine.submit(job);
    auto res = engine.wait(0);
    ASSERT_NE(res, nullptr);

    EXPECT_EQ(engine.metrics().count("jobs.disk_hits"), 1u);
    EXPECT_EQ(engine.metrics().count("verify.fail"), 1u);
    EXPECT_EQ(engine.metrics().count("verify.pass"), 0u);
    fs::remove_all(root);
}

TEST(VerifyEngine, AbiVersionMovesJobKey)
{
    CompileJob job;
    job.blocks = smallWorkload();
    job.hw = sharedLine(7);
    EXPECT_EQ(Engine::jobKey(job), Engine::jobKey(job, kTetrisAbiVersion));
    EXPECT_NE(Engine::jobKey(job, kTetrisAbiVersion),
              Engine::jobKey(job, kTetrisAbiVersion + 1));
}

} // namespace
} // namespace tetris
