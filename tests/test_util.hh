/**
 * @file
 * Shared helpers for the test suite. The simulator-based equivalence
 * check delegates to the library's own verifier (verify/verify.hh) so
 * every existing compiler test doubles as coverage of the exact
 * checker; the state-manipulation helpers stay here for tests that
 * build reference states by hand (e.g. the router tests).
 */

#ifndef TETRIS_TESTS_TEST_UTIL_HH
#define TETRIS_TESTS_TEST_UTIL_HH

#include <vector>

#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"
#include "sim/statevector.hh"
#include "verify/verify.hh"

namespace tetris::test
{

/** Pad a logical string with identities up to num_qubits wires. */
inline PauliString
extendString(const PauliString &s, int num_qubits)
{
    PauliString out(static_cast<size_t>(num_qubits));
    for (size_t q = 0; q < s.numQubits(); ++q)
        out.setOp(q, s.op(q));
    return out;
}

/** |psi_logical> tensor |0...0> on a wider register. */
inline Statevector
embedState(const Statevector &logical, int num_qubits)
{
    std::vector<Statevector::Amplitude> amp(size_t{1} << num_qubits,
                                            0.0);
    for (size_t i = 0; i < logical.amplitudes().size(); ++i)
        amp[i] = logical.amplitudes()[i];
    return Statevector::fromAmplitudes(std::move(amp));
}

/**
 * Permute wire positions: bit l of the input index moves to position
 * new_pos[l]. new_pos must be a permutation of [0, n).
 */
inline Statevector
permuteState(const Statevector &sv, const std::vector<int> &new_pos)
{
    std::vector<Statevector::Amplitude> amp(sv.amplitudes().size(), 0.0);
    for (size_t i = 0; i < sv.amplitudes().size(); ++i) {
        size_t j = 0;
        for (int b = 0; b < sv.numQubits(); ++b) {
            if (i & (size_t{1} << b))
                j |= size_t{1} << new_pos[b];
        }
        amp[j] = sv.amplitudes()[i];
    }
    return Statevector::fromAmplitudes(std::move(amp));
}

/** Every two-qubit gate must act on a coupling-graph edge. */
inline bool
isHardwareCompliant(const Circuit &c, const CouplingGraph &hw)
{
    for (const auto &g : c.gates()) {
        if (g.isTwoQubit() && !hw.connected(g.q0, g.q1))
            return false;
    }
    return true;
}

/**
 * Check that a compiled result implements the scheduled product of
 * exp(-i w theta/2 P) rotations followed by the final-layout wire
 * permutation, up to global phase, on a random input state with
 * ancillas in |0>. Thin wrapper over verifyExact(); `num_phys` caps
 * the exact checker's width so callers keep their old signature.
 */
inline bool
checkCompiledEquivalence(const std::vector<PauliBlock> &blocks,
                         const CompileResult &result, int num_phys,
                         Rng &rng, double tol = 1e-7)
{
    VerifyOptions opts;
    opts.seed = rng.engine()();
    opts.tolerance = tol;
    opts.maxExactQubits = std::max(num_phys, 1);
    opts.numStates = 1; // one state per call, as the old helper did
    return verifyExact(blocks, result, opts).pass();
}

} // namespace tetris::test

#endif // TETRIS_TESTS_TEST_UTIL_HH
