/**
 * @file
 * Shared helpers for the test suite: simulator-based equivalence
 * checking of compiled circuits against the analytic product of
 * Pauli rotations, and coupling-graph compliance checks.
 */

#ifndef TETRIS_TESTS_TEST_UTIL_HH
#define TETRIS_TESTS_TEST_UTIL_HH

#include <vector>

#include "core/compiler.hh"
#include "hardware/coupling_graph.hh"
#include "pauli/pauli_block.hh"
#include "sim/statevector.hh"

namespace tetris::test
{

/** Pad a logical string with identities up to num_qubits wires. */
inline PauliString
extendString(const PauliString &s, int num_qubits)
{
    PauliString out(static_cast<size_t>(num_qubits));
    for (size_t q = 0; q < s.numQubits(); ++q)
        out.setOp(q, s.op(q));
    return out;
}

/** |psi_logical> tensor |0...0> on a wider register. */
inline Statevector
embedState(const Statevector &logical, int num_qubits)
{
    std::vector<Statevector::Amplitude> amp(size_t{1} << num_qubits,
                                            0.0);
    for (size_t i = 0; i < logical.amplitudes().size(); ++i)
        amp[i] = logical.amplitudes()[i];
    return Statevector::fromAmplitudes(std::move(amp));
}

/**
 * Permute wire positions: bit l of the input index moves to position
 * new_pos[l]. new_pos must be a permutation of [0, n).
 */
inline Statevector
permuteState(const Statevector &sv, const std::vector<int> &new_pos)
{
    std::vector<Statevector::Amplitude> amp(sv.amplitudes().size(), 0.0);
    for (size_t i = 0; i < sv.amplitudes().size(); ++i) {
        size_t j = 0;
        for (int b = 0; b < sv.numQubits(); ++b) {
            if (i & (size_t{1} << b))
                j |= size_t{1} << new_pos[b];
        }
        amp[j] = sv.amplitudes()[i];
    }
    return Statevector::fromAmplitudes(std::move(amp));
}

/** Every two-qubit gate must act on a coupling-graph edge. */
inline bool
isHardwareCompliant(const Circuit &c, const CouplingGraph &hw)
{
    for (const auto &g : c.gates()) {
        if (g.isTwoQubit() && !hw.connected(g.q0, g.q1))
            return false;
    }
    return true;
}

/**
 * Check that a compiled result implements the scheduled product of
 * exp(-i w theta/2 P) rotations followed by the final-layout wire
 * permutation, up to global phase, on a random input state with
 * ancillas in |0>.
 */
inline bool
checkCompiledEquivalence(const std::vector<PauliBlock> &blocks,
                         const CompileResult &result, int num_phys,
                         Rng &rng, double tol = 1e-7)
{
    const int num_logical = blocksNumQubits(blocks);

    Statevector logical = Statevector::random(num_logical, rng);
    Statevector start = embedState(logical, num_phys);

    // Simulated compiled circuit.
    Statevector actual = start;
    actual.applyCircuit(result.circuit);

    // Analytic reference in scheduled block order.
    std::vector<size_t> order = result.blockOrder;
    if (order.empty()) {
        order.resize(blocks.size());
        for (size_t i = 0; i < blocks.size(); ++i)
            order[i] = i;
    }
    Statevector expected = start;
    for (size_t idx : order) {
        const PauliBlock &b = blocks[idx];
        for (size_t i = 0; i < b.size(); ++i) {
            expected.applyPauliExp(extendString(b.string(i), num_phys),
                                   b.weight(i) * b.theta());
        }
    }

    // Final wire permutation: logical l ends at finalLayout.physOf(l);
    // free wires (|0> on both sides) fill the remaining slots.
    std::vector<int> new_pos(num_phys, -1);
    std::vector<bool> used(num_phys, false);
    for (int l = 0; l < num_logical; ++l) {
        int pos = result.finalLayout.physOf(l);
        new_pos[l] = pos;
        used[pos] = true;
    }
    int next_free = 0;
    for (int b = 0; b < num_phys; ++b) {
        if (new_pos[b] >= 0)
            continue;
        while (used[next_free])
            ++next_free;
        new_pos[b] = next_free;
        used[next_free] = true;
    }
    expected = permuteState(expected, new_pos);

    return std::abs(actual.overlapWith(expected) - 1.0) < tol;
}

} // namespace tetris::test

#endif // TETRIS_TESTS_TEST_UTIL_HH
