/**
 * @file
 * Cross-suite invariant sweeps: for every molecule x encoder and
 * every QAOA benchmark, the generated workloads satisfy the
 * structural properties the compiler relies on, and compilation on
 * both evaluation backends yields internally consistent, compliant
 * circuits. These parameterized tests are the broad safety net
 * behind the per-feature unit tests.
 */

#include <gtest/gtest.h>

#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

struct WorkloadCase
{
    const char *molecule;
    const char *encoder;
};

class MoleculeInvariants : public ::testing::TestWithParam<WorkloadCase>
{
};

TEST_P(MoleculeInvariants, BlocksAreWellFormed)
{
    const auto &[name, enc] = GetParam();
    auto blocks = buildMolecule(moleculeByName(name), enc);
    ASSERT_FALSE(blocks.empty());
    for (const auto &b : blocks) {
        ASSERT_GE(b.size(), 2u);
        EXPECT_EQ(static_cast<int>(b.numQubits()),
                  moleculeByName(name).numSpinOrbitals);
        for (size_t i = 0; i < b.size(); ++i) {
            // Every string is non-trivial and carries a real weight
            // (Bravyi-Kitaev can compress excitations to weight 1).
            EXPECT_GE(b.string(i).weight(), 1u);
            EXPECT_GT(std::abs(b.weight(i)), 1e-9);
        }
    }
}

TEST_P(MoleculeInvariants, BlockStringsMutuallyCommute)
{
    const auto &[name, enc] = GetParam();
    auto blocks = buildMolecule(moleculeByName(name), enc);
    // Spot-check a sample of blocks (full sweep is quadratic).
    for (size_t bi = 0; bi < blocks.size(); bi += 7) {
        const auto &b = blocks[bi];
        for (size_t i = 0; i < b.size(); ++i) {
            for (size_t j = i + 1; j < b.size(); ++j) {
                EXPECT_TRUE(b.string(i).commutesWith(b.string(j)))
                    << name << "/" << enc << " block " << bi;
            }
        }
    }
}

TEST_P(MoleculeInvariants, RootAndLeafSetsPartitionSupport)
{
    const auto &[name, enc] = GetParam();
    auto blocks = buildMolecule(moleculeByName(name), enc);
    for (size_t bi = 0; bi < blocks.size(); bi += 5) {
        TetrisBlock tb(blocks[bi]);
        EXPECT_EQ(tb.rootSet().size() + tb.leafSet().size(),
                  blocks[bi].activeLength());
    }
}

INSTANTIATE_TEST_SUITE_P(
    SmallMolecules, MoleculeInvariants,
    ::testing::Values(WorkloadCase{"LiH", "jw"}, WorkloadCase{"LiH", "bk"},
                      WorkloadCase{"BeH2", "jw"},
                      WorkloadCase{"BeH2", "bk"},
                      WorkloadCase{"CH4", "jw"},
                      WorkloadCase{"CH4", "bk"}));

class CompileConsistency : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CompileConsistency, LiHSubsetOnBothBackends)
{
    // A 12-block LiH slice compiles to consistent, compliant
    // circuits on both evaluation devices.
    auto blocks = buildMolecule(moleculeByName("LiH"), GetParam());
    blocks.resize(12);
    for (const CouplingGraph &hw : {ibmIthaca65(), googleSycamore64()}) {
        CompileResult tet = compileTetris(blocks, hw);
        CompileResult ph = compilePaulihedral(blocks, hw);
        for (const CompileResult *r : {&tet, &ph}) {
            EXPECT_TRUE(test::isHardwareCompliant(r->circuit, hw));
            EXPECT_EQ(r->stats.totalGateCount,
                      r->stats.cnotCount + r->stats.oneQubitCount);
            EXPECT_EQ(r->stats.logicalCnots + r->stats.swapCnots,
                      r->stats.cnotCount);
            EXPECT_LE(r->stats.cancelRatio, 1.0);
            EXPECT_GE(r->stats.depth, 1u);
        }
        // Tetris should not lose to PH on this similarity-rich slice.
        EXPECT_LE(tet.stats.logicalCnots, ph.stats.logicalCnots * 11 / 10);
    }
}

INSTANTIATE_TEST_SUITE_P(Encoders, CompileConsistency,
                         ::testing::Values("jw", "bk"));

class QaoaInvariants
    : public ::testing::TestWithParam<QaoaBenchmarkSpec>
{
};

TEST_P(QaoaInvariants, GraphAndBlocksConsistent)
{
    const auto &spec = GetParam();
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
        Graph g = buildQaoaGraph(spec, seed);
        EXPECT_EQ(g.numNodes(), spec.numNodes);
        if (spec.isRegular) {
            for (int v = 0; v < g.numNodes(); ++v)
                EXPECT_EQ(g.degree(v), spec.parameter);
        } else {
            EXPECT_EQ(g.numEdges(),
                      static_cast<size_t>(spec.parameter));
        }
        auto blocks = buildQaoaCostBlocks(g, 0.4);
        EXPECT_EQ(blocks.size(), g.numEdges());
        EXPECT_EQ(naiveCnotCount(blocks), 2 * g.numEdges());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, QaoaInvariants,
    ::testing::ValuesIn(qaoaBenchmarks()),
    [](const ::testing::TestParamInfo<QaoaBenchmarkSpec> &info) {
        std::string name = info.param.name;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace tetris
