/**
 * @file
 * Total-decode fuzzing for the streaming frontend parsers.
 *
 * The contract under test (frontend/frontend.hh): for ANY byte
 * sequence, each parser either produces blocks to a clean end or
 * stops with one typed, positioned ParseError — never a crash,
 * assert, hang, or unbounded allocation, and always the same answer
 * for the same bytes (streamed parsing must be deterministic or the
 * differential corpus means nothing).
 *
 * Three input populations, all seeded:
 *  - structured: random valid programs from small grammars (these
 *    must parse clean — a generator/parser disagreement is a bug on
 *    one side or the other);
 *  - mutated: valid programs after byte flips, splices, deletions,
 *    and truncations (the realistic corruption population);
 *  - garbage: uniformly random bytes (the adversarial floor).
 *
 * scripts/fuzz_frontend.py drives many seeds of this same binary in
 * the nightly job:
 *   TETRIS_FUZZ_SEED=<n>   base seed (default 1)
 *   TETRIS_FUZZ_CASES=<n>  cases per suite (default 25)
 */

#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "frontend/pauli_parser.hh"
#include "frontend/qasm_parser.hh"

namespace tetris
{
namespace
{

using namespace tetris::frontend;

uint64_t
envOr(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    return (end != nullptr && *end == '\0') ? parsed : fallback;
}

uint64_t
baseSeed()
{
    return envOr("TETRIS_FUZZ_SEED", 1);
}

int
numCases()
{
    return static_cast<int>(envOr("TETRIS_FUZZ_CASES", 25));
}

/** Outcome of one full drain of a parser, for determinism checks. */
struct DrainResult
{
    size_t blocks = 0;
    bool clean = false;
    std::string errorText;
    uint64_t instructions = 0;

    bool operator==(const DrainResult &o) const
    {
        return blocks == o.blocks && clean == o.clean &&
               errorText == o.errorText &&
               instructions == o.instructions;
    }
};

/**
 * Drain one parser over `text`. EXPECTs the total-decode contract on
 * the way: an error outcome must be typed and positioned, and the
 * parser must stay in its error state (sticky) if pumped again.
 */
template <typename Parser>
void
drain(const std::string &text, DrainResult &out_result)
{
    std::istringstream in(text);
    Parser parser(in);
    DrainResult out;
    PauliBlock b;
    BlockSource::Status s;
    // The loop bound is structural: each next() either consumes
    // input or ends, so blocks can never exceed input bytes. The
    // +16 headroom catches an empty-progress loop as a test failure
    // instead of a timeout.
    const size_t max_blocks = text.size() + 16;
    while ((s = parser.next(b)) == BlockSource::Status::Block) {
        ++out.blocks;
        ASSERT_LE(out.blocks, max_blocks)
            << "parser produced blocks without consuming input";
        // Every produced block is structurally sound.
        ASSERT_GT(b.size(), 0u);
        ASSERT_GT(b.numQubits(), 0u);
    }
    out.clean = s == BlockSource::Status::End;
    out.instructions = parser.instructionsRead();
    if (!out.clean) {
        const ParseError &e = parser.error();
        EXPECT_NE(e.kind, ParseErrorKind::None);
        EXPECT_GE(e.line, 1u);
        EXPECT_GE(e.column, 1u);
        EXPECT_FALSE(e.message.empty());
        out.errorText = e.toText();
        // Sticky: pumping a dead parser stays Error, same diagnostic.
        EXPECT_EQ(parser.next(b), BlockSource::Status::Error);
        EXPECT_EQ(parser.error().toText(), out.errorText);
    } else {
        EXPECT_TRUE(parser.error().ok());
    }
    out_result = out;
}

/** drain() twice and require identical outcomes (determinism). */
template <typename Parser>
DrainResult
drainDeterministic(const std::string &text)
{
    DrainResult a, b;
    drain<Parser>(text, a);
    drain<Parser>(text, b);
    EXPECT_TRUE(a == b) << "non-deterministic parse: '" << a.errorText
                        << "' vs '" << b.errorText << "'";
    return a;
}

// ---- structured generators -----------------------------------------

std::string
randomQasm(Rng &rng)
{
    std::ostringstream out;
    const int n = rng.uniformInt(1, 12);
    out << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[" << n
        << "];\n";
    const int stmts = rng.uniformInt(0, 60);
    const char *one_q[] = {"h",  "x",  "y",   "z",  "s",
                           "sdg", "t", "tdg", "sx", "id"};
    for (int i = 0; i < stmts; ++i) {
        switch (rng.uniformInt(0, 4)) {
        case 0:
            out << one_q[rng.uniformInt(0, 9)] << " q["
                << rng.uniformInt(0, n - 1) << "];\n";
            break;
        case 1:
            out << (rng.bernoulli(0.5) ? "rz" : "rx") << "("
                << (rng.uniform() * 6.2 - 3.1) << ") q["
                << rng.uniformInt(0, n - 1) << "];\n";
            break;
        case 2: {
            if (n < 2)
                break;
            int a = rng.uniformInt(0, n - 1);
            int b = rng.uniformInt(0, n - 2);
            if (b >= a)
                ++b;
            out << (rng.bernoulli(0.5) ? "cx" : "cz") << " q[" << a
                << "], q[" << b << "];\n";
            break;
        }
        case 3:
            out << "u3(" << rng.uniform() << ", pi/2, -pi/4) q["
                << rng.uniformInt(0, n - 1) << "];\n";
            break;
        default:
            out << "barrier q;\n";
            break;
        }
    }
    return out.str();
}

std::string
randomPauliList(Rng &rng)
{
    std::ostringstream out;
    const int n = rng.uniformInt(1, 16);
    const int blocks = rng.uniformInt(1, 20);
    const char ops[] = {'I', 'X', 'Y', 'Z'};
    for (int bi = 0; bi < blocks; ++bi) {
        out << "block " << (rng.uniform() * 2 - 1) << "\n";
        const int strings = rng.uniformInt(1, 4);
        for (int si = 0; si < strings; ++si) {
            std::string s;
            bool nontrivial = false;
            for (int q = 0; q < n; ++q) {
                char c = ops[rng.uniformInt(0, 3)];
                nontrivial |= c != 'I';
                s.push_back(c);
            }
            if (!nontrivial)
                s[static_cast<size_t>(rng.uniformInt(0, n - 1))] = 'Z';
            out << s;
            if (rng.bernoulli(0.4))
                out << " " << (rng.uniform() * 4 - 2);
            out << "\n";
        }
    }
    return out.str();
}

std::string
mutate(std::string text, Rng &rng)
{
    if (text.empty())
        return text;
    const int edits = rng.uniformInt(1, 4);
    for (int i = 0; i < edits; ++i) {
        const size_t at =
            static_cast<size_t>(rng.uniformInt(
                0, static_cast<int>(text.size()) - 1));
        switch (rng.uniformInt(0, 3)) {
        case 0: // flip one byte to anything
            text[at] = static_cast<char>(rng.uniformInt(0, 255));
            break;
        case 1: // truncate
            text.resize(at);
            break;
        case 2: // delete a span
            text.erase(at, static_cast<size_t>(rng.uniformInt(1, 16)));
            break;
        default: // duplicate a span onto a random position
            text.insert(at,
                        text.substr(
                            static_cast<size_t>(rng.uniformInt(
                                0,
                                static_cast<int>(text.size()) - 1)),
                            static_cast<size_t>(rng.uniformInt(1, 24))));
            break;
        }
        if (text.empty())
            break;
    }
    return text;
}

// ---- suites --------------------------------------------------------

TEST(FrontendFuzz, StructuredQasmParsesClean)
{
    for (int c = 0; c < numCases(); ++c) {
        Rng rng(baseSeed() * 1000003 + static_cast<uint64_t>(c));
        const std::string text = randomQasm(rng);
        SCOPED_TRACE("case " + std::to_string(c));
        DrainResult r = drainDeterministic<QasmParser>(text);
        EXPECT_TRUE(r.clean) << r.errorText << "\n" << text;
    }
}

TEST(FrontendFuzz, StructuredPauliListParsesClean)
{
    for (int c = 0; c < numCases(); ++c) {
        Rng rng(baseSeed() * 2000029 + static_cast<uint64_t>(c));
        const std::string text = randomPauliList(rng);
        SCOPED_TRACE("case " + std::to_string(c));
        DrainResult r = drainDeterministic<PauliListParser>(text);
        EXPECT_TRUE(r.clean) << r.errorText << "\n" << text;
    }
}

TEST(FrontendFuzz, MutatedQasmNeverCrashes)
{
    for (int c = 0; c < numCases() * 4; ++c) {
        Rng rng(baseSeed() * 3000017 + static_cast<uint64_t>(c));
        const std::string text = mutate(randomQasm(rng), rng);
        SCOPED_TRACE("case " + std::to_string(c));
        drainDeterministic<QasmParser>(text);
    }
}

TEST(FrontendFuzz, MutatedPauliListNeverCrashes)
{
    for (int c = 0; c < numCases() * 4; ++c) {
        Rng rng(baseSeed() * 4000037 + static_cast<uint64_t>(c));
        const std::string text = mutate(randomPauliList(rng), rng);
        SCOPED_TRACE("case " + std::to_string(c));
        drainDeterministic<PauliListParser>(text);
    }
}

TEST(FrontendFuzz, GarbageBytesNeverCrash)
{
    for (int c = 0; c < numCases() * 2; ++c) {
        Rng rng(baseSeed() * 5000011 + static_cast<uint64_t>(c));
        std::string text;
        const int len = rng.uniformInt(0, 2048);
        text.reserve(static_cast<size_t>(len));
        for (int i = 0; i < len; ++i)
            text.push_back(static_cast<char>(rng.uniformInt(0, 255)));
        SCOPED_TRACE("case " + std::to_string(c));
        drainDeterministic<QasmParser>(text);
        drainDeterministic<PauliListParser>(text);
    }
}

TEST(FrontendFuzz, CrossFormatInputsAreTypedErrors)
{
    // Feeding each format to the other parser must be a typed error
    // (or, for QASM-to-Pauli, possibly clean-empty), never a crash.
    Rng rng(baseSeed());
    const std::string qasm = randomQasm(rng);
    const std::string pauli = randomPauliList(rng);
    drainDeterministic<PauliListParser>(qasm);
    drainDeterministic<QasmParser>(pauli);
}

} // namespace
} // namespace tetris
