/**
 * @file
 * Router tests: compliance, permutation-aware equivalence, and the
 * two routing strategies.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hardware/topologies.hh"
#include "router/router.hh"
#include "sim/statevector.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

Circuit
randomLogicalCircuit(int n, int gates, uint64_t seed)
{
    Rng rng(seed);
    Circuit c(n);
    for (int i = 0; i < gates; ++i) {
        if (rng.bernoulli(0.4)) {
            c.rz(rng.uniformInt(0, n - 1), rng.uniform(-2, 2));
        } else {
            int a = rng.uniformInt(0, n - 1);
            int b = rng.uniformInt(0, n - 1);
            if (a == b)
                b = (b + 1) % n;
            c.cx(a, b);
        }
    }
    return c;
}

/** Routed circuit == logical circuit + final wire permutation. */
void
expectRoutedEquivalent(const Circuit &logical, const RouteResult &routed,
                       const CouplingGraph &hw, uint64_t seed)
{
    EXPECT_TRUE(test::isHardwareCompliant(routed.physical, hw));

    Rng rng(seed);
    Statevector in = Statevector::random(logical.numQubits(), rng);
    Statevector start = test::embedState(in, hw.numQubits());

    Statevector actual = start;
    actual.applyCircuit(routed.physical);

    Statevector expected = start;
    Circuit widened(hw.numQubits());
    for (const auto &g : logical.gates())
        widened.add(g);
    expected.applyCircuit(widened);

    std::vector<int> new_pos(hw.numQubits(), -1);
    std::vector<bool> used(hw.numQubits(), false);
    for (int l = 0; l < logical.numQubits(); ++l) {
        new_pos[l] = routed.finalLayout.physOf(l);
        used[new_pos[l]] = true;
    }
    int next = 0;
    for (int b = 0; b < hw.numQubits(); ++b) {
        if (new_pos[b] >= 0)
            continue;
        while (used[next])
            ++next;
        new_pos[b] = next;
        used[next] = true;
    }
    expected = test::permuteState(expected, new_pos);
    EXPECT_NEAR(actual.overlapWith(expected), 1.0, 1e-8);
}

class RouterBothKinds
    : public ::testing::TestWithParam<std::pair<RouterKind, int>>
{
};

TEST_P(RouterBothKinds, RandomCircuitsStayEquivalent)
{
    auto [kind, seed] = GetParam();
    Circuit logical = randomLogicalCircuit(5, 40, seed);
    CouplingGraph hw = heavyHexTopology(2, 4);
    RouteResult routed = routeCircuit(logical, hw, kind);
    expectRoutedEquivalent(logical, routed, hw, seed + 100);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterBothKinds,
    ::testing::Values(std::pair{RouterKind::Greedy, 1},
                      std::pair{RouterKind::Greedy, 2},
                      std::pair{RouterKind::Greedy, 3},
                      std::pair{RouterKind::SabreLite, 1},
                      std::pair{RouterKind::SabreLite, 2},
                      std::pair{RouterKind::SabreLite, 3}));

TEST(Router, NoSwapsWhenAlreadyCompliant)
{
    Circuit logical(3);
    logical.cx(0, 1);
    logical.cx(1, 2);
    RouteResult routed = routeCircuit(logical, lineTopology(3));
    EXPECT_EQ(routed.insertedSwaps, 0u);
    EXPECT_EQ(routed.physical.cnotCount(), 2u);
}

TEST(Router, DistantGateGetsSwaps)
{
    Circuit logical(5);
    logical.cx(0, 4);
    RouteResult routed = routeCircuit(logical, lineTopology(5));
    EXPECT_GT(routed.insertedSwaps, 0u);
    EXPECT_TRUE(
        test::isHardwareCompliant(routed.physical, lineTopology(5)));
}

TEST(Router, SingleQubitGatesFollowTheirQubit)
{
    Circuit logical(4);
    logical.cx(0, 3); // forces movement
    logical.h(0);     // must land on qubit 0's new position
    CouplingGraph hw = lineTopology(4);
    RouteResult routed = routeCircuit(logical, hw);
    expectRoutedEquivalent(logical, routed, hw, 7);
}

TEST(Router, SabreLiteNotWorseThanGreedyOnWindowedWorkload)
{
    // A workload with reuse: lookahead should pay off (or tie).
    Circuit logical(6);
    for (int rep = 0; rep < 4; ++rep) {
        logical.cx(0, 5);
        logical.cx(1, 4);
        logical.cx(0, 5);
        logical.cx(2, 3);
    }
    CouplingGraph hw = lineTopology(6);
    auto greedy = routeCircuit(logical, hw, RouterKind::Greedy);
    auto sabre = routeCircuit(logical, hw, RouterKind::SabreLite);
    EXPECT_LE(sabre.insertedSwaps, greedy.insertedSwaps + 2);
}

} // namespace
} // namespace tetris
