/**
 * @file
 * Tests for the common utility layer (rng, table/formatting) and
 * assorted cross-module edge cases: the pairwise max-cancel bound,
 * statevector construction, and peephole option handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>

#include "circuit/peephole.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "pauli/pauli_block.hh"
#include "sim/statevector.hh"

namespace tetris
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, SampleIndicesAreDistinct)
{
    Rng rng(2);
    auto picks = rng.sampleIndices(20, 10);
    std::set<size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t p : picks)
        EXPECT_LT(p, 20u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Format, CountRendering)
{
    EXPECT_EQ(formatCount(8064), "8064");
    EXPECT_EQ(formatCount(21072), "21.1k");
    EXPECT_EQ(formatCount(130.9e6), "130.9M");
}

TEST(Format, PercentRendering)
{
    EXPECT_EQ(formatPercent(-0.313), "-31.3%");
    EXPECT_EQ(formatPercent(0.5), "50.0%");
}

TEST(Table, CsvRoundTrip)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "x"});
    t.addRow({"2", "y"});
    ASSERT_TRUE(t.writeCsv("/tmp/tetris_table.csv"));
    std::ifstream in("/tmp/tetris_table.csv");
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,x");
}

TEST(MaxCancelBound, SimplePairs)
{
    // Two strings sharing ZZ on qubits 1,2: bound = 2*(2-1) = 2.
    std::vector<PauliBlock> blocks{PauliBlock(
        {PauliString::fromText("XZZI"), PauliString::fromText("YZZI")},
        0.1)};
    EXPECT_EQ(maxCancelCnotBound(blocks), 2u);
}

TEST(MaxCancelBound, NoSharedOperatorsNoBound)
{
    std::vector<PauliBlock> blocks{PauliBlock(
        {PauliString::fromText("XXII"), PauliString::fromText("IIZZ")},
        0.1)};
    EXPECT_EQ(maxCancelCnotBound(blocks), 0u);
}

TEST(MaxCancelBound, CrossesBlockBoundaries)
{
    PauliBlock a({PauliString::fromText("XZZZ")}, 0.1);
    PauliBlock b({PauliString::fromText("YZZZ")}, 0.2);
    // One boundary, common = {1,2,3} -> 2*(3-1) = 4.
    EXPECT_EQ(maxCancelCnotBound({a, b}), 4u);
}

TEST(Statevector, FromAmplitudesValidatesLength)
{
    std::vector<Statevector::Amplitude> amp(4, 0.0);
    amp[2] = 1.0;
    Statevector sv = Statevector::fromAmplitudes(amp);
    EXPECT_EQ(sv.numQubits(), 2);
    EXPECT_NEAR(sv.probZero(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.probZero(1), 0.0, 1e-12);
}

TEST(Peephole, ZeroPassesLeavesCircuitAlone)
{
    Circuit c(1);
    c.h(0);
    c.h(0);
    PeepholeOptions opts;
    opts.maxPasses = 0;
    EXPECT_EQ(peepholeOptimize(c, nullptr, opts).size(), 2u);
}

TEST(Peephole, NonCommutativeModeStillCancelsAdjacent)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    c.cx(0, 1); // odd count: one must survive
    PeepholeOptions opts;
    opts.commutationAware = false;
    Circuit r = peepholeOptimize(c, nullptr, opts);
    EXPECT_EQ(r.size(), 1u);
}

TEST(Peephole, TinyScanWindowLimitsSearch)
{
    Circuit c(2);
    c.cx(0, 1);
    c.rz(0, 0.1);
    c.rz(0, 0.2);
    c.rz(0, 0.3);
    c.cx(0, 1);
    PeepholeOptions narrow;
    narrow.scanWindow = 1;
    // The CX pair needs to hop 1..3 diagonal gates (they merge over
    // passes); with window 1 the partner may remain out of reach but
    // the result must still be a valid sub-circuit.
    Circuit r = peepholeOptimize(c, nullptr, narrow);
    EXPECT_LE(r.size(), c.size());
}

} // namespace
} // namespace tetris
