/**
 * @file
 * Tests for the common utility layer (rng, table/formatting, the
 * log2 latency histogram, the leveled logger) and assorted
 * cross-module edge cases: the pairwise max-cancel bound,
 * statevector construction, and peephole option handling.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "circuit/peephole.hh"
#include "common/histogram.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "pauli/pauli_block.hh"
#include "sim/statevector.hh"

namespace tetris
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntStaysInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, SampleIndicesAreDistinct)
{
    Rng rng(2);
    auto picks = rng.sampleIndices(20, 10);
    std::set<size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    for (size_t p : picks)
        EXPECT_LT(p, 20u);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Format, CountRendering)
{
    EXPECT_EQ(formatCount(8064), "8064");
    EXPECT_EQ(formatCount(21072), "21.1k");
    EXPECT_EQ(formatCount(130.9e6), "130.9M");
}

TEST(Format, PercentRendering)
{
    EXPECT_EQ(formatPercent(-0.313), "-31.3%");
    EXPECT_EQ(formatPercent(0.5), "50.0%");
}

TEST(Table, CsvRoundTrip)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "x"});
    t.addRow({"2", "y"});
    ASSERT_TRUE(t.writeCsv("/tmp/tetris_table.csv"));
    std::ifstream in("/tmp/tetris_table.csv");
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,x");
}

TEST(Histogram, BucketIndexEdges)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0);
    EXPECT_EQ(Histogram::bucketIndex(1), 1);
    EXPECT_EQ(Histogram::bucketIndex(2), 2);
    EXPECT_EQ(Histogram::bucketIndex(3), 2);
    EXPECT_EQ(Histogram::bucketIndex(4), 3);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11);
    EXPECT_EQ(Histogram::bucketIndex(uint64_t{1} << 62), 63);
    EXPECT_EQ(Histogram::bucketIndex(UINT64_MAX), 63);

    // Every bucket's upper bound maps back to that bucket — the
    // invariant behind the percentile JSON round trip.
    for (int i = 0; i < Histogram::kBuckets; ++i)
        EXPECT_EQ(Histogram::bucketIndex(Histogram::bucketUpperBound(i)),
                  i)
            << "bucket " << i;
}

TEST(Histogram, RecordAndDerivedStats)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u); // empty -> 0, not garbage

    h.record(0);
    h.record(1);
    h.record(100);
    h.record(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1101u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(Histogram::bucketIndex(100)), 1u);

    // Percentiles are bucket upper bounds and weakly increase in p.
    EXPECT_EQ(h.percentile(0.0),
              Histogram::bucketUpperBound(0));
    EXPECT_EQ(h.percentile(1.0),
              Histogram::bucketUpperBound(Histogram::bucketIndex(1000)));
    uint64_t last = 0;
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        uint64_t v = h.percentile(p);
        EXPECT_GE(v, last) << "p=" << p;
        last = v;
    }
}

TEST(Histogram, PercentilesBoundTheSamples)
{
    // p50/p90/p99 of a known distribution land in the right buckets:
    // 100 samples of value 10 (bucket 4, upper 15) plus 5 of value
    // 1000 (bucket 10, upper 1023).
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.record(10);
    for (int i = 0; i < 5; ++i)
        h.record(1000);
    EXPECT_EQ(h.percentile(0.50), 15u);
    EXPECT_EQ(h.percentile(0.90), 15u);
    EXPECT_EQ(h.percentile(0.99), 1023u);
}

TEST(Histogram, MergeAndClear)
{
    Histogram a, b;
    a.record(5);
    a.record(7);
    b.record(1000000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 1000012u);
    EXPECT_EQ(a.max(), 1000000u);
    EXPECT_EQ(a.percentile(1.0),
              Histogram::bucketUpperBound(
                  Histogram::bucketIndex(1000000)));

    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.sum(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.percentile(0.99), 0u);
}

TEST(Histogram, ConcurrentRecordingLosesNothing)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    Histogram h;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.record(static_cast<uint64_t>(t * 1000 + i));
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(h.count(),
              static_cast<uint64_t>(kThreads * kPerThread));
    uint64_t bucket_total = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i)
        bucket_total += h.bucketCount(i);
    EXPECT_EQ(bucket_total, h.count());
}

TEST(Log, ParseLevelNamesAndNumbers)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("debug", ok), LogLevel::Debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("info", ok), LogLevel::Info);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("warn", ok), LogLevel::Warn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("error", ok), LogLevel::Error);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("off", ok), LogLevel::Off);
    EXPECT_TRUE(ok);
    // Strict: names only, exact case — matching the other TETRIS_*
    // env knobs' refuse-don't-guess parsing.
    parseLogLevel("WARN", ok);
    EXPECT_FALSE(ok);
    parseLogLevel("nonsense", ok);
    EXPECT_FALSE(ok);
    parseLogLevel("", ok);
    EXPECT_FALSE(ok);
}

TEST(Log, LevelGatesEmission)
{
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    EXPECT_FALSE(logEnabled(LogLevel::Warn));
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    // Suppressed calls must be safe no-ops (and cheap).
    logDebug("suppressed ", 1, " message");
    logWarn("suppressed too");

    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Off);
    EXPECT_FALSE(logEnabled(LogLevel::Error));
    setLogLevel(saved);
}

TEST(MaxCancelBound, SimplePairs)
{
    // Two strings sharing ZZ on qubits 1,2: bound = 2*(2-1) = 2.
    std::vector<PauliBlock> blocks{PauliBlock(
        {PauliString::fromText("XZZI"), PauliString::fromText("YZZI")},
        0.1)};
    EXPECT_EQ(maxCancelCnotBound(blocks), 2u);
}

TEST(MaxCancelBound, NoSharedOperatorsNoBound)
{
    std::vector<PauliBlock> blocks{PauliBlock(
        {PauliString::fromText("XXII"), PauliString::fromText("IIZZ")},
        0.1)};
    EXPECT_EQ(maxCancelCnotBound(blocks), 0u);
}

TEST(MaxCancelBound, CrossesBlockBoundaries)
{
    PauliBlock a({PauliString::fromText("XZZZ")}, 0.1);
    PauliBlock b({PauliString::fromText("YZZZ")}, 0.2);
    // One boundary, common = {1,2,3} -> 2*(3-1) = 4.
    EXPECT_EQ(maxCancelCnotBound({a, b}), 4u);
}

TEST(Statevector, FromAmplitudesValidatesLength)
{
    std::vector<Statevector::Amplitude> amp(4, 0.0);
    amp[2] = 1.0;
    Statevector sv = Statevector::fromAmplitudes(amp);
    EXPECT_EQ(sv.numQubits(), 2);
    EXPECT_NEAR(sv.probZero(0), 1.0, 1e-12);
    EXPECT_NEAR(sv.probZero(1), 0.0, 1e-12);
}

TEST(Peephole, ZeroPassesLeavesCircuitAlone)
{
    Circuit c(1);
    c.h(0);
    c.h(0);
    PeepholeOptions opts;
    opts.maxPasses = 0;
    EXPECT_EQ(peepholeOptimize(c, nullptr, opts).size(), 2u);
}

TEST(Peephole, NonCommutativeModeStillCancelsAdjacent)
{
    Circuit c(2);
    c.cx(0, 1);
    c.cx(0, 1);
    c.cx(0, 1); // odd count: one must survive
    PeepholeOptions opts;
    opts.commutationAware = false;
    Circuit r = peepholeOptimize(c, nullptr, opts);
    EXPECT_EQ(r.size(), 1u);
}

TEST(Peephole, TinyScanWindowLimitsSearch)
{
    Circuit c(2);
    c.cx(0, 1);
    c.rz(0, 0.1);
    c.rz(0, 0.2);
    c.rz(0, 0.3);
    c.cx(0, 1);
    PeepholeOptions narrow;
    narrow.scanWindow = 1;
    // The CX pair needs to hop 1..3 diagonal gates (they merge over
    // passes); with window 1 the partner may remain out of reach but
    // the result must still be a valid sub-circuit.
    Circuit r = peepholeOptimize(c, nullptr, narrow);
    EXPECT_LE(r.size(), c.size());
}

} // namespace
} // namespace tetris
